// Latejoin: the journal extension (§6) in action. Two players fight through
// Street Brawler; twenty virtual seconds in, a spectator connects to player
// 0, receives a chunked savestate of the running console, and follows the
// rest of the match frame-locked — without having seen the beginning.
//
//	go run ./examples/latejoin
package main

import (
	"fmt"
	"log"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/netem"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
	"retrolock/internal/vm"
)

const (
	phase1 = 1200 // frames before the spectator joins (20 s)
	phase2 = 600  // frames it watches (10 s)
)

func main() {
	log.SetFlags(0)

	clock := vclock.NewVirtual(time.Now())
	network := simnet.New(clock)
	fwd, rev := netem.Symmetric(60*time.Millisecond, 2*time.Millisecond, 0, 9)
	netem.Install(network, "p0", "p1", fwd, rev)
	c01, c10, err := transport.SimPair(network, "p0", "p1")
	if err != nil {
		log.Fatal(err)
	}
	// The spectator's link to player 0 (a clean local connection).
	cObs, cSrv, err := transport.SimPair(network, "spectator", "p0-spectator")
	if err != nil {
		log.Fatal(err)
	}

	game := games.MustLoad("duel")
	boot := func() *vm.Console {
		c, err := game.Boot()
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	hashes := make(map[string]uint64, 3)
	errs := make(map[string]error, 3)

	consoles := map[string]*vm.Console{"p0": boot(), "p1": boot()}
	input := func(site int) func(int) uint16 {
		return func(frame int) uint16 {
			var pad byte = 8 >> (2 * site) // p0 right, p1 left
			if frame%25 < 2 {
				pad |= 16
			}
			return uint16(pad) << (8 * site)
		}
	}

	s0, err := core.NewSession(core.Config{SiteNo: 0, WaitTimeout: 10 * time.Second},
		clock, clock.Now(), consoles["p0"], []core.Peer{{Site: 1, Conn: c01}})
	if err != nil {
		log.Fatal(err)
	}
	s1, err := core.NewSession(core.Config{SiteNo: 1, WaitTimeout: 10 * time.Second},
		clock, clock.Now(), consoles["p1"], []core.Peer{{Site: 0, Conn: c10}})
	if err != nil {
		log.Fatal(err)
	}

	d0 := clock.Go(func() {
		if errs["p0"] = s0.RunFrames(phase1, input(0), nil); errs["p0"] != nil {
			return
		}
		// Admit the spectator mid-game: snapshot + forwarded inputs.
		joinFrame, err := s0.AddJoiner(core.Peer{Site: 2, Conn: cSrv})
		if err != nil {
			errs["p0"] = err
			return
		}
		fmt.Printf("player 0 serving a savestate at frame %d\n", joinFrame)
		errs["p0"] = s0.RunFrames(phase2, input(0), nil)
		s0.Drain(4 * time.Second)
		hashes["p0"] = consoles["p0"].StateHash()
	})
	d1 := clock.Go(func() {
		if errs["p1"] = s1.RunFrames(phase1+phase2, input(1), nil); errs["p1"] != nil {
			return
		}
		s1.Drain(4 * time.Second)
		hashes["p1"] = consoles["p1"].StateHash()
	})
	dObs := clock.Go(func() {
		// Turn up twenty seconds into the match.
		clock.Sleep(phase1 * 16667 * time.Microsecond)
		console := boot()
		ses, err := core.JoinSession(core.Config{SiteNo: 2, WaitTimeout: 10 * time.Second},
			clock, clock.Now(), console, core.Peer{Site: 0, Conn: cObs}, 10*time.Second)
		if err != nil {
			errs["spectator"] = err
			return
		}
		fmt.Printf("spectator joined at frame %d (skipped the first %v of play)\n",
			ses.Frame(), time.Duration(ses.Frame())*16667*time.Microsecond)
		remaining := phase1 + phase2 - ses.Frame()
		errs["spectator"] = ses.RunFrames(remaining, nil, nil)
		hashes["spectator"] = console.StateHash()
	})
	<-d0
	<-d1
	<-dObs

	for who, err := range errs {
		if err != nil {
			log.Fatalf("%s: %v", who, err)
		}
	}
	fmt.Printf("player 0:  %016x\n", hashes["p0"])
	fmt.Printf("player 1:  %016x\n", hashes["p1"])
	fmt.Printf("spectator: %016x\n", hashes["spectator"])
	if hashes["p0"] == hashes["p1"] && hashes["p1"] == hashes["spectator"] {
		fmt.Println("all three replicas converged — the late joiner caught up perfectly")
	} else {
		log.Fatal("divergence detected")
	}
}
