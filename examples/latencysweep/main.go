// Latencysweep: a miniature of the paper's Figure 1/2 sweep using the
// experiment harness directly — shows how to evaluate the sync module's
// behaviour under your own network assumptions.
//
//	go run ./examples/latencysweep
package main

import (
	"fmt"
	"log"
	"time"

	"retrolock/internal/harness"
)

func main() {
	log.SetFlags(0)

	base := harness.PaperCalibration()
	base.Frames = 900 // 15 virtual seconds per point
	base.Seed = 7
	base.Game = "tanks"

	fmt.Println("RTT      frame time   deviation    FPS    cross-site sync")
	for _, rtt := range []time.Duration{
		0,
		50 * time.Millisecond,
		100 * time.Millisecond,
		140 * time.Millisecond, // the paper's recommended maximum
		180 * time.Millisecond,
		250 * time.Millisecond,
	} {
		cfg := base
		cfg.RTT = rtt
		res, err := harness.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Sites[0]
		verdict := "smooth"
		switch {
		case s.FrameTimes.MAD > 5 && s.FPS > 55:
			verdict = "choppy"
		case s.FPS <= 55:
			verdict = "slowed down"
		}
		fmt.Printf("%-7v  %7.2f ms   %6.2f ms   %5.1f   %8.2f ms   (%s)\n",
			rtt, s.FrameTimes.Mean, s.FrameTimes.MAD, s.FPS, res.Sync.AbsMean, verdict)
	}
	fmt.Println("\nthe paper recommends RTT <= 140 ms for systems built this way (§4.1)")
}
