// Quickstart: the smallest complete use of the library. Two players run the
// same Pong ROM on two replicated consoles, connected by an in-process
// network with 80 ms of emulated round-trip latency, synchronized by the
// paper's lockstep algorithm. Everything runs on a virtual clock, so the
// ten-second session finishes instantly and deterministically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/netem"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

func main() {
	log.SetFlags(0)

	// 1. A virtual clock and a network with an emulated 80 ms RTT link.
	clock := vclock.NewVirtual(time.Now())
	network := simnet.New(clock)
	fwd, rev := netem.Symmetric(80*time.Millisecond, 2*time.Millisecond, 0.01, 42)
	netem.Install(network, "alice", "bob", fwd, rev)
	connA, connB, err := transport.SimPair(network, "alice", "bob")
	if err != nil {
		log.Fatal(err)
	}
	conns := []transport.Conn{connA, connB}

	// 2. Both sites boot the same game image (§2: "the same game image is
	// loaded onto the two VMs").
	game := games.MustLoad("pong")

	// 3. Each site: console + lockstep session. Site 0 is the master.
	const frames = 600 // ten seconds at 60 FPS
	type site struct {
		hash uint64
		err  error
	}
	results := make([]site, 2)
	done := make([]<-chan struct{}, 2)
	for s := 0; s < 2; s++ {
		s := s
		console, err := game.Boot()
		if err != nil {
			log.Fatal(err)
		}
		ses, err := core.NewSession(
			core.Config{SiteNo: s, WaitTimeout: 10 * time.Second},
			clock, clock.Now(), console,
			[]core.Peer{{Site: 1 - s, Conn: conns[s]}},
		)
		if err != nil {
			log.Fatal(err)
		}
		done[s] = clock.Go(func() {
			if err := ses.Handshake(5 * time.Second); err != nil {
				results[s].err = err
				return
			}
			// Each player wiggles its own paddle; the sync module
			// merges the two input bytes.
			input := func(frame int) uint16 {
				var pad byte = 1 // up
				if frame/45%2 == 1 {
					pad = 2 // down
				}
				return uint16(pad) << (8 * s)
			}
			results[s].err = ses.RunFrames(frames, input, nil)
			ses.Drain(2 * time.Second)
			results[s].hash = console.StateHash()

			if s == 0 {
				fmt.Println(console.RenderASCII(2))
			}
		})
	}
	<-done[0]
	<-done[1]

	for s, r := range results {
		if r.err != nil {
			log.Fatalf("site %d: %v", s, r.err)
		}
	}
	fmt.Printf("site 0 state: %016x\n", results[0].hash)
	fmt.Printf("site 1 state: %016x\n", results[1].hash)
	if results[0].hash == results[1].hash {
		fmt.Printf("replicas converged after %d frames (%v of virtual play)\n",
			frames, clock.Elapsed().Round(time.Millisecond))
	} else {
		log.Fatal("replicas diverged!")
	}
}
