// Divergence: demonstrates the state-digest exchange that guards the
// paper's determinism assumption (§5). Two replicas play Tank Battle in
// lockstep; mid-game we corrupt one console's RAM by a single byte —
// standing in for the nondeterminism hazards §5 warns about (system clocks,
// environment variables, disk files feeding the game). Within a second of
// game time both sites report the divergence, naming the exact frame.
//
//	go run ./examples/divergence
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/netem"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
	"retrolock/internal/vm"
)

const (
	corruptAtFrame = 150
	totalFrames    = 600
)

func main() {
	log.SetFlags(0)

	clock := vclock.NewVirtual(time.Now())
	network := simnet.New(clock)
	fwd, rev := netem.Symmetric(50*time.Millisecond, 0, 0, 3)
	netem.Install(network, "a", "b", fwd, rev)
	connA, connB, err := transport.SimPair(network, "a", "b")
	if err != nil {
		log.Fatal(err)
	}
	conns := []transport.Conn{connA, connB}

	game := games.MustLoad("tanks")
	errs := make([]error, 2)
	done := make([]<-chan struct{}, 2)
	for s := 0; s < 2; s++ {
		s := s
		console, err := game.Boot()
		if err != nil {
			log.Fatal(err)
		}
		ses, err := core.NewSession(
			core.Config{SiteNo: s, WaitTimeout: 10 * time.Second, HashInterval: 30},
			clock, clock.Now(), console,
			[]core.Peer{{Site: 1 - s, Conn: conns[s]}},
		)
		if err != nil {
			log.Fatal(err)
		}
		done[s] = clock.Go(func() {
			if err := ses.Handshake(5 * time.Second); err != nil {
				errs[s] = err
				return
			}
			errs[s] = ses.RunFrames(totalFrames, func(f int) uint16 {
				if s == 1 && f == corruptAtFrame {
					// The §5 hazard, simulated: one replica's state
					// silently changes outside the input stream.
					console.Poke(0x8200, console.Peek(0x8200)^0x01)
					fmt.Printf("site 1: corrupted one byte of RAM before frame %d\n", f)
				}
				return uint16(vm.BtnRight) << (8 * s)
			}, nil)
			ses.Drain(time.Second)
		})
	}
	<-done[0]
	<-done[1]

	caught := false
	for s, err := range errs {
		var de *core.DivergenceError
		if errors.As(err, &de) {
			caught = true
			fmt.Printf("site %d detected it: %v\n", s, de)
			fmt.Printf("  (frame %d is within %d frames of the corruption at %d — one digest interval)\n",
				de.Frame, de.Frame-corruptAtFrame+30, corruptAtFrame)
		} else if err != nil {
			log.Fatalf("site %d failed differently: %v", s, err)
		}
	}
	if !caught {
		log.Fatal("divergence was never detected!")
	}
	fmt.Println("without the digest exchange the replicas would have drifted apart silently")
}
