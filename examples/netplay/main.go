// Netplay: a real-time session over real UDP sockets on the loopback
// interface — the same code path cmd/retroplay uses across a WAN, but
// self-contained in one process so it runs anywhere. Two goroutines play
// Street Brawler for five seconds of wall-clock time at 60 FPS and verify
// convergence.
//
//	go run ./examples/netplay
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/rom/games"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

func main() {
	log.SetFlags(0)

	// Reserve two loopback ports.
	addr0 := reservePort()
	addr1 := reservePort()

	game := games.MustLoad("duel")
	const frames = 300 // five seconds at 60 FPS

	type result struct {
		hash  uint64
		stats core.Stats
		err   error
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	addrs := [2]string{addr0, addr1}
	for s := 0; s < 2; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			console, err := game.Boot()
			if err != nil {
				results[s].err = err
				return
			}
			conn, err := transport.DialUDP(addrs[s], addrs[1-s])
			if err != nil {
				results[s].err = err
				return
			}
			defer conn.Close()

			ses, err := core.NewSession(
				core.Config{SiteNo: s, WaitTimeout: 10 * time.Second},
				vclock.System, time.Now(), console,
				[]core.Peer{{Site: 1 - s, Conn: conn}},
			)
			if err != nil {
				results[s].err = err
				return
			}
			if err := ses.Handshake(10 * time.Second); err != nil {
				results[s].err = err
				return
			}
			// Walk toward each other and trade punches.
			input := func(frame int) uint16 {
				var pad byte
				if s == 0 {
					pad = 8 // right
				} else {
					pad = 4 // left
				}
				if frame > 60 && frame%20 < 3 {
					pad |= 16 // punch
				}
				return uint16(pad) << (8 * s)
			}
			if err := ses.RunFrames(frames, input, nil); err != nil {
				results[s].err = err
				return
			}
			ses.Drain(2 * time.Second)
			results[s].hash = console.StateHash()
			results[s].stats = ses.Sync().Stats()
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	for s, r := range results {
		if r.err != nil {
			log.Fatalf("site %d: %v", s, r.err)
		}
	}
	fmt.Printf("played %d frames over real UDP loopback in %v (%.1f FPS)\n",
		frames, elapsed.Round(time.Millisecond), float64(frames)/elapsed.Seconds())
	fmt.Printf("site 0: hash %016x, %d msgs sent\n", results[0].hash, results[0].stats.MsgsSent)
	fmt.Printf("site 1: hash %016x, %d msgs sent\n", results[1].hash, results[1].stats.MsgsSent)
	if results[0].hash != results[1].hash {
		log.Fatal("replicas diverged!")
	}
	fmt.Println("replicas converged")
}

// reservePort binds an ephemeral UDP port, closes it, and returns the
// address for reuse (safe on loopback for example purposes).
func reservePort() string {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()
	return addr
}
