// Allocation regression tests for the full simulated stack — sync module
// over transport over simnet over the virtual clock. The per-package alloc
// tests (internal/core, internal/flight) pin their own layers with fake
// substrates; these pin the composition the experiment harness actually
// runs, where an allocation in any layer (a vclock sleeper, a simnet flight,
// a shaper plan) shows up in every simulated frame.
package retrolock_test

import (
	"testing"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/core"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

// TestSyncInputNoWaitDoesNotAllocate locks in the zero-allocation steady
// state of the never-blocking sync exchange over the simulated network.
// Before the sleeper/event pools in vclock and the flight/receive-ring pools
// in simnet, every frame cost 7 allocations (392 bytes) in clock and network
// plumbing alone.
func TestSyncInputNoWaitDoesNotAllocate(t *testing.T) {
	v := vclock.NewVirtual(time.Unix(0, 0))
	n := simnet.New(v)
	c0, c1, err := transport.SimPair(n, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, v, v.Now(),
			[]core.Peer{{Site: 1 - site, Conn: conn}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	var allocs float64
	done := v.Go(func() {
		frame := 0
		step := func() {
			if _, err := s0.SyncInput(1, frame); err != nil {
				t.Error(err)
				return
			}
			if _, err := s1.SyncInput(1<<8, frame); err != nil {
				t.Error(err)
				return
			}
			frame++
			v.Sleep(16667 * time.Microsecond)
		}
		for i := 0; i < 300; i++ { // reach steady-state scratch/pool sizes
			step()
		}
		allocs = testing.AllocsPerRun(500, step)
	})
	<-done
	if allocs != 0 {
		t.Fatalf("steady-state SyncInput over simnet allocates %v per frame, want 0", allocs)
	}
}

// TestSyncHotPathWithCaptureDoesNotAllocate is the same steady-state gate
// with an RKCP capture tap wrapped below the sync module on both conns: a
// production client recording its session must pay zero allocations per
// frame for the privilege. The recorder's arena is preallocated and, once a
// budget fills, drops are counted without allocating either — so the gate
// holds for the whole life of the tap, not just until it fills.
func TestSyncHotPathWithCaptureDoesNotAllocate(t *testing.T) {
	v := vclock.NewVirtual(time.Unix(0, 0))
	n := simnet.New(v)
	c0, c1, err := transport.SimPair(n, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	rec := capture.NewRecorder(1<<14, 1<<20)
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, v, v.Now(),
			[]core.Peer{{Site: 1 - site, Conn: transport.NewTap(conn, v, site, rec)}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	var allocs float64
	done := v.Go(func() {
		frame := 0
		step := func() {
			if _, err := s0.SyncInput(1, frame); err != nil {
				t.Error(err)
				return
			}
			if _, err := s1.SyncInput(1<<8, frame); err != nil {
				t.Error(err)
				return
			}
			frame++
			v.Sleep(16667 * time.Microsecond)
		}
		for i := 0; i < 300; i++ {
			step()
		}
		allocs = testing.AllocsPerRun(500, step)
	})
	<-done
	if allocs != 0 {
		t.Fatalf("steady-state SyncInput with capture tap allocates %v per frame, want 0", allocs)
	}
	if rec.Len() == 0 {
		t.Fatal("capture tap recorded nothing")
	}
}
