// Command timeserverd runs the measurement time server of the paper's
// testbed (§4): gaming sites send one datagram per frame begin, the server
// timestamps them on arrival, and prints frame-time and synchrony statistics
// when the configured duration elapses.
//
//	timeserverd -listen :7100 -duration 2m -sites 0,1
package main

import (
	"flag"
	"log"
	"strconv"
	"strings"
	"time"

	"retrolock/internal/metrics"
	"retrolock/internal/obs"
	"retrolock/internal/timeserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("timeserverd: ")
	var (
		listen   = flag.String("listen", ":7100", "UDP address to serve on")
		duration = flag.Duration("duration", time.Minute, "how long to record before reporting")
		sites    = flag.String("sites", "0,1", "comma-separated site numbers to report")
		obsAddr  = flag.String("obs", "", "serve metrics/expvar/pprof on this HTTP address (e.g. :6060)")
	)
	flag.Parse()

	ids, err := parseSites(*sites)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := timeserver.ListenUDP(*listen)
	if err != nil {
		log.Fatal(err)
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		timeserver.RegisterMetrics(reg, srv)
		obs.RegisterProcessMetrics(reg)
		osrv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability on http://%s/", osrv.Addr())
	}
	log.Printf("recording frame reports on %s for %v", srv.Addr(), *duration)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	time.Sleep(*duration)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	for _, site := range ids {
		var s metrics.Series
		for _, d := range srv.FrameTimes(site) {
			s.AddDuration(d)
		}
		sum := s.Summarize()
		log.Printf("site %d: %d frames, avg frame time %.2fms (%.1f FPS), avg deviation %.2fms",
			site, sum.N+1, sum.Mean, metrics.FPS(sum.Mean), sum.MAD)
	}
	if len(ids) >= 2 {
		var s metrics.Series
		for _, d := range srv.SyncDiffs(ids[0], ids[1]) {
			s.AddDuration(d)
		}
		log.Printf("sites %d vs %d: avg |frame-time difference| %.2fms over %d frames",
			ids[0], ids[1], s.Summarize().AbsMean, s.Len())
	}
}

func parseSites(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
