package main

import (
	"fmt"
	"time"

	"retrolock/internal/harness"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/trafficgen"
)

// qoeload is the QoE experiment series: what session quality does each
// access-network profile yield once the traffic goes through a relay?
//
// Three tables, three methods:
//
//  1. A deterministic virtual-time trafficgen sweep (-sessions modeled
//     sessions per profile) — the same sweep `make qoe` pins against a
//     golden baseline.
//  2. A harness run per profile × sync mode (lockstep vs rollback), with
//     the relayed path folded into the peer link (double delay, compound
//     loss) — connecting the load generator's verdicts back to the paper's
//     frame-time metrics.
//  3. A real-clock trafficgen run per profile over the wall clock
//     (StartPolled relay loops), confirming the virtual figures live.
func qoeload(base harness.Config) error {
	sessions, hz, _ := relayloadParams()

	fmt.Println()
	fmt.Println("== qoeload 1/3: virtual-time QoE sweep ==")
	fmt.Printf("%d modeled sessions per profile at %d Hz, think-time and churn active\n\n", sessions, hz)
	_, table, err := trafficgen.Sweep(trafficgen.SweepConfig{
		Model: trafficgen.Model{
			Sessions:      sessions,
			InputHz:       hz,
			CadenceJitter: 0.2,
			Think:         trafficgen.ThinkModel{Every: 2 * time.Second, For: 300 * time.Millisecond},
			Churn:         trafficgen.ChurnModel{LeaveEvery: 5 * time.Second, DownFor: 500 * time.Millisecond},
			Seed:          base.Seed,
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(table.String())

	fmt.Println()
	fmt.Println("== qoeload 2/3: harness verdicts, profile x sync mode ==")
	fmt.Println("relayed path folded into the peer link: RTT = 4x one-way link delay,")
	fmt.Println("compound loss; health engine grades the lockstep runs")
	fmt.Println()
	ht := &obs.Table{Header: []string{"profile", "mode", "fps", "frame-mad", "health"}}
	for _, name := range netem.Profiles() {
		fwd, _, err := netem.Profile(name, base.Seed)
		if err != nil {
			return err
		}
		for _, rollback := range []bool{false, true} {
			cfg := base
			cfg.RTT = 4 * fwd.Delay
			cfg.Jitter = 2 * fwd.Jitter
			cfg.Loss = 2 * fwd.Loss
			cfg.BurstLoss = fwd.BurstLoss
			cfg.MeanBurst = fwd.MeanBurst
			cfg.Rollback = rollback
			res, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			mode, verdict := "lockstep", fmt.Sprint(res.Health)
			if rollback {
				// The health SLO engine grades lockstep sessions only.
				mode, verdict = "rollback", "-"
			}
			s := res.Sites[0]
			ht.AddRow(name, mode,
				fmt.Sprintf("%.1f", s.FPS),
				fmt.Sprintf("%.2fms", s.FrameTimes.MAD),
				verdict)
		}
	}
	fmt.Print(ht.String())

	fmt.Println()
	fmt.Println("== qoeload 3/3: real-clock QoE runs ==")
	fmt.Printf("%d sessions at %d Hz per profile, wall clock, polled relay loops\n\n", sessions, hz)
	var real []*trafficgen.Result
	for _, name := range netem.Profiles() {
		r, err := trafficgen.RunReal(trafficgen.RunConfig{
			Model: trafficgen.Model{
				Sessions:      sessions,
				InputHz:       hz,
				CadenceJitter: 0.2,
				Seed:          base.Seed,
			},
			Profile: name,
		})
		if err != nil {
			return err
		}
		real = append(real, r)
	}
	fmt.Print(trafficgen.VerdictTable(real).String())
	fmt.Println()
	fmt.Println("(real-clock figures wobble with host scheduling; the virtual table")
	fmt.Println(" above is the reproducible one — `make qoe` diffs it in CI)")
	return nil
}
