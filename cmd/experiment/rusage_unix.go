//go:build linux || darwin

package main

import "syscall"

// processCPU returns the process's cumulative user+system CPU seconds, the
// denominator of the sessions-per-core figure.
func processCPU() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}
