package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"retrolock/internal/chaos"
	"retrolock/internal/harness"
	"retrolock/internal/obs"
)

// chaosSeries runs the deterministic chaos soaks (internal/chaos) and prints
// per-phase fault and recovery metrics: how much traffic each fault phase
// ate, how the sync stack waited and retransmitted through it, and whether
// the invariant suite held. Re-running with the same -seed reproduces every
// number bit-for-bit.
func chaosSeries(base harness.Config) error {
	// The fault schedule spans ~16s of virtual time; a run shorter than
	// that would end before the heal phase and trivially fail liveness.
	frames := base.Frames
	if frames < 1500 {
		frames = 1500
	}
	fmt.Println()
	fmt.Println("Chaos — deterministic fault-injection soak (internal/chaos)")
	fmt.Printf("  %d frames per run, seed %d, game %q; all faults in virtual time\n",
		frames, base.Seed, base.Game)
	for _, sc := range []chaos.Scenario{
		chaos.Soak(base.Seed, frames),
		chaos.ARQSoak(base.Seed+1, frames),
		chaos.SkewSoak(base.Seed+2, frames),
	} {
		sc.Game = base.Game
		// Keep a frame-event ring per site so -csv runs also get a Chrome
		// trace of the run's tail (frame spans, stalls, retransmissions).
		sc.TraceEvents = 1 << 15
		// Incident bundles from the per-site flight recorders land next to
		// the CSVs ("" falls back to $RETROLOCK_FLIGHT_DIR).
		sc.FlightDir = csvTo
		r, err := chaos.Run(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		printChaosReport(r)
		writeChaosCSV(r)
		writeChaosTrace(r)
		if r.Verify() != nil {
			// The run completed but an invariant failed: snapshot both
			// sites' black boxes so the failure is triageable offline.
			dir := csvTo
			if dir == "" {
				dir = "."
			}
			if paths, derr := r.DumpFlight(dir); derr != nil {
				fmt.Fprintf(os.Stderr, "flight dump: %v\n", derr)
			} else {
				fmt.Printf("  flight bundles: %v (analyze with cmd/triage)\n", paths)
			}
		}
	}
	return nil
}

// writeChaosTrace merges both sites' event rings into one Chrome trace JSON
// next to the CSVs (chrome://tracing / ui.perfetto.dev).
func writeChaosTrace(r *chaos.Report) {
	if csvTo == "" {
		return
	}
	var events []obs.Event
	for _, tr := range r.Traces {
		events = append(events, tr.Snapshot()...)
	}
	if len(events) == 0 {
		return
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	name := filepath.Join(csvTo, "chaos-"+r.Spec.Name+".trace.json")
	f, err := os.Create(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace %s: %v\n", name, err)
		return
	}
	err = obs.WriteChromeTrace(f, events)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace %s: %v\n", name, err)
		return
	}
	fmt.Printf("  trace: %s (%d events)\n", name, len(events))
}

func printChaosReport(r *chaos.Report) {
	transportName := "UDP datagrams"
	if r.Spec.ARQ {
		transportName = "reliable ARQ"
	}
	fmt.Println()
	fmt.Printf("  %s (seed %d, %s, lag %d)\n", r.Spec.Name, r.Spec.Seed, transportName, r.Lag)
	fmt.Println("  phase              time(s)  frames/site   planned  dropped    dup  reord  corrupt  waits  retrans  cksum")
	for _, pr := range r.Phases {
		if !pr.Entered {
			fmt.Printf("  %-17s  (not reached)\n", pr.Name)
			continue
		}
		link := sumLinks(pr.AB, pr.BA)
		fmt.Printf("  %-17s  %7.1f  %5d %5d   %7d  %7d  %5d  %5d  %7d  %5d  %7d  %5d\n",
			pr.Name, pr.End.Seconds()-pr.Start.Seconds(),
			pr.Sites[0].Frames, pr.Sites[1].Frames,
			link.Planned, link.Dropped, link.Duplicated, link.Reordered, link.Corrupted,
			pr.Sites[0].Waits+pr.Sites[1].Waits,
			pr.Sites[0].Retransmissions+pr.Sites[1].Retransmissions,
			pr.Sites[0].ChecksumDiscarded+pr.Sites[1].ChecksumDiscarded)
	}
	verdict := "all invariants held"
	if err := r.Verify(); err != nil {
		verdict = err.Error()
	}
	fmt.Printf("  converged=%v  elapsed=%v  hashes=%x/%x\n",
		r.Converged, r.Elapsed.Round(time.Millisecond), r.FinalHashes[0], r.FinalHashes[1])
	fmt.Printf("  %s\n", verdict)
}

func sumLinks(ab, ba chaos.LinkStats) chaos.LinkStats {
	return chaos.LinkStats{
		Planned:    ab.Planned + ba.Planned,
		Dropped:    ab.Dropped + ba.Dropped,
		Duplicated: ab.Duplicated + ba.Duplicated,
		Reordered:  ab.Reordered + ba.Reordered,
		Corrupted:  ab.Corrupted + ba.Corrupted,
	}
}

func writeChaosCSV(r *chaos.Report) {
	writeCSV("chaos-"+r.Spec.Name+".csv",
		"phase,start_s,end_s,frames0,frames1,planned,dropped,duplicated,reordered,corrupted,waits,retransmissions,checksum_discarded",
		func(w *os.File) {
			for _, pr := range r.Phases {
				if !pr.Entered {
					continue
				}
				link := sumLinks(pr.AB, pr.BA)
				fmt.Fprintf(w, "%s,%.3f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
					pr.Name, pr.Start.Seconds(), pr.End.Seconds(),
					pr.Sites[0].Frames, pr.Sites[1].Frames,
					link.Planned, link.Dropped, link.Duplicated, link.Reordered, link.Corrupted,
					pr.Sites[0].Waits+pr.Sites[1].Waits,
					pr.Sites[0].Retransmissions+pr.Sites[1].Retransmissions,
					pr.Sites[0].ChecksumDiscarded+pr.Sites[1].ChecksumDiscarded)
			}
		})
}
