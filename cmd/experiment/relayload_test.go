package main

import (
	"flag"
	"testing"
	"time"
)

// TestRelayloadParams pins the -sessions/-hz plumbing: the documented
// defaults (512 sessions at 60 Hz), flag overrides, and the clamp that
// sends nonsense values back to the defaults.
func TestRelayloadParams(t *testing.T) {
	setFlags := func(sessions, hz string) {
		t.Helper()
		if err := flag.Set("sessions", sessions); err != nil {
			t.Fatal(err)
		}
		if err := flag.Set("hz", hz); err != nil {
			t.Fatal(err)
		}
	}
	defer setFlags("512", "60")

	cases := []struct {
		name         string
		sessions, hz string
		wantSessions int
		wantHz       int
		wantTick     time.Duration
	}{
		{"defaults", "512", "60", 512, 60, time.Second / 60},
		{"override", "2048", "120", 2048, 120, time.Second / 120},
		{"zero clamps", "0", "0", 512, 60, time.Second / 60},
		{"negative clamps", "-3", "-1", 512, 60, time.Second / 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setFlags(tc.sessions, tc.hz)
			sessions, hz, tick := relayloadParams()
			if sessions != tc.wantSessions || hz != tc.wantHz || tick != tc.wantTick {
				t.Errorf("relayloadParams() = (%d, %d, %v), want (%d, %d, %v)",
					sessions, hz, tick, tc.wantSessions, tc.wantHz, tc.wantTick)
			}
		})
	}
}
