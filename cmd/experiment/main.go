// Command experiment regenerates every figure and analysis of the paper's
// evaluation (§4) plus the extension experiments, on the virtual-time
// testbed. Runs are deterministic for a fixed -seed.
//
// Usage:
//
//	experiment -series figure1              # Figure 1: frame time + deviation vs RTT
//	experiment -series figure2              # Figure 2: cross-site synchrony vs RTT
//	experiment -series threshold            # §4.2 budget analysis at the knee
//	experiment -series journey              # input-journey latency + health verdict vs RTT
//	experiment -series ablation-timer       # Algorithm 4 vs naive pacing
//	experiment -series ablation-transport   # UDP lockstep vs reliable (TCP-like) transport
//	experiment -series loss                 # packet-loss sweep (journal extension)
//	experiment -series ablation-rollback    # local lag vs timewarp rollback
//	experiment -series ablation-adaptivelag # fixed vs adaptive local lag
//	experiment -series burstloss            # Gilbert-Elliott vs independent loss
//	experiment -series bandwidth            # uplink cost vs send pacing
//	experiment -series multisite            # observers (journal extension)
//	experiment -series seeds                # seed-sensitivity spread
//	experiment -series chaos                # deterministic fault-injection soak
//	experiment -series soak                 # headless emulation frames/sec per game
//	experiment -series relayload            # real-clock relayd hosting capacity (sessions/core)
//	experiment -series qoeload              # per-profile QoE verdicts under modeled session load
//	experiment -series all                  # everything
//
// -frames, -seed, -game and -procdelay override the defaults; -quick trims
// the sweep for smoke runs. -calibrated (default true) applies the paper
// calibration documented in internal/harness.PaperCalibration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"retrolock/internal/harness"
	"retrolock/internal/metrics"
)

func main() {
	var (
		series     = flag.String("series", "all", "which series to run (figure1, figure2, threshold, ablation-timer, ablation-transport, loss, multisite, all)")
		frames     = flag.Int("frames", harness.DefaultFrames, "frames per experiment (paper: 3600)")
		seed       = flag.Int64("seed", 2009, "experiment seed (results are deterministic per seed)")
		game       = flag.String("game", "pong", "ROM to run (pong, duel, tanks, cycles, breakout, goldrush)")
		procdelay  = flag.Duration("procdelay", 0, "per-packet processing delay; 0 keeps the calibration/default")
		calibrated = flag.Bool("calibrated", true, "use the paper calibration (ProcDelay 40ms)")
		quick      = flag.Bool("quick", false, "coarser sweep and fewer frames, for smoke runs")
		chart      = flag.Bool("chart", true, "render ASCII charts of the figures")
		csvDir     = flag.String("csv", "", "also write <dir>/figure1.csv and figure2.csv")
	)
	flag.Parse()
	chartOn, csvTo = *chart, *csvDir

	base := harness.Config{Frames: *frames, Seed: *seed, Game: *game}
	if *calibrated {
		base.ProcDelay = harness.PaperCalibration().ProcDelay
	}
	if *procdelay != 0 {
		base.ProcDelay = *procdelay
	}
	if *quick && *frames == harness.DefaultFrames {
		base.Frames = 600
	}

	run := func(name string, fn func(harness.Config) error) {
		if *series != "all" && *series != name {
			return
		}
		if err := fn(base); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	rtts := harness.PaperRTTs()
	if *quick {
		rtts = nil
		for ms := 0; ms <= 400; ms += 40 {
			rtts = append(rtts, time.Duration(ms)*time.Millisecond)
		}
	}

	// Figures 1 and 2 come from the same sweep; cache it across series.
	var sweep []harness.SweepPoint
	getSweep := func(cfg harness.Config) ([]harness.SweepPoint, error) {
		if sweep != nil {
			return sweep, nil
		}
		var err error
		sweep, err = harness.SweepRTT(cfg, rtts, func(p harness.SweepPoint) {
			fmt.Fprintf(os.Stderr, "  rtt %v done (%d frames)\n", p.RTT, p.Result.Sites[0].Frames)
		})
		return sweep, err
	}

	run("figure1", func(cfg harness.Config) error {
		points, err := getSweep(cfg)
		if err != nil {
			return err
		}
		printFigure1(points)
		return nil
	})
	run("figure2", func(cfg harness.Config) error {
		points, err := getSweep(cfg)
		if err != nil {
			return err
		}
		printFigure2(points)
		return nil
	})
	run("threshold", func(cfg harness.Config) error {
		points, err := getSweep(cfg)
		if err != nil {
			return err
		}
		printThreshold(points)
		return nil
	})
	run("journey", func(cfg harness.Config) error {
		points, err := getSweep(cfg)
		if err != nil {
			return err
		}
		printJourney(points)
		return nil
	})
	run("ablation-timer", ablationTimer)
	run("ablation-transport", ablationTransport)
	run("ablation-rollback", ablationRollback)
	run("ablation-adaptivelag", ablationAdaptiveLag)
	run("loss", lossSweep)
	run("burstloss", burstLoss)
	run("bandwidth", bandwidth)
	run("multisite", multisite)
	run("seeds", seedSensitivity)
	run("chaos", chaosSeries)
	run("soak", soak)
	run("relayload", relayload)
	run("qoeload", qoeload)
}

var (
	chartOn bool
	csvTo   string
)

// rttLabels renders sparse x-axis labels (every other point).
func rttLabels(points []harness.SweepPoint) []string {
	labels := make([]string, len(points))
	for i, p := range points {
		if i%2 == 0 {
			labels[i] = fmt.Sprintf("%d", p.RTT/time.Millisecond)
		}
	}
	return labels
}

func writeCSV(name, header string, rows func(w *os.File)) {
	if csvTo == "" {
		return
	}
	if err := os.MkdirAll(csvTo, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	f, err := os.Create(filepath.Join(csvTo, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, header)
	rows(f)
	fmt.Fprintf(os.Stderr, "wrote %s\n", f.Name())
}

func printFigure1(points []harness.SweepPoint) {
	fmt.Println()
	fmt.Println("Figure 1 — Frame rates and smoothness (site 0)")
	fmt.Println("  RTT(ms)  avg frame time(ms)  avg deviation(ms)     FPS  converged")
	for _, p := range points {
		s := p.Result.Sites[0]
		fmt.Printf("  %7.0f  %18.2f  %17.2f  %6.1f  %v\n",
			float64(p.RTT)/float64(time.Millisecond),
			s.FrameTimes.Mean, s.FrameTimes.MAD, s.FPS, p.Result.Converged)
	}
	if chartOn {
		frame := make([]float64, len(points))
		dev := make([]float64, len(points))
		for i, p := range points {
			frame[i] = p.Result.Sites[0].FrameTimes.Mean
			dev[i] = p.Result.Sites[0].FrameTimes.MAD
		}
		fmt.Println()
		fmt.Print(metrics.Chart("  [ms] vs RTT[ms]", rttLabels(points), 12,
			metrics.ChartSeries{Name: "avg frame time", Marker: '*', Points: frame},
			metrics.ChartSeries{Name: "avg deviation", Marker: 'o', Points: dev}))
	}
	writeCSV("figure1.csv", "rtt_ms,frame_time_ms,deviation_ms,fps,converged", func(w *os.File) {
		for _, p := range points {
			s := p.Result.Sites[0]
			fmt.Fprintf(w, "%d,%.4f,%.4f,%.2f,%v\n", p.RTT/time.Millisecond,
				s.FrameTimes.Mean, s.FrameTimes.MAD, s.FPS, p.Result.Converged)
		}
	})
}

func printFigure2(points []harness.SweepPoint) {
	fmt.Println()
	fmt.Println("Figure 2 — Synchrony between two sites")
	fmt.Println("  RTT(ms)  avg |frame-time difference|(ms)")
	for _, p := range points {
		fmt.Printf("  %7.0f  %31.2f\n",
			float64(p.RTT)/float64(time.Millisecond), p.Result.Sync.AbsMean)
	}
	if chartOn {
		sync := make([]float64, len(points))
		for i, p := range points {
			sync[i] = p.Result.Sync.AbsMean
		}
		fmt.Println()
		fmt.Print(metrics.Chart("  [ms] vs RTT[ms]", rttLabels(points), 12,
			metrics.ChartSeries{Name: "avg |difference|", Marker: '#', Points: sync}))
	}
	writeCSV("figure2.csv", "rtt_ms,sync_ms", func(w *os.File) {
		for _, p := range points {
			fmt.Fprintf(w, "%d,%.4f\n", p.RTT/time.Millisecond, p.Result.Sync.AbsMean)
		}
	})
}

// printJourney reports what the spans measure directly: the true end-to-end
// input latency a remote player experiences (press on one site to execution
// on the other), its local-lag floor, the live skew, and the health SLO
// verdict — per RTT. Quantiles are histogram bucket upper bounds (powers of
// two), so adjacent RTTs can share a value.
func printJourney(points []harness.SweepPoint) {
	fmt.Println()
	fmt.Println("Input journey — cross-site latency and session health (site 0)")
	fmt.Println("  RTT(ms)  cross p50(ms)  cross p90(ms)  local p50(ms)  skew p90(ms)  health")
	for _, p := range points {
		il := p.Result.InputLatency(0)
		fmt.Printf("  %7.0f  %13.1f  %13.1f  %13.1f  %12.1f  %v\n",
			float64(p.RTT)/float64(time.Millisecond),
			il.CrossP50, il.CrossP90, il.LocalP50, il.SkewP90, p.Result.Health)
	}
	writeCSV("journey.csv", "rtt_ms,cross_p50_ms,cross_p90_ms,local_p50_ms,skew_p90_ms,health", func(w *os.File) {
		for _, p := range points {
			il := p.Result.InputLatency(0)
			fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%v\n", p.RTT/time.Millisecond,
				il.CrossP50, il.CrossP90, il.LocalP50, il.SkewP90, p.Result.Health)
		}
	})
}

// printThreshold reports the §4.2 budget analysis: the first sweep point
// whose average deviation exceeds 5 ms marks the knee.
func printThreshold(points []harness.SweepPoint) {
	fmt.Println()
	fmt.Println("Threshold analysis (§4.2)")
	knee := time.Duration(-1)
	var syncAtKnee float64
	for _, p := range points {
		if p.Result.Sites[0].FrameTimes.MAD > 5 {
			knee = p.RTT
			syncAtKnee = p.Result.Sync.AbsMean
			break
		}
	}
	if knee < 0 {
		fmt.Println("  no knee found within the sweep")
		return
	}
	fmt.Printf("  observed knee: RTT %v (first point with avg deviation > 5 ms)\n", knee)
	fmt.Printf("  paper's knee:  RTT 140ms\n")
	fmt.Printf("  sync deviation at the knee: %.1f ms (paper: ~15 ms)\n", syncAtKnee)
	fmt.Printf("  budget check (§4.2): one-way threshold = 100ms local lag\n")
	fmt.Printf("    - sync deviation (%.0f ms) - send-path delays (~15 ms)\n", syncAtKnee)
	fmt.Printf("    = ~%.0f ms one-way => RTT ~%.0f ms\n", 100-syncAtKnee-15, 2*(100-syncAtKnee-15))
}

func ablationTimer(base harness.Config) error {
	fmt.Println()
	fmt.Println("Ablation — Algorithm 4 (master/slave pacing) vs naive waiting (§3.2)")
	fmt.Println("  startup offset 120ms, RTT 80ms; frame-time deviation of the EARLIER site")
	fmt.Println("  pacer        site0 MAD(ms)  site1 MAD(ms)  sync(ms)")
	for _, naive := range []bool{false, true} {
		cfg := base
		cfg.RTT = 80 * time.Millisecond
		cfg.StartOffset = 120 * time.Millisecond
		cfg.SkipHandshake = true
		cfg.NaivePacer = naive
		res, err := harness.Run(cfg)
		if err != nil {
			return err
		}
		name := "algorithm-4"
		if naive {
			name = "naive      "
		}
		fmt.Printf("  %s  %12.2f  %13.2f  %8.2f\n", name,
			res.Sites[0].FrameTimes.MAD, res.Sites[1].FrameTimes.MAD, res.Sync.AbsMean)
	}
	return nil
}

func ablationTransport(base harness.Config) error {
	fmt.Println()
	fmt.Println("Ablation — UDP lockstep vs reliable in-order transport (§3.1)")
	fmt.Println("  RTT 60ms; loss sweep; site-0 frame time mean / MAD / max (ms)")
	fmt.Println("  loss   udp mean   udp MAD   udp max   arq mean   arq MAD   arq max")
	for _, loss := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		row := make([]float64, 0, 6)
		for _, arq := range []bool{false, true} {
			cfg := base
			cfg.RTT = 60 * time.Millisecond
			cfg.Loss = loss
			cfg.ARQ = arq
			res, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			ft := res.Sites[0].FrameTimes
			row = append(row, ft.Mean, ft.MAD, ft.Max)
		}
		fmt.Printf("  %4.2f   %8.2f  %8.2f  %8.2f  %9.2f  %8.2f  %8.2f\n",
			loss, row[0], row[1], row[2], row[3], row[4], row[5])
	}
	return nil
}

func ablationRollback(base harness.Config) error {
	fmt.Println()
	fmt.Println("Ablation — lockstep (local lag) vs timewarp rollback (§5)")
	fmt.Println("  The paper rejects timewarp because semantic-free rollback is expensive;")
	fmt.Println("  this measures the trade at several RTTs (site 0, per 60s run).")
	fmt.Println("  RTT(ms)  mode       FPS   input lag   rollbacks   replayed   snapshots(MB)   stalls")
	for _, rtt := range []time.Duration{40 * time.Millisecond, 80 * time.Millisecond,
		120 * time.Millisecond, 160 * time.Millisecond, 240 * time.Millisecond} {
		for _, rb := range []bool{false, true} {
			cfg := base
			cfg.RTT = rtt
			cfg.Rollback = rb
			res, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			s := res.Sites[0]
			mode, lag := "lockstep", "100ms"
			if rb {
				mode, lag = "rollback", "0ms"
			}
			fmt.Printf("  %7.0f  %s  %5.1f   %9s   %9d   %8d   %13.1f   %6d\n",
				float64(rtt)/float64(time.Millisecond), mode, s.FPS, lag,
				s.Rollback.Rollbacks, s.Rollback.ReplayedFrames,
				float64(s.Rollback.SnapshotBytes)/1e6, s.Rollback.StallFrames)
		}
	}
	return nil
}

func lossSweep(base harness.Config) error {
	fmt.Println()
	fmt.Println("Extension — packet loss (journal version, §6)")
	fmt.Println("  RTT 60ms; per-direction loss probability")
	fmt.Println("  loss   frame time(ms)   MAD(ms)   sync(ms)   dup inputs   converged")
	losses := []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}
	cfg := base
	cfg.RTT = 60 * time.Millisecond
	results, err := harness.SweepLoss(cfg, losses, nil)
	if err != nil {
		return err
	}
	for _, loss := range losses {
		res := results[loss]
		s := res.Sites[0]
		fmt.Printf("  %4.2f   %14.2f  %8.2f  %9.2f  %11d  %v\n",
			loss, s.FrameTimes.Mean, s.FrameTimes.MAD, res.Sync.AbsMean,
			s.Stats.InputsDup, res.Converged)
	}
	return nil
}

func ablationAdaptiveLag(base harness.Config) error {
	fmt.Println()
	fmt.Println("Ablation — fixed 100ms local lag vs adaptive lag (§4.2)")
	fmt.Println("  The paper fixes the lag, arguing adaptation \"does not pay off\".")
	fmt.Println("  scenario              lag mode   avg lag(frames)   changes   MAD(ms)    FPS")
	type scenario struct {
		name  string
		rtt   time.Duration
		swing time.Duration
	}
	for _, sc := range []scenario{
		{"steady RTT 40ms  ", 40 * time.Millisecond, 0},
		{"steady RTT 120ms ", 120 * time.Millisecond, 0},
		{"steady RTT 200ms ", 200 * time.Millisecond, 0},
		{"swinging 60/200ms", 60 * time.Millisecond, 140 * time.Millisecond},
	} {
		for _, adaptive := range []bool{false, true} {
			cfg := base
			cfg.RTT = sc.rtt
			cfg.RTTSwing = sc.swing
			cfg.AdaptiveLag = adaptive
			res, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			s := res.Sites[0]
			mode, avgLag := "fixed   ", 6.0
			if adaptive {
				mode, avgLag = "adaptive", s.AvgLag
			}
			fmt.Printf("  %s   %s   %15.1f   %7d   %7.2f   %5.1f\n",
				sc.name, mode, avgLag, s.LagChanges, s.FrameTimes.MAD, s.FPS)
		}
	}
	return nil
}

func burstLoss(base harness.Config) error {
	fmt.Println()
	fmt.Println("Extension — bursty vs independent loss (journal version, §6)")
	fmt.Println("  RTT 60ms; Gilbert-Elliott bursts (mean length 6) at the same long-run rate")
	fmt.Println("  loss   process      frame(ms)   MAD(ms)   max(ms)   converged")
	for _, loss := range []float64{0.02, 0.05, 0.10} {
		for _, burst := range []bool{false, true} {
			cfg := base
			cfg.RTT = 60 * time.Millisecond
			cfg.Loss = loss
			cfg.BurstLoss = burst
			cfg.MeanBurst = 6
			res, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			name := "independent"
			if burst {
				name = "bursty     "
			}
			s := res.Sites[0].FrameTimes
			fmt.Printf("  %4.2f   %s  %9.2f  %8.2f  %8.2f   %v\n",
				loss, name, s.Mean, s.MAD, s.Max, res.Converged)
		}
	}
	return nil
}

func bandwidth(base harness.Config) error {
	fmt.Println()
	fmt.Println("Extension — bandwidth vs send pacing (§4.2's interactivity/resource balance)")
	fmt.Println("  RTT 150ms (near the knee); per-site uplink over a 60s run")
	fmt.Println("  interval   msgs/s   KB/s up   frame(ms)   MAD(ms)")
	for _, ivl := range []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 40 * time.Millisecond} {
		cfg := base
		cfg.RTT = 150 * time.Millisecond
		cfg.SendInterval = ivl
		res, err := harness.Run(cfg)
		if err != nil {
			return err
		}
		s := res.Sites[0]
		secs := res.Elapsed.Seconds()
		fmt.Printf("  %8v   %6.1f   %7.2f   %9.2f  %8.2f\n",
			ivl, float64(s.Stats.MsgsSent)/secs, float64(s.Stats.BytesSent)/1024/secs,
			s.FrameTimes.Mean, s.FrameTimes.MAD)
	}
	fmt.Println("  (the paper fixes the interval at 20ms: \"strike a balance between")
	fmt.Println("   interactivity and utilization of system resources\")")
	return nil
}

func seedSensitivity(base harness.Config) error {
	fmt.Println()
	fmt.Println("Robustness — seed sensitivity (5 seeds per point)")
	fmt.Println("  the paper reports single runs; this shows the spread our virtual")
	fmt.Println("  testbed would put behind each figure point")
	fmt.Println("  RTT(ms)   deviation min/mean/max (ms)    sync min/mean/max (ms)")
	for _, rtt := range []time.Duration{60 * time.Millisecond, 140 * time.Millisecond,
		160 * time.Millisecond, 200 * time.Millisecond} {
		cfg := base
		cfg.RTT = rtt
		mr, err := harness.RunSeeds(cfg, 5)
		if err != nil {
			return err
		}
		fmt.Printf("  %7.0f   %7.2f /%7.2f /%7.2f    %7.2f /%7.2f /%7.2f\n",
			float64(rtt)/float64(time.Millisecond),
			mr.Deviation.Min, mr.Deviation.Mean, mr.Deviation.Max,
			mr.Sync.Min, mr.Sync.Mean, mr.Sync.Max)
	}
	return nil
}

func multisite(base harness.Config) error {
	fmt.Println()
	fmt.Println("Extension — observers (journal version, §6)")
	fmt.Println("  RTT 60ms; N spectator sites receive forwarded merged inputs")
	fmt.Println("  observers   player FPS   all converged   virtual elapsed")
	for _, obs := range []int{0, 1, 2, 4} {
		cfg := base
		cfg.RTT = 60 * time.Millisecond
		cfg.Observers = obs
		res, err := harness.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %9d   %10.1f   %13v   %v\n",
			obs, res.Sites[0].FPS, res.Converged, res.Elapsed.Round(time.Millisecond))
	}
	return nil
}
