package main

import (
	"fmt"
	"time"

	"retrolock/internal/harness"
	"retrolock/internal/rom/games"
)

// soak measures raw headless emulation throughput: frames per wall-clock
// second of StepFrame + StateHash per shipped ROM, no networking. This is the
// ceiling every distributed experiment runs under — the virtual-time harness
// executes emulation at full speed and only simulates the waiting — so a
// regression here slows every series and the CI replay suite with it.
func soak(cfg harness.Config) error {
	const minWindow = 250 * time.Millisecond
	fmt.Println("== soak: headless emulation throughput (StepFrame + StateHash) ==")
	fmt.Printf("%-10s %12s %14s\n", "game", "frames", "frames/sec")
	for _, name := range games.Names() {
		c, err := games.MustLoad(name).Boot()
		if err != nil {
			return fmt.Errorf("boot %s: %w", name, err)
		}
		// Warm the dirty-page caches (first StateHash folds all 64 KiB).
		c.StepFrame(0)
		_ = c.StateHash()
		frames := 0
		start := time.Now()
		var elapsed time.Duration
		for {
			for i := 0; i < 512; i++ {
				c.StepFrame(uint16(frames))
				_ = c.StateHash()
				frames++
			}
			elapsed = time.Since(start)
			if elapsed >= minWindow && frames >= cfg.Frames {
				break
			}
		}
		fmt.Printf("%-10s %12d %14.0f\n", name, frames, float64(frames)/elapsed.Seconds())
	}
	return nil
}
