package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"retrolock/internal/harness"
	"retrolock/internal/obs"
	"retrolock/internal/relay"
)

// Load-generator sizing, shared by the relayload and qoeload series. The
// defaults match the original hard-coded relayload operating point.
var (
	flagSessions = flag.Int("sessions", 512, "relayload/qoeload: concurrent modeled sessions")
	flagHz       = flag.Int("hz", 60, "relayload/qoeload: per-site send cadence in Hz")
)

// relayloadParams resolves -sessions/-hz into the generator operating point,
// clamping nonsense values back to the defaults.
func relayloadParams() (sessions int, hz int, tick time.Duration) {
	sessions, hz = *flagSessions, *flagHz
	if sessions <= 0 {
		sessions = 512
	}
	if hz <= 0 {
		hz = 60
	}
	return sessions, hz, time.Second / time.Duration(hz)
}

// relayload is the real-clock counterpart of the virtual-time relay soak:
// it runs a relay daemon over loopback UDP sockets, drives a few hundred
// concurrent sessions at frame cadence from generator sockets, and reports
// what a deployment planner needs — sustained sessions per CPU core and the
// p50/p99 relayed frame time — with every figure read back through the obs
// registry, the same series a production relayd exports.
func relayload(cfg harness.Config) error {
	nSessions, _, tick := relayloadParams()
	const (
		nGens     = 8 // generator sockets; both sites of a session share one
		warmTicks = 30
		runTicks  = 300 // ~5 s of measurement at the default cadence
	)

	front, err := relay.ListenUDPFront("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("relayload: %w", err)
	}
	d, err := relay.NewDaemon(relay.Config{Shards: runtime.NumCPU(), SessionTTL: time.Hour}, []relay.Front{front})
	if err != nil {
		return err
	}
	d.Start()
	defer d.Close()

	reg := obs.NewRegistry()
	relay.RegisterMetrics(reg, d)
	frameTime := &obs.Histogram{}
	reg.AddHistogram("retrolock_relayload_frame_ns", nil, "send-to-deliver time of relayed datagrams (ns)", frameTime)

	type genSession struct {
		tok  relay.Token
		addr string
	}
	gens := make([][]genSession, nGens)
	for i := 0; i < nSessions; i++ {
		p, err := d.Place()
		if err != nil {
			return fmt.Errorf("relayload: place %d: %w", i, err)
		}
		g := i % nGens
		gens[g] = append(gens[g], genSession{tok: p.Token, addr: p.Addr})
	}

	fmt.Println("== relayload: real-clock relay hosting capacity (loopback UDP) ==")
	fmt.Printf("sessions %d, shards %d, fronts 1 (%s), tick %v\n",
		nSessions, runtime.NumCPU(), map[bool]string{true: "mmsg-batched", false: "portable"}[front.Batched()], tick)

	var (
		sent, recvd    atomic.Int64
		sendWg, recvWg sync.WaitGroup
		stop           atomic.Bool
	)
	cpu0 := processCPU()
	start := time.Now()
	for g := 0; g < nGens; g++ {
		g := g
		sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return err
		}
		defer sock.Close()
		_ = sock.SetReadBuffer(4 << 20)
		raddr, err := net.ResolveUDPAddr("udp", gens[g][0].addr)
		if err != nil {
			return err
		}
		sendWg.Add(1)
		go func() {
			defer sendWg.Done()
			// Receiver: every delivered datagram carries its send timestamp;
			// the delta is the relayed frame time.
			recvWg.Add(1)
			go func() {
				defer recvWg.Done()
				buf := make([]byte, relay.MaxDatagram)
				for {
					_ = sock.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
					n, err := sock.Read(buf)
					if err != nil {
						if stop.Load() {
							return
						}
						continue
					}
					_, _, pl, ok := relay.ParseHeader(buf[:n])
					if !ok || len(pl) < 8 {
						continue
					}
					sentAt := int64(binary.BigEndian.Uint64(pl))
					frameTime.Observe(time.Now().UnixNano() - sentAt)
					recvd.Add(1)
				}
			}()
			buf := make([]byte, relay.HeaderLen+16)
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			for t := 0; t < warmTicks+runTicks && !stop.Load(); t++ {
				now := time.Now().UnixNano()
				for _, s := range gens[g] {
					for site := 0; site < 2; site++ {
						n := relay.PutHeader(buf, s.tok, site)
						binary.BigEndian.PutUint64(buf[n:], uint64(now))
						if _, err := sock.WriteToUDP(buf[:n+16], raddr); err == nil {
							sent.Add(1)
						}
					}
				}
				<-ticker.C
			}
		}()
	}
	// Let the senders finish, give in-flight datagrams a beat to land,
	// then release the receivers.
	sendWg.Wait()
	time.Sleep(100 * time.Millisecond)
	elapsed := time.Since(start)
	cpuUsed := processCPU() - cpu0
	stop.Store(true)
	recvWg.Wait()

	// Report through the registry: the relayed frame-time histogram plus
	// the daemon's own step-time series, exactly as /metrics would show.
	p50 := time.Duration(frameTime.Quantile(0.5))
	p99 := time.Duration(frameTime.Quantile(0.99))
	stepP99 := time.Duration(d.StepTime.Quantile(0.99))
	fmt.Printf("%-28s %12d\n", "datagrams sent", sent.Load())
	fmt.Printf("%-28s %12d (%.1f%% delivered)\n", "datagrams relayed", recvd.Load(),
		100*float64(recvd.Load())/float64(max64(sent.Load(), 1)))
	fmt.Printf("%-28s %12v\n", "frame time p50", p50)
	fmt.Printf("%-28s %12v\n", "frame time p99", p99)
	fmt.Printf("%-28s %12v\n", "shard step p99", stepP99)
	if cpuUsed > 0 {
		cores := cpuUsed / elapsed.Seconds()
		fmt.Printf("%-28s %12.2f\n", "cpu cores used", cores)
		fmt.Printf("%-28s %12.0f\n", "sessions per core", float64(nSessions)/maxf(cores, 0.01))
	}
	if recvd.Load() == 0 {
		return fmt.Errorf("relayload: nothing was relayed")
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
