//go:build !(linux || darwin)

package main

// processCPU is unavailable on this platform; relayload reports wall-clock
// based figures only.
func processCPU() float64 { return 0 }
