// Command relayd hosts thousands of concurrent two-site sessions in one
// process: an embedded lobby admits pairs and hands them a token plus a
// relay front address; token-prefixed game datagrams are then demuxed onto
// shared-nothing shard loops and forwarded between the two sites. Every
// hosted session is individually graded through the fleet aggregator
// (healthy/degraded/infeasible), served on /sessions when -obs is set.
//
//	relayd -listen :7300 -lobby :7200 -shards 8 -obs :6060 -autocapture /var/tmp/relayd
//
// Clients rendezvous exactly as against lobbyd; the only difference is the
// RELAY reply. See DESIGN.md ("relayd", "Fleet observability") for the
// shard and grading model and README.md for a two-client quickstart plus
// the degraded-session runbook.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/lobby"
	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
	"retrolock/internal/relay"
)

var (
	listen      = flag.String("listen", ":7300", "base UDP address for relay fronts (port 0 = ephemeral; otherwise front i binds port+i)")
	fronts      = flag.Int("fronts", 1, "number of UDP sockets to spread shard traffic over")
	lobbyAddr   = flag.String("lobby", ":7200", "UDP address for the embedded admission lobby")
	shards      = flag.Int("shards", 8, "shared-nothing event loops")
	maxSessions = flag.Int("max-sessions", 4096, "session budget per shard")
	ttl         = flag.Duration("ttl", 2*time.Minute, "idle session expiry (relay side)")
	lobbyTTL    = flag.Duration("lobby-ttl", 10*time.Minute, "idle session expiry (lobby side)")
	advertise   = flag.String("advertise", "", "front address to hand to clients (default: the bound address)")
	obsAddr     = flag.String("obs", "", "serve metrics/healthz/sessions/pprof on this HTTP address (e.g. :6060)")
	capturePath = flag.String("capture", "", "write an RKCP capture of relayed traffic to this file on shutdown (bounded in-memory tap)")
	topK        = flag.Int("topk", 16, "worst-sessions rows kept on the /sessions ops surface")
	gradeEvery  = flag.Duration("grade-window", time.Second, "per-session QoE grading window")
	gradeTarget = flag.Duration("grade-target", defaultGradeTarget, "nominal per-site inter-datagram gap the grader treats as healthy")
	autoCapture = flag.String("autocapture", "", "directory for anomaly .rkcp bundles snapshotted when a session degrades (empty: grade without capturing)")
)

// defaultGradeTarget is two 60 FPS frame intervals: clients coalesce
// unchanged inputs, so a healthy session's per-site relay cadence averages
// under one datagram per frame — grading against the raw 16.67 ms frame
// target flags clean sessions as degraded.
const defaultGradeTarget = 2 * 16670 * time.Microsecond

// fleetParams returns the -topk / -grade-window / -grade-target settings,
// clamping nonsense values back to the documented defaults.
func fleetParams() (k int, window, target time.Duration) {
	k, window, target = *topK, *gradeEvery, *gradeTarget
	if k <= 0 {
		k = 16
	}
	if window <= 0 {
		window = time.Second
	}
	if target <= 0 {
		target = defaultGradeTarget
	}
	return k, window, target
}

// newFlusher wraps the shutdown evidence flush so it runs exactly once no
// matter which path gets there first. Both the signal handler and the normal
// exit path call it: relying on srv.Serve unwinding cleanly after a SIGTERM
// lost the -capture snapshot whenever shutdown stalled past the operator's
// patience — the signal path now flushes directly.
func newFlusher(f func()) func() {
	var once sync.Once
	return func() { once.Do(f) }
}

// writeTap snapshots the whole-daemon capture tap to -capture's path.
func writeTap(tap *capture.Recorder, path string) error {
	c := tap.Snapshot(capture.Meta{Notes: "relayd -capture tap"})
	if err := os.WriteFile(path, c.Encode(), 0o644); err != nil {
		return err
	}
	log.Printf("capture: wrote %d datagrams (%d dropped) to %s", len(c.Records), c.Meta.Dropped, path)
	return nil
}

// writeBundle writes one anomaly capture into the -autocapture directory as
// anomaly-<token>-<verdict>.rkcp and returns the path.
func writeBundle(dir string, ac relay.AnomalyCapture) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("anomaly-%s-%s.rkcp", ac.Token, ac.State))
	if err := os.WriteFile(path, ac.Capture.Encode(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("relayd: ")
	flag.Parse()

	var tap *capture.Recorder
	if *capturePath != "" {
		// Bounded tap: once full it drops with a count instead of growing,
		// so it is safe to leave on in production.
		tap = capture.NewRecorder(1<<16, 1<<24)
	}
	fs, err := bindFronts(*listen, *fronts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := relay.Config{
		Shards:      *shards,
		MaxSessions: *maxSessions,
		SessionTTL:  *ttl,
		Tap:         tap,
		Stats:       true, // fleet grading is always on; it costs no allocations
	}
	if *autoCapture != "" {
		if err := os.MkdirAll(*autoCapture, 0o755); err != nil {
			log.Fatal(err)
		}
		// Per-session anomaly rings only when somewhere to write bundles.
		cfg.AutoCaptureRecords = 64
		cfg.AutoCaptureBytes = 8 << 10
	}
	d, err := relay.NewDaemon(cfg, fs)
	if err != nil {
		log.Fatal(err)
	}
	d.Start()
	for _, f := range fs {
		mode := "portable"
		if uf, ok := f.(*relay.UDPFront); ok && uf.Batched() {
			mode = "mmsg-batched"
		}
		log.Printf("front %s (%s)", f.LocalAddr(), mode)
	}

	k, window, target := fleetParams()
	fcfg := relay.FleetConfig{
		TopK:   k,
		Window: window,
		Health: obs.HealthConfig{FrameTarget: target},
	}
	// Bound when -obs is on (below); OnCapture closes over it so every bundle
	// written to disk is also filed against the open incident's timeline.
	var svc *history.Service
	if dir := *autoCapture; dir != "" {
		fcfg.OnCapture = func(ac relay.AnomalyCapture) {
			path, err := writeBundle(dir, ac)
			if err != nil {
				log.Printf("autocapture: %v", err)
				return
			}
			log.Printf("autocapture: session %s graded %s, wrote %s (%d datagrams)",
				ac.Token, ac.State, path, len(ac.Capture.Records))
			if svc != nil {
				svc.Log.AttachCapture("", history.CaptureRef{
					Session: ac.Token.String(), Path: path, AtNs: time.Now().UnixNano(),
				})
			}
		}
	}
	fl, err := relay.NewFleet(d, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	fl.Start()
	log.Printf("fleet grading every %v (top-%d ops surface)", window, k)

	srv, err := lobby.ListenConfig(*lobbyAddr, lobby.Config{
		TTL:    *lobbyTTL,
		Placer: relay.LobbyPlacer{D: d, Advertise: *advertise},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("admission lobby on %s (%d shards x %d sessions)", srv.Addr(), *shards, *maxSessions)

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		relay.RegisterMetrics(reg, d)
		lobby.RegisterMetrics(reg, srv)
		obs.RegisterProcessMetrics(reg)
		fl.Register(reg)
		// Grade shard step pacing on the health engine: a relay whose event
		// loops fall behind frame cadence is infeasible for every session
		// it hosts.
		health := obs.NewHealth(obs.HealthConfig{}, obs.HealthSources{FrameTime: d.StepTime})
		health.Register(reg, 0)
		// History retention + burn-rate alerting over everything registered
		// above. The fleet-health alert burns when more than 4x a 5% budget
		// of tracked sessions grade unhealthy over both the one-minute and
		// five-minute windows; firing opens an incident on /incidents and
		// snapshots one representative burning session's anomaly ring (the
		// same rate-limited path a per-session flip takes).
		svc = history.Wire(reg, history.Options{
			Rules: []history.Rule{{
				Name:   "fleet-session-health",
				Source: history.SourceGauge,
				Bad: []string{
					obs.Key(relay.MetricSessionVerdicts, obs.Labels{"state": "degraded"}),
					obs.Key(relay.MetricSessionVerdicts, obs.Labels{"state": "infeasible"}),
				},
				Total:      []string{relay.MetricSessionTracked},
				Budget:     0.05,
				FastWindow: time.Minute,
				SlowWindow: 5 * time.Minute,
				Threshold:  4,
			}},
			OnTransition: func(ev history.Event) {
				if !ev.Firing {
					log.Printf("alert %s cleared (burn fast=%.1f slow=%.1f)", ev.Name, ev.BurnFast, ev.BurnSlow)
					return
				}
				log.Printf("alert %s FIRING (burn fast=%.1f slow=%.1f)", ev.Name, ev.BurnFast, ev.BurnSlow)
				at := time.Unix(0, ev.AtNs)
				snap := fl.Snapshot()
				svc.Log.Annotate(ev.Name, at, "fleet: %d tracked, %d degraded, %d infeasible, %d flips",
					snap.Summary.Tracked, snap.Summary.Degraded, snap.Summary.Infeasible, snap.Summary.Flips)
				if tok, ok := fl.CaptureBurning(at); ok {
					log.Printf("alert %s: captured burning session %s", ev.Name, tok)
				}
			},
		})
		go func() {
			for range time.Tick(svc.Store.BaseStep()) {
				now := time.Now()
				health.Evaluate(now)
				svc.Sample(now)
			}
		}()
		osrv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability on http://%s/ (metrics, healthz, sessions, history, alerts, incidents, pprof)", osrv.Addr())
	}

	// The evidence flush: deferred anomaly bundles first (the rate limiter
	// may be sitting on a degraded session's capture), then the whole-tap
	// snapshot. Idempotent — both shutdown paths below call it.
	flush := newFlusher(func() {
		if n := fl.FlushPending(time.Now()); n > 0 {
			log.Printf("autocapture: flushed %d deferred anomaly bundles", n)
		}
		fl.Close()
		if tap != nil {
			if err := writeTap(tap, *capturePath); err != nil {
				log.Printf("capture: %v", err)
			}
		}
	})

	go func() {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		<-sigs
		log.Print("shutting down")
		_ = srv.Close()
		d.Close()
		flush()
	}()
	serveErr := srv.Serve()
	d.Close()
	flush()
	if serveErr != nil {
		log.Fatal(serveErr)
	}
}

// bindFronts opens n UDP sockets: with port 0 each is ephemeral, otherwise
// front i binds port+i so deployments can open a contiguous range.
func bindFronts(base string, n int) ([]relay.Front, error) {
	if n < 1 {
		n = 1
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("bad -listen %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad -listen port %q: %w", portStr, err)
	}
	fs := make([]relay.Front, 0, n)
	for i := 0; i < n; i++ {
		p := port
		if p != 0 {
			p = port + i
		}
		f, err := relay.ListenUDPFront(net.JoinHostPort(host, strconv.Itoa(p)))
		if err != nil {
			for _, g := range fs {
				_ = g.Close()
			}
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}
