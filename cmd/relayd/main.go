// Command relayd hosts thousands of concurrent two-site sessions in one
// process: an embedded lobby admits pairs and hands them a token plus a
// relay front address; token-prefixed game datagrams are then demuxed onto
// shared-nothing shard loops and forwarded between the two sites.
//
//	relayd -listen :7300 -lobby :7200 -shards 8 -obs :6060
//
// Clients rendezvous exactly as against lobbyd; the only difference is the
// RELAY reply. See DESIGN.md ("relayd") for the shard model and README.md
// for a two-client quickstart.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/lobby"
	"retrolock/internal/obs"
	"retrolock/internal/relay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("relayd: ")
	listen := flag.String("listen", ":7300", "base UDP address for relay fronts (port 0 = ephemeral; otherwise front i binds port+i)")
	fronts := flag.Int("fronts", 1, "number of UDP sockets to spread shard traffic over")
	lobbyAddr := flag.String("lobby", ":7200", "UDP address for the embedded admission lobby")
	shards := flag.Int("shards", 8, "shared-nothing event loops")
	maxSessions := flag.Int("max-sessions", 4096, "session budget per shard")
	ttl := flag.Duration("ttl", 2*time.Minute, "idle session expiry (relay side)")
	lobbyTTL := flag.Duration("lobby-ttl", 10*time.Minute, "idle session expiry (lobby side)")
	advertise := flag.String("advertise", "", "front address to hand to clients (default: the bound address)")
	obsAddr := flag.String("obs", "", "serve metrics/healthz/pprof on this HTTP address (e.g. :6060)")
	capturePath := flag.String("capture", "", "write an RKCP capture of relayed traffic to this file on shutdown (bounded in-memory tap)")
	flag.Parse()

	var tap *capture.Recorder
	if *capturePath != "" {
		// Bounded tap: once full it drops with a count instead of growing,
		// so it is safe to leave on in production.
		tap = capture.NewRecorder(1<<16, 1<<24)
	}
	fs, err := bindFronts(*listen, *fronts)
	if err != nil {
		log.Fatal(err)
	}
	d, err := relay.NewDaemon(relay.Config{
		Shards:      *shards,
		MaxSessions: *maxSessions,
		SessionTTL:  *ttl,
		Tap:         tap,
	}, fs)
	if err != nil {
		log.Fatal(err)
	}
	d.Start()
	for _, f := range fs {
		mode := "portable"
		if uf, ok := f.(*relay.UDPFront); ok && uf.Batched() {
			mode = "mmsg-batched"
		}
		log.Printf("front %s (%s)", f.LocalAddr(), mode)
	}

	srv, err := lobby.ListenConfig(*lobbyAddr, lobby.Config{
		TTL:    *lobbyTTL,
		Placer: relay.LobbyPlacer{D: d, Advertise: *advertise},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("admission lobby on %s (%d shards x %d sessions)", srv.Addr(), *shards, *maxSessions)

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		relay.RegisterMetrics(reg, d)
		lobby.RegisterMetrics(reg, srv)
		// Grade shard step pacing on the health engine: a relay whose event
		// loops fall behind frame cadence is infeasible for every session
		// it hosts.
		health := obs.NewHealth(obs.HealthConfig{}, obs.HealthSources{FrameTime: d.StepTime})
		health.Register(reg, 0)
		go func() {
			for range time.Tick(time.Second) {
				health.Evaluate(time.Now())
			}
		}()
		osrv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability on http://%s/ (metrics, healthz, pprof)", osrv.Addr())
	}

	go func() {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		<-sigs
		log.Print("shutting down")
		_ = srv.Close()
		d.Close()
	}()
	serveErr := srv.Serve()
	d.Close()
	if tap != nil {
		c := tap.Snapshot(capture.Meta{Notes: "relayd -capture tap"})
		if err := os.WriteFile(*capturePath, c.Encode(), 0o644); err != nil {
			log.Printf("capture: %v", err)
		} else {
			log.Printf("capture: wrote %d datagrams (%d dropped) to %s",
				len(c.Records), c.Meta.Dropped, *capturePath)
		}
	}
	if serveErr != nil {
		log.Fatal(serveErr)
	}
}

// bindFronts opens n UDP sockets: with port 0 each is ephemeral, otherwise
// front i binds port+i so deployments can open a contiguous range.
func bindFronts(base string, n int) ([]relay.Front, error) {
	if n < 1 {
		n = 1
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("bad -listen %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad -listen port %q: %w", portStr, err)
	}
	fs := make([]relay.Front, 0, n)
	for i := 0; i < n; i++ {
		p := port
		if p != 0 {
			p = port + i
		}
		f, err := relay.ListenUDPFront(net.JoinHostPort(host, strconv.Itoa(p)))
		if err != nil {
			for _, g := range fs {
				_ = g.Close()
			}
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}
