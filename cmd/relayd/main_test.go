package main

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
	"retrolock/internal/relay"
)

// TestRelaydFleetParams pins the -topk/-grade-window/-grade-target
// plumbing: documented defaults, flag overrides, and the clamp that sends
// nonsense values back to the defaults (mirrors cmd/experiment's relayload
// params test).
func TestRelaydFleetParams(t *testing.T) {
	setFlags := func(topk, window, target string) {
		t.Helper()
		for flagName, v := range map[string]string{
			"topk": topk, "grade-window": window, "grade-target": target,
		} {
			if err := flag.Set(flagName, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer setFlags("16", "1s", defaultGradeTarget.String())

	cases := []struct {
		name                 string
		topk, window, target string
		wantK                int
		wantWindow, wantTgt  time.Duration
	}{
		{"defaults", "16", "1s", "33.34ms", 16, time.Second, defaultGradeTarget},
		{"override", "32", "250ms", "50ms", 32, 250 * time.Millisecond, 50 * time.Millisecond},
		{"zero clamps", "0", "0s", "0s", 16, time.Second, defaultGradeTarget},
		{"negative clamps", "-4", "-2s", "-1ms", 16, time.Second, defaultGradeTarget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setFlags(tc.topk, tc.window, tc.target)
			k, window, target := fleetParams()
			if k != tc.wantK || window != tc.wantWindow || target != tc.wantTgt {
				t.Errorf("fleetParams() = (%d, %v, %v), want (%d, %v, %v)",
					k, window, target, tc.wantK, tc.wantWindow, tc.wantTgt)
			}
		})
	}
}

// TestFlusherRunsOnce pins the shutdown-flush contract: however many paths
// race into it — the signal handler, the normal exit, both at once — the
// evidence flush body runs exactly once.
func TestFlusherRunsOnce(t *testing.T) {
	var runs atomic.Int32
	flush := newFlusher(func() { runs.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); flush() }()
	}
	wg.Wait()
	flush()
	if got := runs.Load(); got != 1 {
		t.Fatalf("flush body ran %d times, want exactly 1", got)
	}
}

// TestSignalPathFlushesCapture is the regression test for the lost -capture
// snapshot: the signal handler used to rely on srv.Serve unwinding to reach
// the tap flush, so a stalled shutdown lost the evidence. Now the signal
// path calls the same idempotent flusher the exit path does — simulate both
// firing and assert the tap snapshot landed on disk intact, once.
func TestSignalPathFlushesCapture(t *testing.T) {
	tap := capture.NewRecorder(16, 1<<10)
	tok := relay.MakeToken(3, 7, 0xbeef)
	buf := make([]byte, relay.HeaderLen+4)
	n := relay.PutHeader(buf, tok, 1)
	tap.Record(time.Unix(100, 0), capture.DirRecv, 1, buf[:n+4])

	path := filepath.Join(t.TempDir(), "shutdown.rkcp")
	var writes atomic.Int32
	flush := newFlusher(func() {
		writes.Add(1)
		if err := writeTap(tap, path); err != nil {
			t.Errorf("writeTap: %v", err)
		}
	})
	flush() // signal path
	flush() // normal exit path, racing behind it
	if got := writes.Load(); got != 1 {
		t.Fatalf("tap flushed %d times, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("capture file after signal flush: %v", err)
	}
	c, err := capture.Decode(data)
	if err != nil {
		t.Fatalf("capture file does not decode: %v", err)
	}
	if len(c.Records) != 1 {
		t.Fatalf("flushed capture holds %d records, want 1", len(c.Records))
	}
	got, _, _, ok := relay.ParseHeader(c.Records[0].Payload)
	if !ok || got != tok {
		t.Fatalf("flushed record does not demux to the recorded session: token=%v ok=%v", got, ok)
	}
}

// TestWriteBundle pins the -autocapture file contract: the bundle lands as
// anomaly-<token>-<verdict>.rkcp and decodes back to the session it names.
func TestWriteBundle(t *testing.T) {
	dir := t.TempDir()
	tok := relay.MakeToken(5, 9, 0xcafe)
	buf := make([]byte, relay.HeaderLen)
	relay.PutHeader(buf, tok, 0)
	ac := relay.AnomalyCapture{
		Token: tok,
		State: obs.Degraded,
		Capture: &capture.Capture{
			Meta:    capture.Meta{Version: capture.Version, Session: tok.String(), Verdict: "degraded"},
			Records: []capture.Record{{Dir: capture.DirRecv, Payload: buf}},
		},
	}
	path, err := writeBundle(dir, ac)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "anomaly-"+tok.String()+"-degraded.rkcp")
	if path != want {
		t.Errorf("bundle path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := capture.Decode(data)
	if err != nil {
		t.Fatalf("bundle does not decode: %v", err)
	}
	if c.Meta.Session != tok.String() || c.Meta.Verdict != "degraded" {
		t.Errorf("bundle meta = (%q, %q), want (%q, degraded)", c.Meta.Session, c.Meta.Verdict, tok)
	}
}
