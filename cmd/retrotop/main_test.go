package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExitCode pins the -once exit contract: 0 only when every endpoint is
// healthy; any degradation, infeasibility, or blindness (unreachable or no
// verdict at all) exits 1.
func TestExitCode(t *testing.T) {
	cases := []struct {
		states []string
		want   int
	}{
		{[]string{"healthy"}, 0},
		{[]string{"healthy", "healthy"}, 0},
		{[]string{"healthy", "degraded"}, 1},
		{[]string{"infeasible"}, 1},
		{[]string{"healthy", "unreachable"}, 1},
		{[]string{"unknown"}, 1},
		{[]string{""}, 1},
		{nil, 0}, // vacuous: no endpoints asserted nothing unhealthy
	}
	for _, c := range cases {
		if got := exitCode(c.states); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.states, got, c.want)
		}
	}
}

// TestHealthRankOrdering pins the verdict severity order the exit code and
// any future worst-of reductions rely on.
func TestHealthRankOrdering(t *testing.T) {
	order := []string{"healthy", "degraded", "infeasible", "unreachable"}
	for i := 1; i < len(order); i++ {
		if healthRank(order[i-1]) >= healthRank(order[i]) {
			t.Errorf("healthRank(%q) >= healthRank(%q), want strictly increasing severity",
				order[i-1], order[i])
		}
	}
}

func TestSpark(t *testing.T) {
	if got := spark([]float64{0, 0, 0}, 30); got != "▁▁▁" {
		t.Errorf("all-zero spark = %q, want flat baseline", got)
	}
	got := spark([]float64{0, 4, 8}, 30)
	if []rune(got)[0] != '▁' || []rune(got)[2] != '█' {
		t.Errorf("spark(0,4,8) = %q, want min..max ramp", got)
	}
	// Width bound keeps only the newest values.
	if got := spark([]float64{9, 9, 9, 0}, 2); got != "█▁" {
		t.Errorf("width-bounded spark = %q, want only the last 2 values", got)
	}
}

// TestRenderIncidents drives -incidents against a canned /incidents surface:
// the timeline must come through indented, and a FIRING line must mark the
// endpoint unhealthy for the exit code.
func TestRenderIncidents(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/incidents" || req.URL.Query().Get("format") != "text" {
			http.NotFound(w, req)
			return
		}
		_, _ = w.Write([]byte("#2 fleet-session-health FIRING  opened 00:00:02.250  (ongoing)  burn fast=9.4 slow=4.7\n" +
			"  00:00:02.250  capture session=0000000000000042 /tmp/anomaly.rkcp\n"))
	}))
	defer srv.Close()

	var out strings.Builder
	s := &site{base: srv.URL}
	renderIncidents(&out, srv.Client(), s)
	if s.lastErr != nil {
		t.Fatalf("renderIncidents: %v", s.lastErr)
	}
	if s.state != "degraded" {
		t.Errorf("a FIRING incident graded state %q, want degraded", s.state)
	}
	for _, want := range []string{"fleet-session-health FIRING", "capture session=0000000000000042"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("incidents panel missing %q:\n%s", want, out.String())
		}
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	var out2 strings.Builder
	s2 := &site{base: dead.URL}
	renderIncidents(&out2, http.DefaultClient, s2)
	if s2.lastErr == nil || s2.state != "unreachable" {
		t.Errorf("dead /incidents endpoint: err=%v state=%q, want error + unreachable", s2.lastErr, s2.state)
	}
}

// TestCollectJSON drives the -once -format json path against a canned fleet
// endpoint: the report must carry the fleet snapshot and grade the worst
// verdict from the census.
func TestCollectJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/sessions":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"at_unix_ns":1,"window":"1s","summary":{"tracked":4,"healthy":3,"degraded":1},"top":[]}`))
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"state":"healthy"}`))
		default:
			http.NotFound(w, req)
		}
	}))
	defer srv.Close()

	s := &site{base: srv.URL}
	js := collectJSON(srv.Client(), s, true, false)
	if js.Fleet == nil || js.Fleet.Summary.Tracked != 4 {
		t.Fatalf("json report carries no fleet snapshot: %+v", js)
	}
	// The fleet census (1 degraded) outranks the daemon's own healthz.
	if js.State != "degraded" || s.state != "degraded" {
		t.Errorf("fleet json state = %q (site %q), want degraded", js.State, s.state)
	}
	if js.Health == nil || js.Health.State != "healthy" {
		t.Errorf("json report lost the daemon healthz: %+v", js.Health)
	}
}

// TestFetchHistoryResolvesLabeledKey: a bare metric name that the store
// keys with labels (name{site="0"}) resolves via the /history listing.
func TestFetchHistoryResolvesLabeledKey(t *testing.T) {
	const key = `retrolock_frame_time_ns{site="0"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch req.URL.Query().Get("series") {
		case "":
			_, _ = w.Write([]byte(`{"scalars":[],"histograms":["` +
				`retrolock_frame_time_ns{site=\"0\"}"]}`))
		case key:
			_, _ = w.Write([]byte(`{"series":"x","kind":"histogram","step_ns":1000000000,` +
				`"points":[{"at_ns":1,"value":3},{"at_ns":2,"value":7}]}`))
		default:
			http.NotFound(w, req)
		}
	}))
	defer srv.Close()

	vals, err := fetchHistory(srv.Client(), srv.URL, "retrolock_frame_time_ns", "count")
	if err != nil {
		t.Fatalf("fetchHistory: %v", err)
	}
	if len(vals) != 2 || vals[1] != 7 {
		t.Errorf("resolved fetch = %v, want [3 7]", vals)
	}
	if _, err := fetchHistory(srv.Client(), srv.URL, "retrolock_nope", ""); err == nil {
		t.Error("unknown metric resolved, want error")
	}
}
