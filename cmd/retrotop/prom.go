package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// snapshot is one parsed /metrics scrape: scalar series by full key
// (name{labels}) plus histograms reassembled from their _bucket series.
type snapshot struct {
	scalars map[string]float64
	hists   map[string]*histSnap // keyed by name{labels-without-le}
}

// histSnap is one histogram series: cumulative counts per upper bound,
// sorted ascending, plus the _count/_sum totals.
type histSnap struct {
	bounds []float64 // upper bounds (ns); +Inf last
	cum    []float64 // cumulative counts, parallel to bounds
	count  float64
	sum    float64
}

// get returns a scalar by metric name and label subset match — the first
// series whose key starts with name and contains every given label pair.
func (s *snapshot) get(name string, labels ...string) (float64, bool) {
	for key, v := range s.scalars {
		if matchKey(key, name, labels) {
			return v, true
		}
	}
	return 0, false
}

// hist returns the histogram for a metric name and label subset.
func (s *snapshot) hist(name string, labels ...string) *histSnap {
	for key, h := range s.hists {
		if matchKey(key, name, labels) {
			return h
		}
	}
	return nil
}

func matchKey(key, name string, labels []string) bool {
	base, rest := key, ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		base, rest = key[:i], key[i:]
	}
	if base != name {
		return false
	}
	for _, l := range labels {
		if !strings.Contains(rest, l) {
			return false
		}
	}
	return true
}

// quantile returns the q-quantile upper bound over the histogram's lifetime
// counts (0 when empty).
func (h *histSnap) quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return quantileOf(h.bounds, h.cum, h.count, q)
}

// quantileSince returns the q-quantile of the window between two scrapes of
// the same histogram (0 when the window is empty). prev may be nil.
func (h *histSnap) quantileSince(prev *histSnap, q float64) float64 {
	if h == nil {
		return 0
	}
	if prev == nil || len(prev.cum) == 0 {
		return h.quantile(q)
	}
	cum := make([]float64, len(h.cum))
	for i := range h.cum {
		cum[i] = h.cum[i]
		// Buckets only appear in the text format once non-empty, so align
		// by bound, not by index: subtract prev's cumulative count at the
		// largest bound <= this one (cumulative counts make that the right
		// baseline even when prev never emitted this exact bucket).
		j := sort.SearchFloat64s(prev.bounds, h.bounds[i])
		if j < len(prev.bounds) && prev.bounds[j] == h.bounds[i] {
			cum[i] -= prev.cum[j]
		} else if j > 0 {
			cum[i] -= prev.cum[j-1]
		}
	}
	count := h.count - prev.count
	if count <= 0 {
		return 0
	}
	return quantileOf(h.bounds, cum, count, q)
}

func quantileOf(bounds, cum []float64, count, q float64) float64 {
	rank := q * count
	for i, c := range cum {
		if c >= rank && c > 0 {
			return bounds[i]
		}
	}
	if n := len(bounds); n > 0 {
		return bounds[n-1]
	}
	return 0
}

// parseMetrics reads a Prometheus text exposition into a snapshot. It
// understands exactly what obs.Registry.WritePrometheus emits: `key value`
// lines, comments, and histogram `_bucket`/`_sum`/`_count` triples.
func parseMetrics(r io.Reader) (*snapshot, error) {
	s := &snapshot{scalars: map[string]float64{}, hists: map[string]*histSnap{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", line, err)
		}
		name, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name, labels = key[:i], key[i:]
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le, rest := extractLE(labels)
			if le == "" {
				s.scalars[key] = val
				continue
			}
			h := histFor(s, base+rest)
			bound := inf
			if le != "+Inf" {
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return nil, fmt.Errorf("bad le in %q: %w", line, err)
				}
			}
			h.bounds = append(h.bounds, bound)
			h.cum = append(h.cum, val)
		case strings.HasSuffix(name, "_sum"):
			histFor(s, strings.TrimSuffix(name, "_sum")+labels).sum = val
		case strings.HasSuffix(name, "_count"):
			histFor(s, strings.TrimSuffix(name, "_count")+labels).count = val
		default:
			s.scalars[key] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// The exposition writes buckets in ascending order; sort defensively so
	// quantileSince's alignment by bound stays correct regardless.
	for _, h := range s.hists {
		sort.Sort(byBound{h})
	}
	return s, sc.Err()
}

const inf = 1e300 // stand-in for le="+Inf"; beyond any real ns bound

func histFor(s *snapshot, key string) *histSnap {
	h := s.hists[key]
	if h == nil {
		h = &histSnap{}
		s.hists[key] = h
	}
	return h
}

// extractLE pulls the le="..." label out of a {label} block and returns the
// block with it removed (so bucket series of one histogram share a key).
func extractLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := strings.Split(inner, ",")
	kept := parts[:0]
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(kept, ",") + "}"
}

type byBound struct{ h *histSnap }

func (b byBound) Len() int           { return len(b.h.bounds) }
func (b byBound) Less(i, j int) bool { return b.h.bounds[i] < b.h.bounds[j] }
func (b byBound) Swap(i, j int) {
	b.h.bounds[i], b.h.bounds[j] = b.h.bounds[j], b.h.bounds[i]
	b.h.cum[i], b.h.cum[j] = b.h.cum[j], b.h.cum[i]
}
