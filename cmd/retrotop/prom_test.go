package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"retrolock/internal/obs"
)

// TestParseMetricsAgainstRealRegistry feeds the parser the genuine
// exposition a retrolock registry serves, not a hand-written fixture.
func TestParseMetricsAgainstRealRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.NewCounter("retrolock_frame", obs.SiteLabels(0), "frames")
	c.Add(1234)
	h := reg.NewHistogram("retrolock_rtt_ns", obs.SiteLabels(0), "rtt")
	for i := 0; i < 100; i++ {
		h.Observe(20e6) // 20 ms -> bucket bound 33.5 ms
	}
	h.Observe(300e6) // one outlier past 268 ms

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	snap, err := scrape(http.DefaultClient, srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if v, ok := snap.get("retrolock_frame", `site="0"`); !ok || v != 1234 {
		t.Fatalf("retrolock_frame = %v, %v; want 1234", v, ok)
	}
	rtt := snap.hist("retrolock_rtt_ns", `site="0"`)
	if rtt == nil {
		t.Fatal("rtt histogram not parsed")
	}
	if rtt.count != 101 {
		t.Fatalf("rtt count = %v, want 101", rtt.count)
	}
	p50 := rtt.quantile(0.5)
	if p50 < 20e6 || p50 > 64e6 {
		t.Fatalf("rtt p50 = %v, want the ~33.5ms bucket bound", p50)
	}
	if p100 := rtt.quantile(1); p100 < 268e6 {
		t.Fatalf("rtt p100 = %v, want past the outlier's bucket", p100)
	}
}

// TestQuantileSinceWindows checks per-poll windowing: the second scrape's
// quantile must reflect only the new samples.
func TestQuantileSinceWindows(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.NewHistogram("retrolock_input_latency_ns", nil, "x")
	for i := 0; i < 50; i++ {
		h.Observe(10e6)
	}
	first := scrapeRegistry(t, reg)

	for i := 0; i < 50; i++ {
		h.Observe(200e6) // all new samples land way higher
	}
	second := scrapeRegistry(t, reg)

	lifetime := second.hist("retrolock_input_latency_ns").quantile(0.5)
	windowed := second.hist("retrolock_input_latency_ns").
		quantileSince(first.hist("retrolock_input_latency_ns"), 0.5)
	if windowed <= lifetime {
		t.Fatalf("windowed p50 %v <= lifetime p50 %v; the window should only see the new high samples",
			windowed, lifetime)
	}
	if windowed < 200e6 {
		t.Fatalf("windowed p50 = %v, want >= 200e6", windowed)
	}
}

// TestHealthzFetch exercises the /healthz fetch against a real registry with
// an attached engine.
func TestHealthzFetch(t *testing.T) {
	reg := obs.NewRegistry()
	fr := reg.NewHistogram("f", nil, "")
	for i := 0; i < 20; i++ {
		fr.Observe(int64(16 * time.Millisecond))
	}
	eng := obs.NewHealth(obs.HealthConfig{}, obs.HealthSources{FrameTime: fr})
	eng.Evaluate(time.Now())
	eng.Register(reg, 0)

	srv := httptest.NewServer(reg.HealthHandler())
	defer srv.Close()

	hz, err := fetchHealthz(http.DefaultClient, srv.URL)
	if err != nil {
		t.Fatalf("fetchHealthz: %v", err)
	}
	if hz.State != "healthy" || hz.Window != 1 {
		t.Fatalf("healthz = %+v, want healthy window 1", hz)
	}
}

func scrapeRegistry(t *testing.T, reg *obs.Registry) *snapshot {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	snap, err := parseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parseMetrics: %v", err)
	}
	return snap
}
