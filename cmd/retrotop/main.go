// Command retrotop is a live terminal dashboard for running retrolock
// sessions. It polls the observability endpoint each site exposes (retroplay
// -obs, or any obs.Serve registry) and renders the numbers the paper's
// feasibility argument turns on: frame rate, cross-site input latency and
// skew quantiles, RTT, ARQ pressure, and the health SLO verdict. Point it at
// both sites to watch a session from both ends:
//
//	retrotop http://siteA:9090 http://siteB:9091
//
// Flags:
//
//	-interval  poll period (default 1s); quantiles are windowed per poll
//	-once      print a single snapshot and exit (no screen clearing)
//	-fleet     poll a relayd ops surface instead of per-site session panels
//
// Fleet mode points at a relayd -obs endpoint and renders the aggregator's
// verdict census plus its top-K-worst session table:
//
//	retrotop -fleet http://relayhost:6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"retrolock/internal/relay"
)

var (
	interval = flag.Duration("interval", time.Second, "poll period")
	once     = flag.Bool("once", false, "print one snapshot and exit")
	fleet    = flag.Bool("fleet", false, "poll a relayd fleet ops surface (/sessions)")
)

// healthz mirrors obs.HealthSignals' JSON shape.
type healthz struct {
	State           string  `json:"state"`
	Window          int64   `json:"window"`
	RTTp50          int64   `json:"rtt_p50_ns"`
	SkewQ           int64   `json:"skew_q_ns"`
	FrameMean       int64   `json:"frame_mean_ns"`
	RetransPerFrame float64 `json:"retrans_per_frame"`
	Transitions     int64   `json:"transitions"`
}

// site is one polled endpoint and its previous scrape (for windowed rates).
type site struct {
	base    string
	prev    *snapshot
	prevAt  time.Time
	lastErr error
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: retrotop [flags] <endpoint> [endpoint]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}
	sites := make([]*site, flag.NArg())
	for i, arg := range flag.Args() {
		if !strings.Contains(arg, "://") {
			arg = "http://" + arg
		}
		sites[i] = &site{base: strings.TrimRight(arg, "/")}
	}
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		var out strings.Builder
		if !*once {
			out.WriteString("\033[H\033[2J") // clear terminal
		}
		fmt.Fprintf(&out, "retrotop  %s  every %v\n", time.Now().Format("15:04:05"), *interval)
		for _, s := range sites {
			if *fleet {
				renderFleet(&out, client, s)
			} else {
				renderSite(&out, client, s)
			}
		}
		os.Stdout.WriteString(out.String())
		if *once {
			for _, s := range sites {
				if s.lastErr != nil {
					os.Exit(1)
				}
			}
			return
		}
		time.Sleep(*interval)
	}
}

// renderFleet scrapes a relayd /sessions surface and appends the fleet
// panel: the verdict census plus the aggregator's top-K-worst table, in the
// same fixed-width layout relayd serves as text.
func renderFleet(out *strings.Builder, client *http.Client, s *site) {
	fmt.Fprintf(out, "\n%s\n", s.base)
	snap, err := fetchFleet(client, s.base+"/sessions?format=json")
	s.lastErr = err
	if err != nil {
		fmt.Fprintf(out, "  unreachable: %v\n", err)
		return
	}
	for _, line := range strings.Split(strings.TrimRight(relay.RenderTable(snap), "\n"), "\n") {
		fmt.Fprintf(out, "  %s\n", line)
	}
}

func fetchFleet(client *http.Client, url string) (*relay.FleetSnapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap relay.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// renderSite scrapes one endpoint and appends its panel.
func renderSite(out *strings.Builder, client *http.Client, s *site) {
	fmt.Fprintf(out, "\n%s\n", s.base)
	cur, err := scrape(client, s.base+"/metrics")
	s.lastErr = err
	if err != nil {
		fmt.Fprintf(out, "  unreachable: %v\n", err)
		return
	}
	now := time.Now()
	prev, prevAt := s.prev, s.prevAt
	s.prev, s.prevAt = cur, now

	hz, hzErr := fetchHealthz(client, s.base+"/healthz")
	switch {
	case hzErr != nil:
		fmt.Fprintf(out, "  health: (no /healthz: %v)\n", hzErr)
	default:
		fmt.Fprintf(out, "  health: %-10s window %d  rtt p50 %s  skew %s  frame %s  retrans/frame %.2f  flips %d\n",
			strings.ToUpper(hz.State), hz.Window, ms(float64(hz.RTTp50)), ms(float64(hz.SkewQ)),
			ms(float64(hz.FrameMean)), hz.RetransPerFrame, hz.Transitions)
	}

	frame, _ := cur.get("retrolock_frame")
	fps := 0.0
	if prev != nil {
		if pf, ok := prev.get("retrolock_frame"); ok && now.After(prevAt) {
			fps = (frame - pf) / now.Sub(prevAt).Seconds()
		}
	}
	fmt.Fprintf(out, "  frame %-8.0f fps %5.1f\n", frame, fps)

	// Windowed histogram quantiles: each poll grades only the samples that
	// arrived since the previous poll.
	q := func(name string, qq float64) string {
		h := cur.hist(name)
		if h == nil {
			return "-"
		}
		var ph *histSnap
		if prev != nil {
			ph = prev.hist(name)
		}
		v := h.quantileSince(ph, qq)
		if v == 0 {
			return "-"
		}
		return ms(v)
	}
	fmt.Fprintf(out, "  input  cross p50 %s  p90 %s   local p50 %s   net p50 %s   skew p90 %s\n",
		q("retrolock_input_latency_ns", 0.5), q("retrolock_input_latency_ns", 0.9),
		q("retrolock_local_latency_ns", 0.5), q("retrolock_net_latency_ns", 0.5),
		q("retrolock_exec_skew_ns", 0.9))
	fmt.Fprintf(out, "  timing frame p90 %s   stall p90 %s   rtt p50 %s\n",
		q("retrolock_frame_time_ns", 0.9), q("retrolock_stall_ns", 0.9),
		q("retrolock_rtt_ns", 0.5))

	if unacked, ok := cur.get("retrolock_arq_unacked"); ok {
		retrans, _ := cur.get("retrolock_arq_retransmissions")
		rate := 0.0
		if prev != nil {
			if pr, ok := prev.get("retrolock_arq_retransmissions"); ok && now.After(prevAt) {
				rate = (retrans - pr) / now.Sub(prevAt).Seconds()
			}
		}
		fmt.Fprintf(out, "  arq    unacked %.0f  retrans %.0f (%.1f/s)\n", unacked, retrans, rate)
	}
	if desync, ok := cur.get("retrolock_desync_total"); ok && desync > 0 {
		fmt.Fprintf(out, "  !! desync incidents: %.0f\n", desync)
	}
}

func scrape(client *http.Client, url string) (*snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return parseMetrics(resp.Body)
}

func fetchHealthz(client *http.Client, url string) (*healthz, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// 503 is the infeasible verdict, still a valid body.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("%s", resp.Status)
	}
	var hz healthz
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return nil, err
	}
	return &hz, nil
}

// ms renders a nanosecond quantity as milliseconds.
func ms(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", ns/1e6)
}
