// Command retrotop is a live terminal dashboard for running retrolock
// sessions. It polls the observability endpoint each site exposes (retroplay
// -obs, or any obs.Serve registry) and renders the numbers the paper's
// feasibility argument turns on: frame rate, cross-site input latency and
// skew quantiles, RTT, ARQ pressure, and the health SLO verdict. Point it at
// both sites to watch a session from both ends:
//
//	retrotop http://siteA:9090 http://siteB:9091
//
// Flags:
//
//	-interval   poll period (default 1s); quantiles are windowed per poll
//	-once       print a single snapshot and exit; the exit status reports the
//	            worst health verdict seen (0 all healthy, 1 otherwise)
//	-format     -once output shape: table (default) or json
//	-fleet      poll a relayd ops surface instead of per-site session panels
//	-incidents  render the endpoint's incident timeline (/incidents) instead
//	            of the live panels
//
// Fleet mode points at a relayd -obs endpoint and renders the aggregator's
// verdict census plus its top-K-worst session table:
//
//	retrotop -fleet http://relayhost:6060
//
// Panels grow sparkline columns when the endpoint retains history (the
// /history surface): per-site frame throughput, and the fleet's degraded
// session count over the last minute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"retrolock/internal/relay"
)

var (
	interval  = flag.Duration("interval", time.Second, "poll period")
	once      = flag.Bool("once", false, "print one snapshot and exit (status reflects worst health)")
	format    = flag.String("format", "table", "-once output: table or json")
	fleet     = flag.Bool("fleet", false, "poll a relayd fleet ops surface (/sessions)")
	incidents = flag.Bool("incidents", false, "render the endpoint's incident timeline (/incidents)")
)

// healthz mirrors obs.HealthSignals' JSON shape.
type healthz struct {
	State           string  `json:"state"`
	Window          int64   `json:"window"`
	RTTp50          int64   `json:"rtt_p50_ns"`
	SkewQ           int64   `json:"skew_q_ns"`
	FrameMean       int64   `json:"frame_mean_ns"`
	RetransPerFrame float64 `json:"retrans_per_frame"`
	Transitions     int64   `json:"transitions"`
}

// site is one polled endpoint and its previous scrape (for windowed rates).
type site struct {
	base    string
	prev    *snapshot
	prevAt  time.Time
	lastErr error
	state   string // last verdict: healthy/degraded/infeasible/unreachable/unknown
}

// healthRank orders verdicts for the exit status; anything unknown or
// unreachable ranks worst — a monitor that cannot see its target must not
// report green.
func healthRank(state string) int {
	switch state {
	case "healthy":
		return 0
	case "degraded":
		return 1
	case "infeasible":
		return 2
	default:
		return 3
	}
}

// exitCode maps the worst verdict across all polled endpoints onto the
// -once exit status: 0 only when every endpoint graded healthy.
func exitCode(states []string) int {
	for _, s := range states {
		if healthRank(s) > 0 {
			return 1
		}
	}
	return 0
}

// worstFleetState collapses a verdict census to one state string.
func worstFleetState(sum relay.FleetSummary) string {
	switch {
	case sum.Infeasible > 0:
		return "infeasible"
	case sum.Degraded > 0:
		return "degraded"
	default:
		return "healthy"
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: retrotop [flags] <endpoint> [endpoint]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}
	sites := make([]*site, flag.NArg())
	for i, arg := range flag.Args() {
		if !strings.Contains(arg, "://") {
			arg = "http://" + arg
		}
		sites[i] = &site{base: strings.TrimRight(arg, "/")}
	}
	client := &http.Client{Timeout: 5 * time.Second}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "retrotop: bad -format %q (want table or json)\n", *format)
		os.Exit(2)
	}
	if *format == "json" && !*once {
		fmt.Fprintln(os.Stderr, "retrotop: -format json requires -once")
		os.Exit(2)
	}

	if *once && *format == "json" {
		states := make([]string, len(sites))
		reports := make([]jsonSite, len(sites))
		for i, s := range sites {
			reports[i] = collectJSON(client, s, *fleet, *incidents)
			states[i] = s.state
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			At    string     `json:"at"`
			Sites []jsonSite `json:"sites"`
		}{time.Now().Format(time.RFC3339), reports})
		os.Exit(exitCode(states))
	}

	for {
		var out strings.Builder
		if !*once {
			out.WriteString("\033[H\033[2J") // clear terminal
		}
		fmt.Fprintf(&out, "retrotop  %s  every %v\n", time.Now().Format("15:04:05"), *interval)
		for _, s := range sites {
			switch {
			case *incidents:
				renderIncidents(&out, client, s)
			case *fleet:
				renderFleet(&out, client, s)
			default:
				renderSite(&out, client, s)
			}
		}
		os.Stdout.WriteString(out.String())
		if *once {
			states := make([]string, len(sites))
			for i, s := range sites {
				states[i] = s.state
			}
			os.Exit(exitCode(states))
		}
		time.Sleep(*interval)
	}
}

// jsonSite is one endpoint's -once -format json report.
type jsonSite struct {
	Endpoint string               `json:"endpoint"`
	State    string               `json:"state"`
	Error    string               `json:"error,omitempty"`
	Health   *healthz             `json:"health,omitempty"`
	Fleet    *relay.FleetSnapshot `json:"fleet,omitempty"`
}

// collectJSON polls one endpoint for the machine-readable snapshot, setting
// the site's verdict the same way the table renderers do.
func collectJSON(client *http.Client, s *site, fleetMode, incidentMode bool) jsonSite {
	js := jsonSite{Endpoint: s.base}
	if hz, err := fetchHealthz(client, s.base+"/healthz"); err == nil {
		js.Health = hz
		s.state = hz.State
	} else {
		s.state = "unknown"
	}
	if fleetMode {
		snap, err := fetchFleet(client, s.base+"/sessions?format=json")
		if err != nil {
			s.lastErr, s.state = err, "unreachable"
			js.Error, js.State = err.Error(), s.state
			return js
		}
		js.Fleet = snap
		s.state = worstFleetState(snap.Summary)
	} else if !incidentMode && js.Health == nil {
		// Session mode with no /healthz: fall back to reachability.
		if _, err := scrape(client, s.base+"/metrics"); err != nil {
			s.lastErr, s.state = err, "unreachable"
			js.Error = err.Error()
		}
	}
	js.State = s.state
	return js
}

// renderIncidents prints the endpoint's incident timeline — the same text
// /incidents?format=text serves, indented into the panel layout.
func renderIncidents(out *strings.Builder, client *http.Client, s *site) {
	fmt.Fprintf(out, "\n%s\n", s.base)
	resp, err := client.Get(s.base + "/incidents?format=text")
	if err == nil && resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("/incidents: %s", resp.Status)
	}
	s.lastErr = err
	if err != nil {
		s.state = "unreachable"
		fmt.Fprintf(out, "  unreachable: %v\n", err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	s.state = "healthy"
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		fmt.Fprintf(out, "  %s\n", line)
		if strings.Contains(line, "FIRING") {
			s.state = "degraded"
		}
	}
}

// renderFleet scrapes a relayd /sessions surface and appends the fleet
// panel: the verdict census plus the aggregator's top-K-worst table, in the
// same fixed-width layout relayd serves as text.
func renderFleet(out *strings.Builder, client *http.Client, s *site) {
	fmt.Fprintf(out, "\n%s\n", s.base)
	snap, err := fetchFleet(client, s.base+"/sessions?format=json")
	s.lastErr = err
	if err != nil {
		s.state = "unreachable"
		fmt.Fprintf(out, "  unreachable: %v\n", err)
		return
	}
	s.state = worstFleetState(snap.Summary)
	for _, line := range strings.Split(strings.TrimRight(relay.RenderTable(snap), "\n"), "\n") {
		fmt.Fprintf(out, "  %s\n", line)
	}
	if sp := sparkFromHistory(client, s.base, `retrolock_relay_session_verdicts{state="degraded"}`, ""); sp != "" {
		fmt.Fprintf(out, "  degraded %s (last minute)\n", sp)
	}
}

func fetchFleet(client *http.Client, url string) (*relay.FleetSnapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap relay.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// renderSite scrapes one endpoint and appends its panel.
func renderSite(out *strings.Builder, client *http.Client, s *site) {
	fmt.Fprintf(out, "\n%s\n", s.base)
	cur, err := scrape(client, s.base+"/metrics")
	s.lastErr = err
	if err != nil {
		s.state = "unreachable"
		fmt.Fprintf(out, "  unreachable: %v\n", err)
		return
	}
	now := time.Now()
	prev, prevAt := s.prev, s.prevAt
	s.prev, s.prevAt = cur, now

	hz, hzErr := fetchHealthz(client, s.base+"/healthz")
	switch {
	case hzErr != nil:
		s.state = "unknown"
		fmt.Fprintf(out, "  health: (no /healthz: %v)\n", hzErr)
	default:
		s.state = hz.State
		fmt.Fprintf(out, "  health: %-10s window %d  rtt p50 %s  skew %s  frame %s  retrans/frame %.2f  flips %d\n",
			strings.ToUpper(hz.State), hz.Window, ms(float64(hz.RTTp50)), ms(float64(hz.SkewQ)),
			ms(float64(hz.FrameMean)), hz.RetransPerFrame, hz.Transitions)
	}

	frame, _ := cur.get("retrolock_frame")
	fps := 0.0
	if prev != nil {
		if pf, ok := prev.get("retrolock_frame"); ok && now.After(prevAt) {
			fps = (frame - pf) / now.Sub(prevAt).Seconds()
		}
	}
	fmt.Fprintf(out, "  frame %-8.0f fps %5.1f  %s\n", frame, fps,
		sparkFromHistory(client, s.base, "retrolock_frame_time_ns", "count"))

	// Windowed histogram quantiles: each poll grades only the samples that
	// arrived since the previous poll.
	q := func(name string, qq float64) string {
		h := cur.hist(name)
		if h == nil {
			return "-"
		}
		var ph *histSnap
		if prev != nil {
			ph = prev.hist(name)
		}
		v := h.quantileSince(ph, qq)
		if v == 0 {
			return "-"
		}
		return ms(v)
	}
	fmt.Fprintf(out, "  input  cross p50 %s  p90 %s   local p50 %s   net p50 %s   skew p90 %s\n",
		q("retrolock_input_latency_ns", 0.5), q("retrolock_input_latency_ns", 0.9),
		q("retrolock_local_latency_ns", 0.5), q("retrolock_net_latency_ns", 0.5),
		q("retrolock_exec_skew_ns", 0.9))
	fmt.Fprintf(out, "  timing frame p90 %s   stall p90 %s   rtt p50 %s\n",
		q("retrolock_frame_time_ns", 0.9), q("retrolock_stall_ns", 0.9),
		q("retrolock_rtt_ns", 0.5))

	if unacked, ok := cur.get("retrolock_arq_unacked"); ok {
		retrans, _ := cur.get("retrolock_arq_retransmissions")
		rate := 0.0
		if prev != nil {
			if pr, ok := prev.get("retrolock_arq_retransmissions"); ok && now.After(prevAt) {
				rate = (retrans - pr) / now.Sub(prevAt).Seconds()
			}
		}
		fmt.Fprintf(out, "  arq    unacked %.0f  retrans %.0f (%.1f/s)\n", unacked, retrans, rate)
	}
	if desync, ok := cur.get("retrolock_desync_total"); ok && desync > 0 {
		fmt.Fprintf(out, "  !! desync incidents: %.0f\n", desync)
	}
}

func scrape(client *http.Client, url string) (*snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return parseMetrics(resp.Body)
}

func fetchHealthz(client *http.Client, url string) (*healthz, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// 503 is the infeasible verdict, still a valid body.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("%s", resp.Status)
	}
	var hz healthz
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return nil, err
	}
	return &hz, nil
}

// ms renders a nanosecond quantity as milliseconds.
func ms(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", ns/1e6)
}

// historyPoints is the slice retrotop needs from a /history response.
type historyPoints struct {
	Points []struct {
		Value float64 `json:"value"`
	} `json:"points"`
}

// fetchHistory pulls the last minute of one series from the endpoint's
// /history surface. stat is the histogram reduction ("" for scalars). A
// bare metric name that 404s (the store keys labeled series as
// name{k="v"}) is resolved once against the /history listing by prefix —
// retrotop does not know a site's label set in advance.
func fetchHistory(client *http.Client, base, series, stat string) ([]float64, error) {
	q := url.Values{"series": {series}, "window": {"60s"}}
	if stat != "" {
		q.Set("stat", stat)
	}
	resp, err := client.Get(base + "/history?" + q.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && !strings.Contains(series, "{") {
		if key, ok := resolveHistoryKey(client, base, series); ok {
			return fetchHistory(client, base, key, stat)
		}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/history: %s", resp.Status)
	}
	var hp historyPoints
	if err := json.NewDecoder(resp.Body).Decode(&hp); err != nil {
		return nil, err
	}
	vals := make([]float64, len(hp.Points))
	for i, p := range hp.Points {
		vals[i] = p.Value
	}
	return vals, nil
}

// resolveHistoryKey finds the first retained series key carrying the given
// metric name (exact, or name{...} with any label set).
func resolveHistoryKey(client *http.Client, base, name string) (string, bool) {
	resp, err := client.Get(base + "/history")
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var list struct {
		Scalars    []string `json:"scalars"`
		Histograms []string `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return "", false
	}
	for _, keys := range [][]string{list.Scalars, list.Histograms} {
		for _, k := range keys {
			if strings.HasPrefix(k, name+"{") {
				return k, true
			}
		}
	}
	return "", false
}

// sparkFromHistory renders one series as a sparkline, or "" when the
// endpoint retains no history (older daemons) — panels degrade gracefully.
func sparkFromHistory(client *http.Client, base, series, stat string) string {
	vals, err := fetchHistory(client, base, series, stat)
	if err != nil || len(vals) == 0 {
		return ""
	}
	return spark(vals, 30)
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders the last width values scaled against their own maximum.
// All-zero input renders as a flat baseline.
func spark(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(sparkLevels)-1))
			if i >= len(sparkLevels) {
				i = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[i])
	}
	return b.String()
}
