package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"retrolock/internal/relay"
)

// TestRenderFleet drives fleet mode against a canned relayd /sessions
// surface: the JSON snapshot must round-trip into the same summary and
// top-K rows relayd renders locally.
func TestRenderFleet(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/sessions" || req.URL.Query().Get("format") != "json" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{
			"at_unix_ns": 1000000000,
			"window": "1s",
			"summary": {"tracked": 3, "healthy": 2, "degraded": 1, "infeasible": 0, "stalled": 0,
				"graded_total": 12, "flips_total": 1, "captures_total": 1, "captures_suppressed_total": 0},
			"top": [{"token": "00000000000004c1", "shard": 1, "verdict": "degraded",
				"since_seen_ns": 20000000, "gap_mean_ns": 70000000, "residence_p50_ns": 100000,
				"in": 120, "forwarded": 118, "parked": 2, "dropped": 0, "bound": "AB", "flips": 1}]
		}`))
	}))
	defer srv.Close()

	var out strings.Builder
	s := &site{base: srv.URL}
	renderFleet(&out, srv.Client(), s)
	if s.lastErr != nil {
		t.Fatalf("renderFleet: %v", s.lastErr)
	}
	got := out.String()
	for _, want := range []string{
		"fleet: 3 tracked  2 healthy  1 degraded  0 infeasible",
		"00000000000004c1",
		"degraded",
		"70.0", // gap mean in ms
	} {
		if !strings.Contains(got, want) {
			t.Errorf("fleet panel missing %q:\n%s", want, got)
		}
	}
}

// TestRenderFleetUnreachable pins the error path: a dead endpoint marks the
// site failed (so -once exits nonzero) and renders a diagnostic, not a
// panic or empty panel.
func TestRenderFleetUnreachable(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead on arrival

	var out strings.Builder
	s := &site{base: srv.URL}
	renderFleet(&out, http.DefaultClient, s)
	if s.lastErr == nil {
		t.Fatal("renderFleet against a closed server reported no error")
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("fleet panel does not surface the failure:\n%s", out.String())
	}
}

// TestRenderFleetTableShape pins RenderTable itself on an empty fleet: the
// header lines must render and the table must say so rather than print an
// empty grid.
func TestRenderFleetTableShape(t *testing.T) {
	got := relay.RenderTable(&relay.FleetSnapshot{Window: "500ms"})
	if !strings.Contains(got, "fleet: 0 tracked") || !strings.Contains(got, "no unhealthy sessions") {
		t.Errorf("empty-fleet table rendered:\n%s", got)
	}
}
