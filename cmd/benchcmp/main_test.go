package main

import (
	"regexp"
	"strings"
	"testing"
)

var hotGate = regexp.MustCompile(`SyncHotPath|SyncInputNoWait`)

func TestComparePassesWithinThreshold(t *testing.T) {
	old := []Result{{Name: "BenchmarkSyncHotPath", NsPerOp: 1000, AllocsPerOp: 0}}
	cur := []Result{{Name: "BenchmarkSyncHotPath", NsPerOp: 1100, AllocsPerOp: 0}}
	report, failures := compare(old, cur, 0.15, hotGate)
	if len(failures) != 0 {
		t.Fatalf("+10%% within a 15%% threshold failed: %v", failures)
	}
	if !strings.Contains(report, "BenchmarkSyncHotPath") || !strings.Contains(report, "+10.0%") {
		t.Fatalf("report missing the delta:\n%s", report)
	}
}

func TestCompareFailsOnHotPathRegression(t *testing.T) {
	old := []Result{{Name: "BenchmarkSyncHotPath", NsPerOp: 1000, AllocsPerOp: 0}}
	cur := []Result{{Name: "BenchmarkSyncHotPath", NsPerOp: 1200, AllocsPerOp: 0}}
	_, failures := compare(old, cur, 0.15, hotGate)
	if len(failures) != 1 {
		t.Fatalf("+20%% past a 15%% threshold should fail once, got %v", failures)
	}
}

func TestCompareFailsOnAnyAllocGrowth(t *testing.T) {
	old := []Result{{Name: "BenchmarkSyncInputNoWait", NsPerOp: 1000, AllocsPerOp: 0}}
	cur := []Result{{Name: "BenchmarkSyncInputNoWait", NsPerOp: 900, AllocsPerOp: 1}}
	_, failures := compare(old, cur, 0.15, hotGate)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("0 -> 1 allocs/op on a gated bench should fail, got %v", failures)
	}
}

func TestCompareIgnoresUngatedAndNewBenchmarks(t *testing.T) {
	old := []Result{{Name: "BenchmarkFrameLoop", NsPerOp: 1000, AllocsPerOp: 2}}
	cur := []Result{
		{Name: "BenchmarkFrameLoop", NsPerOp: 5000, AllocsPerOp: 9},        // 5x, but not gated
		{Name: "BenchmarkSyncHotPathSpans", NsPerOp: 1700, AllocsPerOp: 0}, // gated but new
	}
	report, failures := compare(old, cur, 0.15, hotGate)
	if len(failures) != 0 {
		t.Fatalf("ungated regressions and new benchmarks must not fail: %v", failures)
	}
	if !strings.Contains(report, "new") {
		t.Fatalf("report should mark the new benchmark:\n%s", report)
	}
}

func TestCompareMarksVanishedBenchmarks(t *testing.T) {
	old := []Result{{Name: "BenchmarkGone", NsPerOp: 10}}
	report, failures := compare(old, nil, 0.15, hotGate)
	if len(failures) != 0 {
		t.Fatalf("a vanished benchmark must not fail the gate: %v", failures)
	}
	if !strings.Contains(report, "gone") {
		t.Fatalf("report should mark the vanished benchmark:\n%s", report)
	}
}

func TestCompareFailsOnMissingGatedBenchmark(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkSyncHotPath", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "BenchmarkFrameLoop", NsPerOp: 2000, AllocsPerOp: 3},
	}
	cur := []Result{{Name: "BenchmarkFrameLoop", NsPerOp: 2000, AllocsPerOp: 3}}
	report, failures := compare(old, cur, 0.15, hotGate)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("a gated benchmark absent from the fresh run must fail the gate, got %v", failures)
	}
	if !strings.Contains(report, "gone !") {
		t.Fatalf("report should mark the vanished gated benchmark as a failure:\n%s", report)
	}
}
