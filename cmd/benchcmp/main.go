// Command benchcmp diffs two benchjson reports and fails on hot-path
// regressions, so CI can gate a PR's perf against the checked-in baseline:
//
//	benchcmp BENCH_PR4.json BENCH_NEW.json
//
// Every benchmark present in both files is printed with its ns/op delta.
// Benchmarks matching -gate (default: the sync hot path) fail the run when
// ns/op regresses by more than -threshold (default 15%) or when allocs/op
// grows at all — the zero-allocation budget is part of the contract, not a
// soft target. A gated benchmark that exists in the baseline but is missing
// from the fresh run also fails: a renamed or deleted hot-path benchmark
// would otherwise silently un-gate itself. Ungated benchmarks present in
// only one file are listed but never fail: new PRs add new benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Result mirrors cmd/benchjson's output element.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

var (
	threshold = flag.Float64("threshold", 0.15, "max tolerated ns/op regression on gated benchmarks (0.15 = +15%)")
	gate      = flag.String("gate", "SyncHotPath|SyncInputNoWait|SyncHotPathFlight|StateHashIncremental|SavestateDelta|RelayDemux|RelayShardStep|HistorySample", "regexp of benchmark names that fail the run on regression")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchcmp [flags] <old.json> <new.json>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	re, err := regexp.Compile(*gate)
	if err != nil {
		fatal(fmt.Errorf("bad -gate: %w", err))
	}
	report, failures := compare(old, cur, *threshold, re)
	os.Stdout.WriteString(report)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcmp: %d hot-path regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
	os.Exit(2)
}

func load(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// compare renders the diff table and collects gate failures.
func compare(old, cur []Result, threshold float64, gate *regexp.Regexp) (string, []string) {
	oldBy := map[string]Result{}
	for _, r := range old {
		oldBy[r.Name] = r
	}
	names := make([]string, 0, len(cur))
	curBy := map[string]Result{}
	for _, r := range cur {
		curBy[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)

	var b strings.Builder
	var failures []string
	fmt.Fprintf(&b, "%-44s %12s %12s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range names {
		n := curBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(&b, "%-44s %12s %12.1f %8s %10s\n", name, "-", n.NsPerOp, "new", allocsCol(-1, n.AllocsPerOp))
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		gated := gate.MatchString(name)
		mark := ""
		if gated {
			if delta > threshold {
				mark = " !"
				failures = append(failures, fmt.Sprintf("%s: ns/op %.1f -> %.1f (%+.1f%%, limit +%.0f%%)",
					name, o.NsPerOp, n.NsPerOp, delta*100, threshold*100))
			}
			if o.AllocsPerOp >= 0 && n.AllocsPerOp > o.AllocsPerOp {
				mark = " !"
				failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d (any growth fails)",
					name, o.AllocsPerOp, n.AllocsPerOp))
			}
		}
		fmt.Fprintf(&b, "%-44s %12.1f %12.1f %+7.1f%% %10s%s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, allocsCol(o.AllocsPerOp, n.AllocsPerOp), mark)
	}
	gone := make([]string, 0)
	for name := range oldBy {
		if _, ok := curBy[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		mark := ""
		if gate.MatchString(name) {
			mark = " !"
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from the fresh run (baseline %.1f ns/op)",
				name, oldBy[name].NsPerOp))
		}
		fmt.Fprintf(&b, "%-44s %12.1f %12s %8s%s\n", name, oldBy[name].NsPerOp, "-", "gone", mark)
	}
	return b.String(), failures
}

func allocsCol(old, cur int64) string {
	switch {
	case cur < 0:
		return "-"
	case old < 0 || old == cur:
		return fmt.Sprintf("%d", cur)
	default:
		return fmt.Sprintf("%d->%d", old, cur)
	}
}
