// Command retroplay runs a two-player RK-32 game session over a real
// network, the live counterpart of the paper's system: both machines load
// the same ROM, exchange inputs over UDP with the lockstep sync module, and
// render to the terminal.
//
// Start the two sites (order does not matter):
//
//	retroplay -game pong -site 0 -listen :7000 -peer 192.0.2.2:7000
//	retroplay -game pong -site 1 -listen :7000 -peer 192.0.2.1:7000
//
// Or rendezvous through a lobby (see cmd/lobbyd):
//
//	retroplay -game pong -site 0 -lobby lobby.example:7200 -session mygame
//	retroplay -game pong -site 1 -lobby lobby.example:7200 -session mygame
//
// Terminals cannot deliver raw gamepad state portably, so -input selects a
// synthetic player: "bot" plays a deterministic pattern, "random" mashes
// buttons, "idle" does nothing. The point of the binary is the distributed
// system, not the joystick.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/lobby"
	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
	"retrolock/internal/relay"
	"retrolock/internal/replay"
	"retrolock/internal/rom"
	"retrolock/internal/rom/games"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
	"retrolock/internal/vm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("retroplay: ")
	var (
		game     = flag.String("game", "pong", "built-in game to play (pong, duel, tanks, cycles, breakout, goldrush)")
		romPath  = flag.String("rom", "", "path to a .rk32 ROM image (overrides -game)")
		site     = flag.Int("site", 0, "this site's number (0 = master, 1 = slave)")
		listen   = flag.String("listen", ":7000", "local UDP address")
		peer     = flag.String("peer", "", "remote site's UDP address")
		lobbySrv = flag.String("lobby", "", "lobby server address for rendezvous (alternative to -peer)")
		useRelay = flag.Bool("relay", false, "with -lobby: expect a relay-hosted placement (relayd) instead of a direct peer")
		session  = flag.String("session", "retrolock", "session code when using -lobby")
		frames   = flag.Int("frames", 3600, "frames to play (0 = until killed)")
		input    = flag.String("input", "bot", "synthetic player: bot, random, idle")
		render   = flag.Int("render", 0, "print the screen every N frames (0 = off)")
		lag      = flag.Int("lag", core.DefaultBufFrame, "local lag in frames")
		record   = flag.String("record", "", "write a replay log to this file")
		useTCP   = flag.Bool("tcp", false, "use the TCP baseline transport instead of UDP")
		spectate = flag.String("spectate", "", "join a running game as a spectator: address of the master site")
		accept   = flag.Bool("accept-spectators", true, "master only: serve savestates to spectators that connect")
		obsAddr  = flag.String("obs", "", "serve live metrics/expvar/pprof on this HTTP address (e.g. :6060)")
		traceOut = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of frame events to this file")
		flightTo = flag.String("flight-dir", ".", "directory for black-box incident bundles (\"\" disables auto-write)")
		stallDur = flag.Duration("stall-threshold", 5*time.Second, "declare a liveness-stall incident after waiting this long for the peer (0 = off)")
	)
	flag.Parse()

	image, err := loadROM(*game, *romPath)
	if err != nil {
		log.Fatal(err)
	}
	console, err := image.Boot()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %q (%d bytes of code)", image.Title, len(image.Code))

	if *spectate != "" {
		if *site < 2 {
			*site = 2 // spectators are sites >= NumPlayers; override a default -site
		}
		spectateMain(image.Title, console, *spectate, *site, *render)
		return
	}
	if *site != 0 && *site != 1 {
		log.Fatalf("-site must be 0 or 1, got %d", *site)
	}

	peerAddr := *peer
	listenAddr := *listen
	var relayToken relay.Token
	relayHosted := false
	if *lobbySrv != "" && *useRelay {
		// Admission path: the lobby places the session on a relay and
		// answers with a token + front address. Game traffic is prefixed
		// with the token and flows via the relay; the relay learns this
		// socket's public address from the first datagram.
		p, err := lobby.RendezvousPlaced(*lobbySrv, *session, *site, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		relayToken, err = relay.ParseToken(p.Token)
		if err != nil {
			log.Fatalf("lobby handed a bad relay token %q: %v", p.Token, err)
		}
		peerAddr = p.Addr
		relayHosted = true
		log.Printf("placed on relay %s (session token %s)", p.Addr, p.Token)
	} else if *lobbySrv != "" {
		local, found, err := lobby.Rendezvous(*lobbySrv, *session, *site, 1-*site, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		listenAddr, peerAddr = local, found
		log.Printf("rendezvous done: peer at %s", peerAddr)
	}
	if peerAddr == "" {
		log.Fatal("need -peer or -lobby")
	}

	var (
		conn transport.Conn
		lst  *transport.UDPListener
	)
	switch {
	case relayHosted:
		// Relay sessions are strictly two-site; spectators would need their
		// own placement, so the master does not demux this socket.
		conn, err = transport.DialUDP(listenAddr, peerAddr)
		if err == nil {
			conn = relay.NewClientConn(conn, relayToken, *site)
		}
	case *useTCP:
		conn, err = dialTCP(*site, listenAddr, peerAddr)
	case *site == 0 && *accept:
		// The master serves spectators from the same socket, so it
		// listens unconnected and demuxes by source.
		lst, err = transport.ListenUDPAddr(listenAddr)
		if err == nil {
			conn, err = lst.Conn(peerAddr)
		}
	default:
		conn, err = transport.DialUDP(listenAddr, peerAddr)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	log.Printf("connected: %s <-> %s", conn.LocalAddr(), conn.RemoteAddr())

	cfg := core.Config{SiteNo: *site, BufFrame: *lag, WaitTimeout: 30 * time.Second}
	ses, err := core.NewSession(cfg, vclock.System, time.Now(), console, []core.Peer{{Site: 1 - *site, Conn: conn}})
	if err != nil {
		log.Fatal(err)
	}
	if lst != nil {
		defer lst.Close()
		go acceptSpectators(lst, ses)
	}

	// Live observability: counters and histograms are free on the hot path
	// (atomics), the tracer keeps the freshest ~64k frame events in a fixed
	// ring, and the whole bundle serves over HTTP while the session runs.
	traceCap := 0
	if *traceOut != "" || *obsAddr != "" {
		traceCap = 1 << 16
	}
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	so := core.NewSessionObs(reg, *site, traceCap, time.Now())
	ses.SetObs(so)
	core.RegisterSessionMetrics(reg, obs.SiteLabels(*site), ses)

	// Input-journey spans: every frame's press/encode/send/recv/merge/exec
	// legs are stamped into a fixed ring and fold into the cross-site
	// latency and skew histograms — allocation-free on the hot path.
	journal := core.NewInputJourney(reg, *site, time.Now())
	ses.SetJournal(journal)

	// Health SLO engine: grades windowed RTT/skew/frame-time against the
	// paper's feasibility region; the verdict serves as retrolock_health_state
	// and GET /healthz, and flips are recorded as tracer incidents.
	health := obs.NewHealth(obs.HealthConfig{}, obs.HealthSources{
		FrameTime: so.FrameTime,
		RTT:       so.RTT,
		Skew:      journal.Skew,
		Frames:    func() int64 { return int64(console.FrameCount()) },
	})
	if so.Tracer != nil {
		health.SetTracer(*site, so.Tracer)
	}
	health.Register(reg, *site)

	// Black-box flight recorder: always on, bounded, and allocation-free in
	// steady state. It auto-writes an incident bundle on divergence, stall,
	// or a frame-loop panic; SIGQUIT or GET /debug/flight/dump snapshots it
	// on demand.
	fr := flight.NewRecorder(console, flight.Options{
		Site:           *site,
		Game:           image.Title,
		ROM:            image.Encode(),
		Config:         ses.Sync().Config(),
		Dir:            *flightTo,
		StallThreshold: *stallDur,
		Registry:       reg,
		Tracer:         so.Tracer,
		Journal:        journal,
	})
	ses.SetFlightRecorder(fr)
	reg.AddDump(fmt.Sprintf("site%d", *site), fr.Dump)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGQUIT)
	go func() {
		for range sigs {
			if path, err := fr.WriteManual(); err != nil {
				log.Printf("flight dump failed: %v", err)
			} else {
				log.Printf("flight bundle written to %s (triage %s)", path, path)
			}
		}
	}()

	// History retention + a burn-rate alert over the session's own health
	// verdict: it fires when this site spends more than 4x a 5% budget of
	// the last minute (and five minutes) at degraded or worse, and shows up
	// on /alerts and /incidents next to the retained series on /history.
	// Sampling rides the same once-per-60-frames callback as the health
	// engine — one tick per wall second at full speed, zero allocations.
	hist := history.Wire(reg, history.Options{
		Rules: []history.Rule{{
			Name:   fmt.Sprintf("session-health-%d", *site),
			Source: history.SourceGauge,
			Bad:    []string{obs.Key("retrolock_health_state", obs.SiteLabels(*site))},
			BadMap: history.BadAbove(float64(obs.Degraded)),
			Budget: 0.05, FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
			Threshold: 4,
		}},
		Tracer:     so.Tracer,
		TracerSite: *site,
	})

	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability on http://%s/ (metrics, healthz, history, alerts, incidents, expvar, pprof, trace)", osrv.Addr())
	}

	log.Print("waiting for the peer (handshake)...")
	if err := ses.Handshake(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	log.Print("session started")

	var rec *replay.Recorder
	if *record != "" {
		rec = replay.NewRecorder(image.Title, console, 0)
	}

	player := newPlayer(*input, *site)
	start := time.Now()
	n := *frames
	if n == 0 {
		n = 1 << 30
	}
	err = ses.RunFrames(n, player.input, func(fi core.FrameInfo) {
		if rec != nil {
			rec.OnFrame(fi.Input)
		}
		if fi.Frame > 0 && fi.Frame%60 == 0 {
			now := time.Now()
			health.Evaluate(now)
			hist.Sample(now)
		}
		if *render > 0 && fi.Frame%*render == 0 {
			fmt.Print("\033[H\033[2J") // clear terminal
			fmt.Print(console.RenderASCII(2))
			fmt.Printf("frame %d  hash %016x  rtt %v\n", fi.Frame, fi.Hash, ses.Sync().RTTTo(1-*site))
		}
	})
	if err != nil {
		if p := fr.BundlePath(); p != "" {
			log.Printf("incident bundle written to %s (analyze with: triage %s)", p, p)
		} else if werr := fr.WriteErr(); werr != nil {
			log.Printf("incident bundle could not be written: %v", werr)
		}
		log.Fatalf("session aborted: %v", err)
	}
	ses.Drain(3 * time.Second)

	elapsed := time.Since(start)
	stats := ses.Sync().Stats()
	log.Printf("played %d frames in %v (%.1f FPS)", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	log.Printf("final state hash: %016x (compare across sites to confirm convergence)", console.StateHash())
	log.Printf("traffic: %d msgs sent, %d received, %d waits (%v waiting), rtt %v",
		stats.MsgsSent, stats.MsgsRcvd, stats.Waits, stats.WaitTime.Round(time.Millisecond),
		ses.Sync().RTTTo(1-*site))

	if rec != nil {
		recLog := rec.Log()
		if err := os.WriteFile(*record, recLog.Encode(), 0o644); err != nil {
			log.Fatalf("writing replay: %v", err)
		}
		log.Printf("replay written to %s", *record)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		if err := so.Tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		log.Printf("trace written to %s (load in chrome://tracing or ui.perfetto.dev)", *traceOut)
	}
}

func loadROM(game, romPath string) (*rom.ROM, error) {
	if romPath != "" {
		data, err := os.ReadFile(romPath)
		if err != nil {
			return nil, err
		}
		return rom.Decode(data)
	}
	return games.Load(game)
}

// dialTCP wires the TCP baseline: the master listens, the slave dials.
func dialTCP(site int, listenAddr, peerAddr string) (transport.Conn, error) {
	if site == 0 {
		return transport.ListenTCP(listenAddr)
	}
	return transport.DialTCP(peerAddr)
}

// acceptSpectators watches the master's socket for unknown senders; a valid
// join request queues the newcomer, and the session streams it a savestate
// at the next frame boundary.
func acceptSpectators(lst *transport.UDPListener, ses *core.Session) {
	for {
		conn, ok := lst.Accept()
		if !ok {
			return
		}
		go func() {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				raw, ok := conn.TryRecv()
				if !ok {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if site, isJoin := core.ParseJoin(raw); isJoin {
					log.Printf("spectator (site %d) joining from %s", site, conn.RemoteAddr())
					ses.QueueJoiner(core.Peer{Site: site, Conn: conn})
					return
				}
			}
			conn.Close() // never identified itself
		}()
	}
}

// spectateMain follows a running match: savestate transfer, then lockstep
// playback of the forwarded inputs.
func spectateMain(title string, console *vm.Console, masterAddr string, site, render int) {
	conn, err := transport.DialUDP("", masterAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	log.Printf("requesting a savestate of %q from %s...", title, masterAddr)

	cfg := core.Config{SiteNo: site, WaitTimeout: 15 * time.Second}
	ses, err := core.JoinSession(cfg, vclock.System, time.Now(), console,
		core.Peer{Site: 0, Conn: conn}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("joined at frame %d", ses.Frame())
	err = ses.RunFrames(1<<30, nil, func(fi core.FrameInfo) {
		if render > 0 && fi.Frame%render == 0 {
			fmt.Print("\033[H\033[2J")
			fmt.Print(console.RenderASCII(2))
			fmt.Printf("frame %d  hash %016x  (spectating)\n", fi.Frame, fi.Hash)
		}
	})
	// The match ending looks like a wait timeout — that's the clean exit.
	log.Printf("spectating ended at frame %d: %v", ses.Frame(), err)
	if derr := ses.Diverged(); derr != nil {
		log.Fatalf("REPLICA DIVERGENCE: %v", derr)
	}
	log.Printf("no divergence against the master's state digests")
	log.Printf("final state hash: %016x (note: a spectator runs %d lag frames past the players' last frame)",
		console.StateHash(), core.DefaultBufFrame)
}

// player synthesizes this site's pad byte per frame.
type player struct {
	mode string
	site int
	rng  uint64
}

func newPlayer(mode string, site int) *player {
	return &player{mode: mode, site: site, rng: uint64(site) + 0x9E3779B97F4A7C15}
}

func (p *player) input(frame int) uint16 {
	var pad byte
	switch p.mode {
	case "idle":
		pad = 0
	case "random":
		h := fnv.New64a()
		fmt.Fprintf(h, "%d.%d.%d", p.site, frame, p.rng)
		pad = byte(h.Sum64())
	default: // bot: wiggle up/down and mash A now and then
		phase := frame / 30 % 4
		switch phase {
		case 0:
			pad = 1 // up
		case 1:
			pad = 2 // down
		case 2:
			pad = 1 | 16 // up + A
		default:
			pad = 2 | 16
		}
	}
	return uint16(pad) << (8 * p.site)
}
