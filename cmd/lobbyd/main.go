// Command lobbyd runs the rendezvous server that lets two retroplay clients
// find each other by a shared session code (§2's "games lobby").
//
//	lobbyd -listen :7200
package main

import (
	"flag"
	"log"

	"retrolock/internal/lobby"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lobbyd: ")
	listen := flag.String("listen", ":7200", "UDP address to serve on")
	flag.Parse()

	srv, err := lobby.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving rendezvous on %s", srv.Addr())
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
}
