// Command lobbyd runs the rendezvous server that lets two retroplay clients
// find each other by a shared session code (§2's "games lobby").
//
//	lobbyd -listen :7200
package main

import (
	"flag"
	"log"
	"time"

	"retrolock/internal/lobby"
	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lobbyd: ")
	listen := flag.String("listen", ":7200", "UDP address to serve on")
	obsAddr := flag.String("obs", "", "serve metrics/expvar/pprof on this HTTP address (e.g. :6060)")
	ttl := flag.Duration("ttl", 10*time.Minute, "idle session expiry")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep cadence")
	maxSessions := flag.Int("max-sessions", 65536, "bound on concurrently tracked sessions")
	flag.Parse()

	srv, err := lobby.ListenConfig(*listen, lobby.Config{
		TTL:         *ttl,
		SweepEvery:  *sweep,
		MaxSessions: *maxSessions,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		lobby.RegisterMetrics(reg, srv)
		obs.RegisterProcessMetrics(reg)
		// Retain every lobby series at multiple resolutions (/history). No
		// alert rules — admission has no error budget to burn; trends are
		// what an operator wants here.
		hist := history.Wire(reg, history.Options{})
		go func() {
			for range time.Tick(hist.Store.BaseStep()) {
				hist.Sample(time.Now())
			}
		}()
		osrv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability on http://%s/ (metrics, history, incidents, pprof)", osrv.Addr())
	}
	log.Printf("serving rendezvous on %s", srv.Addr())
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
}
