// Command lobbyd runs the rendezvous server that lets two retroplay clients
// find each other by a shared session code (§2's "games lobby").
//
//	lobbyd -listen :7200
package main

import (
	"flag"
	"log"

	"retrolock/internal/lobby"
	"retrolock/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lobbyd: ")
	listen := flag.String("listen", ":7200", "UDP address to serve on")
	obsAddr := flag.String("obs", "", "serve metrics/expvar/pprof on this HTTP address (e.g. :6060)")
	flag.Parse()

	srv, err := lobby.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		lobby.RegisterMetrics(reg, srv)
		osrv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		log.Printf("observability on http://%s/", osrv.Addr())
	}
	log.Printf("serving rendezvous on %s", srv.Addr())
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
}
