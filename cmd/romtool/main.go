// Command romtool is the RK-32 cartridge toolchain CLI.
//
//	romtool build game.asm game.rk32 [-title T] [-seed N]   assemble a ROM
//	romtool dis game.rk32                                   disassemble
//	romtool info game.rk32                                  show the header
//	romtool export pong pong.rk32                           write a built-in game
//	romtool run game.rk32 [-frames N] [-input random]       execute headless
//	romtool trace game.rk32 [-frames N] [-max M]            instruction trace
//	romtool verify match.replay game.rk32                   check a recording
//	romtool list                                            list built-in games
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"image"
	"image/png"
	"log"
	"os"

	"retrolock/internal/replay"
	"retrolock/internal/rom"
	"retrolock/internal/rom/games"
	"retrolock/internal/vm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("romtool: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "build":
		build(args)
	case "dis":
		dis(args)
	case "info":
		info(args)
	case "export":
		export(args)
	case "run":
		run(args)
	case "trace":
		trace(args)
	case "verify":
		verify(args)
	case "screenshot":
		screenshot(args)
	case "list":
		for _, name := range games.Names() {
			fmt.Println(name)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  romtool build <src.asm> <out.rk32> [-title T] [-seed N]
  romtool dis <rom.rk32>
  romtool info <rom.rk32>
  romtool export <game> <out.rk32>
  romtool run <rom.rk32|game> [-frames N] [-input idle|random] [-render]
  romtool trace <rom.rk32|game> [-frames N] [-max M]
  romtool verify <match.replay> <rom.rk32|game>
  romtool screenshot <rom.rk32|game> <out.png> [-frames N] [-input random] [-scale S]
  romtool list`)
	os.Exit(2)
}

func screenshot(args []string) {
	fs := flag.NewFlagSet("screenshot", flag.ExitOnError)
	frames := fs.Int("frames", 600, "frames to run before capturing")
	input := fs.String("input", "random", "input mode: idle or random")
	scale := fs.Int("scale", 4, "integer upscaling factor")
	if len(args) < 2 {
		usage()
	}
	_ = fs.Parse(args[2:])
	image := loadImage(args[0])
	console, err := image.Boot()
	if err != nil {
		log.Fatal(err)
	}
	for f := 0; f < *frames; f++ {
		var in uint16
		if *input == "random" {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d", f)
			in = uint16(h.Sum64())
		}
		console.StepFrame(in)
	}
	img := console.Image()
	if *scale > 1 {
		img = upscale(img, *scale)
	}
	f, err := os.Create(args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%dx%d after frame %d of %q)",
		args[1], img.Bounds().Dx(), img.Bounds().Dy(), console.FrameCount(), image.Title)
}

// upscale nearest-neighbour scales img by factor s.
func upscale(img *image.RGBA, s int) *image.RGBA {
	b := img.Bounds()
	out := image.NewRGBA(image.Rect(0, 0, b.Dx()*s, b.Dy()*s))
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			c := img.RGBAAt(x, y)
			for dy := 0; dy < s; dy++ {
				for dx := 0; dx < s; dx++ {
					out.SetRGBA(x*s+dx, y*s+dy, c)
				}
			}
		}
	}
	return out
}

func trace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	frames := fs.Int("frames", 1, "frames to trace")
	max := fs.Int("max", 200, "maximum instructions to print")
	if len(args) < 1 {
		usage()
	}
	_ = fs.Parse(args[1:])
	image := loadImage(args[0])
	console, err := image.Boot()
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	console.SetTrace(func(e vm.TraceEvent) {
		if printed >= *max {
			return
		}
		printed++
		fmt.Printf("f%-4d c%-6d 0x%04X: %s\n", e.Frame, e.Cycle, e.PC, vm.Disassemble(e.Instr))
	})
	for f := 0; f < *frames; f++ {
		console.StepFrame(0)
	}
	fmt.Printf("-- %d frame(s), last frame ran %d cycles, state %016x\n",
		*frames, console.CyclesLastFrame(), console.StateHash())
}

func verify(args []string) {
	if len(args) < 2 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	rlog, err := replay.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	image := loadImage(args[1])
	console, err := image.Boot()
	if err != nil {
		log.Fatal(err)
	}
	if err := rlog.Verify(console); err != nil {
		log.Fatalf("VERIFY FAILED: %v", err)
	}
	fmt.Printf("replay of %q verified: %d frames, final state %016x\n",
		rlog.Game, len(rlog.Inputs), rlog.Final)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	title := fs.String("title", "", "ROM title (defaults to the source filename)")
	seed := fs.Uint("seed", 1, "LFSR seed baked into the header")
	if len(args) < 2 {
		usage()
	}
	src, out := args[0], args[1]
	_ = fs.Parse(args[2:])

	text, err := os.ReadFile(src)
	if err != nil {
		log.Fatal(err)
	}
	name := *title
	if name == "" {
		name = src
	}
	image, err := rom.AssembleROM(name, string(text), uint32(*seed))
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, image.Encode(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %d bytes of code, entry 0x%04X", out, len(image.Code), image.Entry)
}

func loadImage(path string) *rom.ROM {
	// Accept either a file path or a built-in game name.
	if data, err := os.ReadFile(path); err == nil {
		image, err := rom.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		return image
	}
	image, err := games.Load(path)
	if err != nil {
		log.Fatalf("%q is neither a readable file nor a built-in game", path)
	}
	return image
}

func dis(args []string) {
	if len(args) < 1 {
		usage()
	}
	image := loadImage(args[0])
	fmt.Printf("; %s (entry 0x%04X)\n", image.Title, image.Entry)
	fmt.Print(vm.DisassembleCode(image.Code, image.LoadAddr))
}

func info(args []string) {
	if len(args) < 1 {
		usage()
	}
	image := loadImage(args[0])
	h := fnv.New64a()
	h.Write(image.Code)
	fmt.Printf("title:     %s\n", image.Title)
	fmt.Printf("entry:     0x%04X\n", image.Entry)
	fmt.Printf("load addr: 0x%04X\n", image.LoadAddr)
	fmt.Printf("seed:      0x%08X\n", image.Seed)
	fmt.Printf("code:      %d bytes (%d instructions)\n", len(image.Code), len(image.Code)/4)
	fmt.Printf("code hash: %016x\n", h.Sum64())
}

func export(args []string) {
	if len(args) < 2 {
		usage()
	}
	image, err := games.Load(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(args[1], image.Encode(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%s)", args[1], image.Title)
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	frames := fs.Int("frames", 600, "frames to execute")
	input := fs.String("input", "idle", "input mode: idle or random")
	render := fs.Bool("render", false, "print the final screen")
	if len(args) < 1 {
		usage()
	}
	_ = fs.Parse(args[1:])
	image := loadImage(args[0])
	console, err := image.Boot()
	if err != nil {
		log.Fatal(err)
	}
	console.EnableDebugLog() // the run summary reports SYS events
	for f := 0; f < *frames; f++ {
		var in uint16
		if *input == "random" {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d", f)
			in = uint16(h.Sum64())
		}
		console.StepFrame(in)
	}
	if *render {
		fmt.Print(console.RenderASCII(2))
	}
	fmt.Printf("%s: %d frames, halted=%v, overruns=%d, state hash %016x\n",
		image.Title, console.FrameCount(), console.Halted(), console.Overruns(), console.StateHash())
	if events := console.DebugLog(); len(events) > 0 {
		fmt.Printf("%d SYS events; last: frame %d code %d value %d\n",
			len(events), events[len(events)-1].Frame, events[len(events)-1].Code, events[len(events)-1].Value)
	}
}
