// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report. It reads the benchmark stream on stdin, echoes it unchanged to
// stdout (so CI logs keep the human-readable table) and writes a JSON array
// to -out:
//
//	go test -run NONE -bench 'SyncHotPath' -benchmem . | benchjson -out BENCH.json
//
// Each element carries the benchmark name, iteration count, ns/op and — when
// -benchmem was on — B/op and allocs/op, plus any custom ReportMetric pairs
// (keyed by their unit). Lines that are not benchmark results (headers, PASS,
// ok) pass through untouched.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are -1 when -benchmem was off.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric series, keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout only)")
	flag.Parse()
	results, err := convert(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// convert parses the benchmark stream from r, echoing every line to echo.
func convert(r io.Reader, echo io.Writer) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if res, ok := parseLine(line); ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine recognizes one `Benchmark<Name>-N  iters  value unit  ...` line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix the runner appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	sawNs := false
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		case "MB/s":
			// throughput is derivable from ns/op; keep it as a metric
			fallthrough
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, sawNs
}
