package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestConvert(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkSyncHotPath-8       	 1000000	      1035 ns/op	       0 B/op	       0 allocs/op
BenchmarkSyncHotPathFlight-8 	    2556	    461660 ns/op	       2 B/op	       0 allocs/op
BenchmarkFigure1/rtt=0ms-8   	      38	  31338628 ns/op	        16.66 frame-ms	         0.04575 deviation-ms
PASS
ok  	retrolock	4.9s
`
	var echo bytes.Buffer
	results, err := convert(strings.NewReader(in), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != in {
		t.Error("input was not echoed verbatim")
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkSyncHotPath" || r.Iterations != 1000000 ||
		r.NsPerOp != 1035 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("result 0 = %+v", r)
	}
	if results[1].AllocsPerOp != 0 || results[1].BytesPerOp != 2 {
		t.Errorf("result 1 = %+v", results[1])
	}
	fig := results[2]
	if fig.Name != "BenchmarkFigure1/rtt=0ms" || fig.Metrics["frame-ms"] != 16.66 {
		t.Errorf("result 2 = %+v", fig)
	}
	if fig.BytesPerOp != -1 || fig.AllocsPerOp != -1 {
		t.Errorf("missing -benchmem fields should be -1: %+v", fig)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	retrolock	4.9s",
		"goos: linux",
		"Benchmark alone",
		"BenchmarkX-8 notanumber 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
