// Command triage is the offline desync analyzer: it ingests one incident
// bundle written by the flight recorder (or one per site), deterministically
// replays the embedded input window from the nearest checkpoint, bisects the
// exact first divergent frame, diffs the expected machine state against the
// recorded one, and renders the merged two-site timeline.
//
// Usage:
//
//	triage [-json] [-q] site0.rkfb [site1.rkfb]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"retrolock/internal/flight"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("triage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	quiet := fs.Bool("q", false, "omit the merged timeline from text output")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: triage [-json] [-q] bundle.rkfb [bundle2.rkfb]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) < 1 || len(paths) > 2 {
		fs.Usage()
		return 2
	}

	var bundles []*flight.Bundle
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(stderr, "triage: %v\n", err)
			return 1
		}
		b, err := flight.Decode(data)
		if err != nil {
			fmt.Fprintf(stderr, "triage: %s: %v\n", p, err)
			return 1
		}
		bundles = append(bundles, b)
		if !*jsonOut {
			m := b.Manifest
			fmt.Fprintf(stdout, "%s: site %d, incident %q at frame %d, game %q, %d frames recorded",
				p, m.Site, m.Kind, m.Frame, m.Game, len(b.Frames))
			if m.Cause != "" {
				fmt.Fprintf(stdout, "\n  cause: %s", m.Cause)
			}
			fmt.Fprintln(stdout)
		}
	}

	report, err := flight.Analyze(bundles...)
	if err != nil {
		fmt.Fprintf(stderr, "triage: %v\n", err)
		return 1
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "triage: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprintln(stdout)
	report.Format(stdout, !*quiet)
	return 0
}
