package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/rom/games"
)

// writeBundle records a short pong session (poking addr just before
// pokeFrame when xor != 0), fires a desync incident and writes the bundle
// into dir.
func writeBundle(t *testing.T, dir string, site, last, pokeFrame int, addr uint16, xor byte) string {
	t.Helper()
	game := games.MustLoad("pong")
	console, err := game.Boot()
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(console, flight.Options{
		Site: site, Game: "pong", ROM: game.Encode(),
		Config: core.Config{NumPlayers: 2, BufFrame: 6, CFPS: 60, HashInterval: 60},
		Dir:    dir,
	})
	for f := 0; f <= last; f++ {
		if xor != 0 && f == pokeFrame {
			console.Poke(addr, console.Peek(addr)^xor)
		}
		in := uint16(uint32(f) * 2654435761)
		console.StepFrame(in)
		rec.RecordFrame(f, in, console.StateHash(), 0)
	}
	rec.Incident(core.IncidentDesync, fmt.Errorf("test divergence"))
	if err := rec.WriteErr(); err != nil {
		t.Fatal(err)
	}
	return rec.BundlePath()
}

func TestRunSingleBundle(t *testing.T) {
	dir := t.TempDir()
	path := writeBundle(t, dir, 1, 260, 200, 0x7ABC, 0x5A)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"first divergent frame: 200",
		"nondeterministic site: 1",
		"ram[0x7abc]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
}

func TestRunTwoBundlesJSON(t *testing.T) {
	dir := t.TempDir()
	p0 := writeBundle(t, dir, 0, 220, 0, 0, 0)
	p1 := writeBundle(t, dir, 1, 220, 150, 0x7ABC, 0x11)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", p0, p1}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rep flight.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not a Report: %v\n%s", err, out.String())
	}
	if rep.FirstDivergentFrame != 150 || rep.NondeterministicSite != 1 {
		t.Fatalf("report = frame %d site %d, want 150/1", rep.FirstDivergentFrame, rep.NondeterministicSite)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/does/not/exist.rkfb"}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.rkfb")
	if err := os.WriteFile(bad, []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 1 {
		t.Errorf("corrupt file: exit %d, want 1", code)
	}
}
