GO ?= go

.PHONY: verify verify-race chaos relay-soak fuzz bench bench-all bench-hotpath bench-gate qoe lint

# Tier 1: the baseline gate — everything builds, every test passes
# (including the default chaos soaks), then the race detector and the
# long seed-sweeping soak.
verify: verify-race chaos
	$(GO) build ./...
	$(GO) test ./...

# Tier 2: static analysis plus the full suite under the race detector.
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# The long chaos soak: every scenario across CHAOS_SEEDS seeds, each run
# twice to prove per-phase stats are bit-identical, 10k frames per run,
# all in virtual time (see internal/chaos).
CHAOS_SEEDS ?= 5
CHAOS_FRAMES ?= 10000
chaos:
	$(GO) test ./internal/chaos/ -run 'TestSoak' -count 1 \
		-chaos.seeds $(CHAOS_SEEDS) -chaos.frames $(CHAOS_FRAMES) -v

# The relayd hosting soak: RELAY_SESSIONS two-site sessions multiplexed
# over a sharded virtual-time relay daemon while the phase controller
# cycles clean → burst-loss → partition → heal (see
# internal/relay/soak_test.go for the invariants it enforces, including
# per-session fleet verdicts and the single anomaly .rkcp bundle, written
# into RELAY_CAPTURE_DIR for CI to upload on failure).
RELAY_SESSIONS ?= 10000
RELAY_CAPTURE_DIR ?= relay-captures
relay-soak:
	mkdir -p $(RELAY_CAPTURE_DIR)
	RETROLOCK_RELAY_CAPTURE_DIR=$(RELAY_CAPTURE_DIR) \
		$(GO) test ./internal/relay/ -run 'TestRelaySoak' -count 1 \
		-relay.sessions $(RELAY_SESSIONS) -v

# Wire-format and toolchain fuzzers (coverage-guided; seeds always run
# under `make verify`).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/lobby/ -fuzz FuzzLobbyParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz FuzzDecodeSync -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz FuzzDecodeSnapChunk -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rom/ -fuzz FuzzDecodeROM -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rom/games/ -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/flight/ -fuzz FuzzDecodeBundle -fuzztime $(FUZZTIME)
	$(GO) test ./internal/span/ -fuzz FuzzDecodeSpan -fuzztime $(FUZZTIME)
	$(GO) test ./internal/capture/ -fuzz FuzzDecodeCapture -fuzztime $(FUZZTIME)

# The steady-state sync loop with allocs/op; BenchmarkSyncHotPath must
# report 0 allocs/op (also enforced by TestSyncHotPathDoesNotAllocate).
bench-hotpath:
	$(GO) test -run NONE -bench 'SyncHotPath|SyncInputNoWait' -benchmem .

# The tracked perf surface — the sync hot path, the full frame loop
# (plain, traced, and with the flight recorder attached), the dirty-page
# savestate/digest paths, the relayd packet path, and the history
# retention tick — rendered into the machine-readable $(BENCH_JSON) via
# cmd/benchjson. CI runs this and uploads the JSON as an artifact.
BENCH_JSON ?= BENCH_PR10.json
bench:
	$(GO) test -run NONE -bench 'SyncHotPath|FrameLoop|SyncInputNoWait|StateHashIncremental|SavestateDelta|RelayDemux|RelayShardStep|HistorySample' -benchmem . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# Regression gate: rebuild the perf report and diff it against the
# checked-in baseline with cmd/benchcmp. Fails on a >15% ns/op regression
# or any allocs/op growth on a gated benchmark — and on a gated benchmark
# disappearing from the fresh run.
BENCH_BASELINE ?= BENCH_PR10.json
bench-gate:
	$(MAKE) bench BENCH_JSON=BENCH_NEW.json
	$(GO) run ./cmd/benchcmp $(BENCH_BASELINE) BENCH_NEW.json

# The QoE load-generation gate: replays the 1024-session virtual-time
# sweep across every netem profile and diffs the verdict table against
# the checked-in baseline (internal/trafficgen/testdata/qoe_baseline.txt).
# On a mismatch the got/want tables and a pair of small .rkcp captures
# land in $(QOE_DIR) for CI to upload. Regenerate the baseline after an
# intentional QoE change with `make qoe-update`.
QOE_DIR ?= qoe-artifacts
qoe:
	RETROLOCK_QOE_DIR=$(QOE_DIR) $(GO) test ./internal/trafficgen/ \
		-run 'TestQoESweep' -count 1 -v

qoe-update:
	$(GO) test ./internal/trafficgen/ -run 'TestQoESweepMatchesBaseline' -count 1 \
		-qoe.update -v

# Static analysis beyond go vet. Staticcheck is fetched on demand — CI
# runs this; locally it needs network the first time.
lint:
	$(GO) vet ./...
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...

# The full figure-reproduction benchmark suite.
bench-all:
	$(GO) test -run NONE -bench . -benchmem .
