GO ?= go

.PHONY: verify verify-race fuzz bench bench-hotpath

# Tier 1: the baseline gate — everything builds, every test passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Tier 2: static analysis plus the full suite under the race detector.
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Wire-format fuzzers (coverage-guided; seeds always run under `make verify`).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzDecodeSync -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz FuzzDecodeSnapChunk -fuzztime $(FUZZTIME)

# The steady-state sync loop with allocs/op; BenchmarkSyncHotPath must
# report 0 allocs/op (also enforced by TestSyncHotPathDoesNotAllocate).
bench-hotpath:
	$(GO) test -run NONE -bench 'SyncHotPath|SyncInputNoWait' -benchmem .

# The full figure-reproduction benchmark suite.
bench:
	$(GO) test -run NONE -bench . -benchmem .
