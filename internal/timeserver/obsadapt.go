package timeserver

import "retrolock/internal/obs"

// Series names for the measurement time server.
const (
	MetricReports = "retrolock_timeserver_reports"
	MetricSites   = "retrolock_timeserver_sites"
)

// RegisterMetrics publishes the live server's recording volume; closures
// snapshot under the recorder mutex, so scrapes are safe while Serve reads.
func RegisterMetrics(r *obs.Registry, s *UDPServer) {
	r.CounterFunc(MetricReports, nil, "frame-begin reports recorded", func() float64 {
		n, _ := s.ReportCount()
		return float64(n)
	})
	r.GaugeFunc(MetricSites, nil, "distinct sites seen reporting", func() float64 {
		_, n := s.ReportCount()
		return float64(n)
	})
}
