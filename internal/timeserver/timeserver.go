// Package timeserver implements the measurement infrastructure of the
// paper's testbed (§4): a third host that timestamps "frame begin" reports
// from the gaming sites, so frame times and cross-site synchrony can be
// measured without synchronizing the sites' own clocks. The sites are
// connected to the server over a LAN whose round trip is "safely under 1 ms".
//
// Server runs over the in-process simnet (the experiment harness); UDPServer
// is the equivalent for live measurement over a real network.
package timeserver

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

// Report wire format: type byte, site byte, frame uint32 (little endian).
const (
	msgReport = byte(0x54) // 'T'
	reportLen = 6
)

// EncodeReport builds a frame-begin report datagram.
func EncodeReport(site, frame int) []byte {
	buf := make([]byte, reportLen)
	buf[0] = msgReport
	buf[1] = byte(site)
	binary.LittleEndian.PutUint32(buf[2:], uint32(frame))
	return buf
}

// DecodeReport parses a report datagram.
func DecodeReport(p []byte) (site, frame int, err error) {
	if len(p) != reportLen || p[0] != msgReport {
		return 0, 0, fmt.Errorf("timeserver: malformed report (%d bytes)", len(p))
	}
	return int(p[1]), int(binary.LittleEndian.Uint32(p[2:])), nil
}

// Sample is one timestamped frame-begin report.
type Sample struct {
	Frame int
	At    time.Time
}

// recorder accumulates samples per site. Duplicate reports for a frame keep
// the first arrival (retransmissions must not skew timing).
type recorder struct {
	mu    sync.Mutex
	sites map[int]map[int]time.Time
}

func newRecorder() *recorder {
	return &recorder{sites: make(map[int]map[int]time.Time)}
}

func (r *recorder) record(site, frame int, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.sites[site]
	if !ok {
		m = make(map[int]time.Time)
		r.sites[site] = m
	}
	if _, dup := m[frame]; !dup {
		m[frame] = at
	}
}

// total reports the number of recorded samples across all sites, and the
// number of sites seen.
func (r *recorder) total() (reports, sites int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.sites {
		reports += len(m)
	}
	return reports, len(r.sites)
}

func (r *recorder) samples(site int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.sites[site]
	out := make([]Sample, 0, len(m))
	for f, at := range m {
		out = append(out, Sample{Frame: f, At: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	return out
}

// Server is a time server bound to a simnet endpoint. Start it with
// clock.Go(server.Run) and stop it with Stop.
type Server struct {
	ep    *simnet.Endpoint
	clock vclock.Clock

	rec  *recorder
	mu   sync.Mutex
	stop bool
}

// NewServer creates a server reading reports from ep.
func NewServer(ep *simnet.Endpoint, clock vclock.Clock) *Server {
	return &Server{ep: ep, clock: clock, rec: newRecorder()}
}

// Run polls for reports until Stop is called. It is designed to run as a
// virtual-clock actor. Samples are timestamped with each datagram's exact
// delivery instant, so the polling interval does not quantize measurements.
func (s *Server) Run() {
	const pollEvery = 2 * time.Millisecond
	for {
		s.mu.Lock()
		stopped := s.stop
		s.mu.Unlock()
		if stopped {
			return
		}
		for {
			d, ok := s.ep.TryRecv()
			if !ok {
				break
			}
			site, frame, err := DecodeReport(d.Payload)
			if err != nil {
				continue
			}
			s.rec.record(site, frame, d.At)
		}
		s.clock.Sleep(pollEvery)
	}
}

// Stop makes Run return after its current poll.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stop = true
}

// Samples returns the recorded frame-begin times of a site, frame-ordered.
func (s *Server) Samples(site int) []Sample { return s.rec.samples(site) }

// ReportCount returns the number of recorded frame reports across all sites
// and the number of distinct reporting sites. Safe to call while Run polls.
func (s *Server) ReportCount() (reports, sites int) { return s.rec.total() }

// FrameTimes returns consecutive frame-begin differences for a site — the
// per-frame times of experiment series 1. Frames missing a report are
// skipped together with their successor.
func (s *Server) FrameTimes(site int) []time.Duration {
	return FrameTimes(s.rec.samples(site))
}

// SyncDiffs returns, per frame, the begin-time difference between two sites
// (site b minus site a) — the metric of experiment series 2.
func (s *Server) SyncDiffs(a, b int) []time.Duration {
	return SyncDiffs(s.rec.samples(a), s.rec.samples(b))
}

// FrameTimes computes consecutive frame-begin differences from samples.
func FrameTimes(samples []Sample) []time.Duration {
	var out []time.Duration
	for i := 1; i < len(samples); i++ {
		if samples[i].Frame == samples[i-1].Frame+1 {
			out = append(out, samples[i].At.Sub(samples[i-1].At))
		}
	}
	return out
}

// SyncDiffs pairs samples by frame number and returns b.At - a.At per frame.
func SyncDiffs(a, b []Sample) []time.Duration {
	byFrame := make(map[int]time.Time, len(a))
	for _, s := range a {
		byFrame[s.Frame] = s.At
	}
	var out []time.Duration
	for _, s := range b {
		if at, ok := byFrame[s.Frame]; ok {
			out = append(out, s.At.Sub(at))
		}
	}
	return out
}

// UDPServer is the live-network time server used by cmd/timeserverd: same
// recording logic over a real UDP socket.
type UDPServer struct {
	pc  net.PacketConn
	rec *recorder

	mu     sync.Mutex
	closed bool
}

// ListenUDP binds a live time server to addr (e.g. ":7100").
func ListenUDP(addr string) (*UDPServer, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("timeserver: listen: %w", err)
	}
	return &UDPServer{pc: pc, rec: newRecorder()}, nil
}

// Addr returns the bound address.
func (s *UDPServer) Addr() string { return s.pc.LocalAddr().String() }

// Serve reads reports until Close. Timestamps use the host clock at the
// moment the datagram is read.
func (s *UDPServer) Serve() error {
	buf := make([]byte, 64)
	for {
		n, _, err := s.pc.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("timeserver: read: %w", err)
		}
		if site, frame, err := DecodeReport(buf[:n]); err == nil {
			s.rec.record(site, frame, time.Now())
		}
	}
}

// Close stops Serve.
func (s *UDPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.pc.Close()
}

// Samples returns the recorded frame-begin times of a site.
func (s *UDPServer) Samples(site int) []Sample { return s.rec.samples(site) }

// ReportCount mirrors Server.ReportCount for the live server. Safe to call
// while Serve reads.
func (s *UDPServer) ReportCount() (reports, sites int) { return s.rec.total() }

// FrameTimes mirrors Server.FrameTimes for the live server.
func (s *UDPServer) FrameTimes(site int) []time.Duration {
	return FrameTimes(s.rec.samples(site))
}

// SyncDiffs mirrors Server.SyncDiffs for the live server.
func (s *UDPServer) SyncDiffs(a, b int) []time.Duration {
	return SyncDiffs(s.rec.samples(a), s.rec.samples(b))
}
