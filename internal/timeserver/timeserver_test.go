package timeserver

import (
	"net"
	"testing"
	"time"

	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

var epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

func TestReportRoundTrip(t *testing.T) {
	site, frame, err := DecodeReport(EncodeReport(1, 123456))
	if err != nil {
		t.Fatal(err)
	}
	if site != 1 || frame != 123456 {
		t.Fatalf("got %d/%d, want 1/123456", site, frame)
	}
	if _, _, err := DecodeReport([]byte{1, 2}); err == nil {
		t.Error("short report accepted")
	}
	bad := EncodeReport(0, 1)
	bad[0] = 0xFF
	if _, _, err := DecodeReport(bad); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestServerRecordsOverSimnet(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	tsEP := n.MustBind("ts")
	site0 := n.MustBind("s0")
	site1 := n.MustBind("s1")

	srv := NewServer(tsEP, v)
	srvDone := v.Go(srv.Run)

	clientDone := v.Go(func() {
		for f := 0; f < 10; f++ {
			_ = site0.SendTo("ts", EncodeReport(0, f))
			v.Sleep(5 * time.Millisecond)
			_ = site1.SendTo("ts", EncodeReport(1, f))
			v.Sleep(11666 * time.Microsecond) // ~16.7ms frames
		}
		v.Sleep(10 * time.Millisecond)
		srv.Stop()
	})
	<-clientDone
	<-srvDone

	s0 := srv.Samples(0)
	if len(s0) != 10 {
		t.Fatalf("site 0 samples = %d, want 10", len(s0))
	}
	ft := srv.FrameTimes(0)
	if len(ft) != 9 {
		t.Fatalf("frame times = %d, want 9", len(ft))
	}
	for i, d := range ft {
		if d < 16*time.Millisecond || d > 18*time.Millisecond {
			t.Errorf("frame time %d = %v, want ~16.7ms", i, d)
		}
	}
	diffs := srv.SyncDiffs(0, 1)
	if len(diffs) != 10 {
		t.Fatalf("sync diffs = %d, want 10", len(diffs))
	}
	for i, d := range diffs {
		if d < 4*time.Millisecond || d > 6*time.Millisecond {
			t.Errorf("sync diff %d = %v, want ~5ms", i, d)
		}
	}
}

func TestDuplicateReportsKeepFirst(t *testing.T) {
	r := newRecorder()
	t0 := epoch
	r.record(0, 5, t0)
	r.record(0, 5, t0.Add(time.Second))
	s := r.samples(0)
	if len(s) != 1 || !s[0].At.Equal(t0) {
		t.Fatalf("duplicate handling wrong: %+v", s)
	}
}

func TestFrameTimesSkipGaps(t *testing.T) {
	samples := []Sample{
		{Frame: 0, At: epoch},
		{Frame: 1, At: epoch.Add(17 * time.Millisecond)},
		{Frame: 3, At: epoch.Add(51 * time.Millisecond)}, // frame 2 missing
		{Frame: 4, At: epoch.Add(68 * time.Millisecond)},
	}
	ft := FrameTimes(samples)
	if len(ft) != 2 {
		t.Fatalf("frame times = %v, want 2 entries (gap skipped)", ft)
	}
}

func TestSyncDiffsPairByFrame(t *testing.T) {
	a := []Sample{{Frame: 0, At: epoch}, {Frame: 1, At: epoch.Add(17 * time.Millisecond)}}
	b := []Sample{{Frame: 1, At: epoch.Add(20 * time.Millisecond)}, {Frame: 9, At: epoch.Add(time.Second)}}
	d := SyncDiffs(a, b)
	if len(d) != 1 || d[0] != 3*time.Millisecond {
		t.Fatalf("SyncDiffs = %v, want [3ms]", d)
	}
}

func TestUDPServerLoopback(t *testing.T) {
	srv, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	// Fire reports at it over a plain UDP socket.
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for f := 0; f < 5; f++ {
		if _, err := conn.Write(EncodeReport(0, f)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Samples(0)) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("server recorded %d/5 reports", len(srv.Samples(0)))
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
	if ft := srv.FrameTimes(0); len(ft) != 4 {
		t.Fatalf("frame times = %d, want 4", len(ft))
	}
}
