package netem

import (
	"math"
	"testing"
	"time"
)

var now = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

func TestConstantDelayNoKnobs(t *testing.T) {
	e := New(Config{Delay: 70 * time.Millisecond, Seed: 1})
	for i := 0; i < 100; i++ {
		offs := e.Plan(now, 100)
		if len(offs) != 1 || offs[0] != 70*time.Millisecond {
			t.Fatalf("Plan = %v, want exactly [70ms]", offs)
		}
	}
}

func TestJitterBoundsAndSpread(t *testing.T) {
	const base, jit = 50 * time.Millisecond, 10 * time.Millisecond
	e := New(Config{Delay: base, Jitter: jit, Seed: 2})
	lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
	for i := 0; i < 2000; i++ {
		offs := e.Plan(now, 100)
		d := offs[0]
		if d < base-jit || d > base+jit {
			t.Fatalf("delay %v outside [%v,%v]", d, base-jit, base+jit)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < jit { // should cover most of the 20ms window
		t.Errorf("jitter spread only %v over 2000 samples; PRNG not spreading", hi-lo)
	}
}

func TestLossRateApproximate(t *testing.T) {
	e := New(Config{Delay: time.Millisecond, Loss: 0.25, Seed: 3})
	const n = 10000
	lost := 0
	for i := 0; i < n; i++ {
		if len(e.Plan(now, 100)) == 0 {
			lost++
		}
	}
	got := float64(lost) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("observed loss %.3f, want ~0.25", got)
	}
	planned, dropped, _, _ := e.Stats()
	if planned != n || dropped != lost {
		t.Errorf("stats planned=%d dropped=%d, want %d/%d", planned, dropped, n, lost)
	}
}

func TestDuplicationRate(t *testing.T) {
	e := New(Config{Delay: time.Millisecond, Duplicate: 0.5, Seed: 4})
	const n = 4000
	copies := 0
	for i := 0; i < n; i++ {
		copies += len(e.Plan(now, 100))
	}
	got := float64(copies)/n - 1
	if got < 0.45 || got > 0.55 {
		t.Errorf("observed duplication %.3f, want ~0.5", got)
	}
}

func TestReorderAddsExtraDelay(t *testing.T) {
	e := New(Config{Delay: 20 * time.Millisecond, Reorder: 1.0, ReorderExtra: 15 * time.Millisecond, Seed: 5})
	offs := e.Plan(now, 100)
	if offs[0] != 35*time.Millisecond {
		t.Errorf("reordered delay = %v, want 35ms", offs[0])
	}
	_, _, _, reordered := e.Stats()
	if reordered != 1 {
		t.Errorf("reordered counter = %d, want 1", reordered)
	}
}

func TestReorderExtraDefaults(t *testing.T) {
	withJitter := New(Config{Jitter: 5 * time.Millisecond})
	if got := withJitter.reorderExtraLocked(); got != 20*time.Millisecond {
		t.Errorf("default extra with jitter = %v, want 4*jitter = 20ms", got)
	}
	plain := New(Config{})
	if got := plain.reorderExtraLocked(); got != 10*time.Millisecond {
		t.Errorf("default extra without jitter = %v, want 10ms", got)
	}
}

func TestProcDelayWithinQuantum(t *testing.T) {
	const q = 10 * time.Millisecond
	e := New(Config{ProcDelay: q, Seed: 6})
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		d := e.Plan(now, 100)[0]
		if d < 0 || d >= q {
			t.Fatalf("proc delay %v outside [0,%v)", d, q)
		}
		sum += d
	}
	avg := sum / n
	// §4.2: a 10 ms quantum yields a ~5 ms average delay.
	if avg < 4*time.Millisecond || avg > 6*time.Millisecond {
		t.Errorf("average proc delay %v, want ~5ms", avg)
	}
}

func TestRateSerializesPackets(t *testing.T) {
	// 8000 bit/s -> a 100-byte (800-bit) packet takes 100ms on the wire.
	e := New(Config{Rate: 8000, Seed: 7})
	first := e.Plan(now, 100)[0]
	second := e.Plan(now, 100)[0] // sent at the same instant: queues behind
	if first != 100*time.Millisecond {
		t.Errorf("first packet offset = %v, want 100ms", first)
	}
	if second != 200*time.Millisecond {
		t.Errorf("second packet offset = %v, want 200ms (queueing)", second)
	}
	// After the link drains, transmission starts immediately again.
	later := now.Add(time.Second)
	third := e.Plan(later, 100)[0]
	if third != 100*time.Millisecond {
		t.Errorf("post-idle packet offset = %v, want 100ms", third)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	cfg := Config{Delay: 30 * time.Millisecond, Jitter: 8 * time.Millisecond, Loss: 0.1, Duplicate: 0.05, Seed: 42}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		pa, pb := a.Plan(now, 64), b.Plan(now, 64)
		if len(pa) != len(pb) {
			t.Fatalf("packet %d: plans diverge in count: %v vs %v", i, pa, pb)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("packet %d copy %d: %v vs %v", i, j, pa[j], pb[j])
			}
		}
	}
}

func TestSymmetricHelper(t *testing.T) {
	fwd, rev := Symmetric(140*time.Millisecond, 2*time.Millisecond, 0.01, 100)
	if fwd.Delay != 70*time.Millisecond || rev.Delay != 70*time.Millisecond {
		t.Errorf("one-way delays = %v/%v, want 70ms each (RTT/2)", fwd.Delay, rev.Delay)
	}
	if fwd.Seed == rev.Seed {
		t.Error("directions share a seed; their randomness would correlate")
	}
	if fwd.Loss != 0.01 || rev.Loss != 0.01 {
		t.Errorf("loss = %v/%v, want 0.01", fwd.Loss, rev.Loss)
	}
}

func TestNegativeDelayClampedToZero(t *testing.T) {
	// Jitter larger than delay must not produce negative offsets.
	e := New(Config{Delay: time.Millisecond, Jitter: 50 * time.Millisecond, Seed: 8})
	for i := 0; i < 1000; i++ {
		for _, d := range e.Plan(now, 10) {
			if d < 0 {
				t.Fatalf("negative delay %v", d)
			}
		}
	}
}

func TestBurstLossRateAndClustering(t *testing.T) {
	const n = 40000
	indep := New(Config{Delay: time.Millisecond, Loss: 0.10, Seed: 21})
	burst := New(Config{Delay: time.Millisecond, Loss: 0.10, BurstLoss: true, MeanBurst: 6, Seed: 21})

	runLen := func(e *Emulator) (rate float64, meanRun float64) {
		lost, runs, runSum := 0, 0, 0
		cur := 0
		for i := 0; i < n; i++ {
			dropped := len(e.Plan(now, 64)) == 0
			if dropped {
				lost++
				cur++
			} else if cur > 0 {
				runs++
				runSum += cur
				cur = 0
			}
		}
		if cur > 0 {
			runs++
			runSum += cur
		}
		if runs == 0 {
			return float64(lost) / n, 0
		}
		return float64(lost) / n, float64(runSum) / float64(runs)
	}

	iRate, iRun := runLen(indep)
	bRate, bRun := runLen(burst)
	// Both processes target the same long-run rate.
	if iRate < 0.08 || iRate > 0.12 {
		t.Errorf("independent loss rate %.3f, want ~0.10", iRate)
	}
	if bRate < 0.07 || bRate > 0.13 {
		t.Errorf("burst loss rate %.3f, want ~0.10", bRate)
	}
	// The burst process must cluster: clearly longer loss runs.
	if bRun < iRun*2 {
		t.Errorf("burst mean run %.2f vs independent %.2f; no clustering", bRun, iRun)
	}
}

func TestBurstLossDefaults(t *testing.T) {
	e := New(Config{Loss: 0.05, BurstLoss: true})
	if e.cfg.MeanBurst != 4 || e.cfg.BadLoss != 1 {
		t.Errorf("defaults not applied: %+v", e.cfg)
	}
}

func TestDuplicateRespectsRateQueue(t *testing.T) {
	// 8000 bit/s: a 100-byte packet takes 100ms on the wire. The
	// duplicate must be serialized behind its original, never planned
	// with a fresh propagation-only delay that overtakes the queue.
	e := New(Config{Rate: 8000, Duplicate: 1.0, Seed: 9})
	offs := e.Plan(now, 100)
	if len(offs) != 2 {
		t.Fatalf("Plan returned %d copies, want 2", len(offs))
	}
	if offs[0] != 100*time.Millisecond {
		t.Errorf("original offset = %v, want 100ms", offs[0])
	}
	if offs[1] != 200*time.Millisecond {
		t.Errorf("duplicate offset = %v, want 200ms (serialized behind the original)", offs[1])
	}
	if offs[1] <= offs[0] {
		t.Errorf("duplicate (%v) not behind original (%v): bypassed the rate queue", offs[1], offs[0])
	}
	// The next packet queues behind both copies.
	next := e.Plan(now, 100)
	if next[0] != 300*time.Millisecond {
		t.Errorf("next original offset = %v, want 300ms (duplicate consumed bandwidth)", next[0])
	}
}

func TestDuplicateSubjectToReorderKnob(t *testing.T) {
	e := New(Config{Delay: 10 * time.Millisecond, Duplicate: 1.0, Reorder: 1.0, ReorderExtra: 15 * time.Millisecond, Seed: 10})
	offs := e.Plan(now, 100)
	if len(offs) != 2 {
		t.Fatalf("Plan returned %d copies, want 2", len(offs))
	}
	for i, off := range offs {
		if off != 25*time.Millisecond {
			t.Errorf("copy %d offset = %v, want 25ms (delay + reorder extra)", i, off)
		}
	}
	_, _, _, reordered := e.Stats()
	if reordered != 2 {
		t.Errorf("reordered counter = %d, want 2 (both copies roll the knob)", reordered)
	}
}

func TestCorruptFlipsExactlyOneBitInACopy(t *testing.T) {
	e := New(Config{Corrupt: 1.0, Seed: 11})
	p := make([]byte, 32)
	for i := range p {
		p[i] = 0xAA
	}
	orig := append([]byte(nil), p...)
	q, changed := e.Corrupt(p)
	if !changed {
		t.Fatal("Corrupt = unchanged at probability 1.0")
	}
	for i := range p {
		if p[i] != orig[i] {
			t.Fatalf("input slice mutated at byte %d; Corrupt must return a fresh copy", i)
		}
	}
	flipped := 0
	for i := range q {
		d := q[i] ^ orig[i]
		for ; d != 0; d &= d - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Errorf("%d bits flipped, want exactly 1", flipped)
	}
	if e.Corrupted() != 1 {
		t.Errorf("Corrupted() = %d, want 1", e.Corrupted())
	}

	off := New(Config{Seed: 12})
	q2, changed := off.Corrupt(p)
	if changed || len(q2) != len(p) || &q2[0] != &p[0] {
		t.Error("Corrupt at probability 0 must return the input slice unchanged")
	}
}
