package netem

import "retrolock/internal/obs"

// Series names for a link emulator's perturbation bookkeeping. Published as
// gauges (the emulator counts monotonically, but chaos phase reports diff
// snapshots, and a gauge keeps Prometheus semantics honest if an emulator is
// ever swapped mid-run).
const (
	MetricLinkPlanned    = "retrolock_link_planned"
	MetricLinkDropped    = "retrolock_link_dropped"
	MetricLinkDuplicated = "retrolock_link_duplicated"
	MetricLinkReordered  = "retrolock_link_reordered"
	MetricLinkCorrupted  = "retrolock_link_corrupted"
)

// RegisterLinkMetrics publishes one direction of an emulated link. Each
// closure snapshots under the emulator's mutex, so scrapes are safe while
// traffic flows.
func RegisterLinkMetrics(r *obs.Registry, labels obs.Labels, e *Emulator) {
	stat := func(pick func(planned, dropped, duplicated, reordered int) int) func() float64 {
		return func() float64 {
			return float64(pick(e.Stats()))
		}
	}
	r.GaugeFunc(MetricLinkPlanned, labels, "datagram deliveries planned (copies included)", stat(func(p, _, _, _ int) int { return p }))
	r.GaugeFunc(MetricLinkDropped, labels, "datagrams dropped by loss model", stat(func(_, d, _, _ int) int { return d }))
	r.GaugeFunc(MetricLinkDuplicated, labels, "datagrams duplicated", stat(func(_, _, d, _ int) int { return d }))
	r.GaugeFunc(MetricLinkReordered, labels, "datagrams delayed past a later one", stat(func(_, _, _, re int) int { return re }))
	r.GaugeFunc(MetricLinkCorrupted, labels, "datagrams with flipped bits", func() float64 { return float64(e.Corrupted()) })
}

// LinkStatsFromSnapshot reads one direction's counters back out of a
// registry snapshot.
func LinkStatsFromSnapshot(snap obs.Snapshot, labels obs.Labels) (planned, dropped, duplicated, reordered, corrupted int) {
	g := func(name string) int { return int(snap[obs.Key(name, labels)]) }
	return g(MetricLinkPlanned), g(MetricLinkDropped), g(MetricLinkDuplicated), g(MetricLinkReordered), g(MetricLinkCorrupted)
}
