package netem

import (
	"fmt"
	"sort"
	"time"
)

// Named link profiles: the handful of access-network shapes the QoE load
// generator (internal/trafficgen) sweeps and EXPERIMENTS.md reports on.
// Each profile is a symmetric pair of per-direction Configs with loss and
// jitter figures chosen to sit on interesting sides of the paper's
// feasibility thresholds:
//
//   - wifi: a good home WLAN — low delay, moderate jitter, bursty 1% loss
//     (interference comes in clumps, not coin flips; a relayed path crosses
//     two such links, doubling both delay and loss).
//   - lte: a loaded cellular link — ~70 ms RTT with wide jitter; through a
//     relay the doubled path brushes the degraded band.
//   - transcontinental: a ~150 ms RTT long-haul path — fine for lockstep
//     peer-to-peer only barely, and past the cliff once relayed.
var profiles = map[string]Config{
	"wifi": {
		Delay:     6 * time.Millisecond,
		Jitter:    4 * time.Millisecond,
		Loss:      0.01,
		BurstLoss: true,
		MeanBurst: 4,
		Reorder:   0.002,
	},
	"lte": {
		Delay:     35 * time.Millisecond,
		Jitter:    10 * time.Millisecond,
		Loss:      0.005,
		BurstLoss: true,
		MeanBurst: 8,
	},
	"transcontinental": {
		Delay:   75 * time.Millisecond,
		Jitter:  3 * time.Millisecond,
		Loss:    0.002,
		Reorder: 0.001,
	},
}

// Profiles lists the named profiles in stable (sorted) order.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profile returns the per-direction configurations of a named profile,
// seeded like Symmetric (forward gets seed, reverse seed+1). The error names
// the valid profiles, so a mistyped -profile flag is self-explaining.
func Profile(name string, seed int64) (fwd, rev Config, err error) {
	base, ok := profiles[name]
	if !ok {
		return Config{}, Config{}, fmt.Errorf("netem: unknown profile %q (have %v)", name, Profiles())
	}
	fwd, rev = base, base
	fwd.Seed = seed
	rev.Seed = seed + 1
	return fwd, rev, nil
}
