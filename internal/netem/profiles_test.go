package netem

import (
	"testing"
	"time"
)

func TestProfiles(t *testing.T) {
	names := Profiles()
	if len(names) < 3 {
		t.Fatalf("want at least 3 named profiles, have %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Profiles() not in stable sorted order: %v", names)
		}
	}
	for _, want := range []string{"wifi", "lte", "transcontinental"} {
		fwd, rev, err := Profile(want, 42)
		if err != nil {
			t.Fatalf("Profile(%q): %v", want, err)
		}
		if fwd.Seed != 42 || rev.Seed != 43 {
			t.Errorf("%s: seeds fwd=%d rev=%d, want 42/43", want, fwd.Seed, rev.Seed)
		}
		if fwd.Delay <= 0 {
			t.Errorf("%s: non-positive delay %v", want, fwd.Delay)
		}
		rev.Seed = fwd.Seed
		if fwd != rev {
			t.Errorf("%s: directions differ beyond the seed", want)
		}
	}
	if _, _, err := Profile("dialup", 1); err == nil {
		t.Error("unknown profile did not error")
	}
	// The relayed-path ordering the QoE table leans on: wifi < lte <
	// transcontinental in one-way delay.
	w, _, _ := Profile("wifi", 1)
	l, _, _ := Profile("lte", 1)
	tc, _, _ := Profile("transcontinental", 1)
	if !(w.Delay < l.Delay && l.Delay < tc.Delay) {
		t.Errorf("profile delays not ordered: wifi=%v lte=%v transcontinental=%v", w.Delay, l.Delay, tc.Delay)
	}
	if tc.Delay < 70*time.Millisecond {
		t.Errorf("transcontinental delay %v is below the paper's feasibility cliff when doubled", tc.Delay)
	}
}
