// Package netem emulates wide-area network conditions, standing in for the
// Linux Netem box of the paper's testbed (§4).
//
// An Emulator shapes one direction of a link. It supports the same knobs the
// paper's experiments turn — base one-way delay, jitter, random loss,
// duplication, reordering — plus two the paper's §4.2 analysis accounts for
// implicitly: a bounded uniform processing delay (the 10 ms sender-thread
// scheduling quantum, ~5 ms average) and an optional serialization rate.
// For the chaos harness it additionally models in-flight bit corruption
// (the simnet.Corrupter extension).
//
// All randomness comes from a seeded PRNG, so a virtual-time experiment with
// a fixed seed reproduces bit-identical results.
package netem

import (
	"math/rand"
	"sync"
	"time"

	"retrolock/internal/simnet"
)

// Config describes one direction of an emulated link.
type Config struct {
	// Delay is the base one-way propagation delay. The paper sweeps the
	// round-trip time, i.e. Delay = RTT/2 per direction.
	Delay time.Duration

	// Jitter spreads each packet's delay uniformly over
	// [Delay-Jitter, Delay+Jitter], like `netem delay D J`.
	Jitter time.Duration

	// ProcDelay adds a uniform [0, ProcDelay) delay per packet, modelling
	// the endpoint's sender-thread scheduling quantum (§4.2 assumes 10 ms,
	// i.e. a 5 ms average submit-to-wire delay).
	ProcDelay time.Duration

	// Loss is the independent per-packet drop probability in [0,1].
	Loss float64

	// BurstLoss switches the loss process from independent (Bernoulli) to
	// a two-state Gilbert-Elliott chain with the same long-run loss rate
	// but clustered drops: once in the bad state, packets drop with
	// probability BadLoss until the chain recovers. Real Internet loss is
	// bursty, which stresses range retransmission much harder than
	// independent loss of the same rate.
	BurstLoss bool
	// MeanBurst is the expected bad-state dwell time in packets (default
	// 4). Larger values concentrate the same loss rate into longer
	// outages.
	MeanBurst float64
	// BadLoss is the drop probability inside a burst (default 1.0).
	BadLoss float64

	// Duplicate is the probability that a packet is delivered twice; the
	// copy gets an independently jittered delay.
	Duplicate float64

	// Reorder is the probability that a packet is held back by
	// ReorderExtra, overtaking later traffic. Jitter alone also reorders;
	// this knob forces it even on jitter-free links.
	Reorder float64

	// Corrupt is the per-delivered-copy probability that a single random
	// bit of the payload is flipped in flight (like `netem corrupt`).
	// Each copy of a duplicated packet is corrupted independently. The
	// chaos harness uses it to model link-level bit errors; endpoints
	// that want UDP's checksum behaviour layer transport.NewChecksum
	// over their connections so corrupted datagrams are discarded.
	Corrupt float64

	// ReorderExtra is the extra delay applied to reordered packets. Zero
	// defaults to 4*Jitter or, if Jitter is zero, 10 ms.
	ReorderExtra time.Duration

	// Rate, if positive, is the link bandwidth in bits per second. Packets
	// are serialized through a single queue: a packet's transmission may
	// not begin before the previous one finished.
	Rate int64

	// Seed initializes the shaper's PRNG. Two directions of a link should
	// use different seeds.
	Seed int64
}

// Symmetric returns per-direction configs for a link with round-trip time
// rtt and the given jitter/loss applied to each direction independently.
// Per §4 of the paper, the one-way latency is estimated as RTT/2.
func Symmetric(rtt, jitter time.Duration, loss float64, seed int64) (fwd, rev Config) {
	base := Config{Delay: rtt / 2, Jitter: jitter, Loss: loss}
	fwd, rev = base, base
	fwd.Seed = seed
	rev.Seed = seed + 1
	return fwd, rev
}

// Emulator shapes packets for one direction of a link. It implements
// simnet.Shaper. Safe for concurrent use.
type Emulator struct {
	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	busyUntil time.Time
	inBurst   bool

	planned    int
	dropped    int
	duplicated int
	reordered  int
	corrupted  int
}

// New creates an Emulator for cfg.
func New(cfg Config) *Emulator {
	if cfg.BurstLoss {
		if cfg.MeanBurst <= 1 {
			cfg.MeanBurst = 4
		}
		if cfg.BadLoss <= 0 || cfg.BadLoss > 1 {
			cfg.BadLoss = 1
		}
	}
	return &Emulator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the emulator's configuration.
func (e *Emulator) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg
}

// Plan implements simnet.Shaper.
func (e *Emulator) Plan(now time.Time, size int) []time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.planned++

	if e.dropLocked() {
		e.dropped++
		return nil
	}

	copies := 1
	if e.cfg.Duplicate > 0 && e.rng.Float64() < e.cfg.Duplicate {
		e.duplicated++
		copies = 2
	}
	offsets := make([]time.Duration, copies)
	for i := range offsets {
		offsets[i] = e.deliveryOffsetLocked(now, size)
	}
	return offsets
}

// deliveryOffsetLocked plans one delivered copy of a packet: propagation +
// processing delay, serialization through the rate queue, and the deliberate
// reorder knob. Duplicates travel the exact same path as originals — each
// copy occupies the serialization queue in turn — so on a rate-limited link
// a duplicate can never arrive before its original could have.
func (e *Emulator) deliveryOffsetLocked(now time.Time, size int) time.Duration {
	offset := e.oneWayLocked()

	if e.cfg.Rate > 0 {
		tx := time.Duration(int64(size) * 8 * int64(time.Second) / e.cfg.Rate)
		start := now
		if e.busyUntil.After(start) {
			start = e.busyUntil
		}
		e.busyUntil = start.Add(tx)
		offset += e.busyUntil.Sub(now)
	}

	if e.cfg.Reorder > 0 && e.rng.Float64() < e.cfg.Reorder {
		e.reordered++
		offset += e.reorderExtraLocked()
	}
	return offset
}

// dropLocked decides one packet's fate under the configured loss process.
func (e *Emulator) dropLocked() bool {
	if e.cfg.Loss <= 0 {
		return false
	}
	if !e.cfg.BurstLoss {
		return e.rng.Float64() < e.cfg.Loss
	}
	// Gilbert-Elliott: choose transition probabilities so the stationary
	// bad-state share is Loss/BadLoss and the mean bad dwell is MeanBurst
	// packets.
	pBadShare := e.cfg.Loss / e.cfg.BadLoss
	if pBadShare > 1 {
		pBadShare = 1
	}
	pRecover := 1 / e.cfg.MeanBurst
	pEnter := pRecover * pBadShare / (1 - pBadShare + 1e-12)
	if e.inBurst {
		if e.rng.Float64() < pRecover {
			e.inBurst = false
		}
	} else if e.rng.Float64() < pEnter {
		e.inBurst = true
	}
	return e.inBurst && e.rng.Float64() < e.cfg.BadLoss
}

func (e *Emulator) oneWayLocked() time.Duration {
	d := e.cfg.Delay
	if j := e.cfg.Jitter; j > 0 {
		d += time.Duration(e.rng.Int63n(int64(2*j))) - j
	}
	if p := e.cfg.ProcDelay; p > 0 {
		d += time.Duration(e.rng.Int63n(int64(p)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (e *Emulator) reorderExtraLocked() time.Duration {
	if e.cfg.ReorderExtra > 0 {
		return e.cfg.ReorderExtra
	}
	if e.cfg.Jitter > 0 {
		return 4 * e.cfg.Jitter
	}
	return 10 * time.Millisecond
}

// Corrupt implements simnet.Corrupter. With probability cfg.Corrupt it
// returns a copy of p with one random bit flipped; otherwise it returns p
// unchanged. The input slice is never mutated, so the caller may share one
// backing buffer across the copies of a duplicated packet.
func (e *Emulator) Corrupt(p []byte) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Corrupt <= 0 || len(p) == 0 || e.rng.Float64() >= e.cfg.Corrupt {
		return p, false
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	bit := e.rng.Intn(len(cp) * 8)
	cp[bit/8] ^= 1 << (bit % 8)
	e.corrupted++
	return cp, true
}

// Stats reports lifetime counters: packets planned, dropped, duplicated and
// deliberately reordered.
func (e *Emulator) Stats() (planned, dropped, duplicated, reordered int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.planned, e.dropped, e.duplicated, e.reordered
}

// Corrupted reports how many delivered copies had a bit flipped in flight.
func (e *Emulator) Corrupted() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.corrupted
}

// Install wires a bidirectional emulated link between addresses a and b on
// net, returning the two per-direction emulators (a->b, b->a).
func Install(n *simnet.Network, a, b string, fwd, rev Config) (*Emulator, *Emulator) {
	ef := New(fwd)
	er := New(rev)
	n.SetLink(a, b, ef)
	n.SetLink(b, a, er)
	return ef, er
}

var _ simnet.Shaper = (*Emulator)(nil)
var _ simnet.Corrupter = (*Emulator)(nil)
