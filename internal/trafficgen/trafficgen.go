// Package trafficgen is the QoE load generator: it models thousands of
// concurrent relayed game sessions — input cadence with jitter, think-time
// idles, leave/rejoin churn — and drives them through a live relay daemon
// over emulated access links, grading every session with the health engine.
//
// The paper's evaluation (§4) measures a handful of sessions on a physical
// testbed; this package is the scaled-up, repeatable version of that
// experiment. A virtual-time run (Run, Sweep) executes deterministically:
// the same model and seed produce bit-identical verdict tables, which is
// what lets CI diff a QoE sweep against a checked-in baseline. A real-time
// run (RunReal) applies the same model against the wall clock for live load
// tests (`experiment -series qoeload`).
//
// Sessions speak the relay's native datagram format (token prefix + site
// byte, relay.PutHeader) with a small generator payload carrying the send
// instant, so one-way relay latency is measured end to end: client link →
// front → shard → front → client link. Verdicts combine the health engine's
// latency grade with a delivery-rate grade, mirroring how the paper
// separates "slow" from "lossy" infeasibility.
package trafficgen

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/relay"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

// Epoch anchors virtual-time runs (same convention as the chaos and soak
// suites: the paper's submission date).
var Epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// Generator payload layout, after the relay's HeaderLen prefix:
//
//	[0:8)   send instant, ns since the run epoch (big endian)
//	[8:16)  token echo (big endian) — integrity check at the receiver
//	[16]    sender site — cross-checked against the relay prefix
//	[17:)   deterministic filler up to Model.PayloadBytes
const genHeaderLen = 17

// QoE grading thresholds. The latency bounds sit just above the histogram's
// power-of-two bucket bounds (67.1 ms, 134.2 ms), so a graded quantile lands
// decisively on one side: a measured one-way relay latency whose median
// falls in the (16.8, 67.1] ms buckets grades healthy, (67.1, 134.2] ms
// degraded, and beyond infeasible — the relayed-path equivalent of the
// paper's 140 ms RTT cliff.
const (
	OneWayDegraded   = 68 * time.Millisecond
	OneWayInfeasible = 135 * time.Millisecond

	// Delivery-rate grades in basis points: below 95% delivered is degraded
	// (rollback can mask it, lockstep stalls), below 80% infeasible.
	deliveryDegradedBp   = 9500
	deliveryInfeasibleBp = 8000
)

// ThinkModel injects idle stretches: roughly Every (uniformly jittered
// ±50%), the session stops producing inputs for For — a player reading a
// level-intro screen. Zero Every disables thinking.
type ThinkModel struct {
	Every time.Duration
	For   time.Duration
}

// ChurnModel injects leave/rejoin churn: roughly LeaveEvery (uniformly
// jittered ±50%) the session goes fully silent for DownFor, then rejoins by
// re-binding both sites (header-only datagrams) before payload traffic
// resumes. Zero LeaveEvery disables churn.
type ChurnModel struct {
	LeaveEvery time.Duration
	DownFor    time.Duration
}

// Model parameterizes a synthetic session population.
type Model struct {
	// Sessions is the concurrent modeled session count (default 256).
	Sessions int
	// Drivers is how many generator actors multiplex the sessions (default
	// 16, clamped to Sessions). Each driver owns a disjoint slice of
	// sessions and a pair of emulated endpoints, one per site.
	Drivers int
	// InputHz is the nominal per-site input cadence (default 60).
	InputHz int
	// CadenceJitter widens each inter-input gap uniformly by ± this fraction
	// of the period (default 0.2) — human button timing is not a metronome.
	CadenceJitter float64
	// PayloadBytes sizes the generator payload beyond the relay prefix
	// (default 24; min genHeaderLen).
	PayloadBytes int
	// JoinSpread staggers session starts uniformly across this window from
	// the run start (default 250 ms), modeling a lobby filling up.
	JoinSpread time.Duration
	// Think and Churn shape each session's activity; zero values disable.
	Think ThinkModel
	Churn ChurnModel
	// Seed drives every per-session RNG (default 1).
	Seed int64
}

func (m Model) withDefaults() Model {
	if m.Sessions <= 0 {
		m.Sessions = 256
	}
	if m.Drivers <= 0 {
		m.Drivers = 16
	}
	if m.Drivers > m.Sessions {
		m.Drivers = m.Sessions
	}
	if m.InputHz <= 0 {
		m.InputHz = 60
	}
	if m.CadenceJitter < 0 {
		m.CadenceJitter = 0
	}
	if m.PayloadBytes < genHeaderLen {
		m.PayloadBytes = 24
	}
	if m.JoinSpread <= 0 {
		m.JoinSpread = 250 * time.Millisecond
	}
	if m.Seed == 0 {
		m.Seed = 1
	}
	return m
}

// Storm overrides the first half of the drivers' links with a harsher netem
// configuration for a window mid-run — the chaos phase of a load test. In
// virtual time, pick After/For values off the actors' wake grids (multiples
// of 1 ms are safe with the default cadences).
type Storm struct {
	After, For time.Duration
	Link       netem.Config
}

// RunConfig is one generator run against one link profile.
type RunConfig struct {
	Model   Model
	Profile string // named netem profile (netem.Profiles); default "wifi"
	// Shards sizes the relay daemon; the run always creates exactly one
	// front per shard (shard i writes through front i), which pins the
	// reader→shard fan-in and keeps virtual-time runs deterministic.
	Shards int
	// Warmup precedes the measured window (default 600 ms — longer than the
	// default JoinSpread, so grading only sees steady state). Measure is the
	// graded window (default 2 s). Drain lets in-flight measured datagrams
	// land before the run stops (default 400 ms).
	Warmup, Measure, Drain time.Duration
	// Capture, when set, records the client-side view of the run: every
	// generator send and delivery, relay prefix included.
	Capture *capture.Recorder
	// RelayTap, when set, is installed as the daemon's capture tap
	// (relay.Config.Tap) — the relay-side view of the same traffic.
	RelayTap *capture.Recorder
	// Storm optionally injects a chaos window.
	Storm *Storm
}

func (c RunConfig) withDefaults() RunConfig {
	c.Model = c.Model.withDefaults()
	if c.Profile == "" {
		c.Profile = "wifi"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Warmup <= 0 {
		c.Warmup = 600 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 2 * time.Second
	}
	if c.Drain <= 0 {
		c.Drain = 400 * time.Millisecond
	}
	return c
}

// Result is one graded run.
type Result struct {
	Profile  string
	Sessions int
	// Verdict counts over the session population.
	Healthy, Degraded, Infeasible int
	// Sent / Recv count measured-window payload datagrams (per delivered
	// direction; each datagram is sent once and delivered at most once).
	Sent, Recv int64
	// Latency aggregates every session's measured one-way relay latency.
	Latency *obs.Histogram
	// LeakErrs / IntegrityErrs / MiswireErrs must be zero: a nonzero value
	// means the relay delivered a foreign session's datagram, corrupted a
	// payload, or swapped the sites.
	LeakErrs, IntegrityErrs, MiswireErrs int64
	// Registry exposes the run's series (latency histogram, delivery
	// counters) in the observability registry format.
	Registry *obs.Registry
	// Elapsed is the run duration on the run's own clock.
	Elapsed time.Duration
}

// DeliveryBp is the delivery rate in basis points (9997 = 99.97%).
func (r *Result) DeliveryBp() int64 {
	if r.Sent == 0 {
		return 10000
	}
	return r.Recv * 10000 / r.Sent
}

// driverTick is the generator actors' wake cadence. Sessions' modeled send
// instants are quantized to it; latency is still measured from the actual
// (stamped) send instant, so the quantization does not bias the grades.
const driverTick = 2 * time.Millisecond

// driverStagger phase-offsets driver j's wake grid. 501 µs is coprime to the
// relay's 200 µs reader/shard poll grids and to driverTick, so no driver
// ever wakes at the same virtual instant as a relay actor (or another
// driver) — the ordering hazard that would make virtual runs scheduling-
// dependent (see Daemon.StartVirtual).
func driverStagger(j int) time.Duration {
	return time.Duration(j+1) * 501 * time.Microsecond
}

// session is one modeled session, owned exclusively by its driver.
type session struct {
	token relay.Token
	front string
	rng   *rng

	startAt    time.Time
	started    bool
	next       [2]time.Time // per-site next modeled send instant
	thinkUntil time.Time
	nextThink  time.Time
	downUntil  time.Time
	nextLeave  time.Time
	rebind     bool

	sent, recv int64
	lat        *obs.Histogram
	state      obs.HealthState
}

// driver is one generator actor: a disjoint set of sessions and one
// emulated endpoint per site.
type driver struct {
	idx      int
	epA, epB *simnet.Endpoint
	own      []*session
	byToken  map[relay.Token]*session
	buf      []byte

	leak, integrity, miswire int64
}

// engine is the shared run state.
type engine struct {
	cfg     RunConfig
	clock   vclock.Clock
	net     *simnet.Network
	epoch   time.Time
	mStart  time.Time // measure window [mStart, mEnd)
	mEnd    time.Time
	stop    atomic.Bool
	agg     *obs.Histogram
	daemon  *relay.Daemon
	drivers []*driver
}

// Run executes one generator run in virtual time. Deterministic: the same
// RunConfig yields a bit-identical Result (and capture, when attached).
func Run(cfg RunConfig) (*Result, error) {
	v := vclock.NewVirtual(Epoch)
	return run(cfg, v, v,
		func(d *relay.Daemon) { d.StartVirtual(v) },
		func(fn func()) <-chan struct{} { return v.Go(fn) })
}

// RunReal executes one generator run against the wall clock: same model,
// same emulated links, relay loops polling on real time (StartPolled).
func RunReal(cfg RunConfig) (*Result, error) {
	clock := vclock.Real{}
	return run(cfg, clock, clock,
		func(d *relay.Daemon) { d.StartPolled() },
		func(fn func()) <-chan struct{} {
			ch := make(chan struct{})
			go func() { defer close(ch); fn() }()
			return ch
		})
}

func run(cfg RunConfig, clock vclock.Clock, sched vclock.Scheduler,
	start func(*relay.Daemon), spawn func(func()) <-chan struct{}) (*Result, error) {
	cfg = cfg.withDefaults()
	m := cfg.Model

	e := &engine{cfg: cfg, clock: clock, net: simnet.New(sched), agg: &obs.Histogram{}}
	e.epoch = clock.Now()
	e.mStart = e.epoch.Add(cfg.Warmup)
	e.mEnd = e.mStart.Add(cfg.Measure)

	// Relay: one front per shard (see RunConfig.Shards).
	fronts := make([]relay.Front, cfg.Shards)
	frontAddrs := make([]string, cfg.Shards)
	for i := range fronts {
		ep := e.net.MustBind(fmt.Sprintf("relay-%d", i))
		ep.SetQueueCap(1 << 16)
		fronts[i] = relay.NewSimFront(ep)
		frontAddrs[i] = ep.Addr()
	}
	d, err := relay.NewDaemon(relay.Config{
		Shards:      cfg.Shards,
		MaxSessions: m.Sessions/cfg.Shards + cfg.Shards,
		QueueLen:    1 << 14,
		WriteBatch:  256,
		SessionTTL:  time.Hour,
		Clock:       clock,
		Seed:        m.Seed,
		Tap:         cfg.RelayTap,
	}, fronts)
	if err != nil {
		return nil, err
	}
	e.daemon = d

	// Drivers and links: driver j's endpoints get a per-direction profile
	// pair against every front, each with its own seed, so every link's
	// loss/jitter stream is independent and reproducible.
	e.drivers = make([]*driver, m.Drivers)
	for j := range e.drivers {
		epA := e.net.MustBind(fmt.Sprintf("genA-%d", j))
		epB := e.net.MustBind(fmt.Sprintf("genB-%d", j))
		epA.SetQueueCap(1 << 14)
		epB.SetQueueCap(1 << 14)
		e.drivers[j] = &driver{
			idx: j, epA: epA, epB: epB,
			byToken: make(map[relay.Token]*session),
			buf:     newSendBuf(m.PayloadBytes),
		}
	}
	if err := e.shapeLinks(frontAddrs, nil); err != nil {
		d.Close()
		return nil, err
	}

	// Admission: place every session up front; session i joins at a
	// deterministic offset inside the JoinSpread window.
	sessions := make([]*session, m.Sessions)
	for i := range sessions {
		p, err := d.Place()
		if err != nil {
			d.Close()
			return nil, err
		}
		s := &session{
			token:   p.Token,
			front:   p.Addr,
			rng:     newRng(m.Seed + int64(i)*7919),
			startAt: e.epoch.Add(time.Duration(i+1) * m.JoinSpread / time.Duration(m.Sessions+1)),
			lat:     &obs.Histogram{},
		}
		sessions[i] = s
		dr := e.drivers[i%m.Drivers]
		dr.own = append(dr.own, s)
		dr.byToken[s.token] = s
	}

	// Storm controller (optional) and the stop controller.
	total := cfg.Warmup + cfg.Measure + cfg.Drain
	var dones []<-chan struct{}
	if st := cfg.Storm; st != nil {
		dones = append(dones, spawn(func() {
			clock.Sleep(st.After)
			_ = e.shapeStorm(frontAddrs, st)
			clock.Sleep(st.For)
			_ = e.shapeLinks(frontAddrs, stormedHalf(m.Drivers))
		}))
	}
	dones = append(dones, spawn(func() {
		clock.Sleep(total)
		e.stop.Store(true)
	}))

	start(d)
	for _, dr := range e.drivers {
		dr := dr
		dones = append(dones, spawn(func() { e.runDriver(dr) }))
	}
	for _, done := range dones {
		<-done
	}
	_ = d.Close()

	return e.grade(sessions, total), nil
}

// stormedHalf returns the driver indices the storm touches, so the restore
// pass only reshapes those links.
func stormedHalf(nDrivers int) []int {
	half := nDrivers / 2
	if half == 0 {
		half = 1
	}
	out := make([]int, half)
	for i := range out {
		out[i] = i
	}
	return out
}

// shapeLinks installs the run profile on every driver<->front link (or only
// the listed drivers' links when only != nil).
func (e *engine) shapeLinks(frontAddrs []string, only []int) error {
	idxs := only
	if idxs == nil {
		idxs = make([]int, len(e.drivers))
		for i := range idxs {
			idxs[i] = i
		}
	}
	for _, j := range idxs {
		dr := e.drivers[j]
		for fi, fa := range frontAddrs {
			seed := e.cfg.Model.Seed + int64(j)*1000 + int64(fi)*4
			for ei, ep := range []*simnet.Endpoint{dr.epA, dr.epB} {
				fwd, rev, err := netem.Profile(e.cfg.Profile, seed+int64(ei)*2)
				if err != nil {
					return err
				}
				e.net.SetLink(ep.Addr(), fa, netem.New(fwd))
				e.net.SetLink(fa, ep.Addr(), netem.New(rev))
			}
		}
	}
	return nil
}

// shapeStorm overrides the first half of the drivers' links with the storm
// configuration (both directions, per-link seeds).
func (e *engine) shapeStorm(frontAddrs []string, st *Storm) error {
	for _, j := range stormedHalf(len(e.drivers)) {
		dr := e.drivers[j]
		for fi, fa := range frontAddrs {
			for ei, ep := range []*simnet.Endpoint{dr.epA, dr.epB} {
				cfg := st.Link
				cfg.Seed = e.cfg.Model.Seed + 0x57_0000 + int64(j)*1000 + int64(fi)*4 + int64(ei)
				e.net.SetLinkBoth(ep.Addr(), fa, netem.New(cfg))
			}
		}
	}
	return nil
}

func newSendBuf(payloadBytes int) []byte {
	buf := make([]byte, relay.HeaderLen+payloadBytes)
	for i := relay.HeaderLen + genHeaderLen; i < len(buf); i++ {
		buf[i] = 0x5a
	}
	return buf
}

// runDriver is the generator actor loop: wake on the staggered grid, advance
// every owned session's model, drain both endpoints.
func (e *engine) runDriver(dr *driver) {
	e.clock.Sleep(driverStagger(dr.idx))
	for !e.stop.Load() {
		now := e.clock.Now()
		for _, s := range dr.own {
			e.stepSession(dr, s, now)
		}
		e.drain(dr, dr.epA, 0, now)
		e.drain(dr, dr.epB, 1, now)
		e.clock.Sleep(driverTick)
	}
}

// stepSession advances one session's model to now, emitting whatever the
// model says it owes: binds on (re)join, payload datagrams on its jittered
// cadence, silence through think-time and churn downtime.
func (e *engine) stepSession(dr *driver, s *session, now time.Time) {
	m := &e.cfg.Model
	if now.Before(s.startAt) {
		return
	}
	if !s.started {
		s.started = true
		s.next[0], s.next[1] = s.startAt, s.startAt
		if m.Think.Every > 0 {
			s.nextThink = s.startAt.Add(s.rng.jittered(m.Think.Every))
		}
		if m.Churn.LeaveEvery > 0 {
			s.nextLeave = s.startAt.Add(s.rng.jittered(m.Churn.LeaveEvery))
		}
		e.sendBind(dr, s, now)
	}
	if m.Churn.LeaveEvery > 0 && !now.Before(s.nextLeave) {
		s.downUntil = now.Add(m.Churn.DownFor)
		s.nextLeave = now.Add(m.Churn.DownFor + s.rng.jittered(m.Churn.LeaveEvery))
		s.rebind = true
	}
	if now.Before(s.downUntil) {
		for site := range s.next {
			if s.next[site].Before(s.downUntil) {
				s.next[site] = s.downUntil
			}
		}
		return
	}
	if s.rebind {
		s.rebind = false
		e.sendBind(dr, s, now)
	}
	if m.Think.Every > 0 && !now.Before(s.nextThink) {
		s.thinkUntil = now.Add(m.Think.For)
		s.nextThink = now.Add(m.Think.For + s.rng.jittered(m.Think.Every))
	}
	if now.Before(s.thinkUntil) {
		for site := range s.next {
			if s.next[site].Before(s.thinkUntil) {
				s.next[site] = s.thinkUntil
			}
		}
		return
	}
	period := time.Second / time.Duration(m.InputHz)
	for site := 0; site < 2; site++ {
		for !s.next[site].After(now) {
			e.sendPayload(dr, s, site, now)
			s.next[site] = s.next[site].Add(s.rng.spread(period, m.CadenceJitter))
		}
	}
}

// sendBind emits a header-only datagram per site — the relay's slot-claim /
// keepalive shape (see Shard.ingest).
func (e *engine) sendBind(dr *driver, s *session, now time.Time) {
	for site := 0; site < 2; site++ {
		n := relay.PutHeader(dr.buf, s.token, site)
		e.cfg.Capture.Record(now, capture.DirSend, site, dr.buf[:n])
		_ = e.siteEp(dr, site).SendTo(s.front, dr.buf[:n])
	}
}

func (e *engine) sendPayload(dr *driver, s *session, site int, now time.Time) {
	n := relay.PutHeader(dr.buf, s.token, site)
	pl := dr.buf[n:]
	binary.BigEndian.PutUint64(pl[0:8], uint64(now.Sub(e.epoch)))
	binary.BigEndian.PutUint64(pl[8:16], uint64(s.token))
	pl[16] = byte(site)
	e.cfg.Capture.Record(now, capture.DirSend, site, dr.buf)
	_ = e.siteEp(dr, site).SendTo(s.front, dr.buf)
	if e.inWindow(now) {
		s.sent++
	}
}

func (e *engine) siteEp(dr *driver, site int) *simnet.Endpoint {
	if site == 1 {
		return dr.epB
	}
	return dr.epA
}

func (e *engine) inWindow(t time.Time) bool {
	return !t.Before(e.mStart) && t.Before(e.mEnd)
}

// drain empties one endpoint, verifying every delivered datagram's session
// ownership, site wiring and payload integrity, and observing its one-way
// latency when the send stamp falls in the measured window.
func (e *engine) drain(dr *driver, ep *simnet.Endpoint, site int, now time.Time) {
	for {
		g, ok := ep.TryRecv()
		if !ok {
			return
		}
		tok, fromSite, pl, hok := relay.ParseHeader(g.Payload)
		if !hok {
			dr.integrity++
			continue
		}
		s, mine := dr.byToken[tok]
		if !mine {
			dr.leak++
			continue
		}
		if fromSite != 1-site {
			dr.miswire++
			continue
		}
		if len(pl) < genHeaderLen {
			// A replayed foreign payload too short to carry the generator
			// stamp: delivered, but unmeasurable.
			continue
		}
		if relay.Token(binary.BigEndian.Uint64(pl[8:16])) != tok || int(pl[16]) != fromSite {
			dr.integrity++
			continue
		}
		e.cfg.Capture.Record(now, capture.DirRecv, site, g.Payload)
		sentAt := e.epoch.Add(time.Duration(binary.BigEndian.Uint64(pl[0:8])))
		if e.inWindow(sentAt) {
			lat := now.Sub(sentAt).Nanoseconds()
			s.lat.Observe(lat)
			e.agg.Observe(lat)
			s.recv++
		}
	}
}

// grade turns the raw per-session series into verdicts and assembles the
// Result. Verdict = worse(latency grade from the health engine, delivery-
// rate grade) — a session can be infeasible because the relayed path is too
// slow or because too little of its traffic survives it.
func (e *engine) grade(sessions []*session, total time.Duration) *Result {
	end := e.epoch.Add(total)
	r := &Result{
		Profile:  e.cfg.Profile,
		Sessions: len(sessions),
		Latency:  e.agg,
		Registry: obs.NewRegistry(),
		Elapsed:  e.clock.Now().Sub(e.epoch),
	}
	for _, dr := range e.drivers {
		r.LeakErrs += dr.leak
		r.IntegrityErrs += dr.integrity
		r.MiswireErrs += dr.miswire
	}
	for _, s := range sessions {
		h := obs.NewHealth(obs.HealthConfig{
			RTTDegraded:   OneWayDegraded,
			RTTInfeasible: OneWayInfeasible,
		}, obs.HealthSources{RTT: s.lat})
		s.state = h.Evaluate(end)
		if rg := deliveryGrade(s.sent, s.recv); rg > s.state {
			s.state = rg
		}
		switch s.state {
		case obs.Healthy:
			r.Healthy++
		case obs.Degraded:
			r.Degraded++
		default:
			r.Infeasible++
		}
		r.Sent += s.sent
		r.Recv += s.recv
	}
	labels := obs.Labels{"profile": r.Profile}
	r.Registry.AddHistogram("qoe_one_way_latency_ns", labels,
		"measured one-way relay latency across all sessions", e.agg)
	sent, recv := r.Sent, r.Recv
	r.Registry.CounterFunc("qoe_datagrams_sent_total", labels,
		"measured-window payload datagrams sent", func() float64 { return float64(sent) })
	r.Registry.CounterFunc("qoe_datagrams_delivered_total", labels,
		"measured-window payload datagrams delivered", func() float64 { return float64(recv) })
	return r
}

func deliveryGrade(sent, recv int64) obs.HealthState {
	if sent == 0 {
		return obs.Healthy
	}
	switch bp := recv * 10000 / sent; {
	case bp < deliveryInfeasibleBp:
		return obs.Infeasible
	case bp < deliveryDegradedBp:
		return obs.Degraded
	default:
		return obs.Healthy
	}
}
