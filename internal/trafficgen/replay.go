package trafficgen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
	"retrolock/internal/relay"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

// ReplayConfig shapes a captured-trace replay.
type ReplayConfig struct {
	// Profile names the link profile to replay under (default: the
	// capture's own Meta.Profile, falling back to "wifi").
	Profile string
	Shards  int
	Drivers int
	Seed    int64
	// Drain extends the run past the trace's span so in-flight datagrams
	// land (default 400 ms).
	Drain time.Duration
}

// replayEvent is one client send reconstructed from a capture record.
type replayEvent struct {
	at   time.Duration
	site int
	s    *session
	pl   []byte // payload after the relay prefix (copied out of the capture)
}

// Replay feeds a captured trace's client-side sends (capture.DirSend
// records) through fresh emulated links into a fresh relay daemon, in
// virtual time and at the recorded offsets. Sessions are re-admitted — one
// per distinct token in the trace, in first-appearance order — and each
// datagram's relay prefix is rewritten to its new token; generator payloads
// are re-stamped with the replay send instant so latency is measured against
// the replay's own links. Deterministic: the same capture and config yield a
// bit-identical Result.
func Replay(c *capture.Capture, cfg ReplayConfig) (*Result, error) {
	if c == nil || len(c.Records) == 0 {
		return nil, errors.New("trafficgen: empty capture")
	}
	profile := cfg.Profile
	if profile == "" {
		profile = c.Meta.Profile
	}
	if profile == "" {
		profile = "wifi"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Drivers <= 0 {
		cfg.Drivers = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 400 * time.Millisecond
	}

	v := vclock.NewVirtual(Epoch)
	e := &engine{
		cfg: RunConfig{
			Model:   Model{Drivers: cfg.Drivers, Seed: cfg.Seed}.withDefaults(),
			Profile: profile,
			Shards:  cfg.Shards,
		},
		clock: v,
		net:   simnet.New(v),
		agg:   &obs.Histogram{},
	}
	e.epoch = v.Now()

	// Fronts and daemon, same topology rule as Run: one front per shard.
	frontAddrs := make([]string, cfg.Shards)
	fronts := make([]relay.Front, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		ep := e.net.MustBind(fmt.Sprintf("relay-%d", i))
		ep.SetQueueCap(1 << 16)
		fronts[i] = relay.NewSimFront(ep)
		frontAddrs[i] = ep.Addr()
	}
	d, err := relay.NewDaemon(relay.Config{
		Shards:      cfg.Shards,
		MaxSessions: len(c.Records)/cfg.Shards + cfg.Shards,
		QueueLen:    1 << 14,
		WriteBatch:  256,
		SessionTTL:  time.Hour,
		Clock:       v,
		Seed:        cfg.Seed,
	}, fronts)
	if err != nil {
		return nil, err
	}
	e.daemon = d

	// Re-admit one session per distinct token, in first-appearance order,
	// and reconstruct the send schedule.
	e.drivers = make([]*driver, cfg.Drivers)
	for j := range e.drivers {
		epA := e.net.MustBind(fmt.Sprintf("genA-%d", j))
		epB := e.net.MustBind(fmt.Sprintf("genB-%d", j))
		epA.SetQueueCap(1 << 14)
		epB.SetQueueCap(1 << 14)
		e.drivers[j] = &driver{idx: j, epA: epA, epB: epB, byToken: make(map[relay.Token]*session)}
	}
	if err := e.shapeLinks(frontAddrs, nil); err != nil {
		d.Close()
		return nil, err
	}

	var (
		sessions []*session
		byOld    = make(map[relay.Token]*session)
		drvOf    = make(map[*session]int)
		events   = make([][]replayEvent, cfg.Drivers)
		maxPl    int
	)
	for i := range c.Records {
		rec := &c.Records[i]
		if rec.Dir != capture.DirSend {
			continue
		}
		oldTok, site, pl, ok := relay.ParseHeader(rec.Payload)
		if !ok {
			continue
		}
		s := byOld[oldTok]
		if s == nil {
			p, err := d.Place()
			if err != nil {
				d.Close()
				return nil, err
			}
			s = &session{token: p.Token, front: p.Addr, lat: &obs.Histogram{}}
			byOld[oldTok] = s
			j := len(sessions) % cfg.Drivers
			drvOf[s] = j
			e.drivers[j].own = append(e.drivers[j].own, s)
			e.drivers[j].byToken[s.token] = s
			sessions = append(sessions, s)
		}
		if len(pl) > maxPl {
			maxPl = len(pl)
		}
		j := drvOf[s]
		events[j] = append(events[j], replayEvent{
			at: rec.At, site: site, s: s, pl: append([]byte(nil), pl...),
		})
	}
	if len(sessions) == 0 {
		d.Close()
		return nil, errors.New("trafficgen: capture has no replayable sends")
	}
	for j := range events {
		evs := events[j]
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].at < evs[b].at })
		e.drivers[j].buf = make([]byte, relay.HeaderLen+maxPl)
	}

	// The whole trace is the measured window (plus the wake-grid slack each
	// re-stamped send can pick up).
	span := c.Span()
	e.mStart = e.epoch
	e.mEnd = e.epoch.Add(span + 2*driverTick)
	total := span + 2*driverTick + cfg.Drain

	var dones []<-chan struct{}
	dones = append(dones, v.Go(func() {
		v.Sleep(total)
		e.stop.Store(true)
	}))
	d.StartVirtual(v)
	for j, dr := range e.drivers {
		dr, evs := dr, events[j]
		dones = append(dones, v.Go(func() { e.runReplayDriver(dr, evs) }))
	}
	for _, done := range dones {
		<-done
	}
	_ = d.Close()

	e.cfg.Model.Sessions = len(sessions)
	return e.grade(sessions, total), nil
}

// runReplayDriver plays one driver's slice of the schedule: each wake sends
// every event now due (rewriting token and stamp) and drains both sites.
func (e *engine) runReplayDriver(dr *driver, evs []replayEvent) {
	e.clock.Sleep(driverStagger(dr.idx))
	i := 0
	for !e.stop.Load() {
		now := e.clock.Now()
		elapsed := now.Sub(e.epoch)
		for i < len(evs) && evs[i].at <= elapsed {
			ev := &evs[i]
			n := relay.PutHeader(dr.buf, ev.s.token, ev.site)
			copy(dr.buf[n:], ev.pl)
			if len(ev.pl) >= genHeaderLen {
				binary.BigEndian.PutUint64(dr.buf[n:], uint64(elapsed))
				binary.BigEndian.PutUint64(dr.buf[n+8:], uint64(ev.s.token))
				dr.buf[n+16] = byte(ev.site)
				if e.inWindow(now) {
					ev.s.sent++
				}
			}
			_ = e.siteEp(dr, ev.site).SendTo(ev.s.front, dr.buf[:n+len(ev.pl)])
			i++
		}
		e.drain(dr, dr.epA, 0, now)
		e.drain(dr, dr.epB, 1, now)
		e.clock.Sleep(driverTick)
	}
}
