package trafficgen

import (
	"math/rand"
	"time"
)

// rng wraps a session's private math/rand stream. Every draw goes through
// integer Int63n, so the sequence (and therefore a virtual-time run) is
// bit-reproducible across platforms.
type rng struct{ r *rand.Rand }

func newRng(seed int64) *rng { return &rng{r: rand.New(rand.NewSource(seed))} }

// jittered returns a duration uniform in [d/2, 3d/2) — the ±50% spread the
// think and churn models use so a population does not move in lockstep.
func (g *rng) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(g.r.Int63n(int64(d)))
}

// spread returns base widened uniformly by ± frac of itself.
func (g *rng) spread(base time.Duration, frac float64) time.Duration {
	if frac <= 0 || base <= 0 {
		return base
	}
	delta := int64(float64(base) * frac)
	if delta <= 0 {
		return base
	}
	return base - time.Duration(delta) + time.Duration(g.r.Int63n(2*delta+1))
}
