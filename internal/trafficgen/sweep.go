package trafficgen

import (
	"fmt"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/obs"
)

// SweepConfig runs the same session model against a list of link profiles.
type SweepConfig struct {
	Model                  Model
	Profiles               []string // default: every named profile, in sorted order
	Shards                 int
	Warmup, Measure, Drain time.Duration
}

// Sweep executes one virtual-time run per profile (a fresh emulated world
// each time, so profiles cannot bleed into each other) and renders the
// per-profile QoE verdict table. Deterministic: same config, same bytes.
func Sweep(cfg SweepConfig) ([]*Result, *obs.Table, error) {
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = netem.Profiles()
	}
	results := make([]*Result, 0, len(profiles))
	for _, p := range profiles {
		r, err := Run(RunConfig{
			Model:   cfg.Model,
			Profile: p,
			Shards:  cfg.Shards,
			Warmup:  cfg.Warmup,
			Measure: cfg.Measure,
			Drain:   cfg.Drain,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("trafficgen: profile %q: %w", p, err)
		}
		results = append(results, r)
	}
	return results, VerdictTable(results), nil
}

// VerdictTable renders per-profile QoE verdicts. Every figure is derived
// with integer arithmetic from histogram bucket bounds and counters, so the
// rendered bytes are reproducible and safe to check in as a CI baseline.
func VerdictTable(rs []*Result) *obs.Table {
	t := &obs.Table{Header: []string{
		"profile", "sessions", "healthy", "degraded", "infeasible",
		"delivery", "lat-p50", "lat-p95", "lat-p99",
	}}
	for _, r := range rs {
		t.AddRow(
			r.Profile,
			fmt.Sprintf("%d", r.Sessions),
			permille(r.Healthy, r.Sessions),
			permille(r.Degraded, r.Sessions),
			permille(r.Infeasible, r.Sessions),
			basisPoints(r.DeliveryBp()),
			latencyMs(r.Latency, 0.50),
			latencyMs(r.Latency, 0.95),
			latencyMs(r.Latency, 0.99),
		)
	}
	return t
}

// permille renders n/total as a percentage with one decimal ("98.4%").
func permille(n, total int) string {
	if total == 0 {
		return "-"
	}
	v := n * 1000 / total
	return fmt.Sprintf("%d.%d%%", v/10, v%10)
}

// basisPoints renders basis points as a percentage with two decimals
// ("99.97%").
func basisPoints(bp int64) string {
	return fmt.Sprintf("%d.%02d%%", bp/100, bp%100)
}

// latencyMs renders a histogram quantile's bucket upper bound in ms with one
// decimal ("33.5ms"). The bound, not an interpolation: interpolation would
// reintroduce float formatting into a golden file.
func latencyMs(h *obs.Histogram, q float64) string {
	if h == nil || h.Count() == 0 {
		return "-"
	}
	tenths := h.Quantile(q) / 100_000 // ns -> tenths of ms
	return fmt.Sprintf("%d.%dms", tenths/10, tenths%10)
}
