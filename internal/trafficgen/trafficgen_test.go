package trafficgen

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/netem"
	"retrolock/internal/relay"
)

var (
	qoeUpdate   = flag.Bool("qoe.update", false, "rewrite testdata/qoe_baseline.txt from this run")
	qoeSessions = flag.Int("qoe.sessions", 256, "modeled sessions in the determinism re-run test")
)

// baselineSweep is the pinned configuration behind testdata/qoe_baseline.txt
// and the `make qoe` CI gate: ≥1k modeled sessions swept over every named
// profile, with think-time and churn active. Change it only together with
// the baseline file.
func baselineSweep() SweepConfig {
	return SweepConfig{
		Model: Model{
			Sessions:      1024,
			Drivers:       16,
			InputHz:       60,
			CadenceJitter: 0.2,
			JoinSpread:    250 * time.Millisecond,
			Think:         ThinkModel{Every: 2 * time.Second, For: 300 * time.Millisecond},
			Churn:         ChurnModel{LeaveEvery: 5 * time.Second, DownFor: 500 * time.Millisecond},
			Seed:          7,
		},
		Shards:  16,
		Warmup:  600 * time.Millisecond,
		Measure: 1500 * time.Millisecond,
		Drain:   400 * time.Millisecond,
	}
}

// TestQoESweepMatchesBaseline is the CI QoE gate: the virtual-time sweep
// over every named profile must render the exact verdict table checked in at
// testdata/qoe_baseline.txt. A diff means a behavior change somewhere in the
// relay/netem/simnet stack — rerun with -qoe.update and review the new table
// like any golden change. On failure the table (and, when RETROLOCK_QOE_DIR
// is set, capture artifacts) is written out for CI upload.
func TestQoESweepMatchesBaseline(t *testing.T) {
	results, table, err := Sweep(baselineSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.LeakErrs != 0 || r.IntegrityErrs != 0 || r.MiswireErrs != 0 {
			t.Errorf("%s: relay correctness errors: leak=%d integrity=%d miswire=%d",
				r.Profile, r.LeakErrs, r.IntegrityErrs, r.MiswireErrs)
		}
		if r.Sent == 0 || r.Recv == 0 {
			t.Errorf("%s: sweep moved no traffic (sent=%d recv=%d)", r.Profile, r.Sent, r.Recv)
		}
	}
	got := table.String()

	golden := filepath.Join("testdata", "qoe_baseline.txt")
	if *qoeUpdate {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s:\n%s", golden, got)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing QoE baseline (run with -qoe.update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("QoE verdict table diverged from baseline.\ngot:\n%s\nwant:\n%s\n(rerun with -qoe.update if the change is intended)", got, want)
		writeFailureArtifacts(t, got, string(want))
	}
}

// writeFailureArtifacts drops the diverging tables plus a small RKCP capture
// pair (client-side and relay-side view of one wifi run) into
// $RETROLOCK_QOE_DIR so the CI job can upload them.
func writeFailureArtifacts(t *testing.T, got, want string) {
	dir := os.Getenv("RETROLOCK_QOE_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("qoe artifacts: %v", err)
		return
	}
	_ = os.WriteFile(filepath.Join(dir, "qoe_verdicts_got.txt"), []byte(got), 0o644)
	_ = os.WriteFile(filepath.Join(dir, "qoe_verdicts_want.txt"), []byte(want), 0o644)
	client := capture.NewRecorder(4096, 1<<20)
	relayTap := capture.NewRecorder(4096, 1<<20)
	r, err := Run(RunConfig{
		Model:    Model{Sessions: 32, Drivers: 4, Seed: 7},
		Profile:  "wifi",
		Measure:  500 * time.Millisecond,
		Capture:  client,
		RelayTap: relayTap,
	})
	if err != nil {
		t.Logf("qoe artifacts: capture run: %v", err)
		return
	}
	fwd, rev, _ := netem.Profile("wifi", 7)
	meta := capture.Meta{
		Game: "trafficgen", Profile: r.Profile, InputHz: 60,
		Fwd: &fwd, Rev: &rev, Notes: "QoE baseline failure artifact",
	}
	_ = os.WriteFile(filepath.Join(dir, "qoe_client.rkcp"), client.Snapshot(meta).Encode(), 0o644)
	_ = os.WriteFile(filepath.Join(dir, "qoe_relay.rkcp"), relayTap.Snapshot(meta).Encode(), 0o644)
	t.Logf("qoe artifacts written to %s", dir)
}

// TestQoESweepDeterministicRerun runs the same (smaller) sweep twice in one
// process and requires bit-identical verdict tables, aggregate histograms
// and counters — the property that makes the golden baseline meaningful.
func TestQoESweepDeterministicRerun(t *testing.T) {
	cfg := SweepConfig{
		Model: Model{
			Sessions: *qoeSessions,
			Drivers:  8,
			Think:    ThinkModel{Every: time.Second, For: 200 * time.Millisecond},
			Churn:    ChurnModel{LeaveEvery: 2 * time.Second, DownFor: 300 * time.Millisecond},
			Seed:     11,
		},
		Profiles: []string{"wifi", "transcontinental"},
		Shards:   8,
		Warmup:   400 * time.Millisecond,
		Measure:  800 * time.Millisecond,
		Drain:    300 * time.Millisecond,
	}
	r1, t1, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Errorf("verdict tables differ across reruns:\nfirst:\n%s\nsecond:\n%s", t1.String(), t2.String())
	}
	for i := range r1 {
		a, b := r1[i], r2[i]
		if a.Sent != b.Sent || a.Recv != b.Recv ||
			a.Healthy != b.Healthy || a.Degraded != b.Degraded || a.Infeasible != b.Infeasible {
			t.Errorf("%s: run figures differ: %+v vs %+v", a.Profile, summary(a), summary(b))
		}
		if a.Latency.Buckets() != b.Latency.Buckets() {
			t.Errorf("%s: latency histograms differ across reruns", a.Profile)
		}
	}
}

func summary(r *Result) map[string]int64 {
	return map[string]int64{
		"sent": r.Sent, "recv": r.Recv,
		"healthy": int64(r.Healthy), "degraded": int64(r.Degraded), "infeasible": int64(r.Infeasible),
	}
}

// TestQoEVerdictsOrderByProfile checks the sweep reproduces the paper's
// qualitative result: QoE strictly worsens as the access link degrades from
// wifi through lte to transcontinental, with wifi mostly healthy and
// transcontinental mostly infeasible through a relay.
func TestQoEVerdictsOrderByProfile(t *testing.T) {
	results, _, err := Sweep(SweepConfig{
		Model:    Model{Sessions: 96, Drivers: 8, Seed: 3},
		Profiles: []string{"wifi", "lte", "transcontinental"},
		Shards:   8,
		Warmup:   400 * time.Millisecond,
		Measure:  800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wifi, lte, tc := results[0], results[1], results[2]
	if wifi.Healthy < wifi.Sessions*9/10 {
		t.Errorf("wifi: only %d/%d healthy", wifi.Healthy, wifi.Sessions)
	}
	if lte.Healthy >= wifi.Healthy && lte.Sessions == wifi.Sessions {
		t.Errorf("lte (%d healthy) should be worse than wifi (%d healthy)", lte.Healthy, wifi.Healthy)
	}
	if tc.Infeasible < tc.Sessions*9/10 {
		t.Errorf("transcontinental: only %d/%d infeasible, want ~all (relayed path past the cliff)", tc.Infeasible, tc.Sessions)
	}
}

// TestReplayDeterministic captures a small run client-side, replays the
// trace twice, and requires the two replays to agree bit-for-bit — the
// capture/replay half of the RKCP story.
func TestReplayDeterministic(t *testing.T) {
	rec := capture.NewRecorder(1<<17, 1<<24)
	_, err := Run(RunConfig{
		Model:   Model{Sessions: 48, Drivers: 6, Seed: 5},
		Profile: "wifi",
		Warmup:  200 * time.Millisecond,
		Measure: 600 * time.Millisecond,
		Drain:   300 * time.Millisecond,
		Capture: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("capture recorder dropped %d records; raise its budgets", rec.Dropped())
	}
	c := rec.Snapshot(capture.Meta{Game: "trafficgen", Profile: "wifi", InputHz: 60})
	enc := c.Encode()
	dec, err := capture.Decode(enc)
	if err != nil {
		t.Fatalf("captured trace does not round-trip: %v", err)
	}

	ra, err := Replay(dec, ReplayConfig{Drivers: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Replay(dec, ReplayConfig{Drivers: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := VerdictTable([]*Result{ra}), VerdictTable([]*Result{rb})
	if ta.String() != tb.String() {
		t.Errorf("replay verdicts differ across reruns:\n%s\nvs:\n%s", ta.String(), tb.String())
	}
	if ra.Sent != rb.Sent || ra.Recv != rb.Recv || ra.Latency.Buckets() != rb.Latency.Buckets() {
		t.Errorf("replay figures differ: sent %d/%d recv %d/%d", ra.Sent, rb.Sent, ra.Recv, rb.Recv)
	}
	if ra.Sent == 0 || ra.Recv == 0 {
		t.Errorf("replay moved no traffic (sent=%d recv=%d)", ra.Sent, ra.Recv)
	}
	if ra.Sessions != 48 {
		t.Errorf("replay re-admitted %d sessions, trace had 48", ra.Sessions)
	}
	if ra.LeakErrs != 0 || ra.IntegrityErrs != 0 || ra.MiswireErrs != 0 {
		t.Errorf("replay correctness errors: leak=%d integrity=%d miswire=%d",
			ra.LeakErrs, ra.IntegrityErrs, ra.MiswireErrs)
	}
}

// TestConcurrentTapsUnderStorm drives a real-time run with one shared
// recorder attached as BOTH the client-side capture and the relay tap while
// a loss storm reshapes half the links mid-run — many goroutines recording
// into one Recorder. Run under -race this is the capture pipeline's
// concurrency proof; the assertions check no record was interleaved or
// corrupted and the recorder held its memory bounds.
func TestConcurrentTapsUnderStorm(t *testing.T) {
	const maxRecords, maxBytes = 8192, 1 << 20
	shared := capture.NewRecorder(maxRecords, maxBytes)
	r, err := RunReal(RunConfig{
		Model:    Model{Sessions: 24, Drivers: 6, InputHz: 120, Seed: 13, JoinSpread: 20 * time.Millisecond},
		Profile:  "wifi",
		Warmup:   50 * time.Millisecond,
		Measure:  250 * time.Millisecond,
		Drain:    100 * time.Millisecond,
		Capture:  shared,
		RelayTap: shared,
		Storm: &Storm{
			After: 100 * time.Millisecond,
			For:   100 * time.Millisecond,
			Link:  netem.Config{Delay: 2 * time.Millisecond, Loss: 0.4, BurstLoss: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent == 0 {
		t.Fatal("real-time run sent nothing")
	}
	if r.LeakErrs != 0 || r.IntegrityErrs != 0 || r.MiswireErrs != 0 {
		t.Errorf("relay correctness errors under storm: leak=%d integrity=%d miswire=%d",
			r.LeakErrs, r.IntegrityErrs, r.MiswireErrs)
	}

	if shared.Len() == 0 {
		t.Fatal("shared recorder captured nothing")
	}
	if shared.Len() > maxRecords {
		t.Errorf("recorder exceeded its record bound: %d > %d", shared.Len(), maxRecords)
	}
	if shared.BytesUsed() > maxBytes {
		t.Errorf("recorder exceeded its byte bound: %d > %d", shared.BytesUsed(), maxBytes)
	}
	c := shared.Snapshot(capture.Meta{Game: "trafficgen", Profile: "wifi"})
	// Every record must be internally consistent — a torn write would show
	// as a header that fails to parse or a site byte that contradicts the
	// record's site. (Client DirSend records and relay DirRecv records both
	// carry the sender's site; client DirRecv and relay DirSend carry the
	// receiver's, whose datagram came from the peer site.)
	for i := range c.Records {
		rec := &c.Records[i]
		if rec.Site > 1 {
			t.Fatalf("record %d: impossible site %d", i, rec.Site)
		}
		if len(rec.Payload) == 0 {
			continue
		}
		if _, _, _, ok := relay.ParseHeader(rec.Payload); !ok {
			t.Fatalf("record %d: torn payload (unparseable relay header, %d bytes)", i, len(rec.Payload))
		}
	}
	// And the whole capture must survive an encode/decode round trip.
	if _, err := capture.Decode(c.Encode()); err != nil {
		t.Fatalf("storm capture does not round-trip: %v", err)
	}
	t.Logf("storm run: sent=%d recv=%d records=%d dropped=%d bytes=%d",
		r.Sent, r.Recv, shared.Len(), shared.Dropped(), shared.BytesUsed())
}
