//go:build linux && (amd64 || arm64)

package relay

// Batched datagram I/O via the recvmmsg/sendmmsg syscalls: one kernel
// crossing moves up to batchSize datagrams, which is where a multi-session
// relay spends its life. The stdlib exposes neither call and the usual
// wrapper (golang.org/x/net/ipv4) is not a dependency of this module, so the
// mmsghdr plumbing lives here, confined to the 64-bit Linux targets whose
// struct layout it encodes (Msghdr is 56 bytes, 8-aligned, on both amd64 and
// arm64; mmsghdr appends a uint32 length plus padding to 64).
//
// Readiness integrates with the Go netpoller through syscall.RawConn: each
// batch attempt runs non-blocking (MSG_DONTWAIT) inside RawConn.Read/Write,
// which parks the goroutine on EAGAIN instead of spinning.

import (
	"net"
	"net/netip"
	"sync"
	"syscall"
	"unsafe"
)

// batchSize is how many datagrams one syscall moves at most.
const batchSize = 64

// sizeofSockaddrAny matches struct sockaddr_storage as syscall uses it.
const sizeofSockaddrAny = 112

type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// batchState is one direction's pre-allocated syscall scaffolding: mmsghdr
// array, iovecs and sockaddr buffers, all fixed for the front's lifetime so
// the hot path performs zero allocations.
type batchState struct {
	hs    [batchSize]mmsghdr
	iov   [batchSize]syscall.Iovec
	names [batchSize][sizeofSockaddrAny]byte
}

func (s *batchState) init() {
	for i := range s.hs {
		s.hs[i].Hdr.Name = &s.names[i][0]
		s.hs[i].Hdr.Namelen = sizeofSockaddrAny
		s.hs[i].Hdr.Iov = &s.iov[i]
		s.hs[i].Hdr.Iovlen = 1
	}
}

type batcher struct {
	rc syscall.RawConn
	v6 bool // socket family: true for AF_INET6 (incl. dual-stack wildcard)

	// Recv state is single-reader by contract; send state is shared by all
	// shards writing through this front.
	r   batchState
	wmu sync.Mutex
	w   batchState
}

// newBatcher prepares the mmsg scaffolding for conn.
func newBatcher(conn *net.UDPConn) (*batcher, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	la := conn.LocalAddr().(*net.UDPAddr)
	b := &batcher{rc: rc, v6: la.IP.To4() == nil}
	b.r.init()
	b.w.init()
	return b, nil
}

func recvmmsg(fd uintptr, hs []mmsghdr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	return int(n), e
}

func sendmmsg(fd uintptr, hs []mmsghdr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	return int(n), e
}

// recv blocks until at least one datagram is ready, then drains up to
// min(len(ms), batchSize) in one recvmmsg call.
func (b *batcher) recv(ms []Message) (int, error) {
	k := len(ms)
	if k > batchSize {
		k = batchSize
	}
	for i := 0; i < k; i++ {
		buf := ms[i].Buf[:cap(ms[i].Buf)]
		b.r.iov[i].Base = &buf[0]
		b.r.iov[i].SetLen(len(buf))
		b.r.hs[i].Hdr.Namelen = sizeofSockaddrAny
		ms[i].Buf = buf
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		n, errno = recvmmsg(fd, b.r.hs[:k])
		return errno != syscall.EAGAIN
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < n; i++ {
		ms[i].Buf = ms[i].Buf[:b.r.hs[i].Len]
		ms[i].Addr = Addr{AP: parseSockaddr(&b.r.names[i])}
	}
	return n, nil
}

// send flushes all of ms, skipping datagrams the kernel refuses (best-effort
// UDP). It returns how many were handed to the network.
func (b *batcher) send(ms []Message) (int, error) {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	sent := 0
	for off := 0; off < len(ms); {
		k := len(ms) - off
		if k > batchSize {
			k = batchSize
		}
		live := 0
		for i := 0; i < k; i++ {
			m := &ms[off+i]
			if !m.Addr.AP.IsValid() || len(m.Buf) == 0 {
				continue
			}
			nl := putSockaddr(&b.w.names[live], m.Addr.AP, b.v6)
			if nl == 0 {
				continue // family mismatch (v6 peer on a v4 socket)
			}
			b.w.hs[live].Hdr.Namelen = nl
			b.w.iov[live].Base = &m.Buf[0]
			b.w.iov[live].SetLen(len(m.Buf))
			live++
		}
		off += k
		for done := 0; done < live; {
			var n int
			var errno syscall.Errno
			err := b.rc.Write(func(fd uintptr) bool {
				n, errno = sendmmsg(fd, b.w.hs[done:live])
				return errno != syscall.EAGAIN
			})
			if err != nil {
				return sent, err
			}
			if errno != 0 {
				// Per-datagram refusal (EPERM, unreachable): skip it and
				// keep flushing — a relay must never livelock on one peer.
				done++
				continue
			}
			done += n
			sent += n
		}
	}
	return sent, nil
}

// parseSockaddr decodes a kernel-written sockaddr into netip.AddrPort,
// unmapping v4-in-v6 so comparisons are canonical.
func parseSockaddr(name *[sizeofSockaddrAny]byte) netip.AddrPort {
	switch family := *(*uint16)(unsafe.Pointer(&name[0])); family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(name))
		port := uint16(name[2])<<8 | uint16(name[3])
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(name))
		port := uint16(name[2])<<8 | uint16(name[3])
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), port)
	}
	return netip.AddrPort{}
}

// putSockaddr encodes ap for a socket of the given family and returns the
// sockaddr length (0 when the address cannot be expressed in that family).
func putSockaddr(name *[sizeofSockaddrAny]byte, ap netip.AddrPort, v6 bool) uint32 {
	addr := ap.Addr()
	if v6 {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(name))
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		sa.Addr = addr.As16() // v4 maps to ::ffff:a.b.c.d
		name[2] = byte(ap.Port() >> 8)
		name[3] = byte(ap.Port())
		return uint32(unsafe.Sizeof(*sa))
	}
	if addr.Is6() && !addr.Is4In6() {
		return 0
	}
	sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(name))
	*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	sa.Addr = addr.Unmap().As4()
	name[2] = byte(ap.Port() >> 8)
	name[3] = byte(ap.Port())
	return uint32(unsafe.Sizeof(*sa))
}
