package relay

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

// The alert pipeline's determinism contract: the whole chain — shard packet
// path, fleet grading, history sampling, burn-rate evaluation, capture
// victim selection, incident timeline — runs under the virtual clock, so
// rerunning the same chaos scenario must reproduce the timeline bit for
// bit. This is what makes a soak failure debuggable: the incident log from
// a red CI run can be regenerated locally, byte-identical.
//
// The scenario is a compact cousin of the 10k soak: a small population,
// the same warmup / burst-loss / partition / heal phases, flip capture
// disabled and the burn-rate alert driving a single capture.

// alertScenarioDigest runs the scenario once and renders everything the
// alert pipeline produced into one string.
func alertScenarioDigest(t *testing.T, seed int64) string {
	t.Helper()
	const (
		nSessions = 64
		nDrivers  = 4
		nShards   = 4
		tick      = 50 * time.Millisecond
	)
	gradeWindow := 10 * tick
	epoch := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	v := vclock.NewVirtual(epoch)
	net := simnet.New(v)

	ep := net.MustBind("relay-0")
	ep.SetQueueCap(1 << 14)
	front := NewSimFront(ep)
	frontAddr := ep.Addr()
	d, err := NewDaemon(Config{
		Shards:             nShards,
		MaxSessions:        nSessions,
		QueueLen:           1 << 12,
		WriteBatch:         64,
		SessionTTL:         time.Hour,
		Clock:              v,
		Seed:               seed,
		Stats:              true,
		AutoCaptureRecords: 16,
		AutoCaptureBytes:   2048,
	}, []Front{front})
	if err != nil {
		t.Fatal(err)
	}
	var captured atomic.Value // Token of the one bundle
	fl, err := NewFleet(d, FleetConfig{
		Window: gradeWindow,
		TopK:   4,
		Health: obs.HealthConfig{
			FrameTarget:           tick,
			FrameDegradedMargin:   tick / 5,
			FrameInfeasibleMargin: 4 * tick,
		},
		CaptureLimit:       1,
		CaptureEvery:       time.Hour,
		DisableFlipCapture: true,
		OnCapture:          func(ac AnomalyCapture) { captured.Store(ac.Token) },
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	fl.Register(reg)
	var digest strings.Builder
	var svc *history.Service
	svc = history.Wire(reg, history.Options{
		Store: history.Config{Resolutions: []history.Resolution{
			{Step: gradeWindow, Slots: 64},
			{Step: 5 * gradeWindow, Slots: 64},
		}},
		Rules: []history.Rule{{
			Name:   "fleet-session-health",
			Source: history.SourceGauge,
			Bad: []string{
				obs.Key(MetricSessionVerdicts, obs.Labels{"state": "degraded"}),
				obs.Key(MetricSessionVerdicts, obs.Labels{"state": "infeasible"}),
			},
			Total:      []string{MetricSessionTracked},
			Budget:     0.05,
			FastWindow: 2 * gradeWindow,
			SlowWindow: 4 * gradeWindow,
			Threshold:  4,
			ClearAfter: 2,
		}},
		OnTransition: func(ev history.Event) {
			fmt.Fprintf(&digest, "event %s firing=%v at=%d fast=%.6f slow=%.6f\n",
				ev.Name, ev.Firing, ev.AtNs, ev.BurnFast, ev.BurnSlow)
			if !ev.Firing {
				return
			}
			at := time.Unix(0, ev.AtNs)
			snap := fl.Snapshot()
			svc.Log.Annotate(ev.Name, at, "fleet: %d tracked, %d degraded, %d infeasible",
				snap.Summary.Tracked, snap.Summary.Degraded, snap.Summary.Infeasible)
			if tok, ok := fl.CaptureBurning(at); ok {
				svc.Log.AttachCapture(ev.Name, history.CaptureRef{
					Session: tok.String(), Path: "(in-memory)", AtNs: ev.AtNs,
				})
			}
		},
	})

	sessions := make([]Token, nSessions)
	for i := range sessions {
		p, err := d.Place()
		if err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
		sessions[i] = p.Token
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	runDriver := func(j int) {
		defer wg.Done()
		epA := net.MustBind(fmt.Sprintf("drvA-%d", j))
		epB := net.MustBind(fmt.Sprintf("drvB-%d", j))
		epA.SetQueueCap(1 << 12)
		epB.SetQueueCap(1 << 12)
		v.Sleep(time.Duration(j+1) * tick / (nDrivers + 1))
		buf := make([]byte, HeaderLen+8)
		for !stop.Load() {
			for i := j; i < nSessions; i += nDrivers {
				for site := 0; site < 2; site++ {
					n := PutHeader(buf, sessions[i], site)
					binary.BigEndian.PutUint64(buf[n:], uint64(sessions[i]))
					ep := epA
					if site == 1 {
						ep = epB
					}
					_ = ep.SendTo(frontAddr, buf[:n+8])
				}
			}
			for _, ep := range []*simnet.Endpoint{epA, epB} {
				for {
					if _, ok := ep.TryRecv(); !ok {
						break
					}
				}
			}
			v.Sleep(tick)
		}
	}

	// Chaos reshapes the first half of the drivers, same phases as the soak.
	setChaos := func(shape func(j int) simnet.Shaper) {
		for j := 0; j < nDrivers/2; j++ {
			sh := shape(j)
			net.SetLinkBoth(fmt.Sprintf("drvA-%d", j), frontAddr, sh)
			net.SetLinkBoth(fmt.Sprintf("drvB-%d", j), frontAddr, sh)
		}
	}
	controller := v.Go(func() {
		v.Sleep(time.Second) // warmup
		setChaos(func(j int) simnet.Shaper {
			return netem.New(netem.Config{
				Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
				Loss: 0.3, BurstLoss: true, Seed: seed + int64(j),
			})
		})
		v.Sleep(time.Second) // burst loss
		setChaos(func(j int) simnet.Shaper {
			return netem.New(netem.Config{Loss: 1, Seed: seed + int64(j)})
		})
		v.Sleep(time.Second) // partition
		setChaos(func(int) simnet.Shaper { return nil })
		v.Sleep(5 * time.Second) // heal
		stop.Store(true)
	})

	d.StartVirtual(v)
	fl.StartVirtual(v)
	samplerDone := v.Go(func() {
		v.Sleep(gradeWindow + gradeWindow/2)
		for !stop.Load() {
			svc.Sample(v.Now())
			v.Sleep(gradeWindow)
		}
	})
	wg.Add(nDrivers)
	for j := 0; j < nDrivers; j++ {
		j := j
		v.Go(func() { runDriver(j) })
	}
	<-controller
	wg.Wait()
	<-samplerDone
	fl.Close()
	_ = d.Close()

	if tok, ok := captured.Load().(Token); ok {
		fmt.Fprintf(&digest, "captured %s\n", tok)
	} else {
		digest.WriteString("captured none\n")
	}
	incidents, dropped := svc.Log.Snapshot()
	var timeline strings.Builder
	history.RenderTimeline(&timeline, incidents, dropped)
	digest.WriteString(timeline.String())
	return digest.String()
}

func TestAlertTimelineBitIdenticalAcrossReruns(t *testing.T) {
	first := alertScenarioDigest(t, 7)
	second := alertScenarioDigest(t, 7)
	if first != second {
		t.Fatalf("alert pipeline is not deterministic under the virtual clock:\n--- first run ---\n%s--- second run ---\n%s",
			first, second)
	}
	if !strings.Contains(first, "firing=true") || !strings.Contains(first, "firing=false") {
		t.Fatalf("scenario did not exercise a full fire/clear cycle:\n%s", first)
	}
	if strings.Contains(first, "captured none") {
		t.Fatalf("scenario captured no session:\n%s", first)
	}
	t.Logf("deterministic digest:\n%s", first)
}
