package relay

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

// The soak drives thousands of concurrent sessions through one daemon's
// real shard code under the virtual clock, with chaos phases (burst loss,
// partition, heal) on half the client population. `go test` runs a
// CI-sized default; `make relay-soak` raises -relay.sessions to 10000.
var (
	soakSessions = flag.Int("relay.sessions", 1024, "concurrent sessions in the relay soak")
	soakDrivers  = flag.Int("relay.drivers", 16, "driver actors multiplexing the soak sessions")
	soakShards   = flag.Int("relay.shards", 16, "relay shards in the soak")
	soakFronts   = flag.Int("relay.fronts", 4, "relay fronts in the soak")
	soakTick     = flag.Duration("relay.tick", 50*time.Millisecond, "virtual send cadence per site")
	soakSeed     = flag.Int64("relay.seed", 1, "soak PRNG seed (phases derive sub-seeds)")
)

// soakEpoch anchors the soak's virtual clock (same convention as chaos).
var soakEpoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// soakSession is one hosted pair owned by a driver. Counters are atomics:
// drivers increment them, the phase controller snapshots them.
type soakSession struct {
	token  Token
	driver int
	sent   [2]atomic.Int64 // per site
	recv   [2]atomic.Int64 // datagrams delivered TO site (0/1)
}

func TestRelaySoak10kSessionsUnderChaos(t *testing.T) {
	nSessions := *soakSessions
	nDrivers := *soakDrivers
	if nDrivers > nSessions {
		nDrivers = nSessions
	}
	v := vclock.NewVirtual(soakEpoch)
	net := simnet.New(v)

	// Relay fronts: simnet endpoints with queues deep enough to absorb a
	// whole synchronized send burst (every session ticks at the same
	// virtual cadence, staggered per driver).
	fronts := make([]Front, *soakFronts)
	frontAddrs := make([]string, *soakFronts)
	for i := range fronts {
		ep := net.MustBind(fmt.Sprintf("relay-%d", i))
		ep.SetQueueCap(1 << 16)
		fronts[i] = NewSimFront(ep)
		frontAddrs[i] = ep.Addr()
	}
	d, err := NewDaemon(Config{
		Shards:      *soakShards,
		MaxSessions: (nSessions / *soakShards) + *soakShards,
		QueueLen:    1 << 14,
		WriteBatch:  256,
		SessionTTL:  time.Hour, // the soak asserts zero expiry churn
		Clock:       v,
		Seed:        *soakSeed,
		// Fleet observability on, sized like relayd's -autocapture default.
		Stats:              true,
		AutoCaptureRecords: 32,
		AutoCaptureBytes:   4096,
	}, fronts)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet aggregator: grades every session's inter-arrival cadence against
	// the drivers' send tick. Flip-driven capture is off — the burn-rate
	// alert below owns the capture decision — and CaptureLimit 1 makes the
	// capture guards themselves an assertion target: the chaos phase burns
	// hundreds of sessions at once, and exactly one .rkcp bundle may come out.
	gradeWindow := 10 * *soakTick
	var (
		capMu   sync.Mutex
		bundles []AnomalyCapture
	)
	fl, err := NewFleet(d, FleetConfig{
		Window: gradeWindow,
		TopK:   8,
		Health: obs.HealthConfig{
			// One datagram per site per tick is the healthy cadence; burst
			// loss stretches the mean gap to tick/(1-loss) ≈ 1.4x, so the
			// degraded margin sits at 1.2x. The infeasible margin is wide
			// (5x) so the first post-partition window — whose mean includes
			// one partition-length gap per site — grades degraded, not
			// infeasible, and recovery hysteresis is exercised from there.
			FrameTarget:           *soakTick,
			FrameDegradedMargin:   *soakTick / 5,
			FrameInfeasibleMargin: 4 * *soakTick,
		},
		CaptureLimit:       1,
		CaptureEvery:       time.Hour,
		DisableFlipCapture: true,
		OnCapture: func(ac AnomalyCapture) {
			capMu.Lock()
			bundles = append(bundles, ac)
			capMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// History + burn-rate alerting over the fleet's verdict gauges: the
	// alert burns when the unhealthy fraction of the fleet exceeds 4x a 5%
	// budget over both a fast (2-window) and slow (4-window) span. Firing
	// triggers the single alert-driven capture; a second CaptureBurning call
	// in the same handler asserts the lifetime limit holds while hundreds of
	// sessions are still burning.
	reg := obs.NewRegistry()
	fl.Register(reg)
	var (
		alertMu       sync.Mutex
		alertEvents   []history.Event
		extraCaptures atomic.Int64
	)
	var svc *history.Service
	svc = history.Wire(reg, history.Options{
		Store: history.Config{Resolutions: []history.Resolution{
			{Step: gradeWindow, Slots: 120},
			{Step: 5 * gradeWindow, Slots: 120},
		}},
		Rules: []history.Rule{{
			Name:   "fleet-session-health",
			Source: history.SourceGauge,
			Bad: []string{
				obs.Key(MetricSessionVerdicts, obs.Labels{"state": "degraded"}),
				obs.Key(MetricSessionVerdicts, obs.Labels{"state": "infeasible"}),
			},
			Total:      []string{MetricSessionTracked},
			Budget:     0.05,
			FastWindow: 2 * gradeWindow,
			SlowWindow: 4 * gradeWindow,
			Threshold:  4,
			ClearAfter: 2,
		}},
		OnTransition: func(ev history.Event) {
			alertMu.Lock()
			alertEvents = append(alertEvents, ev)
			alertMu.Unlock()
			if !ev.Firing {
				return
			}
			at := time.Unix(0, ev.AtNs)
			snap := fl.Snapshot()
			svc.Log.Annotate(ev.Name, at, "fleet: %d tracked, %d degraded, %d infeasible, %d flips",
				snap.Summary.Tracked, snap.Summary.Degraded, snap.Summary.Infeasible, snap.Summary.Flips)
			if tok, ok := fl.CaptureBurning(at); ok {
				svc.Log.AttachCapture(ev.Name, history.CaptureRef{
					Session: tok.String(), Path: "(in-memory)", AtNs: ev.AtNs,
				})
			}
			if _, ok := fl.CaptureBurning(at); ok {
				extraCaptures.Add(1)
			}
		},
	})

	// Admission: place every session up front (the lobby admission flow has
	// its own tests; the soak targets the packet path at scale).
	sessions := make([]*soakSession, nSessions)
	byToken := make(map[Token]int, nSessions)
	for i := range sessions {
		p, err := d.Place()
		if err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
		sessions[i] = &soakSession{token: p.Token, driver: i % nDrivers}
		byToken[p.Token] = i
	}
	if got := d.Sessions(); got != nSessions {
		t.Fatalf("placed %d sessions, daemon accounts %d", nSessions, got)
	}

	// Drivers: driver j speaks for site 0 of its sessions from endpoint
	// drvA-j and site 1 from drvB-j, so every forwarded datagram crosses
	// emulated links both ways. The first half of the drivers is the chaos
	// group; the second half keeps clean links throughout.
	type driver struct {
		idx      int
		epA, epB *simnet.Endpoint
		own      []*soakSession
	}
	drivers := make([]*driver, nDrivers)
	for j := range drivers {
		epA := net.MustBind(fmt.Sprintf("drvA-%d", j))
		epB := net.MustBind(fmt.Sprintf("drvB-%d", j))
		epA.SetQueueCap(1 << 14)
		epB.SetQueueCap(1 << 14)
		drivers[j] = &driver{idx: j, epA: epA, epB: epB}
	}
	for _, s := range sessions {
		dr := drivers[s.driver]
		dr.own = append(dr.own, s)
	}
	chaosDrivers := nDrivers / 2 // drivers [0, chaosDrivers) get faults

	var (
		stop          atomic.Bool
		leakErrs      atomic.Int64 // token not owned by the receiving driver
		integrityErrs atomic.Int64 // payload does not match its prefix
		miswiredErrs  atomic.Int64 // site-0 traffic on a site-0 endpoint etc.
	)
	frontOf := func(s *soakSession) string {
		return frontAddrs[s.token.ShardIndex()%len(frontAddrs)]
	}

	runDriver := func(dr *driver) {
		// Stagger drivers across the tick so the send burst is spread.
		v.Sleep(time.Duration(dr.idx+1) * *soakTick / time.Duration(nDrivers+1))
		buf := make([]byte, HeaderLen+13)
		seq := uint32(0)
		own := make(map[Token]*soakSession, len(dr.own))
		for _, s := range dr.own {
			own[s.token] = s
		}
		drain := func(ep *simnet.Endpoint, site int) {
			for {
				g, ok := ep.TryRecv()
				if !ok {
					return
				}
				tok, fromSite, pl, ok := ParseHeader(g.Payload)
				if !ok {
					integrityErrs.Add(1)
					continue
				}
				s, mine := own[tok]
				if !mine {
					leakErrs.Add(1)
					continue
				}
				if fromSite != 1-site {
					miswiredErrs.Add(1)
					continue
				}
				if len(pl) != 13 || Token(binary.BigEndian.Uint64(pl)) != tok || int(pl[12]) != fromSite {
					integrityErrs.Add(1)
					continue
				}
				s.recv[site].Add(1)
			}
		}
		for !stop.Load() {
			seq++
			for _, s := range dr.own {
				for site := 0; site < 2; site++ {
					n := PutHeader(buf, s.token, site)
					binary.BigEndian.PutUint64(buf[n:], uint64(s.token))
					binary.BigEndian.PutUint32(buf[n+8:], seq)
					buf[n+12] = byte(site)
					ep := dr.epA
					if site == 1 {
						ep = dr.epB
					}
					// Lost sends (partitions) are fine; a closed network is not
					// expected while the soak runs.
					_ = ep.SendTo(frontOf(s), buf[:n+13])
					s.sent[site].Add(1)
				}
			}
			drain(dr.epA, 0)
			drain(dr.epB, 1)
			v.Sleep(*soakTick)
		}
	}

	// Phase controller: reshapes the chaos group's links on a schedule and
	// snapshots per-session delivery counts around the windows it asserts.
	type snapshot []int64
	takeSnap := func() snapshot {
		sn := make(snapshot, nSessions)
		for i, s := range sessions {
			sn[i] = s.recv[0].Load() + s.recv[1].Load()
		}
		return sn
	}
	setChaosLinks := func(shape func(j int) simnet.Shaper) {
		for j := 0; j < chaosDrivers; j++ {
			sh := shape(j)
			for _, fa := range frontAddrs {
				net.SetLinkBoth(fmt.Sprintf("drvA-%d", j), fa, sh)
				net.SetLinkBoth(fmt.Sprintf("drvB-%d", j), fa, sh)
			}
		}
	}
	// verdictCensus reads every session's fleet verdict, split into the
	// chaos and clean driver groups (untracked sessions count as a third
	// bucket — after the first grading tick there should be none).
	type census struct {
		chaosUnhealthy, cleanUnhealthy, untracked int
	}
	takeCensus := func() census {
		var c census
		for _, s := range sessions {
			verdict, ok := fl.Verdict(s.token)
			switch {
			case !ok:
				c.untracked++
			case verdict > obs.Healthy && s.driver < chaosDrivers:
				c.chaosUnhealthy++
			case verdict > obs.Healthy:
				c.cleanUnhealthy++
			}
		}
		return c
	}
	var warmupSnap, healStart, healEnd snapshot
	var partEndCensus, healEndCensus census
	// The heal phase is 10 grading windows long: the first window after the
	// partition grades degraded (its mean gap includes one partition-length
	// hole per site), recovery needs RecoverAfter=3 strictly-better windows
	// after that, and then the alert's slow window (4 grading windows) must
	// drain below the clearing bound for ClearAfter consecutive evaluations
	// before the burn-rate alert resolves — plus phase-alignment slack.
	phases := []struct {
		name string
		dur  time.Duration
	}{
		{"warmup", time.Second},
		{"burst-loss", time.Second},
		{"partition", time.Second},
		{"heal", 5 * time.Second},
	}
	controller := v.Go(func() {
		for _, ph := range phases {
			switch ph.name {
			case "warmup", "heal":
				setChaosLinks(func(int) simnet.Shaper { return nil }) // clean
			case "burst-loss":
				setChaosLinks(func(j int) simnet.Shaper {
					return netem.New(netem.Config{
						Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
						Loss: 0.3, BurstLoss: true, Seed: *soakSeed + int64(j),
					})
				})
			case "partition":
				setChaosLinks(func(j int) simnet.Shaper {
					return netem.New(netem.Config{Loss: 1, Seed: *soakSeed + int64(j)})
				})
			}
			switch ph.name {
			case "heal":
				healStart = takeSnap()
				partEndCensus = takeCensus()
			}
			v.Sleep(ph.dur)
			switch ph.name {
			case "warmup":
				warmupSnap = takeSnap()
			case "heal":
				healEnd = takeSnap()
				healEndCensus = takeCensus()
			}
		}
		stop.Store(true)
	})

	d.StartVirtual(v)
	fl.StartVirtual(v)
	// History sampler: one base tick per grading window, phase-offset half a
	// window behind the fleet tick so every sample reads a freshly published
	// verdict census (never racing the same virtual instant).
	samplerDone := v.Go(func() {
		v.Sleep(gradeWindow + gradeWindow/2)
		for !stop.Load() {
			svc.Sample(v.Now())
			v.Sleep(gradeWindow)
		}
	})
	dones := make([]<-chan struct{}, 0, nDrivers)
	for _, dr := range drivers {
		dr := dr
		dones = append(dones, v.Go(func() { runDriver(dr) }))
	}
	<-controller
	for _, done := range dones {
		<-done
	}
	<-samplerDone
	// Grab the fleet's end-of-run state before tearing anything down: the
	// capture limit was already hit, so FlushPending must emit nothing.
	flushed := fl.FlushPending(v.Now())
	fleetTracked := fl.Tracked()
	fleetSnap := fl.Snapshot()
	var tableSessions int
	for _, sh := range d.Shards() {
		tableSessions += len(sh.sessionTable())
	}
	fl.Close()
	_ = d.Close()

	// --- Invariant suite -------------------------------------------------

	// 1. Session isolation: no driver ever received a token it does not
	// own, every payload matched its prefix, and traffic arrived on the
	// correct side's endpoint.
	if n := leakErrs.Load(); n != 0 {
		t.Errorf("cross-session leakage: %d datagrams at foreign drivers", n)
	}
	if n := integrityErrs.Load(); n != 0 {
		t.Errorf("payload integrity: %d corrupted/mismatched datagrams", n)
	}
	if n := miswiredErrs.Load(); n != 0 {
		t.Errorf("miswired delivery: %d datagrams on the wrong site endpoint", n)
	}

	// 2. Liveness. Warmup (all links clean): every session made progress.
	// Heal (links restored): every session — including the partitioned
	// half — resumed and progressed through the whole window.
	stuckWarm, stuckHeal := 0, 0
	for i := range sessions {
		if warmupSnap[i] == 0 {
			stuckWarm++
		}
		if healEnd[i]-healStart[i] <= 0 {
			stuckHeal++
		}
	}
	if stuckWarm > 0 {
		t.Errorf("liveness: %d/%d sessions silent through the clean warmup", stuckWarm, nSessions)
	}
	if stuckHeal > 0 {
		t.Errorf("liveness: %d/%d sessions did not resume after the partition healed", stuckHeal, nSessions)
	}

	// 3. Bounded memory and counter consistency per shard.
	var totalIn, totalFwd, totalDropQ int64
	for i, sh := range d.Shards() {
		in := sh.datagramsIn.Value()
		fwd := sh.forwarded.Value()
		parked := sh.queuedPending.Value()
		rejects := sh.rejRunt.Value() + sh.rejSite.Value() + sh.rejToken.Value() + sh.rejSpoof.Value()
		totalIn += in
		totalFwd += fwd
		totalDropQ += sh.QueueDropped()
		if rejects != 0 {
			t.Errorf("shard %d: %d rejected datagrams in an all-valid soak (runt=%d site=%d token=%d spoof=%d)",
				i, rejects, sh.rejRunt.Value(), sh.rejSite.Value(), sh.rejToken.Value(), sh.rejSpoof.Value())
		}
		if peak := sh.QueuePeak(); peak > int64(d.cfg.QueueLen) {
			t.Errorf("shard %d: inbound queue peak %d exceeded bound %d", i, peak, d.cfg.QueueLen)
		}
		// Every ingested datagram was rejected, parked, or forwarded
		// directly; pending drains add forwards beyond that, but never more
		// than were parked.
		direct := in - rejects - parked
		if drained := fwd - direct; drained < 0 || drained > parked {
			t.Errorf("shard %d: counters inconsistent: in=%d fwd=%d parked=%d rejects=%d", i, in, fwd, parked, rejects)
		}
		if sh.sessionsTotal.Value() != int64(sh.Active()) ||
			sh.sessionsExpired.Value() != 0 || sh.sessionsClosed.Value() != 0 {
			t.Errorf("shard %d: session churn in a churn-free soak: total=%d active=%d expired=%d closed=%d",
				i, sh.sessionsTotal.Value(), sh.Active(), sh.sessionsExpired.Value(), sh.sessionsClosed.Value())
		}
	}
	if got := d.Sessions(); got != nSessions {
		t.Errorf("daemon sessions = %d after soak, want %d", got, nSessions)
	}

	// 4. Fleet grading. The chaos group must be graded unhealthy by the end
	// of the partition and recovered by the end of the heal; the clean group
	// must never grade unhealthy. Small slack absorbs virtual same-instant
	// scheduling wobble at phase boundaries.
	chaosSessions := 0
	for _, s := range sessions {
		if s.driver < chaosDrivers {
			chaosSessions++
		}
	}
	if partEndCensus.untracked != 0 || healEndCensus.untracked != 0 {
		t.Errorf("fleet: %d/%d sessions untracked at partition/heal end",
			partEndCensus.untracked, healEndCensus.untracked)
	}
	if min := chaosSessions * 9 / 10; partEndCensus.chaosUnhealthy < min {
		t.Errorf("fleet: only %d/%d chaos sessions graded unhealthy at partition end, want >= %d",
			partEndCensus.chaosUnhealthy, chaosSessions, min)
	}
	if max := chaosSessions / 100; healEndCensus.chaosUnhealthy > max {
		t.Errorf("fleet: %d/%d chaos sessions still unhealthy at heal end, want <= %d",
			healEndCensus.chaosUnhealthy, chaosSessions, max)
	}
	if partEndCensus.cleanUnhealthy != 0 || healEndCensus.cleanUnhealthy != 0 {
		t.Errorf("fleet: clean-link sessions graded unhealthy: %d at partition end, %d at heal end",
			partEndCensus.cleanUnhealthy, healEndCensus.cleanUnhealthy)
	}

	// 5. Fleet accounting: no leaked or lost grading state in a churn-free
	// soak, and the shard tables cover exactly the hosted population.
	if fleetTracked != nSessions {
		t.Errorf("fleet tracks %d sessions after soak, want %d", fleetTracked, nSessions)
	}
	if fleetSnap.Summary.Tracked != nSessions {
		t.Errorf("fleet snapshot tracked %d sessions, want %d", fleetSnap.Summary.Tracked, nSessions)
	}
	if tableSessions != nSessions {
		t.Errorf("shard stat tables cover %d sessions, want %d", tableSessions, nSessions)
	}
	if fleetSnap.Summary.Flips < int64(chaosSessions*9/10) {
		t.Errorf("fleet counted %d flips, want >= %d (one per degraded chaos session)",
			fleetSnap.Summary.Flips, chaosSessions*9/10)
	}

	// 6. Anomaly capture: with CaptureLimit 1, the chaos storm produces
	// exactly one bundle; every other flip is a counted suppression, and the
	// shutdown flush has nothing left to emit. The bundle must survive an
	// encode/decode round trip and every record must demux back to the
	// captured session's token.
	capMu.Lock()
	gotBundles := append([]AnomalyCapture(nil), bundles...)
	capMu.Unlock()
	if flushed != 0 {
		t.Errorf("FlushPending emitted %d bundles past the capture limit", flushed)
	}
	if len(gotBundles) != 1 {
		t.Fatalf("chaos soak emitted %d anomaly bundles, want exactly 1 (CaptureLimit)", len(gotBundles))
	}
	if fleetSnap.Summary.Captures != 1 || fleetSnap.Summary.Suppressed < 1 {
		t.Errorf("fleet counters: captures=%d suppressed=%d, want 1 and >= 1",
			fleetSnap.Summary.Captures, fleetSnap.Summary.Suppressed)
	}
	bundle := gotBundles[0]
	if bundle.State < obs.Degraded {
		t.Errorf("anomaly bundle verdict = %v, want degraded or worse", bundle.State)
	}
	if i, ok := byToken[bundle.Token]; !ok || sessions[i].driver >= chaosDrivers {
		t.Errorf("anomaly bundle captured session %s, which is not in the chaos group", bundle.Token)
	}
	encoded := bundle.Capture.Encode()
	decoded, err := capture.Decode(encoded)
	if err != nil {
		t.Fatalf("anomaly bundle does not decode: %v", err)
	}
	if decoded.Meta.Session != bundle.Token.String() {
		t.Errorf("bundle meta session = %q, want %q", decoded.Meta.Session, bundle.Token)
	}
	if decoded.Meta.Verdict != bundle.State.String() {
		t.Errorf("bundle meta verdict = %q, want %q", decoded.Meta.Verdict, bundle.State)
	}
	if len(decoded.Records) == 0 {
		t.Error("anomaly bundle holds no traffic")
	}
	for i, rec := range decoded.Records {
		tok, _, _, ok := ParseHeader(rec.Payload)
		if !ok || tok != bundle.Token {
			t.Fatalf("bundle record %d does not demux to the captured session: token=%v ok=%v", i, tok, ok)
		}
	}
	// CI keeps the bundle as an artifact when the soak fails.
	if dir := os.Getenv("RETROLOCK_RELAY_CAPTURE_DIR"); dir != "" {
		path := filepath.Join(dir, fmt.Sprintf("anomaly-%s-%s.rkcp", bundle.Token, bundle.State))
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Errorf("writing anomaly bundle artifact: %v", err)
		} else {
			t.Logf("anomaly bundle written to %s (%d records, %d bytes)", path, len(decoded.Records), len(encoded))
		}
	}
	t.Logf("fleet: window=%v graded=%d flips=%d captures=%d suppressed=%d chaos-unhealthy(part-end)=%d/%d",
		gradeWindow, fleetSnap.Summary.Graded, fleetSnap.Summary.Flips, fleetSnap.Summary.Captures,
		fleetSnap.Summary.Suppressed, partEndCensus.chaosUnhealthy, chaosSessions)

	// 7. Burn-rate alerting and the incident timeline. The chaos storm must
	// fire the fleet-health alert exactly once, inside the chaos phases (the
	// fast window sees burst-loss damage, so firing lands in burst-loss or
	// partition), and the alert must clear before the heal phase ends. The
	// firing transition drives the one capture; the incident log correlates
	// the alert with the fleet census note and the captured session.
	alertMu.Lock()
	gotEvents := append([]history.Event(nil), alertEvents...)
	alertMu.Unlock()
	if len(gotEvents) != 2 || !gotEvents[0].Firing || gotEvents[1].Firing {
		t.Fatalf("alert transitions = %+v, want exactly [fire, clear]", gotEvents)
	}
	var bound time.Duration
	for _, ph := range phases[:1] { // warmup end
		bound += ph.dur
	}
	chaosStartNs := soakEpoch.Add(bound).UnixNano()
	chaosEndNs := soakEpoch.Add(bound + phases[1].dur + phases[2].dur).UnixNano()
	healEndNs := soakEpoch.Add(bound + phases[1].dur + phases[2].dur + phases[3].dur).UnixNano()
	if at := gotEvents[0].AtNs; at <= chaosStartNs || at > chaosEndNs {
		t.Errorf("alert fired at %v, want inside the chaos phases (%v, %v]",
			time.Duration(at-soakEpoch.UnixNano()), time.Duration(chaosStartNs-soakEpoch.UnixNano()),
			time.Duration(chaosEndNs-soakEpoch.UnixNano()))
	}
	if at := gotEvents[1].AtNs; at <= gotEvents[0].AtNs || at > healEndNs {
		t.Errorf("alert cleared at %v, want after firing and before heal end (%v)",
			time.Duration(at-soakEpoch.UnixNano()), time.Duration(healEndNs-soakEpoch.UnixNano()))
	}
	if n := extraCaptures.Load(); n != 0 {
		t.Errorf("CaptureBurning emitted %d bundles past the lifetime limit", n)
	}
	if n := svc.Engine.Firing(); n != 0 {
		t.Errorf("%d alerts still firing after the heal", n)
	}
	incidents, dropped := svc.Log.Snapshot()
	if dropped != 0 || len(incidents) != 1 {
		t.Fatalf("incident log holds %d incidents (%d dropped), want exactly 1", len(incidents), dropped)
	}
	inc := incidents[0]
	if inc.Alert != "fleet-session-health" || !inc.Resolved() {
		t.Errorf("incident = %+v, want a resolved fleet-session-health incident", inc)
	}
	if len(inc.Notes) == 0 {
		t.Error("incident carries no fleet-context note")
	}
	if len(inc.Captures) != 1 {
		t.Fatalf("incident references %d captures, want 1", len(inc.Captures))
	}
	if inc.Captures[0].Session != gotBundles[0].Token.String() {
		t.Errorf("incident capture ref %s does not match the emitted bundle %s",
			inc.Captures[0].Session, gotBundles[0].Token)
	}
	// The alert series are themselves retained: the firing gauge's history
	// must show both the firing and the quiet state.
	firingKey := obs.Key(history.MetricAlertFiring, obs.Labels{"alert": "fleet-session-health"})
	pts, _, ok := svc.Store.QueryScalar(firingKey, 0, v.Elapsed())
	if !ok {
		t.Fatalf("alert firing gauge %s not retained by the history store", firingKey)
	}
	var sawFiring, sawQuiet bool
	for _, p := range pts {
		if p.Value >= 1 {
			sawFiring = true
		} else {
			sawQuiet = true
		}
	}
	if !sawFiring || !sawQuiet {
		t.Errorf("retained firing-gauge history never showed both states: firing=%v quiet=%v over %d points",
			sawFiring, sawQuiet, len(pts))
	}
	var timeline strings.Builder
	history.RenderTimeline(&timeline, incidents, dropped)
	t.Logf("incident timeline:\n%s", timeline.String())
	// CI keeps the timeline next to the anomaly bundle when the soak fails:
	// the .rkcp is the repro evidence, this is the narrative around it.
	if dir := os.Getenv("RETROLOCK_RELAY_CAPTURE_DIR"); dir != "" {
		path := filepath.Join(dir, "incidents.txt")
		if err := os.WriteFile(path, []byte(timeline.String()), 0o644); err != nil {
			t.Errorf("writing incident timeline artifact: %v", err)
		}
	}

	var sent int64
	for _, s := range sessions {
		sent += s.sent[0].Load() + s.sent[1].Load()
	}
	t.Logf("soak: %d sessions, %d drivers, %d shards: sent=%d relayed-in=%d forwarded=%d queue-drops=%d virtual=%v",
		nSessions, nDrivers, *soakShards, sent, totalIn, totalFwd, totalDropQ, v.Elapsed())
	if totalFwd == 0 {
		t.Fatal("soak forwarded nothing")
	}
}
