package relay

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
	"retrolock/internal/vclock"
)

// Config sizes one daemon. The zero value selects defaults fit for a laptop;
// a production box raises Shards toward its core count and MaxSessions
// toward its memory budget.
type Config struct {
	// Shards is the number of shared-nothing event loops (default 8,
	// max MaxShards).
	Shards int
	// MaxSessions caps the sessions hosted per shard (default 4096);
	// admission fails once every shard is full.
	MaxSessions int
	// QueueLen bounds each shard's inbound queue in datagrams (default
	// 4096). Overflow drops with a count, like a kernel socket buffer.
	QueueLen int
	// WriteBatch is how many outbound datagrams a shard accumulates before
	// flushing mid-step (default 64, the mmsg batch size).
	WriteBatch int
	// PendingSlots / PendingBytes bound each session's pending ring —
	// datagrams parked for a site whose address is still unknown (defaults
	// 8 slots, 16 KiB).
	PendingSlots int
	PendingBytes int
	// SessionTTL expires sessions with no traffic (default 2 m); SweepEvery
	// is the sweep cadence (default 10 s). Zero TTL disables expiry.
	SessionTTL time.Duration
	SweepEvery time.Duration
	// PollInterval paces the virtual-mode reader/shard actors (default
	// 200 µs of virtual time).
	PollInterval time.Duration
	// TickEvery is the real-mode fallback tick for sweeps (default 50 ms).
	TickEvery time.Duration
	// Clock defaults to vclock.System; virtual-time runs inject their
	// vclock.Virtual (and start the daemon with StartVirtual).
	Clock vclock.Clock
	// Seed drives token salt generation (0 picks a fixed seed; tokens only
	// need uniqueness, unguessability is best-effort without crypto).
	Seed int64
	// Tap, when set, mirrors every datagram crossing the shards into the
	// bounded capture recorder (capture.DirRecv at ingest with the sender's
	// site, capture.DirSend at flush with the destination site; the relay
	// prefix is included, so a capture replays verbatim). Recording is
	// allocation-free in steady state and drops with a count once the
	// recorder's budgets fill, so the tap may stay attached under load —
	// BenchmarkRelayShardStepCaptured gates the cost.
	Tap *capture.Recorder

	// Stats enables the per-session stat blocks the fleet aggregator and
	// the /sessions ops surface read: forwarded/parked/dropped counts,
	// inter-arrival and relay-residence histograms, last-seen and bind
	// state, updated inline by the shard loops with no cross-shard locks
	// and no per-datagram allocation (BenchmarkRelayShardStepStats gates
	// the cost). Blocks are pooled across session churn.
	Stats bool

	// AutoCaptureRecords / AutoCaptureBytes bound each session's anomaly
	// flight-recorder ring (most recent accepted datagrams, drop-oldest).
	// Setting either enables the rings (the other takes its default: 64
	// records / 8 KiB); both zero disables them. Requires Stats.
	AutoCaptureRecords int
	AutoCaptureBytes   int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4096
	}
	if c.WriteBatch <= 0 {
		c.WriteBatch = 64
	}
	if c.PendingSlots <= 0 {
		c.PendingSlots = 8
	}
	if c.PendingBytes <= 0 {
		c.PendingBytes = 16 * 1024
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 2 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 10 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Microsecond
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = vclock.System
	}
	if c.Seed == 0 {
		c.Seed = 0x7e7a
	}
	if c.AutoCaptureRecords > 0 && c.AutoCaptureBytes <= 0 {
		c.AutoCaptureBytes = 8 * 1024
	}
	if c.AutoCaptureBytes > 0 && c.AutoCaptureRecords <= 0 {
		c.AutoCaptureRecords = 64
	}
	return c
}

// ErrFull is returned by Place when every shard is at MaxSessions.
var ErrFull = errors.New("relay: all shards at capacity")

// Placement is an admission decision: the session's token and the socket
// address its two sites must send their prefixed datagrams to.
type Placement struct {
	Token Token
	Addr  string
}

// Daemon multiplexes hosted sessions over its fronts.
type Daemon struct {
	cfg    Config
	fronts []Front
	shards []*Shard
	closed atomic.Bool
	wg     sync.WaitGroup

	mu   sync.Mutex
	rng  *rand.Rand
	seq  uint32
	next int // round-robin placement cursor

	// Daemon-level reject counters: datagrams a reader could not even
	// route to a shard.
	rejRoute obs.Counter
	rejRunt  obs.Counter

	// StepTime aggregates real-mode shard step durations (ns) across all
	// shards; nil outside real mode. It doubles as the daemon's health
	// signal: an overloaded relay shows up as step-time inflation long
	// before packets drop.
	StepTime *obs.Histogram
}

// NewDaemon builds a daemon over the given fronts (at least one). Shard i
// writes through front i mod len(fronts); readers route by token, so any
// datagram reaching any front still finds its shard.
func NewDaemon(cfg Config, fronts []Front) (*Daemon, error) {
	if len(fronts) == 0 {
		return nil, errors.New("relay: need at least one front")
	}
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:      cfg,
		fronts:   fronts,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		StepTime: &obs.Histogram{},
	}
	var pool *statsPool
	if cfg.Stats {
		pool = newStatsPool(cfg.AutoCaptureRecords, cfg.AutoCaptureBytes)
	}
	for i := 0; i < cfg.Shards; i++ {
		d.shards = append(d.shards, newShard(i, fronts[i%len(fronts)], cfg, pool))
	}
	return d, nil
}

// Shards exposes the shard table (read-only) for metrics and tests.
func (d *Daemon) Shards() []*Shard { return d.shards }

// Sessions returns the daemon-wide live session count.
func (d *Daemon) Sessions() int {
	n := 0
	for _, s := range d.shards {
		n += s.Active()
	}
	return n
}

// Place admits one session: it picks the least-loaded shard (round-robin
// tie-break), mints a token, registers the session on the shard's loop and
// returns where its clients must send. ErrFull when every shard is at cap.
func (d *Daemon) Place() (Placement, error) {
	d.mu.Lock()
	best := -1
	bestActive := 0
	for i := 0; i < len(d.shards); i++ {
		s := d.shards[(d.next+i)%len(d.shards)]
		if a := s.Active(); a < d.cfg.MaxSessions && (best < 0 || a < bestActive) {
			best = (d.next + i) % len(d.shards)
			bestActive = a
		}
	}
	if best < 0 {
		d.mu.Unlock()
		return Placement{}, ErrFull
	}
	d.next = (best + 1) % len(d.shards)
	d.seq++
	tok := MakeToken(best, d.seq, d.rng.Uint32())
	d.mu.Unlock()

	sh := d.shards[best]
	// Account immediately so concurrent Places see the slot taken before
	// the shard loop applies the registration.
	sh.active.Add(1)
	sh.control(ctlOp{kind: ctlRegister, token: tok, site: -1})
	return Placement{Token: tok, Addr: sh.Addr()}, nil
}

// Rebind moves one site's return path — the control-plane operation behind
// a lobby re-JOIN after a NAT rebind. The data path itself never rebinds.
func (d *Daemon) Rebind(tok Token, site int, addr Addr) {
	if sh, ok := d.shardOf(tok); ok {
		sh.control(ctlOp{kind: ctlRebind, token: tok, site: site, addr: addr})
	}
}

// CloseSession releases a hosted session.
func (d *Daemon) CloseSession(tok Token) {
	if sh, ok := d.shardOf(tok); ok {
		sh.control(ctlOp{kind: ctlClose, token: tok})
	}
}

func (d *Daemon) shardOf(tok Token) (*Shard, bool) {
	i := tok.ShardIndex()
	if i >= len(d.shards) {
		return nil, false
	}
	return d.shards[i], true
}

// Route disperses one received batch onto shard queues. Buffer ownership
// transfers to the shard on push (the caller's slot is refilled from the
// pool); on reject the buffer stays with the reader for reuse. Exported for
// custom front integrations and the packet-path benchmarks.
func (d *Daemon) Route(ms []Message, n int) {
	// One clock read per batch, not per datagram: the residence series
	// only needs batch granularity, and the virtual clock's Now takes a
	// mutex the packet path must not contend on per packet.
	var at int64
	if d.cfg.Stats && n > 0 {
		at = d.cfg.Clock.Now().UnixNano()
	}
	for i := 0; i < n; i++ {
		if len(ms[i].Buf) < HeaderLen {
			d.rejRunt.Inc()
			continue
		}
		tok, _, _, _ := ParseHeader(ms[i].Buf)
		idx := tok.ShardIndex()
		if idx >= len(d.shards) {
			d.rejRoute.Inc()
			continue
		}
		ms[i].At = at
		d.shards[idx].push(ms[i])
		ms[i].Buf = getBuf() // replace the buffer we just handed over
	}
}

// Start launches real-clock operation: one blocking batched reader per
// front plus one doorbell-driven loop per shard.
func (d *Daemon) Start() {
	for _, f := range d.fronts {
		f := f
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.readReal(f)
		}()
	}
	for _, s := range d.shards {
		s := s
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			s.runReal(&d.closed, d.StepTime)
		}()
	}
}

func (d *Daemon) readReal(f Front) {
	ms := newBatch(d.cfg.WriteBatch)
	for !d.closed.Load() {
		n, err := f.Recv(ms)
		if err != nil {
			if d.closed.Load() {
				return
			}
			// Transient (ICMP unreachable and friends): keep serving.
			continue
		}
		d.Route(ms, n)
	}
}

// StartVirtual launches the same topology as virtual-clock actors: readers
// and shards poll their queues and park on the clock, so a CI soak drives
// tens of thousands of sessions through real shard code in milliseconds of
// wall time. The caller's Scenario must use the same clock.
func (d *Daemon) StartVirtual(v *vclock.Virtual) {
	for _, f := range d.fronts {
		f := f
		d.wg.Add(1)
		v.Go(func() {
			defer d.wg.Done()
			ms := newBatch(d.cfg.WriteBatch)
			for !d.closed.Load() {
				n, err := f.Recv(ms)
				if err == nil && n > 0 {
					d.Route(ms, n)
				}
				v.Sleep(d.cfg.PollInterval)
			}
		})
	}
	for _, s := range d.shards {
		s := s
		d.wg.Add(1)
		v.Go(func() {
			defer d.wg.Done()
			// Phase-offset the shard loops half a poll interval from the
			// reader loops. Same-instant actors run in unspecified order
			// under the virtual clock, so a reader pushing into a shard
			// queue at the very instant the shard steps would make "this
			// step or the next" a scheduling race — harmless for the soak's
			// invariants, but a ±PollInterval wobble in delivery instants
			// that the QoE sweep's bit-identical-verdict contract cannot
			// afford. With the offset, pushes at t strictly precede the
			// step at t+PollInterval/2.
			v.Sleep(d.cfg.PollInterval / 2)
			s.runVirtual(&d.closed)
		})
	}
}

// StartPolled runs the StartVirtual topology on plain goroutines against the
// configured clock: readers and shards poll at PollInterval and park with
// Clock.Sleep. This is how a real-time run drives simnet fronts (whose Recv
// never blocks) over the wall clock — the path `experiment -series qoeload`
// uses to shape live generator traffic with netem profiles.
func (d *Daemon) StartPolled() {
	for _, f := range d.fronts {
		f := f
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			ms := newBatch(d.cfg.WriteBatch)
			for !d.closed.Load() {
				n, err := f.Recv(ms)
				if err == nil && n > 0 {
					d.Route(ms, n)
				}
				d.cfg.Clock.Sleep(d.cfg.PollInterval)
			}
		}()
	}
	for _, s := range d.shards {
		s := s
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			s.runVirtual(&d.closed)
		}()
	}
}

// newBatch allocates a reader batch backed by pooled buffers.
func newBatch(n int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = getBuf()
	}
	return ms
}

// Close stops every loop and socket. Safe to call twice.
func (d *Daemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	var first error
	for _, f := range d.fronts {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range d.shards {
		s.ring()
	}
	d.wg.Wait()
	return first
}

// String summarizes the daemon for logs.
func (d *Daemon) String() string {
	return fmt.Sprintf("relayd{%d shards, %d fronts, %d sessions}",
		len(d.shards), len(d.fronts), d.Sessions())
}
