// Package relay implements retrolock's multi-session hosting daemon: one
// process that forwards the datagram traffic of thousands of concurrent
// two-site lockstep sessions over a small set of UDP sockets.
//
// The paper assumes exactly one session per process, paired through a
// rendezvous lobby and talking peer-to-peer. That topology breaks down the
// moment either NAT refuses hole punching or a fleet has to host millions of
// users: the hosting layer must multiplex sessions, not processes. Following
// Khan & Chabridon's reusable-sync-component argument (the sync core stays
// per-session; the network front is shared infrastructure), relay moves only
// the *forwarding* concern into a daemon and leaves the lockstep protocol
// untouched — a relayed session runs the exact same internal/core state
// machine as a direct one.
//
// # Architecture
//
//		        sockets (N)                 shards (M)
//		  ┌──────────────────┐      ┌───────────────────────┐
//		  │ batched reader 0 │──┬──▶│ shard 0: sessions, Q  │──▶ batched writes
//		  │ batched reader 1 │──┼──▶│ shard 1: sessions, Q  │──▶
//		  │       ...        │──┼──▶│          ...          │
//		  └──────────────────┘  └──▶│ shard M-1             │──▶
//		                             └───────────────────────┘
//
//	  - Every relayed datagram carries a 9-byte prefix: a 64-bit session token
//	    plus the sender's site number. The token's low bits name the owning
//	    shard, so a reader routes a packet with two loads and a mask — no map,
//	    no lock shared across shards.
//	  - Each shard is a shared-nothing event loop: it owns its sessions, its
//	    bounded inbound queue, and its outbound batch. Readers push into a
//	    shard's queue under that shard's lock; nothing in the packet path takes
//	    a lock owned by another shard.
//	  - Socket I/O is batched: on Linux the UDP front drains and flushes with
//	    recvmmsg/sendmmsg (pooled message buffers, one syscall per batch);
//	    elsewhere it degrades to one datagram per syscall behind the same
//	    interface. A simnet front runs the identical shard loops in virtual
//	    time, which is how CI soaks ≥10k concurrent sessions under chaos
//	    phases in seconds.
//	  - Admission is the lobby's job (internal/lobby's Placer): a JOIN either
//	    yields a direct PEER reply (the paper's path) or a relayd placement —
//	    a token plus the shard's socket address. The daemon learns each
//	    site's transport address from its first valid datagram and afterwards
//	    refuses to rebind it from the data path (see Shard.ingest): a valid
//	    token from an unexpected source is counted and dropped, never allowed
//	    to steal an active session's return path. Rebinds are control-plane
//	    only (a re-JOIN through the lobby).
//
// # Memory budgets
//
// Every per-session allocation is bounded: a session holds two peer slots
// and one fixed-capacity pending ring (datagrams addressed to a site whose
// address is not yet known), byte-budgeted like the PR 1 input rings. Shard
// queues are bounded and drop-with-count on overflow. The steady-state
// forwarding path reuses pooled buffers and allocates nothing.
package relay

import (
	"encoding/binary"
	"fmt"
)

// MaxDatagram is the largest relayed datagram, prefix included. It must
// admit the sync protocol's largest message — a late-join savestate chunk
// (core.SnapChunkPayload, 8 KiB) plus headers — with room to spare.
const MaxDatagram = 9216

// HeaderLen is the relay prefix every datagram carries: an 8-byte big-endian
// session token followed by one site byte (0 or 1).
const HeaderLen = 9

// MaxPayload is the largest payload a client may relay.
const MaxPayload = MaxDatagram - HeaderLen

// shardBits is how many low token bits name the owning shard; MaxShards
// follows from it. 10 bits = 1024 shards is far beyond one process's core
// count while leaving 54 bits of entropy + sequence in every token.
const shardBits = 10

// MaxShards is the largest shard count a daemon may be configured with.
const MaxShards = 1 << shardBits

// Token identifies one hosted session. The low shardBits bits name the
// owning shard (so demux is a mask, not a map); the rest carry a per-shard
// sequence and random salt, so tokens are unique for the daemon's lifetime
// and not guessable from each other.
type Token uint64

// MakeToken assembles a token for shard idx from a sequence number and a
// random salt.
func MakeToken(shard int, seq uint32, salt uint32) Token {
	return Token(uint64(salt)<<32 | uint64(seq&0x3FFFFF)<<shardBits | uint64(shard)&(MaxShards-1))
}

// ShardIndex returns the shard the token's low bits name. The result is
// always in [0, MaxShards); callers must still bounds-check it against the
// configured shard count.
func (t Token) ShardIndex() int { return int(t & (MaxShards - 1)) }

// String renders the token the way the lobby protocol carries it.
func (t Token) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseToken parses the lobby wire form (16 hex digits).
func ParseToken(s string) (Token, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("relay: token %q: want 16 hex digits", s)
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("relay: token %q: bad hex digit %q", s, c)
		}
		v = v<<4 | d
	}
	return Token(v), nil
}

// PutHeader writes the relay prefix into buf, which must hold at least
// HeaderLen bytes, and returns HeaderLen.
func PutHeader(buf []byte, t Token, site int) int {
	binary.BigEndian.PutUint64(buf, uint64(t))
	buf[8] = byte(site)
	return HeaderLen
}

// ParseHeader splits a relayed datagram into its prefix and payload. ok is
// false for runts (shorter than HeaderLen).
func ParseHeader(p []byte) (t Token, site int, payload []byte, ok bool) {
	if len(p) < HeaderLen {
		return 0, 0, nil, false
	}
	return Token(binary.BigEndian.Uint64(p)), int(p[8]), p[HeaderLen:], true
}
