package relay

import (
	"net/netip"
	"sync"
)

// Addr is a transport address as one of the daemon's fronts sees it: a real
// UDP peer (AP set) or a simnet endpoint name (Sim set). The zero Addr means
// "unknown". Addr is comparable, which is all the relay needs — it never
// interprets an address, only matches and echoes it.
type Addr struct {
	AP  netip.AddrPort
	Sim string
}

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.Sim == "" && !a.AP.IsValid() }

// String renders the address for logs and the lobby control plane.
func (a Addr) String() string {
	if a.Sim != "" {
		return a.Sim
	}
	if a.AP.IsValid() {
		return a.AP.String()
	}
	return "<none>"
}

// Message is one datagram moving through a front: a payload slice (backed by
// a pooled MaxDatagram buffer) plus the peer address — the source on receive,
// the destination on send.
type Message struct {
	Buf  []byte
	Addr Addr
	// At is the receive instant in Unix ns, stamped once per batch by
	// Route when per-session stats are enabled (0 otherwise). The shard
	// reads it at ingest to measure relay residence — how long the
	// datagram sat in the inbound queue.
	At int64
}

// Front is one socket of the daemon, real or simulated. Implementations are
// safe for one concurrent reader plus any number of senders.
type Front interface {
	// Recv fills ms with pending datagrams and returns how many it wrote.
	// Each ms[i].Buf must arrive cap ≥ MaxDatagram; Recv reslices it to the
	// received length. Real fronts block until at least one datagram (or an
	// error); the simnet front never blocks — its callers poll under a
	// virtual clock.
	Recv(ms []Message) (int, error)

	// Send transmits ms[0:len(ms)] and returns how many were handed to the
	// network. Sends are best-effort: datagrams may be dropped on the floor
	// exactly like UDP.
	Send(ms []Message) (int, error)

	// LocalAddr is the address clients send to, in the form the lobby
	// advertises (host:port for UDP, the endpoint name for simnet).
	LocalAddr() string

	// Close releases the socket and unblocks any Recv.
	Close() error
}

// bufPool recycles MaxDatagram-sized payload buffers across readers and
// shards, keeping the steady-state forwarding path allocation-free. It
// stores fixed-size array pointers rather than *[]byte so that putBuf can
// recover the pointer from any reslice without boxing a fresh slice header
// per round trip.
var bufPool = sync.Pool{
	New: func() any {
		return new([MaxDatagram]byte)
	},
}

// getBuf returns a full-capacity pooled buffer.
func getBuf() []byte {
	return bufPool.Get().(*[MaxDatagram]byte)[:]
}

// putBuf returns a buffer obtained from getBuf. Reslicing is fine; the pool
// restores full capacity on the way out.
func putBuf(b []byte) {
	if cap(b) < MaxDatagram {
		return // foreign buffer (tests); let it go
	}
	bufPool.Put((*[MaxDatagram]byte)(b[:MaxDatagram]))
}
