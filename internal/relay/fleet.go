package relay

import (
	"container/heap"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
	"retrolock/internal/vclock"
)

// The fleet aggregator: the daemon-level consumer of the shards' published
// stat-block tables. On a ticker it walks every shard's table (a lock-free
// atomic snapshot — the packet path is never touched), grades each
// session's windowed traffic through its own obs.Health engine, maintains a
// bounded top-K-worst view for the ops surface, and — when a session flips
// to degraded or infeasible — snapshots its anomaly ring into a
// self-contained .rkcp repro bundle, rate-limited and counted.
//
// Ownership contract: shard loops write stat blocks; the fleet only reads
// (atomics and lock-free histograms). The one shared mutable surface is the
// per-session ring, which has its own mutex. Stat blocks are pooled — the
// fleet detects recycled blocks by generation mismatch and simply skips
// them until the next table publish.

// FleetConfig sizes the aggregator. The zero value selects defaults.
type FleetConfig struct {
	// Window is the grading cadence (default 1 s). Each tick closes one
	// obs.Health window per session that saw traffic.
	Window time.Duration
	// TopK bounds the worst-sessions view (default 16).
	TopK int
	// Health sets the per-session grading thresholds. The zero value uses
	// the obs defaults: FrameTarget grades the payload inter-arrival gap
	// (16.67 ms — one datagram per frame per site at 60 FPS), RTT grades
	// relay residence, retransmits-per-frame grades pending-ring drops
	// per ingested datagram.
	Health obs.HealthConfig
	// StallAfter marks a session infeasible when no datagram has been
	// accepted for this long (default 2×Window). Without it a silent
	// session produces no samples, every signal abstains, and hysteresis
	// would recover a dead session to healthy.
	StallAfter time.Duration
	// CaptureLimit caps anomaly bundles over the fleet's lifetime
	// (default 16); CaptureEvery is the minimum spacing between bundles
	// (default 10 s). A flip that loses the rate race sets a pending
	// mark and retries next tick (FlushPending drains the marks at
	// shutdown). Each session is captured at most once.
	CaptureLimit int
	CaptureEvery time.Duration
	// OnCapture receives each anomaly bundle, called from the tick
	// goroutine (relayd writes the .rkcp file here). Nil disables
	// snapshotting but still counts flips.
	OnCapture func(AnomalyCapture)
	// DisableFlipCapture stops per-session verdict flips from triggering
	// captures; CaptureBurning (driven by a burn-rate alert firing) becomes
	// the only capture trigger. Flips are still counted. Use when an alert
	// engine owns the capture decision, so a fleet-wide incident yields one
	// representative bundle instead of a bundle per flipped session.
	DisableFlipCapture bool
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.TopK <= 0 {
		c.TopK = 16
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 2 * c.Window
	}
	if c.CaptureLimit <= 0 {
		c.CaptureLimit = 16
	}
	if c.CaptureEvery <= 0 {
		c.CaptureEvery = 10 * time.Second
	}
	return c
}

// AnomalyCapture is one degraded/infeasible session's repro bundle.
type AnomalyCapture struct {
	Token   Token
	State   obs.HealthState
	Capture *capture.Capture
}

// fleetSession is the aggregator's per-session grading state.
type fleetSession struct {
	token Token
	shard int
	stats *sessStats
	gen   uint32

	health  *obs.Health
	verdict obs.HealthState // effective verdict (health ∨ stall)
	stalled bool

	lastTick uint64 // mark for departure sweep
	lastIn   int64  // inTotal at the last evaluation

	flips       int64 // transitions into degraded-or-worse
	captured    bool
	wantCapture bool // capture deferred by the rate limit
}

// FleetSummary is one tick's verdict census plus the fleet's lifetime
// counters.
type FleetSummary struct {
	Tracked    int   `json:"tracked"`
	Healthy    int   `json:"healthy"`
	Degraded   int   `json:"degraded"`
	Infeasible int   `json:"infeasible"`
	Stalled    int   `json:"stalled"`
	Graded     int64 `json:"graded_total"`
	Flips      int64 `json:"flips_total"`
	Captures   int64 `json:"captures_total"`
	Suppressed int64 `json:"captures_suppressed_total"`
}

// TopEntry is one row of the top-K-worst table.
type TopEntry struct {
	Token       string          `json:"token"`
	Shard       int             `json:"shard"`
	State       obs.HealthState `json:"-"`
	Verdict     string          `json:"verdict"`
	Stalled     bool            `json:"stalled,omitempty"`
	SinceSeenNs int64           `json:"since_seen_ns"`
	GapMeanNs   int64           `json:"gap_mean_ns"`
	ResidP50Ns  int64           `json:"residence_p50_ns"`
	In          int64           `json:"in"`
	Forwarded   int64           `json:"forwarded"`
	Parked      int64           `json:"parked"`
	Dropped     int64           `json:"dropped"`
	Bound       string          `json:"bound"` // "AB", "A-", "-B", "--"
	Flips       int64           `json:"flips"`
}

// FleetSnapshot is the ops surface's view of the last completed tick.
type FleetSnapshot struct {
	AtNs    int64        `json:"at_unix_ns"`
	Window  string       `json:"window"`
	Summary FleetSummary `json:"summary"`
	Top     []TopEntry   `json:"top"`
}

// Fleet is the aggregator. Build with NewFleet, drive with Start (real
// clock), StartVirtual (soaks) or explicit Tick calls (tests); read with
// Snapshot / SessionDetail / the /sessions handlers.
type Fleet struct {
	d      *Daemon
	cfg    FleetConfig
	clock  vclock.Clock
	closed atomic.Bool
	wg     sync.WaitGroup

	mu            sync.Mutex
	tick          uint64
	sessions      map[Token]*fleetSession
	graded        int64
	flips         int64
	captures      int64
	suppressed    int64
	lastCaptureNs int64

	snap atomic.Pointer[FleetSnapshot]
}

// NewFleet builds an aggregator over d. The daemon must have been built
// with Config.Stats — without stat blocks there is nothing to grade.
func NewFleet(d *Daemon, cfg FleetConfig) (*Fleet, error) {
	if !d.cfg.Stats {
		return nil, errors.New("relay: fleet aggregation requires Config.Stats")
	}
	f := &Fleet{
		d:        d,
		cfg:      cfg.withDefaults(),
		clock:    d.cfg.Clock,
		sessions: make(map[Token]*fleetSession),
	}
	f.snap.Store(&FleetSnapshot{Window: f.cfg.Window.String()})
	return f, nil
}

// newFleetSession binds a grading engine to a session's stat block. The
// health sources map relay observables onto the engine's signals: payload
// inter-arrival gap as frame time, relay residence as RTT, pending-ring
// drops per ingested datagram as the retransmit rate.
func (f *Fleet) newFleetSession(ref statRef, shard int) *fleetSession {
	st := ref.stats
	return &fleetSession{
		token: ref.token,
		shard: shard,
		stats: st,
		gen:   ref.gen,
		health: obs.NewHealth(f.cfg.Health, obs.HealthSources{
			FrameTime:   &st.gap,
			RTT:         &st.residence,
			Retransmits: st.dropped.Load,
			Frames:      st.inTotal,
		}),
	}
}

// Tick closes one grading window: walk every shard's published table, grade
// each live session, rebuild the top-K view, fire anomaly captures, and
// sweep sessions that departed. Call from one goroutine (the ticker) — or
// directly from tests, which makes grading fully deterministic.
func (f *Fleet) Tick(now time.Time) FleetSummary {
	nowNs := now.UnixNano()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tick++
	var sum FleetSummary
	top := topKHeap{k: f.cfg.TopK}

	for _, sh := range f.d.Shards() {
		for _, ref := range sh.sessionTable() {
			if !ref.valid() {
				// The block was recycled between publish and read: the
				// session is gone; the sweep below collects its state.
				continue
			}
			fs := f.sessions[ref.token]
			if fs == nil {
				fs = f.newFleetSession(ref, sh.idx)
				f.sessions[ref.token] = fs
			}
			fs.lastTick = f.tick

			// Grade only when the window saw traffic; with zero new
			// samples every signal abstains and the verdict would drift
			// back to healthy — silence is the stall signal's job.
			if in := ref.stats.inTotal(); in > fs.lastIn {
				fs.lastIn = in
				fs.health.Evaluate(now)
				f.graded++
			}
			v := fs.health.State()
			lastSeen := ref.stats.lastSeenNs.Load()
			fs.stalled = lastSeen > 0 && nowNs-lastSeen > int64(f.cfg.StallAfter)
			if fs.stalled {
				v = obs.Infeasible
			}
			prev := fs.verdict
			fs.verdict = v
			switch {
			case v > prev && v >= obs.Degraded:
				fs.flips++
				f.flips++
				if !f.cfg.DisableFlipCapture {
					f.maybeCapture(fs, ref, now, v)
				}
			case fs.wantCapture && v >= obs.Degraded:
				f.maybeCapture(fs, ref, now, v) // rate-limit retry
			case v == obs.Healthy:
				fs.wantCapture = false
			}

			sum.Tracked++
			switch v {
			case obs.Healthy:
				sum.Healthy++
			case obs.Degraded:
				sum.Degraded++
			case obs.Infeasible:
				sum.Infeasible++
			}
			if fs.stalled {
				sum.Stalled++
			}
			if v > obs.Healthy {
				top.offer(f.topEntry(fs, ref, nowNs))
			}
		}
	}

	for tok, fs := range f.sessions {
		if fs.lastTick != f.tick {
			delete(f.sessions, tok) // departed (closed or expired)
		}
	}

	sum.Graded, sum.Flips = f.graded, f.flips
	sum.Captures, sum.Suppressed = f.captures, f.suppressed
	f.snap.Store(&FleetSnapshot{
		AtNs:    nowNs,
		Window:  f.cfg.Window.String(),
		Summary: sum,
		Top:     top.sorted(),
	})
	return sum
}

func (f *Fleet) topEntry(fs *fleetSession, ref statRef, nowNs int64) TopEntry {
	st := ref.stats
	sig := fs.health.Signals()
	mask := st.boundMask.Load()
	bound := [2]byte{'-', '-'}
	if mask&1 != 0 {
		bound[0] = 'A'
	}
	if mask&2 != 0 {
		bound[1] = 'B'
	}
	return TopEntry{
		Token:       fs.token.String(),
		Shard:       fs.shard,
		State:       fs.verdict,
		Verdict:     fs.verdict.String(),
		Stalled:     fs.stalled,
		SinceSeenNs: nowNs - st.lastSeenNs.Load(),
		GapMeanNs:   sig.FrameMean,
		ResidP50Ns:  sig.RTTp50,
		In:          st.inTotal(),
		Forwarded:   st.fwd.Load(),
		Parked:      st.parked.Load(),
		Dropped:     st.dropped.Load(),
		Bound:       string(bound[:]),
		Flips:       fs.flips,
	}
}

// maybeCapture snapshots the session's anomaly ring into a bundle, subject
// to the once-per-session, lifetime-limit and rate-limit guards. Caller
// holds f.mu.
func (f *Fleet) maybeCapture(fs *fleetSession, ref statRef, now time.Time, v obs.HealthState) {
	if fs.captured || ref.stats.ring == nil || f.cfg.OnCapture == nil {
		return
	}
	if f.captures >= int64(f.cfg.CaptureLimit) {
		if !fs.wantCapture {
			f.suppressed++
		}
		fs.wantCapture = false // the limit never lifts; stop retrying
		return
	}
	if f.lastCaptureNs != 0 && now.UnixNano()-f.lastCaptureNs < int64(f.cfg.CaptureEvery) {
		if !fs.wantCapture {
			f.suppressed++
			fs.wantCapture = true
		}
		return
	}
	f.captureLocked(fs, ref, now, v)
}

// captureLocked emits the bundle unconditionally (guards already applied).
func (f *Fleet) captureLocked(fs *fleetSession, ref statRef, now time.Time, v obs.HealthState) {
	c := ref.stats.ring.Snapshot(capture.Meta{
		Session: ref.token.String(),
		Verdict: v.String(),
		Notes:   "relayd anomaly capture",
	})
	fs.captured, fs.wantCapture = true, false
	f.captures++
	f.lastCaptureNs = now.UnixNano()
	f.cfg.OnCapture(AnomalyCapture{Token: ref.token, State: v, Capture: c})
}

// FlushPending emits bundles for sessions whose capture was deferred by the
// rate limit — the shutdown path, so an operator killing a degraded relayd
// still gets the evidence. The lifetime limit still applies.
func (f *Fleet) FlushPending(now time.Time) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, fs := range f.sessions {
		if !fs.wantCapture || fs.captured {
			continue
		}
		if f.captures >= int64(f.cfg.CaptureLimit) {
			break
		}
		ref := statRef{token: fs.token, stats: fs.stats, gen: fs.gen}
		if !ref.valid() {
			continue
		}
		f.captureLocked(fs, ref, now, fs.verdict)
		n++
	}
	return n
}

// CaptureBurning is the alert-driven capture trigger: it snapshots the single
// worst currently-unhealthy, not-yet-captured session into a bundle, subject
// to the same lifetime and rate-limit guards as flip captures. relayd wires
// it to the burn-rate engine's fire transition, so a fleet-wide incident
// yields one representative .rkcp instead of one per degraded session.
//
// The victim choice is deterministic regardless of map iteration order:
// worst verdict first, then lowest token. Returns the captured session's
// token, or ok=false when nothing qualified (no unhealthy sessions, all
// captured already, guards tripped, or no OnCapture sink).
func (f *Fleet) CaptureBurning(now time.Time) (tok Token, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.OnCapture == nil {
		return 0, false
	}
	var victim *fleetSession
	for _, fs := range f.sessions {
		if fs.captured || fs.verdict < obs.Degraded || fs.stats.ring == nil {
			continue
		}
		if victim == nil || fs.verdict > victim.verdict ||
			(fs.verdict == victim.verdict && fs.token < victim.token) {
			victim = fs
		}
	}
	if victim == nil {
		return 0, false
	}
	ref := statRef{token: victim.token, stats: victim.stats, gen: victim.gen}
	if !ref.valid() {
		return 0, false
	}
	if f.captures >= int64(f.cfg.CaptureLimit) {
		f.suppressed++
		return 0, false
	}
	if f.lastCaptureNs != 0 && now.UnixNano()-f.lastCaptureNs < int64(f.cfg.CaptureEvery) {
		f.suppressed++
		return 0, false
	}
	f.captureLocked(victim, ref, now, victim.verdict)
	return victim.token, true
}

// Snapshot returns the last completed tick's view (never nil).
func (f *Fleet) Snapshot() *FleetSnapshot { return f.snap.Load() }

// Verdict returns a session's current effective verdict and whether the
// fleet tracks it.
func (f *Fleet) Verdict(tok Token) (obs.HealthState, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs, ok := f.sessions[tok]
	if !ok {
		return obs.Healthy, false
	}
	return fs.verdict, true
}

// Tracked returns how many sessions the fleet currently grades.
func (f *Fleet) Tracked() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sessions)
}

// Start launches the real-clock tick loop.
func (f *Fleet) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.cfg.Window)
		defer t.Stop()
		for !f.closed.Load() && !f.d.closed.Load() {
			now := <-t.C
			f.Tick(now)
		}
	}()
}

// StartVirtual launches the tick loop as a virtual-clock actor, phase-
// aligned with the daemon's shard actors (same clock).
func (f *Fleet) StartVirtual(v *vclock.Virtual) {
	f.wg.Add(1)
	v.Go(func() {
		defer f.wg.Done()
		for !f.closed.Load() && !f.d.closed.Load() {
			v.Sleep(f.cfg.Window)
			f.Tick(f.clock.Now())
		}
	})
}

// Close stops the tick loop. It does not flush pending captures — call
// FlushPending first when the evidence matters.
func (f *Fleet) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.wg.Wait()
}

// topKHeap keeps the K worst entries seen this tick: a min-heap ordered by
// badness, so the root is the least-bad kept entry and is evicted when a
// worse one arrives. Deterministic: ties break on token.
type topKHeap struct {
	k  int
	es []TopEntry
}

// worse reports whether a outranks b on the ops table.
func worse(a, b *TopEntry) bool {
	if a.State != b.State {
		return a.State > b.State
	}
	if a.SinceSeenNs != b.SinceSeenNs {
		return a.SinceSeenNs > b.SinceSeenNs // staler is worse
	}
	if a.GapMeanNs != b.GapMeanNs {
		return a.GapMeanNs > b.GapMeanNs
	}
	return a.Token < b.Token
}

func (h *topKHeap) Len() int           { return len(h.es) }
func (h *topKHeap) Less(i, j int) bool { return worse(&h.es[j], &h.es[i]) } // min-heap by badness
func (h *topKHeap) Swap(i, j int)      { h.es[i], h.es[j] = h.es[j], h.es[i] }
func (h *topKHeap) Push(x any)         { h.es = append(h.es, x.(TopEntry)) }
func (h *topKHeap) Pop() any           { e := h.es[len(h.es)-1]; h.es = h.es[:len(h.es)-1]; return e }
func (h *topKHeap) offer(e TopEntry) {
	if len(h.es) < h.k {
		heap.Push(h, e)
		return
	}
	if worse(&e, &h.es[0]) {
		h.es[0] = e
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into worst-first order.
func (h *topKHeap) sorted() []TopEntry {
	out := make([]TopEntry, len(h.es))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(TopEntry)
	}
	// Heap pop order is least-bad first; reversed above, out is worst-first.
	return out
}
