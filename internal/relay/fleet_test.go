package relay

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"retrolock/internal/obs"
)

// stepClock is a hand-cranked vclock.Clock for single-goroutine fleet
// tests: Tick/Step instants are exactly what the test sets, so grading
// windows are fully deterministic.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Sleep(d time.Duration) { c.advance(d) }

func (c *stepClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fleetHarness drives an unstarted stats-enabled daemon plus a fleet by
// hand: every datagram, shard step and grading tick happens at an explicit
// virtual instant on the test goroutine.
type fleetHarness struct {
	t   *testing.T
	clk *stepClock
	d   *Daemon
	f   *Fleet
	ms  []Message
}

func newFleetHarness(t *testing.T, cfg Config, fcfg FleetConfig) *fleetHarness {
	t.Helper()
	clk := &stepClock{t: time.Unix(1_000_000, 0)}
	cfg.Clock = clk
	cfg.Stats = true
	if cfg.AutoCaptureRecords == 0 && cfg.AutoCaptureBytes == 0 {
		cfg.AutoCaptureRecords = 32
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	d, err := NewDaemon(cfg, []Front{nullTestFront{}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(d, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &fleetHarness{t: t, clk: clk, d: d, f: f, ms: make([]Message, 1)}
	h.ms[0].Buf = getBuf()
	t.Cleanup(func() { d.Close() })
	return h
}

// nullTestFront discards sends; the harness never starts the daemon's
// loops, so Recv is never called.
type nullTestFront struct{}

func (nullTestFront) Recv(ms []Message) (int, error) { select {} }
func (nullTestFront) Send(ms []Message) (int, error) { return len(ms), nil }
func (nullTestFront) LocalAddr() string              { return "null:0" }
func (nullTestFront) Close() error                   { return nil }

func siteAddr(tok Token, site int) Addr {
	return Addr{Sim: fmt.Sprintf("%s-%d", tok, site)}
}

// place admits one session and binds both sites with header-only datagrams.
func (h *fleetHarness) place() Token {
	h.t.Helper()
	p, err := h.d.Place()
	if err != nil {
		h.t.Fatal(err)
	}
	h.send(p.Token, 0, 0)
	h.send(p.Token, 1, 0)
	h.step()
	return p.Token
}

// send routes one datagram (payload bytes of n) from the session's home
// address for site.
func (h *fleetHarness) send(tok Token, site, n int) {
	buf := h.ms[0].Buf[:MaxDatagram]
	hl := PutHeader(buf, tok, site)
	for i := 0; i < n; i++ {
		buf[hl+i] = byte(i)
	}
	h.ms[0] = Message{Buf: buf[:hl+n], Addr: siteAddr(tok, site)}
	h.d.Route(h.ms, 1)
}

// step runs every shard loop body once.
func (h *fleetHarness) step() {
	for _, sh := range h.d.Shards() {
		sh.Step()
	}
}

// drive sends both sites' payloads at the given cadence until d has
// elapsed, stepping the shards after every instant.
func (h *fleetHarness) drive(d, cadence time.Duration, toks ...Token) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += cadence {
		h.clk.advance(cadence)
		for _, tok := range toks {
			h.send(tok, 0, 4)
			h.send(tok, 1, 4)
		}
		h.step()
	}
}

// TestFleetGradesDegradedSession: a session pacing at the frame target
// stays healthy; a session pacing inside the degraded band flips, lands in
// the top-K table, and its anomaly ring is captured exactly once — with
// every bundle record decoding back to the session's token.
func TestFleetGradesDegradedSession(t *testing.T) {
	var caps []AnomalyCapture
	h := newFleetHarness(t, Config{}, FleetConfig{
		Window:    250 * time.Millisecond,
		TopK:      4,
		OnCapture: func(ac AnomalyCapture) { caps = append(caps, ac) },
	})
	good, bad := h.place(), h.place()

	// Defaults grade the gap against FrameTarget 16.67 ms (+5 ms degraded,
	// +11 ms infeasible): an 8 ms gap is healthy, 24 ms sits inside the
	// degraded band (21.67–27.67 ms).
	for w := 0; w < 4; w++ {
		for i := 0; i < 30; i++ { // 30 × 8 ms = one 240 ms window
			h.clk.advance(8 * time.Millisecond)
			h.send(good, 0, 4)
			h.send(good, 1, 4)
			if i%3 == 0 { // 24 ms cadence
				h.send(bad, 0, 4)
				h.send(bad, 1, 4)
			}
			h.step()
		}
		h.f.Tick(h.clk.Now())
	}

	if v, ok := h.f.Verdict(good); !ok || v != obs.Healthy {
		t.Fatalf("good session verdict = %v (tracked %v), want healthy", v, ok)
	}
	if v, ok := h.f.Verdict(bad); !ok || v != obs.Degraded {
		t.Fatalf("bad session verdict = %v (tracked %v), want degraded", v, ok)
	}
	snap := h.f.Snapshot()
	if snap.Summary.Tracked != 2 || snap.Summary.Healthy != 1 || snap.Summary.Degraded != 1 {
		t.Fatalf("summary = %+v, want 2 tracked / 1 healthy / 1 degraded", snap.Summary)
	}
	if len(snap.Top) != 1 || snap.Top[0].Token != bad.String() {
		t.Fatalf("top-K = %+v, want exactly the degraded session", snap.Top)
	}
	if len(caps) != 1 {
		t.Fatalf("got %d anomaly captures, want 1", len(caps))
	}
	if caps[0].Token != bad || caps[0].State != obs.Degraded {
		t.Fatalf("capture = token %s state %v, want %s degraded", caps[0].Token, caps[0].State, bad)
	}
	c := caps[0].Capture
	if c.Meta.Session != bad.String() || c.Meta.Verdict != "degraded" {
		t.Fatalf("bundle meta = %+v, want session %s verdict degraded", c.Meta, bad)
	}
	if len(c.Records) == 0 {
		t.Fatal("bundle holds no traffic")
	}
	for i, rec := range c.Records {
		tok, _, _, ok := ParseHeader(rec.Payload)
		if !ok || tok != bad {
			t.Fatalf("bundle record %d does not decode to session %s", i, bad)
		}
	}
}

// TestFleetStallAndRecovery: silence past StallAfter grades infeasible even
// though every histogram signal abstains; resumed clean traffic recovers
// through hysteresis.
func TestFleetStallAndRecovery(t *testing.T) {
	h := newFleetHarness(t, Config{}, FleetConfig{
		Window:     250 * time.Millisecond,
		StallAfter: 500 * time.Millisecond,
	})
	tok := h.place()
	h.drive(time.Second, 16*time.Millisecond, tok)
	h.f.Tick(h.clk.Now())
	if v, _ := h.f.Verdict(tok); v != obs.Healthy {
		t.Fatalf("verdict after clean traffic = %v, want healthy", v)
	}

	// Silence: advance a full second with no datagrams, ticking each window.
	for i := 0; i < 4; i++ {
		h.clk.advance(250 * time.Millisecond)
		h.step()
		h.f.Tick(h.clk.Now())
	}
	if v, _ := h.f.Verdict(tok); v != obs.Infeasible {
		t.Fatalf("verdict after 1 s of silence = %v, want infeasible (stall)", v)
	}
	if snap := h.f.Snapshot(); snap.Summary.Stalled != 1 {
		t.Fatalf("summary = %+v, want 1 stalled", snap.Summary)
	}

	// Recovery: clean cadence again. The first window's gap histogram
	// contains the giant stall gap, so recovery takes RecoverAfter clean
	// windows after that.
	for w := 0; w < 6; w++ {
		h.drive(250*time.Millisecond, 16*time.Millisecond, tok)
		h.f.Tick(h.clk.Now())
	}
	if v, _ := h.f.Verdict(tok); v != obs.Healthy {
		t.Fatalf("verdict after recovery = %v, want healthy", v)
	}
}

// TestFleetChurn: sessions leaving and rejoining mid-window must not wedge
// the aggregator or leak grading state — the fleet's map tracks exactly the
// live sessions, pooled stat blocks recycle across placements, and a
// departed session's token 404s on the detail surface.
func TestFleetChurn(t *testing.T) {
	h := newFleetHarness(t, Config{Shards: 2}, FleetConfig{Window: 250 * time.Millisecond})
	const n = 32
	toks := make([]Token, n)
	for i := range toks {
		toks[i] = h.place()
	}
	h.drive(500*time.Millisecond, 20*time.Millisecond, toks...)
	h.f.Tick(h.clk.Now())
	if got := h.f.Tracked(); got != n {
		t.Fatalf("tracked = %d, want %d", got, n)
	}

	// Close half mid-window, then churn: every closed slot is re-placed.
	for i := 0; i < n/2; i++ {
		h.d.CloseSession(toks[i])
	}
	h.step() // applies the closes and republishes tables
	if got := h.d.Sessions(); got != n/2 {
		t.Fatalf("daemon sessions = %d after close, want %d", got, n/2)
	}
	h.f.Tick(h.clk.Now())
	if got := h.f.Tracked(); got != n/2 {
		t.Fatalf("tracked = %d after churn, want %d (leaked grading state)", got, n/2)
	}
	if _, ok := h.f.Verdict(toks[0]); ok {
		t.Fatal("closed session still tracked")
	}

	rejoined := make([]Token, n/2)
	for i := range rejoined {
		rejoined[i] = h.place() // pulls recycled stat blocks from the pool
	}
	h.drive(500*time.Millisecond, 20*time.Millisecond, append(rejoined, toks[n/2:]...)...)
	h.f.Tick(h.clk.Now())
	if got := h.f.Tracked(); got != n {
		t.Fatalf("tracked = %d after rejoin, want %d", got, n)
	}
	// A recycled block must not leak the previous tenant's counters.
	det, ok := h.f.Detail(rejoined[0])
	if !ok {
		t.Fatal("rejoined session not tracked")
	}
	if want := int64(25); det.In[0] > want+2 || det.In[0] < want-2 {
		t.Fatalf("rejoined session in[0] = %d, want ≈%d (stale pooled counters?)", det.In[0], want)
	}
	// Per-shard published tables mirror Active exactly.
	for _, sh := range h.d.Shards() {
		if got, want := len(sh.sessionTable()), sh.Active(); got != want {
			t.Fatalf("shard %d table %d entries, active %d", sh.idx, got, want)
		}
	}
	snap := h.f.Snapshot()
	if snap.Summary.Tracked != n || snap.Summary.Healthy != n {
		t.Fatalf("summary after churn = %+v, want %d tracked all healthy", snap.Summary, n)
	}
}

// TestFleetCaptureRateLimit: a second flip inside CaptureEvery defers its
// bundle (counted suppressed) and FlushPending emits it at shutdown.
func TestFleetCaptureRateLimit(t *testing.T) {
	var caps []AnomalyCapture
	h := newFleetHarness(t, Config{}, FleetConfig{
		Window:       250 * time.Millisecond,
		CaptureEvery: time.Hour,
		CaptureLimit: 8,
		OnCapture:    func(ac AnomalyCapture) { caps = append(caps, ac) },
	})
	a, b := h.place(), h.place()
	// Both sessions pace in the degraded band; both flip on the same tick,
	// only one capture fits the rate limit.
	for w := 0; w < 3; w++ {
		h.drive(250*time.Millisecond, 25*time.Millisecond, a, b)
		h.f.Tick(h.clk.Now())
	}
	if len(caps) != 1 {
		t.Fatalf("got %d captures under rate limit, want 1", len(caps))
	}
	snap := h.f.Snapshot()
	if snap.Summary.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", snap.Summary.Suppressed)
	}
	if n := h.f.FlushPending(h.clk.Now()); n != 1 {
		t.Fatalf("FlushPending emitted %d bundles, want 1", n)
	}
	if len(caps) != 2 {
		t.Fatalf("got %d captures after flush, want 2", len(caps))
	}
	if caps[0].Token == caps[1].Token {
		t.Fatal("both bundles captured the same session")
	}
}

// TestFleetHTTP: the /sessions surface end to end through the obs mux —
// summary text, JSON snapshot, per-session detail, and the error paths.
func TestFleetHTTP(t *testing.T) {
	h := newFleetHarness(t, Config{}, FleetConfig{Window: 250 * time.Millisecond})
	tok := h.place()
	h.drive(time.Second, 25*time.Millisecond, tok) // degraded band
	h.f.Tick(h.clk.Now())

	r := obs.NewRegistry()
	h.f.Register(r)
	srv := httptest.NewServer(obs.NewMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/sessions")
	if code != 200 || !strings.Contains(body, "fleet: 1 tracked") {
		t.Fatalf("GET /sessions = %d %q", code, body)
	}
	if !strings.Contains(body, tok.String()) {
		t.Fatalf("top-K table misses the degraded session: %q", body)
	}

	code, body = get("/sessions?format=json")
	if code != 200 {
		t.Fatalf("GET /sessions?format=json = %d", code)
	}
	var snap FleetSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if snap.Summary.Degraded != 1 || len(snap.Top) != 1 {
		t.Fatalf("JSON snapshot = %+v", snap)
	}

	code, body = get("/sessions/" + tok.String())
	if code != 200 {
		t.Fatalf("GET /sessions/<token> = %d %q", code, body)
	}
	var det SessionDetail
	if err := json.Unmarshal([]byte(body), &det); err != nil {
		t.Fatal(err)
	}
	if det.Verdict != "degraded" || det.Bound != "AB" {
		t.Fatalf("detail = %+v, want degraded, bound AB", det)
	}

	if code, _ := get("/sessions/ffffffffffffffff"); code != 404 {
		t.Fatalf("unknown token = %d, want 404", code)
	}
	if code, _ := get("/sessions/not-hex"); code != 400 {
		t.Fatalf("bad token = %d, want 400", code)
	}

	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, MetricSessionVerdicts+`{state="degraded"} 1`) {
		t.Fatalf("metrics miss fleet series: %d", code)
	}
}

// TestSessionsHandlerHeaders pins the ops-surface header contract: explicit
// Content-Type per format and Cache-Control: no-store — a fleet census is
// only good for the instant it was served.
func TestSessionsHandlerHeaders(t *testing.T) {
	h := newFleetHarness(t, Config{}, FleetConfig{Window: 250 * time.Millisecond})
	tok := h.place()
	h.drive(time.Second, 25*time.Millisecond, tok)
	h.f.Tick(h.clk.Now())

	cases := []struct {
		handler  http.Handler
		target   string
		wantType string
	}{
		{h.f.SessionsHandler(), "/sessions", "text/plain"},
		{h.f.SessionsHandler(), "/sessions?format=json", "application/json"},
		{h.f.SessionDetailHandler(), "/sessions/" + tok.String(), "application/json"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		c.handler.ServeHTTP(rec, httptest.NewRequest("GET", c.target, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d, want 200", c.target, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, c.wantType) {
			t.Errorf("GET %s Content-Type = %q, want %s", c.target, ct, c.wantType)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", c.target, cc)
		}
	}
}
