package relay

import (
	"sort"
	"sync"
	"sync/atomic"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
)

// sessStats is one hosted session's stat block. The shard loop is the only
// writer on the packet path; the fleet aggregator (and the ops surface
// behind it) reads concurrently through atomics and the lock-free
// histograms, so there is no cross-shard locking and no per-datagram
// allocation. Blocks are pooled: dropSession resets and recycles them, and
// the generation counter lets a reader holding a stale reference detect
// that the block now belongs to someone else.
type sessStats struct {
	// gen increments on every reset. A published statRef snapshots the
	// value at publish time; a mismatch on read means the block was
	// recycled under the reader and its contents describe a different
	// session.
	gen atomic.Uint32

	// in counts payload datagrams ingested per site (header-only
	// keepalives refresh lastSeen but are not traffic).
	in [2]atomic.Int64
	// fwd / parked / dropped count datagrams forwarded to the peer,
	// parked for a still-unbound site, and evicted from this session's
	// pending rings.
	fwd     atomic.Int64
	parked  atomic.Int64
	dropped atomic.Int64
	// lastSeenNs is the Unix-ns instant of the last accepted datagram
	// (keepalives included).
	lastSeenNs atomic.Int64
	// boundMask holds one bit per bound site slot. Single-writer (the
	// shard loop), so Load+Store needs no CAS.
	boundMask atomic.Uint32

	// lastInNs is the previous payload-datagram instant per site,
	// loop-owned (only ingest touches it) — the state behind gap.
	lastInNs [2]int64

	// gap is the payload inter-arrival time per site (ns): the fleet's
	// frame-pacing signal. residence is the Route→ingest latency (ns) —
	// how long a datagram sat in the shard queue, the relay's own
	// contribution to RTT.
	gap       obs.Histogram
	residence obs.Histogram

	// ring is the session's anomaly flight recorder (most recent accepted
	// datagrams, relay header included); nil unless auto-capture is
	// configured.
	ring *capture.Ring
}

// reset prepares the block for reuse by a different session.
func (st *sessStats) reset() {
	st.gen.Add(1)
	for i := range st.in {
		st.in[i].Store(0)
		st.lastInNs[i] = 0
	}
	st.fwd.Store(0)
	st.parked.Store(0)
	st.dropped.Store(0)
	st.lastSeenNs.Store(0)
	st.boundMask.Store(0)
	st.gap.Reset()
	st.residence.Reset()
	st.ring.Reset()
}

// inTotal returns payload datagrams ingested across both sites.
func (st *sessStats) inTotal() int64 { return st.in[0].Load() + st.in[1].Load() }

// statsPool recycles stat blocks (histograms and capture rings are the
// expensive parts) across the daemon's churn. sync.Pool is safe from every
// shard loop concurrently.
type statsPool struct {
	pool      sync.Pool
	ringRecs  int // ring geometry; 0 disables rings
	ringBytes int
}

func newStatsPool(ringRecs, ringBytes int) *statsPool {
	return &statsPool{ringRecs: ringRecs, ringBytes: ringBytes}
}

func (p *statsPool) get() *sessStats {
	st, _ := p.pool.Get().(*sessStats)
	if st == nil {
		st = &sessStats{}
		if p.ringRecs > 0 {
			st.ring = capture.NewRing(p.ringRecs, p.ringBytes)
		}
	}
	return st
}

func (p *statsPool) put(st *sessStats) {
	if st == nil {
		return
	}
	st.reset()
	p.pool.Put(st)
}

// statRef is one entry of a shard's published session table: the token, its
// stat block, and the block's generation at publish time.
type statRef struct {
	token Token
	stats *sessStats
	gen   uint32
}

// valid reports whether the referenced block still belongs to this token.
func (r *statRef) valid() bool { return r.stats.gen.Load() == r.gen }

// publishTable rebuilds the shard's session table snapshot. Called from the
// shard loop only, and only when membership changed (register/close/expire) —
// steady-state packet processing never rebuilds it. Sorted by token so every
// consumer iterates deterministically.
func (s *Shard) publishTable() {
	refs := make([]statRef, 0, len(s.sessions))
	for tok, h := range s.sessions {
		if h.stats == nil {
			continue
		}
		refs = append(refs, statRef{token: tok, stats: h.stats, gen: h.stats.gen.Load()})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].token < refs[j].token })
	s.table.Store(&refs)
}

// sessionTable returns the shard's last published table (nil before the
// first publish). The slice is immutable once published; the stat blocks it
// references are live and must be gen-checked via statRef.valid.
func (s *Shard) sessionTable() []statRef {
	p := s.table.Load()
	if p == nil {
		return nil
	}
	return *p
}
