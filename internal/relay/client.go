package relay

import (
	"fmt"
	"time"

	"retrolock/internal/transport"
)

// bindEvery is how often an unconfirmed ClientConn re-announces itself to
// the relay with a header-only bind datagram (see Shard.ingest). It stays
// well under lobby/relay TTLs and NAT mapping lifetimes while adding only a
// few datagrams per second of handshake.
const bindEvery = 250 * time.Millisecond

// ClientConn adapts a relayed session to the transport.Conn contract the
// sync module speaks: every Send is prefixed with the session token and the
// local site number; every received datagram is validated (right token,
// peer's site) and stripped. The inner conn is connected to the relay's
// socket, so from core's point of view a relayed session is
// indistinguishable from a direct one.
//
// The relay learns this socket's address from the first datagram it sees,
// but protocol roles that listen before speaking (the handshake master
// waits for READY) would otherwise never bind their slot — so the wrapper
// sends a header-only bind datagram at construction and keeps re-sending it
// from TryRecv until the first peer datagram proves the return path works.
type ClientConn struct {
	inner    transport.Conn
	token    Token
	site     int
	scratch  []byte
	bound    bool // a peer datagram arrived; our slot is confirmed bound
	lastBind time.Time
}

// NewClientConn wraps inner (a conn whose remote end is the relay socket
// from a lobby placement) for the given token and local site, and
// immediately announces the socket to the relay.
func NewClientConn(inner transport.Conn, token Token, site int) *ClientConn {
	c := &ClientConn{
		inner:   inner,
		token:   token,
		site:    site,
		scratch: make([]byte, MaxDatagram),
	}
	c.bind()
	return c
}

// bind sends a header-only datagram: the relay binds (or refreshes) our
// slot and forwards nothing.
func (c *ClientConn) bind() {
	var hdr [HeaderLen]byte
	PutHeader(hdr[:], c.token, c.site)
	_ = c.inner.Send(hdr[:])
	c.lastBind = time.Now()
}

// Send implements transport.Conn.
func (c *ClientConn) Send(p []byte) error {
	if len(p) > MaxPayload {
		return fmt.Errorf("relay: datagram %d bytes exceeds relay budget %d", len(p), MaxPayload)
	}
	n := PutHeader(c.scratch, c.token, c.site)
	n += copy(c.scratch[n:], p)
	c.lastBind = time.Now() // any prefixed datagram binds the slot
	return c.inner.Send(c.scratch[:n])
}

// TryRecv implements transport.Conn. Datagrams that are not the peer's
// relayed traffic (wrong token or site — stray or hostile packets reaching
// our socket) are discarded and the next one is polled, so the sync module
// only ever sees clean peer datagrams.
func (c *ClientConn) TryRecv() ([]byte, bool) {
	if !c.bound && time.Since(c.lastBind) >= bindEvery {
		c.bind()
	}
	for {
		p, ok := c.inner.TryRecv()
		if !ok {
			return nil, false
		}
		tok, site, payload, ok := ParseHeader(p)
		if !ok || tok != c.token || site != 1-c.site || len(payload) == 0 {
			continue
		}
		c.bound = true
		return payload, true
	}
}

// Close implements transport.Conn.
func (c *ClientConn) Close() error { return c.inner.Close() }

// LocalAddr implements transport.Conn.
func (c *ClientConn) LocalAddr() string { return c.inner.LocalAddr() }

// RemoteAddr implements transport.Conn.
func (c *ClientConn) RemoteAddr() string {
	return fmt.Sprintf("relay(%s)/%s", c.inner.RemoteAddr(), c.token)
}

var _ transport.Conn = (*ClientConn)(nil)
