package relay

import "retrolock/internal/simnet"

// SimFront adapts a simnet endpoint to the Front interface so the exact
// shard loops that serve real UDP run under the virtual clock. Recv never
// blocks (simnet is poll-based); the daemon's virtual-time drivers sleep on
// the clock between polls.
type SimFront struct {
	ep *simnet.Endpoint
}

// NewSimFront wraps a bound simnet endpoint.
func NewSimFront(ep *simnet.Endpoint) *SimFront { return &SimFront{ep: ep} }

// Recv implements Front. Payloads are copied out of the endpoint's receive
// ring into the callers' pooled buffers (TryRecv's borrow window ends at the
// next delivery, which under a virtual clock can happen as soon as the actor
// parks).
func (f *SimFront) Recv(ms []Message) (int, error) {
	n := 0
	for n < len(ms) {
		d, ok := f.ep.TryRecv()
		if !ok {
			break
		}
		if len(d.Payload) > MaxDatagram {
			continue // oversized: drop, like a real socket with a small buffer
		}
		ms[n].Buf = append(ms[n].Buf[:0], d.Payload...)
		ms[n].Addr = Addr{Sim: d.From}
		n++
	}
	return n, nil
}

// Send implements Front.
func (f *SimFront) Send(ms []Message) (int, error) {
	sent := 0
	for i := range ms {
		if ms[i].Addr.Sim == "" {
			continue
		}
		// ErrNoRoute (peer endpoint gone) is a lost datagram, like UDP to a
		// dead host; only a closed local endpoint stops the batch.
		if err := f.ep.SendTo(ms[i].Addr.Sim, ms[i].Buf); err == simnet.ErrClosed {
			return sent, err
		}
		sent++
	}
	return sent, nil
}

// LocalAddr implements Front.
func (f *SimFront) LocalAddr() string { return f.ep.Addr() }

// Close implements Front.
func (f *SimFront) Close() error { return f.ep.Close() }

var _ Front = (*SimFront)(nil)
