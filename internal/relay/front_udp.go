package relay

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
)

// UDPFront is a real UDP socket serving as one of the daemon's fronts. On
// Linux (amd64/arm64) Recv and Send move whole batches per syscall with
// recvmmsg/sendmmsg; elsewhere they fall back to one datagram per call
// behind the same interface.
//
// Recv assumes a single reader goroutine (the daemon dedicates one per
// socket); Send is safe from any number of shards.
type UDPFront struct {
	conn *net.UDPConn
	b    *batcher // nil when the platform has no batched path
}

// ListenUDPFront binds a UDP socket on addr (e.g. "127.0.0.1:0").
func ListenUDPFront(addr string) (*UDPFront, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("relay: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("relay: listen udp: %w", err)
	}
	// A front multiplexes thousands of sessions whose clients tick in near
	// lockstep; default socket buffers drop whole bursts. Best effort — the
	// kernel clamps to its rmem/wmem ceilings.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	f := &UDPFront{conn: conn}
	f.b, err = newBatcher(conn)
	if err != nil {
		// No raw access (unusual); run on the portable path.
		f.b = nil
	}
	return f, nil
}

// Recv implements Front: it blocks until at least one datagram arrives, then
// returns as many as are immediately available, up to len(ms).
func (f *UDPFront) Recv(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if f.b != nil {
		return f.b.recv(ms)
	}
	// Portable path: one blocking read per call.
	buf := ms[0].Buf[:cap(ms[0].Buf)]
	n, ap, err := f.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return 0, err
	}
	ms[0].Buf = buf[:n]
	ms[0].Addr = Addr{AP: netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())}
	return 1, nil
}

// Send implements Front. Delivery is best-effort: per-datagram send errors
// (unreachable, firewall) are dropped exactly like UDP loss.
func (f *UDPFront) Send(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if f.b != nil {
		return f.b.send(ms)
	}
	sent := 0
	for i := range ms {
		if !ms[i].Addr.AP.IsValid() {
			continue
		}
		if _, err := f.conn.WriteToUDPAddrPort(ms[i].Buf, ms[i].Addr.AP); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return sent, err
			}
			continue
		}
		sent++
	}
	return sent, nil
}

// LocalAddr implements Front.
func (f *UDPFront) LocalAddr() string { return f.conn.LocalAddr().String() }

// AddrPort returns the bound address as netip.AddrPort.
func (f *UDPFront) AddrPort() netip.AddrPort {
	ua := f.conn.LocalAddr().(*net.UDPAddr)
	return ua.AddrPort()
}

// Batched reports whether the mmsg fast path is active (for logs/metrics).
func (f *UDPFront) Batched() bool { return f.b != nil }

// Close implements Front.
func (f *UDPFront) Close() error { return f.conn.Close() }

var _ Front = (*UDPFront)(nil)
