//go:build !(linux && (amd64 || arm64))

package relay

import "net"

// batcher is unavailable off 64-bit Linux; UDPFront degrades to one
// datagram per syscall behind the same Front interface.
type batcher struct{}

func newBatcher(*net.UDPConn) (*batcher, error) { return nil, nil }

func (*batcher) recv([]Message) (int, error) { panic("relay: no batcher on this platform") }
func (*batcher) send([]Message) (int, error) { panic("relay: no batcher on this platform") }
