//go:build linux && arm64

package relay

// See batch_linux_amd64.go: sendmmsg postdates the syscall table freeze.
const sysSENDMMSG = 269
