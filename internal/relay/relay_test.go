package relay

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"retrolock/internal/vclock"
)

func TestTokenRoundTrip(t *testing.T) {
	for _, shard := range []int{0, 1, 7, MaxShards - 1} {
		tok := MakeToken(shard, 12345, 0xdeadbeef)
		if got := tok.ShardIndex(); got != shard {
			t.Fatalf("ShardIndex = %d, want %d", got, shard)
		}
		back, err := ParseToken(tok.String())
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", tok.String(), err)
		}
		if back != tok {
			t.Fatalf("round trip %q: got %016x want %016x", tok.String(), uint64(back), uint64(tok))
		}
	}
	if _, err := ParseToken("nothexnothexnotx"); err == nil {
		t.Fatal("ParseToken accepted garbage")
	}
	if _, err := ParseToken("123"); err == nil {
		t.Fatal("ParseToken accepted a short token")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	buf := make([]byte, HeaderLen+5)
	tok := MakeToken(3, 9, 0x42)
	n := PutHeader(buf, tok, 1)
	copy(buf[n:], "hello")
	gotTok, gotSite, payload, ok := ParseHeader(buf)
	if !ok || gotTok != tok || gotSite != 1 || string(payload) != "hello" {
		t.Fatalf("ParseHeader = %v %d %q ok=%v", gotTok, gotSite, payload, ok)
	}
	if _, _, _, ok := ParseHeader(buf[:HeaderLen-1]); ok {
		t.Fatal("ParseHeader accepted a runt")
	}
}

// memFront is a Front test double: sends are captured, receives are fed by
// the test.
type memFront struct {
	addr string
	sent []Message
}

func (f *memFront) Recv(ms []Message) (int, error) { return 0, nil }
func (f *memFront) Send(ms []Message) (int, error) {
	for _, m := range ms {
		f.sent = append(f.sent, Message{Buf: append([]byte(nil), m.Buf...), Addr: m.Addr})
	}
	return len(ms), nil
}
func (f *memFront) LocalAddr() string { return f.addr }
func (f *memFront) Close() error      { return nil }

func simAddr(name string) Addr { return Addr{Sim: name} }

// mkMsg builds a relayed datagram as a reader would deliver it to a shard.
func mkMsg(tok Token, site int, payload string, from Addr) Message {
	buf := getBuf()
	n := PutHeader(buf, tok, site)
	n += copy(buf[n:], payload)
	return Message{Buf: buf[:n], Addr: from}
}

// newTestDaemon returns a daemon over a memFront plus the front for
// inspection. Shards are stepped manually.
func newTestDaemon(t *testing.T, cfg Config) (*Daemon, *memFront) {
	t.Helper()
	front := &memFront{addr: "relay0"}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewVirtual(time.Unix(0, 0))
	}
	d, err := NewDaemon(cfg, []Front{front})
	if err != nil {
		t.Fatal(err)
	}
	return d, front
}

func place(t *testing.T, d *Daemon) (Token, *Shard) {
	t.Helper()
	p, err := d.Place()
	if err != nil {
		t.Fatal(err)
	}
	sh := d.Shards()[p.Token.ShardIndex()]
	sh.Step() // apply the registration
	return p.Token, sh
}

func TestForwardBetweenBoundSites(t *testing.T) {
	d, front := newTestDaemon(t, Config{Shards: 2})
	tok, sh := place(t, d)

	sh.push(mkMsg(tok, 0, "from-zero", simAddr("clientA")))
	sh.push(mkMsg(tok, 1, "from-one", simAddr("clientB")))
	sh.Step()

	// site 0's first datagram was parked (site 1 unbound at ingest time),
	// then flushed when site 1 bound within the same step.
	if len(front.sent) != 2 {
		t.Fatalf("sent %d datagrams, want 2", len(front.sent))
	}
	for _, m := range front.sent {
		gotTok, site, payload, ok := ParseHeader(m.Buf)
		if !ok || gotTok != tok {
			t.Fatalf("forwarded datagram lost its prefix: %v", m.Buf)
		}
		switch m.Addr {
		case simAddr("clientB"):
			if site != 0 || string(payload) != "from-zero" {
				t.Fatalf("to clientB: site=%d payload=%q", site, payload)
			}
		case simAddr("clientA"):
			if site != 1 || string(payload) != "from-one" {
				t.Fatalf("to clientA: site=%d payload=%q", site, payload)
			}
		default:
			t.Fatalf("forwarded to unexpected addr %v", m.Addr)
		}
	}
	if got := sh.Forwarded(); got != 2 {
		t.Fatalf("Forwarded = %d, want 2", got)
	}
}

// TestSpoofedSourceDoesNotRebindPeer is the regression test for the
// demux-front spoofing bug: a datagram carrying a valid session token from
// an unexpected source address must be counted and dropped — before the
// fix, the ingest path treated any valid token as authoritative and
// re-learned the slot's address from it, so a spoofer could steal an active
// session's return path mid-game.
func TestSpoofedSourceDoesNotRebindPeer(t *testing.T) {
	d, front := newTestDaemon(t, Config{Shards: 1})
	tok, sh := place(t, d)

	// Both sites bind from their genuine addresses.
	sh.push(mkMsg(tok, 0, "hello", simAddr("realA")))
	sh.push(mkMsg(tok, 1, "hi", simAddr("realB")))
	sh.Step()
	front.sent = nil

	// A spoofer replays site 1's token/site from its own address.
	sh.push(mkMsg(tok, 1, "evil", simAddr("spoofer")))
	sh.Step()
	if len(front.sent) != 0 {
		t.Fatalf("spoofed datagram was forwarded: %v", front.sent)
	}
	if got := sh.SpoofRejected(); got != 1 {
		t.Fatalf("SpoofRejected = %d, want 1", got)
	}

	// Site 0 keeps talking; its traffic must still reach the *real* site 1
	// address, not the spoofer's.
	sh.push(mkMsg(tok, 0, "still-here", simAddr("realA")))
	sh.Step()
	if len(front.sent) != 1 {
		t.Fatalf("sent %d datagrams, want 1", len(front.sent))
	}
	if front.sent[0].Addr != simAddr("realB") {
		t.Fatalf("peer traffic went to %v — the spoofer rebound the session", front.sent[0].Addr)
	}
}

func TestRejectCounters(t *testing.T) {
	d, front := newTestDaemon(t, Config{Shards: 1})
	tok, sh := place(t, d)

	// Unknown token (valid shard index, no session).
	sh.push(mkMsg(MakeToken(0, 999, 1), 0, "x", simAddr("a")))
	// Bad site byte.
	sh.push(mkMsg(tok, 7, "x", simAddr("a")))
	// Runt.
	buf := getBuf()
	sh.push(Message{Buf: buf[:3], Addr: simAddr("a")})
	sh.Step()

	if sh.rejToken.Value() != 1 || sh.rejSite.Value() != 1 || sh.rejRunt.Value() != 1 {
		t.Fatalf("rejects = token:%d site:%d runt:%d, want 1/1/1",
			sh.rejToken.Value(), sh.rejSite.Value(), sh.rejRunt.Value())
	}
	if len(front.sent) != 0 {
		t.Fatalf("rejected datagrams were forwarded")
	}
}

func TestRouteRejectsBadShard(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Shards: 1})
	ms := []Message{mkMsg(MakeToken(5, 1, 1), 0, "x", simAddr("a"))}
	d.Route(ms, 1)
	if d.rejRoute.Value() != 1 {
		t.Fatalf("rejRoute = %d, want 1", d.rejRoute.Value())
	}
}

func TestPendingRingFlushAndBudget(t *testing.T) {
	d, front := newTestDaemon(t, Config{Shards: 1, PendingSlots: 4, PendingBytes: 1 << 20})
	tok, sh := place(t, d)

	// Six early datagrams from site 0; only the freshest 4 fit the ring.
	for i := 0; i < 6; i++ {
		sh.push(mkMsg(tok, 0, fmt.Sprintf("d%d", i), simAddr("A")))
	}
	sh.Step()
	if len(front.sent) != 0 {
		t.Fatal("forwarded before the peer bound")
	}
	if got := sh.dropPending.Value(); got != 2 {
		t.Fatalf("dropPending = %d, want 2", got)
	}

	// Peer binds: the parked window flushes in order, freshest-wins.
	sh.push(mkMsg(tok, 1, "hi", simAddr("B")))
	sh.Step()
	var got []string
	for _, m := range front.sent {
		if m.Addr == simAddr("B") {
			_, _, payload, _ := ParseHeader(m.Buf)
			got = append(got, string(payload))
		}
	}
	want := []string{"d2", "d3", "d4", "d5"}
	if len(got) != len(want) {
		t.Fatalf("flushed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flushed %v, want %v", got, want)
		}
	}
}

func TestQueueOverflowDropsWithCount(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Shards: 1, QueueLen: 4})
	tok, sh := place(t, d)
	for i := 0; i < 10; i++ {
		sh.push(mkMsg(tok, 0, "x", simAddr("A")))
	}
	if got := sh.QueueDropped(); got != 6 {
		t.Fatalf("QueueDropped = %d, want 6", got)
	}
	if got := sh.QueuePeak(); got != 4 {
		t.Fatalf("QueuePeak = %d, want 4", got)
	}
}

func TestSessionExpiry(t *testing.T) {
	v := vclock.NewVirtual(time.Unix(0, 0))
	d, _ := newTestDaemon(t, Config{Shards: 1, Clock: v, SessionTTL: time.Minute, SweepEvery: time.Second})
	tok, sh := place(t, d)
	if d.Sessions() != 1 {
		t.Fatalf("Sessions = %d, want 1", d.Sessions())
	}
	// Advance the virtual clock past the TTL; the next Step sweeps.
	done := v.Go(func() { v.Sleep(2 * time.Minute) })
	<-done
	sh.Step()
	if d.Sessions() != 0 {
		t.Fatalf("Sessions = %d after TTL, want 0", d.Sessions())
	}
	if sh.sessionsExpired.Value() != 1 {
		t.Fatalf("sessionsExpired = %d, want 1", sh.sessionsExpired.Value())
	}
	// Traffic for the expired token is now rejected, not forwarded.
	sh.push(mkMsg(tok, 0, "late", simAddr("A")))
	sh.Step()
	if sh.rejToken.Value() != 1 {
		t.Fatalf("rejToken = %d, want 1", sh.rejToken.Value())
	}
}

func TestPlaceFillsAndFails(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Shards: 2, MaxSessions: 2})
	for i := 0; i < 4; i++ {
		if _, err := d.Place(); err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
	}
	if _, err := d.Place(); err != ErrFull {
		t.Fatalf("Place over capacity = %v, want ErrFull", err)
	}
	// Placements spread across shards.
	if a, b := d.Shards()[0].Active(), d.Shards()[1].Active(); a != 2 || b != 2 {
		t.Fatalf("shard loads = %d/%d, want 2/2", a, b)
	}
}

// TestUDPFrontBatchRoundTrip exercises the real socket front — on Linux the
// recvmmsg/sendmmsg path — against a plain net.UDPConn peer.
func TestUDPFrontBatchRoundTrip(t *testing.T) {
	front, err := ListenUDPFront("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer front.Close()

	peer, err := net.Dial("udp", front.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	const N = 10
	for i := 0; i < N; i++ {
		if _, err := peer.Write([]byte(fmt.Sprintf("ping-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]bool{}
	var from Addr
	deadline := time.Now().Add(5 * time.Second)
	ms := newBatch(8)
	for len(got) < N && time.Now().Before(deadline) {
		n, err := front.Recv(ms)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got[string(ms[i].Buf)] = true
			from = ms[i].Addr
		}
	}
	if len(got) != N {
		t.Fatalf("received %d distinct datagrams, want %d (batched=%v)", len(got), N, front.Batched())
	}
	if !from.AP.IsValid() {
		t.Fatalf("source address not parsed: %v", from)
	}

	// Echo a batch back through Send.
	out := make([]Message, 3)
	for i := range out {
		out[i] = Message{Buf: []byte(fmt.Sprintf("pong-%d", i)), Addr: from}
	}
	if n, err := front.Send(out); err != nil || n != 3 {
		t.Fatalf("Send = %d, %v", n, err)
	}
	_ = peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		n, err := peer.Read(buf)
		if err != nil {
			t.Fatalf("read echo %d: %v", i, err)
		}
		if !bytes.HasPrefix(buf[:n], []byte("pong-")) {
			t.Fatalf("echo %d = %q", i, buf[:n])
		}
	}
}

// TestRelayEndToEndUDP runs the full real-clock daemon: two UDP clients of a
// placed session exchange datagrams through it.
func TestRelayEndToEndUDP(t *testing.T) {
	front, err := ListenUDPFront("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	d, err := NewDaemon(Config{Shards: 2, TickEvery: 5 * time.Millisecond}, []Front{front})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Close()

	p, err := d.Place()
	if err != nil {
		t.Fatal(err)
	}

	dial := func() *net.UDPConn {
		c, err := net.Dial("udp", p.Addr)
		if err != nil {
			t.Fatal(err)
		}
		return c.(*net.UDPConn)
	}
	c0, c1 := dial(), dial()
	defer c0.Close()
	defer c1.Close()

	send := func(c *net.UDPConn, site int, payload string) {
		buf := make([]byte, HeaderLen+len(payload))
		PutHeader(buf, p.Token, site)
		copy(buf[HeaderLen:], payload)
		if _, err := c.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	recv := func(c *net.UDPConn, wantSite int, wantPayload string) {
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, MaxDatagram)
		for {
			n, err := c.Read(buf)
			if err != nil {
				t.Fatalf("waiting for %q: %v", wantPayload, err)
			}
			tok, site, payload, ok := ParseHeader(buf[:n])
			if !ok || tok != p.Token {
				continue
			}
			if site == wantSite && string(payload) == wantPayload {
				return
			}
		}
	}

	// Early send parks until the peer binds; then both directions flow.
	send(c0, 0, "first")
	send(c1, 1, "reply")
	recv(c1, 0, "first")
	recv(c0, 1, "reply")
	send(c0, 0, "second")
	recv(c1, 0, "second")
}

// A header-only datagram binds the sender's slot (and refreshes its TTL)
// without forwarding or parking anything — the primitive ClientConn uses so
// that a site that listens before it speaks (the handshake master) still
// gets a return path. Regression: before it existed, the slave's READY
// datagrams parked forever and relayed handshakes deadlocked.
func TestHeaderOnlyDatagramBindsWithoutForwarding(t *testing.T) {
	d, front := newTestDaemon(t, Config{Shards: 2})
	tok, sh := place(t, d)

	// Site 0 announces itself with a bind; nothing must reach the wire.
	sh.push(mkMsg(tok, 0, "", simAddr("quietMaster")))
	sh.Step()
	if len(front.sent) != 0 {
		t.Fatalf("bind datagram was forwarded: %d sends", len(front.sent))
	}
	if got := sh.binds.Value(); got != 1 {
		t.Fatalf("binds = %d, want 1", got)
	}
	if got := sh.queuedPending.Value(); got != 0 {
		t.Fatalf("bind datagram was parked: queuedPending = %d", got)
	}

	// The slot is bound: site 1's very first payload forwards straight to
	// the master's address.
	sh.push(mkMsg(tok, 1, "READY", simAddr("talkativeSlave")))
	sh.Step()
	if len(front.sent) != 1 {
		t.Fatalf("sent %d datagrams, want 1", len(front.sent))
	}
	if got := front.sent[0].Addr; got != simAddr("quietMaster") {
		t.Fatalf("forwarded to %v, want the bound master", got)
	}

	// A bind from a wrong source cannot rebind: same spoof rule as data.
	sh.push(mkMsg(tok, 0, "", simAddr("spoofer")))
	sh.Step()
	if got := sh.rejSpoof.Value(); got != 1 {
		t.Fatalf("spoofed bind not rejected: rejSpoof = %d", got)
	}
}

func TestClientConnStripsAndValidates(t *testing.T) {
	inner := &connStub{}
	cc := NewClientConn(inner, MakeToken(1, 2, 3), 0)
	// Construction announces the socket with a header-only bind datagram.
	if tok, site, payload, ok := ParseHeader(inner.lastSent); !ok || tok != cc.token || site != 0 || len(payload) != 0 {
		t.Fatalf("construction bind framed %v/%d/%q/%v", tok, site, payload, ok)
	}
	if err := cc.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	tok, site, payload, ok := ParseHeader(inner.lastSent)
	if !ok || tok != cc.token || site != 0 || string(payload) != "payload" {
		t.Fatalf("Send framed %v/%d/%q", tok, site, payload)
	}

	// Peer traffic (site 1, right token) passes; anything else is skipped.
	good := make([]byte, HeaderLen+2)
	PutHeader(good, cc.token, 1)
	copy(good[HeaderLen:], "ok")
	wrongTok := make([]byte, HeaderLen)
	PutHeader(wrongTok, cc.token+1, 1)
	ownEcho := make([]byte, HeaderLen)
	PutHeader(ownEcho, cc.token, 0)
	inner.queue = [][]byte{wrongTok, ownEcho, good}
	p, ok := cc.TryRecv()
	if !ok || string(p) != "ok" {
		t.Fatalf("TryRecv = %q, %v", p, ok)
	}
	if _, ok := cc.TryRecv(); ok {
		t.Fatal("TryRecv returned junk")
	}

	if err := cc.Send(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized Send accepted")
	}
}

type connStub struct {
	lastSent []byte
	queue    [][]byte
}

func (c *connStub) Send(p []byte) error {
	c.lastSent = append([]byte(nil), p...)
	return nil
}
func (c *connStub) TryRecv() ([]byte, bool) {
	if len(c.queue) == 0 {
		return nil, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p, true
}
func (c *connStub) Close() error       { return nil }
func (c *connStub) LocalAddr() string  { return "stub" }
func (c *connStub) RemoteAddr() string { return "stub" }
