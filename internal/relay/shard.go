package relay

import (
	"sync"
	"sync/atomic"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
	"retrolock/internal/vclock"
)

// slot is one site's view of a hosted session: the transport address the
// relay returns traffic to, bound by the first valid datagram (or by the
// control plane) and never rebound from the data path.
type slot struct {
	addr  Addr
	bound bool
}

// hosted is one relayed session, owned exclusively by its shard's loop.
type hosted struct {
	token    Token
	slots    [2]slot
	pending  [2]*pendingRing // datagrams addressed to a still-unbound site
	lastSeen time.Time
	stats    *sessStats // nil unless Config.Stats
}

// ctlKind enumerates control-plane operations applied between packet
// batches, so the packet path itself never sees admission churn.
type ctlKind uint8

const (
	ctlRegister ctlKind = iota
	ctlRebind
	ctlClose
)

type ctlOp struct {
	kind  ctlKind
	token Token
	site  int
	addr  Addr
}

// Shard is one shared-nothing event loop of the daemon. Readers push
// datagrams into its bounded inbound queue under the shard's own lock;
// everything else — the session table, pending rings, outbound batch — is
// touched only by the shard goroutine. Nothing in the packet path takes a
// lock owned by another shard.
type Shard struct {
	idx   int
	out   Front
	cfg   Config
	clock vclock.Clock

	mu   sync.Mutex
	inq  []Message // bounded by cfg.QueueLen
	ctl  []ctlOp
	wake chan struct{} // real-mode doorbell, cap 1

	// Loop-owned state (no locking).
	sessions  map[Token]*hosted
	inqSwap   []Message // Step's processing buffer, swapped with inq
	outBatch  []Message
	lastSweep time.Time

	// Per-session observability (Config.Stats): the shared block pool, the
	// published table snapshot the fleet aggregator reads, and the
	// loop-owned dirty flag that triggers a republish after membership
	// churn.
	sPool      *statsPool
	table      atomic.Pointer[[]statRef]
	tableDirty bool

	// Counters are atomics (obs.Counter) so obsadapt closures and tests can
	// read them while the loop runs.
	active          atomic.Int64
	sessionsTotal   obs.Counter
	sessionsExpired obs.Counter
	sessionsClosed  obs.Counter
	datagramsIn     obs.Counter
	forwarded       obs.Counter
	binds           obs.Counter
	queuedPending   obs.Counter
	rejRunt         obs.Counter
	rejToken        obs.Counter
	rejSite         obs.Counter
	rejSpoof        obs.Counter
	dropQueue       obs.Counter
	dropPending     obs.Counter
	queuePeak       atomic.Int64 // inbound-queue high-water mark
}

func newShard(idx int, out Front, cfg Config, pool *statsPool) *Shard {
	return &Shard{
		idx:      idx,
		out:      out,
		cfg:      cfg,
		clock:    cfg.Clock,
		wake:     make(chan struct{}, 1),
		sessions: make(map[Token]*hosted),
		inq:      make([]Message, 0, cfg.QueueLen),
		inqSwap:  make([]Message, 0, cfg.QueueLen),
		outBatch: make([]Message, 0, cfg.QueueLen),
		sPool:    pool,
	}
}

// Active returns the shard's live session count.
func (s *Shard) Active() int { return int(s.active.Load()) }

// Addr is the socket address clients of this shard's sessions send to.
func (s *Shard) Addr() string { return s.out.LocalAddr() }

// push hands one datagram (ownership of m.Buf included) to the shard. It is
// the only packet-path operation that crosses goroutines; overflow drops the
// datagram with a count, like a socket buffer.
func (s *Shard) push(m Message) {
	s.mu.Lock()
	if len(s.inq) >= s.cfg.QueueLen {
		s.mu.Unlock()
		s.dropQueue.Inc()
		putBuf(m.Buf)
		return
	}
	s.inq = append(s.inq, m)
	if n := int64(len(s.inq)); n > s.queuePeak.Load() {
		s.queuePeak.Store(n)
	}
	s.mu.Unlock()
	s.ring()
}

// control enqueues a control-plane operation.
func (s *Shard) control(op ctlOp) {
	s.mu.Lock()
	s.ctl = append(s.ctl, op)
	s.mu.Unlock()
	s.ring()
}

// ring taps the real-mode doorbell without blocking.
func (s *Shard) ring() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Step drains the control queue and the inbound queue once, forwarding what
// it can and flushing the outbound batch. It returns the number of inbound
// datagrams processed. Step must only be called from the shard's loop (or a
// test standing in for it).
func (s *Shard) Step() int {
	now := s.clock.Now()
	var nowNs int64
	if s.sPool != nil {
		nowNs = now.UnixNano()
	}

	s.mu.Lock()
	s.inq, s.inqSwap = s.inqSwap[:0], s.inq
	var ctl []ctlOp
	if len(s.ctl) > 0 {
		ctl = s.ctl
		s.ctl = nil
	}
	s.mu.Unlock()

	for _, op := range ctl {
		s.applyCtl(op, now)
	}
	for i := range s.inqSwap {
		s.ingest(&s.inqSwap[i], now, nowNs)
	}
	n := len(s.inqSwap)
	s.flush()
	if s.cfg.SweepEvery > 0 && now.Sub(s.lastSweep) >= s.cfg.SweepEvery {
		s.sweep(now)
		s.lastSweep = now
	}
	if s.tableDirty {
		s.publishTable()
		s.tableDirty = false
	}
	return n
}

func (s *Shard) applyCtl(op ctlOp, now time.Time) {
	switch op.kind {
	case ctlRegister:
		// Place already accounted the session in s.active (so admission
		// sees the slot taken immediately); this only materializes it.
		if _, ok := s.sessions[op.token]; ok {
			s.active.Add(-1) // duplicate token: rebalance the pre-count
			return
		}
		h := &hosted{token: op.token, lastSeen: now}
		h.pending[0] = newPendingRing(s.cfg.PendingSlots, s.cfg.PendingBytes)
		h.pending[1] = newPendingRing(s.cfg.PendingSlots, s.cfg.PendingBytes)
		if s.sPool != nil {
			h.stats = s.sPool.get()
			h.stats.lastSeenNs.Store(now.UnixNano())
			s.tableDirty = true
		}
		s.sessions[op.token] = h
		s.sessionsTotal.Inc()
	case ctlRebind:
		h, ok := s.sessions[op.token]
		if !ok || op.site < 0 || op.site > 1 || op.addr.IsZero() {
			return
		}
		h.slots[op.site] = slot{addr: op.addr, bound: true}
		h.lastSeen = now
		if st := h.stats; st != nil {
			st.boundMask.Store(st.boundMask.Load() | 1<<uint(op.site))
			st.lastSeenNs.Store(now.UnixNano())
		}
		// The site's return path moved: anything parked for it can fly now.
		s.drainPending(h, op.site)
	case ctlClose:
		s.dropSession(op.token, &s.sessionsClosed)
	}
}

// ingest is the per-datagram packet path: validate the prefix, bind or
// verify the source slot, and forward to (or park for) the peer site.
// The message's buffer is either moved to the outbound batch, copied into a
// pending ring, or returned to the pool — never leaked. nowNs is now as
// Unix ns, precomputed by Step when per-session stats are on (0 otherwise);
// every stat update is an atomic store or a copy into preallocated memory,
// so the path stays 0 allocs/op with stats and the anomaly ring attached.
func (s *Shard) ingest(m *Message, now time.Time, nowNs int64) {
	s.datagramsIn.Inc()
	token, site, payload, ok := ParseHeader(m.Buf)
	if !ok {
		s.rejRunt.Inc()
		putBuf(m.Buf)
		return
	}
	if site != 0 && site != 1 {
		s.rejSite.Inc()
		putBuf(m.Buf)
		return
	}
	// Tap after the shape checks (runts and bad sites never made it onto the
	// wire view) but before token lookup, so a capture also shows the
	// stray-token traffic a replay needs to reproduce rejection load.
	if s.cfg.Tap != nil {
		s.cfg.Tap.Record(now, capture.DirRecv, site, m.Buf)
	}
	h, ok := s.sessions[token]
	if !ok {
		s.rejToken.Inc()
		putBuf(m.Buf)
		return
	}
	st := h.stats
	sl := &h.slots[site]
	switch {
	case !sl.bound:
		// First valid datagram from this site claims the slot (this is how
		// the relay learns NAT mappings without a handshake) ...
		sl.addr = m.Addr
		sl.bound = true
		if st != nil {
			st.boundMask.Store(st.boundMask.Load() | 1<<uint(site))
		}
		s.drainPending(h, site)
	case sl.addr != m.Addr:
		// ... but once bound, the data path must never rebind it: a valid
		// token is visible to anyone on the path, and honoring a new source
		// here would let a spoofer steal the session's return path
		// mid-game. Rebinds are control-plane only (lobby re-JOIN).
		s.rejSpoof.Inc()
		putBuf(m.Buf)
		return
	}
	h.lastSeen = now
	if st != nil {
		st.lastSeenNs.Store(nowNs)
		if m.At > 0 {
			st.residence.Observe(nowNs - m.At)
		}
		// The ring sees every accepted datagram, header included, so a
		// snapshot decodes back to this session's token and replays
		// verbatim through a relay.
		st.ring.Record(now, capture.DirRecv, site, m.Buf)
	}

	if len(payload) == 0 {
		// Header-only bind/keepalive (relay.ClientConn sends these until
		// peer traffic confirms the path): the slot bind and lastSeen
		// refresh above are its whole job. Roles that listen before they
		// speak — the handshake master waits for READY — would otherwise
		// never bind their slot and the peer's datagrams would park
		// forever. Nothing is forwarded or parked.
		s.binds.Inc()
		putBuf(m.Buf)
		return
	}

	if st != nil {
		st.in[site].Add(1)
		if last := st.lastInNs[site]; last != 0 {
			st.gap.Observe(nowNs - last)
		}
		st.lastInNs[site] = nowNs
	}

	dst := &h.slots[1-site]
	if !dst.bound {
		evicted := int64(h.pending[1-site].push(m.Buf))
		s.dropPending.Add(evicted)
		s.queuedPending.Inc()
		if st != nil {
			st.parked.Add(1)
			st.dropped.Add(evicted)
		}
		putBuf(m.Buf)
		return
	}
	m.Addr = dst.addr
	s.outBatch = append(s.outBatch, *m)
	s.forwarded.Inc()
	if st != nil {
		st.fwd.Add(1)
	}
	if len(s.outBatch) >= s.cfg.WriteBatch {
		s.flush()
	}
}

// drainPending flushes datagrams parked for site into the outbound batch.
func (s *Shard) drainPending(h *hosted, site int) {
	dst := h.slots[site].addr
	st := h.stats
	h.pending[site].drain(func(p []byte) {
		buf := getBuf()
		buf = append(buf[:0], p...)
		s.outBatch = append(s.outBatch, Message{Buf: buf, Addr: dst})
		s.forwarded.Inc()
		if st != nil {
			st.fwd.Add(1)
		}
	})
}

// flush writes the outbound batch through the shard's front and returns the
// buffers to the pool.
func (s *Shard) flush() {
	if len(s.outBatch) == 0 {
		return
	}
	if s.cfg.Tap != nil {
		// Record sends against the *destination* site. The buffered header
		// still carries the sender's site byte (the relay forwards datagrams
		// verbatim), so the destination is its complement. Recording here
		// covers both direct forwards and drained-pending sends with one hook.
		now := s.clock.Now()
		for i := range s.outBatch {
			if _, site, _, ok := ParseHeader(s.outBatch[i].Buf); ok {
				s.cfg.Tap.Record(now, capture.DirSend, 1-site, s.outBatch[i].Buf)
			}
		}
	}
	_, _ = s.out.Send(s.outBatch)
	for i := range s.outBatch {
		putBuf(s.outBatch[i].Buf)
		s.outBatch[i] = Message{}
	}
	s.outBatch = s.outBatch[:0]
}

// sweep expires sessions idle past the TTL, bounding the table against
// abandoned placements exactly like the lobby's sweep.
func (s *Shard) sweep(now time.Time) {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	for tok, h := range s.sessions {
		if now.Sub(h.lastSeen) > s.cfg.SessionTTL {
			s.dropSession(tok, &s.sessionsExpired)
		}
	}
}

func (s *Shard) dropSession(tok Token, counter *obs.Counter) {
	h, ok := s.sessions[tok]
	if !ok {
		return
	}
	h.pending[0].free()
	h.pending[1].free()
	if h.stats != nil {
		s.sPool.put(h.stats)
		h.stats = nil
		s.tableDirty = true
	}
	delete(s.sessions, tok)
	s.active.Add(-1)
	counter.Inc()
}

// runReal is the shard loop for real-clock operation: doorbell-driven with a
// periodic tick for sweeps and stragglers.
func (s *Shard) runReal(closed *atomic.Bool, step *obs.Histogram) {
	tick := time.NewTicker(s.cfg.TickEvery)
	defer tick.Stop()
	for !closed.Load() {
		select {
		case <-s.wake:
		case <-tick.C:
		}
		for {
			t0 := time.Now()
			n := s.Step()
			if step != nil {
				step.Observe(time.Since(t0).Nanoseconds())
			}
			if n == 0 {
				break
			}
		}
	}
	s.flush()
}

// runVirtual is the shard loop as a virtual-clock actor: poll, step, park.
func (s *Shard) runVirtual(closed *atomic.Bool) {
	for !closed.Load() {
		s.Step()
		s.clock.(interface{ Sleep(time.Duration) }).Sleep(s.cfg.PollInterval)
	}
	s.Step()
	s.flush()
}
