package relay

import (
	"strconv"

	"retrolock/internal/obs"
)

// Series names for the relay daemon. Per-shard series carry a {shard="i"}
// label; reader-level rejects (datagrams that never reached a shard) use
// {shard="front"}.
const (
	MetricSessionsActive  = "retrolock_relay_sessions_active"
	MetricSessionsTotal   = "retrolock_relay_sessions_total"
	MetricSessionsExpired = "retrolock_relay_sessions_expired_total"
	MetricSessionsClosed  = "retrolock_relay_sessions_closed_total"
	MetricDatagramsIn     = "retrolock_relay_datagrams_in_total"
	MetricForwarded       = "retrolock_relay_forwarded_total"
	MetricBinds           = "retrolock_relay_binds_total"
	MetricPendingQueued   = "retrolock_relay_pending_queued_total"
	MetricRejected        = "retrolock_relay_rejected_total"
	MetricDropped         = "retrolock_relay_dropped_total"
	MetricQueuePeak       = "retrolock_relay_queue_peak"
	MetricStepNs          = "retrolock_relay_step_ns"
)

// RegisterMetrics publishes every shard's counters plus the daemon-level
// reader rejects and the aggregated shard step-time histogram. All reads are
// lock-free atomics, safe while the daemon serves.
func RegisterMetrics(r *obs.Registry, d *Daemon) {
	counter := func(name string, l obs.Labels, help string, c *obs.Counter) {
		r.CounterFunc(name, l, help, func() float64 { return float64(c.Value()) })
	}
	for _, s := range d.Shards() {
		s := s
		l := obs.Labels{"shard": strconv.Itoa(s.idx)}
		withReason := func(reason string) obs.Labels {
			return obs.Labels{"shard": strconv.Itoa(s.idx), "reason": reason}
		}
		r.GaugeFunc(MetricSessionsActive, l, "sessions currently hosted", func() float64 { return float64(s.Active()) })
		counter(MetricSessionsTotal, l, "sessions admitted", &s.sessionsTotal)
		counter(MetricSessionsExpired, l, "sessions expired by the TTL sweep", &s.sessionsExpired)
		counter(MetricSessionsClosed, l, "sessions closed by the control plane", &s.sessionsClosed)
		counter(MetricDatagramsIn, l, "datagrams the shard ingested", &s.datagramsIn)
		counter(MetricForwarded, l, "datagrams forwarded to a peer site", &s.forwarded)
		counter(MetricBinds, l, "header-only bind/keepalive datagrams", &s.binds)
		counter(MetricPendingQueued, l, "datagrams parked for a not-yet-bound site", &s.queuedPending)
		counter(MetricRejected, withReason("runt"), "datagrams dropped: shorter than the relay header", &s.rejRunt)
		counter(MetricRejected, withReason("site"), "datagrams dropped: invalid site byte", &s.rejSite)
		counter(MetricRejected, withReason("token"), "datagrams dropped: unknown session token", &s.rejToken)
		counter(MetricRejected, withReason("spoof"), "datagrams dropped: valid token from an unexpected source address", &s.rejSpoof)
		counter(MetricDropped, withReason("queue"), "datagrams dropped at the shard's inbound queue", &s.dropQueue)
		counter(MetricDropped, withReason("pending"), "datagrams evicted from per-session pending rings", &s.dropPending)
		r.GaugeFunc(MetricQueuePeak, l, "inbound-queue high-water mark", func() float64 { return float64(s.queuePeak.Load()) })
	}
	counter(MetricRejected, obs.Labels{"shard": "front", "reason": "runt"},
		"datagrams dropped at a reader: shorter than the relay header", &d.rejRunt)
	counter(MetricRejected, obs.Labels{"shard": "front", "reason": "route"},
		"datagrams dropped at a reader: token names no configured shard", &d.rejRoute)
	r.GaugeFunc("retrolock_relay_sessions", nil, "sessions hosted daemon-wide",
		func() float64 { return float64(d.Sessions()) })
	r.AddHistogram(MetricStepNs, nil, "shard Step duration (ns, real-clock mode)", d.StepTime)
}

// SpoofRejected returns the shard's spoof-reject count (the satellite
// regression tests pin this counter).
func (s *Shard) SpoofRejected() int64 { return s.rejSpoof.Value() }

// Forwarded returns the shard's forwarded-datagram count.
func (s *Shard) Forwarded() int64 { return s.forwarded.Value() }

// QueueDropped returns datagrams dropped at the shard's inbound queue.
func (s *Shard) QueueDropped() int64 { return s.dropQueue.Value() }

// QueuePeak returns the inbound queue's high-water mark.
func (s *Shard) QueuePeak() int64 { return s.queuePeak.Load() }
