//go:build linux && amd64

package relay

// sendmmsg (kernel ≥3.0) postdates the stdlib syscall table freeze, so its
// number is spelled here. recvmmsg (2.6.33) made the freeze and comes from
// syscall.SYS_RECVMMSG.
const sysSENDMMSG = 307
