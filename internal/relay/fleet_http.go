package relay

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"retrolock/internal/obs"
)

// The fleet's ops surface:
//
//	GET /sessions          fleet summary + verdict counts + top-K-worst
//	                       table (text; ?format=json for the raw snapshot)
//	GET /sessions/<token>  one session's grading detail (JSON)
//
// plus the retrolock_relay_session_* registry series. Everything reads the
// last completed tick's snapshot or the fleet's own map — never the shards.

// Fleet metric names.
const (
	MetricSessionTracked    = "retrolock_relay_session_tracked"
	MetricSessionVerdicts   = "retrolock_relay_session_verdicts"
	MetricSessionGraded     = "retrolock_relay_session_graded_total"
	MetricSessionFlips      = "retrolock_relay_session_flips_total"
	MetricSessionCaptures   = "retrolock_relay_session_captures_total"
	MetricSessionSuppressed = "retrolock_relay_session_captures_suppressed_total"
)

// Register publishes the fleet's series and mounts the /sessions handlers
// on the registry's mux.
func (f *Fleet) Register(r *obs.Registry) {
	sum := func(read func(FleetSummary) float64) func() float64 {
		return func() float64 { return read(f.Snapshot().Summary) }
	}
	r.GaugeFunc(MetricSessionTracked, nil, "sessions the fleet aggregator grades",
		sum(func(s FleetSummary) float64 { return float64(s.Tracked) }))
	verdict := func(state string, read func(FleetSummary) float64) {
		r.GaugeFunc(MetricSessionVerdicts, obs.Labels{"state": state},
			"sessions per health verdict at the last tick", sum(read))
	}
	verdict("healthy", func(s FleetSummary) float64 { return float64(s.Healthy) })
	verdict("degraded", func(s FleetSummary) float64 { return float64(s.Degraded) })
	verdict("infeasible", func(s FleetSummary) float64 { return float64(s.Infeasible) })
	r.GaugeFunc(MetricSessionVerdicts, obs.Labels{"state": "stalled"},
		"sessions with no traffic past the stall threshold (also counted infeasible)",
		sum(func(s FleetSummary) float64 { return float64(s.Stalled) }))
	r.CounterFunc(MetricSessionGraded, nil, "per-session health windows evaluated",
		sum(func(s FleetSummary) float64 { return float64(s.Graded) }))
	r.CounterFunc(MetricSessionFlips, nil, "session transitions into degraded or infeasible",
		sum(func(s FleetSummary) float64 { return float64(s.Flips) }))
	r.CounterFunc(MetricSessionCaptures, nil, "anomaly .rkcp bundles emitted",
		sum(func(s FleetSummary) float64 { return float64(s.Captures) }))
	r.CounterFunc(MetricSessionSuppressed, nil, "anomaly captures suppressed by rate or lifetime limits",
		sum(func(s FleetSummary) float64 { return float64(s.Suppressed) }))
	r.Handle("/sessions", f.SessionsHandler())
	r.Handle("/sessions/", f.SessionDetailHandler())
}

// ms renders nanoseconds as fixed-point milliseconds for the text table.
func ms(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e6, 'f', 1, 64)
}

// RenderTable renders the snapshot's summary and top-K table as the fixed-
// width text /sessions serves (exported for retrotop's fleet mode tests).
func RenderTable(snap *FleetSnapshot) string {
	var b strings.Builder
	s := snap.Summary
	fmt.Fprintf(&b, "fleet: %d tracked  %d healthy  %d degraded  %d infeasible  (%d stalled)  window %s\n",
		s.Tracked, s.Healthy, s.Degraded, s.Infeasible, s.Stalled, snap.Window)
	fmt.Fprintf(&b, "lifetime: %d windows graded  %d flips  %d captures (%d suppressed)\n",
		s.Graded, s.Flips, s.Captures, s.Suppressed)
	if len(snap.Top) == 0 {
		b.WriteString("no unhealthy sessions\n")
		return b.String()
	}
	t := obs.Table{Header: []string{
		"token", "shard", "verdict", "since-seen-ms", "gap-mean-ms",
		"resid-p50-ms", "in", "fwd", "parked", "dropped", "bound", "flips",
	}}
	for _, e := range snap.Top {
		verdict := e.Verdict
		if e.Stalled {
			verdict += "(stall)"
		}
		t.AddRow(e.Token, strconv.Itoa(e.Shard), verdict,
			ms(e.SinceSeenNs), ms(e.GapMeanNs), ms(e.ResidP50Ns),
			strconv.FormatInt(e.In, 10), strconv.FormatInt(e.Forwarded, 10),
			strconv.FormatInt(e.Parked, 10), strconv.FormatInt(e.Dropped, 10),
			e.Bound, strconv.FormatInt(e.Flips, 10))
	}
	b.WriteString(t.String())
	return b.String()
}

// SessionsHandler serves the fleet summary and top-K table.
func (f *Fleet) SessionsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := f.Snapshot()
		// The snapshot is one tick old at best — a cached copy is arbitrarily
		// stale, so tell intermediaries not to keep it.
		w.Header().Set("Cache-Control", "no-store")
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(RenderTable(snap)))
	})
}

// SessionDetail is one session's grading state for the detail endpoint.
type SessionDetail struct {
	Token       string            `json:"token"`
	Shard       int               `json:"shard"`
	Verdict     string            `json:"verdict"`
	Stalled     bool              `json:"stalled"`
	Signals     obs.HealthSignals `json:"signals"`
	SinceSeenNs int64             `json:"since_seen_ns"`
	In          [2]int64          `json:"in"`
	Forwarded   int64             `json:"forwarded"`
	Parked      int64             `json:"parked"`
	Dropped     int64             `json:"dropped"`
	Bound       string            `json:"bound"`
	Flips       int64             `json:"flips"`
	Captured    bool              `json:"captured"`
}

// Detail returns one tracked session's grading state.
func (f *Fleet) Detail(tok Token) (SessionDetail, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs, ok := f.sessions[tok]
	if !ok {
		return SessionDetail{}, false
	}
	d := SessionDetail{
		Token:    fs.token.String(),
		Shard:    fs.shard,
		Verdict:  fs.verdict.String(),
		Stalled:  fs.stalled,
		Signals:  fs.health.Signals(),
		Flips:    fs.flips,
		Captured: fs.captured,
	}
	ref := statRef{token: fs.token, stats: fs.stats, gen: fs.gen}
	if ref.valid() {
		st := fs.stats
		d.SinceSeenNs = f.clock.Now().UnixNano() - st.lastSeenNs.Load()
		d.In = [2]int64{st.in[0].Load(), st.in[1].Load()}
		d.Forwarded = st.fwd.Load()
		d.Parked = st.parked.Load()
		d.Dropped = st.dropped.Load()
		mask := st.boundMask.Load()
		bound := [2]byte{'-', '-'}
		if mask&1 != 0 {
			bound[0] = 'A'
		}
		if mask&2 != 0 {
			bound[1] = 'B'
		}
		d.Bound = string(bound[:])
	}
	return d, true
}

// SessionDetailHandler serves GET /sessions/<token> as JSON.
func (f *Fleet) SessionDetailHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		raw := strings.TrimPrefix(req.URL.Path, "/sessions/")
		tok, err := ParseToken(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad session token %q: %v", raw, err), http.StatusBadRequest)
			return
		}
		d, ok := f.Detail(tok)
		if !ok {
			http.Error(w, fmt.Sprintf("session %s not tracked (departed, or the fleet has not ticked yet)", tok),
				http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d)
	})
}
