package relay

// pendingRing buffers datagrams addressed to a session site whose transport
// address is not yet known (the peer has a token but has not sent its first
// datagram). It is the relay-side sibling of the PR 1 bounded input rings:
// fixed slot count, an explicit byte budget, and drop-oldest eviction — a
// lockstep stream supersedes its own history, so when the budget is hit the
// freshest datagrams win.
//
// Slots own pooled MaxDatagram buffers, acquired on first use and returned
// on free(), so a session's worst-case memory is slots*MaxDatagram plus the
// struct itself, and the steady state allocates nothing.
type pendingRing struct {
	slots       [][]byte
	lens        []int
	head, count int
	bytes       int // sum of lens over the queued window
	maxBytes    int
	dropped     int
}

func newPendingRing(slots, maxBytes int) *pendingRing {
	return &pendingRing{
		slots:    make([][]byte, slots),
		lens:     make([]int, slots),
		maxBytes: maxBytes,
	}
}

// push copies p into the ring, evicting oldest entries while either bound
// (slot count or byte budget) is exceeded. It reports how many datagrams
// were evicted.
func (r *pendingRing) push(p []byte) int {
	if len(p) > MaxDatagram || len(r.slots) == 0 {
		r.dropped++
		return 1
	}
	evicted := 0
	for r.count > 0 && (r.count == len(r.slots) || r.bytes+len(p) > r.maxBytes) {
		r.bytes -= r.lens[r.head]
		r.head = (r.head + 1) % len(r.slots)
		r.count--
		r.dropped++
		evicted++
	}
	if r.bytes+len(p) > r.maxBytes {
		// Budget smaller than this single datagram.
		r.dropped++
		return evicted + 1
	}
	i := (r.head + r.count) % len(r.slots)
	if r.slots[i] == nil {
		r.slots[i] = getBuf()
	}
	r.slots[i] = append(r.slots[i][:0], p...)
	r.lens[i] = len(p)
	r.bytes += len(p)
	r.count++
	return evicted
}

// drain invokes fn for each queued datagram, oldest first, and empties the
// ring. The slice passed to fn borrows the ring's slot buffer; fn must not
// retain it past its return.
func (r *pendingRing) drain(fn func(p []byte)) {
	for r.count > 0 {
		i := r.head
		fn(r.slots[i][:r.lens[i]])
		r.head = (r.head + 1) % len(r.slots)
		r.count--
	}
	r.bytes = 0
	r.head = 0
}

// free returns every slot buffer to the pool.
func (r *pendingRing) free() {
	for i, b := range r.slots {
		if b != nil {
			putBuf(b)
			r.slots[i] = nil
		}
	}
	r.count, r.bytes, r.head = 0, 0, 0
}
