package relay

import (
	"net"
	"net/netip"

	"retrolock/internal/lobby"
)

// LobbyPlacer adapts a Daemon to the lobby's admission interface: the lobby
// reserves sessions here, forwards client rebinds, and releases expired
// reservations. The lobby never sees relay internals (tokens cross as their
// 16-hex-digit wire form) and the relay never parses lobby traffic.
type LobbyPlacer struct {
	D *Daemon
	// Advertise overrides the front address handed to clients (e.g. the
	// host's public address when the daemon binds a wildcard). Empty means
	// the placed shard's own front address.
	Advertise string
}

// Place implements lobby.Placer.
func (p LobbyPlacer) Place() (lobby.Placement, error) {
	pl, err := p.D.Place()
	if err != nil {
		return lobby.Placement{}, err
	}
	addr := pl.Addr
	if p.Advertise != "" {
		addr = p.Advertise
	}
	return lobby.Placement{Token: pl.Token.String(), Addr: addr}, nil
}

// Rebind implements lobby.Placer: a placed client re-announced from a new
// address, so move the session's slot through the control plane (the data
// path refuses to re-learn addresses — that is the spoofing guard).
func (p LobbyPlacer) Rebind(token string, site int, addr net.Addr) error {
	tok, err := ParseToken(token)
	if err != nil {
		return err
	}
	a, err := toAddr(addr)
	if err != nil {
		return err
	}
	p.D.Rebind(tok, site, a)
	return nil
}

// Release implements lobby.Placer.
func (p LobbyPlacer) Release(token string) error {
	tok, err := ParseToken(token)
	if err != nil {
		return err
	}
	p.D.CloseSession(tok)
	return nil
}

// toAddr converts a net.Addr (as the lobby's PacketConn reports sources)
// into the relay's comparable address form.
func toAddr(addr net.Addr) (Addr, error) {
	if ua, ok := addr.(*net.UDPAddr); ok {
		ap := ua.AddrPort()
		return Addr{AP: netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())}, nil
	}
	ap, err := netip.ParseAddrPort(addr.String())
	if err != nil {
		return Addr{}, err
	}
	return Addr{AP: netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())}, nil
}

var _ lobby.Placer = LobbyPlacer{}
