// Package replay records the merged input sequence of a game session and
// replays it against a fresh machine, verifying the determinism assumption
// the whole approach rests on (§2, §5: "with the same initial state and same
// input sequence, the VM always produces the same sequence of output
// states").
//
// A Log doubles as a match recording: replaying it on any machine booted
// from the same ROM reproduces the session frame by frame, which is also how
// divergence bugs are diagnosed in the field.
package replay

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Machine is the minimal game VM surface replay needs (satisfied by
// vm.Console and by core.Machine implementations).
type Machine interface {
	StepFrame(input uint16)
	StateHash() uint64
}

// CheckpointEvery is the default frame interval at which state hashes are
// embedded in a recording.
const CheckpointEvery = 60

// Log is a recorded input sequence with periodic state checkpoints.
type Log struct {
	// Game names the ROM this was recorded against.
	Game string
	// CheckpointEvery is the hash checkpoint interval (0: only final).
	CheckpointEvery int
	// Inputs holds the merged input word of every executed frame.
	Inputs []uint16
	// Checkpoints holds the state hash after frames k*CheckpointEvery-1
	// (i.e. Checkpoints[0] is the hash after CheckpointEvery frames).
	Checkpoints []uint64
	// Final is the state hash after the last frame.
	Final uint64
}

// Recorder captures inputs and checkpoints as a session progresses.
type Recorder struct {
	log     Log
	machine Machine
}

// NewRecorder starts a recording for machine. checkpointEvery <= 0 uses the
// default interval.
func NewRecorder(game string, machine Machine, checkpointEvery int) *Recorder {
	if checkpointEvery <= 0 {
		checkpointEvery = CheckpointEvery
	}
	return &Recorder{
		log:     Log{Game: game, CheckpointEvery: checkpointEvery},
		machine: machine,
	}
}

// OnFrame records one executed frame. Call it after machine.StepFrame with
// the merged input that was fed in (core.Session's onFrame callback fits
// directly).
func (r *Recorder) OnFrame(input uint16) {
	r.log.Inputs = append(r.log.Inputs, input)
	if len(r.log.Inputs)%r.log.CheckpointEvery == 0 {
		r.log.Checkpoints = append(r.log.Checkpoints, r.machine.StateHash())
	}
	r.log.Final = r.machine.StateHash()
}

// Log returns the recording so far (shallow copy; slices shared).
func (r *Recorder) Log() Log { return r.log }

// Verify replays the log against a freshly booted machine and checks every
// checkpoint and the final hash. A mismatch means the machine is not
// deterministic — or was booted from different initial state.
func (l *Log) Verify(fresh Machine) error {
	for i, in := range l.Inputs {
		fresh.StepFrame(in)
		frame := i + 1
		if l.CheckpointEvery > 0 && frame%l.CheckpointEvery == 0 {
			idx := frame/l.CheckpointEvery - 1
			if idx < len(l.Checkpoints) && fresh.StateHash() != l.Checkpoints[idx] {
				return fmt.Errorf("replay: divergence at frame %d (checkpoint %d): %#x != %#x",
					frame, idx, fresh.StateHash(), l.Checkpoints[idx])
			}
		}
	}
	if len(l.Inputs) > 0 && fresh.StateHash() != l.Final {
		return fmt.Errorf("replay: final state %#x differs from recorded %#x", fresh.StateHash(), l.Final)
	}
	return nil
}

// Binary container: magic, version, game name, checkpoint interval, inputs,
// checkpoints, final hash, CRC.
const (
	logMagic   = "RKRP"
	logVersion = 1
)

// Encode serializes the log.
func (l *Log) Encode() []byte {
	buf := make([]byte, 0, 32+len(l.Game)+2*len(l.Inputs)+8*len(l.Checkpoints))
	buf = append(buf, logMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, logVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(l.Game)))
	buf = append(buf, l.Game...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.CheckpointEvery))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.Inputs)))
	for _, in := range l.Inputs {
		buf = binary.LittleEndian.AppendUint16(buf, in)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.Checkpoints)))
	for _, h := range l.Checkpoints {
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	buf = binary.LittleEndian.AppendUint64(buf, l.Final)
	h := fnv.New32a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint32(buf, h.Sum32())
}

// Decode parses a serialized log.
func Decode(data []byte) (*Log, error) {
	if len(data) < 8+4 {
		return nil, fmt.Errorf("replay: log of %d bytes too short", len(data))
	}
	if string(data[:4]) != logMagic {
		return nil, fmt.Errorf("replay: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != logVersion {
		return nil, fmt.Errorf("replay: unsupported version %d", v)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	h := fnv.New32a()
	h.Write(body)
	if h.Sum32() != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("replay: checksum mismatch (log corrupt)")
	}
	l := &Log{}
	off := 6
	nameLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+nameLen > len(body) {
		return nil, fmt.Errorf("replay: truncated name")
	}
	l.Game = string(data[off : off+nameLen])
	off += nameLen
	if off+8 > len(body) {
		return nil, fmt.Errorf("replay: truncated header")
	}
	l.CheckpointEvery = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	nIn := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+2*nIn+4 > len(body) {
		return nil, fmt.Errorf("replay: truncated inputs")
	}
	l.Inputs = make([]uint16, nIn)
	for i := range l.Inputs {
		l.Inputs[i] = binary.LittleEndian.Uint16(data[off:])
		off += 2
	}
	nCp := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+8*nCp+8 > len(body) {
		return nil, fmt.Errorf("replay: truncated checkpoints")
	}
	l.Checkpoints = make([]uint64, nCp)
	for i := range l.Checkpoints {
		l.Checkpoints[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	l.Final = binary.LittleEndian.Uint64(data[off:])
	return l, nil
}
