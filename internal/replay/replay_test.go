package replay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"retrolock/internal/rom/games"
	"retrolock/internal/vm"
)

func bootGame(t *testing.T, name string) *vm.Console {
	t.Helper()
	c, err := games.MustLoad(name).Boot()
	if err != nil {
		t.Fatalf("boot %s: %v", name, err)
	}
	return c
}

func TestRecordAndVerifyAllGames(t *testing.T) {
	for _, name := range games.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c := bootGame(t, name)
			rec := NewRecorder(name, c, 30)
			rng := rand.New(rand.NewSource(11))
			for f := 0; f < 400; f++ {
				in := uint16(rng.Intn(0x10000))
				c.StepFrame(in)
				rec.OnFrame(in)
			}
			log := rec.Log()
			if len(log.Checkpoints) != 400/30 {
				t.Fatalf("checkpoints = %d, want %d", len(log.Checkpoints), 400/30)
			}
			if err := log.Verify(bootGame(t, name)); err != nil {
				t.Fatalf("verify failed: %v (VM nondeterministic?)", err)
			}
		})
	}
}

func TestVerifyDetectsDifferentROM(t *testing.T) {
	c := bootGame(t, "pong")
	rec := NewRecorder("pong", c, 60)
	for f := 0; f < 120; f++ {
		c.StepFrame(uint16(f))
		rec.OnFrame(uint16(f))
	}
	log := rec.Log()
	if err := log.Verify(bootGame(t, "tanks")); err == nil {
		t.Fatal("replaying a pong log on tanks verified successfully")
	}
}

func TestVerifyDetectsTamperedInputs(t *testing.T) {
	c := bootGame(t, "duel")
	rec := NewRecorder("duel", c, 30)
	rng := rand.New(rand.NewSource(3))
	for f := 0; f < 200; f++ {
		in := uint16(rng.Intn(0x10000))
		c.StepFrame(in)
		rec.OnFrame(in)
	}
	log := rec.Log()
	log.Inputs[50] ^= 0x0010 // flip a button mid-recording
	if err := log.Verify(bootGame(t, "duel")); err == nil {
		t.Fatal("tampered input sequence verified successfully")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := &Log{
		Game:            "pong",
		CheckpointEvery: 60,
		Inputs:          []uint16{1, 2, 3, 0xFFFF},
		Checkpoints:     []uint64{0xDEADBEEF},
		Final:           0xCAFEBABE12345678,
	}
	got, err := Decode(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Game != l.Game || got.CheckpointEvery != l.CheckpointEvery || got.Final != l.Final {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Inputs) != 4 || got.Inputs[3] != 0xFFFF {
		t.Fatalf("inputs: %v", got.Inputs)
	}
	if len(got.Checkpoints) != 1 || got.Checkpoints[0] != 0xDEADBEEF {
		t.Fatalf("checkpoints: %v", got.Checkpoints)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	l := &Log{Game: "g", CheckpointEvery: 1, Inputs: []uint16{7}, Checkpoints: []uint64{9}, Final: 9}
	data := l.Encode()
	if _, err := Decode(data[:6]); err == nil {
		t.Error("truncated log accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	flip := append([]byte{}, data...)
	flip[10] ^= 0xFF
	if _, err := Decode(flip); err == nil {
		t.Error("corrupted body accepted")
	}
	ver := append([]byte{}, data...)
	ver[4] = 0xEE
	if _, err := Decode(ver); err == nil {
		t.Error("bad version accepted")
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(game string, inputs []uint16, cps []uint64, final uint64) bool {
		if len(game) > 1000 {
			game = game[:1000]
		}
		l := &Log{Game: game, CheckpointEvery: 60, Inputs: inputs, Checkpoints: cps, Final: final}
		got, err := Decode(l.Encode())
		if err != nil {
			return false
		}
		if got.Game != game || got.Final != final || len(got.Inputs) != len(inputs) || len(got.Checkpoints) != len(cps) {
			return false
		}
		for i := range inputs {
			if got.Inputs[i] != inputs[i] {
				return false
			}
		}
		for i := range cps {
			if got.Checkpoints[i] != cps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyLogVerifiesTrivially(t *testing.T) {
	l := &Log{Game: "pong", CheckpointEvery: 60}
	if err := l.Verify(bootGame(t, "pong")); err != nil {
		t.Fatalf("empty log failed verify: %v", err)
	}
}
