package core

import (
	"encoding/binary"
	"fmt"
)

// Wire format. All messages are single datagrams, little endian, and begin
// with a one-byte type and the sender's site number.
//
// Sync message (the paper's sd, §3.1, plus RTT piggyback fields):
//
//	offset size  field
//	0      1     msgSync
//	1      1     sender site (low 7 bits) | merged flag (bit 7)
//	2      4     ack        — sd[0]: last frame received from the peer
//	6      4     from       — sd[1]: first frame of the payload
//	10     4     to         — sd[2]: last frame of the payload
//	14     4     sendTime   — sender clock, µs mod 2^32
//	18     4     echoTime   — freshest sendTime received from the peer
//	22     4     echoDelay  — 1 + µs the echo was held before sending;
//	              0 means "no echo yet". The +1 bias makes the have-echo
//	              state explicit on the wire: a message stamped exactly 0 µs
//	              after the epoch and echoed with zero hold is still a
//	              valid RTT sample, not a missing one.
//	26     4     execFrame  — 1 + the newest frame the sender began
//	              executing; 0 means "none yet" (same bias trick as
//	              echoDelay: frame 0 stays representable).
//	30     4     execTime   — sender clock at that frame's begin, µs mod
//	              2^32. Together with the receiver's clock-offset estimate
//	              this aligns the two sites' execution timelines, feeding
//	              the live cross-site input-latency and skew histograms
//	              (internal/span).
//	34     2n    inputs     — the sender's partial inputs for from..to
//
// The payload length is fully determined by from/to and must match the
// datagram size exactly; ranges longer than maxInputsPerMsg are rejected
// outright (a correct sender never produces them), so a hostile datagram
// can never make the receiver buffer more than one bounded payload.
//
// Handshake (session control, §3.2):
//
//	msgReady: sent by every non-master until the master's go arrives.
//	msgGo:    broadcast by the master once every peer reported ready.
//
// Late join (journal extension): msgJoin requests a snapshot; msgSnapChunk
// carries one piece of the savestate; msgSnapAck confirms reassembly.
const (
	msgSync      = byte(1)
	msgReady     = byte(2)
	msgGo        = byte(3)
	msgJoin      = byte(4)
	msgSnapChunk = byte(5)
	msgSnapAck   = byte(6)

	syncHeaderLen = 34

	// maxInputsPerMsg bounds a sync payload; longer backlogs are sent
	// across several paced messages.
	maxInputsPerMsg = 512
)

// MaxInputsPerMsg is the largest input range one sync message carries. It is
// exported for harnesses that assert memory bounds: the input ring's window
// never exceeds O(lag + MaxInputsPerMsg) regardless of session length.
const MaxInputsPerMsg = maxInputsPerMsg

// syncMsg is a decoded sync message. Merged marks a forwarded stream: the
// payload carries complete input words (every player's bits) rather than
// only the sender's partial inputs. Players send merged streams to observer
// sites, which lets a spectator or late joiner follow the game through a
// single connection to one player.
type syncMsg struct {
	Sender    int
	Merged    bool
	Ack       int32
	From      int32
	To        int32
	SendTime  uint32
	EchoTime  uint32
	EchoDelay uint32
	HasEcho   bool // EchoTime/EchoDelay carry a real echo (wire: echoDelay != 0)
	// ExecFrame/ExecTime report the newest frame the sender began executing
	// and the sender-clock instant of that begin (µs mod 2^32); HasExec is
	// false before the sender executed anything (wire: execFrame == 0).
	ExecFrame int32
	ExecTime  uint32
	HasExec   bool
	Inputs    []uint16
}

// encodeSync serializes m, reusing buf when it is large enough.
func encodeSync(buf []byte, m syncMsg) []byte {
	n := syncHeaderLen + 2*len(m.Inputs)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	buf[0] = msgSync
	buf[1] = byte(m.Sender) & 0x7F
	if m.Merged {
		buf[1] |= 0x80
	}
	binary.LittleEndian.PutUint32(buf[2:], uint32(m.Ack))
	binary.LittleEndian.PutUint32(buf[6:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[10:], uint32(m.To))
	binary.LittleEndian.PutUint32(buf[14:], m.SendTime)
	binary.LittleEndian.PutUint32(buf[18:], m.EchoTime)
	delay := uint32(0)
	if m.HasEcho {
		delay = m.EchoDelay + 1 // biased; see the wire-format comment
	}
	binary.LittleEndian.PutUint32(buf[22:], delay)
	exec := uint32(0)
	if m.HasExec {
		exec = uint32(m.ExecFrame) + 1 // biased; see the wire-format comment
	}
	binary.LittleEndian.PutUint32(buf[26:], exec)
	binary.LittleEndian.PutUint32(buf[30:], m.ExecTime)
	for i, in := range m.Inputs {
		binary.LittleEndian.PutUint16(buf[syncHeaderLen+2*i:], in)
	}
	return buf
}

// decodeSync parses a sync message.
func decodeSync(p []byte) (syncMsg, error) {
	return decodeSyncInto(p, nil)
}

// decodeSyncInto parses a sync message, decoding the input payload into
// scratch when its capacity suffices — the hot receive path hands in a
// per-connection scratch slice so steady-state decoding never allocates.
// The returned Inputs alias scratch; the caller owns both.
func decodeSyncInto(p []byte, scratch []uint16) (syncMsg, error) {
	if len(p) < syncHeaderLen || p[0] != msgSync {
		return syncMsg{}, fmt.Errorf("core: malformed sync message (%d bytes)", len(p))
	}
	m := syncMsg{
		Sender:   int(p[1] & 0x7F),
		Merged:   p[1]&0x80 != 0,
		Ack:      int32(binary.LittleEndian.Uint32(p[2:])),
		From:     int32(binary.LittleEndian.Uint32(p[6:])),
		To:       int32(binary.LittleEndian.Uint32(p[10:])),
		SendTime: binary.LittleEndian.Uint32(p[14:]),
		EchoTime: binary.LittleEndian.Uint32(p[18:]),
	}
	if delay := binary.LittleEndian.Uint32(p[22:]); delay != 0 {
		m.HasEcho = true
		m.EchoDelay = delay - 1
	}
	if exec := binary.LittleEndian.Uint32(p[26:]); exec != 0 {
		m.HasExec = true
		m.ExecFrame = int32(exec - 1)
		m.ExecTime = binary.LittleEndian.Uint32(p[30:])
	}
	// 64-bit arithmetic: a hostile from/to pair must not wrap int32 into a
	// small "valid" payload length.
	want := int64(m.To) - int64(m.From) + 1
	if want < 0 {
		want = 0
	}
	if want > maxInputsPerMsg {
		return syncMsg{}, fmt.Errorf("core: sync range [%d,%d] exceeds %d inputs", m.From, m.To, maxInputsPerMsg)
	}
	if int64(len(p)) != syncHeaderLen+2*want {
		return syncMsg{}, fmt.Errorf("core: sync payload length %d does not match range [%d,%d]",
			len(p)-syncHeaderLen, m.From, m.To)
	}
	if want > 0 {
		if int64(cap(scratch)) < want {
			scratch = make([]uint16, want)
		}
		m.Inputs = scratch[:want]
		for i := range m.Inputs {
			m.Inputs[i] = binary.LittleEndian.Uint16(p[syncHeaderLen+2*i:])
		}
	}
	return m, nil
}

// encodeCtl builds a two-byte control message (ready/go/join).
func encodeCtl(kind byte, sender int) []byte {
	return []byte{kind, byte(sender)}
}

// snapChunk is one piece of a savestate transfer. The payload stream is
// zero-run RLE compressed; RawLen is the uncompressed savestate size.
type snapChunk struct {
	Sender int
	Frame  int32 // frame the snapshot represents (next frame to execute)
	Seq    uint16
	Total  uint16
	RawLen uint32
	Data   []byte
}

const snapHeaderLen = 16

// SnapChunkPayload is the savestate bytes carried per chunk; small enough
// for any UDP path (the full RK-32 savestate takes ~9 chunks).
const SnapChunkPayload = 8 * 1024

func encodeSnapChunk(c snapChunk) []byte {
	buf := make([]byte, snapHeaderLen+len(c.Data))
	buf[0] = msgSnapChunk
	buf[1] = byte(c.Sender)
	binary.LittleEndian.PutUint32(buf[2:], uint32(c.Frame))
	binary.LittleEndian.PutUint16(buf[6:], c.Seq)
	binary.LittleEndian.PutUint16(buf[8:], c.Total)
	binary.LittleEndian.PutUint32(buf[10:], c.RawLen)
	binary.LittleEndian.PutUint16(buf[14:], uint16(len(c.Data)))
	copy(buf[snapHeaderLen:], c.Data)
	return buf
}

func decodeSnapChunk(p []byte) (snapChunk, error) {
	if len(p) < snapHeaderLen || p[0] != msgSnapChunk {
		return snapChunk{}, fmt.Errorf("core: malformed snapshot chunk (%d bytes)", len(p))
	}
	c := snapChunk{
		Sender: int(p[1]),
		Frame:  int32(binary.LittleEndian.Uint32(p[2:])),
		Seq:    binary.LittleEndian.Uint16(p[6:]),
		Total:  binary.LittleEndian.Uint16(p[8:]),
		RawLen: binary.LittleEndian.Uint32(p[10:]),
	}
	n := int(binary.LittleEndian.Uint16(p[14:]))
	if len(p) != snapHeaderLen+n {
		return snapChunk{}, fmt.Errorf("core: snapshot chunk length mismatch")
	}
	c.Data = make([]byte, n)
	copy(c.Data, p[snapHeaderLen:])
	return c, nil
}
