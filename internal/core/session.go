package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/span"
	"retrolock/internal/vclock"
)

// Session wires a machine, an InputSync and a Pacer into the paper's
// Algorithm 1 loop:
//
//	repeat
//	    BeginFrameTiming()
//	    I  = GetInput()
//	    I' = SyncInput(I, Frame)
//	    S' = Transition(I', S)
//	    EndFrameTiming()
//	    Frame++
//	until end of game
type Session struct {
	cfg     Config
	clock   vclock.Clock
	sync    *InputSync
	pacer   Pacer
	machine Machine

	// frame is the next frame to execute. The frame loop is the only
	// writer; atomic access lets Frame() and registry gauges poll it live.
	frame atomic.Int64

	// tele is the optional observability bundle (nil-safe hooks).
	tele *obs.SessionObs

	// Adaptive-lag ablation state (adaptive is nil when disabled; the
	// counters are atomic so LagStats may be polled while frames run).
	adaptive   *AdaptiveLag
	lagChanges atomic.Int64
	lagSum     atomic.Int64

	// Divergence detection (nil when disabled).
	hashes *hashLog

	// Black-box flight recorder (nil when none is attached; see
	// SetFlightRecorder). stallThreshold caches the recorder's stall
	// trigger so the frame loop compares a plain field; stallFired keeps
	// the trigger one-shot; desyncs is atomic for live metric scrapes.
	flight         FlightRecorder
	stallThreshold time.Duration
	stallFired     bool
	desyncs        atomic.Int64

	// Late-join serving state.
	joiners map[int]*joinTransfer

	// queuedJoiners holds peers handed in from other goroutines (e.g. a
	// live accept loop); RunFrames admits them at frame boundaries.
	queuedMu      sync.Mutex
	queuedJoiners []Peer
}

// joinTransfer tracks one in-progress snapshot hand-off to a late joiner.
type joinTransfer struct {
	peer   *peerState
	chunks [][]byte
	frame  int
	next   int
	acked  bool
	lastTx time.Time
}

// FrameInfo is delivered to the observer callback after each executed frame.
type FrameInfo struct {
	// Frame is the executed frame number.
	Frame int
	// Start is the BeginFrameTiming instant of this frame.
	Start time.Time
	// Input is the merged input word fed to the machine.
	Input uint16
	// Hash is the machine state hash after the transition.
	Hash uint64
}

// SessionOption customizes a Session.
type SessionOption func(*Session)

// WithPacer substitutes the frame pacer (e.g. NaiveTimer for the ablation).
func WithPacer(p Pacer) SessionOption {
	return func(s *Session) { s.pacer = p }
}

// AdaptiveLag configures the adaptive-local-lag ablation: the lag tracks
// ceil((RTT/2 + Margin) / TimePerFrame), re-evaluated every Every frames and
// clamped to [Min, Max]. The paper argues against this design (§4.2: "it
// does not pay off"); the ablation quantifies the argument.
type AdaptiveLag struct {
	Min, Max int
	Margin   time.Duration
	Every    int // frames between re-evaluations (default 60)
}

// WithAdaptiveLag enables adaptive lag on the session.
func WithAdaptiveLag(cfg AdaptiveLag) SessionOption {
	if cfg.Every <= 0 {
		cfg.Every = 60
	}
	if cfg.Max <= 0 {
		cfg.Max = 30
	}
	return func(s *Session) { s.adaptive = &cfg }
}

// NewSession builds a session for one site. epoch anchors message
// timestamps (any instant; the clock's start works well).
func NewSession(cfg Config, clock vclock.Clock, epoch time.Time, machine Machine, peers []Peer, opts ...SessionOption) (*Session, error) {
	if machine == nil {
		return nil, errors.New("core: nil machine")
	}
	sync, err := NewInputSync(cfg, clock, epoch, peers)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:     sync.Config(),
		clock:   clock,
		sync:    sync,
		pacer:   NewFrameTimer(sync.Config(), clock),
		machine: machine,
		joiners: make(map[int]*joinTransfer),
	}
	s.frame.Store(int64(sync.Config().StartFrame))
	if interval := s.cfg.HashInterval; interval > 0 {
		s.hashes = newHashLog(interval)
		sync.OnHash = s.hashes.remote
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Sync exposes the input-sync state (stats, RTT, master view).
func (s *Session) Sync() *InputSync { return s.sync }

// Frame reports the next frame to execute. Safe to call from any goroutine.
func (s *Session) Frame() int { return int(s.frame.Load()) }

// SetObs attaches an observability bundle to the session and its sync
// module (nil detaches). Call before the frame loop starts.
func (s *Session) SetObs(o *obs.SessionObs) {
	s.tele = o
	s.sync.SetObs(o)
}

// SetJournal attaches an input-journey span journal to the session and its
// sync module (nil detaches). Call before the frame loop starts; every stamp
// on the hot path is nil-safe and alloc-free (see internal/span).
func (s *Session) SetJournal(j *span.Journal) { s.sync.SetJournal(j) }

// Journal returns the attached span journal (nil when none).
func (s *Session) Journal() *span.Journal { return s.sync.Journal() }

// Machine returns the wrapped game machine.
func (s *Session) Machine() Machine { return s.machine }

// handshakeResendEvery paces READY/GO retransmissions during startup.
const handshakeResendEvery = 10 * time.Millisecond

// Handshake runs the session-control protocol (§3.2): non-master sites
// announce READY until the master's GO arrives; the master waits for every
// peer's READY and then broadcasts GO. The two sites therefore start within
// one round trip of each other. Sync messages double as an implicit GO so a
// lost GO cannot wedge a slave.
func (s *Session) Handshake(timeout time.Duration) error {
	deadline := s.clock.Now().Add(timeout)
	if s.cfg.SiteNo == 0 {
		ready := make(map[int]bool, len(s.sync.peers))
		var lastTx time.Time
		for len(ready) < len(s.sync.peers) {
			if s.clock.Now().After(deadline) {
				return fmt.Errorf("core: handshake timed out with %d/%d peers ready", len(ready), len(s.sync.peers))
			}
			for _, p := range s.sync.peers {
				for {
					raw, ok := p.Conn.TryRecv()
					if !ok {
						break
					}
					if len(raw) >= 2 && raw[0] == msgReady {
						ready[p.Site] = true
					}
				}
			}
			// Nudge slow peers: an early GO to already-ready peers
			// releases them while the rest report in.
			now := s.clock.Now()
			if now.Sub(lastTx) >= handshakeResendEvery {
				lastTx = now
				for site := range ready {
					_ = s.sync.peers[site].Conn.Send(encodeCtl(msgGo, s.cfg.SiteNo))
				}
			}
			s.clock.Sleep(s.cfg.PollInterval)
		}
		// Everyone is ready: broadcast GO a few times for loss cover.
		for i := 0; i < 3; i++ {
			for _, p := range s.sync.peers {
				_ = p.Conn.Send(encodeCtl(msgGo, s.cfg.SiteNo))
			}
		}
		return nil
	}

	// Non-master: READY until GO (or any sync message) appears.
	var lastTx time.Time
	for {
		if s.clock.Now().After(deadline) {
			return errors.New("core: handshake timed out waiting for the master's go")
		}
		now := s.clock.Now()
		if now.Sub(lastTx) >= handshakeResendEvery {
			lastTx = now
			for _, p := range s.sync.peers {
				_ = p.Conn.Send(encodeCtl(msgReady, s.cfg.SiteNo))
			}
		}
		for _, p := range s.sync.peers {
			for {
				raw, ok := p.Conn.TryRecv()
				if !ok {
					break
				}
				if len(raw) == 0 {
					continue
				}
				switch raw[0] {
				case msgGo:
					return nil
				case msgSync:
					// The game has started; treat as GO but do
					// not lose the message.
					s.sync.handle(p, raw)
					return nil
				}
			}
		}
		s.clock.Sleep(s.cfg.PollInterval)
	}
}

// RunFrames executes n frames of Algorithm 1. localInput supplies this
// site's raw input word per frame (ignored for observers); onFrame, when
// non-nil, observes each executed frame.
func (s *Session) RunFrames(n int, localInput func(frame int) uint16, onFrame func(FrameInfo)) error {
	defer s.recoverPanic()
	for i := 0; i < n; i++ {
		frame := int(s.frame.Load())
		// Admit queued joiners here, where the machine state is exactly
		// "before frame s.frame" — the snapshot frame AddJoiner records.
		s.admitQueuedJoiners()
		s.adaptLag(frame)
		s.pacer.BeginFrame(frame, s.sync.MasterView()) // step 5
		s.tele.FrameStart(frame, s.pacer.FrameStart())
		// The exec report: stamps the journal's Executed hop and piggybacks
		// this frame's begin instant on outgoing sync traffic so the peer
		// can close its cross-site spans.
		s.sync.ReportExec(frame, s.pacer.FrameStart())
		var raw uint16
		if localInput != nil {
			raw = localInput(frame) // step 6
		}
		merged, err := s.sync.SyncInput(raw, frame) // step 7
		if err != nil {
			err = fmt.Errorf("frame %d: %w", frame, err)
			s.reportFailure(err)
			return err
		}
		if w := s.sync.LastWait(); s.stallThreshold > 0 && w >= s.stallThreshold && !s.stallFired {
			// The wait cleared (the frame is progressing), but a freeze
			// this long is an incident worth a black-box dump even though
			// the session survives it.
			s.stallFired = true
			s.incident(IncidentStall, fmt.Errorf("core: frame %d stalled %v (threshold %v)", frame, w, s.stallThreshold))
		}
		s.machine.StepFrame(merged) // step 8 (and 9: the VM renders)
		if s.sync.journal != nil {
			s.sync.batch.Rendered(int64(frame), s.clock.Now())
			s.sync.batch.Flush()
		}
		hash := s.machine.StateHash()
		if s.flight != nil {
			s.flight.RecordFrame(frame, merged, hash, s.sync.LastWait())
		}
		if s.hashes != nil {
			s.hashes.record(frame, hash)
			if frame%s.cfg.HashInterval == 0 {
				s.broadcastHash(frame, hash)
			}
			if err := s.hashes.err(); err != nil {
				s.reportFailure(err)
				return err
			}
		}
		s.serveJoiners()
		if onFrame != nil {
			onFrame(FrameInfo{
				Frame: frame,
				Start: s.pacer.FrameStart(),
				Input: merged,
				Hash:  hash,
			})
		}
		s.pacer.EndFrame() // step 10
		s.tele.FrameEnd(frame, s.pacer.FrameStart(), s.clock.Now())
		s.frame.Add(1) // step 11
	}
	return nil
}

// adaptLag re-targets the local lag from the live RTT estimate (ablation).
func (s *Session) adaptLag(frame int) {
	a := s.adaptive
	if a == nil {
		return
	}
	s.lagSum.Add(int64(s.sync.Lag()))
	if frame%a.Every != 0 {
		return
	}
	// Use the worst RTT across player peers so N-site sessions stay safe.
	var rtt time.Duration
	for site := range s.sync.peers {
		if site < s.cfg.NumPlayers {
			if r := s.sync.RTTTo(site); r > rtt {
				rtt = r
			}
		}
	}
	if rtt == 0 {
		return // no estimate yet
	}
	tpf := s.cfg.TimePerFrame()
	target := int((rtt/2 + a.Margin + tpf - 1) / tpf)
	if target < a.Min {
		target = a.Min
	}
	if target > a.Max {
		target = a.Max
	}
	if target != s.sync.Lag() {
		s.sync.SetLag(target)
		if ft, ok := s.pacer.(*FrameTimer); ok {
			ft.SetBufFrame(target)
		}
		s.lagChanges.Add(1)
	}
}

// LagStats reports the adaptive-lag ablation's bookkeeping: how often the
// lag changed and its average over the executed frames (0, 0 when the
// ablation is off or nothing ran). Safe to call from any goroutine.
func (s *Session) LagStats() (changes int, avg float64) {
	executed := int(s.frame.Load()) - s.cfg.StartFrame
	if s.adaptive == nil || executed == 0 {
		return 0, 0
	}
	return int(s.lagChanges.Load()), float64(s.lagSum.Load()) / float64(executed)
}

func (s *Session) broadcastHash(frame int, hash uint64) {
	msg := encodeHash(s.cfg.SiteNo, frame, hash)
	for _, p := range s.sync.peers {
		_ = p.Conn.Send(msg)
	}
}

// Diverged returns the first detected replica divergence, if any.
func (s *Session) Diverged() error {
	if s.hashes == nil {
		return nil
	}
	return s.hashes.err()
}

// QueueJoiner hands a late joiner to the session from another goroutine
// (e.g. a network accept loop). The session admits it at the next frame
// boundary; any error is reported through the joiner's own timeout since
// AddJoiner cannot fail once the peer is valid and unique.
func (s *Session) QueueJoiner(p Peer) {
	s.queuedMu.Lock()
	defer s.queuedMu.Unlock()
	s.queuedJoiners = append(s.queuedJoiners, p)
}

func (s *Session) admitQueuedJoiners() {
	s.queuedMu.Lock()
	queued := s.queuedJoiners
	s.queuedJoiners = nil
	s.queuedMu.Unlock()
	for _, p := range queued {
		// Duplicate or unsupported joins are dropped; the joiner's
		// JoinSession call times out rather than crashing the match.
		_, _ = s.AddJoiner(p)
	}
}

// drainQuiet is how long a draining site keeps serving after the last
// input-carrying message before deciding its peers are done.
const drainQuiet = 500 * time.Millisecond

// Drain keeps acknowledging and retransmitting after the frame loop so the
// peer can finish its own final frames. Without draining, a packet lost
// near the end would freeze the slower site forever.
//
// A site is ready to leave once every peer acked its inputs (observers have
// nothing to be acked for), but it must not leave the instant that happens:
// lockstep lets the sites finish up to BufFrame frames apart, so the
// faster site's acks arrive before the straggler has even sent its final
// inputs — leaving immediately would strand those inputs unacknowledged and
// burn the straggler's whole drain timeout. So a ready site lingers as a
// lame duck, answering retransmissions with acks (every paced keepalive
// carries the cumulative ack), until no input-carrying message has arrived
// for drainQuiet. Keepalives deliberately do not reset the quiet window: a
// peer sending only keepalives has nothing left unacknowledged, while one
// still retransmitting inputs is still owed acks.
func (s *Session) Drain(timeout time.Duration) {
	deadline := s.clock.Now().Add(timeout)
	inputsSeen := func() int {
		st := s.sync.Stats()
		return st.InputsFresh + st.InputsDup
	}
	last := inputsSeen()
	quietSince := s.clock.Now()
	for s.clock.Now().Before(deadline) {
		s.sync.Pump()
		if got := inputsSeen(); got != last {
			last = got
			quietSince = s.clock.Now()
		}
		ready := s.cfg.IsObserver() || s.sync.AllAcked()
		if ready && s.clock.Now().Sub(quietSince) >= drainQuiet {
			// Give the peers the acks they are waiting for before
			// leaving, or the slowest site sits out its whole timeout.
			s.sync.FlushAcks()
			return
		}
		s.clock.Sleep(s.cfg.PollInterval)
	}
	// Timed out: the protocol pumps above may have batched span stamps that
	// no SyncInput will ever flush.
	s.sync.FlushSpans()
}

// --- Late-joiner support (journal extension) ---------------------------

// snapResendEvery paces snapshot chunk retransmission.
const snapResendEvery = 50 * time.Millisecond

// AddJoiner starts streaming a savestate to a newly connected observer and
// includes it in subsequent input broadcasts. The machine must implement
// Snapshotter. Returns the frame the snapshot represents; the joiner must
// start executing at that frame.
func (s *Session) AddJoiner(p Peer) (int, error) {
	snap, ok := s.machine.(Snapshotter)
	if !ok {
		return 0, errors.New("core: machine does not support savestates")
	}
	if _, dup := s.sync.peers[p.Site]; dup {
		return 0, fmt.Errorf("core: site %d already connected", p.Site)
	}
	state := snap.Save()
	frame := int(s.frame.Load()) // next frame to execute; the state is "before frame s.frame"

	ps := &peerState{Peer: p, lastAck: frame - 1}
	s.sync.peers[p.Site] = ps
	s.sync.peerList = append(s.sync.peerList, ps)
	s.sync.republishAcks()

	// The memory image is mostly zeros; RLE typically collapses the ~9
	// chunk transfer into one or two datagrams.
	comp := rleCompress(state)
	var chunks [][]byte
	total := (len(comp) + SnapChunkPayload - 1) / SnapChunkPayload
	for i := 0; i < total; i++ {
		lo := i * SnapChunkPayload
		hi := lo + SnapChunkPayload
		if hi > len(comp) {
			hi = len(comp)
		}
		chunks = append(chunks, encodeSnapChunk(snapChunk{
			Sender: s.cfg.SiteNo,
			Frame:  int32(frame),
			Seq:    uint16(i),
			Total:  uint16(total),
			RawLen: uint32(len(state)),
			Data:   comp[lo:hi],
		}))
	}
	s.joiners[p.Site] = &joinTransfer{peer: ps, chunks: chunks, frame: frame}
	return frame, nil
}

// serveJoiners pushes pending snapshot chunks, a few per frame, and
// retransmits until the joiner acknowledges the full state.
func (s *Session) serveJoiners() {
	now := s.clock.Now()
	for site, j := range s.joiners {
		// Completion ack?
		if j.acked {
			delete(s.joiners, site)
			continue
		}
		if j.next < len(j.chunks) {
			// Initial streaming: up to 3 chunks per frame to bound
			// burstiness. lastTx advances with every burst, so once
			// the final chunk goes out the loss-recovery resend below
			// waits a full snapResendEvery instead of re-blasting the
			// whole chunk list on the same frame.
			for i := 0; i < 3 && j.next < len(j.chunks); i++ {
				_ = j.peer.Conn.Send(j.chunks[j.next])
				j.next++
				s.sync.stats.snapChunks.Add(1)
			}
			j.lastTx = now
		} else if now.Sub(j.lastTx) >= snapResendEvery {
			// All sent at least once but no ack yet: assume loss and
			// re-send the full state, paced by snapResendEvery.
			for _, c := range j.chunks {
				_ = j.peer.Conn.Send(c)
				s.sync.stats.snapChunks.Add(1)
			}
			j.lastTx = now
		}
		// The ack rides on the normal receive path; check for it here
		// because InputSync ignores snapshot traffic.
		for {
			raw, ok := j.peer.Conn.TryRecv()
			if !ok {
				break
			}
			if len(raw) >= 2 && raw[0] == msgSnapAck {
				j.acked = true
				break
			}
			s.sync.handle(j.peer, raw)
		}
	}
}

// ParseJoin reports whether a raw datagram is a late-join request, and from
// which site. Hosts that accept spectator connections (e.g. cmd/retroplay's
// accept loop) use it to identify newcomers before queueing them.
func ParseJoin(raw []byte) (site int, ok bool) {
	if len(raw) >= 2 && raw[0] == msgJoin {
		return int(raw[1]), true
	}
	return 0, false
}

// JoinSession connects a late joiner: it requests a snapshot from server,
// reassembles the savestate, restores the machine, and returns the start
// frame together with a ready-to-run observer session.
func JoinSession(cfg Config, clock vclock.Clock, epoch time.Time, machine Machine, server Peer, timeout time.Duration) (*Session, error) {
	snap, ok := machine.(Snapshotter)
	if !ok {
		return nil, errors.New("core: machine does not support savestates")
	}
	deadline := clock.Now().Add(timeout)
	var (
		chunks    map[int][]byte
		total     = -1
		snapFrame = -1
		rawLen    = 0
		lastReq   time.Time
	)
	chunks = make(map[int][]byte)
	for {
		if clock.Now().After(deadline) {
			return nil, fmt.Errorf("core: snapshot transfer timed out (%d/%d chunks)", len(chunks), total)
		}
		now := clock.Now()
		if now.Sub(lastReq) >= snapResendEvery {
			lastReq = now
			_ = server.Conn.Send(encodeCtl(msgJoin, cfg.SiteNo))
		}
		for {
			raw, ok := server.Conn.TryRecv()
			if !ok {
				break
			}
			if len(raw) == 0 || raw[0] != msgSnapChunk {
				continue // game traffic arrives once we are subscribed; drop for now
			}
			c, err := decodeSnapChunk(raw)
			if err != nil {
				continue
			}
			total = int(c.Total)
			snapFrame = int(c.Frame)
			rawLen = int(c.RawLen)
			chunks[int(c.Seq)] = c.Data
		}
		if total > 0 && len(chunks) == total {
			break
		}
		clock.Sleep(time.Millisecond)
	}
	var comp []byte
	for i := 0; i < total; i++ {
		part, ok := chunks[i]
		if !ok {
			return nil, fmt.Errorf("core: snapshot chunk %d missing after transfer", i)
		}
		comp = append(comp, part...)
	}
	state, err := rleDecompress(comp, rawLen)
	if err != nil {
		return nil, fmt.Errorf("core: decompressing snapshot: %w", err)
	}
	if err := snap.Restore(state); err != nil {
		return nil, fmt.Errorf("core: restoring snapshot: %w", err)
	}
	// Confirm so the server stops retransmitting.
	for i := 0; i < 3; i++ {
		_ = server.Conn.Send(encodeCtl(msgSnapAck, cfg.SiteNo))
	}
	cfg.StartFrame = snapFrame
	return NewSession(cfg, clock, epoch, machine, []Peer{server})
}
