package core

import (
	"testing"

	"retrolock/internal/obs"
)

// TestSyncHotPathZeroAllocWithObs re-pins the zero-allocation property of
// the steady-state sync path with the full observability bundle attached:
// tracer ring, frame-time/wait/RTT histograms and the atomic counters. The
// instrumentation must ride the hot path for free — this is the guard that
// keeps it that way.
func TestSyncHotPathZeroAllocWithObs(t *testing.T) {
	s0, s1, stepFrame := newLockstepPair(t)
	reg := obs.NewRegistry()
	s0.SetObs(NewSessionObs(reg, 0, 1<<12, epoch))
	s1.SetObs(NewSessionObs(reg, 1, 1<<12, epoch))

	frame := 0
	for ; frame < 300; frame++ { // warm-up: scratch buffers reach steady size
		stepFrame(frame)
	}
	allocs := testing.AllocsPerRun(500, func() {
		stepFrame(frame)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("instrumented sync path allocates %.1f times per frame, want 0", allocs)
	}
	// The instrumentation must actually have been live, or the test proves
	// nothing: both tracers recorded events and the histograms saw frames.
	for site, s := range []*InputSync{s0, s1} {
		if s.tele.Tracer.Total() == 0 {
			t.Errorf("site %d: tracer recorded nothing", site)
		}
		if s.tele.FrameTime == nil {
			t.Errorf("site %d: no frame-time histogram attached", site)
		}
	}
}

// TestFrameLoopZeroAllocWithObs covers the full Algorithm 1 loop — pacing,
// sync, machine step, telemetry hooks — under a Session with the
// observability bundle attached. Hash exchange is disabled (the digest
// broadcast legitimately allocates its message) so the test isolates the
// per-frame steady state.
func TestFrameLoopZeroAllocWithObs(t *testing.T) {
	clk := &manualClock{t: epoch}
	c0, c1 := newPipePair()
	conns := [2]*pipeConn{c0, c1}
	machines := [2]*fakeMachine{{}, {}}
	reg := obs.NewRegistry()
	var sessions [2]*Session
	for site := 0; site < 2; site++ {
		s, err := NewSession(Config{SiteNo: site, HashInterval: -1}, clk, epoch,
			machines[site], []Peer{{Site: 1 - site, Conn: conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		s.SetObs(NewSessionObs(reg, site, 1<<12, epoch))
		sessions[site] = s
	}

	inputs := [2]func(int) uint16{
		func(f int) uint16 { return uint16(f) & 0x00FF },
		func(f int) uint16 { return uint16(f) & 0x00FF << 8 },
	}
	step := func() {
		for site, s := range sessions {
			if err := s.RunFrames(1, inputs[site], nil); err != nil {
				t.Fatalf("site %d frame %d: %v", site, s.Frame(), err)
			}
		}
		clk.Sleep(DefaultSendInterval)
	}
	for f := 0; f < 300; f++ { // warm-up
		step()
	}
	allocs := testing.AllocsPerRun(500, func() { step() })
	if allocs != 0 {
		t.Fatalf("instrumented frame loop allocates %.1f times per frame, want 0", allocs)
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged")
	}
	if sessions[0].tele.Tracer.Total() == 0 {
		t.Fatal("tracer recorded nothing — the bundle was not live")
	}
}
