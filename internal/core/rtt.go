package core

import "time"

// RTTEstimator smooths round-trip samples with the classic exponentially
// weighted moving average (new = 7/8 old + 1/8 sample), the same shape TCP
// uses. The paper estimates one-way latency as RTT/2 (§3.2).
type RTTEstimator struct {
	est   time.Duration
	valid bool
}

// Sample folds one measurement into the estimate.
func (r *RTTEstimator) Sample(d time.Duration) {
	if d < 0 {
		return
	}
	if !r.valid {
		r.est = d
		r.valid = true
		return
	}
	r.est = (7*r.est + d) / 8
}

// Estimate returns the smoothed RTT (0 before the first sample).
func (r *RTTEstimator) Estimate() time.Duration { return r.est }

// Valid reports whether at least one sample has been folded in.
func (r *RTTEstimator) Valid() bool { return r.valid }
