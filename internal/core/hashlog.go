package core

import (
	"encoding/binary"
	"fmt"
)

// Divergence detection. Logical consistency (§3.1) guarantees convergence as
// long as the VM is deterministic; a nondeterminism bug (the §5 caveat:
// clocks, files, environment reaching the game) silently breaks that
// guarantee. Production netplay systems therefore exchange periodic state
// digests. Sites attach their machine hash every HashInterval frames; each
// site compares remote digests against its own history and surfaces
// ErrDiverged the moment the replicas disagree, naming the exact frame —
// which turns "the game feels wrong" into a replay-debuggable report.

// DefaultHashInterval is how often (in frames) state digests are exchanged:
// once per second at 60 FPS.
const DefaultHashInterval = 60

// hashHistory bounds how many own digests are retained for comparison.
const hashHistory = 64

// DivergenceError reports a replica mismatch at a specific frame.
type DivergenceError struct {
	Frame  int
	Site   int // the remote site whose digest disagreed
	Ours   uint64
	Theirs uint64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("core: replicas diverged at frame %d (site %d reports %016x, ours %016x)",
		e.Frame, e.Site, e.Theirs, e.Ours)
}

// hashLog tracks own digests and pending remote digests.
type hashLog struct {
	interval int
	own      map[int]uint64 // frame -> our digest (bounded ring)
	ownOrder []int
	pending  map[int][2]uint64 // frame -> {site, digest} awaiting our hash
	failure  *DivergenceError
}

func newHashLog(interval int) *hashLog {
	return &hashLog{
		interval: interval,
		own:      make(map[int]uint64, hashHistory),
		pending:  make(map[int][2]uint64),
	}
}

// record stores our digest for frame and resolves any pending remote digest.
func (l *hashLog) record(frame int, hash uint64) {
	if frame%l.interval != 0 {
		return
	}
	l.own[frame] = hash
	l.ownOrder = append(l.ownOrder, frame)
	if len(l.ownOrder) > hashHistory {
		delete(l.own, l.ownOrder[0])
		l.ownOrder = l.ownOrder[1:]
	}
	if p, ok := l.pending[frame]; ok {
		delete(l.pending, frame)
		l.compare(frame, int(p[0]), p[1], hash)
	}
}

// remote ingests a digest received from a peer.
func (l *hashLog) remote(site, frame int, theirs uint64) {
	if ours, ok := l.own[frame]; ok {
		l.compare(frame, site, theirs, ours)
		return
	}
	// Not executed (or already evicted); keep the freshest per frame.
	l.pending[frame] = [2]uint64{uint64(site), theirs}
	if len(l.pending) > hashHistory {
		// Drop the oldest pending frame to bound memory.
		oldest := -1
		for f := range l.pending {
			if oldest < 0 || f < oldest {
				oldest = f
			}
		}
		delete(l.pending, oldest)
	}
}

func (l *hashLog) compare(frame, site int, theirs, ours uint64) {
	if theirs == ours || l.failure != nil {
		return
	}
	l.failure = &DivergenceError{Frame: frame, Site: site, Ours: ours, Theirs: theirs}
}

// err returns the first detected divergence, if any.
func (l *hashLog) err() error {
	if l.failure == nil {
		return nil
	}
	return l.failure
}

// Digest wire format: type byte, site byte, frame int32, hash uint64.
const (
	msgHash    = byte(7)
	hashMsgLen = 14
)

func encodeHash(sender, frame int, hash uint64) []byte {
	buf := make([]byte, hashMsgLen)
	buf[0] = msgHash
	buf[1] = byte(sender)
	binary.LittleEndian.PutUint32(buf[2:], uint32(int32(frame)))
	binary.LittleEndian.PutUint64(buf[6:], hash)
	return buf
}

func decodeHash(p []byte) (sender, frame int, hash uint64, err error) {
	if len(p) != hashMsgLen || p[0] != msgHash {
		return 0, 0, 0, fmt.Errorf("core: malformed hash message (%d bytes)", len(p))
	}
	return int(p[1]), int(int32(binary.LittleEndian.Uint32(p[2:]))), binary.LittleEndian.Uint64(p[6:]), nil
}
