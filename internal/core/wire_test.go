package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSyncMsgRoundTrip(t *testing.T) {
	m := syncMsg{
		Sender:    1,
		Ack:       1234,
		From:      10,
		To:        13,
		SendTime:  99999,
		EchoTime:  88888,
		EchoDelay: 777,
		HasEcho:   true,
		Inputs:    []uint16{0x00FF, 0xAB00, 0x1234, 0xFFFF},
	}
	got, err := decodeSync(encodeSync(nil, m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Sender != m.Sender || got.Ack != m.Ack || got.From != m.From || got.To != m.To ||
		got.SendTime != m.SendTime || got.EchoTime != m.EchoTime || got.EchoDelay != m.EchoDelay ||
		got.HasEcho != m.HasEcho {
		t.Errorf("header mismatch: %+v vs %+v", got, m)
	}
	if len(got.Inputs) != len(m.Inputs) {
		t.Fatalf("inputs %v, want %v", got.Inputs, m.Inputs)
	}
	for i := range m.Inputs {
		if got.Inputs[i] != m.Inputs[i] {
			t.Errorf("input %d = %#x, want %#x", i, got.Inputs[i], m.Inputs[i])
		}
	}
}

func TestSyncMsgKeepalive(t *testing.T) {
	m := syncMsg{Sender: 0, Ack: 42, From: 7, To: 6} // empty range
	got, err := decodeSync(encodeSync(nil, m))
	if err != nil {
		t.Fatalf("decode keepalive: %v", err)
	}
	if len(got.Inputs) != 0 {
		t.Errorf("keepalive carried %d inputs", len(got.Inputs))
	}
}

func TestSyncMsgNegativeAck(t *testing.T) {
	m := syncMsg{Sender: 2, Ack: -1, From: 1, To: 0}
	got, err := decodeSync(encodeSync(nil, m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Ack != -1 {
		t.Errorf("ack = %d, want -1", got.Ack)
	}
}

func TestDecodeSyncRejectsGarbage(t *testing.T) {
	if _, err := decodeSync(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := decodeSync([]byte{msgSync, 0, 1}); err == nil {
		t.Error("short accepted")
	}
	m := encodeSync(nil, syncMsg{From: 0, To: 1, Inputs: []uint16{1, 2}})
	if _, err := decodeSync(m[:len(m)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	m[0] = 0xEE
	if _, err := decodeSync(m); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestPropertySyncMsgRoundTrip(t *testing.T) {
	f := func(sender byte, ack int32, from int32, inputs []uint16) bool {
		if len(inputs) > maxInputsPerMsg {
			inputs = inputs[:maxInputsPerMsg]
		}
		if from < 0 {
			from = -from
		}
		m := syncMsg{
			Sender: int(sender),
			Ack:    ack,
			From:   from,
			To:     from + int32(len(inputs)) - 1,
			Inputs: inputs,
		}
		got, err := decodeSync(encodeSync(nil, m))
		if err != nil {
			return false
		}
		if got.Ack != m.Ack || got.From != m.From || got.To != m.To || len(got.Inputs) != len(m.Inputs) {
			return false
		}
		for i := range m.Inputs {
			if got.Inputs[i] != m.Inputs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnapChunkRoundTrip(t *testing.T) {
	c := snapChunk{Sender: 3, Frame: 1000, Seq: 4, Total: 9, Data: []byte{1, 2, 3, 4, 5}}
	got, err := decodeSnapChunk(encodeSnapChunk(c))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Sender != 3 || got.Frame != 1000 || got.Seq != 4 || got.Total != 9 || string(got.Data) != string(c.Data) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestSnapChunkRejectsGarbage(t *testing.T) {
	if _, err := decodeSnapChunk([]byte{msgSnapChunk}); err == nil {
		t.Error("short chunk accepted")
	}
	c := encodeSnapChunk(snapChunk{Data: []byte{1, 2, 3}})
	if _, err := decodeSnapChunk(c[:len(c)-1]); err == nil {
		t.Error("truncated chunk accepted")
	}
}

func TestRTTEstimatorEWMA(t *testing.T) {
	var r RTTEstimator
	if r.Valid() || r.Estimate() != 0 {
		t.Fatal("fresh estimator not zero/invalid")
	}
	r.Sample(80 * time.Millisecond)
	if !r.Valid() || r.Estimate() != 80*time.Millisecond {
		t.Fatalf("first sample: est=%v", r.Estimate())
	}
	r.Sample(160 * time.Millisecond)
	want := (7*80*time.Millisecond + 160*time.Millisecond) / 8
	if r.Estimate() != want {
		t.Fatalf("after second sample: est=%v, want %v", r.Estimate(), want)
	}
	r.Sample(-time.Second) // ignored
	if r.Estimate() != want {
		t.Fatal("negative sample changed the estimate")
	}
	// Convergence: feed 50 samples of a new value.
	for i := 0; i < 50; i++ {
		r.Sample(40 * time.Millisecond)
	}
	if d := r.Estimate() - 40*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("estimate did not converge: %v", r.Estimate())
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{SiteNo: 0}
	if _, err := NewInputSync(base, vclockStub{}, time.Time{}, nil); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{SiteNo: -1},
		{Masks: []uint16{0x00FF}}, // 1 mask for 2 players
		{NumPlayers: 2, Masks: []uint16{0x00FF, 0x01FF}}, // overlap
		{NumPlayers: 2, Masks: []uint16{0x00FF, 0}},      // empty mask
		{CFPS: -5},
		{StartFrame: -7},
	}
	for i, cfg := range bad {
		if _, err := NewInputSync(cfg, vclockStub{}, time.Time{}, nil); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.TimePerFrame() != time.Second/60 {
		t.Errorf("TimePerFrame = %v", cfg.TimePerFrame())
	}
	// 6 frames at 60 FPS ≈ 100 ms (the paper's constant), modulo the
	// integer division in time.Second/60.
	if lag := cfg.LocalLag(); lag < 99*time.Millisecond || lag > 101*time.Millisecond {
		t.Errorf("LocalLag = %v, want ~100ms", lag)
	}
	if cfg.IsObserver() {
		t.Error("site 0 misclassified as observer")
	}
	obs := Config{SiteNo: 2}.withDefaults()
	if !obs.IsObserver() {
		t.Error("site 2 of a 2-player game must be an observer")
	}
}

// vclockStub satisfies vclock.Clock for construction-only tests.
type vclockStub struct{}

func (vclockStub) Now() time.Time        { return time.Time{} }
func (vclockStub) Sleep(d time.Duration) {}
