package core

import "testing"

func TestRingMergeGetBasics(t *testing.T) {
	r := newInputRing(0)
	if _, ok := r.get(0); ok {
		t.Fatal("empty ring reported a buffered frame")
	}
	if !r.merge(3, 0x00FF, 0x1234) {
		t.Fatal("in-window merge rejected")
	}
	if got, ok := r.get(3); !ok || got != 0x0034 {
		t.Fatalf("get(3) = %#x,%v; want 0x0034,true", got, ok)
	}
	// Frames skipped by the extension read as written zeros (in window).
	if got, ok := r.get(1); !ok || got != 0 {
		t.Fatalf("get(1) = %#x,%v; want 0,true", got, ok)
	}
	// Second player's bits merge without clobbering the first's.
	r.merge(3, 0xFF00, 0xAB00)
	if got, _ := r.get(3); got != 0xAB34 {
		t.Fatalf("merged word = %#x, want 0xAB34", got)
	}
	if r.window() != 4 {
		t.Fatalf("window = %d, want 4", r.window())
	}
}

func TestRingRetire(t *testing.T) {
	r := newInputRing(0)
	for f := 0; f < 10; f++ {
		r.merge(f, 0xFFFF, uint16(f+1))
	}
	r.retire(4)
	if _, ok := r.get(3); ok {
		t.Fatal("retired frame still readable")
	}
	if got, ok := r.get(4); !ok || got != 5 {
		t.Fatalf("get(4) = %d,%v; want 5,true", got, ok)
	}
	// Writes below the retired edge are dropped.
	if r.merge(2, 0xFFFF, 99) {
		t.Fatal("merge below the retired edge accepted")
	}
	// Retiring backward is a no-op.
	r.retire(1)
	if r.lo != 4 {
		t.Fatalf("retire moved the edge backward to %d", r.lo)
	}
	// Retiring past hi empties and repositions the window.
	r.retire(20)
	if r.lo != 20 || r.hi != 20 || r.window() != 0 {
		t.Fatalf("retire past hi: lo=%d hi=%d", r.lo, r.hi)
	}
	if !r.merge(20, 0xFFFF, 7) {
		t.Fatal("merge at the repositioned window rejected")
	}
}

// TestRingSlidesForeverWithoutGrowing is the heart of the constant-memory
// claim: as long as the window stays small the capacity never changes, no
// matter how many frames pass through.
func TestRingSlidesForeverWithoutGrowing(t *testing.T) {
	r := newInputRing(0)
	capBefore := len(r.buf)
	for f := 0; f < 1_000_000; f++ {
		r.merge(f, 0xFFFF, uint16(f))
		if f >= 16 {
			r.retire(f - 16)
		}
	}
	if len(r.buf) != capBefore {
		t.Fatalf("capacity grew from %d to %d despite a bounded window", capBefore, len(r.buf))
	}
	// Spot-check content integrity after a million slides.
	for f := 1_000_000 - 16; f < 1_000_000; f++ {
		if got, ok := r.get(f); !ok || got != uint16(f) {
			t.Fatalf("get(%d) = %d,%v after sliding", f, got, ok)
		}
	}
}

func TestRingGrowthPreservesWindow(t *testing.T) {
	r := newInputRing(0)
	// Force growth well past the initial capacity with a live window.
	n := ringInitialCap*4 + 7
	for f := 0; f < n; f++ {
		r.merge(f, 0xFFFF, uint16(f^0x5A5A))
	}
	for f := 0; f < n; f++ {
		if got, ok := r.get(f); !ok || got != uint16(f^0x5A5A) {
			t.Fatalf("after growth: get(%d) = %#x,%v", f, got, ok)
		}
	}
	if len(r.buf)&(len(r.buf)-1) != 0 {
		t.Fatalf("capacity %d is not a power of two", len(r.buf))
	}
}

// TestRingSlotsCleanAfterRetire: a retired slot must read back zero when the
// window wraps onto it, or a stale input word would leak into a future frame.
func TestRingSlotsCleanAfterRetire(t *testing.T) {
	r := newInputRing(0)
	span := len(r.buf)
	for f := 0; f < span; f++ {
		r.merge(f, 0xFFFF, 0xDEAD)
	}
	r.retire(span)
	// The next lap writes only one player's byte; the other byte must be
	// zero, not a residue of 0xDEAD.
	for f := span; f < 2*span; f++ {
		r.merge(f, 0x00FF, 0x0011)
		if got, _ := r.get(f); got != 0x0011 {
			t.Fatalf("frame %d reused a dirty slot: %#x", f, got)
		}
		r.retire(f)
	}
}
