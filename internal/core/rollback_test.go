package core

import (
	"errors"
	"testing"
	"time"
)

// runRollbackPair runs two rollback sessions to completion.
func runRollbackPair(t *testing.T, env *twoSiteEnv, frames, window int, input func(site, frame int) uint16) ([2]*RollbackSession, [2]*fakeMachine) {
	t.Helper()
	var ses [2]*RollbackSession
	var machines [2]*fakeMachine
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		machines[site] = &fakeMachine{}
		s, err := NewRollbackSession(Config{SiteNo: site, WaitTimeout: 20 * time.Second},
			env.v, epoch, machines[site], []Peer{{Site: 1 - site, Conn: env.conns[site]}}, window)
		if err != nil {
			t.Fatal(err)
		}
		ses[site] = s
		done[site] = env.v.Go(func() {
			errs[site] = s.RunFrames(frames, func(f int) uint16 { return input(site, f) }, nil)
			if errs[site] == nil {
				errs[site] = s.Settle(5 * time.Second)
			}
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	return ses, machines
}

func TestRollbackConvergesWithChangingInputs(t *testing.T) {
	env := newTwoSiteEnv(t, 80*time.Millisecond, 0)
	input := func(site, frame int) uint16 {
		// Change inputs every few frames so predictions miss regularly.
		return uint16(frame/3+site) & 0xFF << (8 * site)
	}
	ses, machines := runRollbackPair(t, env, 300, 0, input)
	if machines[0].hash != machines[1].hash {
		t.Fatal("rollback replicas diverged after settle")
	}
	for site, s := range ses {
		st := s.Stats()
		if st.Rollbacks == 0 {
			t.Errorf("site %d: no rollbacks despite changing inputs at RTT 80ms", site)
		}
		if st.PredictedFrames == 0 {
			t.Errorf("site %d: no predicted frames (latency hiding not exercised)", site)
		}
		if st.SnapshotBytes == 0 {
			t.Errorf("site %d: no snapshot volume recorded", site)
		}
	}
}

func TestRollbackZeroInputLatency(t *testing.T) {
	// The whole point of the baseline: a site's own input for frame f is
	// applied at frame f, not f+BufFrame.
	env := newTwoSiteEnv(t, 60*time.Millisecond, 0)
	input := func(site, frame int) uint16 {
		return uint16(frame) & 0xFF << (8 * site)
	}
	_, machines := runRollbackPair(t, env, 200, 0, input)
	for f := 0; f < 200; f++ {
		localBits := machines[0].inputs[f] & 0x00FF
		if localBits != input(0, f)&0x00FF {
			t.Fatalf("frame %d executed with local bits %#x, want %#x (zero lag)",
				f, localBits, input(0, f)&0x00FF)
		}
	}
}

func TestRollbackConstantInputsNeverRollBack(t *testing.T) {
	// Repeat-last prediction is exact when inputs never change.
	env := newTwoSiteEnv(t, 60*time.Millisecond, 0)
	ses, machines := runRollbackPair(t, env, 200, 0,
		func(site, frame int) uint16 { return 0x0101 & (0x00FF << (8 * site)) })
	if machines[0].hash != machines[1].hash {
		t.Fatal("diverged")
	}
	for site, s := range ses {
		// The very first frames are predicted from "idle" before any
		// remote input arrives, so a small number of early rollbacks
		// is legitimate; none may happen after warm-up.
		if st := s.Stats(); st.Rollbacks > 2 {
			t.Errorf("site %d: %d rollbacks with constant inputs, want <= 2 (warm-up only)", site, st.Rollbacks)
		}
	}
}

func TestRollbackWindowStallsOnDeadPeer(t *testing.T) {
	env := newTwoSiteEnv(t, 40*time.Millisecond, 0)
	m := &fakeMachine{}
	s, err := NewRollbackSession(Config{SiteNo: 0, WaitTimeout: 2 * time.Second},
		env.v, epoch, m, []Peer{{Site: 1, Conn: env.conns[0]}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := env.v.Go(func() {
		err := s.RunFrames(100, func(int) uint16 { return 1 }, nil)
		if !errors.Is(err, ErrWaitTimeout) {
			t.Errorf("err = %v, want ErrWaitTimeout at the prediction window", err)
		}
		// It ran ahead by at most the window before stalling.
		if s.Frame() > 8+1 {
			t.Errorf("executed %d frames against a dead peer, window is 8", s.Frame())
		}
	})
	<-done
}

func TestRollbackTimesyncAbsorbsStartupOffset(t *testing.T) {
	// Site 1 starts 150ms late. Timesync must bleed the phase advantage
	// off site 0 so the pair converges instead of site 0 stalling at the
	// prediction window forever.
	env := newTwoSiteEnv(t, 60*time.Millisecond, 0)
	const frames = 600
	var ses [2]*RollbackSession
	var machines [2]*fakeMachine
	var lastStart [2]time.Time
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		machines[site] = &fakeMachine{}
		s, err := NewRollbackSession(Config{SiteNo: site, WaitTimeout: 20 * time.Second},
			env.v, epoch, machines[site], []Peer{{Site: 1 - site, Conn: env.conns[site]}}, 8)
		if err != nil {
			t.Fatal(err)
		}
		ses[site] = s
		done[site] = env.v.Go(func() {
			if site == 1 {
				env.v.Sleep(150 * time.Millisecond)
			}
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f/5) & 0xFF << (8 * site)
			}, func(fi FrameInfo) { lastStart[site] = fi.Start })
			if errs[site] == nil {
				errs[site] = s.Settle(5 * time.Second)
			}
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("diverged across startup offset")
	}
	// Final frames must start nearly simultaneously: the offset was
	// absorbed.
	skew := lastStart[1].Sub(lastStart[0])
	if skew < 0 {
		skew = -skew
	}
	if skew > 60*time.Millisecond {
		t.Fatalf("final frame skew %v; timesync failed to absorb the 150ms offset", skew)
	}
	if ses[0].Stats().TimesyncSlept == 0 {
		t.Error("the earlier site never slept for timesync")
	}
}

func TestRollbackRequiresSnapshotter(t *testing.T) {
	// A machine without savestates cannot roll back.
	type plainMachine struct{ Machine }
	env := newTwoSiteEnv(t, 10*time.Millisecond, 0)
	_, err := NewRollbackSession(Config{SiteNo: 0}, env.v, epoch,
		plainMachine{&fakeMachine{}}, []Peer{{Site: 1, Conn: env.conns[0]}}, 0)
	if err == nil {
		t.Fatal("non-snapshotter machine accepted")
	}
}

func TestRollbackRunsAtFullSpeedBelowWindow(t *testing.T) {
	// With the one-way delay (RTT 60ms => ~2 frames, plus ~2 frames of
	// send pacing/skew) comfortably inside the window of 8, the game runs
	// at 60 FPS despite the latency — the latency-hiding property
	// lockstep lacks.
	env := newTwoSiteEnv(t, 60*time.Millisecond, 0)
	start := env.v.Now()
	ses, _ := runRollbackPair(t, env, 300, 8,
		func(site, frame int) uint16 { return uint16(frame/7) & 0xFF << (8 * site) })
	elapsed := env.v.Now().Sub(start)
	// 300 frames at 60 FPS = 5s (+ settle slack).
	if elapsed > 6*time.Second {
		t.Fatalf("300 frames took %v, want ~5s (rollback must not stall at RTT 60ms)", elapsed)
	}
	for site, s := range ses {
		if st := s.Stats(); st.StallFrames > 20 {
			t.Errorf("site %d stalled %d frames at RTT 60ms with window 8", site, st.StallFrames)
		}
	}
}
