package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/vclock"
)

// RollbackSession is the timewarp baseline the paper rejects in §5:
// "Timewarp needs to rollback application states … It is not applicable for
// solving our problem because rolling back states of a distributed game
// without semantic knowledge can be expensive."
//
// This implementation makes that cost measurable. Instead of delaying local
// inputs by the local lag, each frame executes immediately with the local
// input plus a *prediction* of the remote inputs (each remote player is
// assumed to repeat its latest known input). When the real inputs arrive
// and contradict a prediction, the machine state is rolled back to the
// mispredicted frame via a full savestate — the only rollback available
// without semantic knowledge of the game — and replayed. The price the
// paper anticipates shows up directly in RollbackStats: a savestate per
// frame, plus re-emulated frames on every misprediction.
//
// The scheme is bounded by a prediction window: a site never runs more than
// PredictionWindow frames past the slowest confirmed remote frame, stalling
// like lockstep when the gap would grow beyond it.
type RollbackSession struct {
	cfg    Config
	window int
	clock  vclock.Clock
	sync   *InputSync
	mach   Machine
	snap   Snapshotter
	pacer  Pacer

	// frame is the next frame to execute; atomic so Frame() and registry
	// gauges may poll it while the loop runs.
	frame     atomic.Int64
	confirmed int // all frames <= confirmed used authoritative inputs
	states    map[int][]byte
	used      map[int]uint16

	// tele is the optional observability bundle (nil-safe hooks).
	tele *obs.SessionObs

	stats rollbackCounters
}

// RollbackStats quantifies the baseline's overheads. Like Stats it is a
// snapshot struct over atomic counters, safe to poll while frames run.
type RollbackStats struct {
	// Rollbacks counts restore+replay episodes.
	Rollbacks int
	// ReplayedFrames counts frames re-emulated during rollbacks.
	ReplayedFrames int
	// DeepestRollback is the largest restore distance, in frames.
	DeepestRollback int
	// PredictedFrames counts frames first executed with at least one
	// predicted (non-authoritative) input.
	PredictedFrames int
	// StallFrames counts frames delayed by the prediction window.
	StallFrames int
	// TimesyncSlept is the total extra sleep injected to stay in phase
	// with the slowest remote.
	TimesyncSlept time.Duration
	// SnapshotBytes is the total savestate volume written.
	SnapshotBytes int64
}

// rollbackCounters is the live, concurrently-pollable form of
// RollbackStats (single writer: the frame loop).
type rollbackCounters struct {
	rollbacks      atomic.Int64
	replayedFrames atomic.Int64
	deepest        atomic.Int64
	predicted      atomic.Int64
	stalls         atomic.Int64
	timesyncNs     atomic.Int64
	snapshotBytes  atomic.Int64
}

func (c *rollbackCounters) snapshot() RollbackStats {
	return RollbackStats{
		Rollbacks:       int(c.rollbacks.Load()),
		ReplayedFrames:  int(c.replayedFrames.Load()),
		DeepestRollback: int(c.deepest.Load()),
		PredictedFrames: int(c.predicted.Load()),
		StallFrames:     int(c.stalls.Load()),
		TimesyncSlept:   time.Duration(c.timesyncNs.Load()),
		SnapshotBytes:   c.snapshotBytes.Load(),
	}
}

// DefaultPredictionWindow bounds speculation (GGPO-style systems use 7-8).
const DefaultPredictionWindow = 8

// NewRollbackSession builds the baseline for one site. The machine must
// support savestates. cfg.BufFrame is forced to zero (that is the point).
func NewRollbackSession(cfg Config, clock vclock.Clock, epoch time.Time, machine Machine, peers []Peer, window int) (*RollbackSession, error) {
	snap, ok := machine.(Snapshotter)
	if !ok {
		return nil, errors.New("core: rollback requires a Snapshotter machine")
	}
	if window <= 0 {
		window = DefaultPredictionWindow
	}
	cfg.BufFrame = -1 // explicit zero local lag
	sync, err := NewInputSync(cfg, clock, epoch, peers)
	if err != nil {
		return nil, err
	}
	// Unlike lockstep, rollback re-reads delivered frames while
	// reconciling; keep everything above the confirmation frontier
	// buffered (reconcile raises the floor as frames settle).
	sync.SetRetainFloor(-1)
	return &RollbackSession{
		cfg:    sync.Config(),
		window: window,
		clock:  clock,
		sync:   sync,
		mach:   machine,
		snap:   snap,
		// Plain CFPS pacing: rollback does not use Algorithm 4's
		// master/slave steering (a slave locking onto a stalled master
		// deadlocks the prediction window); phase balance comes from
		// timesync below instead.
		pacer:  NewNaiveTimer(sync.Config(), clock),
		states: make(map[int][]byte),
		used:   make(map[int]uint16),

		confirmed: -1,
	}, nil
}

// timesync implements the rollback world's pace balancing: the site that
// runs ahead of the slowest remote's estimated frame sleeps a fraction of
// the advantage each frame, so both sites converge on the same phase
// regardless of who started first (GGPO-style frame-advantage sync).
func (s *RollbackSession) timesync() {
	tpf := s.cfg.TimePerFrame()
	worst := 0.0
	for k := 0; k < s.cfg.NumPlayers; k++ {
		if k == s.cfg.SiteNo {
			continue
		}
		est, ok := s.sync.RemoteFrameEstimate(k)
		if !ok {
			continue
		}
		if adv := float64(s.frame.Load()) - est; adv > worst {
			worst = adv
		}
	}
	// Allow ~1 frame of natural skew; bleed off the rest gently (an
	// eighth per frame) so corrections do not oscillate.
	if worst > 1 {
		extra := time.Duration((worst - 1) / 8 * float64(tpf))
		if extra > tpf {
			extra = tpf
		}
		s.stats.timesyncNs.Add(int64(extra))
		s.clock.Sleep(extra)
	}
}

// Sync exposes the underlying input exchange.
func (s *RollbackSession) Sync() *InputSync { return s.sync }

// Stats returns a snapshot of the accumulated rollback overheads. Safe to
// call from any goroutine while the session runs.
func (s *RollbackSession) Stats() RollbackStats { return s.stats.snapshot() }

// Frame reports the next frame to execute. Safe to call from any goroutine.
func (s *RollbackSession) Frame() int { return int(s.frame.Load()) }

// SetObs attaches an observability bundle to the session and its sync
// module (nil detaches). Call before the frame loop starts.
func (s *RollbackSession) SetObs(o *obs.SessionObs) {
	s.tele = o
	s.sync.SetObs(o)
}

// bestInput merges, for frame f, every authoritative input with the
// repeat-last prediction for players whose input has not arrived. The sync
// buffer's retain floor tracks the confirmation frontier, so every frame
// read here is still in the ring window; an out-of-window read (ok=false)
// would mean the prediction basis was lost and degrades to predicting idle.
func (s *RollbackSession) bestInput(f int) (input uint16, predicted bool) {
	for k := 0; k < s.cfg.NumPlayers; k++ {
		mask := s.cfg.Masks[k]
		known := s.sync.LastRcv(k)
		switch {
		case known >= f:
			in, _ := s.sync.InputAt(f)
			input |= in & mask
		case known >= 0:
			in, _ := s.sync.InputAt(known)
			input |= in & mask
			predicted = true
		default:
			predicted = true // nothing known: predict idle
		}
	}
	return input, predicted
}

// reconcile validates executed-but-unconfirmed frames against newly arrived
// inputs, rolling back and replaying from the first misprediction.
func (s *RollbackSession) reconcile() {
	frame := int(s.frame.Load())
	limit := s.sync.AuthoritativeThrough()
	if limit > frame-1 {
		limit = frame - 1
	}
	for f := s.confirmed + 1; f <= limit; f++ {
		correct, _ := s.bestInput(f)
		if correct != s.used[f] {
			s.rollbackTo(f)
			break
		}
		s.confirmed = f
	}
	// Everything replayed after a rollback used fully authoritative
	// inputs up to limit.
	if s.confirmed < limit {
		s.confirmed = limit
	}
	// Frames below the confirmation frontier are settled for good;
	// release them from the input ring. bestInput may still read frame
	// `confirmed` itself (a player's freshest input as prediction basis),
	// so the floor sits at confirmed, not confirmed+1.
	s.sync.SetRetainFloor(s.confirmed)
	s.prune()
}

func (s *RollbackSession) rollbackTo(f int) {
	state, ok := s.states[f]
	if !ok {
		// Should be impossible: states are pruned only below confirmed.
		panic(fmt.Sprintf("core: rollback to frame %d without a savestate", f))
	}
	if err := s.snap.Restore(state); err != nil {
		panic(fmt.Sprintf("core: rollback restore failed: %v", err))
	}
	frame := int(s.frame.Load())
	s.stats.rollbacks.Add(1)
	depth := frame - f
	if int64(depth) > s.stats.deepest.Load() {
		s.stats.deepest.Store(int64(depth))
	}
	s.tele.Rollback(f, s.clock.Now(), depth)
	for g := f; g < frame; g++ {
		input, _ := s.bestInput(g)
		s.used[g] = input
		s.states[g] = s.snap.Save()
		s.stats.snapshotBytes.Add(int64(len(s.states[g])))
		s.mach.StepFrame(input)
		s.stats.replayedFrames.Add(1)
	}
}

func (s *RollbackSession) prune() {
	for f := range s.states {
		if f < s.confirmed {
			delete(s.states, f)
			delete(s.used, f)
		}
	}
}

// RunFrames executes n frames with zero input latency and speculative
// remote inputs. onFrame observes first executions only (not replays).
func (s *RollbackSession) RunFrames(n int, localInput func(frame int) uint16, onFrame func(FrameInfo)) error {
	var deadline time.Time
	for i := 0; i < n; i++ {
		frame := int(s.frame.Load())
		s.timesync()
		s.pacer.BeginFrame(frame, MasterView{})
		s.tele.FrameStart(frame, s.pacer.FrameStart())
		s.sync.Pump()
		s.reconcile()

		// Prediction window: stall (like lockstep) rather than run
		// unboundedly ahead of a slow or dead peer.
		if s.cfg.WaitTimeout > 0 {
			deadline = s.clock.Now().Add(s.cfg.WaitTimeout)
		}
		stalled := false
		for frame-(s.sync.AuthoritativeThrough()+1) >= s.window {
			if !stalled {
				stalled = true
				s.stats.stalls.Add(1)
			}
			if s.cfg.WaitTimeout > 0 && s.clock.Now().After(deadline) {
				return fmt.Errorf("%w: frame %d stalled at the prediction window (remote confirmed through %d)",
					ErrWaitTimeout, frame, s.sync.AuthoritativeThrough())
			}
			s.clock.Sleep(s.cfg.PollInterval)
			s.sync.Pump()
			s.reconcile()
		}

		var raw uint16
		if localInput != nil {
			raw = localInput(frame)
		}
		s.sync.RecordLocal(frame, raw)
		s.sync.Advance(frame)

		input, predicted := s.bestInput(frame)
		if predicted {
			s.stats.predicted.Add(1)
		}
		s.states[frame] = s.snap.Save()
		s.stats.snapshotBytes.Add(int64(len(s.states[frame])))
		s.mach.StepFrame(input)
		s.used[frame] = input

		if onFrame != nil {
			onFrame(FrameInfo{
				Frame: frame,
				Start: s.pacer.FrameStart(),
				Input: input,
				Hash:  s.mach.StateHash(),
			})
		}
		s.pacer.EndFrame()
		s.tele.FrameEnd(frame, s.pacer.FrameStart(), s.clock.Now())
		s.frame.Add(1)
	}
	return nil
}

// Settle keeps exchanging inputs after the frame loop until every executed
// frame is authoritative (applying any final corrections), so replicas can
// be compared. It also services peers still finishing their own frames.
func (s *RollbackSession) Settle(timeout time.Duration) error {
	deadline := s.clock.Now().Add(timeout)
	for {
		s.sync.Pump()
		s.reconcile()
		last := int(s.frame.Load()) - 1
		if s.confirmed >= last && s.sync.AllAcked() {
			s.sync.FlushAcks() // release peers waiting on our final ack
			return nil
		}
		if s.clock.Now().After(deadline) {
			if s.confirmed >= last {
				return nil // corrected; only acks outstanding
			}
			return fmt.Errorf("%w: settle incomplete (confirmed %d of %d)", ErrWaitTimeout, s.confirmed, last)
		}
		s.clock.Sleep(s.cfg.PollInterval)
	}
}
