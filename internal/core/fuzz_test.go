package core

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeSync checks three invariants over arbitrary datagrams:
//
//  1. An accepted message's payload length exactly matches its frame range
//     (64-bit arithmetic: int32 wraparound in from/to must not smuggle a
//     mismatched length through) and never exceeds maxInputsPerMsg.
//  2. decodeSyncInto with an undersized scratch agrees bit-for-bit with the
//     allocating decode — the zero-alloc receive path is not a second,
//     subtly different parser.
//  3. Re-encoding an accepted message reproduces the raw datagram, so the
//     encoder and decoder describe the same wire format (including the
//     biased echoDelay field).
func FuzzDecodeSync(f *testing.F) {
	f.Add(encodeSync(nil, syncMsg{Sender: 1, Ack: 42, From: 10, To: 13,
		SendTime: 7, EchoTime: 9, EchoDelay: 3, HasEcho: true,
		Inputs: []uint16{1, 2, 3, 4}}))
	f.Add(encodeSync(nil, syncMsg{Sender: 0, Ack: -1, From: 5, To: 4})) // keepalive
	f.Add(encodeSync(nil, syncMsg{Sender: 2, Merged: true, From: 0, To: 0, Inputs: []uint16{0xFFFF}}))
	// Hostile shapes: int32-wrapping ranges with a small actual payload.
	overflow := encodeSync(nil, syncMsg{From: 0, To: 1, Inputs: []uint16{1, 2}})
	overflow[6], overflow[7], overflow[8], overflow[9] = 0x00, 0x00, 0x00, 0x80     // From = math.MinInt32
	overflow[10], overflow[11], overflow[12], overflow[13] = 0xFF, 0xFF, 0xFF, 0x7F // To = math.MaxInt32
	f.Add(overflow)
	f.Add([]byte{msgSync})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeSync(raw)
		if err != nil {
			return
		}
		want := int64(m.To) - int64(m.From) + 1
		if want < 0 {
			want = 0
		}
		if want > maxInputsPerMsg {
			t.Fatalf("accepted range [%d,%d]: %d inputs > maxInputsPerMsg", m.From, m.To, want)
		}
		if int64(len(m.Inputs)) != want {
			t.Fatalf("range [%d,%d] decoded %d inputs, want %d", m.From, m.To, len(m.Inputs), want)
		}
		if int64(m.To)-int64(m.From) > math.MaxInt32 {
			t.Fatalf("int32-wrapping range [%d,%d] accepted", m.From, m.To)
		}

		small, err := decodeSyncInto(raw, make([]uint16, 0, 1))
		if err != nil {
			t.Fatalf("decodeSyncInto rejected what decodeSync accepted: %v", err)
		}
		if small.Sender != m.Sender || small.Merged != m.Merged || small.Ack != m.Ack ||
			small.From != m.From || small.To != m.To || small.SendTime != m.SendTime ||
			small.EchoTime != m.EchoTime || small.EchoDelay != m.EchoDelay || small.HasEcho != m.HasEcho {
			t.Fatalf("decode-into header disagrees: %+v vs %+v", small, m)
		}
		if len(small.Inputs) != len(m.Inputs) {
			t.Fatalf("decode-into inputs %d vs %d", len(small.Inputs), len(m.Inputs))
		}
		for i := range m.Inputs {
			if small.Inputs[i] != m.Inputs[i] {
				t.Fatalf("decode-into input %d: %#x vs %#x", i, small.Inputs[i], m.Inputs[i])
			}
		}

		if re := encodeSync(nil, m); !bytes.Equal(re, raw) {
			t.Fatalf("re-encode differs from raw:\n  raw %x\n  re  %x", raw, re)
		}
	})
}

// FuzzDecodeSnapChunk: an accepted chunk re-encodes to the raw datagram, and
// its data length always matches the header's declared length.
func FuzzDecodeSnapChunk(f *testing.F) {
	f.Add(encodeSnapChunk(snapChunk{Sender: 3, Frame: 1000, Seq: 4, Total: 9,
		RawLen: 77, Data: []byte{1, 2, 3, 4, 5}}))
	f.Add(encodeSnapChunk(snapChunk{}))
	f.Add([]byte{msgSnapChunk, 0, 0})

	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := decodeSnapChunk(raw)
		if err != nil {
			return
		}
		if len(c.Data) != len(raw)-snapHeaderLen {
			t.Fatalf("data length %d vs datagram payload %d", len(c.Data), len(raw)-snapHeaderLen)
		}
		if re := encodeSnapChunk(c); !bytes.Equal(re, raw) {
			t.Fatalf("re-encode differs from raw:\n  raw %x\n  re  %x", raw, re)
		}
	})
}
