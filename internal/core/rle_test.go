package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRLERoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},
		make([]byte, 1000),              // all zeros
		append(make([]byte, 500), 0xAB), // zeros then one literal
		append([]byte{0xCD}, make([]byte, 500)...), // literal then zeros
		{0, 0, 0, 1, 0, 0, 0, 0, 2, 2, 0, 0},       // mixed short runs
		bytes.Repeat([]byte{7}, 300),               // incompressible
	}
	for i, data := range cases {
		comp := rleCompress(data)
		got, err := rleDecompress(comp, len(data))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestRLECompressesSparseSavestates(t *testing.T) {
	// A fresh console's savestate is mostly zeros: expect big savings.
	m := &fakeMachine{}
	m.StepFrame(1)
	sparse := make([]byte, 70000)
	copy(sparse, m.Save())
	comp := rleCompress(sparse)
	if len(comp) > len(sparse)/20 {
		t.Errorf("sparse 70000-byte state compressed to %d bytes, want < 5%%", len(comp))
	}
}

func TestRLEDecompressRejectsGarbage(t *testing.T) {
	if _, err := rleDecompress([]byte{0x02, 1}, 1); err == nil {
		t.Error("unknown token accepted")
	}
	if _, err := rleDecompress([]byte{rleLiteral, 5, 1, 2}, 5); err == nil {
		t.Error("truncated literal accepted")
	}
	if _, err := rleDecompress([]byte{rleZeroRun, 200}, 10); err == nil {
		t.Error("overflowing run accepted")
	}
	if _, err := rleDecompress(rleCompress([]byte{1, 2, 3}), 5); err == nil {
		t.Error("wrong target length accepted")
	}
	if _, err := rleDecompress([]byte{rleZeroRun}, 4); err == nil {
		t.Error("missing varint accepted")
	}
}

func TestPropertyRLERoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := rleDecompress(rleCompress(data), len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: compression of zero-heavy data always wins.
func TestPropertyRLEZeroHeavyShrinks(t *testing.T) {
	f := func(spans []uint8) bool {
		var data []byte
		for i, s := range spans {
			data = append(data, make([]byte, int(s)+rleMinRun)...)
			data = append(data, byte(i+1))
		}
		if len(data) < 64 {
			return true
		}
		return len(rleCompress(data)) < len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
