package core

import (
	"errors"
	"testing"
	"time"

	"retrolock/internal/transport"
)

func TestHashMsgRoundTrip(t *testing.T) {
	sender, frame, hash, err := decodeHash(encodeHash(1, 1234, 0xDEADBEEFCAFEBABE))
	if err != nil {
		t.Fatal(err)
	}
	if sender != 1 || frame != 1234 || hash != 0xDEADBEEFCAFEBABE {
		t.Fatalf("got %d/%d/%x", sender, frame, hash)
	}
	if _, _, _, err := decodeHash([]byte{msgHash, 1}); err == nil {
		t.Error("short hash message accepted")
	}
	bad := encodeHash(0, 0, 0)
	bad[0] = 0xAA
	if _, _, _, err := decodeHash(bad); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestHashLogDetectsMismatchBothOrders(t *testing.T) {
	// Remote digest first, own second.
	l := newHashLog(10)
	l.remote(1, 10, 0xAAAA)
	if l.err() != nil {
		t.Fatal("error before own hash known")
	}
	l.record(10, 0xBBBB)
	var de *DivergenceError
	if !errors.As(l.err(), &de) {
		t.Fatalf("err = %v, want DivergenceError", l.err())
	}
	if de.Frame != 10 || de.Ours != 0xBBBB || de.Theirs != 0xAAAA || de.Site != 1 {
		t.Fatalf("error details: %+v", de)
	}

	// Own digest first, remote second.
	l2 := newHashLog(10)
	l2.record(20, 0x1)
	l2.remote(0, 20, 0x2)
	if l2.err() == nil {
		t.Fatal("mismatch with own-first ordering not detected")
	}
}

func TestHashLogMatchingDigestsQuiet(t *testing.T) {
	l := newHashLog(5)
	for f := 0; f <= 100; f += 5 {
		l.record(f, uint64(f)*7)
		l.remote(1, f, uint64(f)*7)
	}
	if l.err() != nil {
		t.Fatalf("false positive: %v", l.err())
	}
}

func TestHashLogIgnoresOffIntervalFrames(t *testing.T) {
	l := newHashLog(10)
	l.record(7, 1) // not a multiple of the interval: ignored
	if len(l.own) != 0 {
		t.Fatal("off-interval frame recorded")
	}
}

func TestHashLogBoundedMemory(t *testing.T) {
	l := newHashLog(1)
	for f := 0; f < 10*hashHistory; f++ {
		l.record(f, uint64(f))
		l.remote(1, f+5*hashHistory, uint64(f)) // far-future pending
	}
	if len(l.own) > hashHistory || len(l.pending) > hashHistory {
		t.Fatalf("unbounded growth: own=%d pending=%d", len(l.own), len(l.pending))
	}
}

// nonDeterministicMachine diverges from its twin: site 1's copy flips a bit
// at frame 100, simulating the §5 hazard (a game reading a host-dependent
// resource).
type nonDeterministicMachine struct {
	fakeMachine
	site int
}

func (m *nonDeterministicMachine) StepFrame(in uint16) {
	if m.site == 1 && len(m.inputs) == 100 {
		in ^= 0x8000
	}
	m.fakeMachine.StepFrame(in)
}

func TestSessionDetectsDivergence(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0)
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		m := &nonDeterministicMachine{site: site}
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 10 * time.Second, HashInterval: 20},
			env.v, epoch, m, []Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		done[site] = env.v.Go(func() {
			if errs[site] = s.Handshake(5 * time.Second); errs[site] != nil {
				return
			}
			errs[site] = s.RunFrames(400, func(int) uint16 { return 0 }, nil)
			s.Drain(time.Second)
		})
	}
	<-done[0]
	<-done[1]
	detected := false
	for site, err := range errs {
		var de *DivergenceError
		if errors.As(err, &de) {
			detected = true
			if de.Frame < 100 || de.Frame > 160 {
				t.Errorf("site %d detected divergence at frame %d, want soon after 100", site, de.Frame)
			}
		}
	}
	if !detected {
		t.Fatal("neither site detected the injected divergence")
	}
}

func TestSessionNoFalseDivergence(t *testing.T) {
	env := newTwoSiteEnv(t, 50*time.Millisecond, 0.05)
	ses, _ := runPair(t, env, 300, Config{SiteNo: 0, WaitTimeout: 10 * time.Second, HashInterval: 15},
		Config{SiteNo: 1, WaitTimeout: 10 * time.Second, HashInterval: 15},
		func(site, frame int) uint16 { return uint16(frame) & 0xFF << (8 * site) })
	for site, s := range ses {
		if err := s.Diverged(); err != nil {
			t.Errorf("site %d false divergence: %v", site, err)
		}
	}
}

func TestHashCheckDisabled(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0)
	// HashInterval -1 disables the exchange; even diverging machines run
	// to completion (convergence can still be checked externally).
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		m := &nonDeterministicMachine{site: site}
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 10 * time.Second, HashInterval: -1},
			env.v, epoch, m, []Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		if s.Diverged() != nil {
			t.Fatal("Diverged() non-nil with detection disabled")
		}
		done[site] = env.v.Go(func() {
			errs[site] = s.RunFrames(200, func(int) uint16 { return 0 }, nil)
			s.Drain(time.Second)
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v (hash check should be off)", site, err)
		}
	}
}

func TestQueuedJoinerAdmittedAtFrameBoundary(t *testing.T) {
	v := newTwoSiteEnv(t, 20*time.Millisecond, 0)
	// Wire an observer connection pair up front.
	obsConn, srvConn, err := transport.SimPair(v.net, "obs", "p0-obs")
	if err != nil {
		t.Fatal(err)
	}

	m0, m1 := &fakeMachine{}, &fakeMachine{}
	s0, err := NewSession(Config{SiteNo: 0, WaitTimeout: 10 * time.Second}, v.v, epoch, m0,
		[]Peer{{Site: 1, Conn: v.conns[0]}})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSession(Config{SiteNo: 1, WaitTimeout: 10 * time.Second}, v.v, epoch, m1,
		[]Peer{{Site: 0, Conn: v.conns[1]}})
	if err != nil {
		t.Fatal(err)
	}

	const frames = 240
	input := func(site int) func(int) uint16 {
		return func(f int) uint16 { return uint16(f+site) & 0xFF << (8 * site) }
	}
	var e0, e1, eObs error
	var obsHash uint64
	d0 := v.v.Go(func() {
		e0 = s0.RunFrames(frames, input(0), nil)
		s0.Drain(3 * time.Second)
	})
	d1 := v.v.Go(func() {
		e1 = s1.RunFrames(frames, input(1), nil)
		s1.Drain(3 * time.Second)
	})
	dObs := v.v.Go(func() {
		v.v.Sleep(500 * time.Millisecond) // join mid-game
		s0.QueueJoiner(Peer{Site: 2, Conn: srvConn})
		obs := &fakeMachine{}
		ses, err := JoinSession(Config{SiteNo: 2, WaitTimeout: 10 * time.Second}, v.v, epoch, obs,
			Peer{Site: 0, Conn: obsConn}, 10*time.Second)
		if err != nil {
			eObs = err
			return
		}
		eObs = ses.RunFrames(frames-ses.Frame(), nil, nil)
		obsHash = obs.hash
	})
	<-d0
	<-d1
	<-dObs
	if e0 != nil || e1 != nil || eObs != nil {
		t.Fatalf("errors: %v / %v / %v", e0, e1, eObs)
	}
	if obsHash != m0.hash {
		t.Fatal("queued joiner diverged from the players")
	}
}
