package core

import (
	"errors"
	"fmt"
	"time"
)

// Black-box hook. The flight recorder lives in internal/flight (which imports
// core); core only defines the narrow interface the frame loop feeds, so the
// dependency arrow points outward and the hot path stays a couple of
// predictable calls.

// IncidentKind classifies why a flight-recorder dump was triggered.
type IncidentKind uint8

const (
	// IncidentNone is the zero value; it never triggers a dump.
	IncidentNone IncidentKind = iota
	// IncidentDesync is a replica hash divergence (DivergenceError).
	IncidentDesync
	// IncidentStall is a liveness stall: a SyncInput wait past the
	// recorder's threshold, or an ErrWaitTimeout abort.
	IncidentStall
	// IncidentPanic is a panic escaping the frame loop.
	IncidentPanic
	// IncidentManual is an operator-requested dump (SIGQUIT, HTTP, or a
	// harness flushing its black boxes after a failed invariant).
	IncidentManual
)

// String names the kind for manifests and file names.
func (k IncidentKind) String() string {
	switch k {
	case IncidentDesync:
		return "desync"
	case IncidentStall:
		return "stall"
	case IncidentPanic:
		return "panic"
	case IncidentManual:
		return "manual"
	}
	return "none"
}

// FlightRecorder is the black-box surface a Session feeds. Every method is
// called from the frame loop, so implementations must not block and must not
// allocate in the steady state (RecordFrame runs once per frame; Incident is
// the rare crash path and may do real work).
type FlightRecorder interface {
	// RecordFrame logs one executed frame: the merged input fed to the
	// machine, the post-transition state hash, and how long SyncInput
	// blocked for this frame (0 when it did not).
	RecordFrame(frame int, input uint16, hash uint64, syncWait time.Duration)
	// RecordRemoteHash logs a peer's state digest as it arrives, so the
	// bundle carries both sides of the hash exchange.
	RecordRemoteHash(site, frame int, hash uint64)
	// Incident fires the black box: capture final state and persist the
	// bundle. Implementations are one-shot — every call after the first is
	// a no-op — so the session may report redundantly without guards.
	Incident(kind IncidentKind, cause error)
	// StallThreshold is the SyncInput wait beyond which the session
	// declares a liveness stall (0 disables the stall trigger).
	StallThreshold() time.Duration
}

// SetFlightRecorder attaches a black-box recorder (nil detaches). Call
// before the frame loop starts. The session reports divergences, stalls past
// fr.StallThreshold, frame-loop panics and per-frame records to it; peer hash
// digests are chained onto the existing divergence-detection hook.
func (s *Session) SetFlightRecorder(fr FlightRecorder) {
	s.flight = fr
	if fr == nil {
		s.stallThreshold = 0
		return
	}
	s.stallThreshold = fr.StallThreshold()
	prev := s.sync.OnHash
	s.sync.OnHash = func(site, frame int, hash uint64) {
		if prev != nil {
			prev(site, frame, hash)
		}
		fr.RecordRemoteHash(site, frame, hash)
	}
}

// Desyncs reports how many divergence incidents the session has declared
// (0 or 1: the first divergence ends the run). Safe from any goroutine.
func (s *Session) Desyncs() int { return int(s.desyncs.Load()) }

// incident routes one trigger to the live telemetry and the recorder. The
// tracer event carries the kind code, so dashboards see what the black box
// saw; the recorder turns it into a bundle.
func (s *Session) incident(kind IncidentKind, cause error) {
	if kind == IncidentDesync {
		s.desyncs.Add(1)
	}
	s.tele.Incident(int(s.frame.Load()), s.clock.Now(), int64(kind))
	if s.flight != nil {
		s.flight.Incident(kind, cause)
	}
}

// reportFailure classifies a frame-loop error as an incident. Divergences
// and wait timeouts get their own kinds; anything else is not an incident
// (e.g. a SyncInput sequencing bug surfaces as a plain error).
func (s *Session) reportFailure(err error) {
	var div *DivergenceError
	switch {
	case errors.As(err, &div):
		s.incident(IncidentDesync, err)
	case errors.Is(err, ErrWaitTimeout):
		s.incident(IncidentStall, err)
	}
}

// recoverPanic converts a frame-loop panic into an incident and re-raises
// it. Deferred unconditionally by RunFrames (the defer is open-coded and
// free on the non-panic path).
func (s *Session) recoverPanic() {
	if r := recover(); r != nil {
		s.incident(IncidentPanic, fmt.Errorf("core: panic in frame loop: %v", r))
		panic(r)
	}
}
