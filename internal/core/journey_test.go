package core

import (
	"testing"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/span"
)

// newJourneyPair is newLockstepPair with input-journey span journals attached
// to both sites and per-frame exec reports fed the way Session.RunFrames
// does, so the cross-site derivations (offset estimate, remote-exec mapping)
// all run.
func newJourneyPair(t testing.TB) (j0, j1 *span.Journal, s0, s1 *InputSync, stepFrame func(f int)) {
	t.Helper()
	clk := &manualClock{t: epoch}
	c0, c1 := newPipePair()
	var err error
	s0, err = NewInputSync(Config{SiteNo: 0}, clk, epoch, []Peer{{Site: 1, Conn: c0}})
	if err != nil {
		t.Fatal(err)
	}
	s1, err = NewInputSync(Config{SiteNo: 1}, clk, epoch, []Peer{{Site: 0, Conn: c1}})
	if err != nil {
		t.Fatal(err)
	}
	mkJournal := func() *span.Journal {
		j := span.NewJournal(epoch, 0)
		j.Cross, j.Local, j.Net, j.Skew = &obs.Histogram{}, &obs.Histogram{}, &obs.Histogram{}, &obs.Histogram{}
		return j
	}
	j0, j1 = mkJournal(), mkJournal()
	s0.SetJournal(j0)
	s1.SetJournal(j1)
	stepFrame = func(f int) {
		now := clk.Now()
		s0.ReportExec(f, now)
		s1.ReportExec(f, now)
		if _, err := s0.SyncInput(uint16(f)&0x00FF, f); err != nil {
			t.Fatalf("site 0 frame %d: %v", f, err)
		}
		if _, err := s1.SyncInput(uint16(f)<<8, f); err != nil {
			t.Fatalf("site 1 frame %d: %v", f, err)
		}
		clk.Sleep(DefaultSendInterval)
	}
	return j0, j1, s0, s1, stepFrame
}

// TestSyncHotPathWithJournalDoesNotAllocate is the acceptance gate for span
// recording: the steady-state frame loop with a journal attached — pressed,
// send-range, receive, executed and remote-exec stamps plus the derived
// histogram observations, every frame — must still allocate nothing.
func TestSyncHotPathWithJournalDoesNotAllocate(t *testing.T) {
	_, _, _, _, stepFrame := newJourneyPair(t)
	frame := 0
	for ; frame < 300; frame++ { // warm-up: scratch buffers reach steady size
		stepFrame(frame)
	}
	allocs := testing.AllocsPerRun(500, func() {
		stepFrame(frame)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("journal-attached frame loop allocates %.1f times per frame, want 0", allocs)
	}
}

// TestInputJourneyDerivedLatencies runs a clean two-site session and checks
// that both journals derive sane end-to-end quantities. The pipe is
// zero-delay in virtual time but messages cross one 20 ms send interval of
// simulated time, so the offset estimators converge with a bounded (±10 ms)
// asymmetry error; the assertions leave room for exactly that.
func TestInputJourneyDerivedLatencies(t *testing.T) {
	const frames = 400
	j0, j1, s0, _, stepFrame := newJourneyPair(t)
	for f := 0; f < frames; f++ {
		stepFrame(f)
	}

	off, ok := s0.OffsetTo(1)
	if !ok {
		t.Fatal("site 0 never formed a clock-offset estimate for site 1")
	}
	if off < -15000 || off > 15000 {
		t.Fatalf("offset estimate %d µs, want |off| <= 15 ms (clocks are shared)", off)
	}

	lagNs := int64(DefaultBufFrame) * int64(DefaultSendInterval)
	for name, j := range map[string]*span.Journal{"site0": j0, "site1": j1} {
		// Local latency is lag frames of send interval by construction.
		if n := j.Local.Count(); n < frames-2*DefaultBufFrame {
			t.Errorf("%s: Local count %d, want ~%d", name, n, frames)
		}
		if q := int64(j.Local.Quantile(0.5)); q < lagNs || q >= 3*lagNs {
			t.Errorf("%s: Local p50 bound %dns, want within a bucket of the %dns lag", name, q, lagNs)
		}
		// Cross-site latency: Local plus/minus the offset asymmetry error,
		// observed exactly once per frame (first-wins stamps).
		if n := j.Cross.Count(); n < frames/2 || n > frames {
			t.Errorf("%s: Cross count %d, want once per frame (~%d)", name, n, frames)
		}
		if q := int64(j.Cross.Quantile(0.5)); q < lagNs/2 || q >= 3*lagNs {
			t.Errorf("%s: Cross p50 bound %dns, want around the %dns lag", name, q, lagNs)
		}
		// Skew: the sites execute in lockstep; only the offset error shows.
		if n := j.Skew.Count(); n < frames/2 {
			t.Errorf("%s: Skew count %d, want ~%d", name, n, frames)
		}
		if q := int64(j.Skew.Quantile(0.9)); q > int64(33*time.Millisecond) {
			t.Errorf("%s: Skew p90 bound %dns, want <= 33 ms", name, q)
		}
		// One-way latency closes once the offset estimate exists.
		if j.Net.Count() == 0 {
			t.Errorf("%s: Net never observed", name)
		}
	}
}
