package core

import (
	"testing"
	"time"
)

// manualClock is a hand-cranked vclock.Clock: time moves only when the test
// Sleeps. It keeps protocol timing fully deterministic without the scheduler
// machinery of vclock.Virtual.
type manualClock struct{ t time.Time }

func (c *manualClock) Now() time.Time { return c.t }
func (c *manualClock) Sleep(d time.Duration) {
	if d > 0 {
		c.t = c.t.Add(d)
	}
}

// pipeConn is a lossless in-memory conn with preallocated slots: Send copies
// into the peer's next slot, TryRecv pops. Steady-state use is allocation
// free, which the hot-path tests depend on.
type pipeConn struct {
	peer        *pipeConn
	slots       [][]byte
	head, count int
}

const pipeSlots = 64

func newPipePair() (*pipeConn, *pipeConn) {
	mk := func() *pipeConn {
		c := &pipeConn{slots: make([][]byte, pipeSlots)}
		for i := range c.slots {
			c.slots[i] = make([]byte, 0, 4096)
		}
		return c
	}
	a, b := mk(), mk()
	a.peer, b.peer = b, a
	return a, b
}

func (c *pipeConn) Send(p []byte) error {
	q := c.peer
	if q.count == pipeSlots {
		return nil // queue full: drop, like UDP
	}
	i := (q.head + q.count) % pipeSlots
	q.slots[i] = append(q.slots[i][:0], p...)
	q.count++
	return nil
}

func (c *pipeConn) TryRecv() ([]byte, bool) {
	if c.count == 0 {
		return nil, false
	}
	p := c.slots[c.head]
	c.head = (c.head + 1) % pipeSlots
	c.count--
	return p, true
}

func (c *pipeConn) Close() error       { return nil }
func (c *pipeConn) LocalAddr() string  { return "pipe" }
func (c *pipeConn) RemoteAddr() string { return "pipe" }

// TestServeJoinersFirstResendWaits: after the initial chunk stream completes,
// the loss-recovery resend must wait a full snapResendEvery. The original
// code never stamped lastTx during streaming, so the very next frame's
// serveJoiners saw a zero lastTx and re-blasted the entire snapshot.
func TestServeJoinersFirstResendWaits(t *testing.T) {
	clk := &manualClock{t: epoch}
	m := &fakeMachine{}
	for i := 0; i < 100; i++ {
		m.StepFrame(uint16(i)) // give the snapshot some bulk
	}
	s, err := NewSession(Config{SiteNo: 0}, clk, epoch, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	joinerEnd, _ := newPipePair()
	if _, err := s.AddJoiner(Peer{Site: 2, Conn: joinerEnd}); err != nil {
		t.Fatal(err)
	}
	total := len(s.joiners[2].chunks)
	if total < 1 {
		t.Fatal("snapshot produced no chunks")
	}

	// Stream everything (3 chunks per frame).
	for i := 0; i < (total+2)/3; i++ {
		s.serveJoiners()
	}
	if got := s.sync.Stats().SnapChunks; got != total {
		t.Fatalf("after streaming: %d chunks sent, want exactly %d (no premature re-blast)", got, total)
	}
	// Same instant, next frame: nothing more should go out.
	s.serveJoiners()
	if got := s.sync.Stats().SnapChunks; got != total {
		t.Fatalf("immediate re-serve sent %d chunks, want %d — resend did not wait", got, total)
	}
	// After the resend interval the full state goes out again.
	clk.Sleep(snapResendEvery)
	s.serveJoiners()
	if got := s.sync.Stats().SnapChunks; got != 2*total {
		t.Fatalf("after %v: %d chunks sent, want %d", snapResendEvery, got, 2*total)
	}
}

// TestMergedStreamStatsSplitFreshDup: an observer receiving a forwarded
// (merged) stream must split each payload into fresh vs duplicate words by
// the frontier advance, like the player path does — not count every word of
// an advancing message as fresh.
func TestMergedStreamStatsSplitFreshDup(t *testing.T) {
	clk := &manualClock{t: epoch}
	end, _ := newPipePair()
	s, err := NewInputSync(Config{SiteNo: 2}, clk, epoch, []Peer{{Site: 0, Conn: end}})
	if err != nil {
		t.Fatal(err)
	}
	send := func(from, to int32) {
		n := int(to - from + 1)
		m := syncMsg{Sender: 0, Merged: true, Ack: -1, From: from, To: to, Inputs: make([]uint16, n)}
		s.handle(s.peers[0], encodeSync(nil, m))
	}
	// lastRcv starts at BufFrame-1 = 5. First message advances to 10:
	// 5 fresh words. The overlapping retransmission 6..12 advances to 12:
	// 2 fresh, 5 duplicates.
	send(6, 10)
	send(6, 12)
	st := s.Stats()
	if st.InputsFresh != 7 || st.InputsDup != 5 {
		t.Fatalf("fresh=%d dup=%d, want fresh=7 dup=5 (merged stream must split by frontier advance)",
			st.InputsFresh, st.InputsDup)
	}
	if st.MalformedRcvd != 0 {
		t.Fatalf("MalformedRcvd = %d", st.MalformedRcvd)
	}
}

// TestMaxFrameAheadTracksLiveLag: the hostile-range guard must scale with the
// live lag, not the configured BufFrame — an adaptive-lag session that raised
// the lag to 30 legitimately sends frames ~30 ahead, which the old
// cfg.BufFrame-based bound misclassified as hostile and dropped.
func TestMaxFrameAheadTracksLiveLag(t *testing.T) {
	clk := &manualClock{t: epoch}
	end, _ := newPipePair()
	s, err := NewInputSync(Config{SiteNo: 0}, clk, epoch, []Peer{{Site: 1, Conn: end}})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLag(30)
	// Bound with live lag 30: pointer 0 + 2*30 + 512 = 572. The old bound
	// (BufFrame 6) was 524, so frame 560 exercises exactly the regression.
	m := syncMsg{Sender: 1, Ack: -1, From: 545, To: 560, Inputs: make([]uint16, 16)}
	s.handle(s.peers[1], encodeSync(nil, m))
	if got := s.LastRcv(1); got != 560 {
		t.Fatalf("LastRcv(1) = %d, want 560 — in-lag frame rejected by the stale bound", got)
	}
	if got := s.Stats().MalformedRcvd; got != 0 {
		t.Fatalf("MalformedRcvd = %d, want 0", got)
	}
	// Beyond the live-lag bound is still hostile.
	m = syncMsg{Sender: 1, Ack: -1, From: 573, To: 580, Inputs: make([]uint16, 8)}
	s.handle(s.peers[1], encodeSync(nil, m))
	if got := s.LastRcv(1); got != 560 {
		t.Fatalf("hostile frame advanced LastRcv to %d", got)
	}
	if got := s.Stats().MalformedRcvd; got != 1 {
		t.Fatalf("MalformedRcvd = %d, want 1", got)
	}
}

// TestFirstExchangeYieldsRTTSample: an echo whose timestamp is exactly 0 µs
// (stamped at the epoch) and whose hold is 0 µs is a legitimate RTT sample.
// The old sentinel `EchoTime != 0 || EchoDelay != 0` discarded it; the
// explicit have-echo wire bit must not.
func TestFirstExchangeYieldsRTTSample(t *testing.T) {
	clk := &manualClock{t: epoch} // microsSince(epoch, now) == 0
	c0, c1 := newPipePair()
	s0, err := NewInputSync(Config{SiteNo: 0}, clk, epoch, []Peer{{Site: 1, Conn: c0}})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewInputSync(Config{SiteNo: 1}, clk, epoch, []Peer{{Site: 0, Conn: c1}})
	if err != nil {
		t.Fatal(err)
	}
	s0.FlushAcks() // SendTime = 0 µs
	s1.Pump()      // receives it; echo state: time 0, held 0
	s1.FlushAcks() // echoes immediately: EchoTime = 0, EchoDelay = 0
	clk.Sleep(10 * time.Millisecond)
	s0.Pump()
	if got := s0.RTTTo(1); got != 10*time.Millisecond {
		t.Fatalf("RTTTo(1) = %v, want 10ms — the all-zero echo was discarded", got)
	}
}
