package core

// inputRing is the constant-memory replacement for the paper's "unlimited
// array" IBuf (Algorithm 2). It stores merged input words for a sliding
// window of frames [lo, hi): lo is the retired edge — every frame below it
// has been both delivered locally and acknowledged by every peer that might
// still need it retransmitted — and hi is one past the highest frame
// written so far.
//
// Storage is a power-of-two circular buffer indexed by frame & (len-1), so
// a frame keeps the same slot until it is retired and the window can slide
// forever without copying. The buffer grows (doubling) only while the live
// window outgrows it; in steady state a session runs in O(lag + unacked
// backlog) memory regardless of how many frames it has executed.
//
// Invariants:
//
//	lo <= hi, hi-lo <= len(buf), len(buf) is a power of two
//	slots outside [lo, hi) are zero (so a slot is clean when reused)
type inputRing struct {
	buf []uint16
	lo  int // lowest retained frame
	hi  int // one past the highest written frame
}

// ringInitialCap comfortably covers the steady-state window of a default
// session (lag 6, 20 ms send pacing) without ever growing.
const ringInitialCap = 256

func newInputRing(start int) inputRing {
	return inputRing{buf: make([]uint16, ringInitialCap), lo: start, hi: start}
}

// window returns the number of live frames.
func (r *inputRing) window() int { return r.hi - r.lo }

// get returns the merged word for frame f. ok is false outside [lo, hi):
// either the frame was already retired or nothing has been buffered for it
// yet — callers must not mistake that for an authoritative zero input.
func (r *inputRing) get(f int) (word uint16, ok bool) {
	if f < r.lo || f >= r.hi {
		return 0, false
	}
	return r.buf[f&(len(r.buf)-1)], true
}

// merge overwrites the mask bits of frame f with input&mask, extending the
// window (zero-filling any skipped frames) as needed. Writes below the
// retired edge are dropped — they are retransmissions of frames every
// consumer is already done with — and merge reports whether the write
// landed.
func (r *inputRing) merge(f int, mask, input uint16) bool {
	if f < r.lo {
		return false
	}
	if f >= r.hi {
		if f+1-r.lo > len(r.buf) {
			r.grow(f + 1 - r.lo)
		}
		// Slots between the old hi and f are zero already (cleared on
		// retire, or untouched since allocation/grow).
		r.hi = f + 1
	}
	slot := &r.buf[f&(len(r.buf)-1)]
	*slot = *slot&^mask | input&mask
	return true
}

// retire discards every frame below edge, zeroing the freed slots so they
// are clean when the window wraps onto them. The retired edge never moves
// backward; retiring past hi empties the window and repositions it.
func (r *inputRing) retire(edge int) {
	if edge <= r.lo {
		return
	}
	clearTo := edge
	if clearTo > r.hi {
		clearTo = r.hi
	}
	mask := len(r.buf) - 1
	for f := r.lo; f < clearTo; f++ {
		r.buf[f&mask] = 0
	}
	r.lo = edge
	if r.hi < edge {
		r.hi = edge
	}
}

// grow reallocates to the next power of two >= need and re-places the live
// window (slot positions depend on the capacity mask).
func (r *inputRing) grow(need int) {
	newCap := len(r.buf)
	for newCap < need {
		newCap *= 2
	}
	buf := make([]uint16, newCap)
	oldMask, newMask := len(r.buf)-1, newCap-1
	for f := r.lo; f < r.hi; f++ {
		buf[f&newMask] = r.buf[f&oldMask]
	}
	r.buf = buf
}
