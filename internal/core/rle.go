package core

import (
	"encoding/binary"
	"fmt"
)

// Zero-run RLE for savestate transfer. An RK-32 savestate is a 64 KiB
// memory image that is mostly zeros early in a game, so compressing the
// join-time snapshot typically shrinks the transfer from ~9 UDP chunks to
// one or two. The codec is deliberately trivial — framing is two token
// kinds, each with a uvarint length:
//
//	0x00 <uvarint n>          n zero bytes
//	0x01 <uvarint n> <bytes>  n literal bytes
//
// Restore speed does not matter on this path (one decompression per join),
// so clarity wins over cleverness.

const (
	rleZeroRun = 0x00
	rleLiteral = 0x01

	// rleMinRun is the shortest zero run worth encoding as a token;
	// shorter runs ride along inside literals.
	rleMinRun = 4
)

// rleCompress encodes data.
func rleCompress(data []byte) []byte {
	out := make([]byte, 0, len(data)/8+16)
	var scratch [binary.MaxVarintLen64]byte

	emitZero := func(n int) {
		out = append(out, rleZeroRun)
		out = append(out, scratch[:binary.PutUvarint(scratch[:], uint64(n))]...)
	}
	emitLit := func(lit []byte) {
		if len(lit) == 0 {
			return
		}
		out = append(out, rleLiteral)
		out = append(out, scratch[:binary.PutUvarint(scratch[:], uint64(len(lit)))]...)
		out = append(out, lit...)
	}

	i := 0
	litStart := 0
	for i < len(data) {
		if data[i] != 0 {
			i++
			continue
		}
		runStart := i
		for i < len(data) && data[i] == 0 {
			i++
		}
		if i-runStart >= rleMinRun {
			emitLit(data[litStart:runStart])
			emitZero(i - runStart)
			litStart = i
		}
	}
	emitLit(data[litStart:])
	return out
}

// rleDecompress decodes into a buffer of exactly want bytes, failing on any
// malformed or mismatched input.
func rleDecompress(data []byte, want int) ([]byte, error) {
	out := make([]byte, 0, want)
	for len(data) > 0 {
		kind := data[0]
		data = data[1:]
		n, used := binary.Uvarint(data)
		if used <= 0 {
			return nil, fmt.Errorf("core: rle: bad length varint")
		}
		data = data[used:]
		if int(n) > want-len(out) {
			return nil, fmt.Errorf("core: rle: output overflows %d bytes", want)
		}
		switch kind {
		case rleZeroRun:
			out = append(out, make([]byte, n)...)
		case rleLiteral:
			if uint64(len(data)) < n {
				return nil, fmt.Errorf("core: rle: literal truncated")
			}
			out = append(out, data[:n]...)
			data = data[n:]
		default:
			return nil, fmt.Errorf("core: rle: unknown token %#x", kind)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("core: rle: decoded %d bytes, want %d", len(out), want)
	}
	return out, nil
}
