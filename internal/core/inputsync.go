package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/span"
	"retrolock/internal/vclock"
)

// InputSync implements Algorithm 2 (SyncInput) generalized from two sites to
// N players plus observers. For the paper's two-site configuration the code
// paths reduce exactly to the published pseudocode:
//
//   - IBuf            -> ibuf (a bounded ring window instead of the paper's
//     "unlimited array"; see inputRing)
//   - IBufPointer     -> pointer
//   - LastRcvFrame[i] -> lastRcv[i]
//   - LastAckFrame[i] -> peers[i].lastAck
//
// It is not safe for concurrent use; the site's frame loop owns it.
type InputSync struct {
	cfg   Config
	clock vclock.Clock
	epoch time.Time

	// lag is the current local lag in frames. It starts at cfg.BufFrame
	// and changes only through SetLag (the adaptive-lag ablation; the
	// paper's system keeps it fixed, §4.2).
	lag int

	peers map[int]*peerState
	// peerList is the same set as peers, in registration order. The per-poll
	// loops (Pump, retire, FlushAcks) walk the slice: ranging over a Go map
	// re-randomizes iteration order on every pass, which costs more than the
	// loop bodies on the sync hot path.
	peerList []*peerState

	ibuf    inputRing
	pointer int
	lastRcv []int // indexed by player site, len NumPlayers

	// retainFloor pins the ring's retired edge: frames >= retainFloor stay
	// buffered even after delivery and acknowledgement. The lockstep path
	// leaves it unset (maxInt); the rollback baseline lowers it to its
	// confirmation frontier, which re-reads delivered frames during
	// reconciliation. See SetRetainFloor.
	retainFloor int

	// rcvAt[k] is when lastRcv[k] last advanced: MasterRcvTime for site 0
	// (Algorithm 4) and the basis of remote-frame estimation for the
	// rollback baseline's timesync. The zero time means "never".
	rcvAt []time.Time

	stats syncCounters

	// lastWait is how long the most recent SyncInput blocked (0 when it
	// did not). Frame-loop local — the session's flight recorder reads it
	// right after SyncInput returns.
	lastWait time.Duration

	// Published mirrors of frame-loop state for concurrent pollers. Single
	// writer (the frame loop) stores, any goroutine loads — same discipline
	// as syncCounters. They exist so Lag and AllAcked never read the plain
	// fields or walk the peers map (which AddJoiner mutates mid-session).
	lagPub    atomic.Int64 // mirrors lag
	ownRcvPub atomic.Int64 // mirrors lastRcv[SiteNo]
	minAckPub atomic.Int64 // min of lastAck across peers (maxInt if peerless)

	// tele is the optional observability bundle (tracer + histograms).
	// All hooks are nil-safe, so the zero value costs one predictable
	// branch per event on the hot path.
	tele *obs.SessionObs

	// journal is the optional input-journey span journal; every protocol
	// hop stamps it (nil-safe, zero-alloc). See internal/span.
	journal *span.Journal

	// batch coalesces the frame's journal stamps so the hot path takes the
	// journal lock once per frame instead of once per hop. SyncInput and the
	// session's render step flush it; FlushSpans covers the drain paths.
	batch span.Batch

	// Exec report state: the newest frame this site began executing and its
	// begin instant (µs since epoch), piggybacked on every outgoing sync
	// message so the peer can align the two execution timelines.
	lastExecFrame int
	lastExecTime  uint32
	haveExec      bool

	// OnHash, when set, receives peer state digests (divergence
	// detection); Session wires it to its hash log.
	OnHash func(site, frame int, hash uint64)

	// Hot-path scratch buffers, reused across sends and receives so the
	// 60 FPS loop does not allocate (and hence does not churn the GC).
	sendBuf    []byte
	sendInputs []uint16
	rcvInputs  []uint16
}

// peerState tracks per-connection protocol state.
type peerState struct {
	Peer
	lastAck  int       // last own-input frame this peer acknowledged
	lastSend time.Time // for 20 ms send pacing
	rtt      RTTEstimator

	// Echo bookkeeping for RTT measurement.
	echoTime   uint32
	echoRecvAt time.Time
	haveEcho   bool

	// offset estimates this peer's clock offset from the same echo
	// exchanges that feed the RTT estimator (see span.OffsetEstimator).
	offset span.OffsetEstimator
}

// Stats counts protocol activity, for the extended experiments. It is a
// plain snapshot struct; the live counters behind it are atomic (see
// syncCounters), so Stats() may be polled from any goroutine while the
// frame loop runs.
type Stats struct {
	MsgsSent      int
	MsgsRcvd      int
	BytesSent     int64 // sync-protocol payload bytes on the wire
	BytesRcvd     int64
	InputsSent    int // input words transmitted, including retransmissions
	InputsFresh   int // first-time receptions that advanced lastRcv
	InputsDup     int // received input words that were already buffered
	Waits         int // SyncInput invocations that had to block
	WaitTime      time.Duration
	MalformedRcvd int
	SnapChunks    int // snapshot chunks served to late joiners
	BufPeak       int // high-water mark of the input ring window, in frames
}

// syncCounters is the live, concurrently-pollable form of Stats. The frame
// loop is the only writer, so plain Store suffices for the high-water mark;
// atomic loads make reads race-free from any goroutine (registry gauges,
// Drain on another site, chaos phase snapshots).
type syncCounters struct {
	msgsSent    atomic.Int64
	msgsRcvd    atomic.Int64
	bytesSent   atomic.Int64
	bytesRcvd   atomic.Int64
	inputsSent  atomic.Int64
	inputsFresh atomic.Int64
	inputsDup   atomic.Int64
	waits       atomic.Int64
	waitTimeNs  atomic.Int64
	malformed   atomic.Int64
	snapChunks  atomic.Int64
	bufPeak     atomic.Int64
}

// snapshot assembles a Stats view. Each field is read atomically but the
// struct is not a consistent cut across fields — adequate for monitoring and
// for deltas over quiescent points (phase boundaries, drained sessions).
func (c *syncCounters) snapshot() Stats {
	return Stats{
		MsgsSent:      int(c.msgsSent.Load()),
		MsgsRcvd:      int(c.msgsRcvd.Load()),
		BytesSent:     c.bytesSent.Load(),
		BytesRcvd:     c.bytesRcvd.Load(),
		InputsSent:    int(c.inputsSent.Load()),
		InputsFresh:   int(c.inputsFresh.Load()),
		InputsDup:     int(c.inputsDup.Load()),
		Waits:         int(c.waits.Load()),
		WaitTime:      time.Duration(c.waitTimeNs.Load()),
		MalformedRcvd: int(c.malformed.Load()),
		SnapChunks:    int(c.snapChunks.Load()),
		BufPeak:       int(c.bufPeak.Load()),
	}
}

// NewInputSync creates the sync state for one site. epoch anchors the
// message timestamps; every site may use its own epoch. peers lists every
// remote site this one exchanges messages with (players and observers).
func NewInputSync(cfg Config, clock vclock.Clock, epoch time.Time, peers []Peer) (*InputSync, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &InputSync{
		cfg:         cfg,
		clock:       clock,
		epoch:       epoch,
		lag:         cfg.BufFrame,
		peers:       make(map[int]*peerState, len(peers)),
		lastRcv:     make([]int, cfg.NumPlayers),
		rcvAt:       make([]time.Time, cfg.NumPlayers),
		pointer:     cfg.StartFrame,
		ibuf:        newInputRing(cfg.StartFrame),
		retainFloor: int(^uint(0) >> 1),

		lastExecFrame: -1,
	}
	// Initialization (paper §3): the arrays start at BufFrame-1, because
	// the first BufFrame frames of the game carry no input (local lag).
	// A late joiner (StartFrame > BufFrame-1) has received nothing beyond
	// StartFrame-1; everything after its snapshot must arrive on the wire.
	init := cfg.BufFrame - 1
	if cfg.StartFrame-1 > init {
		init = cfg.StartFrame - 1
	}
	for k := 0; k < cfg.NumPlayers; k++ {
		s.lastRcv[k] = init
	}
	for _, p := range peers {
		if p.Site == cfg.SiteNo {
			return nil, fmt.Errorf("core: peer list contains self (site %d)", p.Site)
		}
		if _, dup := s.peers[p.Site]; dup {
			return nil, fmt.Errorf("core: duplicate peer site %d", p.Site)
		}
		ps := &peerState{Peer: p, lastAck: init}
		s.peers[p.Site] = ps
		s.peerList = append(s.peerList, ps)
	}
	s.lagPub.Store(int64(s.lag))
	s.ownRcvPub.Store(int64(init))
	s.republishAcks()
	return s, nil
}

// republishAcks recomputes the published minimum acknowledgement across all
// peers. The frame loop calls it whenever a lastAck advances or a peer
// joins, so AllAcked can answer pollers without touching the peers map.
func (s *InputSync) republishAcks() {
	min := int64(int(^uint(0) >> 1))
	for _, p := range s.peerList {
		if a := int64(p.lastAck); a < min {
			min = a
		}
	}
	s.minAckPub.Store(min)
}

// Config returns the site configuration (with defaults applied).
func (s *InputSync) Config() Config { return s.cfg }

// Stats returns a snapshot of the protocol counters. Safe to call from any
// goroutine while the session runs.
func (s *InputSync) Stats() Stats { return s.stats.snapshot() }

// SetObs attaches an observability bundle (nil detaches). Call before the
// session starts; the hooks themselves never allocate.
func (s *InputSync) SetObs(o *obs.SessionObs) { s.tele = o }

// SetJournal attaches an input-journey span journal (nil detaches). Call
// before the session starts; every stamp is nil-safe and alloc-free.
func (s *InputSync) SetJournal(j *span.Journal) {
	s.journal = j
	s.batch.Reset(j)
}

// Journal returns the attached span journal (nil when none).
func (s *InputSync) Journal() *span.Journal { return s.journal }

// ReportExec records that this site began executing frame at instant at. The
// report rides on every subsequent outgoing sync message (execFrame/execTime)
// and stamps the local journal, so both sites' span timelines close. The
// frame loop calls it once per frame, right at the frame's begin.
func (s *InputSync) ReportExec(frame int, at time.Time) {
	s.lastExecFrame = frame
	s.lastExecTime = microsSince(s.epoch, at)
	s.haveExec = true
	s.batch.Executed(int64(frame), at)
}

// OffsetTo returns the current clock-offset estimate toward a peer site in
// microseconds (add to the peer's stamps to express them on the local clock)
// and whether any estimate exists. Like Stats' peers-map walkers, call it
// from the frame loop's goroutine (AddJoiner mutates the map mid-session).
func (s *InputSync) OffsetTo(site int) (int64, bool) {
	if p, ok := s.peers[site]; ok {
		return p.offset.OffsetMicros()
	}
	return 0, false
}

// Pointer returns the next frame to be delivered (IBufPointer).
func (s *InputSync) Pointer() int { return s.pointer }

// LastRcv returns LastRcvFrame for a player site (0 for non-player sites).
func (s *InputSync) LastRcv(site int) int {
	if site < 0 || site >= len(s.lastRcv) {
		return 0
	}
	return s.lastRcv[site]
}

// put merges one player's partial input into the buffer slot for frame f
// (paper: IBuf[f](SET[k]) = I(SET[k])). Writes below the ring's retired
// edge are stale retransmissions and are dropped.
func (s *InputSync) put(f, player int, input uint16) {
	if s.ibuf.merge(f, s.cfg.Masks[player], input) {
		if w := int64(s.ibuf.window()); w > s.stats.bufPeak.Load() {
			s.stats.bufPeak.Store(w)
		}
	}
}

// maxFrameAhead bounds how far beyond the local pointer a received frame may
// reach. A correct peer cannot run ahead of us by more than the mutual local
// lag (it needs our inputs to progress), so anything further is hostile or
// corrupt and must not balloon the buffer. The bound follows the live lag —
// an adaptive-lag session that raised the lag above cfg.BufFrame legitimately
// runs that much further ahead — but never shrinks below the configured
// BufFrame, so frames sent before a lag reduction are still accepted.
func (s *InputSync) maxFrameAhead() int {
	lag := s.lag
	if s.cfg.BufFrame > lag {
		lag = s.cfg.BufFrame
	}
	return s.pointer + 2*lag + maxInputsPerMsg
}

// get returns the merged input buffered for frame f, or (0, false) outside
// the ring window — the frame was retired, or nothing has arrived for it.
// The first BufFrame frames of a session are never written (local lag), so
// in-window-but-unwritten frames simply do not exist: reads of them report
// ok=false and the input is an authoritative zero by protocol definition.
func (s *InputSync) get(f int) (uint16, bool) {
	return s.ibuf.get(f)
}

// retire slides the ring's retired edge to the first frame someone may still
// need: the local delivery pointer, any peer's first unacknowledged frame
// (retransmission source — only players retransmit), and the external retain
// floor. Called after deliveries and ack advances; each is monotone, so the
// edge never moves backward.
func (s *InputSync) retire() {
	edge := s.pointer
	if !s.cfg.IsObserver() {
		for _, p := range s.peerList {
			if a := p.lastAck + 1; a < edge {
				edge = a
			}
		}
	}
	if s.retainFloor < edge {
		edge = s.retainFloor
	}
	s.ibuf.retire(edge)
}

// SetRetainFloor pins buffered frames >= f against retirement. The rollback
// baseline maintains it at its confirmation frontier, because reconciliation
// re-reads inputs of frames that lockstep would have discarded the moment
// they were delivered and acknowledged.
func (s *InputSync) SetRetainFloor(f int) {
	s.retainFloor = f
}

// SyncInput is Algorithm 2: buffer the local input for frame F+BufFrame,
// exchange messages until every player's input for frame F is present, and
// return the merged input. For observers the local input is ignored.
//
// On a network or peer failure the call blocks, freezing the game, exactly
// as §3.1 prescribes — unless Config.WaitTimeout bounds the wait, in which
// case it returns ErrWaitTimeout.
func (s *InputSync) SyncInput(input uint16, frame int) (uint16, error) {
	if frame != s.pointer {
		return 0, fmt.Errorf("core: SyncInput frame %d, expected %d (frames must be sequential)", frame, s.pointer)
	}

	// Lines 1-5: buffer the local partial input, delayed by the local
	// lag. When the lag was just raised (adaptive mode), the skipped
	// frames are filled with the same input so the remote site is never
	// starved; when it was lowered, inputs that would land on
	// already-submitted frames are dropped until the pointer catches up.
	if !s.cfg.IsObserver() {
		lagF := frame + s.lag
		if s.lastRcv[s.cfg.SiteNo] < lagF {
			pressedAt := time.Time{}
			if s.journal != nil {
				pressedAt = s.clock.Now()
			}
			for f := s.lastRcv[s.cfg.SiteNo] + 1; f <= lagF; f++ {
				s.put(f, s.cfg.SiteNo, input)
				s.batch.Pressed(int64(f), pressedAt)
			}
			s.lastRcv[s.cfg.SiteNo] = lagF
			s.ownRcvPub.Store(int64(lagF))
		}
	}

	// Lines 6-21: exchange messages until the exit condition holds.
	var deadline time.Time
	if s.cfg.WaitTimeout > 0 {
		deadline = s.clock.Now().Add(s.cfg.WaitTimeout)
	}
	waited := false
	s.lastWait = 0
	waitStart := s.clock.Now()
	for {
		s.Pump()
		if s.readyLocked() {
			break
		}
		if !waited {
			waited = true
			s.stats.waits.Add(1)
		}
		if s.cfg.WaitTimeout > 0 && s.clock.Now().After(deadline) {
			return 0, fmt.Errorf("%w: frame %d still missing inputs (have %v)", ErrWaitTimeout, frame, s.lastRcv)
		}
		s.clock.Sleep(s.cfg.PollInterval)
	}
	if waited {
		now := s.clock.Now()
		d := now.Sub(waitStart)
		s.lastWait = d
		s.stats.waitTimeNs.Add(int64(d))
		s.tele.Stall(frame, now, d)
	}

	// Lines 22-23.
	merged, _ := s.get(s.pointer)
	s.pointer++
	s.retire()
	// One journal-lock round trip applies every hop stamped this frame.
	s.batch.Flush()
	return merged, nil
}

// FlushSpans applies any journal stamps still batched on the hot path. The
// drain and handshake paths call it after pumping the protocol outside
// SyncInput, which otherwise owns the per-frame flush.
func (s *InputSync) FlushSpans() { s.batch.Flush() }

// completeThrough returns the highest frame for which every player's input
// is buffered — the upper bound of what may be forwarded to observers.
func (s *InputSync) completeThrough() int {
	min := int(^uint(0) >> 1)
	for k := 0; k < s.cfg.NumPlayers; k++ {
		if s.lastRcv[k] < min {
			min = s.lastRcv[k]
		}
	}
	return min
}

// readyLocked is the loop exit condition (line 21), generalized: every
// player's inputs for the pointer frame have been received.
func (s *InputSync) readyLocked() bool {
	for k := 0; k < s.cfg.NumPlayers; k++ {
		if s.lastRcv[k] < s.pointer {
			return false
		}
	}
	return true
}

// Pump performs one round of non-blocking protocol work: paced sends (lines
// 7-11) and receive processing (lines 12-20). The frame loop calls it via
// SyncInput; Session.Drain and the handshake call it directly.
func (s *InputSync) Pump() {
	now := s.clock.Now()
	for _, p := range s.peerList {
		if now.Sub(p.lastSend) >= s.cfg.SendInterval {
			s.sendTo(p, now)
		}
	}
	for _, p := range s.peerList {
		for {
			raw, ok := p.Conn.TryRecv()
			if !ok {
				break
			}
			s.handle(p, raw)
		}
	}
}

// sendTo builds and transmits one sync message to peer p: an ack for
// everything received from p plus every own input p has not acknowledged.
func (s *InputSync) sendTo(p *peerState, now time.Time) {
	m := syncMsg{
		Sender:   s.cfg.SiteNo,
		SendTime: microsSince(s.epoch, now),
	}
	if p.Site < s.cfg.NumPlayers {
		m.Ack = int32(s.lastRcv[p.Site])
	} else {
		m.Ack = -1 // observers contribute no inputs worth acking
	}
	if p.haveEcho {
		m.HasEcho = true
		m.EchoTime = p.echoTime
		m.EchoDelay = uint32(now.Sub(p.echoRecvAt) / time.Microsecond)
	}
	if s.haveExec {
		m.HasExec = true
		m.ExecFrame = int32(s.lastExecFrame)
		m.ExecTime = s.lastExecTime
	}

	// sd[1]..sd[2]: the unacked input backlog. To player peers a player
	// sends its own partial inputs; to observer peers it forwards the
	// complete merged words instead (every player's bits), so a spectator
	// can follow the game through a single connection.
	forwarding := !s.cfg.IsObserver() && p.Site >= s.cfg.NumPlayers
	from, to := p.lastAck+1, -1
	switch {
	case forwarding:
		to = s.completeThrough()
	case !s.cfg.IsObserver():
		to = s.lastRcv[s.cfg.SiteNo]
	}
	if to-from+1 > maxInputsPerMsg {
		to = from + maxInputsPerMsg - 1
	}
	if to < from {
		// Keepalive: ack + RTT echo only.
		m.From, m.To = int32(s.pointer), int32(s.pointer-1)
	} else {
		m.From, m.To = int32(from), int32(to)
		m.Inputs = s.sendInputs[:0]
		for f := from; f <= to; f++ {
			word, _ := s.get(f) // unwritten early frames read as 0
			if !forwarding {
				word &= s.cfg.Masks[s.cfg.SiteNo]
			}
			m.Inputs = append(m.Inputs, word)
		}
		s.sendInputs = m.Inputs // keep any growth for the next send
		m.Merged = forwarding
	}
	s.sendBuf = encodeSync(s.sendBuf, m)
	if err := p.Conn.Send(s.sendBuf); err != nil {
		// Unreachable peers behave like packet loss: retransmission
		// covers recovery once the connection heals.
		return
	}
	p.lastSend = now
	s.stats.msgsSent.Add(1)
	s.stats.bytesSent.Add(int64(len(s.sendBuf)))
	s.stats.inputsSent.Add(int64(len(m.Inputs)))
	s.tele.InputSend(s.pointer, now, len(s.sendBuf))
	if !forwarding && len(m.Inputs) > 0 {
		s.batch.SendRange(int64(m.From), int64(m.To), now)
	}
}

// handle processes one received datagram from peer p (lines 12-20).
func (s *InputSync) handle(p *peerState, raw []byte) {
	s.stats.bytesRcvd.Add(int64(len(raw)))
	if len(raw) == 0 {
		s.stats.malformed.Add(1)
		return
	}
	switch raw[0] {
	case msgSync:
		m, err := decodeSyncInto(raw, s.rcvInputs)
		if err != nil {
			s.stats.malformed.Add(1)
			return
		}
		if m.Inputs != nil {
			s.rcvInputs = m.Inputs // keep any growth for the next receive
		}
		s.handleSync(p, m)
	case msgHash:
		sender, frame, hash, err := decodeHash(raw)
		if err != nil {
			s.stats.malformed.Add(1)
			return
		}
		if s.OnHash != nil {
			s.OnHash(sender, frame, hash)
		}
	case msgReady, msgGo, msgJoin, msgSnapChunk, msgSnapAck:
		// Session-level traffic arriving after the handshake (stray
		// retransmissions); ignore.
	default:
		s.stats.malformed.Add(1)
	}
}

func (s *InputSync) handleSync(p *peerState, m syncMsg) {
	s.stats.msgsRcvd.Add(1)
	now := s.clock.Now()
	s.tele.InputRecv(int(m.To), now, len(m.Inputs))

	// RTT sample: the peer echoed our sendTime together with how long it
	// held it. rtt = elapsed since we stamped it, minus the hold. HasEcho
	// is an explicit wire bit, so a timestamp that legitimately reads 0 µs
	// (stamped exactly at the epoch, echoed immediately) still yields a
	// sample instead of being mistaken for "no echo yet".
	if m.HasEcho {
		elapsed := time.Duration(microsSince(s.epoch, now)-m.EchoTime) * time.Microsecond
		hold := time.Duration(m.EchoDelay) * time.Microsecond
		if sample := elapsed - hold; sample >= 0 && sample < time.Minute {
			p.rtt.Sample(sample)
			s.tele.RTTSample(sample)
			// The same four instants are an NTP exchange: they bound the
			// peer's clock offset, which maps its timestamps (send instants,
			// exec reports) onto the local timeline for the span journal.
			p.offset.AddEcho(m.EchoTime, m.EchoDelay, m.SendTime, microsSince(s.epoch, now))
		}
	}
	// Remember the peer's freshest timestamp to echo back.
	p.echoTime = m.SendTime
	p.echoRecvAt = now
	p.haveEcho = true

	if int(m.To) > s.maxFrameAhead() {
		// Frames impossibly far in the future: drop the message (a
		// correct peer retransmits; a hostile one must not make us
		// allocate unboundedly).
		s.stats.malformed.Add(1)
		return
	}

	switch {
	case m.Merged && s.cfg.IsObserver() && m.Sender < s.cfg.NumPlayers && m.To >= m.From:
		// Forwarded stream: complete input words from one player. Writes
		// below the ring's retired edge are stale and dropped by put.
		for i, in := range m.Inputs {
			f := int(m.From) + i
			for k := 0; k < s.cfg.NumPlayers; k++ {
				s.put(f, k, in)
			}
		}
		// A merged word advances every player's frontier at once; split
		// the payload into fresh vs retransmitted words by the actual
		// advance delta, exactly like the player path below.
		prev := s.lastRcv[0]
		for k := 1; k < s.cfg.NumPlayers; k++ {
			if s.lastRcv[k] < prev {
				prev = s.lastRcv[k]
			}
		}
		if int(m.To) > prev {
			fresh := int(m.To) - prev
			if fresh > len(m.Inputs) {
				fresh = len(m.Inputs)
			}
			s.stats.inputsFresh.Add(int64(fresh))
			s.stats.inputsDup.Add(int64(len(m.Inputs) - fresh))
			for k := 0; k < s.cfg.NumPlayers; k++ {
				if int(m.To) > s.lastRcv[k] {
					s.lastRcv[k] = int(m.To)
					s.rcvAt[k] = now
				}
			}
		} else {
			s.stats.inputsDup.Add(int64(len(m.Inputs)))
		}

	case !m.Merged && m.Sender < s.cfg.NumPlayers && m.To >= m.From:
		// Line 13: merge the peer's partial inputs (idempotent
		// overwrite suppresses duplicates).
		for i, in := range m.Inputs {
			s.put(int(m.From)+i, m.Sender, in)
		}
		// Lines 14-16.
		if prev := s.lastRcv[m.Sender]; int(m.To) > prev {
			s.stats.inputsFresh.Add(int64(int(m.To) - prev))
			s.stats.inputsDup.Add(int64(len(m.Inputs) - (int(m.To) - prev)))
			s.lastRcv[m.Sender] = int(m.To)
			// For site 0 this is MasterRcvTime (§3.2): when the
			// freshest master input arrived.
			s.rcvAt[m.Sender] = now
			if s.journal != nil {
				// Stamp the freshly arrived frames. The peer's send instant
				// maps to the local clock once the offset estimate exists
				// (0 = unmapped: the span keeps the local receive instants
				// but yields no one-way latency sample).
				remoteNs := s.mapRemoteMicros(p, m.SendTime, now)
				for f := prev + 1; f <= int(m.To); f++ {
					s.batch.Recv(int64(f), now, remoteNs)
				}
			}
		} else {
			s.stats.inputsDup.Add(int64(len(m.Inputs)))
		}
	}

	// The peer's exec report closes cross-site spans: its begin instant of
	// ExecFrame, mapped onto the local clock, is both this frame's remote
	// execution stamp (skew) and — shifted by the local lag — the press
	// instant of the input taking effect at ExecFrame+lag (end-to-end
	// cross-site input latency).
	if m.HasExec && s.journal != nil {
		if remoteNs := s.mapRemoteMicros(p, m.ExecTime, now); remoteNs > 0 {
			s.batch.RemoteExec(int64(m.ExecFrame), remoteNs, int64(s.lag))
		}
	}

	// Lines 17-19. An advanced ack may free buffered frames for reuse.
	if int(m.Ack) > p.lastAck {
		p.lastAck = int(m.Ack)
		s.republishAcks()
		s.retire()
	}
}

// mapRemoteMicros maps a peer microsecond stamp onto the local nanosecond
// timeline through the peer's clock-offset estimate; 0 when no estimate
// exists yet (or the mapping lands before the epoch).
func (s *InputSync) mapRemoteMicros(p *peerState, stamp uint32, now time.Time) int64 {
	off, ok := p.offset.OffsetMicros()
	if !ok {
		return 0
	}
	return span.MapRemoteMicros(stamp, off, microsSince(s.epoch, now), now.Sub(s.epoch).Nanoseconds())
}

// MasterView is the slave's knowledge of the master site's progress, the
// inputs to Algorithm 4.
type MasterView struct {
	// LastRcvFrame is LastRcvFrame[0]: the newest master frame received.
	LastRcvFrame int
	// RcvTime is when that input arrived (MasterRcvTime).
	RcvTime time.Time
	// RTT is the smoothed round-trip estimate to the master.
	RTT time.Duration
	// OK reports whether the view is usable (something was received and
	// an RTT sample exists).
	OK bool
}

// MasterView assembles the current master view. On the master itself OK is
// always false (Algorithm 4 sets SyncAdjustTimeDelta to zero there).
func (s *InputSync) MasterView() MasterView {
	if s.cfg.SiteNo == 0 {
		return MasterView{}
	}
	master, ok := s.peers[0]
	rcvAt := s.rcvAt[0]
	if !ok || rcvAt.IsZero() || !master.rtt.Valid() {
		return MasterView{}
	}
	return MasterView{
		LastRcvFrame: s.lastRcv[0],
		RcvTime:      rcvAt,
		RTT:          master.rtt.Estimate(),
		OK:           true,
	}
}

// RemoteFrameEstimate extrapolates player k's current frame from its
// freshest received input, the time since, and the transit time (RTT/2, as
// in §3.2) — used by the rollback baseline's timesync. ok is false before
// anything was received.
func (s *InputSync) RemoteFrameEstimate(k int) (frame float64, ok bool) {
	if k < 0 || k >= len(s.rcvAt) || s.rcvAt[k].IsZero() {
		return 0, false
	}
	at := s.rcvAt[k]
	elapsed := s.clock.Now().Sub(at)
	if p, direct := s.peers[k]; direct && p.rtt.Valid() {
		elapsed += p.rtt.Estimate() / 2
	}
	return float64(s.lastRcv[k]) + float64(elapsed)/float64(s.cfg.TimePerFrame()), true
}

// AllAcked reports whether every peer has acknowledged this site's inputs
// through the final buffered frame — the drain-completion condition. Reads
// only published atomics, so it is safe to poll from any goroutine while
// the frame loop runs (and while late joiners are being added).
func (s *InputSync) AllAcked() bool {
	if s.cfg.IsObserver() {
		return true
	}
	return s.minAckPub.Load() >= s.ownRcvPub.Load()
}

// --- Hooks for the rollback baseline (no-lag input exchange) -----------

// RecordLocal buffers this site's input for frame f without the local-lag
// shift and without blocking — the rollback baseline's replacement for
// SyncInput's lines 1-5. Frames must be recorded in order.
func (s *InputSync) RecordLocal(f int, input uint16) {
	if s.cfg.IsObserver() || s.lastRcv[s.cfg.SiteNo] >= f {
		return
	}
	s.put(f, s.cfg.SiteNo, input)
	s.lastRcv[s.cfg.SiteNo] = f
	s.ownRcvPub.Store(int64(f))
}

// Advance moves the delivery pointer forward without delivering (the
// rollback baseline executes frames speculatively and never blocks on the
// pointer). The pointer also anchors the hostile-range guard and the ring's
// retired edge.
func (s *InputSync) Advance(frame int) {
	if frame > s.pointer {
		s.pointer = frame
		s.retire()
	}
}

// InputAt returns the merged input currently buffered for frame f. Bits of
// players whose inputs have not arrived read as their last-put value (zero
// if none) — callers decide how to predict. ok is false when f is outside
// the ring window (retired, or nothing buffered yet): the value is then the
// sentinel 0, not an authoritative input, and callers must not treat it as
// one.
func (s *InputSync) InputAt(f int) (input uint16, ok bool) { return s.get(f) }

// AuthoritativeThrough returns the highest frame for which every player's
// real input is buffered.
func (s *InputSync) AuthoritativeThrough() int { return s.completeThrough() }

// LastWait reports how long the most recent SyncInput call blocked (0 when
// it did not). Only meaningful from the frame loop's own goroutine.
func (s *InputSync) LastWait() time.Duration { return s.lastWait }

// Lag returns the current local lag in frames. Safe to call from any
// goroutine (it reads a published mirror of the frame loop's value).
func (s *InputSync) Lag() int { return int(s.lagPub.Load()) }

// SetLag changes the local lag (adaptive-lag ablation). Values below zero
// clamp to zero. The change takes effect at the next SyncInput: a raise
// duplicates the current input over the skipped frames; a reduction drops
// local inputs until the schedule catches up.
func (s *InputSync) SetLag(n int) {
	if n < 0 {
		n = 0
	}
	s.lag = n
	s.lagPub.Store(int64(n))
}

// FlushAcks force-sends one sync message to every peer immediately,
// bypassing the 20 ms pacing. Called on the way out of Drain/Settle so the
// final acknowledgement reaches peers that are still waiting for it —
// otherwise the last site to finish burns its whole drain timeout.
func (s *InputSync) FlushAcks() {
	now := s.clock.Now()
	for _, p := range s.peerList {
		s.sendTo(p, now)
	}
	s.batch.Flush()
}

// RTTTo returns the smoothed RTT estimate toward a peer (0 if none yet).
func (s *InputSync) RTTTo(site int) time.Duration {
	if p, ok := s.peers[site]; ok && p.rtt.Valid() {
		return p.rtt.Estimate()
	}
	return 0
}
