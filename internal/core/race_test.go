package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsPollingDuringSessionIsRaceFree is the regression test for the
// Stats/LagStats data race: a live monitoring goroutine (an obs registry
// scrape, in production) polls the session's accessors from a real OS
// goroutine while the frame loop runs inside the virtual-clock actors. The
// counters used to be plain ints written by the frame loop, so this test
// fails under -race when the accessors bypass the atomic counter structs;
// with them it must be silent.
func TestStatsPollingDuringSessionIsRaceFree(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0.05)
	const frames = 300

	machines := [2]*fakeMachine{{}, {}}
	sessions := [2]*Session{}
	for site := 0; site < 2; site++ {
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 20 * time.Second},
			env.v, epoch, machines[site],
			[]Peer{{Site: 1 - site, Conn: env.conns[site]}},
			WithAdaptiveLag(AdaptiveLag{Min: 2, Max: 12, Margin: 10 * time.Millisecond, Every: 30}))
		if err != nil {
			t.Fatal(err)
		}
		sessions[site] = s
	}

	// The poller races the virtual-time actors on purpose: it runs on a
	// plain goroutine with no synchronization against the frame loops.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var polls atomic.Int64
	var sink atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range sessions {
				st := s.Sync().Stats()
				changes, avg := s.LagStats()
				sink.Add(int64(st.MsgsSent + st.InputsFresh + st.BufPeak + changes + int(avg)))
				sink.Add(int64(s.Frame() + s.Sync().Lag()))
				if s.Sync().AllAcked() {
					sink.Add(1)
				}
			}
			polls.Add(1)
		}
	}()

	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		s := sessions[site]
		done[site] = env.v.Go(func() {
			if errs[site] = s.Handshake(5 * time.Second); errs[site] != nil {
				return
			}
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f*3+site) & 0xFF << (8 * site)
			}, nil)
			s.Drain(2 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	close(stop)
	wg.Wait()

	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged while being polled")
	}
	if polls.Load() == 0 {
		t.Fatal("poller never ran concurrently with the session")
	}
}

// TestRollbackStatsPollingIsRaceFree is the rollback-baseline variant: the
// timewarp counters (rollbacks, replayed frames, snapshot volume) and the
// frame cursor are polled while RunFrames speculates and rewinds.
func TestRollbackStatsPollingIsRaceFree(t *testing.T) {
	env := newTwoSiteEnv(t, 60*time.Millisecond, 0.05)
	const frames = 300

	machines := [2]*fakeMachine{{}, {}}
	sessions := [2]*RollbackSession{}
	for site := 0; site < 2; site++ {
		s, err := NewRollbackSession(Config{SiteNo: site, WaitTimeout: 20 * time.Second},
			env.v, epoch, machines[site],
			[]Peer{{Site: 1 - site, Conn: env.conns[site]}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		sessions[site] = s
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var polls, sink atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range sessions {
				rb := s.Stats()
				st := s.Sync().Stats()
				sink.Add(int64(rb.Rollbacks + rb.ReplayedFrames + rb.DeepestRollback + st.MsgsRcvd))
				sink.Add(int64(s.Frame()))
			}
			polls.Add(1)
		}
	}()

	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		s := sessions[site]
		done[site] = env.v.Go(func() {
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f*7+site) & 0xFF << (8 * site)
			}, nil)
			if errs[site] == nil {
				errs[site] = s.Settle(5 * time.Second)
			}
		})
	}
	<-done[0]
	<-done[1]
	close(stop)
	wg.Wait()

	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("rollback replicas diverged while being polled")
	}
	if polls.Load() == 0 {
		t.Fatal("poller never ran concurrently with the session")
	}
}
