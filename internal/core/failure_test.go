package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
)

// blackhole drops every packet: a full network partition.
type blackhole struct{}

func (blackhole) Plan(time.Time, int) []time.Duration { return nil }

// TestPartitionFreezesThenHeals exercises §3.1's failure semantics: "In the
// event that the remote site or the network fails, the local site will be
// stuck in the loop freezing the game until it is recovered." The game must
// freeze during a 2-second partition, resume afterwards, and stay
// logically consistent.
func TestPartitionFreezesThenHeals(t *testing.T) {
	env := newTwoSiteEnv(t, 40*time.Millisecond, 0)
	const frames = 600

	// Partition from t=2s to t=4s.
	env.v.Schedule(epoch.Add(2*time.Second), func() {
		env.net.SetLinkBoth("site0", "site1", blackhole{})
	})
	env.v.Schedule(epoch.Add(4*time.Second), func() {
		fwd, rev := netem.Symmetric(40*time.Millisecond, 0, 0, 777)
		env.net.SetLink("site0", "site1", netem.New(fwd))
		env.net.SetLink("site1", "site0", netem.New(rev))
	})

	var maxGap [2]time.Duration
	machines := [2]*fakeMachine{{}, {}}
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 30 * time.Second}, env.v, epoch,
			machines[site], []Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		done[site] = env.v.Go(func() {
			var prev time.Time
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f) & 0xFF << (8 * site)
			}, func(fi FrameInfo) {
				if !prev.IsZero() {
					if gap := fi.Start.Sub(prev); gap > maxGap[site] {
						maxGap[site] = gap
					}
				}
				prev = fi.Start
			})
			s.Drain(2 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d did not survive the partition: %v", site, err)
		}
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged across the partition")
	}
	// Both sites must have frozen for roughly the partition length.
	for site, gap := range maxGap {
		if gap < 1500*time.Millisecond {
			t.Errorf("site %d max frame gap %v; expected a ~2s freeze", site, gap)
		}
		if gap > 3*time.Second {
			t.Errorf("site %d max frame gap %v; recovery took too long", site, gap)
		}
	}
	// Total time stays ~10s: Algorithm 3 carries the freeze as a negative
	// AdjustTimeDelta and fast-forwards the frames after healing until
	// the schedule is caught up ("the subsequent frames must compensate
	// for the delay", §3.2).
	if el := env.v.Elapsed(); el < 9500*time.Millisecond || el > 13*time.Second {
		t.Errorf("run took %v, want ~10s (freeze compensated by catch-up)", el)
	}
}

// TestPeerDeathSurfacesTimeout: when the remote site dies, SyncInput blocks;
// with WaitTimeout configured the caller gets ErrWaitTimeout instead of a
// silent hang.
func TestPeerDeathSurfacesTimeout(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0)
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		m := &fakeMachine{}
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 3 * time.Second}, env.v, epoch,
			m, []Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		frames := 600
		if site == 1 {
			frames = 100 // site 1 dies early, without draining
		}
		done[site] = env.v.Go(func() {
			errs[site] = s.RunFrames(frames, func(int) uint16 { return 0 }, nil)
			if site == 1 {
				_ = env.conns[1].Close()
			}
		})
	}
	<-done[0]
	<-done[1]
	if errs[1] != nil {
		t.Fatalf("site 1 failed before dying: %v", errs[1])
	}
	if !errors.Is(errs[0], ErrWaitTimeout) {
		t.Fatalf("site 0 error = %v, want ErrWaitTimeout after peer death", errs[0])
	}
}

// TestAsymmetricPartition: only one direction drops. The protocol must
// stall (acks cannot flow) but recover once the direction heals.
func TestAsymmetricPartition(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0)
	env.v.Schedule(epoch.Add(time.Second), func() {
		env.net.SetLink("site0", "site1", blackhole{})
	})
	env.v.Schedule(epoch.Add(2500*time.Millisecond), func() {
		fwd, _ := netem.Symmetric(30*time.Millisecond, 0, 0, 555)
		env.net.SetLink("site0", "site1", netem.New(fwd))
	})
	_, machines := runPair(t, env, 400, Config{SiteNo: 0, WaitTimeout: 30 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 30 * time.Second},
		func(site, frame int) uint16 { return uint16(frame) & 0xFF << (8 * site) })
	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged across the asymmetric partition")
	}
}

// TestMalformedTrafficIsIgnored floods a site with garbage datagrams; the
// protocol must count and skip them without crashing or diverging.
func TestMalformedTrafficIsIgnored(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0)
	garbage := env.net.MustBind("attacker")
	env.v.Schedule(epoch.Add(500*time.Millisecond), func() {
		// A burst of junk "from" the attacker; SimConn filters by
		// source, so aim at the raw endpoint addresses via spoofed
		// payloads on the legit path instead: send nonsense through a
		// fresh netem-free link is filtered; instead corrupt-looking
		// payloads must come from the peer. Simulate by sending junk
		// from the attacker (dropped by the filter) and verifying the
		// run is unaffected.
		for i := 0; i < 50; i++ {
			_ = garbage.SendTo("site0", []byte{0xFF, 0xEE, 0xDD})
		}
	})
	_, machines := runPair(t, env, 300, Config{SiteNo: 0, WaitTimeout: 10 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 10 * time.Second},
		func(site, frame int) uint16 { return uint16(frame) & 0xFF << (8 * site) })
	if machines[0].hash != machines[1].hash {
		t.Fatal("garbage traffic caused divergence")
	}
}

// TestDecodersNeverPanic feeds random bytes into every wire decoder.
func TestDecodersNeverPanic(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = decodeSync(raw)
		_, _ = decodeSnapChunk(raw)
		_, _, _, _ = decodeHash(raw)
		_, _ = ParseJoin(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Adversarial shapes: correct type byte, wrong lengths/contents.
	for _, raw := range [][]byte{
		{msgSync}, {msgSync, 0}, append(encodeSync(nil, syncMsg{From: 0, To: 3, Inputs: make([]uint16, 4)}), 0xFF),
		{msgSnapChunk, 0, 0}, {msgHash}, {msgHash, 1, 2, 3},
		encodeSync(nil, syncMsg{From: 100, To: 50}),
	} {
		_, _ = decodeSync(raw)
		_, _ = decodeSnapChunk(raw)
		_, _, _, _ = decodeHash(raw)
	}
}

// TestHandleMalformedCountsStats drives InputSync.handle directly with junk.
func TestHandleMalformedCountsStats(t *testing.T) {
	env := newTwoSiteEnv(t, 10*time.Millisecond, 0)
	s, err := NewInputSync(Config{SiteNo: 0}, env.v, epoch,
		[]Peer{{Site: 1, Conn: env.conns[0]}})
	if err != nil {
		t.Fatal(err)
	}
	p := s.peers[1]
	for _, raw := range [][]byte{nil, {}, {0xAB}, {msgSync, 1, 2}, {msgHash, 9}} {
		s.handle(p, raw)
	}
	if got := s.Stats().MalformedRcvd; got < 4 {
		t.Errorf("MalformedRcvd = %d, want >= 4", got)
	}
}

// TestHugeFrameRangeRejected guards against a hostile peer declaring an
// enormous input range that would balloon the buffer.
func TestHugeFrameRangeRejected(t *testing.T) {
	env := newTwoSiteEnv(t, 10*time.Millisecond, 0)
	s, err := NewInputSync(Config{SiteNo: 0}, env.v, epoch,
		[]Peer{{Site: 1, Conn: env.conns[0]}})
	if err != nil {
		t.Fatal(err)
	}
	// A message claiming inputs for frames up to 2^30 must not allocate
	// gigabytes. decodeSync rejects payload/length mismatches, so a
	// hostile range requires a matching payload — bounded by the
	// datagram size; the worst case is maxInputsPerMsg entries with a
	// huge From offset.
	m := syncMsg{
		Sender: 1,
		From:   1 << 30,
		To:     1<<30 + 3,
		Inputs: []uint16{1, 2, 3, 4},
	}
	s.handle(s.peers[1], encodeSync(nil, m))
	if got := len(s.ibuf.buf); got > 1<<12 {
		t.Fatalf("hostile range grew the buffer to %d entries", got)
	}
	if got := s.Stats().BufPeak; got > 1<<12 {
		t.Fatalf("hostile range pushed the window peak to %d frames", got)
	}
}

var _ simnet.Shaper = blackhole{}
var _ transport.Conn = (*transport.SimConn)(nil)

// TestHandshakeSurvivesLoss: the session-control protocol retransmits READY
// and GO, so heavy loss only delays the start.
func TestHandshakeSurvivesLoss(t *testing.T) {
	env := newTwoSiteEnv(t, 40*time.Millisecond, 0.30)
	_, machines := runPair(t, env, 120, Config{SiteNo: 0, WaitTimeout: 30 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 30 * time.Second},
		func(site, frame int) uint16 { return uint16(frame) & 0xFF << (8 * site) })
	if machines[0].hash != machines[1].hash {
		t.Fatal("diverged after lossy handshake")
	}
}

// TestHandshakeTimesOutWithoutPeer: a missing peer surfaces as an error, not
// a hang.
func TestHandshakeTimesOutWithoutPeer(t *testing.T) {
	env := newTwoSiteEnv(t, 20*time.Millisecond, 0)
	for site := 0; site < 2; site++ {
		s, err := NewSession(Config{SiteNo: site}, env.v, epoch, &fakeMachine{},
			[]Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		site := site
		done := env.v.Go(func() {
			if err := s.Handshake(time.Second); err == nil {
				t.Errorf("site %d handshake with absent peer succeeded", site)
			}
		})
		<-done
	}
}
