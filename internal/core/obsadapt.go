package core

import (
	"fmt"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/span"
)

// Series names published by the adapters below. Counters are cumulative
// since session start; gauges are instantaneous. Durations are nanoseconds
// (suffix _ns).
const (
	MetricSyncMsgsSent      = "retrolock_sync_msgs_sent"
	MetricSyncMsgsRcvd      = "retrolock_sync_msgs_rcvd"
	MetricSyncBytesSent     = "retrolock_sync_bytes_sent"
	MetricSyncBytesRcvd     = "retrolock_sync_bytes_rcvd"
	MetricSyncInputsSent    = "retrolock_sync_inputs_sent"
	MetricSyncInputsFresh   = "retrolock_sync_inputs_fresh"
	MetricSyncInputsDup     = "retrolock_sync_inputs_dup"
	MetricSyncWaits         = "retrolock_sync_waits"
	MetricSyncWaitNs        = "retrolock_sync_wait_ns"
	MetricSyncMalformedRcvd = "retrolock_sync_malformed_rcvd"
	MetricSyncSnapChunks    = "retrolock_sync_snap_chunks"
	MetricSyncBufPeak       = "retrolock_sync_buf_peak"

	MetricFrame       = "retrolock_frame"
	MetricLagChanges  = "retrolock_lag_changes"
	MetricDesyncTotal = "retrolock_desync_total"

	// Histogram names (power-of-two nanosecond buckets, see obs.Histogram).
	MetricFrameTimeNs = "retrolock_frame_time_ns" // frame wall time
	MetricStallNs     = "retrolock_stall_ns"      // individual SyncInput stalls
	MetricRTTNs       = "retrolock_rtt_ns"        // per-peer RTT samples
	MetricSkewNs      = "retrolock_skew_ns"       // cross-site frame-begin skew

	// Input-journey histograms derived from span.Journal stamps.
	MetricInputLatencyNs = "retrolock_input_latency_ns" // peer press -> local execution
	MetricLocalLatencyNs = "retrolock_local_latency_ns" // own press -> own execution
	MetricNetLatencyNs   = "retrolock_net_latency_ns"   // peer send -> local receive (one-way)
	MetricExecSkewNs     = "retrolock_exec_skew_ns"     // |local begin - remote begin| per frame

	MetricRollbacks         = "retrolock_rollback_rollbacks"
	MetricRollbackReplayed  = "retrolock_rollback_replayed_frames"
	MetricRollbackDeepest   = "retrolock_rollback_deepest"
	MetricRollbackPredicted = "retrolock_rollback_predicted_frames"
	MetricRollbackStalls    = "retrolock_rollback_stall_frames"
	MetricRollbackTimesync  = "retrolock_rollback_timesync_slept_ns"
	MetricRollbackSnapBytes = "retrolock_rollback_snapshot_bytes"
)

// RegisterSyncMetrics publishes an InputSync's protocol counters as named
// series. Every closure reads atomics, so scrapes are safe while the frame
// loop runs.
func RegisterSyncMetrics(r *obs.Registry, labels obs.Labels, s *InputSync) {
	c := &s.stats
	r.CounterFunc(MetricSyncMsgsSent, labels, "sync messages transmitted", func() float64 { return float64(c.msgsSent.Load()) })
	r.CounterFunc(MetricSyncMsgsRcvd, labels, "sync messages accepted", func() float64 { return float64(c.msgsRcvd.Load()) })
	r.CounterFunc(MetricSyncBytesSent, labels, "sync payload bytes sent", func() float64 { return float64(c.bytesSent.Load()) })
	r.CounterFunc(MetricSyncBytesRcvd, labels, "sync payload bytes received", func() float64 { return float64(c.bytesRcvd.Load()) })
	r.CounterFunc(MetricSyncInputsSent, labels, "input words transmitted incl. retransmissions", func() float64 { return float64(c.inputsSent.Load()) })
	r.CounterFunc(MetricSyncInputsFresh, labels, "first-time input words that advanced LastRcvFrame", func() float64 { return float64(c.inputsFresh.Load()) })
	r.CounterFunc(MetricSyncInputsDup, labels, "received input words already buffered", func() float64 { return float64(c.inputsDup.Load()) })
	r.CounterFunc(MetricSyncWaits, labels, "SyncInput calls that had to block (paper 3.1)", func() float64 { return float64(c.waits.Load()) })
	r.CounterFunc(MetricSyncWaitNs, labels, "total time SyncInput spent blocked", func() float64 { return float64(c.waitTimeNs.Load()) })
	r.CounterFunc(MetricSyncMalformedRcvd, labels, "datagrams rejected as malformed or hostile", func() float64 { return float64(c.malformed.Load()) })
	r.CounterFunc(MetricSyncSnapChunks, labels, "snapshot chunks served to late joiners", func() float64 { return float64(c.snapChunks.Load()) })
	r.GaugeFunc(MetricSyncBufPeak, labels, "input ring window high-water mark (frames)", func() float64 { return float64(c.bufPeak.Load()) })
}

// SyncStatsFromSnapshot reassembles a Stats struct from the series
// RegisterSyncMetrics publishes — the registry-sourced replacement for
// passing Stats structs by hand (chaos phase reports, experiment tables).
func SyncStatsFromSnapshot(snap obs.Snapshot, labels obs.Labels) Stats {
	g := func(name string) float64 { return snap[obs.Key(name, labels)] }
	return Stats{
		MsgsSent:      int(g(MetricSyncMsgsSent)),
		MsgsRcvd:      int(g(MetricSyncMsgsRcvd)),
		BytesSent:     int64(g(MetricSyncBytesSent)),
		BytesRcvd:     int64(g(MetricSyncBytesRcvd)),
		InputsSent:    int(g(MetricSyncInputsSent)),
		InputsFresh:   int(g(MetricSyncInputsFresh)),
		InputsDup:     int(g(MetricSyncInputsDup)),
		Waits:         int(g(MetricSyncWaits)),
		WaitTime:      time.Duration(int64(g(MetricSyncWaitNs))),
		MalformedRcvd: int(g(MetricSyncMalformedRcvd)),
		SnapChunks:    int(g(MetricSyncSnapChunks)),
		BufPeak:       int(g(MetricSyncBufPeak)),
	}
}

// NewSessionObs builds the per-site instrumentation bundle for a session:
// frame-time, stall and RTT histograms registered under the site's labels,
// plus — when traceCap > 0 — a fixed-capacity frame-event tracer published
// as "site<N>". Hand the result to (*Session).SetObs or
// (*RollbackSession).SetObs.
func NewSessionObs(r *obs.Registry, site, traceCap int, epoch time.Time) *obs.SessionObs {
	sl := obs.SiteLabels(site)
	so := &obs.SessionObs{
		Site:      site,
		FrameTime: r.NewHistogram(MetricFrameTimeNs, sl, "frame wall time (begin to end)"),
		Wait:      r.NewHistogram(MetricStallNs, sl, "individual SyncInput stall durations"),
		RTT:       r.NewHistogram(MetricRTTNs, sl, "RTT samples from sync-message echoes"),
	}
	if traceCap > 0 {
		so.Tracer = obs.NewTracer(traceCap, epoch)
		r.AddTracer(fmt.Sprintf("site%d", site), so.Tracer)
	}
	return so
}

// NewInputJourney builds a span journal wired to registered histograms for
// the four derived input-journey series (cross-site latency, local latency,
// one-way network latency, execution skew) under the site's labels. Attach
// the result with (*Session).SetJournal / (*InputSync).SetJournal and
// transport.ARQConn.SetJournal.
func NewInputJourney(r *obs.Registry, site int, epoch time.Time) *span.Journal {
	sl := obs.SiteLabels(site)
	j := span.NewJournal(epoch, 0)
	j.Cross = r.NewHistogram(MetricInputLatencyNs, sl, "cross-site input latency: peer press to local execution")
	j.Local = r.NewHistogram(MetricLocalLatencyNs, sl, "local input latency: own press to own execution (the local-lag cost)")
	j.Net = r.NewHistogram(MetricNetLatencyNs, sl, "one-way network latency: peer send to local receive, via the clock-offset estimate")
	j.Skew = r.NewHistogram(MetricExecSkewNs, sl, "per-frame execution skew between the two sites")
	return j
}

// RollbackStatsFromSnapshot reassembles a RollbackStats from the series
// RegisterRollbackMetrics publishes.
func RollbackStatsFromSnapshot(snap obs.Snapshot, labels obs.Labels) RollbackStats {
	g := func(name string) float64 { return snap[obs.Key(name, labels)] }
	return RollbackStats{
		Rollbacks:       int(g(MetricRollbacks)),
		ReplayedFrames:  int(g(MetricRollbackReplayed)),
		DeepestRollback: int(g(MetricRollbackDeepest)),
		PredictedFrames: int(g(MetricRollbackPredicted)),
		StallFrames:     int(g(MetricRollbackStalls)),
		TimesyncSlept:   time.Duration(int64(g(MetricRollbackTimesync))),
		SnapshotBytes:   int64(g(MetricRollbackSnapBytes)),
	}
}

// RegisterSessionMetrics publishes a lockstep session: its sync counters
// plus the live frame number and adaptive-lag bookkeeping.
func RegisterSessionMetrics(r *obs.Registry, labels obs.Labels, s *Session) {
	RegisterSyncMetrics(r, labels, s.sync)
	r.GaugeFunc(MetricFrame, labels, "next frame to execute", func() float64 { return float64(s.frame.Load()) })
	r.CounterFunc(MetricLagChanges, labels, "adaptive-lag retarget count", func() float64 { return float64(s.lagChanges.Load()) })
	r.CounterFunc(MetricDesyncTotal, labels, "replica divergences detected by the hash exchange", func() float64 { return float64(s.desyncs.Load()) })
}

// RegisterRollbackMetrics publishes a rollback-baseline session: its sync
// counters plus the timewarp overhead counters.
func RegisterRollbackMetrics(r *obs.Registry, labels obs.Labels, s *RollbackSession) {
	RegisterSyncMetrics(r, labels, s.sync)
	c := &s.stats
	r.GaugeFunc(MetricFrame, labels, "next frame to execute", func() float64 { return float64(s.frame.Load()) })
	r.CounterFunc(MetricRollbacks, labels, "restore+replay episodes", func() float64 { return float64(c.rollbacks.Load()) })
	r.CounterFunc(MetricRollbackReplayed, labels, "frames re-emulated during rollbacks", func() float64 { return float64(c.replayedFrames.Load()) })
	r.GaugeFunc(MetricRollbackDeepest, labels, "largest restore distance (frames)", func() float64 { return float64(c.deepest.Load()) })
	r.CounterFunc(MetricRollbackPredicted, labels, "frames first executed on predicted inputs", func() float64 { return float64(c.predicted.Load()) })
	r.CounterFunc(MetricRollbackStalls, labels, "frames delayed by the prediction window", func() float64 { return float64(c.stalls.Load()) })
	r.CounterFunc(MetricRollbackTimesync, labels, "extra sleep injected by timesync", func() float64 { return float64(c.timesyncNs.Load()) })
	r.CounterFunc(MetricRollbackSnapBytes, labels, "total savestate volume written", func() float64 { return float64(c.snapshotBytes.Load()) })
}
