package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

var epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// fakeMachine is a deterministic Machine+Snapshotter: its state is the
// rolling hash of every input it has consumed.
type fakeMachine struct {
	inputs []uint16
	hash   uint64
}

func (m *fakeMachine) StepFrame(in uint16) {
	m.inputs = append(m.inputs, in)
	m.hash = m.hash*1099511628211 + uint64(in) + 1
}

func (m *fakeMachine) StateHash() uint64 { return m.hash }

func (m *fakeMachine) Save() []byte {
	buf := make([]byte, 8+2*len(m.inputs))
	binary.LittleEndian.PutUint64(buf, m.hash)
	for i, in := range m.inputs {
		binary.LittleEndian.PutUint16(buf[8+2*i:], in)
	}
	return buf
}

func (m *fakeMachine) Restore(b []byte) error {
	if len(b) < 8 || (len(b)-8)%2 != 0 {
		return errors.New("bad snapshot")
	}
	m.hash = binary.LittleEndian.Uint64(b)
	m.inputs = nil
	for off := 8; off < len(b); off += 2 {
		m.inputs = append(m.inputs, binary.LittleEndian.Uint16(b[off:]))
	}
	return nil
}

// twoSiteEnv owns everything needed for a two-site session test.
type twoSiteEnv struct {
	v     *vclock.Virtual
	net   *simnet.Network
	conns [2]transport.Conn
}

func newTwoSiteEnv(t *testing.T, rtt time.Duration, loss float64) *twoSiteEnv {
	t.Helper()
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	c0, c1, err := transport.SimPair(n, "site0", "site1")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	fwd, rev := netem.Symmetric(rtt, 0, loss, 12345)
	netem.Install(n, "site0", "site1", fwd, rev)
	return &twoSiteEnv{v: v, net: n, conns: [2]transport.Conn{c0, c1}}
}

// runPair runs two sessions to completion and returns them with their
// machines.
func runPair(t *testing.T, env *twoSiteEnv, frames int, cfg0, cfg1 Config, input func(site, frame int) uint16) (ses [2]*Session, machines [2]*fakeMachine) {
	t.Helper()
	cfgs := [2]Config{cfg0, cfg1}
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		m := &fakeMachine{}
		machines[site] = m
		s, err := NewSession(cfgs[site], env.v, epoch, m, []Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatalf("NewSession(%d): %v", site, err)
		}
		ses[site] = s
		done[site] = env.v.Go(func() {
			if err := s.Handshake(5 * time.Second); err != nil {
				errs[site] = err
				return
			}
			errs[site] = s.RunFrames(frames, func(f int) uint16 { return input(site, f) }, nil)
			s.Drain(2 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	return ses, machines
}

func TestTwoSiteLockstepConvergence(t *testing.T) {
	env := newTwoSiteEnv(t, 60*time.Millisecond, 0)
	input := func(site, frame int) uint16 {
		// Each site stirs only its own byte; the sync layer must merge.
		return uint16(frame*7+site*3) & 0x00FF << (8 * site)
	}
	_, machines := runPair(t, env, 300, Config{SiteNo: 0, WaitTimeout: 5 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 5 * time.Second}, input)

	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged (logical consistency violated)")
	}
	if len(machines[0].inputs) != 300 {
		t.Fatalf("site 0 executed %d frames, want 300", len(machines[0].inputs))
	}
	// Local lag: the first BufFrame frames carry empty input.
	for f := 0; f < DefaultBufFrame; f++ {
		if machines[0].inputs[f] != 0 {
			t.Errorf("frame %d input %#x, want 0 (local lag)", f, machines[0].inputs[f])
		}
	}
	// Frame BufFrame carries both sites' frame-0 inputs.
	want := input(0, 0) | input(1, 0)
	if machines[0].inputs[DefaultBufFrame] != want {
		t.Errorf("frame %d input %#x, want %#x (merged frame-0 inputs)",
			DefaultBufFrame, machines[0].inputs[DefaultBufFrame], want)
	}
}

func TestTwoSiteSurvivesHeavyLoss(t *testing.T) {
	env := newTwoSiteEnv(t, 40*time.Millisecond, 0.20)
	input := func(site, frame int) uint16 {
		return uint16(frame+site) & 0x00FF << (8 * site)
	}
	_, machines := runPair(t, env, 400, Config{SiteNo: 0, WaitTimeout: 30 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 30 * time.Second}, input)
	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged under 20% loss (reliability layer broken)")
	}
}

func TestTwoSiteSurvivesDuplicationAndReorder(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	c0, c1, err := transport.SimPair(n, "site0", "site1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := netem.Config{Delay: 30 * time.Millisecond, Jitter: 10 * time.Millisecond,
		Duplicate: 0.3, Reorder: 0.2, Seed: 5}
	cfg2 := cfg
	cfg2.Seed = 6
	netem.Install(n, "site0", "site1", cfg, cfg2)
	env := &twoSiteEnv{v: v, net: n, conns: [2]transport.Conn{c0, c1}}

	input := func(site, frame int) uint16 {
		return uint16(frame*5+site) & 0x00FF << (8 * site)
	}
	_, machines := runPair(t, env, 300, Config{SiteNo: 0, WaitTimeout: 30 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 30 * time.Second}, input)
	if machines[0].hash != machines[1].hash {
		t.Fatal("replicas diverged under duplication+reordering")
	}
}

func TestFramesPacedAtCFPS(t *testing.T) {
	env := newTwoSiteEnv(t, 20*time.Millisecond, 0)
	start := env.v.Now()
	runPair(t, env, 120, Config{SiteNo: 0, WaitTimeout: 5 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 5 * time.Second},
		func(site, frame int) uint16 { return 0 })
	elapsed := env.v.Now().Sub(start)
	// 120 frames at 60 FPS = 2s (plus handshake+drain slack).
	if elapsed < 1900*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("120 frames took %v of virtual time, want ~2s", elapsed)
	}
}

func TestSyncInputTimesOutWithoutPeer(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	ep := n.MustBind("lonely")
	conn := transport.NewSim(ep, "ghost")
	s, err := NewInputSync(Config{SiteNo: 0, WaitTimeout: 500 * time.Millisecond}, v, epoch,
		[]Peer{{Site: 1, Conn: conn}})
	if err != nil {
		t.Fatal(err)
	}
	done := v.Go(func() {
		start := v.Now()
		_, err := s.SyncInput(1, 0) // frames 0..BufFrame-1 deliver empty inputs instantly
		for f := 1; err == nil && f < 20; f++ {
			_, err = s.SyncInput(1, f)
		}
		if !errors.Is(err, ErrWaitTimeout) {
			t.Errorf("err = %v, want ErrWaitTimeout", err)
		}
		if waited := v.Now().Sub(start); waited < 500*time.Millisecond {
			t.Errorf("timed out after %v, want >= WaitTimeout", waited)
		}
	})
	<-done
}

func TestSyncInputEnforcesSequentialFrames(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	ep := n.MustBind("a")
	s, err := NewInputSync(Config{SiteNo: 0}, v, epoch, []Peer{{Site: 1, Conn: transport.NewSim(ep, "b")}})
	if err != nil {
		t.Fatal(err)
	}
	done := v.Go(func() {
		if _, err := s.SyncInput(0, 5); err == nil {
			t.Error("out-of-order frame accepted")
		}
	})
	<-done
}

func TestStartupOffsetSmoothedByMasterSlave(t *testing.T) {
	// Start the slave 150 ms after the master (beyond one RTT). With
	// Algorithm 4 the slave catches up; by the end the two sites execute
	// frames nearly simultaneously.
	env := newTwoSiteEnv(t, 40*time.Millisecond, 0)
	const frames = 600
	type rec struct{ starts []time.Time }
	var recs [2]rec
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		m := &fakeMachine{}
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 10 * time.Second}, env.v, epoch, m,
			[]Peer{{Site: 1 - site, Conn: env.conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		done[site] = env.v.Go(func() {
			if site == 1 {
				env.v.Sleep(150 * time.Millisecond) // late starter
			}
			// No handshake: this test exercises raw startup skew.
			errs[site] = s.RunFrames(frames, func(int) uint16 { return 0 }, func(fi FrameInfo) {
				recs[site].starts = append(recs[site].starts, fi.Start)
			})
			s.Drain(2 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	// Compare frame-start skew over the last 100 frames.
	var worst time.Duration
	for f := frames - 100; f < frames; f++ {
		d := recs[1].starts[f].Sub(recs[0].starts[f])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 40*time.Millisecond {
		t.Fatalf("final skew %v; Algorithm 4 failed to absorb the 150ms startup offset", worst)
	}
}

func TestObserverConvergesWithPlayers(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	// Full mesh: 0-1 players, 2 observer.
	mk := func(a, b string) (transport.Conn, transport.Conn) {
		x, y, err := transport.SimPair(n, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return x, y
	}
	c01, c10 := mk("0->1", "1->0")
	c02, c20 := mk("0->2", "2->0")
	c12, c21 := mk("1->2", "2->1")

	peers := [3][]Peer{
		{{Site: 1, Conn: c01}, {Site: 2, Conn: c02}},
		{{Site: 0, Conn: c10}, {Site: 2, Conn: c12}},
		{{Site: 0, Conn: c20}, {Site: 1, Conn: c21}},
	}
	const frames = 200
	var machines [3]*fakeMachine
	var errs [3]error
	var done [3]<-chan struct{}
	for site := 0; site < 3; site++ {
		site := site
		machines[site] = &fakeMachine{}
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 10 * time.Second}, v, epoch, machines[site], peers[site])
		if err != nil {
			t.Fatal(err)
		}
		done[site] = v.Go(func() {
			if errs[site] = s.Handshake(5 * time.Second); errs[site] != nil {
				return
			}
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f*3+site) & 0xFF << (8 * site % 16)
			}, nil)
			s.Drain(2 * time.Second)
		})
	}
	for site := 0; site < 3; site++ {
		<-done[site]
		if errs[site] != nil {
			t.Fatalf("site %d: %v", site, errs[site])
		}
	}
	if machines[0].hash != machines[1].hash || machines[0].hash != machines[2].hash {
		t.Fatal("observer diverged from players")
	}
}

func TestLateJoinerCatchesUp(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	c01, c10, err := transport.SimPair(n, "0-1", "1-0")
	if err != nil {
		t.Fatal(err)
	}
	cObs0, c0Obs, err := transport.SimPair(n, "obs-0", "0-obs")
	if err != nil {
		t.Fatal(err)
	}

	const (
		phase1 = 120
		phase2 = 150
	)
	input := func(site, f int) uint16 {
		return uint16(f*11+site) & 0x00FF << (8 * site)
	}
	m0, m1 := &fakeMachine{}, &fakeMachine{}
	s0, err := NewSession(Config{SiteNo: 0, WaitTimeout: 10 * time.Second}, v, epoch, m0, []Peer{{Site: 1, Conn: c01}})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSession(Config{SiteNo: 1, WaitTimeout: 10 * time.Second}, v, epoch, m1, []Peer{{Site: 0, Conn: c10}})
	if err != nil {
		t.Fatal(err)
	}

	var err0, err1, errObs error
	var obsHash uint64
	var obsFrames int
	d0 := v.Go(func() {
		if err0 = s0.RunFrames(phase1, func(f int) uint16 { return input(0, f) }, nil); err0 != nil {
			return
		}
		// Admit the late joiner, then keep playing.
		if _, err := s0.AddJoiner(Peer{Site: 2, Conn: c0Obs}); err != nil {
			err0 = err
			return
		}
		err0 = s0.RunFrames(phase2, func(f int) uint16 { return input(0, f) }, nil)
		s0.Drain(4 * time.Second)
	})
	d1 := v.Go(func() {
		if err1 = s1.RunFrames(phase1+phase2, func(f int) uint16 { return input(1, f) }, nil); err1 != nil {
			return
		}
		s1.Drain(4 * time.Second)
	})
	dObs := v.Go(func() {
		// Give the players a head start.
		v.Sleep(phase1 * 17 * time.Millisecond)
		obs := &fakeMachine{}
		s, err := JoinSession(Config{SiteNo: 2, WaitTimeout: 10 * time.Second}, v, epoch, obs,
			Peer{Site: 0, Conn: cObs0}, 10*time.Second)
		if err != nil {
			errObs = err
			return
		}
		// Run until the observer has seen every frame the players will
		// execute.
		remaining := phase1 + phase2 - s.Frame()
		errObs = s.RunFrames(remaining, nil, nil)
		obsHash = obs.hash
		obsFrames = len(obs.inputs)
	})
	<-d0
	<-d1
	<-dObs
	if err0 != nil || err1 != nil || errObs != nil {
		t.Fatalf("errors: site0=%v site1=%v observer=%v", err0, err1, errObs)
	}
	if obsHash != m0.hash || m0.hash != m1.hash {
		t.Fatalf("late joiner diverged: obs=%#x p0=%#x p1=%#x (obs executed %d frames)",
			obsHash, m0.hash, m1.hash, obsFrames)
	}
}

func TestNewSessionRejectsNilMachine(t *testing.T) {
	if _, err := NewSession(Config{}, vclockStub{}, epoch, nil, nil); err == nil {
		t.Fatal("nil machine accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	env := newTwoSiteEnv(t, 30*time.Millisecond, 0.1)
	ses, _ := runPair(t, env, 200, Config{SiteNo: 0, WaitTimeout: 10 * time.Second},
		Config{SiteNo: 1, WaitTimeout: 10 * time.Second},
		func(site, frame int) uint16 { return 1 << (8 * site) })
	for site, s := range ses {
		st := s.Sync().Stats()
		if st.MsgsSent == 0 || st.MsgsRcvd == 0 {
			t.Errorf("site %d: no traffic recorded: %+v", site, st)
		}
		if st.InputsFresh < 200 {
			t.Errorf("site %d: only %d fresh inputs for 200 frames", site, st.InputsFresh)
		}
		// 10% loss forces retransmission: duplicates must appear.
		if st.InputsDup == 0 {
			t.Errorf("site %d: no duplicate inputs despite loss", site)
		}
		if rtt := s.Sync().RTTTo(1 - site); rtt < 20*time.Millisecond || rtt > 60*time.Millisecond {
			t.Errorf("site %d: RTT estimate %v, want ~30-40ms", site, rtt)
		}
	}
}

func TestAdaptiveLagTracksRTTAndStaysConsistent(t *testing.T) {
	// Two sites with adaptive lag on a 120ms RTT link: the lag must grow
	// from its floor toward ~ceil((60ms+margin)/16.7ms) ≈ 5, and the
	// replicas must stay logically consistent across every transition.
	env := newTwoSiteEnv(t, 120*time.Millisecond, 0)
	const frames = 600
	machines := [2]*fakeMachine{{}, {}}
	sessions := [2]*Session{}
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		s, err := NewSession(Config{SiteNo: site, BufFrame: 2, WaitTimeout: 20 * time.Second},
			env.v, epoch, machines[site],
			[]Peer{{Site: 1 - site, Conn: env.conns[site]}},
			WithAdaptiveLag(AdaptiveLag{Min: 2, Max: 12, Margin: 10 * time.Millisecond, Every: 30}))
		if err != nil {
			t.Fatal(err)
		}
		sessions[site] = s
		done[site] = env.v.Go(func() {
			if errs[site] = s.Handshake(5 * time.Second); errs[site] != nil {
				return
			}
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f*3+site) & 0xFF << (8 * site)
			}, nil)
			s.Drain(2 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("adaptive-lag replicas diverged")
	}
	for site, s := range sessions {
		changes, avg := s.LagStats()
		if changes == 0 {
			t.Errorf("site %d: lag never adapted from the floor of 2 at RTT 120ms", site)
		}
		if avg < 3 || avg > 8 {
			t.Errorf("site %d: average lag %.1f, want ~5 for RTT 120ms", site, avg)
		}
		if got := s.Sync().Lag(); got < 4 || got > 7 {
			t.Errorf("site %d: final lag %d, want ~5", site, got)
		}
	}
}

func TestAdaptiveLagShrinksOnFastLinks(t *testing.T) {
	env := newTwoSiteEnv(t, 20*time.Millisecond, 0)
	machines := [2]*fakeMachine{{}, {}}
	sessions := [2]*Session{}
	errs := [2]error{}
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		s, err := NewSession(Config{SiteNo: site, WaitTimeout: 20 * time.Second}, // starts at 6
			env.v, epoch, machines[site],
			[]Peer{{Site: 1 - site, Conn: env.conns[site]}},
			WithAdaptiveLag(AdaptiveLag{Min: 1, Max: 12, Margin: 10 * time.Millisecond, Every: 30}))
		if err != nil {
			t.Fatal(err)
		}
		sessions[site] = s
		done[site] = env.v.Go(func() {
			errs[site] = s.RunFrames(400, func(f int) uint16 {
				return uint16(f) & 0xFF << (8 * site)
			}, nil)
			s.Drain(2 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	if machines[0].hash != machines[1].hash {
		t.Fatal("diverged")
	}
	// ceil((10ms + 10ms margin)/16.7) = 2: responsiveness better than the
	// fixed 100ms on a LAN-grade link.
	for site, s := range sessions {
		if got := s.Sync().Lag(); got > 3 {
			t.Errorf("site %d: lag %d on a 20ms link, want <= 3 (shrunk)", site, got)
		}
	}
}

func TestSetLagManualTransitions(t *testing.T) {
	// Exercise raise and lower directly through InputSync.
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	c0, c1, err := transport.SimPair(n, "m0", "m1")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(site int, conn transport.Conn) *InputSync {
		s, err := NewInputSync(Config{SiteNo: site, WaitTimeout: 5 * time.Second}, v, epoch,
			[]Peer{{Site: 1 - site, Conn: conn}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	var got0, got1 []uint16
	done := v.Go(func() {
		for f := 0; f < 120; f++ {
			switch f {
			case 40:
				s0.SetLag(10) // raise mid-game
				s1.SetLag(10)
			case 80:
				s0.SetLag(3) // lower mid-game
				s1.SetLag(3)
			}
			a, err := s0.SyncInput(uint16(f)&0xFF, f)
			if err != nil {
				t.Errorf("s0 frame %d: %v", f, err)
				return
			}
			b, err := s1.SyncInput(uint16(f)&0xFF<<8, f)
			if err != nil {
				t.Errorf("s1 frame %d: %v", f, err)
				return
			}
			got0 = append(got0, a)
			got1 = append(got1, b)
			v.Sleep(16667 * time.Microsecond)
		}
	})
	<-done
	for f := range got0 {
		if got0[f] != got1[f] {
			t.Fatalf("frame %d: inputs diverged across lag changes: %#x vs %#x", f, got0[f], got1[f])
		}
	}
}
