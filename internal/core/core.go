// Package core implements the paper's contribution: the sync module that
// turns a deterministic single-computer game VM into a distributed
// multi-computer game, transparently to the game.
//
// It contains faithful implementations of the paper's three algorithms:
//
//   - InputSync.SyncInput — Algorithm 2, logical consistency: local inputs
//     are delayed by a fixed local lag (BufFrame frames ≈ 100 ms at 60 FPS)
//     and merged with remote partial inputs; execution of a frame blocks
//     until every player's bits for that frame have arrived. Reliability is
//     built over UDP with cumulative acks and range retransmission.
//   - FrameTimer.EndFrame — Algorithm 3, frame pacing: each frame consumes
//     exactly TimePerFrame, and a frame that overran (because SyncInput had
//     to wait) is compensated by shortening the following frames.
//   - FrameTimer.BeginFrame — Algorithm 4, real-time consistency: the slave
//     site continuously estimates the master's current frame from the
//     freshest received message and RTT/2, and steers its own pace toward
//     it, so a startup offset is smoothed out instead of penalizing the
//     earlier site forever.
//
// Beyond the paper's two-site algorithm, the package implements the journal
// version's extensions (§6): N players with disjoint input masks, observer
// (spectator) sites that receive all inputs but contribute none, and late
// joiners bootstrapped from a chunked savestate transfer.
package core

import (
	"errors"
	"fmt"
	"time"

	"retrolock/internal/transport"
)

// Machine is the game VM seen by the sync layer — the paper's opaque
// Transition(I, S). The sync layer never interprets the input word and never
// inspects machine state beyond the convergence hash.
type Machine interface {
	// StepFrame performs one deterministic state transition with the
	// merged input word.
	StepFrame(input uint16)
	// StateHash digests the machine state, for convergence checking.
	StateHash() uint64
}

// Snapshotter is implemented by machines that support savestate transfer,
// enabling late joiners.
type Snapshotter interface {
	Save() []byte
	Restore([]byte) error
}

// Defaults from the paper (§3: BufFrame 6 at 60 FPS ≈ 100 ms local lag;
// §4.2: one outbound message every 20 ms).
const (
	DefaultBufFrame     = 6
	DefaultCFPS         = 60
	DefaultSendInterval = 20 * time.Millisecond
	DefaultPollInterval = time.Millisecond
)

// ErrWaitTimeout is returned by SyncInput when remote inputs do not arrive
// within Config.WaitTimeout. With WaitTimeout zero the paper's behaviour
// applies: the site blocks ("freezing the game until it is recovered",
// §3.1).
var ErrWaitTimeout = errors.New("core: timed out waiting for remote inputs")

// Config describes one site of a session.
type Config struct {
	// SiteNo identifies this site. Sites 0..NumPlayers-1 are players;
	// higher numbers are observers. Site 0 is the timing master.
	SiteNo int

	// NumPlayers is the number of input-contributing sites. The paper's
	// system is NumPlayers = 2.
	NumPlayers int

	// Masks[k] is SET[k]: the input bits player k controls. Masks must be
	// disjoint. Nil defaults to the two-pad split {0x00FF, 0xFF00}.
	Masks []uint16

	// BufFrame is the local lag in frames (paper: 6 ≈ 100 ms at 60 FPS).
	// Zero selects the default; a negative value means an explicit zero
	// lag (used by the rollback baseline, which hides latency by
	// prediction instead of delay).
	BufFrame int

	// CFPS is the constant target frame rate (paper: 60).
	CFPS int

	// SendInterval is the outbound message pacing (paper §4.2: 20 ms).
	SendInterval time.Duration

	// PollInterval is how often SyncInput re-checks for arrivals while
	// blocked, modelling the consumer thread's scheduling quantum.
	PollInterval time.Duration

	// WaitTimeout bounds a single SyncInput wait. Zero waits forever.
	WaitTimeout time.Duration

	// HashInterval is how often (in frames) sites exchange machine-state
	// digests to detect replica divergence. Zero uses
	// DefaultHashInterval; negative disables the exchange.
	HashInterval int

	// StartFrame is the first frame this site executes (0 for sites
	// present from the beginning; the snapshot frame for late joiners).
	StartFrame int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.NumPlayers == 0 {
		c.NumPlayers = 2
	}
	if c.Masks == nil {
		c.Masks = []uint16{0x00FF, 0xFF00}
	}
	if c.BufFrame == 0 {
		c.BufFrame = DefaultBufFrame
	} else if c.BufFrame < 0 {
		c.BufFrame = 0 // explicit zero lag
	}
	if c.CFPS == 0 {
		c.CFPS = DefaultCFPS
	}
	if c.SendInterval == 0 {
		c.SendInterval = DefaultSendInterval
	}
	if c.PollInterval == 0 {
		c.PollInterval = DefaultPollInterval
	}
	if c.HashInterval == 0 {
		c.HashInterval = DefaultHashInterval
	}
	return c
}

// validate reports configuration errors.
func (c Config) validate() error {
	if c.NumPlayers < 1 {
		return fmt.Errorf("core: NumPlayers %d < 1", c.NumPlayers)
	}
	if len(c.Masks) != c.NumPlayers {
		return fmt.Errorf("core: %d masks for %d players", len(c.Masks), c.NumPlayers)
	}
	var union uint16
	for k, m := range c.Masks {
		if m == 0 {
			return fmt.Errorf("core: player %d has an empty input mask", k)
		}
		if union&m != 0 {
			return fmt.Errorf("core: input masks overlap at player %d (SET[j] ∩ SET[k] must be empty)", k)
		}
		union |= m
	}
	if c.SiteNo < 0 {
		return fmt.Errorf("core: negative SiteNo %d", c.SiteNo)
	}
	if c.BufFrame < 0 {
		return fmt.Errorf("core: negative BufFrame %d", c.BufFrame)
	}
	if c.CFPS <= 0 {
		return fmt.Errorf("core: CFPS %d <= 0", c.CFPS)
	}
	if c.StartFrame < 0 {
		return fmt.Errorf("core: negative StartFrame %d", c.StartFrame)
	}
	return nil
}

// IsObserver reports whether this site only watches (contributes no input).
func (c Config) IsObserver() bool { return c.SiteNo >= c.NumPlayers }

// TimePerFrame is 1/CFPS.
func (c Config) TimePerFrame() time.Duration {
	return time.Second / time.Duration(c.CFPS)
}

// LocalLag is the input delay in time units: BufFrame frames.
func (c Config) LocalLag() time.Duration {
	return time.Duration(c.BufFrame) * c.TimePerFrame()
}

// Peer is a remote site: its id and the connection to it.
type Peer struct {
	Site int
	Conn transport.Conn
}

// clockEpoch anchors the microsecond timestamps carried in sync messages.
// Any fixed instant works as long as one site uses it consistently; wall
// epochs far in the past still fit because timestamps wrap modulo 2^32 µs
// (~71 minutes) and are only ever differenced.
func microsSince(epoch, t time.Time) uint32 {
	return uint32(t.Sub(epoch) / time.Microsecond)
}
