package core

import (
	"time"

	"retrolock/internal/vclock"
)

// Pacer is the frame-timing half of the sync module: BeginFrame/EndFrame
// bracket each iteration of Algorithm 1 (steps 5 and 10).
type Pacer interface {
	// BeginFrame records the frame start and, depending on the
	// implementation, folds in the master-pace correction (Algorithm 4).
	BeginFrame(frame int, mv MasterView)
	// EndFrame consumes the remainder of the frame's time budget
	// (Algorithm 3) and carries any overrun into the next frame.
	EndFrame()
	// FrameStart reports the instant recorded by the last BeginFrame.
	FrameStart() time.Time
}

// FrameTimer implements Algorithms 3 and 4. The master site (site 0) paces
// itself only by Algorithm 3; every other site additionally steers toward
// the master's estimated current frame, so a startup offset or transient
// stall is smoothed out by the slave instead of oscillating forever (§3.2).
type FrameTimer struct {
	clock        vclock.Clock
	timePerFrame time.Duration
	bufFrame     int
	master       bool

	adjust     time.Duration // AdjustTimeDelta
	frameStart time.Time     // CurrFrameStart

	// maxCorrection clamps one frame's SyncAdjustTimeDelta so a wildly
	// wrong early RTT estimate cannot stall a site for seconds; 0 means
	// unclamped (the paper's literal algorithm).
	maxCorrection time.Duration
}

// NewFrameTimer builds the timer for one site of cfg.
func NewFrameTimer(cfg Config, clock vclock.Clock) *FrameTimer {
	cfg = cfg.withDefaults()
	return &FrameTimer{
		clock:        clock,
		timePerFrame: cfg.TimePerFrame(),
		bufFrame:     cfg.BufFrame,
		master:       cfg.SiteNo == 0,
	}
}

// SetMaxCorrection bounds the per-frame master-pace correction (0 restores
// the paper's unclamped behaviour).
func (t *FrameTimer) SetMaxCorrection(d time.Duration) { t.maxCorrection = d }

// SetBufFrame updates the lag used by the master-frame estimate; the
// adaptive-lag ablation calls it whenever the lag changes.
func (t *FrameTimer) SetBufFrame(n int) { t.bufFrame = n }

// BeginFrame is Algorithm 4 (BeginFrameTiming).
func (t *FrameTimer) BeginFrame(frame int, mv MasterView) {
	now := t.clock.Now()
	t.frameStart = now

	// Master: SyncAdjustTimeDelta is always zero.
	if t.master || !mv.OK {
		return
	}
	// MasterFrame = LastRcvFrame[0] - BufFrame: the freshest received
	// master input already counts the local lag (§3.2).
	masterFrame := mv.LastRcvFrame - t.bufFrame
	// t = MasterRcvTime - RTT/2 estimates when the master sent it; the
	// elapsed time since then tells how far the master has advanced.
	sent := mv.RcvTime.Add(-mv.RTT / 2)
	elapsed := now.Sub(sent)
	sync := time.Duration(frame-masterFrame)*t.timePerFrame - elapsed
	if t.maxCorrection > 0 {
		if sync > t.maxCorrection {
			sync = t.maxCorrection
		}
		if sync < -t.maxCorrection {
			sync = -t.maxCorrection
		}
	}
	t.adjust += sync
}

// EndFrame is Algorithm 3 (EndFrameTiming).
func (t *FrameTimer) EndFrame() {
	end := t.frameStart.Add(t.timePerFrame + t.adjust)
	now := t.clock.Now()
	if end.Before(now) {
		// The frame overran; compensate in the following frames.
		t.adjust = end.Sub(now)
		return
	}
	t.adjust = 0
	t.clock.Sleep(end.Sub(now))
}

// FrameStart implements Pacer.
func (t *FrameTimer) FrameStart() time.Time { return t.frameStart }

// Adjust exposes the pending AdjustTimeDelta (tests and diagnostics).
func (t *FrameTimer) Adjust() time.Duration { return t.adjust }

// NaiveTimer is the ablation baseline: Algorithm 3 without Algorithm 4
// ("naive waiting"). With it, the earlier-starting site is perpetually
// penalized: its SyncInput waits slow it down, EndFrame speeds it back up,
// and the oscillation never settles (§3.2).
type NaiveTimer struct {
	clock        vclock.Clock
	timePerFrame time.Duration
	adjust       time.Duration
	frameStart   time.Time
}

// NewNaiveTimer builds the baseline pacer.
func NewNaiveTimer(cfg Config, clock vclock.Clock) *NaiveTimer {
	cfg = cfg.withDefaults()
	return &NaiveTimer{clock: clock, timePerFrame: cfg.TimePerFrame()}
}

// BeginFrame records the start time only.
func (t *NaiveTimer) BeginFrame(int, MasterView) { t.frameStart = t.clock.Now() }

// EndFrame is Algorithm 3, identical to FrameTimer.EndFrame.
func (t *NaiveTimer) EndFrame() {
	end := t.frameStart.Add(t.timePerFrame + t.adjust)
	now := t.clock.Now()
	if end.Before(now) {
		t.adjust = end.Sub(now)
		return
	}
	t.adjust = 0
	t.clock.Sleep(end.Sub(now))
}

// FrameStart implements Pacer.
func (t *NaiveTimer) FrameStart() time.Time { return t.frameStart }

var (
	_ Pacer = (*FrameTimer)(nil)
	_ Pacer = (*NaiveTimer)(nil)
)
