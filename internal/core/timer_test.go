package core

import (
	"testing"
	"time"

	"retrolock/internal/vclock"
)

func TestFrameTimerPacesAtCFPS(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	timer := NewFrameTimer(Config{SiteNo: 0}.withDefaults(), v)
	done := v.Go(func() {
		for f := 0; f < 60; f++ {
			timer.BeginFrame(f, MasterView{})
			// Simulate 3ms of work.
			v.Sleep(3 * time.Millisecond)
			timer.EndFrame()
		}
	})
	<-done
	// 60 frames at 60 FPS ≈ 1 s regardless of per-frame work.
	elapsed := v.Elapsed()
	if elapsed < 990*time.Millisecond || elapsed > 1010*time.Millisecond {
		t.Fatalf("60 frames took %v, want ~1s", elapsed)
	}
}

func TestFrameTimerCompensatesOverrun(t *testing.T) {
	// Algorithm 3: a frame that takes 50ms (3 frame times) is followed by
	// shortened frames until the schedule is caught up.
	v := vclock.NewVirtual(epoch)
	timer := NewFrameTimer(Config{SiteNo: 0}.withDefaults(), v)
	done := v.Go(func() {
		timer.BeginFrame(0, MasterView{})
		v.Sleep(50 * time.Millisecond) // overrun
		timer.EndFrame()
		if timer.Adjust() >= 0 {
			t.Errorf("adjust = %v after overrun, want negative carry", timer.Adjust())
		}
		for f := 1; f < 6; f++ {
			timer.BeginFrame(f, MasterView{})
			timer.EndFrame()
		}
	})
	<-done
	// 6 frames of schedule = 100ms; the overrun consumed 50ms of it, so
	// total elapsed stays ~100ms (catch-up), not 150ms.
	elapsed := v.Elapsed()
	if elapsed > 110*time.Millisecond {
		t.Fatalf("elapsed %v, want ~100ms (overrun not compensated)", elapsed)
	}
}

func TestFrameTimerMasterIgnoresMasterView(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	timer := NewFrameTimer(Config{SiteNo: 0}.withDefaults(), v)
	mv := MasterView{LastRcvFrame: 100, RcvTime: epoch, RTT: 40 * time.Millisecond, OK: true}
	done := v.Go(func() {
		timer.BeginFrame(0, mv)
		if timer.Adjust() != 0 {
			t.Errorf("master applied SyncAdjustTimeDelta %v, want 0", timer.Adjust())
		}
	})
	<-done
}

func TestFrameTimerSlaveAppliesCorrection(t *testing.T) {
	// Slave at frame 130 while the master (per a fresh message) is at
	// frame 124+lag: SyncAdjustTimeDelta = (130 - (130-6))*tpf - elapsed.
	v := vclock.NewVirtual(epoch)
	cfg := Config{SiteNo: 1}.withDefaults()
	timer := NewFrameTimer(cfg, v)
	done := v.Go(func() {
		v.Sleep(time.Second)
		now := v.Now()
		rtt := 40 * time.Millisecond
		// Master input for frame 130 (lag included) arrived 10ms ago.
		mv := MasterView{
			LastRcvFrame: 130,
			RcvTime:      now.Add(-10 * time.Millisecond),
			RTT:          rtt,
			OK:           true,
		}
		timer.BeginFrame(130, mv)
		// masterFrame = 130-6 = 124; sent at now-10ms-20ms = 30ms ago.
		// sync = (130-124)*16.67ms - 30ms = 100ms - 30ms = +70ms.
		got := timer.Adjust()
		want := 6*cfg.TimePerFrame() - 30*time.Millisecond
		if got < want-time.Millisecond || got > want+time.Millisecond {
			t.Fatalf("SyncAdjustTimeDelta = %v, want ~%v", got, want)
		}
	})
	<-done
}

func TestFrameTimerClampsWhenConfigured(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	cfg := Config{SiteNo: 1}.withDefaults()
	timer := NewFrameTimer(cfg, v)
	timer.SetMaxCorrection(5 * time.Millisecond)
	done := v.Go(func() {
		v.Sleep(time.Second)
		mv := MasterView{
			LastRcvFrame: 130,
			RcvTime:      v.Now(),
			RTT:          0,
			OK:           true,
		}
		timer.BeginFrame(200, mv) // wildly ahead: raw correction > 1s
		if timer.Adjust() != 5*time.Millisecond {
			t.Fatalf("clamped adjust = %v, want 5ms", timer.Adjust())
		}
	})
	<-done
}

func TestNaiveTimerPacesWithoutCorrection(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	timer := NewNaiveTimer(Config{SiteNo: 1}.withDefaults(), v)
	done := v.Go(func() {
		for f := 0; f < 30; f++ {
			timer.BeginFrame(f, MasterView{LastRcvFrame: 999, RcvTime: v.Now(), RTT: time.Second, OK: true})
			timer.EndFrame()
		}
	})
	<-done
	elapsed := v.Elapsed()
	want := 30 * (time.Second / 60)
	if elapsed < want-5*time.Millisecond || elapsed > want+5*time.Millisecond {
		t.Fatalf("30 frames took %v, want ~%v (naive timer must ignore the master view)", elapsed, want)
	}
}

// TestNaivePenalizesEarlierSite demonstrates §3.2's motivating problem: with
// the naive timer, the earlier-starting site suffers persistent frame-time
// fluctuation, while Algorithm 4 lets the (late) slave absorb the offset.
func TestNaivePenalizesEarlierSite(t *testing.T) {
	run := func(naive bool) (madEarlier float64) {
		env := newTwoSiteEnv(t, 80*time.Millisecond, 0)
		const frames = 400
		var startTimes [2][]time.Time
		var errs [2]error
		var done [2]<-chan struct{}
		for site := 0; site < 2; site++ {
			site := site
			cfg := Config{SiteNo: site, WaitTimeout: 10 * time.Second}
			var opts []SessionOption
			if naive {
				opts = append(opts, WithPacer(NewNaiveTimer(cfg.withDefaults(), env.v)))
			}
			s, err := NewSession(cfg, env.v, epoch, &fakeMachine{}, []Peer{{Site: 1 - site, Conn: env.conns[site]}}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			done[site] = env.v.Go(func() {
				if site == 1 {
					env.v.Sleep(120 * time.Millisecond) // site 0 starts earlier
				}
				errs[site] = s.RunFrames(frames, func(int) uint16 { return 0 }, func(fi FrameInfo) {
					startTimes[site] = append(startTimes[site], fi.Start)
				})
				s.Drain(2 * time.Second)
			})
		}
		<-done[0]
		<-done[1]
		for site, err := range errs {
			if err != nil {
				t.Fatalf("site %d (naive=%v): %v", site, naive, err)
			}
		}
		// Mean absolute deviation of site 0's frame times over the
		// steady-state tail.
		var times []float64
		for f := 200; f < frames-1; f++ {
			times = append(times, float64(startTimes[0][f+1].Sub(startTimes[0][f]))/float64(time.Millisecond))
		}
		mean := 0.0
		for _, x := range times {
			mean += x
		}
		mean /= float64(len(times))
		mad := 0.0
		for _, x := range times {
			if x > mean {
				mad += x - mean
			} else {
				mad += mean - x
			}
		}
		return mad / float64(len(times))
	}

	naiveMAD := run(true)
	syncMAD := run(false)
	if syncMAD > naiveMAD {
		t.Fatalf("Algorithm 4 made the earlier site less smooth: naive MAD %.2fms vs master/slave MAD %.2fms",
			naiveMAD, syncMAD)
	}
}
