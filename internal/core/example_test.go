package core_test

import (
	"fmt"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/netem"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

// Example runs a complete two-site lockstep session over an emulated 60 ms
// RTT link in virtual time: the minimal end-to-end use of the package.
func Example() {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	network := simnet.New(clock)
	fwd, rev := netem.Symmetric(60*time.Millisecond, 0, 0, 1)
	netem.Install(network, "p0", "p1", fwd, rev)
	c0, c1, err := transport.SimPair(network, "p0", "p1")
	if err != nil {
		fmt.Println(err)
		return
	}
	conns := []transport.Conn{c0, c1}

	game := games.MustLoad("pong")
	hashes := make([]uint64, 2)
	done := make([]<-chan struct{}, 2)
	for site := 0; site < 2; site++ {
		site := site
		console, err := game.Boot()
		if err != nil {
			fmt.Println(err)
			return
		}
		ses, err := core.NewSession(
			core.Config{SiteNo: site, WaitTimeout: 10 * time.Second},
			clock, clock.Now(), console,
			[]core.Peer{{Site: 1 - site, Conn: conns[site]}},
		)
		if err != nil {
			fmt.Println(err)
			return
		}
		done[site] = clock.Go(func() {
			if err := ses.Handshake(5 * time.Second); err != nil {
				return
			}
			_ = ses.RunFrames(120, func(frame int) uint16 {
				return uint16(1) << (8 * site) // both hold "up"
			}, nil)
			ses.Drain(time.Second)
			hashes[site] = console.StateHash()
		})
	}
	<-done[0]
	<-done[1]
	fmt.Println("converged:", hashes[0] == hashes[1])
	// Output: converged: true
}

// ExampleInputSync_SyncInput shows Algorithm 2 in isolation: local inputs
// are delayed by the 100 ms local lag and merged with the remote site's
// bits.
func ExampleInputSync_SyncInput() {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	network := simnet.New(clock)
	c0, c1, err := transport.SimPair(network, "a", "b")
	if err != nil {
		fmt.Println(err)
		return
	}

	s0, err := core.NewInputSync(core.Config{SiteNo: 0}, clock, clock.Now(),
		[]core.Peer{{Site: 1, Conn: c0}})
	if err != nil {
		fmt.Println(err)
		return
	}
	s1, err := core.NewInputSync(core.Config{SiteNo: 1}, clock, clock.Now(),
		[]core.Peer{{Site: 0, Conn: c1}})
	if err != nil {
		fmt.Println(err)
		return
	}

	done := clock.Go(func() {
		for frame := 0; frame <= core.DefaultBufFrame; frame++ {
			a, _ := s0.SyncInput(0x0011, frame) // site 0's pad byte
			b, _ := s1.SyncInput(0x2200, frame) // site 1's pad byte
			if frame < core.DefaultBufFrame {
				fmt.Printf("frame %d: %#04x (lag: empty)\n", frame, a)
			} else {
				fmt.Printf("frame %d: %#04x merged, replicas agree: %v\n", frame, a, a == b)
			}
			clock.Sleep(16667 * time.Microsecond)
		}
	})
	<-done
	// Output:
	// frame 0: 0x0000 (lag: empty)
	// frame 1: 0x0000 (lag: empty)
	// frame 2: 0x0000 (lag: empty)
	// frame 3: 0x0000 (lag: empty)
	// frame 4: 0x0000 (lag: empty)
	// frame 5: 0x0000 (lag: empty)
	// frame 6: 0x2211 merged, replicas agree: true
}
