package core

import "testing"

// newLockstepPair wires two player InputSyncs over a lossless pipe with a
// hand-cranked clock. stepFrame runs one frame on both sites and advances
// time by one send interval, so every frame exchanges exactly one message
// per direction and, past the local lag, never waits.
func newLockstepPair(t testing.TB) (s0, s1 *InputSync, stepFrame func(f int)) {
	t.Helper()
	clk := &manualClock{t: epoch}
	c0, c1 := newPipePair()
	var err error
	s0, err = NewInputSync(Config{SiteNo: 0}, clk, epoch, []Peer{{Site: 1, Conn: c0}})
	if err != nil {
		t.Fatal(err)
	}
	s1, err = NewInputSync(Config{SiteNo: 1}, clk, epoch, []Peer{{Site: 0, Conn: c1}})
	if err != nil {
		t.Fatal(err)
	}
	var h0, h1 uint64
	stepFrame = func(f int) {
		m0, err := s0.SyncInput(uint16(f)&0x00FF, f)
		if err != nil {
			t.Fatalf("site 0 frame %d: %v", f, err)
		}
		m1, err := s1.SyncInput(uint16(f)<<8, f)
		if err != nil {
			t.Fatalf("site 1 frame %d: %v", f, err)
		}
		h0 = h0*1099511628211 + uint64(m0)
		h1 = h1*1099511628211 + uint64(m1)
		if h0 != h1 {
			t.Fatalf("frame %d: merged-input streams diverged (%#x vs %#x)", f, m0, m1)
		}
		clk.Sleep(DefaultSendInterval)
	}
	return s0, s1, stepFrame
}

// TestSyncHotPathDoesNotAllocate pins the zero-allocation property of the
// steady-state frame loop: SyncInput → Pump → sendTo/handle must reuse the
// per-site scratch buffers instead of allocating per frame or per message.
func TestSyncHotPathDoesNotAllocate(t *testing.T) {
	_, _, stepFrame := newLockstepPair(t)
	frame := 0
	for ; frame < 300; frame++ { // warm-up: scratch buffers reach steady size
		stepFrame(frame)
	}
	allocs := testing.AllocsPerRun(500, func() {
		stepFrame(frame)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame loop allocates %.1f times per frame, want 0", allocs)
	}
}

// TestLongSessionMemoryBounded is the tentpole's acceptance test: a session
// of 120k frames (~33 minutes of game time) must hold the input buffer at
// its initial capacity, with a window high-water mark of a few frames — the
// ring retires delivered-and-acknowledged frames instead of growing forever.
func TestLongSessionMemoryBounded(t *testing.T) {
	frames := 120_000
	if testing.Short() {
		frames = 20_000
	}
	s0, s1, stepFrame := newLockstepPair(t)
	for f := 0; f < frames; f++ {
		stepFrame(f)
	}
	for name, s := range map[string]*InputSync{"site0": s0, "site1": s1} {
		if got := len(s.ibuf.buf); got != ringInitialCap {
			t.Errorf("%s: ring capacity %d after %d frames, want the initial %d", name, got, frames, ringInitialCap)
		}
		if got := s.Stats().BufPeak; got >= 64 {
			t.Errorf("%s: window peak %d frames, want < 64", name, got)
		}
		if _, ok := s.InputAt(5); ok {
			t.Errorf("%s: frame 5 still buffered after %d frames — retirement never ran", name, frames)
		}
		if _, ok := s.InputAt(s.Pointer()); !ok {
			t.Errorf("%s: next undelivered frame %d already evicted", name, s.Pointer())
		}
	}
}
