package core

import (
	"testing"
	"time"

	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

// TestThreePlayersWithCustomMasks exercises the journal extension the
// two-site paper defers (§6): N input-contributing sites with disjoint
// SET[k] masks, full mesh, all replicas converging.
func TestThreePlayersWithCustomMasks(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	masks := []uint16{0x000F, 0x00F0, 0x0F00}

	mk := func(a, b string) (transport.Conn, transport.Conn) {
		x, y, err := transport.SimPair(n, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return x, y
	}
	c01, c10 := mk("0-1", "1-0")
	c02, c20 := mk("0-2", "2-0")
	c12, c21 := mk("1-2", "2-1")
	peers := [3][]Peer{
		{{Site: 1, Conn: c01}, {Site: 2, Conn: c02}},
		{{Site: 0, Conn: c10}, {Site: 2, Conn: c12}},
		{{Site: 0, Conn: c20}, {Site: 1, Conn: c21}},
	}

	const frames = 250
	var machines [3]*fakeMachine
	var errs [3]error
	var done [3]<-chan struct{}
	for site := 0; site < 3; site++ {
		site := site
		machines[site] = &fakeMachine{}
		cfg := Config{
			SiteNo:      site,
			NumPlayers:  3,
			Masks:       masks,
			WaitTimeout: 10 * time.Second,
		}
		s, err := NewSession(cfg, v, epoch, machines[site], peers[site])
		if err != nil {
			t.Fatal(err)
		}
		done[site] = v.Go(func() {
			if errs[site] = s.Handshake(5 * time.Second); errs[site] != nil {
				return
			}
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				// Stir only this player's nibble.
				return uint16(f+site*5) & 0xF << (4 * site)
			}, nil)
			s.Drain(2 * time.Second)
		})
	}
	for site := 0; site < 3; site++ {
		<-done[site]
		if errs[site] != nil {
			t.Fatalf("site %d: %v", site, errs[site])
		}
	}
	if machines[0].hash != machines[1].hash || machines[1].hash != machines[2].hash {
		t.Fatal("three-player replicas diverged")
	}
	// Every frame past the lag must contain all three nibbles.
	in := machines[0].inputs[DefaultBufFrame]
	want := uint16(0&0xF)<<0 | uint16(5&0xF)<<4 | uint16(10&0xF)<<8
	if in != want {
		t.Fatalf("frame %d merged input %#x, want %#x", DefaultBufFrame, in, want)
	}
}

// TestThreePlayersToleratesLoss repeats the mesh under per-link loss.
func TestThreePlayersToleratesLoss(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	masks := []uint16{0x0007, 0x0038, 0x01C0}

	// One endpoint pair per edge of the lossy full mesh.
	conns := make(map[[2]int]transport.Conn, 6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			a := addrOf(i, j)
			b := addrOf(j, i)
			x, y, err := transport.SimPair(n, a, b)
			if err != nil {
				t.Fatal(err)
			}
			conns[[2]int{i, j}] = x
			conns[[2]int{j, i}] = y
			n.SetLink(a, b, &lossyConst{delay: 25 * time.Millisecond, everyNth: 7 + i + j})
			n.SetLink(b, a, &lossyConst{delay: 25 * time.Millisecond, everyNth: 8 + i + j})
		}
	}

	const frames = 200
	var machines [3]*fakeMachine
	var errs [3]error
	var done [3]<-chan struct{}
	for site := 0; site < 3; site++ {
		site := site
		machines[site] = &fakeMachine{}
		var peers []Peer
		for other := 0; other < 3; other++ {
			if other != site {
				peers = append(peers, Peer{Site: other, Conn: conns[[2]int{site, other}]})
			}
		}
		cfg := Config{SiteNo: site, NumPlayers: 3, Masks: masks, WaitTimeout: 20 * time.Second}
		s, err := NewSession(cfg, v, epoch, machines[site], peers)
		if err != nil {
			t.Fatal(err)
		}
		done[site] = v.Go(func() {
			errs[site] = s.RunFrames(frames, func(f int) uint16 {
				return uint16(f) & 0x7 << (3 * site)
			}, nil)
			s.Drain(3 * time.Second)
		})
	}
	for site := 0; site < 3; site++ {
		<-done[site]
		if errs[site] != nil {
			t.Fatalf("site %d: %v", site, errs[site])
		}
	}
	if machines[0].hash != machines[1].hash || machines[1].hash != machines[2].hash {
		t.Fatal("lossy three-player replicas diverged")
	}
}

// lossyConst drops every n-th packet deterministically.
type lossyConst struct {
	delay    time.Duration
	everyNth int
	count    int
}

func (l *lossyConst) Plan(time.Time, int) []time.Duration {
	l.count++
	if l.count%l.everyNth == 0 {
		return nil
	}
	return []time.Duration{l.delay}
}

func addrOf(from, to int) string {
	return "mesh" + string(rune('0'+from)) + "-" + string(rune('0'+to))
}
