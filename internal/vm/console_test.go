package vm

import (
	"testing"
)

// program assembles instructions (already encoded) into a code image.
func program(instrs ...Instr) []byte {
	code := make([]byte, 0, len(instrs)*4)
	for _, in := range instrs {
		e := in.Encode()
		code = append(code, e[:]...)
	}
	return code
}

// boot creates a console running code at 0 with entry 0.
func boot(t *testing.T, code []byte) *Console {
	t.Helper()
	c, err := New(Params{Code: code, Seed: 12345})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.EnableDebugLog()
	return c
}

// run1 boots the program, steps one frame with the given input and returns
// the console.
func run1(t *testing.T, input uint16, instrs ...Instr) *Console {
	t.Helper()
	c := boot(t, program(instrs...))
	c.StepFrame(input)
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpMOVI, Rd: 3, Imm: 0xBEEF},
		{Op: OpADD, Rd: 15, Ra: 7, Imm: 0x0009, Rb: 9},
		{Op: OpBEQ, Rd: 1, Ra: 2, Imm: 0x1234},
		{Op: OpLDW, Rd: 14, Ra: 15, Imm: 0xFFFC},
	}
	for _, in := range cases {
		e := in.Encode()
		got := Decode(e[0], e[1], e[2], e[3])
		want := in
		want.Rb = byte(want.Imm & 0x0F) // Rb always mirrors the imm low nibble
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestMOVIAndSignExtension(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0xFFFF}, // -1
		Instr{Op: OpMOVI, Rd: 2, Imm: 42},
		Instr{Op: OpYIELD},
	)
	if c.Reg(1) != 0xFFFFFFFF {
		t.Errorf("r1 = %#x, want 0xFFFFFFFF (sign extension)", c.Reg(1))
	}
	if c.Reg(2) != 42 {
		t.Errorf("r2 = %d, want 42", c.Reg(2))
	}
}

func TestMOVHIBuilds32BitConstant(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0x5678},
		Instr{Op: OpMOVHI, Rd: 1, Imm: 0x1234},
		Instr{Op: OpYIELD},
	)
	if c.Reg(1) != 0x12345678 {
		t.Errorf("r1 = %#x, want 0x12345678", c.Reg(1))
	}
}

func TestR0HardwiredZero(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 0, Imm: 99},
		Instr{Op: OpMOVI, Rd: 1, Imm: 7},
		Instr{Op: OpADD, Rd: 2, Ra: 1, Rb: 0, Imm: 0},
		Instr{Op: OpYIELD},
	)
	if c.Reg(0) != 0 {
		t.Errorf("r0 = %d, want 0", c.Reg(0))
	}
	if c.Reg(2) != 7 {
		t.Errorf("r2 = %d, want 7", c.Reg(2))
	}
}

func TestALUOps(t *testing.T) {
	tests := []struct {
		name string
		op   byte
		a, b uint32
		want uint32
	}{
		{"add", OpADD, 5, 3, 8},
		{"add-wrap", OpADD, 0xFFFFFFFF, 1, 0},
		{"sub", OpSUB, 5, 3, 2},
		{"sub-borrow", OpSUB, 3, 5, 0xFFFFFFFE},
		{"mul", OpMUL, 7, 6, 42},
		{"div", OpDIV, 42, 6, 7},
		{"div-negative", OpDIV, uint32(0xFFFFFFF6), 5, uint32(0xFFFFFFFF)}, // -10/5 = -2
		{"div-zero", OpDIV, 10, 0, 0},
		{"mod", OpMOD, 43, 6, 1},
		{"mod-zero", OpMOD, 10, 0, 0},
		{"and", OpAND, 0b1100, 0b1010, 0b1000},
		{"or", OpOR, 0b1100, 0b1010, 0b1110},
		{"xor", OpXOR, 0b1100, 0b1010, 0b0110},
		{"shl", OpSHL, 1, 4, 16},
		{"shl-mask", OpSHL, 1, 33, 2}, // count & 31
		{"shr", OpSHR, 0x80000000, 31, 1},
		{"sar", OpSAR, 0x80000000, 31, 0xFFFFFFFF},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := boot(t, program(
				Instr{Op: OpYIELD}, // frame 0: registers poked below
				Instr{Op: tc.op, Rd: 3, Ra: 1, Rb: 2, Imm: 2},
				Instr{Op: OpYIELD},
			))
			c.StepFrame(0)
			c.regs[1], c.regs[2] = tc.a, tc.b
			c.StepFrame(0)
			if tc.name == "div-negative" {
				// -10/5 is -2.
				if int32(c.Reg(3)) != -2 {
					t.Fatalf("r3 = %d, want -2", int32(c.Reg(3)))
				}
				return
			}
			if c.Reg(3) != tc.want {
				t.Errorf("r3 = %#x, want %#x", c.Reg(3), tc.want)
			}
		})
	}
}

func TestImmediateALUOps(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 100},
		Instr{Op: OpADDI, Rd: 2, Ra: 1, Imm: 0xFFFF}, // +(-1)
		Instr{Op: OpMULI, Rd: 3, Ra: 1, Imm: 3},
		Instr{Op: OpANDI, Rd: 4, Ra: 1, Imm: 0x6},
		Instr{Op: OpORI, Rd: 5, Ra: 1, Imm: 0x3},
		Instr{Op: OpXORI, Rd: 6, Ra: 1, Imm: 0xFF},
		Instr{Op: OpSHLI, Rd: 7, Ra: 1, Imm: 2},
		Instr{Op: OpSHRI, Rd: 8, Ra: 1, Imm: 2},
		Instr{Op: OpDIVI, Rd: 9, Ra: 1, Imm: 7},
		Instr{Op: OpMODI, Rd: 10, Ra: 1, Imm: 7},
		Instr{Op: OpSARI, Rd: 11, Ra: 1, Imm: 1},
		Instr{Op: OpYIELD},
	)
	want := map[int]uint32{2: 99, 3: 300, 4: 4, 5: 103, 6: 155, 7: 400, 8: 25, 9: 14, 10: 2, 11: 50}
	for r, w := range want {
		if c.Reg(r) != w {
			t.Errorf("r%d = %d, want %d", r, c.Reg(r), w)
		}
	}
}

func TestLoadStoreWidths(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0x2000}, // base address
		Instr{Op: OpMOVI, Rd: 2, Imm: 0x5678},
		Instr{Op: OpMOVHI, Rd: 2, Imm: 0x1234}, // r2 = 0x12345678
		Instr{Op: OpSTW, Rd: 2, Ra: 1, Imm: 0},
		Instr{Op: OpLDB, Rd: 3, Ra: 1, Imm: 0},
		Instr{Op: OpLDB, Rd: 4, Ra: 1, Imm: 3},
		Instr{Op: OpLDH, Rd: 5, Ra: 1, Imm: 0},
		Instr{Op: OpLDH, Rd: 6, Ra: 1, Imm: 2},
		Instr{Op: OpLDW, Rd: 7, Ra: 1, Imm: 0},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 8},
		Instr{Op: OpLDW, Rd: 8, Ra: 1, Imm: 8},
		Instr{Op: OpSTH, Rd: 2, Ra: 1, Imm: 12},
		Instr{Op: OpLDW, Rd: 9, Ra: 1, Imm: 12},
		Instr{Op: OpYIELD},
	)
	checks := map[int]uint32{
		3: 0x78, 4: 0x12, // little endian bytes
		5: 0x5678, 6: 0x1234,
		7: 0x12345678,
		8: 0x78,   // STB stored one byte
		9: 0x5678, // STH stored two bytes
	}
	for r, w := range checks {
		if c.Reg(r) != w {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg(r), w)
		}
	}
}

func TestNegativeMemOffset(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0x2004},
		Instr{Op: OpMOVI, Rd: 2, Imm: 0xAB},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 0xFFFC}, // [r1-4] = 0x2000
		Instr{Op: OpYIELD},
	)
	if got := c.Peek(0x2000); got != 0xAB {
		t.Errorf("mem[0x2000] = %#x, want 0xAB", got)
	}
}

func TestBranchesAndJumps(t *testing.T) {
	// Count down from 5 in a loop; r2 accumulates iterations.
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 5},
		Instr{Op: OpMOVI, Rd: 2, Imm: 0},
		// loop @ 0x0008:
		Instr{Op: OpADDI, Rd: 2, Ra: 2, Imm: 1},
		Instr{Op: OpADDI, Rd: 1, Ra: 1, Imm: 0xFFFF}, // r1--
		Instr{Op: OpBNE, Rd: 1, Ra: 0, Imm: 0x0008},
		Instr{Op: OpYIELD},
	)
	if c.Reg(2) != 5 {
		t.Errorf("loop ran %d times, want 5", c.Reg(2))
	}
}

func TestSignedVsUnsignedBranches(t *testing.T) {
	// r1 = -1, r2 = 1. BLT (signed) taken; BLTU (unsigned) not taken.
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0xFFFF}, // -1
		Instr{Op: OpMOVI, Rd: 2, Imm: 1},
		Instr{Op: OpMOVI, Rd: 3, Imm: 0},
		Instr{Op: OpBLT, Rd: 1, Ra: 2, Imm: 0x0014}, // skip next
		Instr{Op: OpJMP, Imm: 0x0018},               // (not executed)
		Instr{Op: OpMOVI, Rd: 3, Imm: 1},            // 0x0014: signed-taken marker
		// 0x0018:
		Instr{Op: OpMOVI, Rd: 4, Imm: 0},
		Instr{Op: OpBLTU, Rd: 1, Ra: 2, Imm: 0x0024}, // 0xFFFFFFFF < 1 unsigned? no
		Instr{Op: OpMOVI, Rd: 4, Imm: 2},             // executed
		// 0x0024:
		Instr{Op: OpYIELD},
	)
	if c.Reg(3) != 1 {
		t.Errorf("BLT signed: r3 = %d, want 1", c.Reg(3))
	}
	if c.Reg(4) != 2 {
		t.Errorf("BLTU unsigned: r4 = %d, want 2", c.Reg(4))
	}
}

func TestCallRetAndStack(t *testing.T) {
	// main: r1=3; call sub; r2 must be 30 after return.
	// sub @0x0010: r2 = r1*10; ret
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 3},
		Instr{Op: OpCALL, Imm: 0x0010},
		Instr{Op: OpYIELD},
		Instr{Op: OpNOP},
		Instr{Op: OpMULI, Rd: 2, Ra: 1, Imm: 10}, // 0x0010
		Instr{Op: OpRET},
	)
	if c.Reg(2) != 30 {
		t.Errorf("r2 = %d, want 30 (call/ret)", c.Reg(2))
	}
	if c.Reg(RegSP) != InitialSP {
		t.Errorf("sp = %#x, want %#x (balanced)", c.Reg(RegSP), InitialSP)
	}
}

func TestPushPop(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 111},
		Instr{Op: OpMOVI, Rd: 2, Imm: 222},
		Instr{Op: OpPUSH, Rd: 1},
		Instr{Op: OpPUSH, Rd: 2},
		Instr{Op: OpPOP, Rd: 3},
		Instr{Op: OpPOP, Rd: 4},
		Instr{Op: OpYIELD},
	)
	if c.Reg(3) != 222 || c.Reg(4) != 111 {
		t.Errorf("pop order r3=%d r4=%d, want 222/111 (LIFO)", c.Reg(3), c.Reg(4))
	}
}

func TestPadMMIOReflectsInput(t *testing.T) {
	c := run1(t, 0xA35C,
		Instr{Op: OpMOVI, Rd: 1, Imm: AddrPad0},
		Instr{Op: OpLDB, Rd: 2, Ra: 1, Imm: 0},
		Instr{Op: OpLDB, Rd: 3, Ra: 1, Imm: 1},
		Instr{Op: OpYIELD},
	)
	if c.Reg(2) != 0x5C {
		t.Errorf("pad0 = %#x, want 0x5C", c.Reg(2))
	}
	if c.Reg(3) != 0xA3 {
		t.Errorf("pad1 = %#x, want 0xA3", c.Reg(3))
	}
}

func TestPadAndFrameAreReadOnly(t *testing.T) {
	c := run1(t, 0x0102,
		Instr{Op: OpMOVI, Rd: 1, Imm: AddrPad0},
		Instr{Op: OpMOVI, Rd: 2, Imm: 0xFF},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 0},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 1},
		Instr{Op: OpSTH, Rd: 2, Ra: 1, Imm: 2}, // frame counter
		Instr{Op: OpYIELD},
	)
	if c.Peek(AddrPad0) != 0x02 || c.Peek(AddrPad1) != 0x01 {
		t.Error("pad MMIO was overwritten by the program")
	}
	if c.Peek(AddrFrame) != 0 {
		t.Error("frame counter was overwritten by the program")
	}
}

func TestFrameCounterVisibleToProgram(t *testing.T) {
	// Each frame, copy the frame counter into r5 and yield.
	code := program(
		Instr{Op: OpMOVI, Rd: 1, Imm: AddrFrame},
		Instr{Op: OpLDH, Rd: 5, Ra: 1, Imm: 0},
		Instr{Op: OpYIELD},
		Instr{Op: OpJMP, Imm: 0}, // restart each frame
	)
	c := boot(t, code)
	for i := 0; i < 5; i++ {
		c.StepFrame(0)
	}
	// Frame index seen during the last StepFrame is 4.
	if c.Reg(5) != 4 {
		t.Errorf("r5 = %d, want 4", c.Reg(5))
	}
	if c.FrameCount() != 5 {
		t.Errorf("FrameCount = %d, want 5", c.FrameCount())
	}
}

func TestHaltFreezesConsole(t *testing.T) {
	c := boot(t, program(
		Instr{Op: OpADDI, Rd: 1, Ra: 1, Imm: 1},
		Instr{Op: OpHALT},
	))
	c.StepFrame(0)
	if !c.Halted() {
		t.Fatal("console not halted")
	}
	h := c.StateHash()
	frames := c.FrameCount()
	c.StepFrame(0xFFFF)
	if c.StateHash() != h || c.FrameCount() != frames {
		t.Error("halted console changed state on StepFrame")
	}
}

func TestIllegalOpcodeHalts(t *testing.T) {
	c := run1(t, 0, Instr{Op: 0xEE})
	if !c.Halted() {
		t.Error("illegal opcode did not halt")
	}
}

func TestCycleBudgetEndsFrame(t *testing.T) {
	// Infinite loop: jmp 0. The frame must still terminate.
	c := boot(t, program(Instr{Op: OpJMP, Imm: 0}))
	c.StepFrame(0)
	if c.FrameCount() != 1 {
		t.Fatal("frame did not end despite infinite loop")
	}
	if c.Overruns() != 1 {
		t.Errorf("overruns = %d, want 1", c.Overruns())
	}
}

func TestRANDDeterministicPerSeed(t *testing.T) {
	prog := program(
		Instr{Op: OpRAND, Rd: 1},
		Instr{Op: OpRAND, Rd: 2},
		Instr{Op: OpYIELD},
	)
	a, err := New(Params{Code: prog, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Params{Code: prog, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(Params{Code: prog, Seed: 778})
	if err != nil {
		t.Fatal(err)
	}
	a.StepFrame(0)
	b.StepFrame(0)
	other.StepFrame(0)
	if a.Reg(1) != b.Reg(1) || a.Reg(2) != b.Reg(2) {
		t.Error("same seed produced different RAND sequences")
	}
	if a.Reg(1) == other.Reg(1) && a.Reg(2) == other.Reg(2) {
		t.Error("different seeds produced identical RAND sequences")
	}
	if a.Reg(1) == a.Reg(2) {
		t.Error("consecutive RAND values identical; LFSR stuck")
	}
}

func TestZeroSeedDoesNotLockLFSR(t *testing.T) {
	c, err := New(Params{Code: program(Instr{Op: OpRAND, Rd: 1}, Instr{Op: OpYIELD}), Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	c.StepFrame(0)
	if c.Reg(1) == 0 {
		t.Error("zero seed produced zero RAND; LFSR locked up")
	}
}

func TestSYSDebugLog(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 42},
		Instr{Op: OpSYS, Rd: 1, Imm: 7},
		Instr{Op: OpYIELD},
	)
	log := c.DebugLog()
	if len(log) != 1 {
		t.Fatalf("debug log has %d events, want 1", len(log))
	}
	if log[0].Code != 7 || log[0].Value != 42 || log[0].Frame != 0 {
		t.Errorf("event = %+v, want code 7 value 42 frame 0", log[0])
	}
}

func TestCodeTooLargeRejected(t *testing.T) {
	if _, err := New(Params{Code: make([]byte, VRAMBase+1)}); err == nil {
		t.Error("oversized code accepted")
	}
	if _, err := New(Params{Code: make([]byte, 16), LoadAddr: VRAMBase - 8}); err == nil {
		t.Error("code overlapping VRAM accepted")
	}
}

func TestVRAMWriteAndPixel(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0xC000}, // VRAM base; pixel (0,0)
		Instr{Op: OpMOVI, Rd: 2, Imm: 5},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 0},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 129}, // pixel (1,1)
		Instr{Op: OpYIELD},
	)
	if c.Pixel(0, 0) != 5 {
		t.Errorf("pixel(0,0) = %d, want 5", c.Pixel(0, 0))
	}
	if c.Pixel(1, 1) != 5 {
		t.Errorf("pixel(1,1) = %d, want 5", c.Pixel(1, 1))
	}
	if c.Pixel(-1, 0) != 0 || c.Pixel(0, ScreenH) != 0 {
		t.Error("out-of-range Pixel must read 0")
	}
	fb := c.Framebuffer()
	if len(fb) != VRAMSize || fb[0] != 5 {
		t.Errorf("framebuffer copy wrong: len=%d fb[0]=%d", len(fb), fb[0])
	}
}
