package vm

import (
	"fmt"
	"strings"
)

// Disassemble renders one decoded instruction as assembler text.
func Disassemble(in Instr) string {
	kind, ok := OperandKindOf(in.Op)
	if !ok {
		return fmt.Sprintf("db 0x%02X, 0x%02X, 0x%02X, 0x%02X",
			in.Op, in.Rd<<4|in.Ra, byte(in.Imm), byte(in.Imm>>8))
	}
	name := OpName(in.Op)
	switch kind {
	case KindNone:
		return name
	case KindRdImm:
		return fmt.Sprintf("%s r%d, %d", name, in.Rd, in.Imm)
	case KindRdRa:
		return fmt.Sprintf("%s r%d, r%d", name, in.Rd, in.Ra)
	case KindRRR:
		return fmt.Sprintf("%s r%d, r%d, r%d", name, in.Rd, in.Ra, in.Rb)
	case KindRRI:
		return fmt.Sprintf("%s r%d, r%d, %d", name, in.Rd, in.Ra, in.SImm())
	case KindMem:
		if off := in.SImm(); off != 0 {
			return fmt.Sprintf("%s r%d, [r%d%+d]", name, in.Rd, in.Ra, off)
		}
		return fmt.Sprintf("%s r%d, [r%d]", name, in.Rd, in.Ra)
	case KindImm:
		return fmt.Sprintf("%s 0x%04X", name, in.Imm)
	case KindRa:
		return fmt.Sprintf("%s r%d", name, in.Ra)
	case KindRd:
		return fmt.Sprintf("%s r%d", name, in.Rd)
	case KindBranch:
		return fmt.Sprintf("%s r%d, r%d, 0x%04X", name, in.Rd, in.Ra, in.Imm)
	case KindSys:
		return fmt.Sprintf("%s r%d, %d", name, in.Rd, in.Imm)
	default:
		return name
	}
}

// DisassembleCode renders a code image as one instruction per line, with
// addresses, starting at base.
func DisassembleCode(code []byte, base uint16) string {
	var b strings.Builder
	for i := 0; i+4 <= len(code); i += 4 {
		in := Decode(code[i], code[i+1], code[i+2], code[i+3])
		fmt.Fprintf(&b, "0x%04X: %s\n", base+uint16(i), Disassemble(in))
	}
	return b.String()
}
