package vm

import (
	"image"
	"image/color"
	"strings"
)

// Video device: a 128x96 byte-per-pixel framebuffer at VRAMBase, row-major.
// Pixel values index a fixed 16-color palette (values above 15 wrap). The
// console renders whatever the game wrote; the sync layer never looks at it
// (the paper's VM translates source-platform output to the target platform —
// here: ASCII for terminals and image.RGBA for anything richer).

// Palette is the console's fixed 16-color palette (RGBA), loosely modelled
// on classic 8-bit home-computer palettes.
var Palette = [16]color.RGBA{
	{0x00, 0x00, 0x00, 0xFF}, // 0 black
	{0xFF, 0xFF, 0xFF, 0xFF}, // 1 white
	{0x88, 0x00, 0x00, 0xFF}, // 2 red
	{0xAA, 0xFF, 0xEE, 0xFF}, // 3 cyan
	{0xCC, 0x44, 0xCC, 0xFF}, // 4 purple
	{0x00, 0xCC, 0x55, 0xFF}, // 5 green
	{0x00, 0x00, 0xAA, 0xFF}, // 6 blue
	{0xEE, 0xEE, 0x77, 0xFF}, // 7 yellow
	{0xDD, 0x88, 0x55, 0xFF}, // 8 orange
	{0x66, 0x44, 0x00, 0xFF}, // 9 brown
	{0xFF, 0x77, 0x77, 0xFF}, // 10 light red
	{0x33, 0x33, 0x33, 0xFF}, // 11 dark grey
	{0x77, 0x77, 0x77, 0xFF}, // 12 grey
	{0xAA, 0xFF, 0x66, 0xFF}, // 13 light green
	{0x00, 0x88, 0xFF, 0xFF}, // 14 light blue
	{0xBB, 0xBB, 0xBB, 0xFF}, // 15 light grey
}

// asciiRamp maps palette indices to terminal characters, dark to bright.
const asciiRamp = " #.%*+:o@xOX=-$&"

// Pixel returns the palette index at (x, y); out-of-range coordinates read
// as 0.
func (c *Console) Pixel(x, y int) byte {
	if x < 0 || x >= ScreenW || y < 0 || y >= ScreenH {
		return 0
	}
	return c.mem[VRAMBase+y*ScreenW+x] & 0x0F
}

// Framebuffer returns a copy of the raw VRAM bytes (ScreenW*ScreenH).
func (c *Console) Framebuffer() []byte {
	out := make([]byte, VRAMSize)
	copy(out, c.mem[VRAMBase:VRAMBase+VRAMSize])
	return out
}

// Image renders the framebuffer through the palette.
func (c *Console) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, ScreenW, ScreenH))
	for y := 0; y < ScreenH; y++ {
		for x := 0; x < ScreenW; x++ {
			img.SetRGBA(x, y, Palette[c.Pixel(x, y)])
		}
	}
	return img
}

// RenderASCII draws the framebuffer as text, sampling every step-th pixel in
// both axes (step <= 0 defaults to 2, giving a 64x48 character screen).
func (c *Console) RenderASCII(step int) string {
	if step <= 0 {
		step = 2
	}
	var b strings.Builder
	b.Grow((ScreenW/step + 1) * (ScreenH / step))
	for y := 0; y < ScreenH; y += step {
		for x := 0; x < ScreenW; x += step {
			b.WriteByte(asciiRamp[c.Pixel(x, y)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
