package vm

import (
	"bytes"
	"testing"
)

// settle drains the boot-time "everything dirty" state through both
// incremental consumers so a test can observe exactly the pages its own
// stores mark.
func settle(c *Console) {
	c.StateHash()
	c.AppendSaveBase(nil)
}

func TestStoreMarksDirtyPages(t *testing.T) {
	c := boot(t, program(
		Instr{Op: OpMOVI, Rd: 1, Imm: 0x4000},
		Instr{Op: OpMOVI, Rd: 2, Imm: 0x55},
		Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 0},
		Instr{Op: OpSTH, Rd: 2, Ra: 1, Imm: 0x200},
		Instr{Op: OpSTW, Rd: 2, Ra: 1, Imm: 0x3FE}, // straddles 0x43FE-0x4401
		Instr{Op: OpYIELD},
	))
	settle(c)
	c.StepFrame(0)
	for _, p := range []int{0x40, 0x42, 0x43, 0x44} {
		if !c.dirty.Test(p) {
			t.Errorf("page %#x not marked dirty", p)
		}
	}
	if !c.dirty.Test(int(AddrPad0) >> pageShift) {
		t.Error("MMIO page not marked by the input latch")
	}
	if c.dirty.Test(0x41) {
		t.Error("untouched page 0x41 marked dirty")
	}
}

func TestWrappingStoreMarksBothEnds(t *testing.T) {
	c := boot(t, program(
		Instr{Op: OpMOVI, Rd: 1, Imm: 0xFFFF},
		Instr{Op: OpMOVI, Rd: 2, Imm: 0x7777},
		Instr{Op: OpSTH, Rd: 2, Ra: 1, Imm: 0}, // bytes 0xFFFF and 0x0000
		Instr{Op: OpYIELD},
	))
	settle(c)
	c.StepFrame(0)
	if !c.dirty.Test(0xFF) || !c.dirty.Test(0x00) {
		t.Error("wrapping halfword store did not mark both end pages")
	}
	if c.Peek(0xFFFF) != 0x77 || c.Peek(0x0000) != 0x77 {
		t.Error("wrapping halfword store bytes misplaced")
	}
}

// blitProgram stores x, y, w, h, color into the blitter registers and fires
// it, then yields.
func blitProgram(x, y, w, h, col uint16) []byte {
	return program(
		Instr{Op: OpMOVI, Rd: 8, Imm: AddrBlitX},
		Instr{Op: OpMOVI, Rd: 1, Imm: x},
		Instr{Op: OpMOVI, Rd: 2, Imm: y},
		Instr{Op: OpMOVI, Rd: 3, Imm: w},
		Instr{Op: OpMOVI, Rd: 4, Imm: h},
		Instr{Op: OpMOVI, Rd: 5, Imm: col},
		Instr{Op: OpSTB, Rd: 1, Ra: 8, Imm: 0},
		Instr{Op: OpSTB, Rd: 2, Ra: 8, Imm: 1},
		Instr{Op: OpSTB, Rd: 3, Ra: 8, Imm: 2},
		Instr{Op: OpSTB, Rd: 4, Ra: 8, Imm: 3},
		Instr{Op: OpSTB, Rd: 5, Ra: 8, Imm: 4},
		Instr{Op: OpSTB, Rd: 0, Ra: 8, Imm: 5}, // go
		Instr{Op: OpYIELD},
	)
}

func TestBlitFillsAndClips(t *testing.T) {
	c := boot(t, blitProgram(10, 90, 20, 20, 3))
	c.StepFrame(0)
	for y := 0; y < ScreenH; y++ {
		for x := 0; x < ScreenW; x++ {
			want := byte(0)
			if x >= 10 && x < 30 && y >= 90 {
				want = 3 // rows past 95 are clipped away
			}
			if got := c.Pixel(x, y); got != want {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
	// 12 setup instructions plus the blit's deterministic surcharge; the
	// terminating YIELD is not counted.
	if want := 12 + blitCost(20, 20); c.CyclesLastFrame() != want {
		t.Errorf("blit frame ran %d cycles, want %d", c.CyclesLastFrame(), want)
	}
}

func TestBlitOffscreenIsNoOp(t *testing.T) {
	c := boot(t, blitProgram(200, 10, 50, 4, 7))
	c.StepFrame(0)
	for y := 0; y < ScreenH; y++ {
		for x := 0; x < ScreenW; x++ {
			if c.Pixel(x, y) != 0 {
				t.Fatalf("offscreen blit painted pixel (%d,%d)", x, y)
			}
		}
	}
	if want := 12 + blitCost(50, 4); c.CyclesLastFrame() != want {
		t.Errorf("offscreen blit ran %d cycles, want %d (cost charged pre-clip)", c.CyclesLastFrame(), want)
	}
}

func TestBlitMarksDirtyPages(t *testing.T) {
	c := boot(t, blitProgram(0, 4, 128, 2, 9))
	settle(c)
	c.StepFrame(0)
	// Rows 4-5 live at VRAMBase+512..VRAMBase+767: page 0xC2.
	if !c.dirty.Test(0xC2) {
		t.Error("blit did not mark the filled page")
	}
	if c.dirty.Test(0xC4) {
		t.Error("blit marked a page past the fill")
	}
}

// scribblerProg is a program that writes a counter to LFSR-random addresses as
// fast as it can — every frame overruns the cycle budget and scribbles over
// hundreds of pages, including the MMIO page.
var scribblerProg = program(
	Instr{Op: OpRAND, Rd: 1},
	Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 0},
	Instr{Op: OpADDI, Rd: 2, Ra: 2, Imm: 1},
	Instr{Op: OpJMP, Imm: 0},
)

func TestIncrementalHashMatchesFullRecompute(t *testing.T) {
	c := boot(t, scribblerProg)
	for frame := 0; frame < 8; frame++ {
		c.StepFrame(uint16(frame * 7))
		got := c.StateHash()
		// A console restored from the full image recomputes every page
		// digest from scratch.
		fresh, err := New(Params{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(c.Save()); err != nil {
			t.Fatal(err)
		}
		if want := fresh.StateHash(); got != want {
			t.Fatalf("frame %d: incremental hash %016x != full recompute %016x", frame, got, want)
		}
	}
}

func TestDeltaChainMatchesFullSave(t *testing.T) {
	c := boot(t, scribblerProg)
	c.StepFrame(1)
	image := c.AppendSaveBase(nil)
	if !bytes.Equal(image, c.Save()) {
		t.Fatal("base capture differs from a full save")
	}
	for frame := 0; frame < 6; frame++ {
		c.StepFrame(uint16(frame))
		if frame == 3 {
			// A plain save mid-chain (late joiner) must not disturb the
			// delta chain.
			_ = c.Save()
		}
		delta := c.AppendSaveDelta(nil)
		if err := ApplyDeltaToImage(image, delta); err != nil {
			t.Fatalf("frame %d: apply: %v", frame, err)
		}
		if full := c.Save(); !bytes.Equal(image, full) {
			t.Fatalf("frame %d: materialized image differs from full save", frame)
		}
	}
}

func TestDeltaAfterQuietFrameIsSmall(t *testing.T) {
	c := boot(t, program(Instr{Op: OpYIELD}))
	c.StepFrame(0)
	c.AppendSaveBase(nil)
	c.StepFrame(0)
	delta := c.AppendSaveDelta(nil)
	// A frame that only latches input and runs YIELD touches two pages at
	// most (MMIO latch + nothing else); the delta must reflect that, not
	// ship anything near the 64 KiB full image.
	if len(delta) > deltaHeaderLen+2*(2+PageSize) {
		t.Errorf("quiet-frame delta is %d bytes", len(delta))
	}
}

func TestApplyDeltaRejectsCorrupt(t *testing.T) {
	c := boot(t, program(Instr{Op: OpYIELD}))
	image := c.AppendSaveBase(nil)
	c.StepFrame(0)
	delta := c.AppendSaveDelta(nil)

	if err := ApplyDeltaToImage(image[:10], delta); err == nil {
		t.Error("short image accepted")
	}
	if err := ApplyDeltaToImage(image, delta[:len(delta)-1]); err == nil {
		t.Error("truncated delta accepted")
	}
	bad := append([]byte(nil), delta...)
	bad[0] = 'X'
	if err := ApplyDeltaToImage(image, bad); err == nil {
		t.Error("bad magic accepted")
	}
	if len(delta) > deltaHeaderLen {
		bad = append([]byte(nil), delta...)
		bad[deltaHeaderLen] = 0xFF
		bad[deltaHeaderLen+1] = 0xFF // page 65535, out of range
		if err := ApplyDeltaToImage(image, bad); err == nil {
			t.Error("out-of-range page accepted")
		}
	}
}

func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{0x43, 0x21, 0x00, 0x00}, uint8(3)) // a lone STB, then garbage
	f.Add(scribblerProg, uint8(5))
	f.Fuzz(func(t *testing.T, code []byte, frames uint8) {
		if len(code) > VRAMBase {
			code = code[:VRAMBase]
		}
		c, err := New(Params{Code: code, Seed: 99})
		if err != nil {
			t.Skip()
		}
		c.StepFrame(0)
		image := c.AppendSaveBase(nil)
		n := int(frames%6) + 1
		for i := 0; i < n; i++ {
			c.StepFrame(uint16(i) * 257)
			delta := c.AppendSaveDelta(nil)
			if err := ApplyDeltaToImage(image, delta); err != nil {
				t.Fatalf("apply of self-produced delta: %v", err)
			}
		}
		if full := c.Save(); !bytes.Equal(image, full) {
			t.Fatal("base+deltas diverged from full save")
		}
	})
}

func FuzzApplyDeltaNeverPanics(f *testing.F) {
	c, _ := New(Params{})
	image := c.AppendSaveBase(nil)
	c.StepFrame(0)
	f.Add(c.AppendSaveDelta(nil))
	f.Add([]byte("RKSD"))
	f.Fuzz(func(t *testing.T, delta []byte) {
		img := append([]byte(nil), image...)
		// Arbitrary bytes must be rejected or applied cleanly, never panic.
		_ = ApplyDeltaToImage(img, delta)
	})
}
