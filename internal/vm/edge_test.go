package vm

import (
	"testing"
	"testing/quick"
)

// Edge-of-address-space and structural invariants.

func TestMemoryAccessWrapsAtTop(t *testing.T) {
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 0xFFFE},
		Instr{Op: OpMOVI, Rd: 2, Imm: 0x1234},
		Instr{Op: OpMOVHI, Rd: 2, Imm: 0x5678}, // r2 = 0x56781234
		Instr{Op: OpSTW, Rd: 2, Ra: 1, Imm: 0}, // straddles 0xFFFE..0x0001
		Instr{Op: OpLDW, Rd: 3, Ra: 1, Imm: 0},
		Instr{Op: OpYIELD},
	)
	if c.Reg(3) != 0x56781234 {
		t.Errorf("wrapped load = %#x, want 0x56781234", c.Reg(3))
	}
	// Bytes landed at 0xFFFE, 0xFFFF, 0x0000, 0x0001 (little endian) —
	// but 0x0000/0x0001 hold the running program, which we overwrote;
	// the console must keep running (next fetch decodes whatever is
	// there) and, at worst, halt deterministically.
	if c.Peek(0xFFFE) != 0x34 || c.Peek(0xFFFF) != 0x12 {
		t.Errorf("top bytes = %#x %#x", c.Peek(0xFFFE), c.Peek(0xFFFF))
	}
}

func TestStackWrapsWithoutPanic(t *testing.T) {
	// Pop past the initial SP and push past zero: must not panic, only
	// wrap (deterministically).
	c := boot(t, program(
		Instr{Op: OpPOP, Rd: 1},
		Instr{Op: OpPOP, Rd: 2},
		Instr{Op: OpPUSH, Rd: 1},
		Instr{Op: OpYIELD},
	))
	c.StepFrame(0)
	// Two pops (+8) then one push (-4): SP nets +4 above its reset value,
	// into the VRAM region — legal, deterministic, no trap.
	if c.Reg(RegSP) != InitialSP+4 {
		t.Errorf("sp = %#x after 2 pops + 1 push from %#x, want %#x", c.Reg(RegSP), InitialSP, InitialSP+4)
	}
}

func TestDeepCallNesting(t *testing.T) {
	// A recursive countdown: call depth 64 must work within RAM.
	c := run1(t, 0,
		Instr{Op: OpMOVI, Rd: 1, Imm: 64},
		Instr{Op: OpCALL, Imm: 0x000C},
		Instr{Op: OpYIELD},
		// recurse @ 0x000C:
		Instr{Op: OpBEQ, Rd: 1, Ra: 0, Imm: 0x001C},
		Instr{Op: OpADDI, Rd: 1, Ra: 1, Imm: 0xFFFF},
		Instr{Op: OpCALL, Imm: 0x000C},
		// 0x0018: unwind
		Instr{Op: OpRET},
		// 0x001C:
		Instr{Op: OpRET},
	)
	if c.Reg(1) != 0 {
		t.Errorf("r1 = %d after recursion, want 0", c.Reg(1))
	}
	if c.Reg(RegSP) != InitialSP {
		t.Errorf("sp = %#x, want balanced %#x", c.Reg(RegSP), InitialSP)
	}
}

func TestFrequencyTableMonotonic(t *testing.T) {
	for i := 1; i < len(freqTable); i++ {
		if freqTable[i] <= freqTable[i-1] {
			t.Fatalf("freqTable[%d]=%d not above freqTable[%d]=%d", i, freqTable[i], i-1, freqTable[i-1])
		}
	}
	// A2 and A4 anchor the chromatic scale.
	if freqTable[0] != 110 || freqTable[24] != 440 {
		t.Errorf("anchors: f[0]=%d f[24]=%d, want 110/440", freqTable[0], freqTable[24])
	}
}

// Property: the disassembler output of any defined-opcode instruction is
// stable text, and Decode(Encode(x)) preserves execution-relevant fields.
func TestPropertyEncodeDecodeExecFields(t *testing.T) {
	ops := make([]byte, 0, len(opTable))
	for op := range opTable {
		ops = append(ops, op)
	}
	f := func(opIdx byte, rd, ra byte, imm uint16) bool {
		in := Instr{
			Op:  ops[int(opIdx)%len(ops)],
			Rd:  rd & 0x0F,
			Ra:  ra & 0x0F,
			Imm: imm,
		}
		e := in.Encode()
		got := Decode(e[0], e[1], e[2], e[3])
		return got.Op == in.Op && got.Rd == in.Rd && got.Ra == in.Ra &&
			got.Imm == in.Imm && got.Rb == byte(imm&0x0F)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: StepFrame never panics for arbitrary code images — the console
// must contain any byte soup deterministically (illegal opcodes halt).
func TestPropertyArbitraryCodeNeverPanics(t *testing.T) {
	f := func(code []byte, input uint16) bool {
		if len(code) > 4096 {
			code = code[:4096]
		}
		c, err := New(Params{Code: code, Seed: 7})
		if err != nil {
			return true // oversized images are rejected, fine
		}
		for i := 0; i < 3; i++ {
			c.StepFrame(input)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: two consoles fed the same arbitrary code and inputs stay
// hash-identical — determinism holds even for garbage programs.
func TestPropertyGarbageCodeDeterministic(t *testing.T) {
	f := func(code []byte, inputs []uint16) bool {
		if len(code) > 2048 {
			code = code[:2048]
		}
		if len(inputs) > 16 {
			inputs = inputs[:16]
		}
		a, errA := New(Params{Code: code, Seed: 3})
		b, errB := New(Params{Code: code, Seed: 3})
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		for _, in := range inputs {
			a.StepFrame(in)
			b.StepFrame(in)
			if a.StateHash() != b.StateHash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTraceObservesExecution(t *testing.T) {
	c := boot(t, program(
		Instr{Op: OpMOVI, Rd: 1, Imm: 5},
		Instr{Op: OpADDI, Rd: 1, Ra: 1, Imm: 1},
		Instr{Op: OpYIELD},
	))
	var events []TraceEvent
	c.SetTrace(func(e TraceEvent) { events = append(events, e) })
	c.StepFrame(0)
	if len(events) != 3 {
		t.Fatalf("traced %d instructions, want 3", len(events))
	}
	if events[0].PC != 0 || events[0].Instr.Op != OpMOVI {
		t.Errorf("event 0: %+v", events[0])
	}
	if events[2].Instr.Op != OpYIELD || events[2].Cycle != 2 {
		t.Errorf("event 2: %+v", events[2])
	}
	if c.CyclesLastFrame() != 2 {
		// YIELD stops the loop at cycle index 2 (ran counts completed
		// iterations before the stop).
		t.Errorf("CyclesLastFrame = %d, want 2", c.CyclesLastFrame())
	}
	// Tracing must not perturb state.
	clone := boot(t, program(
		Instr{Op: OpMOVI, Rd: 1, Imm: 5},
		Instr{Op: OpADDI, Rd: 1, Ra: 1, Imm: 1},
		Instr{Op: OpYIELD},
	))
	clone.StepFrame(0)
	if clone.StateHash() != c.StateHash() {
		t.Error("tracing changed the machine state")
	}
	c.SetTrace(nil)
	c.StepFrame(0)
	if len(events) != 3 {
		t.Error("trace fired after removal")
	}
}

func TestGamesFitWellWithinCycleBudget(t *testing.T) {
	// Every shipped game must leave ample headroom in the 100k budget,
	// so emulation never becomes the frame-time bottleneck.
	// (Checked here against the raw consoles; the games package has the
	// behavioural tests.)
	progs := map[string][]byte{"scribbler": scribbler()}
	for name, code := range progs {
		c, err := New(Params{Code: code, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0
		for f := 0; f < 120; f++ {
			c.StepFrame(uint16(f))
			if c.CyclesLastFrame() > worst {
				worst = c.CyclesLastFrame()
			}
		}
		if worst > CyclesPerFrame/2 {
			t.Errorf("%s worst frame %d cycles, wants headroom below %d", name, worst, CyclesPerFrame/2)
		}
	}
}
