package vm

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Delta savestates: incremental capture driven by the dirty-page bitmap.
//
// A capture chain alternates a base (a full RKSV image, identical to Save)
// with deltas that carry only the pages mutated since the previous capture
// in the chain. Applying a delta to the full image of the previous capture
// reproduces, byte for byte, the full image Save would have produced at the
// delta's frame. The chain state (snapDirty) lives in the console and is
// touched ONLY by AppendSaveBase and AppendSaveDelta — a plain Save/
// AppendSave in between (e.g. for a late joiner) does not disturb it.
//
// delta format (little endian):
//
//	magic   "RKSD" (4)
//	version u16
//	header  — same fields and offsets as RKSV (pc, frame, flags, lfsr,
//	          phase, overrun, regs); see state.go
//	npages  u16
//	npages x { page u16, 256 bytes }
const (
	deltaMagic     = "RKSD"
	deltaHeaderLen = saveMemOff + 2 // RKSV header + npages
)

// AppendSaveBase captures a full savestate image (identical bytes to
// AppendSave) and restarts the delta chain: the next AppendSaveDelta will be
// relative to this capture.
func (c *Console) AppendSaveBase(buf []byte) []byte {
	c.drainDirty()
	c.snapDirty.Clear()
	return c.AppendSave(buf)
}

// AppendSaveDelta appends a delta capture holding every page mutated since
// the previous AppendSaveBase/AppendSaveDelta, and marks those pages clean
// in the chain. Must follow an AppendSaveBase on the same console.
func (c *Console) AppendSaveDelta(buf []byte) []byte {
	c.drainDirty()
	buf = c.appendSaveHeader(buf)
	buf[len(buf)-saveMemOff] = deltaMagic[0]
	buf[len(buf)-saveMemOff+1] = deltaMagic[1]
	buf[len(buf)-saveMemOff+2] = deltaMagic[2]
	buf[len(buf)-saveMemOff+3] = deltaMagic[3]
	buf = binary.LittleEndian.AppendUint16(buf, uint16(c.snapDirty.Count()))
	for wi, wv := range c.snapDirty {
		for wv != 0 {
			p := wi<<6 + bits.TrailingZeros64(wv)
			wv &= wv - 1
			buf = binary.LittleEndian.AppendUint16(buf, uint16(p))
			buf = append(buf, c.mem[p<<pageShift:p<<pageShift+PageSize]...)
		}
	}
	c.snapDirty.Clear()
	return buf
}

// ApplyDeltaToImage patches a full RKSV savestate image in place with a
// delta capture, producing the full image of the delta's frame. image must
// be exactly saveLen bytes (a prior base or base+deltas materialization).
func ApplyDeltaToImage(image, delta []byte) error {
	if len(image) != saveLen {
		return fmt.Errorf("vm: base image is %d bytes, want %d", len(image), saveLen)
	}
	if string(image[:4]) != saveMagic {
		return fmt.Errorf("vm: bad base image magic %q", image[:4])
	}
	if len(delta) < deltaHeaderLen {
		return fmt.Errorf("vm: delta of %d bytes is shorter than its %d-byte header", len(delta), deltaHeaderLen)
	}
	if string(delta[:4]) != deltaMagic {
		return fmt.Errorf("vm: bad delta magic %q", delta[:4])
	}
	if v := binary.LittleEndian.Uint16(delta[4:6]); v != saveVersion {
		return fmt.Errorf("vm: delta version %d unsupported (want %d)", v, saveVersion)
	}
	npages := int(binary.LittleEndian.Uint16(delta[saveMemOff:]))
	want := deltaHeaderLen + npages*(2+PageSize)
	if len(delta) != want {
		return fmt.Errorf("vm: delta declares %d pages (%d bytes), got %d", npages, want, len(delta))
	}
	// Header fields share offsets between the two formats.
	copy(image[savePCOff:saveMemOff], delta[savePCOff:saveMemOff])
	off := deltaHeaderLen
	for i := 0; i < npages; i++ {
		p := int(binary.LittleEndian.Uint16(delta[off:]))
		if p >= NumPages {
			return fmt.Errorf("vm: delta page %d out of range", p)
		}
		off += 2
		copy(image[saveMemOff+p<<pageShift:saveMemOff+p<<pageShift+PageSize], delta[off:off+PageSize])
		off += PageSize
	}
	return nil
}

// SaveLen is the byte size of a full savestate image, exported for ring
// sizing by the flight recorder.
const SaveLen = saveLen
