// Package vm implements RK-32, a deterministic fantasy arcade console.
//
// RK-32 stands in for the MAME virtual machine of the paper (§2): it
// emulates a complete game platform — CPU, memory, two game pads, a
// framebuffer video device and a square-wave audio device — and runs games
// shipped as opaque ROM images (see internal/rom). The properties the
// paper's approach relies on hold by construction:
//
//   - Determinism (§5): a console's state evolution is a pure function of
//     the initial ROM and the per-frame input words. There is no access to
//     host clocks, environment or I/O; in-game randomness comes from an
//     LFSR seeded by the ROM header.
//   - Transparency (§2): the console exposes Transition as StepFrame(input)
//     where input is an opaque 16-bit string. Bits 0-7 are pad 0 and bits
//     8-15 are pad 1, which is exactly the SET[k] partition of §3.
//
// The CPU is a 32-bit load/store machine with 16 registers and fixed 4-byte
// instructions, chosen for easy, bug-resistant emulation rather than
// resemblance to any specific historical chip.
package vm

import "fmt"

// Architectural constants.
const (
	// NumRegs is the number of general-purpose registers. R0 reads as
	// zero and ignores writes; R15 is the stack pointer by convention.
	NumRegs = 16

	// RegSP is the conventional stack-pointer register used implicitly by
	// PUSH/POP/CALL/RET.
	RegSP = 15

	// MemSize is the byte size of the flat address space.
	MemSize = 0x10000

	// VRAMBase is the first byte of the framebuffer.
	VRAMBase = 0xC000
	// ScreenW and ScreenH are the framebuffer dimensions; one byte per
	// pixel (palette index), row-major.
	ScreenW = 128
	ScreenH = 96
	// VRAMSize is ScreenW*ScreenH.
	VRAMSize = ScreenW * ScreenH

	// MMIO registers.
	AddrPad0   = 0xF000 // player 0 buttons (read-only)
	AddrPad1   = 0xF001 // player 1 buttons (read-only)
	AddrFrame  = 0xF002 // 16-bit frame counter (read-only, wraps)
	AddrAudioF = 0xF004 // audio frequency index; 0 silences
	AddrAudioV = 0xF005 // audio volume 0-255

	// Fill blitter: a write to AddrBlitGo fills the W x H rectangle at
	// (X, Y) in the framebuffer with color C, clipped to the screen. The
	// fill costs 1 + (W*H)/16 extra instruction cycles (charged from the
	// unclipped register values), so blits stay inside the deterministic
	// cycle budget like everything else.
	AddrBlitX  = 0xF008 // fill origin X (pixels)
	AddrBlitY  = 0xF009 // fill origin Y (pixels)
	AddrBlitW  = 0xF00A // fill width (pixels)
	AddrBlitH  = 0xF00B // fill height (pixels)
	AddrBlitC  = 0xF00C // fill color (raw byte, palette index)
	AddrBlitGo = 0xF00D // write anything here to run the fill

	// InitialSP is the reset value of R15; the stack grows down from just
	// below VRAM.
	InitialSP = VRAMBase

	// CyclesPerFrame is the instruction budget of one frame. A frame ends
	// at YIELD or when the budget is exhausted, whichever comes first, so
	// a buggy or malicious ROM cannot stall the console (ending the frame
	// on budget exhaustion is itself deterministic).
	CyclesPerFrame = 100000
)

// Pad button bits, one byte per player.
const (
	BtnUp     = 1 << 0
	BtnDown   = 1 << 1
	BtnLeft   = 1 << 2
	BtnRight  = 1 << 3
	BtnA      = 1 << 4
	BtnB      = 1 << 5
	BtnStart  = 1 << 6
	BtnSelect = 1 << 7
)

// Opcodes. Instructions are 4 bytes, little-endian:
//
//	byte 0: opcode
//	byte 1: rd (high nibble) | ra (low nibble)
//	bytes 2-3: imm16; register-register ALU ops keep rb in imm16's low nibble.
const (
	OpNOP   = 0x00
	OpHALT  = 0x01 // stop the console permanently
	OpYIELD = 0x02 // end the current frame

	OpMOVI  = 0x10 // rd = signext(imm16)
	OpMOVHI = 0x11 // rd = (rd & 0xFFFF) | imm16<<16
	OpMOV   = 0x12 // rd = ra

	OpADD = 0x20 // rd = ra + rb
	OpSUB = 0x21
	OpMUL = 0x22
	OpDIV = 0x23 // rb==0 => rd=0 (deterministic, no trap)
	OpMOD = 0x24 // rb==0 => rd=0
	OpAND = 0x25
	OpOR  = 0x26
	OpXOR = 0x27
	OpSHL = 0x28 // shift count masked to 5 bits
	OpSHR = 0x29 // logical
	OpSAR = 0x2A // arithmetic

	OpADDI = 0x30 // rd = ra + signext(imm16)
	OpMULI = 0x31
	OpANDI = 0x32 // immediate zero-extended for logical ops
	OpORI  = 0x33
	OpXORI = 0x34
	OpSHLI = 0x35
	OpSHRI = 0x36
	OpSARI = 0x37
	OpDIVI = 0x38 // imm==0 => rd=0
	OpMODI = 0x39

	OpLDB = 0x40 // rd = zeroext mem8[ra+imm]
	OpLDH = 0x41 // rd = zeroext mem16[ra+imm]
	OpLDW = 0x42 // rd = mem32[ra+imm]
	OpSTB = 0x43 // mem8[ra+imm] = rd
	OpSTH = 0x44
	OpSTW = 0x45

	OpJMP  = 0x50 // pc = imm16
	OpJR   = 0x51 // pc = ra
	OpCALL = 0x52 // push pc_next; pc = imm16
	OpRET  = 0x53 // pc = pop

	OpBEQ  = 0x54 // if rd == ra: pc = imm16
	OpBNE  = 0x55
	OpBLT  = 0x56 // signed
	OpBGE  = 0x57 // signed
	OpBLTU = 0x58
	OpBGEU = 0x59

	OpPUSH = 0x60 // sp -= 4; mem32[sp] = rd
	OpPOP  = 0x61 // rd = mem32[sp]; sp += 4

	OpRAND = 0x70 // rd = next LFSR value (0..65535)
	OpSYS  = 0x71 // debug trap: records (imm16, rd) in the console's log
)

// Instr is a decoded instruction.
type Instr struct {
	Op  byte
	Rd  byte
	Ra  byte
	Rb  byte   // low nibble of Imm, meaningful for reg-reg ALU ops
	Imm uint16 // raw immediate
}

// SImm returns the immediate sign-extended to 32 bits.
func (i Instr) SImm() int32 { return int32(int16(i.Imm)) }

// Encode packs the instruction into its 4-byte form.
func (i Instr) Encode() [4]byte {
	return [4]byte{
		i.Op,
		i.Rd<<4 | i.Ra&0x0F,
		byte(i.Imm),
		byte(i.Imm >> 8),
	}
}

// Decode unpacks a 4-byte instruction.
func Decode(b0, b1, b2, b3 byte) Instr {
	imm := uint16(b2) | uint16(b3)<<8
	return Instr{
		Op:  b0,
		Rd:  b1 >> 4,
		Ra:  b1 & 0x0F,
		Rb:  byte(imm & 0x0F),
		Imm: imm,
	}
}

// opInfo describes assembler/disassembler metadata for one opcode.
type opInfo struct {
	name string
	kind opKind
}

type opKind int

const (
	kindNone   opKind = iota // no operands
	kindRdImm                // rd, imm16
	kindRdRa                 // rd, ra
	kindRRR                  // rd, ra, rb
	kindRRI                  // rd, ra, imm16
	kindMem                  // rd, [ra+imm]
	kindImm                  // imm16
	kindRa                   // single register in ra
	kindRd                   // single register in rd
	kindBranch               // rd, ra, target(imm16)
	kindSys                  // rd, imm16 (register value + code)
)

var opTable = map[byte]opInfo{
	OpNOP:   {"nop", kindNone},
	OpHALT:  {"halt", kindNone},
	OpYIELD: {"yield", kindNone},
	OpMOVI:  {"movi", kindRdImm},
	OpMOVHI: {"movhi", kindRdImm},
	OpMOV:   {"mov", kindRdRa},
	OpADD:   {"add", kindRRR},
	OpSUB:   {"sub", kindRRR},
	OpMUL:   {"mul", kindRRR},
	OpDIV:   {"div", kindRRR},
	OpMOD:   {"mod", kindRRR},
	OpAND:   {"and", kindRRR},
	OpOR:    {"or", kindRRR},
	OpXOR:   {"xor", kindRRR},
	OpSHL:   {"shl", kindRRR},
	OpSHR:   {"shr", kindRRR},
	OpSAR:   {"sar", kindRRR},
	OpADDI:  {"addi", kindRRI},
	OpMULI:  {"muli", kindRRI},
	OpANDI:  {"andi", kindRRI},
	OpORI:   {"ori", kindRRI},
	OpXORI:  {"xori", kindRRI},
	OpSHLI:  {"shli", kindRRI},
	OpSHRI:  {"shri", kindRRI},
	OpSARI:  {"sari", kindRRI},
	OpDIVI:  {"divi", kindRRI},
	OpMODI:  {"modi", kindRRI},
	OpLDB:   {"ldb", kindMem},
	OpLDH:   {"ldh", kindMem},
	OpLDW:   {"ldw", kindMem},
	OpSTB:   {"stb", kindMem},
	OpSTH:   {"sth", kindMem},
	OpSTW:   {"stw", kindMem},
	OpJMP:   {"jmp", kindImm},
	OpJR:    {"jr", kindRa},
	OpCALL:  {"call", kindImm},
	OpRET:   {"ret", kindNone},
	OpBEQ:   {"beq", kindBranch},
	OpBNE:   {"bne", kindBranch},
	OpBLT:   {"blt", kindBranch},
	OpBGE:   {"bge", kindBranch},
	OpBLTU:  {"bltu", kindBranch},
	OpBGEU:  {"bgeu", kindBranch},
	OpPUSH:  {"push", kindRd},
	OpPOP:   {"pop", kindRd},
	OpRAND:  {"rand", kindRd},
	OpSYS:   {"sys", kindSys},
}

// OpName returns the mnemonic for an opcode, or "db 0xNN" for unknown bytes.
func OpName(op byte) string {
	if info, ok := opTable[op]; ok {
		return info.name
	}
	return fmt.Sprintf("db 0x%02X", op)
}

// Mnemonics returns the mnemonic->opcode mapping used by the assembler.
func Mnemonics() map[string]byte {
	m := make(map[string]byte, len(opTable))
	for op, info := range opTable {
		m[info.name] = op
	}
	return m
}

// OperandKindOf exposes the operand shape of an opcode for the assembler and
// disassembler. The bool is false for unknown opcodes.
func OperandKindOf(op byte) (int, bool) {
	info, ok := opTable[op]
	return int(info.kind), ok
}

// Operand kind values re-exported for tooling (mirrors the internal enum).
const (
	KindNone   = int(kindNone)
	KindRdImm  = int(kindRdImm)
	KindRdRa   = int(kindRdRa)
	KindRRR    = int(kindRRR)
	KindRRI    = int(kindRRI)
	KindMem    = int(kindMem)
	KindImm    = int(kindImm)
	KindRa     = int(kindRa)
	KindRd     = int(kindRd)
	KindBranch = int(kindBranch)
	KindSys    = int(kindSys)
)
