package vm

// mmioPage is the page index of the 0xF0xx device registers; any store into
// it takes the interpreter's slow path so MMIO semantics (read-only bytes,
// blit trigger) apply.
const mmioPage = AddrPad0 >> pageShift

// blitCost returns the extra instruction cycles charged for a w x h fill.
// It uses the raw register values (before clipping) so the cost of a blit is
// a pure function of machine state, independent of how much actually lands
// on screen.
func blitCost(w, h int) int { return 1 + (w*h)>>4 }

// blit runs the MMIO fill blitter: fill the W x H rectangle at (X, Y) with
// color C, clipped to the 128x96 screen. Triggered by a store to AddrBlitGo.
// The cycle cost is deferred into pendingCycles; the interpreter folds it
// into the frame's cycle count right after the triggering store.
func (c *Console) blit() {
	x := int(c.mem[AddrBlitX])
	y := int(c.mem[AddrBlitY])
	w := int(c.mem[AddrBlitW])
	h := int(c.mem[AddrBlitH])
	col := c.mem[AddrBlitC]
	c.pendingCycles += blitCost(w, h)

	if x >= ScreenW || y >= ScreenH || w == 0 || h == 0 {
		return
	}
	if x+w > ScreenW {
		w = ScreenW - x
	}
	if y+h > ScreenH {
		h = ScreenH - y
	}

	// Fill the first row by doubling, then replicate it down.
	first := VRAMBase + y*ScreenW + x
	row := c.mem[first : first+w]
	row[0] = col
	for filled := 1; filled < w; filled *= 2 {
		copy(row[filled:], row[:filled])
	}
	for r := 1; r < h; r++ {
		copy(c.mem[first+r*ScreenW:first+r*ScreenW+w], row)
	}
	c.markRange(uint16(first), uint16(first+(h-1)*ScreenW+w-1))
}
