package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// scribbler is a program that mixes pad input, randomness and VRAM writes
// every frame — a miniature "game" for determinism tests.
func scribbler() []byte {
	return program(
		// r1 = pad0 | pad1<<8
		Instr{Op: OpMOVI, Rd: 4, Imm: AddrPad0},
		Instr{Op: OpLDB, Rd: 1, Ra: 4, Imm: 0},
		Instr{Op: OpLDB, Rd: 2, Ra: 4, Imm: 1},
		Instr{Op: OpSHLI, Rd: 2, Ra: 2, Imm: 8},
		Instr{Op: OpOR, Rd: 1, Ra: 1, Rb: 2, Imm: 2},
		// r3 = rand mixed with input
		Instr{Op: OpRAND, Rd: 3},
		Instr{Op: OpXOR, Rd: 3, Ra: 3, Rb: 1, Imm: 1},
		// write into VRAM at (rand % VRAMSize)
		Instr{Op: OpMOVI, Rd: 5, Imm: 0x3000},
		Instr{Op: OpMOD, Rd: 6, Ra: 3, Rb: 5, Imm: 5},
		Instr{Op: OpMOVI, Rd: 7, Imm: VRAMBase},
		Instr{Op: OpADD, Rd: 7, Ra: 7, Rb: 6, Imm: 6},
		Instr{Op: OpSTB, Rd: 3, Ra: 7, Imm: 0},
		// accumulate into RAM counter and drive the audio regs
		Instr{Op: OpMOVI, Rd: 8, Imm: 0x4000},
		Instr{Op: OpLDW, Rd: 9, Ra: 8, Imm: 0},
		Instr{Op: OpADD, Rd: 9, Ra: 9, Rb: 3, Imm: 3},
		Instr{Op: OpSTW, Rd: 9, Ra: 8, Imm: 0},
		Instr{Op: OpMOVI, Rd: 10, Imm: AddrAudioF},
		Instr{Op: OpANDI, Rd: 11, Ra: 3, Imm: 0x3F},
		Instr{Op: OpSTB, Rd: 11, Ra: 10, Imm: 0},
		Instr{Op: OpMOVI, Rd: 11, Imm: 200},
		Instr{Op: OpSTB, Rd: 11, Ra: 10, Imm: 1},
		Instr{Op: OpYIELD},
		Instr{Op: OpJMP, Imm: 0},
	)
}

func newScribbler(t *testing.T, seed uint32) *Console {
	t.Helper()
	c, err := New(Params{Code: scribbler(), Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// TestDeterminismSameInputs is the paper's core assumption (§2, §5): same
// initial state + same input sequence => same sequence of output states.
func TestDeterminismSameInputs(t *testing.T) {
	a := newScribbler(t, 42)
	b := newScribbler(t, 42)
	rng := rand.New(rand.NewSource(1))
	for f := 0; f < 500; f++ {
		in := uint16(rng.Intn(0x10000))
		a.StepFrame(in)
		b.StepFrame(in)
		if a.StateHash() != b.StateHash() {
			t.Fatalf("replicas diverged at frame %d", f)
		}
	}
}

func TestDivergenceOnDifferentInputs(t *testing.T) {
	a := newScribbler(t, 42)
	b := newScribbler(t, 42)
	a.StepFrame(0x0001)
	b.StepFrame(0x0002)
	if a.StateHash() == b.StateHash() {
		t.Fatal("different inputs produced identical states; hash too weak or input ignored")
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	c := newScribbler(t, 9)
	rng := rand.New(rand.NewSource(2))
	for f := 0; f < 100; f++ {
		c.StepFrame(uint16(rng.Intn(0x10000)))
	}
	snap := c.Save()
	wantHash := c.StateHash()

	// Run the original forward with recorded inputs.
	var inputs []uint16
	for f := 0; f < 50; f++ {
		in := uint16(rng.Intn(0x10000))
		inputs = append(inputs, in)
		c.StepFrame(in)
	}
	finalHash := c.StateHash()

	// Restore a second console from the snapshot and replay.
	clone, err := New(Params{Code: scribbler(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if clone.StateHash() != wantHash {
		t.Fatal("restored state hash differs from snapshot state")
	}
	if clone.FrameCount() != 100 {
		t.Fatalf("restored frame count = %d, want 100", clone.FrameCount())
	}
	for _, in := range inputs {
		clone.StepFrame(in)
	}
	if clone.StateHash() != finalHash {
		t.Fatal("replay from snapshot diverged from original (late-join would fail)")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	c := newScribbler(t, 1)
	if err := c.Restore([]byte("short")); err == nil {
		t.Error("short savestate accepted")
	}
	snap := c.Save()
	snap[0] = 'X'
	if err := c.Restore(snap); err == nil {
		t.Error("bad magic accepted")
	}
	snap2 := c.Save()
	snap2[4] = 0xFF // version
	if err := c.Restore(snap2); err == nil {
		t.Error("bad version accepted")
	}
}

func TestSaveIsStable(t *testing.T) {
	c := newScribbler(t, 5)
	c.StepFrame(0x1234)
	if !bytes.Equal(c.Save(), c.Save()) {
		t.Error("two Saves of the same state differ")
	}
}

// Property: for any input sequence, two identical consoles remain
// hash-identical frame by frame.
func TestPropertyLockstepDeterminism(t *testing.T) {
	f := func(inputs []uint16, seed uint32) bool {
		if len(inputs) > 64 {
			inputs = inputs[:64]
		}
		a, err := New(Params{Code: scribbler(), Seed: seed})
		if err != nil {
			return false
		}
		b, err := New(Params{Code: scribbler(), Seed: seed})
		if err != nil {
			return false
		}
		for _, in := range inputs {
			a.StepFrame(in)
			b.StepFrame(in)
			if a.StateHash() != b.StateHash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Save/Restore is lossless at arbitrary points in arbitrary runs.
func TestPropertySaveRestoreLossless(t *testing.T) {
	f := func(pre, post []uint16, seed uint32) bool {
		if len(pre) > 32 {
			pre = pre[:32]
		}
		if len(post) > 32 {
			post = post[:32]
		}
		orig, err := New(Params{Code: scribbler(), Seed: seed})
		if err != nil {
			return false
		}
		for _, in := range pre {
			orig.StepFrame(in)
		}
		snap := orig.Save()
		clone, err := New(Params{Code: scribbler(), Seed: seed + 1}) // different seed: Restore must overwrite it
		if err != nil {
			return false
		}
		if err := clone.Restore(snap); err != nil {
			return false
		}
		for _, in := range post {
			orig.StepFrame(in)
			clone.StepFrame(in)
		}
		return orig.StateHash() == clone.StateHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAudioSynthesisDeterministic(t *testing.T) {
	mk := func() *Console {
		c, err := New(Params{Code: program(
			Instr{Op: OpMOVI, Rd: 1, Imm: AddrAudioF},
			Instr{Op: OpMOVI, Rd: 2, Imm: 24}, // 440 Hz
			Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 0},
			Instr{Op: OpMOVI, Rd: 2, Imm: 128},
			Instr{Op: OpSTB, Rd: 2, Ra: 1, Imm: 1},
			Instr{Op: OpYIELD},
			Instr{Op: OpJMP, Imm: 0x0014}, // loop on the yield
		), Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for f := 0; f < 10; f++ {
		a.StepFrame(0)
		b.StepFrame(0)
		sa, sb := a.AudioFrame(), b.AudioFrame()
		if len(sa) == 0 || len(sa) != len(sb) {
			t.Fatalf("frame %d: sample counts %d vs %d", f, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("frame %d sample %d differs", f, i)
			}
		}
	}
	// Frames alternate 367/368 samples to average 367.5 (22050/60).
	a2 := mk()
	a2.StepFrame(0)
	n0 := len(a2.AudioFrame())
	a2.StepFrame(0)
	n1 := len(a2.AudioFrame())
	if n0+n1 != 735 {
		t.Errorf("two frames produced %d samples, want 735", n0+n1)
	}
	// A nonzero tone must produce nonzero samples.
	nonzero := false
	for _, s := range a2.AudioFrame() {
		if s != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("tone produced silence")
	}
}

func TestSilenceWhenVolumeZero(t *testing.T) {
	c, err := New(Params{Code: program(Instr{Op: OpYIELD}, Instr{Op: OpJMP, Imm: 0}), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.StepFrame(0)
	for _, s := range c.AudioFrame() {
		if s != 0 {
			t.Fatal("silent console produced nonzero samples")
		}
	}
}

func TestRenderASCIIAndImage(t *testing.T) {
	c := newScribbler(t, 11)
	for i := 0; i < 20; i++ {
		c.StepFrame(0xFFFF)
	}
	art := c.RenderASCII(2)
	if len(art) != (ScreenW/2+1)*(ScreenH/2) {
		t.Errorf("ascii render length %d unexpected", len(art))
	}
	img := c.Image()
	if img.Bounds().Dx() != ScreenW || img.Bounds().Dy() != ScreenH {
		t.Errorf("image bounds %v", img.Bounds())
	}
}

func TestDisassembleKnownForms(t *testing.T) {
	cases := map[string]Instr{
		"nop":                       {Op: OpNOP},
		"movi r1, 42":               {Op: OpMOVI, Rd: 1, Imm: 42},
		"mov r2, r3":                {Op: OpMOV, Rd: 2, Ra: 3},
		"add r1, r2, r3":            {Op: OpADD, Rd: 1, Ra: 2, Rb: 3, Imm: 3},
		"addi r1, r2, -1":           {Op: OpADDI, Rd: 1, Ra: 2, Imm: 0xFFFF},
		"ldb r4, [r5+8]":            {Op: OpLDB, Rd: 4, Ra: 5, Imm: 8},
		"stw r4, [r5]":              {Op: OpSTW, Rd: 4, Ra: 5, Imm: 0},
		"jmp 0x0010":                {Op: OpJMP, Imm: 0x10},
		"jr r7":                     {Op: OpJR, Ra: 7},
		"beq r1, r2, 0x0020":        {Op: OpBEQ, Rd: 1, Ra: 2, Imm: 0x20},
		"push r9":                   {Op: OpPUSH, Rd: 9},
		"rand r3":                   {Op: OpRAND, Rd: 3},
		"sys r1, 7":                 {Op: OpSYS, Rd: 1, Imm: 7},
		"db 0xEE, 0x00, 0x00, 0x00": {Op: 0xEE},
	}
	for want, in := range cases {
		if got := Disassemble(in); got != want {
			t.Errorf("Disassemble(%+v) = %q, want %q", in, got, want)
		}
	}
}

func TestDisassembleCode(t *testing.T) {
	code := program(Instr{Op: OpMOVI, Rd: 1, Imm: 5}, Instr{Op: OpYIELD})
	out := DisassembleCode(code, 0x100)
	want := "0x0100: movi r1, 5\n0x0104: yield\n"
	if out != want {
		t.Errorf("DisassembleCode = %q, want %q", out, want)
	}
}
