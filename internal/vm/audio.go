package vm

// Audio device: a single square-wave voice. The game programs a frequency
// index and a volume through MMIO (AddrAudioF/AddrAudioV); once per frame
// the console synthesizes SamplesPerFrame signed 16-bit samples. Synthesis
// is pure integer arithmetic, so replicas produce bit-identical audio — the
// audio phase is part of the hashed machine state.

// AudioRate is the output sample rate in Hz.
const AudioRate = 22050

// SamplesPerFrame is the number of samples generated per 60 FPS frame
// (22050/60 = 367.5, kept exact with a half-sample alternation).
const SamplesPerFrame = AudioRate / 60 // 367; every other frame adds one

// freqTable maps the 6-bit frequency index to Hz: a chromatic scale from
// A2 (110 Hz) upward, precomputed as integers (round(110 * 2^(i/12))).
var freqTable = [64]uint32{
	110, 117, 123, 131, 139, 147, 156, 165, 175, 185, 196, 208,
	220, 233, 247, 262, 277, 294, 311, 330, 349, 370, 392, 415,
	440, 466, 494, 523, 554, 587, 622, 659, 698, 740, 784, 831,
	880, 932, 988, 1047, 1109, 1175, 1245, 1319, 1397, 1480, 1568, 1661,
	1760, 1865, 1976, 2093, 2217, 2349, 2489, 2637, 2794, 2960, 3136, 3322,
	3520, 3729, 3951, 4186,
}

type audioState struct {
	phase   uint32 // 16.16 fixed-point oscillator phase
	oddTick bool   // alternates to realize the .5 sample/frame
	last    []int16
}

// step synthesizes one frame of audio from the current registers.
func (a *audioState) step(freqIdx, vol byte) {
	n := SamplesPerFrame
	if a.oddTick {
		n++
	}
	a.oddTick = !a.oddTick

	if cap(a.last) < n {
		a.last = make([]int16, n)
	}
	a.last = a.last[:n]

	if freqIdx == 0 || vol == 0 {
		a.phase = 0
		for i := range a.last {
			a.last[i] = 0
		}
		return
	}
	hz := freqTable[freqIdx&0x3F]
	inc := hz * 65536 / AudioRate // 16.16 phase increment
	amp := int16(uint16(vol) << 7)
	for i := range a.last {
		a.phase += inc
		if a.phase&0x8000 != 0 {
			a.last[i] = amp
		} else {
			a.last[i] = -amp
		}
	}
}

// AudioFrame returns the samples synthesized by the most recent StepFrame.
// The slice is reused across frames; callers must copy to retain it.
func (c *Console) AudioFrame() []int16 { return c.audio.last }
