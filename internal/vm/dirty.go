package vm

// Dirty-page write tracking.
//
// The console's 64 KiB address space is divided into 256-byte pages. Every
// mutation funnels through a small set of store paths (the interpreter's
// store instructions, the blitter, the MMIO input latch, Poke, Restore and
// ApplyDelta), and each of them marks the touched pages in a live PageBitmap.
// Consumers never read the live bitmap directly: drainDirty folds it into the
// per-consumer accumulators — one for the incremental StateHash page cache,
// one for the delta-savestate chain — and clears it. Marking is conservative:
// a page may be marked without actually changing (a store that rewrites the
// same value still marks), but a changed page is never missed. That one-way
// error is what makes the incremental paths safe: recomputing a falsely-dirty
// page is wasted work, never a wrong answer.
const (
	// PageSize is the dirty-tracking granularity in bytes.
	PageSize = 256
	// NumPages is MemSize / PageSize.
	NumPages = MemSize / PageSize
	// pageShift converts an address to its page index.
	pageShift = 8
	// pageWords is the uint64 count of a PageBitmap.
	pageWords = NumPages / 64
)

// PageBitmap is one bit per 256-byte memory page.
type PageBitmap [pageWords]uint64

// Set marks page p.
func (b *PageBitmap) Set(p int) { b[p>>6] |= 1 << (uint(p) & 63) }

// Test reports whether page p is marked.
func (b *PageBitmap) Test(p int) bool { return b[p>>6]&(1<<(uint(p)&63)) != 0 }

// Clear resets every bit.
func (b *PageBitmap) Clear() { *b = PageBitmap{} }

// SetAll marks every page.
func (b *PageBitmap) SetAll() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// Or folds o into b.
func (b *PageBitmap) Or(o *PageBitmap) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Count returns the number of marked pages.
func (b *PageBitmap) Count() int {
	n := 0
	for _, w := range b {
		n += popcount(w)
	}
	return n
}

// Any reports whether at least one page is marked.
func (b *PageBitmap) Any() bool {
	return b[0]|b[1]|b[2]|b[3] != 0
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// markAddr marks the page containing address a in the live bitmap. It is the
// one-line version of PageBitmap.Set that the interpreter inlines on its
// store fast paths.
func (c *Console) markAddr(a uint16) {
	c.dirty[a>>14] |= 1 << ((a >> pageShift) & 63)
}

// markRange marks every page from the one containing lo to the one
// containing hi (inclusive; lo <= hi). Used by the blitter, whose fills are
// page-contiguous in the worst case.
func (c *Console) markRange(lo, hi uint16) {
	for p := int(lo >> pageShift); p <= int(hi>>pageShift); p++ {
		c.dirty.Set(p)
	}
}

// drainDirty folds the live bitmap into every consumer accumulator and
// clears it. Called at the two consumption points: StateHash and the
// delta-savestate captures.
func (c *Console) drainDirty() {
	if !c.dirty.Any() {
		return
	}
	c.hashDirty.Or(&c.dirty)
	c.snapDirty.Or(&c.dirty)
	c.dirty.Clear()
}

// markAllDirty marks the whole address space modified (boot, Restore).
func (c *Console) markAllDirty() {
	c.dirty.SetAll()
}

// DirtyPages reports how many pages are pending in the live bitmap — i.e.
// marked since the last StateHash or delta capture. Diagnostic surface for
// tests and tooling.
func (c *Console) DirtyPages() int {
	return c.dirty.Count()
}
