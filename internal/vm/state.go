package vm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Machine state capture: hashing for cross-replica convergence checks and
// savestates for the journal version's late-joiner support (a joining site
// receives a savestate plus the inputs after it, instead of replaying the
// whole game).

// savestate format (little endian):
//
//	magic   "RKSV" (4)
//	version u16
//	pc      u16
//	frame   u32
//	flags   u8 (bit0 halted, bit1 audio oddTick)
//	lfsr    u16
//	phase   u32
//	overrun u32
//	regs    16 x u32
//	mem     MemSize bytes
const (
	saveMagic   = "RKSV"
	saveVersion = 1
	saveLen     = 4 + 2 + 2 + 4 + 1 + 2 + 4 + 4 + NumRegs*4 + MemSize
)

// StateHash returns a 64-bit FNV-1a digest of the complete machine state:
// registers, PC, halt flag, memory (including VRAM and MMIO), the RNG and
// the audio oscillator. Two replicas that stay logically consistent report
// equal hashes after every frame (§3's convergence condition).
func (c *Console) StateHash() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	for _, r := range c.regs {
		binary.LittleEndian.PutUint32(scratch[:4], r)
		h.Write(scratch[:4])
	}
	binary.LittleEndian.PutUint16(scratch[:2], c.pc)
	h.Write(scratch[:2])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(c.frame))
	h.Write(scratch[:4])
	if c.halted {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint16(scratch[:2], c.lfsr)
	h.Write(scratch[:2])
	binary.LittleEndian.PutUint32(scratch[:4], c.audio.phase)
	h.Write(scratch[:4])
	if c.audio.oddTick {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write(c.mem[:])
	return h.Sum64()
}

// Save serializes the complete machine state.
func (c *Console) Save() []byte {
	return c.AppendSave(make([]byte, 0, saveLen))
}

// AppendSave appends the savestate image to buf and returns the extended
// slice. A caller that keeps the returned slice and re-passes buf[:0] (the
// flight recorder's snapshot ring does) serializes the full state without
// allocating: the image is a fixed saveLen bytes, so after the first call the
// buffer never grows again.
func (c *Console) AppendSave(buf []byte) []byte {
	buf = append(buf, saveMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, saveVersion)
	buf = binary.LittleEndian.AppendUint16(buf, c.pc)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.frame))
	var flags byte
	if c.halted {
		flags |= 1
	}
	if c.audio.oddTick {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint16(buf, c.lfsr)
	buf = binary.LittleEndian.AppendUint32(buf, c.audio.phase)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.overruns))
	for _, r := range c.regs {
		buf = binary.LittleEndian.AppendUint32(buf, r)
	}
	buf = append(buf, c.mem[:]...)
	return buf
}

// Restore replaces the machine state with a prior Save image.
func (c *Console) Restore(data []byte) error {
	if len(data) != saveLen {
		return fmt.Errorf("vm: savestate is %d bytes, want %d", len(data), saveLen)
	}
	if string(data[:4]) != saveMagic {
		return fmt.Errorf("vm: bad savestate magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != saveVersion {
		return fmt.Errorf("vm: savestate version %d unsupported (want %d)", v, saveVersion)
	}
	off := 6
	c.pc = binary.LittleEndian.Uint16(data[off:])
	off += 2
	c.frame = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	flags := data[off]
	off++
	c.halted = flags&1 != 0
	c.audio.oddTick = flags&2 != 0
	c.lfsr = binary.LittleEndian.Uint16(data[off:])
	off += 2
	c.audio.phase = binary.LittleEndian.Uint32(data[off:])
	off += 4
	c.overruns = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	for i := range c.regs {
		c.regs[i] = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	copy(c.mem[:], data[off:])
	return nil
}
