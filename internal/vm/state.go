package vm

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Machine state capture: hashing for cross-replica convergence checks and
// savestates for the journal version's late-joiner support (a joining site
// receives a savestate plus the inputs after it, instead of replaying the
// whole game).

// savestate format (little endian):
//
//	magic   "RKSV" (4)
//	version u16
//	pc      u16
//	frame   u32
//	flags   u8 (bit0 halted, bit1 audio oddTick)
//	lfsr    u16
//	phase   u32
//	overrun u32
//	regs    16 x u32
//	mem     MemSize bytes
const (
	saveMagic   = "RKSV"
	saveVersion = 1
	saveLen     = 4 + 2 + 2 + 4 + 1 + 2 + 4 + 4 + NumRegs*4 + MemSize

	// Field offsets within a savestate image, shared with the delta format
	// (delta.go) so a delta can patch a full image in place.
	savePCOff      = 6
	saveFrameOff   = 8
	saveFlagsOff   = 12
	saveLFSROff    = 13
	savePhaseOff   = 15
	saveOverrunOff = 19
	saveRegsOff    = 23
	saveMemOff     = 23 + NumRegs*4
)

// FNV-1a parameters, applied word-at-a-time (not byte-at-a-time, so the
// digest differs from stock FNV — all consumers compare hashes for equality
// only, never against an external reference).
const (
	hashOffset uint64 = 14695981039346656037
	hashPrime  uint64 = 1099511628211
)

// pageDigest hashes one 256-byte page, eight bytes per fold.
func pageDigest(p []byte) uint64 {
	h := hashOffset
	_ = p[PageSize-1]
	for i := 0; i <= PageSize-8; i += 8 {
		h = (h ^ binary.LittleEndian.Uint64(p[i:])) * hashPrime
	}
	return h
}

// StateHash returns a 64-bit digest of the complete machine state:
// registers, PC, halt flag, memory (including VRAM and MMIO), the RNG and
// the audio oscillator. Two replicas that stay logically consistent report
// equal hashes after every frame (§3's convergence condition).
//
// The digest is incremental: a per-page hash cache is kept current via the
// dirty-page bitmap, so a frame that mutated k pages recomputes k page
// digests (k is single digits for a typical game frame) and then folds the
// 256 cached digests with the small header fields.
func (c *Console) StateHash() uint64 {
	c.drainDirty()
	if c.hashDirty.Any() {
		for wi, wv := range c.hashDirty {
			for wv != 0 {
				p := wi<<6 + bits.TrailingZeros64(wv)
				wv &= wv - 1
				c.pageHash[p] = pageDigest(c.mem[p<<pageShift : p<<pageShift+PageSize])
			}
		}
		c.hashDirty.Clear()
	}
	h := hashOffset
	for _, r := range c.regs {
		h = (h ^ uint64(r)) * hashPrime
	}
	h = (h ^ uint64(c.pc)) * hashPrime
	h = (h ^ uint64(uint32(c.frame))) * hashPrime
	var flags uint64
	if c.halted {
		flags |= 1
	}
	if c.audio.oddTick {
		flags |= 2
	}
	h = (h ^ flags) * hashPrime
	h = (h ^ uint64(c.lfsr)) * hashPrime
	h = (h ^ uint64(c.audio.phase)) * hashPrime
	for _, ph := range c.pageHash {
		h = (h ^ ph) * hashPrime
	}
	return h
}

// Save serializes the complete machine state.
func (c *Console) Save() []byte {
	return c.AppendSave(make([]byte, 0, saveLen))
}

// AppendSave appends the savestate image to buf and returns the extended
// slice. A caller that keeps the returned slice and re-passes buf[:0] (the
// flight recorder's snapshot ring does) serializes the full state without
// allocating: the image is a fixed saveLen bytes, so after the first call the
// buffer never grows again.
//
// AppendSave does not interact with the delta-savestate chain; use
// AppendSaveBase/AppendSaveDelta (delta.go) for that.
func (c *Console) AppendSave(buf []byte) []byte {
	buf = c.appendSaveHeader(buf)
	buf = append(buf, c.mem[:]...)
	return buf
}

// appendSaveHeader writes the non-memory fields shared by the full and delta
// savestate formats (everything between magic and the memory payload).
func (c *Console) appendSaveHeader(buf []byte) []byte {
	buf = append(buf, saveMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, saveVersion)
	buf = binary.LittleEndian.AppendUint16(buf, c.pc)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.frame))
	var flags byte
	if c.halted {
		flags |= 1
	}
	if c.audio.oddTick {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint16(buf, c.lfsr)
	buf = binary.LittleEndian.AppendUint32(buf, c.audio.phase)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.overruns))
	for _, r := range c.regs {
		buf = binary.LittleEndian.AppendUint32(buf, r)
	}
	return buf
}

// Restore replaces the machine state with a prior Save image.
func (c *Console) Restore(data []byte) error {
	if len(data) != saveLen {
		return fmt.Errorf("vm: savestate is %d bytes, want %d", len(data), saveLen)
	}
	if string(data[:4]) != saveMagic {
		return fmt.Errorf("vm: bad savestate magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != saveVersion {
		return fmt.Errorf("vm: savestate version %d unsupported (want %d)", v, saveVersion)
	}
	off := savePCOff
	c.pc = binary.LittleEndian.Uint16(data[off:])
	off += 2
	c.frame = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	flags := data[off]
	off++
	c.halted = flags&1 != 0
	c.audio.oddTick = flags&2 != 0
	c.lfsr = binary.LittleEndian.Uint16(data[off:])
	off += 2
	c.audio.phase = binary.LittleEndian.Uint32(data[off:])
	off += 4
	c.overruns = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	for i := range c.regs {
		c.regs[i] = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	copy(c.mem[:], data[off:])
	// The entire address space may have changed: both incremental consumers
	// (hash cache, delta chain) must resynchronize from scratch.
	c.markAllDirty()
	return nil
}
