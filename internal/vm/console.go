package vm

import (
	"encoding/binary"
	"fmt"
)

// Params configures a fresh console.
type Params struct {
	// Code is the program image, copied into memory at LoadAddr.
	Code []byte
	// LoadAddr is where Code is placed. Code must fit below VRAMBase.
	LoadAddr uint16
	// Entry is the initial program counter.
	Entry uint16
	// Seed initializes the in-console LFSR behind the RAND instruction.
	// Replicas must share the seed (it ships in the ROM header), keeping
	// randomness deterministic across sites (§5).
	Seed uint32
}

// DebugEvent is one SYS trap recorded by the console. The log exists for
// tests and tooling; it is not part of the emulated machine state.
type DebugEvent struct {
	Frame int
	Code  uint16
	Value uint32
}

// maxDebugEvents bounds the SYS log so a chatty ROM cannot exhaust memory.
const maxDebugEvents = 65536

// Console is an RK-32 machine instance. It is not safe for concurrent use;
// the frame loop owns it (§2's Algorithm 1 is single-threaded by design).
type Console struct {
	regs [NumRegs]uint32
	pc   uint16
	mem  [MemSize]byte

	frame    int
	halted   bool
	overruns int
	lfsr     uint16

	audio audioState

	debugLog []DebugEvent

	// lastCycles is the instruction count of the most recent frame.
	lastCycles int
	// trace, when set, observes every executed instruction. It must not
	// mutate the console (tracing cannot affect determinism).
	trace func(TraceEvent)
}

// TraceEvent describes one executed instruction, for debuggers and the
// romtool trace command.
type TraceEvent struct {
	Frame int
	Cycle int
	PC    uint16
	Instr Instr
}

// New boots a console from params.
func New(p Params) (*Console, error) {
	end := int(p.LoadAddr) + len(p.Code)
	if end > VRAMBase {
		return nil, fmt.Errorf("vm: code of %d bytes at 0x%04X overruns VRAM at 0x%04X", len(p.Code), p.LoadAddr, VRAMBase)
	}
	c := &Console{pc: p.Entry}
	copy(c.mem[p.LoadAddr:], p.Code)
	c.regs[RegSP] = InitialSP
	c.lfsr = uint16(p.Seed) ^ uint16(p.Seed>>16)
	if c.lfsr == 0 {
		c.lfsr = 0xACE1 // any nonzero tap state
	}
	return c, nil
}

// StepFrame latches input (pad 0 in bits 0-7, pad 1 in bits 8-15) and runs
// the CPU until YIELD, HALT or the cycle budget. This is the paper's
// Transition(I, S): one deterministic state transition per frame, with the
// input treated as an opaque bit string.
func (c *Console) StepFrame(input uint16) {
	if c.halted {
		return
	}
	c.mem[AddrPad0] = byte(input)
	c.mem[AddrPad1] = byte(input >> 8)
	binary.LittleEndian.PutUint16(c.mem[AddrFrame:], uint16(c.frame))

	ran := 0
	for ; ran < CyclesPerFrame; ran++ {
		if c.trace != nil {
			pc := c.pc
			c.trace(TraceEvent{
				Frame: c.frame,
				Cycle: ran,
				PC:    pc,
				Instr: Decode(c.mem[pc], c.mem[(pc+1)&0xFFFF], c.mem[(pc+2)&0xFFFF], c.mem[(pc+3)&0xFFFF]),
			})
		}
		stop := c.exec()
		if stop {
			break
		}
	}
	if ran == CyclesPerFrame {
		c.overruns++
	}
	c.lastCycles = ran
	c.frame++
	c.audio.step(c.mem[AddrAudioF], c.mem[AddrAudioV])
}

// SetTrace installs (or, with nil, removes) a per-instruction observer.
// Tracing is read-only and does not alter execution or state hashes.
func (c *Console) SetTrace(fn func(TraceEvent)) { c.trace = fn }

// CyclesLastFrame reports how many instructions the most recent frame ran.
func (c *Console) CyclesLastFrame() int { return c.lastCycles }

// exec runs one instruction; it reports true when the frame must end.
func (c *Console) exec() bool {
	pc := c.pc
	in := Decode(
		c.mem[pc],
		c.mem[(pc+1)&0xFFFF],
		c.mem[(pc+2)&0xFFFF],
		c.mem[(pc+3)&0xFFFF],
	)
	c.pc = pc + 4

	switch in.Op {
	case OpNOP:
	case OpHALT:
		c.halted = true
		c.pc = pc // freeze
		return true
	case OpYIELD:
		return true

	case OpMOVI:
		c.set(in.Rd, uint32(in.SImm()))
	case OpMOVHI:
		c.set(in.Rd, c.regs[in.Rd]&0xFFFF|uint32(in.Imm)<<16)
	case OpMOV:
		c.set(in.Rd, c.regs[in.Ra])

	case OpADD:
		c.set(in.Rd, c.regs[in.Ra]+c.regs[in.Rb])
	case OpSUB:
		c.set(in.Rd, c.regs[in.Ra]-c.regs[in.Rb])
	case OpMUL:
		c.set(in.Rd, c.regs[in.Ra]*c.regs[in.Rb])
	case OpDIV:
		c.set(in.Rd, sdiv(c.regs[in.Ra], c.regs[in.Rb]))
	case OpMOD:
		c.set(in.Rd, smod(c.regs[in.Ra], c.regs[in.Rb]))
	case OpAND:
		c.set(in.Rd, c.regs[in.Ra]&c.regs[in.Rb])
	case OpOR:
		c.set(in.Rd, c.regs[in.Ra]|c.regs[in.Rb])
	case OpXOR:
		c.set(in.Rd, c.regs[in.Ra]^c.regs[in.Rb])
	case OpSHL:
		c.set(in.Rd, c.regs[in.Ra]<<(c.regs[in.Rb]&31))
	case OpSHR:
		c.set(in.Rd, c.regs[in.Ra]>>(c.regs[in.Rb]&31))
	case OpSAR:
		c.set(in.Rd, uint32(int32(c.regs[in.Ra])>>(c.regs[in.Rb]&31)))

	case OpADDI:
		c.set(in.Rd, c.regs[in.Ra]+uint32(in.SImm()))
	case OpMULI:
		c.set(in.Rd, c.regs[in.Ra]*uint32(in.SImm()))
	case OpANDI:
		c.set(in.Rd, c.regs[in.Ra]&uint32(in.Imm))
	case OpORI:
		c.set(in.Rd, c.regs[in.Ra]|uint32(in.Imm))
	case OpXORI:
		c.set(in.Rd, c.regs[in.Ra]^uint32(in.Imm))
	case OpSHLI:
		c.set(in.Rd, c.regs[in.Ra]<<(in.Imm&31))
	case OpSHRI:
		c.set(in.Rd, c.regs[in.Ra]>>(in.Imm&31))
	case OpSARI:
		c.set(in.Rd, uint32(int32(c.regs[in.Ra])>>(in.Imm&31)))
	case OpDIVI:
		c.set(in.Rd, sdiv(c.regs[in.Ra], uint32(in.SImm())))
	case OpMODI:
		c.set(in.Rd, smod(c.regs[in.Ra], uint32(in.SImm())))

	case OpLDB:
		c.set(in.Rd, uint32(c.load8(c.ea(in))))
	case OpLDH:
		c.set(in.Rd, uint32(c.load16(c.ea(in))))
	case OpLDW:
		c.set(in.Rd, c.load32(c.ea(in)))
	case OpSTB:
		c.store8(c.ea(in), byte(c.regs[in.Rd]))
	case OpSTH:
		c.store16(c.ea(in), uint16(c.regs[in.Rd]))
	case OpSTW:
		c.store32(c.ea(in), c.regs[in.Rd])

	case OpJMP:
		c.pc = in.Imm
	case OpJR:
		c.pc = uint16(c.regs[in.Ra])
	case OpCALL:
		c.push(uint32(c.pc))
		c.pc = in.Imm
	case OpRET:
		c.pc = uint16(c.pop())

	case OpBEQ:
		if c.regs[in.Rd] == c.regs[in.Ra] {
			c.pc = in.Imm
		}
	case OpBNE:
		if c.regs[in.Rd] != c.regs[in.Ra] {
			c.pc = in.Imm
		}
	case OpBLT:
		if int32(c.regs[in.Rd]) < int32(c.regs[in.Ra]) {
			c.pc = in.Imm
		}
	case OpBGE:
		if int32(c.regs[in.Rd]) >= int32(c.regs[in.Ra]) {
			c.pc = in.Imm
		}
	case OpBLTU:
		if c.regs[in.Rd] < c.regs[in.Ra] {
			c.pc = in.Imm
		}
	case OpBGEU:
		if c.regs[in.Rd] >= c.regs[in.Ra] {
			c.pc = in.Imm
		}

	case OpPUSH:
		c.push(c.regs[in.Rd])
	case OpPOP:
		c.set(in.Rd, c.pop())

	case OpRAND:
		c.set(in.Rd, uint32(c.rand16()))
	case OpSYS:
		if len(c.debugLog) < maxDebugEvents {
			c.debugLog = append(c.debugLog, DebugEvent{Frame: c.frame, Code: in.Imm, Value: c.regs[in.Rd]})
		}

	default:
		// Unknown opcode: halt deterministically rather than guessing.
		c.halted = true
		c.pc = pc
		return true
	}
	return false
}

// set writes a register, keeping R0 hardwired to zero.
func (c *Console) set(r byte, v uint32) {
	if r == 0 {
		return
	}
	c.regs[r] = v
}

// ea computes the effective address of a memory instruction.
func (c *Console) ea(in Instr) uint16 {
	return uint16(c.regs[in.Ra] + uint32(in.SImm()))
}

func (c *Console) load8(a uint16) byte { return c.mem[a] }

func (c *Console) load16(a uint16) uint16 {
	return uint16(c.mem[a]) | uint16(c.mem[(a+1)&0xFFFF])<<8
}

func (c *Console) load32(a uint16) uint32 {
	return uint32(c.mem[a]) |
		uint32(c.mem[(a+1)&0xFFFF])<<8 |
		uint32(c.mem[(a+2)&0xFFFF])<<16 |
		uint32(c.mem[(a+3)&0xFFFF])<<24
}

// store8 writes memory, keeping the read-only MMIO bytes (pads and frame
// counter) immutable from the program's side.
func (c *Console) store8(a uint16, v byte) {
	switch a {
	case AddrPad0, AddrPad1, AddrFrame, AddrFrame + 1:
		return
	}
	c.mem[a] = v
}

func (c *Console) store16(a uint16, v uint16) {
	c.store8(a, byte(v))
	c.store8((a+1)&0xFFFF, byte(v>>8))
}

func (c *Console) store32(a uint16, v uint32) {
	c.store8(a, byte(v))
	c.store8((a+1)&0xFFFF, byte(v>>8))
	c.store8((a+2)&0xFFFF, byte(v>>16))
	c.store8((a+3)&0xFFFF, byte(v>>24))
}

func (c *Console) push(v uint32) {
	c.regs[RegSP] -= 4
	c.store32(uint16(c.regs[RegSP]), v)
}

func (c *Console) pop() uint32 {
	v := c.load32(uint16(c.regs[RegSP]))
	c.regs[RegSP] += 4
	return v
}

// rand16 advances the 16-bit Fibonacci LFSR (taps 16,14,13,11) once per
// output bit, producing a full 16-bit value.
func (c *Console) rand16() uint16 {
	var v uint16
	for i := 0; i < 16; i++ {
		bit := (c.lfsr ^ c.lfsr>>2 ^ c.lfsr>>3 ^ c.lfsr>>5) & 1
		c.lfsr = c.lfsr>>1 | bit<<15
		v = v<<1 | bit
	}
	return v
}

func sdiv(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int32(a) / int32(b))
}

func smod(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int32(a) % int32(b))
}

// FrameCount reports how many frames have been executed.
func (c *Console) FrameCount() int { return c.frame }

// Halted reports whether the console hit HALT or an illegal opcode.
func (c *Console) Halted() bool { return c.halted }

// Overruns reports how many frames exhausted the cycle budget.
func (c *Console) Overruns() int { return c.overruns }

// Reg returns the value of register r (for tests and tooling).
func (c *Console) Reg(r int) uint32 { return c.regs[r&0x0F] }

// PC returns the current program counter.
func (c *Console) PC() uint16 { return c.pc }

// Peek reads a byte of memory without side effects.
func (c *Console) Peek(addr uint16) byte { return c.mem[addr] }

// Peek32 reads a 32-bit little-endian word without side effects.
func (c *Console) Peek32(addr uint16) uint32 { return c.load32(addr) }

// Poke writes a byte of memory, honoring MMIO read-only rules. It exists for
// tests; game-transparent operation never pokes memory from outside.
func (c *Console) Poke(addr uint16, v byte) { c.store8(addr, v) }

// DebugLog returns the recorded SYS events.
func (c *Console) DebugLog() []DebugEvent {
	out := make([]DebugEvent, len(c.debugLog))
	copy(out, c.debugLog)
	return out
}
