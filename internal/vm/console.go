package vm

import (
	"encoding/binary"
	"fmt"
)

// Params configures a fresh console.
type Params struct {
	// Code is the program image, copied into memory at LoadAddr.
	Code []byte
	// LoadAddr is where Code is placed. Code must fit below VRAMBase.
	LoadAddr uint16
	// Entry is the initial program counter.
	Entry uint16
	// Seed initializes the in-console LFSR behind the RAND instruction.
	// Replicas must share the seed (it ships in the ROM header), keeping
	// randomness deterministic across sites (§5).
	Seed uint32
}

// DebugEvent is one SYS trap recorded by the console. The log exists for
// tests and tooling; it is not part of the emulated machine state.
type DebugEvent struct {
	Frame int
	Code  uint16
	Value uint32
}

// maxDebugEvents bounds the SYS log so a chatty ROM cannot exhaust memory.
const maxDebugEvents = 65536

// Console is an RK-32 machine instance. It is not safe for concurrent use;
// the frame loop owns it (§2's Algorithm 1 is single-threaded by design).
type Console struct {
	regs [NumRegs]uint32
	pc   uint16
	mem  [MemSize]byte

	frame    int
	halted   bool
	overruns int
	lfsr     uint16

	audio audioState

	// dirty is the live page bitmap: every store path marks the touched
	// pages here, and drainDirty folds it into the consumer accumulators.
	dirty PageBitmap
	// hashDirty accumulates pages changed since the last StateHash; only
	// those page hashes are recomputed.
	hashDirty PageBitmap
	// snapDirty accumulates pages changed since the last AppendSaveBase /
	// AppendSaveDelta capture — the delta-savestate chain.
	snapDirty PageBitmap
	// pageHash caches the per-page digest behind the incremental StateHash.
	pageHash [NumPages]uint64

	// pendingCycles is the extra instruction-budget cost charged by the
	// blitter; the interpreter folds it into the frame's cycle count right
	// after the store that triggered the fill.
	pendingCycles int

	// debugOn gates SYS logging. Off by default: the log exists for tests
	// and tooling, and the append would be the only allocation on the
	// session hot path.
	debugOn  bool
	debugLog []DebugEvent

	// lastCycles is the instruction count of the most recent frame.
	lastCycles int
	// trace, when set, observes every executed instruction. It must not
	// mutate the console (tracing cannot affect determinism).
	trace func(TraceEvent)
}

// TraceEvent describes one executed instruction, for debuggers and the
// romtool trace command.
type TraceEvent struct {
	Frame int
	Cycle int
	PC    uint16
	Instr Instr
}

// New boots a console from params.
func New(p Params) (*Console, error) {
	end := int(p.LoadAddr) + len(p.Code)
	if end > VRAMBase {
		return nil, fmt.Errorf("vm: code of %d bytes at 0x%04X overruns VRAM at 0x%04X", len(p.Code), p.LoadAddr, VRAMBase)
	}
	c := &Console{pc: p.Entry}
	copy(c.mem[p.LoadAddr:], p.Code)
	c.regs[RegSP] = InitialSP
	c.lfsr = uint16(p.Seed) ^ uint16(p.Seed>>16)
	if c.lfsr == 0 {
		c.lfsr = 0xACE1 // any nonzero tap state
	}
	// A fresh console is entirely "modified": both incremental consumers
	// must start from a full recompute.
	c.markAllDirty()
	return c, nil
}

// StepFrame latches input (pad 0 in bits 0-7, pad 1 in bits 8-15) and runs
// the CPU until YIELD, HALT or the cycle budget. This is the paper's
// Transition(I, S): one deterministic state transition per frame, with the
// input treated as an opaque bit string.
func (c *Console) StepFrame(input uint16) {
	if c.halted {
		return
	}
	c.mem[AddrPad0] = byte(input)
	c.mem[AddrPad1] = byte(input >> 8)
	binary.LittleEndian.PutUint16(c.mem[AddrFrame:AddrFrame+2], uint16(c.frame))
	c.markAddr(AddrPad0) // pads and frame counter share the MMIO page

	ran := c.run(CyclesPerFrame)
	if ran >= CyclesPerFrame {
		c.overruns++
	}
	c.lastCycles = ran
	c.frame++
	c.audio.step(c.mem[AddrAudioF], c.mem[AddrAudioV])
}

// SetTrace installs (or, with nil, removes) a per-instruction observer.
// Tracing is read-only and does not alter execution or state hashes.
func (c *Console) SetTrace(fn func(TraceEvent)) { c.trace = fn }

// EnableDebugLog turns on SYS trap recording (see DebugLog). The log is off
// by default so the frame-loop hot path never allocates; tests and tooling
// opt in right after boot.
func (c *Console) EnableDebugLog() { c.debugOn = true }

// CyclesLastFrame reports how many instructions the most recent frame ran.
func (c *Console) CyclesLastFrame() int { return c.lastCycles }

// run executes instructions until YIELD, HALT, an illegal opcode or the
// cycle budget, and returns the consumed cycle count (terminating
// instructions are not counted, matching the original per-instruction
// stepper). The loop is the interpreter hot path: one 32-bit fetch, shift
// decoding and inline dispatch — no per-instruction function calls and no
// Instr construction.
func (c *Console) run(budget int) int {
	pc := c.pc
	mem := &c.mem
	regs := &c.regs
	ran := 0
	for ran < budget {
		if c.trace != nil {
			c.trace(TraceEvent{
				Frame: c.frame,
				Cycle: ran,
				PC:    pc,
				Instr: Decode(mem[pc], mem[(pc+1)&0xFFFF], mem[(pc+2)&0xFFFF], mem[(pc+3)&0xFFFF]),
			})
		}
		var w uint32
		if pc <= MemSize-4 {
			w = binary.LittleEndian.Uint32(mem[pc:])
		} else {
			w = uint32(mem[pc]) |
				uint32(mem[(pc+1)&0xFFFF])<<8 |
				uint32(mem[(pc+2)&0xFFFF])<<16 |
				uint32(mem[(pc+3)&0xFFFF])<<24
		}
		op := byte(w)
		b1 := byte(w >> 8)
		rd := b1 >> 4
		ra := b1 & 0x0F
		imm := uint16(w >> 16)
		npc := pc + 4

		switch op {
		case OpNOP:
		case OpHALT:
			c.halted = true
			c.pc = pc // freeze
			return ran
		case OpYIELD:
			c.pc = npc
			return ran

		case OpMOVI:
			if rd != 0 {
				regs[rd] = uint32(int32(int16(imm)))
			}
		case OpMOVHI:
			if rd != 0 {
				regs[rd] = regs[rd]&0xFFFF | uint32(imm)<<16
			}
		case OpMOV:
			if rd != 0 {
				regs[rd] = regs[ra]
			}

		case OpADD:
			if rd != 0 {
				regs[rd] = regs[ra] + regs[imm&0x0F]
			}
		case OpSUB:
			if rd != 0 {
				regs[rd] = regs[ra] - regs[imm&0x0F]
			}
		case OpMUL:
			if rd != 0 {
				regs[rd] = regs[ra] * regs[imm&0x0F]
			}
		case OpDIV:
			if rd != 0 {
				regs[rd] = sdiv(regs[ra], regs[imm&0x0F])
			}
		case OpMOD:
			if rd != 0 {
				regs[rd] = smod(regs[ra], regs[imm&0x0F])
			}
		case OpAND:
			if rd != 0 {
				regs[rd] = regs[ra] & regs[imm&0x0F]
			}
		case OpOR:
			if rd != 0 {
				regs[rd] = regs[ra] | regs[imm&0x0F]
			}
		case OpXOR:
			if rd != 0 {
				regs[rd] = regs[ra] ^ regs[imm&0x0F]
			}
		case OpSHL:
			if rd != 0 {
				regs[rd] = regs[ra] << (regs[imm&0x0F] & 31)
			}
		case OpSHR:
			if rd != 0 {
				regs[rd] = regs[ra] >> (regs[imm&0x0F] & 31)
			}
		case OpSAR:
			if rd != 0 {
				regs[rd] = uint32(int32(regs[ra]) >> (regs[imm&0x0F] & 31))
			}

		case OpADDI:
			if rd != 0 {
				regs[rd] = regs[ra] + uint32(int32(int16(imm)))
			}
		case OpMULI:
			if rd != 0 {
				regs[rd] = regs[ra] * uint32(int32(int16(imm)))
			}
		case OpANDI:
			if rd != 0 {
				regs[rd] = regs[ra] & uint32(imm)
			}
		case OpORI:
			if rd != 0 {
				regs[rd] = regs[ra] | uint32(imm)
			}
		case OpXORI:
			if rd != 0 {
				regs[rd] = regs[ra] ^ uint32(imm)
			}
		case OpSHLI:
			if rd != 0 {
				regs[rd] = regs[ra] << (imm & 31)
			}
		case OpSHRI:
			if rd != 0 {
				regs[rd] = regs[ra] >> (imm & 31)
			}
		case OpSARI:
			if rd != 0 {
				regs[rd] = uint32(int32(regs[ra]) >> (imm & 31))
			}
		case OpDIVI:
			if rd != 0 {
				regs[rd] = sdiv(regs[ra], uint32(int32(int16(imm))))
			}
		case OpMODI:
			if rd != 0 {
				regs[rd] = smod(regs[ra], uint32(int32(int16(imm))))
			}

		case OpLDB:
			if rd != 0 {
				regs[rd] = uint32(mem[uint16(regs[ra]+uint32(int32(int16(imm))))])
			}
		case OpLDH:
			a := uint16(regs[ra] + uint32(int32(int16(imm))))
			var v uint16
			if a <= MemSize-2 {
				v = binary.LittleEndian.Uint16(mem[a:])
			} else {
				v = c.load16(a)
			}
			if rd != 0 {
				regs[rd] = uint32(v)
			}
		case OpLDW:
			a := uint16(regs[ra] + uint32(int32(int16(imm))))
			var v uint32
			if a <= MemSize-4 {
				v = binary.LittleEndian.Uint32(mem[a:])
			} else {
				v = c.load32(a)
			}
			if rd != 0 {
				regs[rd] = v
			}

		case OpSTB:
			a := uint16(regs[ra] + uint32(int32(int16(imm))))
			if a>>pageShift != mmioPage {
				mem[a] = byte(regs[rd])
				c.dirty[a>>14] |= 1 << ((a >> pageShift) & 63)
			} else {
				c.storeMMIO(a, byte(regs[rd]))
				if c.pendingCycles != 0 {
					ran += c.pendingCycles
					c.pendingCycles = 0
				}
			}
		case OpSTH:
			a := uint16(regs[ra] + uint32(int32(int16(imm))))
			// Fast path: no wrap and at least a page away from MMIO.
			if a <= MemSize-2 && uint16(a-(AddrPad0-1)) > PageSize {
				binary.LittleEndian.PutUint16(mem[a:], uint16(regs[rd]))
				c.dirty[a>>14] |= 1 << ((a >> pageShift) & 63)
				e := a + 1
				c.dirty[e>>14] |= 1 << ((e >> pageShift) & 63)
			} else {
				c.store16(a, uint16(regs[rd]))
				if c.pendingCycles != 0 {
					ran += c.pendingCycles
					c.pendingCycles = 0
				}
			}
		case OpSTW:
			a := uint16(regs[ra] + uint32(int32(int16(imm))))
			if a <= MemSize-4 && uint16(a-(AddrPad0-3)) > PageSize+2 {
				binary.LittleEndian.PutUint32(mem[a:], regs[rd])
				c.dirty[a>>14] |= 1 << ((a >> pageShift) & 63)
				e := a + 3
				c.dirty[e>>14] |= 1 << ((e >> pageShift) & 63)
			} else {
				c.store32(a, regs[rd])
				if c.pendingCycles != 0 {
					ran += c.pendingCycles
					c.pendingCycles = 0
				}
			}

		case OpJMP:
			npc = imm
		case OpJR:
			npc = uint16(regs[ra])
		case OpCALL:
			regs[RegSP] -= 4
			a := uint16(regs[RegSP])
			if a <= MemSize-4 && uint16(a-(AddrPad0-3)) > PageSize+2 {
				binary.LittleEndian.PutUint32(mem[a:], uint32(npc))
				c.dirty[a>>14] |= 1 << ((a >> pageShift) & 63)
				e := a + 3
				c.dirty[e>>14] |= 1 << ((e >> pageShift) & 63)
			} else {
				c.store32(a, uint32(npc))
				if c.pendingCycles != 0 {
					ran += c.pendingCycles
					c.pendingCycles = 0
				}
			}
			npc = imm
		case OpRET:
			a := uint16(regs[RegSP])
			var v uint32
			if a <= MemSize-4 {
				v = binary.LittleEndian.Uint32(mem[a:])
			} else {
				v = c.load32(a)
			}
			regs[RegSP] += 4
			npc = uint16(v)

		case OpBEQ:
			if regs[rd] == regs[ra] {
				npc = imm
			}
		case OpBNE:
			if regs[rd] != regs[ra] {
				npc = imm
			}
		case OpBLT:
			if int32(regs[rd]) < int32(regs[ra]) {
				npc = imm
			}
		case OpBGE:
			if int32(regs[rd]) >= int32(regs[ra]) {
				npc = imm
			}
		case OpBLTU:
			if regs[rd] < regs[ra] {
				npc = imm
			}
		case OpBGEU:
			if regs[rd] >= regs[ra] {
				npc = imm
			}

		case OpPUSH:
			regs[RegSP] -= 4
			a := uint16(regs[RegSP])
			if a <= MemSize-4 && uint16(a-(AddrPad0-3)) > PageSize+2 {
				binary.LittleEndian.PutUint32(mem[a:], regs[rd])
				c.dirty[a>>14] |= 1 << ((a >> pageShift) & 63)
				e := a + 3
				c.dirty[e>>14] |= 1 << ((e >> pageShift) & 63)
			} else {
				c.store32(a, regs[rd])
				if c.pendingCycles != 0 {
					ran += c.pendingCycles
					c.pendingCycles = 0
				}
			}
		case OpPOP:
			a := uint16(regs[RegSP])
			var v uint32
			if a <= MemSize-4 {
				v = binary.LittleEndian.Uint32(mem[a:])
			} else {
				v = c.load32(a)
			}
			regs[RegSP] += 4
			if rd != 0 {
				regs[rd] = v
			}

		case OpRAND:
			if rd != 0 {
				regs[rd] = uint32(c.rand16())
			}
		case OpSYS:
			if c.debugOn && len(c.debugLog) < maxDebugEvents {
				c.debugLog = append(c.debugLog, DebugEvent{Frame: c.frame, Code: imm, Value: regs[rd]})
			}

		default:
			// Unknown opcode: halt deterministically rather than guessing.
			c.halted = true
			c.pc = pc
			return ran
		}
		ran++
		pc = npc
	}
	c.pc = pc
	return ran
}

// load16 is the wrap-around (address 0xFFFF) halfword load.
func (c *Console) load16(a uint16) uint16 {
	return uint16(c.mem[a]) | uint16(c.mem[(a+1)&0xFFFF])<<8
}

// load32 is the wrap-around word load.
func (c *Console) load32(a uint16) uint32 {
	return uint32(c.mem[a]) |
		uint32(c.mem[(a+1)&0xFFFF])<<8 |
		uint32(c.mem[(a+2)&0xFFFF])<<16 |
		uint32(c.mem[(a+3)&0xFFFF])<<24
}

// store8 writes one byte of memory, honoring the MMIO page's read-only and
// device semantics, and marks the page dirty.
func (c *Console) store8(a uint16, v byte) {
	if a>>pageShift == mmioPage {
		c.storeMMIO(a, v)
		return
	}
	c.mem[a] = v
	c.markAddr(a)
}

// storeMMIO handles byte stores into the 0xF0xx device page: the pads and
// frame counter are read-only, a write to AddrBlitGo fires the fill blitter,
// and everything else behaves as plain memory.
func (c *Console) storeMMIO(a uint16, v byte) {
	switch a {
	case AddrPad0, AddrPad1, AddrFrame, AddrFrame + 1:
		return
	case AddrBlitGo:
		c.mem[a] = v
		c.markAddr(a)
		c.blit()
	default:
		c.mem[a] = v
		c.markAddr(a)
	}
}

func (c *Console) store16(a uint16, v uint16) {
	c.store8(a, byte(v))
	c.store8((a+1)&0xFFFF, byte(v>>8))
}

func (c *Console) store32(a uint16, v uint32) {
	c.store8(a, byte(v))
	c.store8((a+1)&0xFFFF, byte(v>>8))
	c.store8((a+2)&0xFFFF, byte(v>>16))
	c.store8((a+3)&0xFFFF, byte(v>>24))
}

// rand16 advances the 16-bit Fibonacci LFSR (taps 16,14,13,11) once per
// output bit, producing a full 16-bit value.
func (c *Console) rand16() uint16 {
	var v uint16
	for i := 0; i < 16; i++ {
		bit := (c.lfsr ^ c.lfsr>>2 ^ c.lfsr>>3 ^ c.lfsr>>5) & 1
		c.lfsr = c.lfsr>>1 | bit<<15
		v = v<<1 | bit
	}
	return v
}

func sdiv(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int32(a) / int32(b))
}

func smod(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int32(a) % int32(b))
}

// FrameCount reports how many frames have been executed.
func (c *Console) FrameCount() int { return c.frame }

// Halted reports whether the console hit HALT or an illegal opcode.
func (c *Console) Halted() bool { return c.halted }

// Overruns reports how many frames exhausted the cycle budget.
func (c *Console) Overruns() int { return c.overruns }

// Reg returns the value of register r (for tests and tooling).
func (c *Console) Reg(r int) uint32 { return c.regs[r&0x0F] }

// PC returns the current program counter.
func (c *Console) PC() uint16 { return c.pc }

// Peek reads a byte of memory without side effects.
func (c *Console) Peek(addr uint16) byte { return c.mem[addr] }

// Peek32 reads a 32-bit little-endian word without side effects.
func (c *Console) Peek32(addr uint16) uint32 { return c.load32(addr) }

// Poke writes a byte of memory, honoring MMIO read-only rules. It exists for
// tests; game-transparent operation never pokes memory from outside.
func (c *Console) Poke(addr uint16, v byte) {
	c.store8(addr, v)
	c.pendingCycles = 0 // an out-of-band poke of BLITGO costs no game cycles
}

// DebugLog returns the recorded SYS events (empty unless EnableDebugLog was
// called).
func (c *Console) DebugLog() []DebugEvent {
	out := make([]DebugEvent, len(c.debugLog))
	copy(out, c.debugLog)
	return out
}
