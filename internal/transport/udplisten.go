package transport

import (
	"fmt"
	"net"
	"sync"
)

// UDPListener owns one unconnected UDP socket and demultiplexes incoming
// datagrams by source address into per-peer Conns, so a single game port can
// serve the opponent and any number of live spectators (the journal
// version's observers). Outbound traffic from every derived Conn shares the
// socket.
type UDPListener struct {
	sock *net.UDPConn

	mu     sync.Mutex
	conns  map[string]*UDPPeerConn
	accept chan *UDPPeerConn
	closed bool
	done   chan struct{}
}

// acceptBacklog bounds how many not-yet-accepted peers may queue.
const acceptBacklog = 16

// ListenUDPAddr binds an unconnected UDP socket on localAddr.
func ListenUDPAddr(localAddr string) (*UDPListener, error) {
	laddr, err := net.ResolveUDPAddr("udp", localAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", localAddr, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp: %w", err)
	}
	l := &UDPListener{
		sock:   sock,
		conns:  make(map[string]*UDPPeerConn),
		accept: make(chan *UDPPeerConn, acceptBacklog),
		done:   make(chan struct{}),
	}
	go l.readLoop()
	return l, nil
}

// Addr returns the bound local address.
func (l *UDPListener) Addr() string { return l.sock.LocalAddr().String() }

// Conn returns (creating if needed) the connection for a known peer
// address. Use it for the opponent whose address is agreed upon in advance;
// unsolicited senders surface through Accept instead.
func (l *UDPListener) Conn(peerAddr string) (*UDPPeerConn, error) {
	raddr, err := net.ResolveUDPAddr("udp", peerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", peerAddr, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	key := raddr.String()
	if c, ok := l.conns[key]; ok {
		return c, nil
	}
	c := &UDPPeerConn{listener: l, peer: raddr}
	l.conns[key] = c
	return c, nil
}

// Accept returns the next connection initiated by an unknown sender (e.g. a
// spectator's join request), or ok=false once the listener closes.
func (l *UDPListener) Accept() (*UDPPeerConn, bool) {
	c, ok := <-l.accept
	return c, ok
}

// TryAccept is a non-blocking Accept.
func (l *UDPListener) TryAccept() (*UDPPeerConn, bool) {
	select {
	case c, ok := <-l.accept:
		return c, ok
	default:
		return nil, false
	}
}

func (l *UDPListener) readLoop() {
	defer close(l.done)
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := l.sock.ReadFromUDP(buf)
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return
			}
			continue // transient (ICMP unreachable etc.)
		}
		p := make([]byte, n)
		copy(p, buf[:n])

		key := from.String()
		l.mu.Lock()
		c, known := l.conns[key]
		if !known && !l.closed {
			c = &UDPPeerConn{listener: l, peer: from}
			l.conns[key] = c
			select {
			case l.accept <- c:
			default:
				// Backlog full: drop the newcomer's state; its
				// retransmissions will retry.
				delete(l.conns, key)
				c = nil
			}
		}
		l.mu.Unlock()
		if c != nil {
			c.enqueue(p)
		}
	}
}

// Close shuts the socket and every derived connection.
func (l *UDPListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.sock.Close()
	<-l.done
	close(l.accept)
	return err
}

// UDPPeerConn is one peer's view of a shared UDPListener socket.
type UDPPeerConn struct {
	listener *UDPListener
	peer     *net.UDPAddr

	mu     sync.Mutex
	queue  [][]byte
	closed bool
}

func (c *UDPPeerConn) enqueue(p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if len(c.queue) >= udpQueueLen {
		c.queue = c.queue[1:]
	}
	c.queue = append(c.queue, p)
}

// Send implements Conn.
func (c *UDPPeerConn) Send(p []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	_, err := c.listener.sock.WriteToUDP(p, c.peer)
	if err != nil {
		return nil // transient, like a raw socket send
	}
	return nil
}

// TryRecv implements Conn.
func (c *UDPPeerConn) TryRecv() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p, true
}

// Close detaches this peer from the listener (the socket stays open for the
// other peers).
func (c *UDPPeerConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.queue = nil
	c.mu.Unlock()
	c.listener.mu.Lock()
	delete(c.listener.conns, c.peer.String())
	c.listener.mu.Unlock()
	return nil
}

// LocalAddr implements Conn.
func (c *UDPPeerConn) LocalAddr() string { return c.listener.Addr() }

// RemoteAddr implements Conn.
func (c *UDPPeerConn) RemoteAddr() string { return c.peer.String() }

var _ Conn = (*UDPPeerConn)(nil)
