package transport

import (
	"sync"

	"retrolock/internal/simnet"
)

// SimConn is a Conn over an in-process simnet endpoint, connected to a
// single peer address. Datagrams arriving from any other source are
// discarded, mirroring a connected UDP socket.
type SimConn struct {
	mu     sync.Mutex
	ep     *simnet.Endpoint
	peer   string
	closed bool
}

// NewSim connects endpoint ep to the peer bound at peerAddr.
func NewSim(ep *simnet.Endpoint, peerAddr string) *SimConn {
	return &SimConn{ep: ep, peer: peerAddr}
}

// SimPair binds two fresh endpoints on n and returns connected ends a<->b.
// The link keeps whatever shaping n has configured for the pair.
func SimPair(n *simnet.Network, addrA, addrB string) (*SimConn, *SimConn, error) {
	epA, err := n.Bind(addrA)
	if err != nil {
		return nil, nil, err
	}
	epB, err := n.Bind(addrB)
	if err != nil {
		epA.Close()
		return nil, nil, err
	}
	return NewSim(epA, addrB), NewSim(epB, addrA), nil
}

// Send implements Conn.
func (c *SimConn) Send(p []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	err := c.ep.SendTo(c.peer, p)
	if err == simnet.ErrNoRoute {
		// The peer is gone; a real UDP sender would not notice. Swallow
		// the error so protocol code behaves identically on both
		// substrates.
		return nil
	}
	return err
}

// TryRecv implements Conn.
func (c *SimConn) TryRecv() ([]byte, bool) {
	for {
		d, ok := c.ep.TryRecv()
		if !ok {
			return nil, false
		}
		if d.From == c.peer {
			return d.Payload, true
		}
		// Datagram from an unconnected source: drop and keep looking.
	}
}

// Close implements Conn.
func (c *SimConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.ep.Close()
}

// LocalAddr implements Conn.
func (c *SimConn) LocalAddr() string { return c.ep.Addr() }

// RemoteAddr implements Conn.
func (c *SimConn) RemoteAddr() string { return c.peer }

var _ Conn = (*SimConn)(nil)
