package transport

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
)

// checksumTrailerLen is the CRC-32 trailer appended to every datagram.
const checksumTrailerLen = 4

// ChecksumConn layers an end-to-end checksum over a Conn, modelling the UDP
// checksum the paper's system gets for free from the kernel: datagrams whose
// payload was corrupted in flight (see simnet.Corrupter / netem's Corrupt
// knob) are silently discarded on receive instead of being delivered with
// flipped bits. Without it, a single bit error in a sync message would be
// merged into the input buffer as if it were the peer's real input and the
// replicas would silently diverge — which is a property of lossy links, not
// a bug in Algorithm 2.
//
// Wire format: payload followed by a 4-byte big-endian CRC-32 (IEEE).
type ChecksumConn struct {
	lower Conn

	mu        sync.Mutex
	sendBuf   []byte
	discarded int
}

// NewChecksum wraps lower with checksum framing.
func NewChecksum(lower Conn) *ChecksumConn {
	return &ChecksumConn{lower: lower}
}

// Send implements Conn, appending the payload's CRC-32.
func (c *ChecksumConn) Send(p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	need := len(p) + checksumTrailerLen
	if cap(c.sendBuf) < need {
		c.sendBuf = make([]byte, need)
	}
	buf := c.sendBuf[:need]
	copy(buf, p)
	binary.BigEndian.PutUint32(buf[len(p):], crc32.ChecksumIEEE(p))
	return c.lower.Send(buf)
}

// TryRecv implements Conn, verifying and stripping the trailer. Datagrams
// that fail verification (or are too short to carry one) are dropped, and
// the next pending datagram is tried, so a corrupted packet behaves exactly
// like a lost one.
func (c *ChecksumConn) TryRecv() ([]byte, bool) {
	for {
		raw, ok := c.lower.TryRecv()
		if !ok {
			return nil, false
		}
		if len(raw) < checksumTrailerLen {
			c.countDiscard()
			continue
		}
		body := raw[:len(raw)-checksumTrailerLen]
		want := binary.BigEndian.Uint32(raw[len(body):])
		if crc32.ChecksumIEEE(body) != want {
			c.countDiscard()
			continue
		}
		return body, true
	}
}

func (c *ChecksumConn) countDiscard() {
	c.mu.Lock()
	c.discarded++
	c.mu.Unlock()
}

// Discarded reports how many datagrams failed checksum verification.
func (c *ChecksumConn) Discarded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discarded
}

// Close implements Conn.
func (c *ChecksumConn) Close() error { return c.lower.Close() }

// LocalAddr implements Conn.
func (c *ChecksumConn) LocalAddr() string { return c.lower.LocalAddr() }

// RemoteAddr implements Conn.
func (c *ChecksumConn) RemoteAddr() string { return c.lower.RemoteAddr() }

var _ Conn = (*ChecksumConn)(nil)
