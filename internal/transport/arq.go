package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/span"
	"retrolock/internal/vclock"
)

// ARQ wire format (big endian):
//
//	byte 0      kind: arqData | arqAck
//	bytes 1-4   sequence number
//	bytes 5..   payload (arqData only)
//
// Acks are cumulative and carry the receiver's next expected sequence:
// ACK(n) confirms receipt of every datagram with sequence < n.
//
// Sequence numbers are compared with serial-number arithmetic (seqBefore),
// so they wrap safely at 2^32, and the receiver only buffers segments within
// one sender window of the next expected sequence: anything further — which
// a correct peer cannot produce, but a corrupted header can — is dropped and
// counted instead of growing the out-of-order buffer without bound.
const (
	arqData = byte(1)
	arqAck  = byte(2)

	arqHeaderLen = 5
)

// DefaultRTO is the initial retransmission timeout of an ARQ connection.
// Like early TCP implementations it is fixed rather than RTT-adaptive; each
// retransmission of the same segment doubles it up to 8x.
const DefaultRTO = 200 * time.Millisecond

// ARQConn wraps an unreliable Conn with TCP-like semantics: every datagram
// is delivered exactly once and in order, using cumulative acks and timeout
// retransmission. Out-of-order arrivals are buffered, which gives the
// head-of-line blocking that makes reliable transports problematic for
// real-time sync (§3.1): one lost segment stalls everything behind it for at
// least one RTO.
//
// The connection is driven entirely by its Send/TryRecv calls (no internal
// goroutine): each call checks the retransmission timer against the supplied
// clock. The sync module polls TryRecv every few hundred microseconds, which
// is more than enough drive.
type ARQConn struct {
	mu sync.Mutex

	lower Conn
	clock vclock.Clock
	rto   time.Duration

	// Optional frame-event tracing (nil-safe): every retransmission is
	// recorded as an EvRetransmit instant with the segment sequence as Arg.
	tracer    *obs.Tracer
	traceSite int

	// Optional input-journey journal (nil-safe): every retransmission is
	// attributed to the newest sync frame the journal saw sent, adding the
	// ARQ hop to that frame's span.
	journal *span.Journal

	// Sender state.
	nextSeq uint32
	unacked []arqSegment
	sendErr error
	retrans int
	// maxAhead is the sender window: the max unacked segments before Send
	// starts failing. It doubles as the receive horizon — data segments at
	// or beyond expected+maxAhead are dropped, since a correct peer with a
	// symmetric window cannot legitimately produce them.
	maxAhead int

	// Receiver state.
	expected   uint32
	ooo        map[uint32][]byte
	ready      [][]byte
	farDropped int // data segments dropped beyond the receive horizon
	closed     bool
}

// seqBefore reports whether sequence a precedes b in serial-number
// arithmetic: the uint32 space is treated as a circle, so comparisons stay
// correct across the 2^32 wrap (a half-space apart is unreachable because
// the sender window is tiny compared to the sequence space).
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

type arqSegment struct {
	seq      uint32
	payload  []byte
	lastSent time.Time
	rto      time.Duration
}

// DefaultSenderWindow bounds the number of in-flight unacked segments.
const DefaultSenderWindow = 1024

// NewARQ layers reliability over lower, timing retransmissions with clock.
// A non-positive rto uses DefaultRTO.
func NewARQ(lower Conn, clock vclock.Clock, rto time.Duration) *ARQConn {
	if rto <= 0 {
		rto = DefaultRTO
	}
	return &ARQConn{
		lower:    lower,
		clock:    clock,
		rto:      rto,
		ooo:      make(map[uint32][]byte),
		maxAhead: DefaultSenderWindow,
	}
}

// Send implements Conn. The datagram is queued for reliable delivery; if the
// sender window is full the oldest unacked segment is still retained and the
// call fails, exposing backpressure the way a full TCP send buffer would.
func (c *ARQConn) Send(p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if len(c.unacked) >= c.maxAhead {
		return fmt.Errorf("transport: arq send window full (%d unacked)", len(c.unacked))
	}
	seq := c.nextSeq
	c.nextSeq++
	cp := make([]byte, len(p))
	copy(cp, p)
	seg := arqSegment{seq: seq, payload: cp, lastSent: c.clock.Now(), rto: c.rto}
	c.unacked = append(c.unacked, seg)
	return c.transmitLocked(seg)
}

func (c *ARQConn) transmitLocked(seg arqSegment) error {
	buf := make([]byte, arqHeaderLen+len(seg.payload))
	buf[0] = arqData
	binary.BigEndian.PutUint32(buf[1:5], seg.seq)
	copy(buf[arqHeaderLen:], seg.payload)
	return c.lower.Send(buf)
}

func (c *ARQConn) sendAckLocked() {
	var buf [arqHeaderLen]byte
	buf[0] = arqAck
	binary.BigEndian.PutUint32(buf[1:5], c.expected)
	// Best effort; a lost ack just causes a retransmission.
	_ = c.lower.Send(buf[:])
}

// TryRecv implements Conn. It also drives ack processing and retransmission.
func (c *ARQConn) TryRecv() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pumpLocked()
	if len(c.ready) == 0 {
		return nil, false
	}
	p := c.ready[0]
	c.ready = c.ready[1:]
	return p, true
}

// pumpLocked ingests everything pending on the lower connection and
// retransmits timed-out segments.
func (c *ARQConn) pumpLocked() {
	for {
		raw, ok := c.lower.TryRecv()
		if !ok {
			break
		}
		c.handleLocked(raw)
	}
	now := c.clock.Now()
	for i := range c.unacked {
		seg := &c.unacked[i]
		if now.Sub(seg.lastSent) >= seg.rto {
			seg.lastSent = now
			if seg.rto < 8*c.rto {
				seg.rto *= 2
			}
			c.retrans++
			// Frame -1: retransmissions are not tied to a game frame.
			c.tracer.Record(obs.EvRetransmit, c.traceSite, -1, now, int64(seg.seq))
			c.journal.Retransmit(now)
			_ = c.transmitLocked(*seg)
		}
	}
}

func (c *ARQConn) handleLocked(raw []byte) {
	if len(raw) < arqHeaderLen {
		return // runt: ignore
	}
	seq := binary.BigEndian.Uint32(raw[1:5])
	switch raw[0] {
	case arqAck:
		// Cumulative: drop every segment preceding next-expected
		// (serial arithmetic, so acks stay correct across the wrap).
		keep := c.unacked[:0]
		for _, seg := range c.unacked {
			if !seqBefore(seg.seq, seq) {
				keep = append(keep, seg)
			}
		}
		c.unacked = keep
	case arqData:
		switch delta := int32(seq - c.expected); {
		case delta == 0:
			// The payload is copied on ingest: a lower Conn may reuse
			// its receive buffer, and ready/ooo entries outlive this
			// call.
			c.ready = append(c.ready, copyPayload(raw))
			c.expected++
			for {
				next, ok := c.ooo[c.expected]
				if !ok {
					break
				}
				delete(c.ooo, c.expected)
				c.ready = append(c.ready, next)
				c.expected++
			}
		case delta > 0:
			if delta >= int32(c.maxAhead) {
				// Beyond the sender-window horizon: a correct peer
				// cannot have this many segments in flight, so the
				// sequence is corrupt or hostile. Drop it instead of
				// buffering arbitrarily far-future segments forever.
				c.farDropped++
				return
			}
			if _, dup := c.ooo[seq]; !dup {
				c.ooo[seq] = copyPayload(raw)
			}
		default:
			// Duplicate of already-delivered data: re-ack only.
		}
		c.sendAckLocked()
	}
}

// copyPayload extracts an owned copy of a data segment's payload.
func copyPayload(raw []byte) []byte {
	cp := make([]byte, len(raw)-arqHeaderLen)
	copy(cp, raw[arqHeaderLen:])
	return cp
}

// SetTracer attaches a frame-event tracer; subsequent retransmissions are
// recorded against site. Safe to call before the connection is driven; not
// safe concurrently with Send/TryRecv.
func (c *ARQConn) SetTracer(site int, t *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
	c.traceSite = site
}

// SetJournal attaches an input-journey journal; subsequent retransmissions
// add an ARQ hop to the span of the newest frame the journal saw sent.
func (c *ARQConn) SetJournal(j *span.Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// Flush drives retransmission/ack processing without consuming a datagram.
// Useful for callers that send but do not receive for long stretches.
func (c *ARQConn) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pumpLocked()
}

// Unacked reports how many segments await acknowledgement.
func (c *ARQConn) Unacked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.unacked)
}

// Retransmissions reports the lifetime retransmission count.
func (c *ARQConn) Retransmissions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retrans
}

// ARQStats is a snapshot of an ARQ connection's bookkeeping, for the chaos
// harness's bounded-memory and retransmission-sanity invariants.
type ARQStats struct {
	Unacked         int // segments awaiting acknowledgement (sender window)
	OOO             int // out-of-order segments buffered at the receiver
	Ready           int // delivered-in-order segments not yet consumed
	Retransmissions int // lifetime retransmission count
	FarDropped      int // data segments dropped beyond the receive horizon
}

// Stats returns a snapshot of the connection's counters and buffer gauges.
func (c *ARQConn) Stats() ARQStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ARQStats{
		Unacked:         len(c.unacked),
		OOO:             len(c.ooo),
		Ready:           len(c.ready),
		Retransmissions: c.retrans,
		FarDropped:      c.farDropped,
	}
}

// Close implements Conn.
func (c *ARQConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.lower.Close()
}

// LocalAddr implements Conn.
func (c *ARQConn) LocalAddr() string { return c.lower.LocalAddr() }

// RemoteAddr implements Conn.
func (c *ARQConn) RemoteAddr() string { return c.lower.RemoteAddr() }

var _ Conn = (*ARQConn)(nil)
