// Package transport defines the point-to-point datagram connection used by
// the sync module, plus implementations for every substrate the paper's
// system runs on:
//
//   - Sim: an in-process connection over internal/simnet, used by the
//     experiment harness (virtual time) and the quickstart example.
//   - UDP: a real UDP socket with a background reader, used for live play
//     (§2: "a UDP-based communication channel will be established").
//   - ARQ: a reliable in-order layer over any Conn, modelling the TCP
//     baseline the paper argues against in §3.1 ("As a reliable transport,
//     TCP solves those problems. However, it is problematic in satisfying
//     the real time constraint").
//   - TCP: a real TCP stream carrying length-prefixed datagrams, the live
//     counterpart of ARQ.
//
// All connections are message-oriented and connected to a single peer.
// Receiving never blocks: the sync module's SyncInput loop polls TryRecv,
// mirroring the paper's two-thread produce/consume design without hiding
// timing behaviour inside the transport.
package transport

import "errors"

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a connected, unreliable (unless wrapped), message-preserving
// channel to a single peer. Implementations are safe for concurrent use.
type Conn interface {
	// Send transmits one datagram. The buffer may be reused immediately
	// after Send returns. Loss, duplication and reordering are permitted
	// (the sync module implements its own reliability, §3.1).
	Send(p []byte) error

	// TryRecv pops the oldest pending datagram without blocking. ok is
	// false when nothing is pending. The returned slice borrows the
	// connection's receive buffering: it is valid until the next TryRecv
	// on the same connection. Callers that retain a payload must copy it
	// (the sync module decodes every datagram before polling again).
	TryRecv() (p []byte, ok bool)

	// Close releases the connection. Further Sends fail with ErrClosed;
	// TryRecv may drain already-received datagrams.
	Close() error

	// LocalAddr and RemoteAddr identify the two ends, for logging.
	LocalAddr() string
	RemoteAddr() string
}
