package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// maxDatagram is the largest datagram the UDP transport accepts. The sync
// protocol's messages are far smaller (a header plus a few dozen two-byte
// inputs), so 64 KiB leaves ample headroom.
const maxDatagram = 64 * 1024

// udpQueueLen bounds the reader-to-consumer queue, in datagrams. When the
// consumer stalls, the oldest traffic is dropped — the same failure mode as a
// full kernel socket buffer.
const udpQueueLen = 1024

// UDPConn is a Conn over a real UDP socket connected to a single peer. A
// background goroutine moves datagrams from the socket into an in-memory
// queue so that TryRecv never blocks; this mirrors the paper's two-thread
// message production/consumption design (§4.2).
//
// UDPConn uses the host clock for socket I/O and therefore belongs to live
// play only; experiments use SimConn over virtual time.
type UDPConn struct {
	sock *net.UDPConn

	mu     sync.Mutex
	queue  [][]byte
	closed bool
	done   chan struct{}
}

// DialUDP binds localAddr (e.g. ":7000", or "" for an ephemeral port) and
// connects it to remoteAddr (e.g. "192.0.2.1:7000").
func DialUDP(localAddr, remoteAddr string) (*UDPConn, error) {
	var laddr *net.UDPAddr
	if localAddr != "" {
		a, err := net.ResolveUDPAddr("udp", localAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: resolve local %q: %w", localAddr, err)
		}
		laddr = a
	}
	raddr, err := net.ResolveUDPAddr("udp", remoteAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve remote %q: %w", remoteAddr, err)
	}
	sock, err := net.DialUDP("udp", laddr, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp: %w", err)
	}
	c := &UDPConn{sock: sock, done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

func (c *UDPConn) readLoop() {
	buf := make([]byte, maxDatagram)
	for {
		n, err := c.sock.Read(buf)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				close(c.done)
				return
			}
			// Transient error — typically ECONNREFUSED from an ICMP
			// port-unreachable when the peer has not bound its
			// socket yet. The lockstep protocol retransmits, so
			// keep reading.
			time.Sleep(time.Millisecond)
			continue
		}
		p := make([]byte, n)
		copy(p, buf[:n])
		c.mu.Lock()
		if !c.closed {
			if len(c.queue) >= udpQueueLen {
				c.queue = c.queue[1:]
			}
			c.queue = append(c.queue, p)
		}
		c.mu.Unlock()
	}
}

// Send implements Conn.
func (c *UDPConn) Send(p []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	_, err := c.sock.Write(p)
	if err != nil {
		// Connected UDP sockets report ECONNREFUSED when the peer is
		// not yet listening; the lockstep protocol retransmits, so
		// swallow transient send errors like a raw socket would.
		return nil
	}
	return nil
}

// TryRecv implements Conn.
func (c *UDPConn) TryRecv() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p, true
}

// Close implements Conn.
func (c *UDPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.sock.Close()
	<-c.done // wait for the reader goroutine to exit
	return err
}

// LocalAddr implements Conn.
func (c *UDPConn) LocalAddr() string { return c.sock.LocalAddr().String() }

// RemoteAddr implements Conn.
func (c *UDPConn) RemoteAddr() string { return c.sock.RemoteAddr().String() }

var _ Conn = (*UDPConn)(nil)
