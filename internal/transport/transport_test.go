package transport

import (
	"bytes"
	"testing"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

var epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// recvWithin polls c in virtual time until a datagram arrives or d elapses.
func recvWithin(v *vclock.Virtual, c Conn, d time.Duration) ([]byte, bool) {
	deadline := v.Now().Add(d)
	for {
		if p, ok := c.TryRecv(); ok {
			return p, true
		}
		if v.Now().After(deadline) {
			return nil, false
		}
		v.Sleep(200 * time.Microsecond)
	}
}

func TestSimConnRoundTrip(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	a, b, err := SimPair(n, "siteA", "siteB")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	done := v.Go(func() {
		if err := a.Send([]byte("ping")); err != nil {
			t.Errorf("Send: %v", err)
		}
		p, ok := recvWithin(v, b, time.Second)
		if !ok || string(p) != "ping" {
			t.Fatalf("recv = %q/%v, want ping", p, ok)
		}
		if err := b.Send([]byte("pong")); err != nil {
			t.Errorf("Send: %v", err)
		}
		p, ok = recvWithin(v, a, time.Second)
		if !ok || string(p) != "pong" {
			t.Fatalf("recv = %q/%v, want pong", p, ok)
		}
	})
	<-done
}

func TestSimConnFiltersForeignTraffic(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	a, b, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	intruder := n.MustBind("x")
	done := v.Go(func() {
		if err := intruder.SendTo("b", []byte("spoof")); err != nil {
			t.Errorf("intruder send: %v", err)
		}
		if err := a.Send([]byte("legit")); err != nil {
			t.Errorf("Send: %v", err)
		}
		p, ok := recvWithin(v, b, time.Second)
		if !ok || string(p) != "legit" {
			t.Fatalf("recv = %q/%v, want legit (foreign datagram must be dropped)", p, ok)
		}
	})
	<-done
}

func TestSimConnAddrsAndClose(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	a, b, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	if a.LocalAddr() != "a" || a.RemoteAddr() != "b" {
		t.Errorf("addrs = %s/%s, want a/b", a.LocalAddr(), a.RemoteAddr())
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Errorf("Send on closed = %v, want ErrClosed", err)
	}
	// Sending toward a vanished peer behaves like UDP: silent success.
	done := v.Go(func() {
		if err := b.Send([]byte("void")); err != nil {
			t.Errorf("Send to closed peer = %v, want nil", err)
		}
	})
	<-done
}

func TestARQDeliversInOrderDespiteLossAndReorder(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	rawA, rawB, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	fwd, rev := netem.Symmetric(40*time.Millisecond, 10*time.Millisecond, 0.15, 99)
	netem.Install(n, "a", "b", fwd, rev)

	arqA := NewARQ(rawA, v, 100*time.Millisecond)
	arqB := NewARQ(rawB, v, 100*time.Millisecond)

	const count = 200
	done := v.Go(func() {
		got := 0
		sent := 0
		deadline := v.Now().Add(2 * time.Minute)
		for got < count && v.Now().Before(deadline) {
			if sent < count {
				if err := arqA.Send([]byte{byte(sent), byte(sent >> 8)}); err != nil {
					t.Errorf("Send %d: %v", sent, err)
				}
				sent++
			}
			for {
				p, ok := arqB.TryRecv()
				if !ok {
					break
				}
				want := []byte{byte(got), byte(got >> 8)}
				if !bytes.Equal(p, want) {
					t.Fatalf("datagram %d = %v, want %v (order violated)", got, p, want)
				}
				got++
			}
			arqA.Flush()
			v.Sleep(2 * time.Millisecond)
		}
		if got != count {
			t.Fatalf("delivered %d/%d datagrams before deadline", got, count)
		}
	})
	<-done
	if arqA.Retransmissions() == 0 {
		t.Error("no retransmissions despite 15%% loss; reliability untested")
	}
}

func TestARQHeadOfLineBlocking(t *testing.T) {
	// Drop exactly the first data packet; the second must not be
	// delivered before the first's retransmission arrives.
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	rawA, rawB, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	drop := &dropFirstShaper{delay: 10 * time.Millisecond}
	n.SetLink("a", "b", drop)
	n.SetLink("b", "a", simnet.ConstantDelay(10*time.Millisecond))

	const rto = 100 * time.Millisecond
	arqA := NewARQ(rawA, v, rto)
	arqB := NewARQ(rawB, v, rto)

	done := v.Go(func() {
		start := v.Now()
		if err := arqA.Send([]byte("first")); err != nil {
			t.Errorf("Send: %v", err)
		}
		if err := arqA.Send([]byte("second")); err != nil {
			t.Errorf("Send: %v", err)
		}
		var first time.Duration
		for {
			if p, ok := arqB.TryRecv(); ok {
				if string(p) != "first" {
					t.Fatalf("got %q before %q: order violated", p, "first")
				}
				first = v.Now().Sub(start)
				break
			}
			arqA.Flush()
			v.Sleep(time.Millisecond)
		}
		if first < rto {
			t.Errorf("first datagram after %v, want >= RTO %v (HoL stall)", first, rto)
		}
		if _, ok := arqB.TryRecv(); !ok {
			t.Error("second datagram not ready right after the stalled first")
		}
	})
	<-done
}

// dropFirstShaper drops only the first packet it sees.
type dropFirstShaper struct {
	delay   time.Duration
	dropped bool
}

func (s *dropFirstShaper) Plan(time.Time, int) []time.Duration {
	if !s.dropped {
		s.dropped = true
		return nil
	}
	return []time.Duration{s.delay}
}

func TestARQDuplicateSuppression(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	rawA, rawB, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	// Duplicate every packet.
	n.SetLinkBoth("a", "b", netem.New(netem.Config{Delay: 5 * time.Millisecond, Duplicate: 1.0, Seed: 7}))

	arqA := NewARQ(rawA, v, 50*time.Millisecond)
	arqB := NewARQ(rawB, v, 50*time.Millisecond)
	done := v.Go(func() {
		for i := 0; i < 10; i++ {
			if err := arqA.Send([]byte{byte(i)}); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		v.Sleep(100 * time.Millisecond)
		var got []byte
		for {
			p, ok := arqB.TryRecv()
			if !ok {
				break
			}
			got = append(got, p[0])
		}
		if len(got) != 10 {
			t.Fatalf("delivered %d datagrams, want exactly 10 (dups suppressed)", len(got))
		}
		for i, b := range got {
			if int(b) != i {
				t.Fatalf("position %d = %d, want %d", i, b, i)
			}
		}
	})
	<-done
}

func TestARQSenderWindowBackpressure(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	rawA, _, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	// Peer never acks (we never pump it).
	arq := NewARQ(rawA, v, time.Hour)
	arq.maxAhead = 4
	done := v.Go(func() {
		for i := 0; i < 4; i++ {
			if err := arq.Send([]byte{1}); err != nil {
				t.Fatalf("Send %d: %v", i, err)
			}
		}
		if err := arq.Send([]byte{1}); err == nil {
			t.Error("Send beyond window succeeded, want backpressure error")
		}
	})
	<-done
}

func TestUDPConnLoopback(t *testing.T) {
	// Bind a throwaway socket to learn a free port, then wire two
	// connected sockets at each other (the port may not be reused by
	// another process between Close and re-bind on loopback in practice).
	probe, err := DialUDP("127.0.0.1:0", "127.0.0.1:1")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	firstAddr := probe.LocalAddr()
	probe.Close()

	second, err := DialUDP("127.0.0.1:0", firstAddr)
	if err != nil {
		t.Fatalf("bind second: %v", err)
	}
	defer second.Close()
	first, err := DialUDP(firstAddr, second.LocalAddr())
	if err != nil {
		t.Fatalf("bind first: %v", err)
	}
	defer first.Close()

	if err := first.Send([]byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if p, ok := second.TryRecv(); ok {
			if string(p) != "hello" {
				t.Fatalf("recv %q, want hello", p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("datagram not received over loopback")
		}
		time.Sleep(time.Millisecond)
	}
	if err := second.Send([]byte("yo")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	for {
		if p, ok := first.TryRecv(); ok {
			if string(p) != "yo" {
				t.Fatalf("recv %q, want yo", p)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("reply not received over loopback")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPConnLoopback(t *testing.T) {
	type result struct {
		conn *TCPConn
		err  error
	}
	ln := make(chan result, 1)
	// Grab a free port first.
	probe, err := DialUDP("127.0.0.1:0", "127.0.0.1:1")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	addr := probe.LocalAddr()
	probe.Close()

	go func() {
		c, err := ListenTCP(addr)
		ln <- result{c, err}
	}()
	time.Sleep(50 * time.Millisecond)
	client, err := DialTCP(addr)
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer client.Close()
	res := <-ln
	if res.err != nil {
		t.Fatalf("ListenTCP: %v", res.err)
	}
	server := res.conn
	defer server.Close()

	msgs := [][]byte{[]byte("a"), []byte("bb"), bytes.Repeat([]byte{0xEE}, 1500)}
	for _, m := range msgs {
		if err := client.Send(m); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < len(msgs); {
		if p, ok := server.TryRecv(); ok {
			if !bytes.Equal(p, msgs[i]) {
				t.Fatalf("message %d mismatch (%d bytes vs %d)", i, len(p), len(msgs[i]))
			}
			i++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for message %d", i)
		}
		time.Sleep(time.Millisecond)
	}
}
