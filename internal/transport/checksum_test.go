package transport

import (
	"testing"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

func TestChecksumRoundTrip(t *testing.T) {
	lower := &reuseConn{}
	c := NewChecksum(lower)

	if err := c.Send([]byte("payload")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if len(lower.sent) != 1 {
		t.Fatalf("sent %d frames, want 1", len(lower.sent))
	}
	frame := lower.sent[0]
	if len(frame) != len("payload")+checksumTrailerLen {
		t.Fatalf("frame length = %d, want payload+%d trailer", len(frame), checksumTrailerLen)
	}

	// A clean frame round-trips with the trailer stripped.
	lower.push(frame)
	got, ok := c.TryRecv()
	if !ok || string(got) != "payload" {
		t.Fatalf("TryRecv = %q/%v, want payload", got, ok)
	}

	// A single flipped bit anywhere — body or trailer — discards the frame.
	for _, bit := range []int{0, len(frame)*8 - 1} {
		bad := append([]byte(nil), frame...)
		bad[bit/8] ^= 1 << (bit % 8)
		lower.push(bad)
	}
	// Frames too short to carry a trailer are discarded, not sliced OOB.
	lower.push([]byte{1, 2, 3})
	if p, ok := c.TryRecv(); ok {
		t.Fatalf("corrupted/short frame delivered: %q", p)
	}
	if got := c.Discarded(); got != 3 {
		t.Errorf("Discarded = %d, want 3", got)
	}

	// A good frame queued behind corrupted ones is still reachable in one
	// TryRecv call (corruption behaves as loss, not head-of-line blocking).
	bad := append([]byte(nil), frame...)
	bad[2] ^= 0x10
	lower.push(bad)
	lower.push(frame)
	got, ok = c.TryRecv()
	if !ok || string(got) != "payload" {
		t.Fatalf("TryRecv behind corrupt frame = %q/%v, want payload", got, ok)
	}
}

// TestChecksumDiscardsNetemCorruption runs the full stack — simnet link with
// a netem shaper whose Corrupt knob flips bits — and checks that every
// delivered-but-corrupted datagram is discarded while clean ones get through.
func TestChecksumDiscardsNetemCorruption(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	rawA, rawB, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	fwd := netem.Config{Delay: time.Millisecond, Corrupt: 0.5, Seed: 11}
	rev := fwd
	rev.Seed = 12
	emAB, _ := netem.Install(n, "a", "b", fwd, rev)

	a := NewChecksum(rawA)
	b := NewChecksum(rawB)

	const count = 200
	got := 0
	done := v.Go(func() {
		for i := 0; i < count; i++ {
			if err := a.Send([]byte{byte(i), byte(i >> 8), 0xAB}); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
			v.Sleep(time.Millisecond)
		}
		v.Sleep(10 * time.Millisecond)
		for {
			if _, ok := b.TryRecv(); !ok {
				break
			}
			got++
		}
	})
	<-done

	corrupted := emAB.Corrupted()
	if corrupted == 0 {
		t.Fatal("netem corrupted nothing; test exercises no corruption path")
	}
	if b.Discarded() != corrupted {
		t.Errorf("Discarded = %d, want %d (every corrupted datagram dropped)", b.Discarded(), corrupted)
	}
	if got != count-corrupted {
		t.Errorf("delivered %d datagrams, want %d (all clean ones)", got, count-corrupted)
	}
}
