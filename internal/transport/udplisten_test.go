package transport

import (
	"testing"
	"time"
)

func TestUDPListenerKnownPeer(t *testing.T) {
	lst, err := ListenUDPAddr("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer lst.Close()

	client, err := DialUDP("127.0.0.1:0", lst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	server, err := lst.Conn(client.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}

	if err := server.Send([]byte("hi client")); err != nil {
		t.Fatal(err)
	}
	if p := waitRecv(t, client, 2*time.Second); string(p) != "hi client" {
		t.Fatalf("client got %q", p)
	}
	if err := client.Send([]byte("hi server")); err != nil {
		t.Fatal(err)
	}
	if p := waitRecv(t, server, 2*time.Second); string(p) != "hi server" {
		t.Fatalf("server got %q", p)
	}
	// The known peer must not surface through Accept.
	if c, ok := lst.TryAccept(); ok {
		t.Fatalf("known peer surfaced via Accept: %v", c.RemoteAddr())
	}
}

func TestUDPListenerAcceptsUnknownSender(t *testing.T) {
	lst, err := ListenUDPAddr("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer lst.Close()

	stranger, err := DialUDP("127.0.0.1:0", lst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if err := stranger.Send([]byte("join please")); err != nil {
		t.Fatal(err)
	}

	acceptCh := make(chan *UDPPeerConn, 1)
	go func() {
		c, ok := lst.Accept()
		if ok {
			acceptCh <- c
		}
	}()
	select {
	case c := <-acceptCh:
		if p := waitRecv(t, c, 2*time.Second); string(p) != "join please" {
			t.Fatalf("accepted conn got %q", p)
		}
		if c.RemoteAddr() != stranger.LocalAddr() {
			t.Fatalf("remote addr %s, want %s", c.RemoteAddr(), stranger.LocalAddr())
		}
		// Bidirectional after accept.
		if err := c.Send([]byte("welcome")); err != nil {
			t.Fatal(err)
		}
		if p := waitRecv(t, stranger, 2*time.Second); string(p) != "welcome" {
			t.Fatalf("stranger got %q", p)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Accept never fired")
	}
}

func TestUDPListenerMultiplePeersIsolated(t *testing.T) {
	lst, err := ListenUDPAddr("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer lst.Close()

	a, err := DialUDP("127.0.0.1:0", lst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialUDP("127.0.0.1:0", lst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	connA, err := lst.Conn(a.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	connB, err := lst.Conn(b.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send([]byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if p := waitRecv(t, connA, 2*time.Second); string(p) != "from-a" {
		t.Fatalf("connA got %q (cross-peer leak?)", p)
	}
	if p := waitRecv(t, connB, 2*time.Second); string(p) != "from-b" {
		t.Fatalf("connB got %q (cross-peer leak?)", p)
	}
	if _, ok := connA.TryRecv(); ok {
		t.Fatal("connA received a second datagram; demux leaked")
	}
}

func TestUDPPeerConnCloseDetaches(t *testing.T) {
	lst, err := ListenUDPAddr("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer lst.Close()
	client, err := DialUDP("127.0.0.1:0", lst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	c, err := lst.Conn(client.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	// A fresh datagram from the same source re-surfaces via Accept (the
	// peer was forgotten).
	if err := client.Send([]byte("again")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := lst.TryAccept(); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("closed peer did not re-surface through Accept")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPListenerCloseUnblocksAccept(t *testing.T) {
	lst, err := ListenUDPAddr("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := lst.Accept()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	if err := lst.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Accept returned a conn after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
	if _, err := lst.Conn("127.0.0.1:1"); err != ErrClosed {
		t.Fatalf("Conn after Close = %v, want ErrClosed", err)
	}
}

// waitRecv polls a Conn until a datagram arrives or the deadline passes.
func waitRecv(t *testing.T, c Conn, d time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if p, ok := c.TryRecv(); ok {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for a datagram")
		}
		time.Sleep(time.Millisecond)
	}
}
