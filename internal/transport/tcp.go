package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPConn carries datagrams over a real TCP stream using 4-byte big-endian
// length prefixes. It is the live-network counterpart of the ARQ baseline:
// reliable and ordered, hence subject to head-of-line blocking under loss.
// Nagle's algorithm is disabled so small lockstep messages leave immediately.
type TCPConn struct {
	sock net.Conn

	writeMu sync.Mutex

	mu     sync.Mutex
	queue  [][]byte
	closed bool
	done   chan struct{}
}

// DialTCP connects to remoteAddr.
func DialTCP(remoteAddr string) (*TCPConn, error) {
	sock, err := net.Dial("tcp", remoteAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp: %w", err)
	}
	return newTCP(sock), nil
}

// ListenTCP accepts exactly one connection on localAddr and returns it. It
// is a convenience for the two-player sessions this system targets.
func ListenTCP(localAddr string) (*TCPConn, error) {
	l, err := net.Listen("tcp", localAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp: %w", err)
	}
	defer l.Close()
	sock, err := l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return newTCP(sock), nil
}

func newTCP(sock net.Conn) *TCPConn {
	if tc, ok := sock.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c := &TCPConn{sock: sock, done: make(chan struct{})}
	go c.readLoop()
	return c
}

func (c *TCPConn) readLoop() {
	defer close(c.done)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c.sock, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxDatagram {
			return // corrupt or hostile framing: give up
		}
		p := make([]byte, n)
		if _, err := io.ReadFull(c.sock, p); err != nil {
			return
		}
		c.mu.Lock()
		if !c.closed {
			if len(c.queue) >= udpQueueLen {
				c.queue = c.queue[1:]
			}
			c.queue = append(c.queue, p)
		}
		c.mu.Unlock()
	}
}

// Send implements Conn.
func (c *TCPConn) Send(p []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if len(p) > maxDatagram {
		return fmt.Errorf("transport: datagram of %d bytes exceeds limit", len(p))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.sock.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: tcp write: %w", err)
	}
	if _, err := c.sock.Write(p); err != nil {
		return fmt.Errorf("transport: tcp write: %w", err)
	}
	return nil
}

// TryRecv implements Conn.
func (c *TCPConn) TryRecv() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p, true
}

// Close implements Conn.
func (c *TCPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.sock.Close()
	<-c.done
	return err
}

// LocalAddr implements Conn.
func (c *TCPConn) LocalAddr() string { return c.sock.LocalAddr().String() }

// RemoteAddr implements Conn.
func (c *TCPConn) RemoteAddr() string { return c.sock.RemoteAddr().String() }

var _ Conn = (*TCPConn)(nil)
