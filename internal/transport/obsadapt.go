package transport

import "retrolock/internal/obs"

// Series names published by the transport adapters. The chaos harness and
// experiment tables rebuild ARQStats / discard counts from these, so wire
// bookkeeping flows through the registry instead of ad-hoc struct plumbing.
const (
	MetricARQUnacked    = "retrolock_arq_unacked"
	MetricARQOOO        = "retrolock_arq_ooo"
	MetricARQReady      = "retrolock_arq_ready"
	MetricARQRetrans    = "retrolock_arq_retransmissions"
	MetricARQFarDropped = "retrolock_arq_far_dropped"

	MetricChecksumDiscarded = "retrolock_checksum_discarded"
)

// RegisterARQMetrics publishes an ARQ connection's counters and buffer
// gauges. Each closure takes the connection mutex briefly, so scrapes are
// safe while the connection is being driven.
func RegisterARQMetrics(r *obs.Registry, labels obs.Labels, c *ARQConn) {
	r.GaugeFunc(MetricARQUnacked, labels, "segments awaiting acknowledgement (sender window)", func() float64 { return float64(c.Unacked()) })
	r.GaugeFunc(MetricARQOOO, labels, "out-of-order segments buffered at the receiver", func() float64 { return float64(c.Stats().OOO) })
	r.GaugeFunc(MetricARQReady, labels, "in-order segments delivered but not yet consumed", func() float64 { return float64(c.Stats().Ready) })
	r.CounterFunc(MetricARQRetrans, labels, "lifetime timeout retransmissions", func() float64 { return float64(c.Retransmissions()) })
	r.CounterFunc(MetricARQFarDropped, labels, "data segments dropped beyond the receive horizon", func() float64 { return float64(c.Stats().FarDropped) })
}

// ARQStatsFromSnapshot reassembles an ARQStats from the series
// RegisterARQMetrics publishes under labels.
func ARQStatsFromSnapshot(snap obs.Snapshot, labels obs.Labels) ARQStats {
	g := func(name string) float64 { return snap[obs.Key(name, labels)] }
	return ARQStats{
		Unacked:         int(g(MetricARQUnacked)),
		OOO:             int(g(MetricARQOOO)),
		Ready:           int(g(MetricARQReady)),
		Retransmissions: int(g(MetricARQRetrans)),
		FarDropped:      int(g(MetricARQFarDropped)),
	}
}

// RegisterChecksumMetrics publishes a checksum wrapper's discard counter.
func RegisterChecksumMetrics(r *obs.Registry, labels obs.Labels, c *ChecksumConn) {
	r.CounterFunc(MetricChecksumDiscarded, labels, "datagrams dropped by CRC verification", func() float64 { return float64(c.Discarded()) })
}

// ChecksumDiscardedFrom reads the discard counter back out of a snapshot.
func ChecksumDiscardedFrom(snap obs.Snapshot, labels obs.Labels) int {
	return int(snap[obs.Key(MetricChecksumDiscarded, labels)])
}
