package transport

import (
	"retrolock/internal/capture"
	"retrolock/internal/vclock"
)

// TapConn wraps a Conn and mirrors every datagram into a capture.Recorder —
// the transport-level hook of the RKCP capture pipeline. It sits below
// whatever reliability layer the session stacks on top (tap first, then
// ARQ), so a capture shows the wire as it actually looked: retransmissions,
// duplicates and all.
//
// The tap adds two clock reads and one bounded copy per datagram and
// allocates nothing in steady state (the recorder's budgets are
// preallocated), so it is safe to leave attached on the sync hot path — the
// CI allocation gate runs with it on.
type TapConn struct {
	inner Conn
	clock vclock.Clock
	site  int
	rec   *capture.Recorder
}

// NewTap wraps inner so every send and receive is recorded against site.
// A nil recorder yields a pass-through tap.
func NewTap(inner Conn, clock vclock.Clock, site int, rec *capture.Recorder) *TapConn {
	return &TapConn{inner: inner, clock: clock, site: site, rec: rec}
}

// Send implements Conn.
func (c *TapConn) Send(p []byte) error {
	c.rec.Record(c.clock.Now(), capture.DirSend, c.site, p)
	return c.inner.Send(p)
}

// TryRecv implements Conn. The returned slice keeps the inner connection's
// borrow contract (valid until the next TryRecv); the recorder copies the
// payload before returning.
func (c *TapConn) TryRecv() ([]byte, bool) {
	p, ok := c.inner.TryRecv()
	if ok {
		c.rec.Record(c.clock.Now(), capture.DirRecv, c.site, p)
	}
	return p, ok
}

// Close implements Conn.
func (c *TapConn) Close() error { return c.inner.Close() }

// LocalAddr implements Conn.
func (c *TapConn) LocalAddr() string { return c.inner.LocalAddr() }

// RemoteAddr implements Conn.
func (c *TapConn) RemoteAddr() string { return c.inner.RemoteAddr() }

var _ Conn = (*TapConn)(nil)
