package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"time"

	"retrolock/internal/netem"
	"retrolock/internal/simnet"
	"retrolock/internal/vclock"
)

// reuseConn is a fake lower Conn whose TryRecv hands every queued datagram
// out in the same backing buffer, the way a transport with a receive ring
// (recvmmsg, io_uring) legitimately may. The Conn contract says the caller
// owns the returned slice, so reuseConn models a *misbehaving* lower layer —
// exactly the aliasing hazard the ARQ ingest path must be immune to by
// copying payloads before queueing them.
type reuseConn struct {
	queue [][]byte
	buf   []byte
	sent  [][]byte
}

func (c *reuseConn) push(p []byte) { c.queue = append(c.queue, append([]byte(nil), p...)) }

func (c *reuseConn) Send(p []byte) error {
	c.sent = append(c.sent, append([]byte(nil), p...))
	return nil
}

func (c *reuseConn) TryRecv() ([]byte, bool) {
	if len(c.queue) == 0 {
		return nil, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	if cap(c.buf) < len(p) {
		c.buf = make([]byte, len(p))
	}
	c.buf = c.buf[:len(p)]
	copy(c.buf, p)
	return c.buf, true
}

func (c *reuseConn) Close() error       { return nil }
func (c *reuseConn) LocalAddr() string  { return "reuse-local" }
func (c *reuseConn) RemoteAddr() string { return "reuse-remote" }

// dataSegment encodes an ARQ data segment with the given sequence.
func dataSegment(seq uint32, payload string) []byte {
	buf := make([]byte, arqHeaderLen+len(payload))
	buf[0] = arqData
	binary.BigEndian.PutUint32(buf[1:5], seq)
	copy(buf[arqHeaderLen:], payload)
	return buf
}

// ackSegment encodes a cumulative ack carrying next-expected seq.
func ackSegment(seq uint32) []byte {
	var buf [arqHeaderLen]byte
	buf[0] = arqAck
	binary.BigEndian.PutUint32(buf[1:5], seq)
	return buf[:]
}

func TestARQCopiesPayloadsFromBufferReusingConn(t *testing.T) {
	lower := &reuseConn{}
	arq := NewARQ(lower, vclock.NewVirtual(epoch), time.Hour)

	// Deliver seq 1 first (buffered out of order), then seq 0. With the
	// pre-fix aliasing, both queued payloads point into lower.buf, which
	// the second datagram overwrites.
	lower.push(dataSegment(1, "BBBB"))
	lower.push(dataSegment(0, "AAAA"))

	got1, ok := arq.TryRecv()
	if !ok || string(got1) != "AAAA" {
		t.Fatalf("first = %q/%v, want AAAA", got1, ok)
	}
	got2, ok := arq.TryRecv()
	if !ok || string(got2) != "BBBB" {
		t.Fatalf("second = %q/%v, want BBBB (payload corrupted by buffer reuse)", got2, ok)
	}
	// The delivered slices must survive further buffer churn, too.
	lower.push(dataSegment(2, "CCCC"))
	if _, ok := arq.TryRecv(); !ok {
		t.Fatal("third datagram not delivered")
	}
	if string(got1) != "AAAA" || string(got2) != "BBBB" {
		t.Fatalf("earlier payloads mutated after more traffic: %q %q", got1, got2)
	}
}

func TestARQBoundsOutOfOrderBuffer(t *testing.T) {
	lower := &reuseConn{}
	arq := NewARQ(lower, vclock.NewVirtual(epoch), time.Hour)

	// A corrupted header can carry any sequence. Far-future sequences
	// (beyond the sender-window horizon) must be dropped and counted, not
	// buffered forever.
	const injected = 64
	for i := 0; i < injected; i++ {
		seq := uint32(DefaultSenderWindow + 1 + i*1000)
		lower.push(dataSegment(seq, "garbage"))
	}
	arq.Flush()
	st := arq.Stats()
	if st.OOO != 0 {
		t.Errorf("ooo buffer holds %d far-future segments, want 0", st.OOO)
	}
	if st.FarDropped != injected {
		t.Errorf("FarDropped = %d, want %d", st.FarDropped, injected)
	}

	// In-window out-of-order segments are still buffered normally.
	lower.push(dataSegment(3, "ok"))
	arq.Flush()
	if st := arq.Stats(); st.OOO != 1 {
		t.Errorf("in-window segment not buffered: ooo = %d, want 1", st.OOO)
	}
	// The horizon is relative to expected: right at the boundary drops,
	// one inside is kept.
	lower.push(dataSegment(uint32(DefaultSenderWindow), "edge"))
	lower.push(dataSegment(uint32(DefaultSenderWindow)-1, "inside"))
	arq.Flush()
	st = arq.Stats()
	if st.OOO != 2 {
		t.Errorf("ooo = %d after boundary probes, want 2 (edge dropped, inside kept)", st.OOO)
	}
	if st.FarDropped != injected+1 {
		t.Errorf("FarDropped = %d, want %d", st.FarDropped, injected+1)
	}
}

func TestARQReceiveAcrossSequenceWrap(t *testing.T) {
	lower := &reuseConn{}
	arq := NewARQ(lower, vclock.NewVirtual(epoch), time.Hour)
	start := uint32(math.MaxUint32 - 2) // 3 segments before the wrap
	arq.expected = start

	// Deliver six segments spanning the wrap, shuffled.
	order := []uint32{start + 1, start + 3, start, start + 5, start + 2, start + 4}
	for _, seq := range order {
		lower.push(dataSegment(seq, fmt.Sprintf("p%d", seq-start)))
	}
	var got []string
	for {
		p, ok := arq.TryRecv()
		if !ok {
			break
		}
		got = append(got, string(p))
	}
	want := []string{"p0", "p1", "p2", "p3", "p4", "p5"}
	if len(got) != len(want) {
		t.Fatalf("delivered %d segments %v, want %d (wrapped seqs mistaken for duplicates)", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %q, want %q", i, got[i], want[i])
		}
	}
	if arq.expected != start+6 {
		t.Errorf("expected = %d, want %d (wrapped)", arq.expected, start+6)
	}
}

func TestARQAckAcrossSequenceWrap(t *testing.T) {
	lower := &reuseConn{}
	arq := NewARQ(lower, vclock.NewVirtual(epoch), time.Hour)
	arq.nextSeq = math.MaxUint32 - 1

	// Two segments straddle the wrap: seqs MaxUint32-1 and MaxUint32.
	for i := 0; i < 2; i++ {
		if err := arq.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if got := arq.Unacked(); got != 2 {
		t.Fatalf("Unacked = %d before ack, want 2", got)
	}
	// A cumulative ack from after the wrap (next expected = 0) covers
	// both pre-wrap segments. With plain >= comparison they would look
	// "not yet acked" forever and retransmit for the rest of the session.
	lower.push(ackSegment(0))
	arq.Flush()
	if got := arq.Unacked(); got != 0 {
		t.Errorf("Unacked = %d after wrapped cumulative ack, want 0", got)
	}

	// And an ack must never free segments it does not cover: send one
	// more (seq 0 after the wrap) and re-deliver the stale ack.
	if err := arq.Send([]byte{9}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	lower.push(ackSegment(0))
	arq.Flush()
	if got := arq.Unacked(); got != 1 {
		t.Errorf("Unacked = %d, want 1 (stale ack must not cover seq 0)", got)
	}
}

// TestARQWrapUnderLoss drives a full sender/receiver pair across the wrap
// through a lossy, jittery emulated link, checking end-to-end exactly-once
// in-order delivery with retransmission on both sides of the boundary.
func TestARQWrapUnderLoss(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := simnet.New(v)
	rawA, rawB, err := SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	fwd, rev := netem.Symmetric(30*time.Millisecond, 5*time.Millisecond, 0.2, 77)
	netem.Install(n, "a", "b", fwd, rev)

	arqA := NewARQ(rawA, v, 80*time.Millisecond)
	arqB := NewARQ(rawB, v, 80*time.Millisecond)
	start := uint32(math.MaxUint32 - 7) // 8 segments before the wrap
	arqA.nextSeq = start
	arqB.expected = start

	const count = 64
	done := v.Go(func() {
		sent, got := 0, 0
		deadline := v.Now().Add(time.Minute)
		for got < count && v.Now().Before(deadline) {
			if sent < count {
				if err := arqA.Send([]byte{byte(sent)}); err != nil {
					t.Errorf("Send %d: %v", sent, err)
				}
				sent++
			}
			for {
				p, ok := arqB.TryRecv()
				if !ok {
					break
				}
				if !bytes.Equal(p, []byte{byte(got)}) {
					t.Fatalf("datagram %d = %v, want [%d]", got, p, got)
				}
				got++
			}
			arqA.Flush()
			v.Sleep(2 * time.Millisecond)
		}
		if got != count {
			t.Fatalf("delivered %d/%d across the wrap", got, count)
		}
	})
	<-done
	if arqA.Retransmissions() == 0 {
		t.Error("no retransmissions despite 20%% loss; wrap path untested under recovery")
	}
}
