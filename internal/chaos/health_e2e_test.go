package chaos_test

import (
	"reflect"
	"testing"
	"time"

	"retrolock/internal/chaos"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
)

// rttRamp is the ISSUE's acceptance scenario: a clean warm-up, then the link
// RTT ramps to ~100 ms (inside the paper's warning band), then past the
// ~140 ms feasibility cliff to ~200 ms, then heals. The health engine runs
// on site 0 every 2 s of frames. The non-RTT thresholds are pushed out of
// reach so the test isolates the RTT signal: under a 200 ms RTT the skew and
// frame-time signals would also (correctly) trip, but then the flip frames
// would depend on which signal crosses first.
func rttRamp(seed int64, frames int) chaos.Scenario {
	far := 24 * time.Hour
	return chaos.Scenario{
		Name:        "rtt-ramp",
		Seed:        seed,
		Frames:      frames,
		HealthEvery: 120, // one window per 2 s of frames
		Health: &obs.HealthConfig{
			SkewDegraded:          far,
			SkewInfeasible:        2 * far,
			FrameDegradedMargin:   far,
			FrameInfeasibleMargin: 2 * far,
			RetransDegraded:       1e9,
			RetransInfeasible:     2e9,
		},
		Phases: []chaos.Phase{
			// ~20 ms RTT: median bucket bound 33.5 ms, well under the
			// 112 ms warning band -> healthy.
			{Name: "clean", Duration: 10 * time.Second,
				AB:           &netem.Config{Delay: 10 * time.Millisecond},
				BA:           &netem.Config{Delay: 10 * time.Millisecond},
				WantProgress: true},
			// ~100 ms RTT: bucket bound 134.2 ms, inside [112, 140) ->
			// degraded. One-way 50 ms stays under the 100 ms local-lag
			// budget, so pacing is unharmed.
			{Name: "rtt-100", Duration: 10 * time.Second,
				AB:           &netem.Config{Delay: 50 * time.Millisecond},
				BA:           &netem.Config{Delay: 50 * time.Millisecond},
				WantProgress: true},
			// ~200 ms RTT: bucket bound 268 ms, past the 140 ms cliff ->
			// infeasible.
			{Name: "rtt-200", Duration: 10 * time.Second,
				AB:           &netem.Config{Delay: 100 * time.Millisecond},
				BA:           &netem.Config{Delay: 100 * time.Millisecond},
				WantProgress: true},
			// Healed tail: RecoverAfter (3) consecutive healthy windows
			// must walk the verdict back to healthy.
			{Name: "heal",
				AB:           &netem.Config{Delay: 10 * time.Millisecond},
				BA:           &netem.Config{Delay: 10 * time.Millisecond},
				WantProgress: true},
		},
	}
}

// TestHealthRTTRampE2E drives the RTT ramp end to end and checks the health
// verdict flips healthy -> degraded -> infeasible at the expected points of
// the ramp, recovers after the heal, and that the whole trajectory is
// bit-identical across runs (virtual time makes the flip frames exact).
func TestHealthRTTRampE2E(t *testing.T) {
	const frames = 3600 // 60 s at 60 fps: 10 s per fault phase + 30 s heal
	sc := rttRamp(7, frames)

	r, err := chaos.Run(sc)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("verify failed: %v", err)
	}

	want := []struct{ from, to obs.HealthState }{
		{obs.Healthy, obs.Degraded},
		{obs.Degraded, obs.Infeasible},
		{obs.Infeasible, obs.Healthy},
	}
	if len(r.Health) != len(want) {
		t.Fatalf("health transitions = %+v, want exactly %d (healthy->degraded->infeasible->healthy)",
			r.Health, len(want))
	}
	for i, w := range want {
		if r.Health[i].From != w.from || r.Health[i].To != w.to {
			t.Fatalf("transition %d = %v->%v at frame %d, want %v->%v",
				i, r.Health[i].From, r.Health[i].To, r.Health[i].Frame, w.from, w.to)
		}
	}

	// The flips must land on evaluation frames inside the right phases.
	// Phases start at frames ~600 / ~1200 / ~1800; each flip needs one
	// full bad window after the boundary, and recovery needs RecoverAfter
	// healthy windows after the heal.
	checkFrame := func(i int, lo, hi int) {
		f := r.Health[i].Frame
		if f%sc.HealthEvery != 0 {
			t.Errorf("transition %d at frame %d, not on the %d-frame evaluation cadence",
				i, f, sc.HealthEvery)
		}
		if f < lo || f > hi {
			t.Errorf("transition %d at frame %d, want within [%d, %d]", i, f, lo, hi)
		}
	}
	checkFrame(0, 600, 960)   // degraded: shortly into rtt-100
	checkFrame(1, 1200, 1560) // infeasible: shortly into rtt-200
	checkFrame(2, 1800, 3000) // healthy: heal + 3 recovery windows

	if r.HealthFinal != obs.Healthy {
		t.Fatalf("final health = %v, want healthy (signals %+v)", r.HealthFinal, r.HealthWindow)
	}
	if r.HealthWindow.Window == 0 || r.HealthWindow.RTTp50 == 0 {
		t.Fatalf("final health window looks empty: %+v", r.HealthWindow)
	}

	// The journals must have closed real cross-site latency observations on
	// both sites — the spans ran over the genuine transport stack.
	for site, j := range r.Journals {
		if j == nil || j.Cross == nil || j.Cross.Count() == 0 {
			t.Fatalf("site %d journal recorded no cross-site latency", site)
		}
		if j.Local.Count() == 0 || j.Skew.Count() == 0 {
			t.Fatalf("site %d journal missing local/skew observations", site)
		}
	}

	// Bit-identical re-run: same seed, same flip frames, same signals.
	r2, err := chaos.Run(sc)
	if err != nil {
		t.Fatalf("re-run failed: %v", err)
	}
	if !reflect.DeepEqual(r.Health, r2.Health) {
		t.Fatalf("health trajectory not deterministic:\n first %+v\nsecond %+v", r.Health, r2.Health)
	}
	if !reflect.DeepEqual(stripLive(r), stripLive(r2)) {
		t.Fatalf("reports differ between identical runs")
	}
}
