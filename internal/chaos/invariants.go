package chaos

import (
	"fmt"
	"strings"

	"retrolock/internal/core"
	"retrolock/internal/transport"
)

// ringSlack pads the input-ring bound for the frames a site executes from
// its own local lag while the window is at its widest.
const ringSlack = 64

// arqDrainSlack is the tolerated residue of unacked ARQ segments after a
// clean drain. The very last keepalives a site sends before exiting can no
// longer be acknowledged by anyone (the peer left, or we leave before the
// ack's round trip completes — the classic last-message problem), so a
// handful of trailing in-flight segments is correct behaviour; a backlog
// bigger than that means retransmission failed to recover.
const arqDrainSlack = 4

// MaxRingWindow is the invariant bound on the input ring's window for a
// session with the given local lag: the sync module never buffers beyond
// pointer + 2*lag + MaxInputsPerMsg, and the retired edge trails the
// pointer by at most the unacked backlog one message can cover, so the
// high-water mark is O(lag + MaxInputsPerMsg) no matter how long the
// session runs or how long a partition lasts.
func MaxRingWindow(lag int) int {
	return 4*lag + core.MaxInputsPerMsg + ringSlack
}

// Verify asserts the chaos invariant suite over a completed run and returns
// every violation joined into one error (nil when the run is clean):
//
//   - consistency: both sites produced the same state hash at every matched
//     frame and finished all requested frames
//   - liveness: every WantProgress phase was entered and executed frames on
//     both sites
//   - bounded memory: the input ring window stays under MaxRingWindow and,
//     in ARQ mode, the unacked / out-of-order buffers never exceed the
//     sender window, in every phase
//   - ack sanity: every partition direction lost all its traffic (the
//     scheduler really cut the link), each site ended with all inputs
//     acknowledged, and in ARQ mode with at most a few trailing in-flight
//     keepalives unacknowledged
func (r *Report) Verify() error {
	var errs []string
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	// Consistency.
	if !r.Converged {
		fail("replicas diverged at frame %d (hashes %x vs %x)",
			r.MismatchFrame, r.FinalHashes[0], r.FinalHashes[1])
	}
	for site := 0; site < 2; site++ {
		if r.Frames[site] != r.Spec.Frames {
			fail("site %d executed %d/%d frames", site, r.Frames[site], r.Spec.Frames)
		}
	}

	// Per-phase liveness and memory bounds.
	ringBound := MaxRingWindow(r.Lag)
	for i, pr := range r.Phases {
		spec := r.Spec.Phases[i]
		if spec.WantProgress {
			if !pr.Entered {
				fail("phase %q promises progress but was never entered", pr.Name)
				continue
			}
			for site := 0; site < 2; site++ {
				if pr.Sites[site].Frames == 0 {
					fail("phase %q: site %d executed no frames", pr.Name, site)
				}
			}
		}
		if !pr.Entered {
			continue
		}
		for site := 0; site < 2; site++ {
			sp := pr.Sites[site]
			if sp.BufPeak > ringBound {
				fail("phase %q: site %d input ring peaked at %d frames (bound %d)",
					pr.Name, site, sp.BufPeak, ringBound)
			}
			if r.Spec.ARQ {
				if sp.Unacked > transport.DefaultSenderWindow {
					fail("phase %q: site %d ARQ unacked %d exceeds sender window %d",
						pr.Name, site, sp.Unacked, transport.DefaultSenderWindow)
				}
				if sp.OOO >= transport.DefaultSenderWindow {
					fail("phase %q: site %d ARQ ooo buffer %d reached the receive horizon %d",
						pr.Name, site, sp.OOO, transport.DefaultSenderWindow)
				}
			}
		}
		// The scheduler must actually have cut partitioned directions.
		if spec.PartitionAB && pr.AB.Dropped != pr.AB.Planned {
			fail("phase %q: AB partition leaked %d/%d packets",
				pr.Name, pr.AB.Planned-pr.AB.Dropped, pr.AB.Planned)
		}
		if spec.PartitionBA && pr.BA.Dropped != pr.BA.Planned {
			fail("phase %q: BA partition leaked %d/%d packets",
				pr.Name, pr.BA.Planned-pr.BA.Dropped, pr.BA.Planned)
		}
	}

	// Ack / retransmission sanity at the end of the run.
	for site := 0; site < 2; site++ {
		if !r.AllAcked[site] {
			fail("site %d finished with unacknowledged inputs", site)
		}
		if r.Spec.ARQ && r.ARQ[site].Unacked > arqDrainSlack {
			fail("site %d ARQ finished with %d unacked segments (> %d trailing keepalives)",
				site, r.ARQ[site].Unacked, arqDrainSlack)
		}
		if r.ARQ[site].FarDropped != 0 {
			// Checksums discard corrupted segments below the ARQ layer, so
			// a well-behaved peer can never trip the receive horizon.
			fail("site %d ARQ dropped %d far-future segments from a correct peer",
				site, r.ARQ[site].FarDropped)
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("chaos %s (seed %d): %d invariant violations:\n  %s",
		r.Spec.Name, r.Spec.Seed, len(errs), strings.Join(errs, "\n  "))
}
