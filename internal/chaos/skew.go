package chaos

import (
	"sync"
	"time"

	"retrolock/internal/vclock"
)

// SkewClock is a vclock.Clock that runs at a configurable rate relative to
// an inner clock, modelling a site whose oscillator is fast or slow: at rate
// 1.02 every inner second reads as 1.02 skewed seconds, and a requested
// Sleep(d) parks the caller for only d/1.02 of inner time. Rate changes
// re-anchor the mapping so skewed time never jumps, only changes slope —
// like a real crystal drifting, and unlike a step change, it cannot move
// time backwards.
//
// All arithmetic is deterministic, so a virtual-time run with a skewed site
// stays bit-reproducible.
type SkewClock struct {
	inner vclock.Clock

	mu          sync.Mutex
	rate        float64
	anchor      time.Time // skewed time at the last re-anchor
	anchorInner time.Time // inner time at the last re-anchor
}

// NewSkew wraps inner with the given rate (values <= 0 mean 1.0).
func NewSkew(inner vclock.Clock, rate float64) *SkewClock {
	if rate <= 0 {
		rate = 1
	}
	now := inner.Now()
	return &SkewClock{inner: inner, rate: rate, anchor: now, anchorInner: now}
}

// Now implements vclock.Clock.
func (s *SkewClock) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nowLocked(s.inner.Now())
}

func (s *SkewClock) nowLocked(inner time.Time) time.Time {
	return s.anchor.Add(time.Duration(float64(inner.Sub(s.anchorInner)) * s.rate))
}

// Sleep implements vclock.Clock: d of skewed time costs d/rate of inner
// time. A rate change during the sleep does not shorten or lengthen it; the
// new slope applies from the caller's next observation.
func (s *SkewClock) Sleep(d time.Duration) {
	s.mu.Lock()
	rate := s.rate
	s.mu.Unlock()
	if d > 0 {
		d = time.Duration(float64(d) / rate)
	}
	s.inner.Sleep(d)
}

// Rate reports the current rate.
func (s *SkewClock) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate
}

// SetRate changes the clock's slope, re-anchoring so the current skewed
// instant is preserved. Values <= 0 mean 1.0.
func (s *SkewClock) SetRate(rate float64) {
	if rate <= 0 {
		rate = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.inner.Now()
	s.anchor = s.nowLocked(now)
	s.anchorInner = now
	s.rate = rate
}

var _ vclock.Clock = (*SkewClock)(nil)
