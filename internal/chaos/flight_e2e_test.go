package chaos_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"retrolock/internal/chaos"
	"retrolock/internal/core"
	"retrolock/internal/flight"
)

// TestCorruptionProducesTriageableBundle is the flight recorder's end-to-end
// acceptance test: a single-byte state corruption injected into one site of
// an otherwise healthy two-site chaos session must (a) trip the hash-exchange
// divergence detector, (b) auto-write incident bundles, and (c) triage down —
// offline, from the bundles alone — to the exact injected frame and the
// poked RAM address.
func TestCorruptionProducesTriageableBundle(t *testing.T) {
	const (
		pokeFrame = 500
		pokeAddr  = 0x7ABC
		pokeXOR   = 0x5A
	)
	dir := t.TempDir()
	sc := chaos.Scenario{
		Name:        "desync-e2e",
		Seed:        42,
		Frames:      1200,
		FlightDir:   dir,
		TraceEvents: 1 << 12,
		Corrupt:     &chaos.Corruption{Site: 1, Frame: pokeFrame, Addr: pokeAddr, XOR: pokeXOR},
	}
	_, err := chaos.Run(sc)
	if err == nil {
		t.Fatal("corrupted run completed cleanly; want a divergence failure")
	}
	var derr *core.DivergenceError
	if !errors.As(err, &derr) {
		t.Fatalf("run failed with %v, want a DivergenceError", err)
	}
	// The wire-level detection is HashInterval-grained: at or after the
	// injection, on a digest boundary.
	if derr.Frame < pokeFrame || derr.Frame >= pokeFrame+2*core.DefaultHashInterval {
		t.Fatalf("divergence detected at frame %d, injected at %d", derr.Frame, pokeFrame)
	}

	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.rkfb"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no incident bundles in %s (err=%v)", dir, err)
	}
	bundles := map[int]*flight.Bundle{}
	var all []*flight.Bundle
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := flight.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if b.Manifest.Kind != "desync" {
			t.Errorf("%s: incident kind %q, want desync", p, b.Manifest.Kind)
		}
		bundles[b.Manifest.Site] = b
		all = append(all, b)
	}
	corrupted, ok := bundles[1]
	if !ok {
		t.Fatalf("the corrupted site wrote no bundle; got %v", paths)
	}
	// The live-telemetry satellites ride along in the bundle: the desync
	// counter in the metrics snapshot and the incident event in the trace.
	if !bytes.Contains(corrupted.Metrics, []byte(core.MetricDesyncTotal)) {
		t.Error("bundle metrics snapshot lacks the desync counter")
	}
	if !bytes.Contains(corrupted.Trace, []byte("incident")) {
		t.Error("bundle trace lacks the incident event")
	}

	rep, err := flight.Analyze(all...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstDivergentFrame != pokeFrame {
		t.Fatalf("triage bisected frame %d (%s), injected frame was %d",
			rep.FirstDivergentFrame, rep.Method, pokeFrame)
	}
	if rep.NondeterministicSite != 1 {
		t.Fatalf("triage blamed site %d, corruption was on site 1", rep.NondeterministicSite)
	}
	var sa *flight.SiteAnalysis
	for i := range rep.Sites {
		if rep.Sites[i].Site == 1 {
			sa = &rep.Sites[i]
		}
	}
	if sa == nil || sa.ReplayErr != "" {
		t.Fatalf("no usable replay for site 1: %+v", rep.Sites)
	}
	if sa.Deterministic || sa.DeviationFrame != pokeFrame {
		t.Fatalf("site 1 deviation frame = %d (deterministic=%v), want %d",
			sa.DeviationFrame, sa.Deterministic, pokeFrame)
	}
	if len(sa.Diff) == 0 {
		t.Fatal("site 1 state diff is empty")
	}
	found := false
	for _, d := range sa.Diff {
		if d.Kind == flight.DiffRAM && d.Index == pokeAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("state diff does not name the poked address %#x: %v", pokeAddr, sa.Diff)
	}
	if len(rep.Timeline) == 0 {
		t.Error("merged timeline is empty despite tracing being on")
	}
}

// TestFlightDirEnvFallback pins the CI collection contract: with
// Scenario.FlightDir empty, bundles land in $RETROLOCK_FLIGHT_DIR.
func TestFlightDirEnvFallback(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("RETROLOCK_FLIGHT_DIR", dir)
	sc := chaos.Scenario{
		Name:    "desync-env",
		Seed:    7,
		Frames:  400,
		Corrupt: &chaos.Corruption{Site: 0, Frame: 100, Addr: 0x7AB0, XOR: 0x01},
	}
	if _, err := chaos.Run(sc); err == nil {
		t.Fatal("corrupted run completed cleanly")
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "flight-*.rkfb"))
	if len(paths) == 0 {
		t.Fatalf("no bundles in $RETROLOCK_FLIGHT_DIR (%s)", dir)
	}
}

// TestDumpFlightOnCleanRun covers the invariant-failure path's artifact hook:
// Report.DumpFlight flushes a manual-kind bundle per site even when no
// trigger fired in-session.
func TestDumpFlightOnCleanRun(t *testing.T) {
	r, err := chaos.Run(chaos.Scenario{Name: "clean dump!", Seed: 3, Frames: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := r.DumpFlight(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("DumpFlight wrote %d bundles, want 2", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := flight.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if b.Manifest.Kind != "manual" {
			t.Errorf("%s: kind %q, want manual", p, b.Manifest.Kind)
		}
		if len(b.Frames) == 0 {
			t.Errorf("%s: no frames recorded", p)
		}
	}
}
