package chaos

import (
	"time"

	"retrolock/internal/netem"
)

// wan returns a mildly jittery WAN direction, the baseline the fault phases
// perturb.
func wan() *netem.Config {
	return &netem.Config{Delay: 10 * time.Millisecond, Jitter: time.Millisecond}
}

// Soak is the default full-stack chaos scenario: a calm warm-up, a
// Gilbert-Elliott burst-loss storm, a duplicate/reorder storm, a bit-flip
// corruption phase, an asymmetric then a full partition, and a healed tail
// that runs until the requested frames complete. Partitions stay well under
// the 60 s SyncInput timeout, so the run must recover — and Verify checks
// that it does.
func Soak(seed int64, frames int) Scenario {
	return Scenario{
		Name:   "soak",
		Seed:   seed,
		Frames: frames,
		Phases: []Phase{
			{Name: "calm", Duration: 2 * time.Second,
				AB: wan(), BA: wan(), WantProgress: true},
			{Name: "burst-storm", Duration: 4 * time.Second,
				AB: &netem.Config{Delay: 15 * time.Millisecond, Jitter: 5 * time.Millisecond,
					Loss: 0.3, BurstLoss: true, MeanBurst: 16},
				BA: &netem.Config{Delay: 15 * time.Millisecond, Jitter: 5 * time.Millisecond,
					Loss: 0.3, BurstLoss: true, MeanBurst: 16},
				WantProgress: true},
			{Name: "dup-reorder", Duration: 3 * time.Second,
				AB: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond,
					Duplicate: 0.3, Reorder: 0.2},
				BA: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond,
					Duplicate: 0.3, Reorder: 0.2},
				WantProgress: true},
			{Name: "bit-corrupt", Duration: 3 * time.Second,
				AB:           &netem.Config{Delay: 10 * time.Millisecond, Corrupt: 0.3},
				BA:           &netem.Config{Delay: 10 * time.Millisecond, Corrupt: 0.3},
				WantProgress: true},
			{Name: "one-way-partition", Duration: 2 * time.Second,
				PartitionAB: true, BA: wan()},
			{Name: "full-partition", Duration: 2 * time.Second,
				PartitionAB: true, PartitionBA: true},
			{Name: "heal",
				AB: wan(), BA: wan(), WantProgress: true},
		},
	}
}

// SkewSoak stresses the frame pacer with clock-rate skew: site 1 runs 2%
// fast, then 2% slow, around a burst-loss storm, before healing. Lockstep
// must hold the sites together regardless — the fast site throttles on
// SyncInput, the slow one catches up via the master/slave pacer.
func SkewSoak(seed int64, frames int) Scenario {
	return Scenario{
		Name:   "skew-soak",
		Seed:   seed,
		Frames: frames,
		Phases: []Phase{
			{Name: "calm", Duration: 2 * time.Second,
				AB: wan(), BA: wan(), WantProgress: true},
			{Name: "skew-fast", Duration: 5 * time.Second,
				AB: wan(), BA: wan(), ClockRate: 1.02, WantProgress: true},
			{Name: "skew-slow-lossy", Duration: 5 * time.Second,
				AB: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond,
					Loss: 0.2, BurstLoss: true, MeanBurst: 8},
				BA: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond,
					Loss: 0.2, BurstLoss: true, MeanBurst: 8},
				ClockRate: 0.98, WantProgress: true},
			{Name: "heal",
				AB: wan(), BA: wan(), WantProgress: true},
		},
	}
}

// ARQSoak routes the same fault schedule as Soak through the reliable
// in-order transport, exercising the ARQ window, retransmission and
// out-of-order bounds under bursts, duplication, corruption and healed
// partitions.
func ARQSoak(seed int64, frames int) Scenario {
	sc := Soak(seed, frames)
	sc.Name = "arq-soak"
	sc.ARQ = true
	return sc
}
