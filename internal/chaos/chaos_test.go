package chaos_test

import (
	"flag"
	"reflect"
	"testing"
	"time"

	"retrolock/internal/chaos"
	"retrolock/internal/flight"
)

// stripLive drops the live flight-recorder handles before a determinism
// comparison: they hold registry/tracer state (function values, mutexes)
// that never compares equal across runs. Everything replayable — link
// stats, sync deltas, hashes, bundle paths — stays in the comparison.
func stripLive(r *chaos.Report) *chaos.Report {
	r.Flight = [2]*flight.Recorder{}
	return r
}

// Soak knobs: `make chaos` sweeps more seeds than the default test run.
//
//	go test ./internal/chaos/ -chaos.seeds 5 -chaos.frames 10000
var (
	soakSeeds  = flag.Int("chaos.seeds", 1, "seeds per scenario in the soak sweep")
	soakFrames = flag.Int("chaos.frames", 10000, "frames per soak run")
)

func soakLen(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 1500
	}
	return *soakFrames
}

// TestSoakScenarios drives every default scenario through its full fault
// schedule and asserts the invariant suite, plus spot checks that each fault
// phase actually did what its name claims.
func TestSoakScenarios(t *testing.T) {
	frames := soakLen(t)
	for _, sc := range []chaos.Scenario{
		chaos.Soak(1, frames),
		chaos.SkewSoak(2, frames),
		chaos.ARQSoak(3, frames),
	} {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r, err := chaos.Run(sc)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := r.Verify(); err != nil {
				t.Fatal(err)
			}
			checkPhaseEffects(t, r)
		})
	}
}

// checkPhaseEffects asserts each fault phase produced its signature traffic
// pattern, so a scheduler regression cannot silently turn the soak into a
// clean-link run that trivially passes.
func checkPhaseEffects(t *testing.T, r *chaos.Report) {
	t.Helper()
	for i, pr := range r.Phases {
		if !pr.Entered {
			t.Errorf("phase %q never entered (run too short for the schedule)", pr.Name)
			continue
		}
		spec := r.Spec.Phases[i]
		ab := spec.AB
		switch {
		case spec.PartitionAB:
			if pr.AB.Planned == 0 {
				t.Errorf("phase %q: no traffic offered to the partitioned direction", pr.Name)
			}
		case ab != nil && ab.Loss > 0:
			if pr.AB.Dropped == 0 {
				t.Errorf("phase %q: lossy link dropped nothing (%d planned)", pr.Name, pr.AB.Planned)
			}
		case ab != nil && ab.Duplicate > 0:
			if pr.AB.Duplicated == 0 || pr.AB.Reordered == 0 {
				t.Errorf("phase %q: dup/reorder storm produced dup=%d reorder=%d",
					pr.Name, pr.AB.Duplicated, pr.AB.Reordered)
			}
		case ab != nil && ab.Corrupt > 0:
			if pr.AB.Corrupted == 0 {
				t.Errorf("phase %q: corruption phase flipped no bits", pr.Name)
			}
			if pr.Sites[1].ChecksumDiscarded == 0 {
				t.Errorf("phase %q: receiver discarded no corrupted datagrams", pr.Name)
			}
		}
		if spec.ClockRate != 0 && spec.WantProgress {
			// Skewed phases must still make progress on both sites — that
			// is the point; Verify already asserts it. Nothing extra here.
			continue
		}
	}
	// The healed tail must carry the bulk of a long run.
	last := r.Phases[len(r.Phases)-1]
	if last.Sites[0].Frames == 0 || last.Sites[1].Frames == 0 {
		t.Errorf("heal phase executed no frames: %+v", last.Sites)
	}
}

// TestSoakSeedSweep is the soak mode: every scenario across several seeds,
// each run twice to prove the per-phase stats are bit-identical on re-run.
func TestSoakSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is the long soak; run make chaos")
	}
	frames := soakLen(t)
	for seed := 0; seed < *soakSeeds; seed++ {
		base := int64(seed)*1000 + 7
		for _, sc := range []chaos.Scenario{
			chaos.Soak(base, frames),
			chaos.ARQSoak(base+1, frames),
		} {
			sc := sc
			r1, err := chaos.Run(sc)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sc.Name, sc.Seed, err)
			}
			if err := r1.Verify(); err != nil {
				t.Error(err)
			}
			r2, err := chaos.Run(sc)
			if err != nil {
				t.Fatalf("%s seed %d rerun: %v", sc.Name, sc.Seed, err)
			}
			if !reflect.DeepEqual(stripLive(r1), stripLive(r2)) {
				t.Errorf("%s seed %d: re-run produced a different report\nfirst:  %+v\nsecond: %+v",
					sc.Name, sc.Seed, r1, r2)
			}
		}
	}
}

// TestRunDeterministic re-runs one scenario and requires the entire report —
// per-phase link stats, sync deltas, frame attribution, final hashes — to be
// bit-identical.
func TestRunDeterministic(t *testing.T) {
	sc := chaos.Soak(99, 2000)
	r1, err := chaos.Run(sc)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := chaos.Run(sc)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(stripLive(r1), stripLive(r2)) {
		t.Fatalf("reports differ across identical runs\nfirst:  %+v\nsecond: %+v", r1, r2)
	}
	if err := r1.Verify(); err != nil {
		t.Error(err)
	}
}

// TestPartitionOutlastingTimeoutFailsLoudly pins the fail-loudly contract:
// a partition longer than WaitTimeout must error out, not hang or pass.
func TestPartitionOutlastingTimeoutFailsLoudly(t *testing.T) {
	sc := chaos.Soak(5, 6000)
	sc.WaitTimeout = 3 * time.Second
	// Stretch the full partition far past the timeout.
	for i := range sc.Phases {
		if sc.Phases[i].Name == "full-partition" {
			sc.Phases[i].Duration = 10 * time.Second
		}
	}
	if _, err := chaos.Run(sc); err == nil {
		t.Fatal("run with a partition outlasting WaitTimeout succeeded; want a loud failure")
	}
}
