// Package chaos is a deterministic fault-injection harness for the sync
// stack. It composes time-scheduled fault phases — Gilbert-Elliott loss
// bursts, full or asymmetric partitions, bit-flip corruption, duplicate and
// reorder storms, clock-rate skew between sites — on top of internal/netem
// and internal/simnet, runs a complete two-site internal/core session
// through them in virtual time, and records enough per-phase state to assert
// a reusable invariant suite afterwards (see Report.Verify):
//
//   - state-hash agreement at every matched frame
//   - liveness: sites keep executing frames through phases that promise
//     progress (and after a partition heals), or the run fails loudly via
//     SyncInput's wait timeout
//   - bounded memory: the input ring window and the ARQ unacked /
//     out-of-order buffers stay within their designed bounds in every phase
//   - ack and retransmission sanity
//
// Everything — PRNGs, the event clock, phase boundaries — is seeded and
// virtual, so a scenario run twice produces bit-identical reports; a soak
// that passes once can never flake.
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/harness"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/span"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
	"retrolock/internal/vm"
)

// Epoch anchors every chaos run's virtual clock (the date of the paper's
// camera-ready, like the experiment harness).
var Epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// Phase is one timed segment of a scenario's fault schedule.
type Phase struct {
	// Name labels the phase in reports and failures.
	Name string

	// Duration is the phase's length in virtual time. The last phase of a
	// scenario runs until the sessions finish regardless of its Duration.
	Duration time.Duration

	// AB and BA shape the two link directions (site0->site1 and
	// site1->site0) for the duration of the phase. nil means a clean link
	// (simnet's minimum delay). The Seed field is overwritten by the
	// scheduler so each phase gets an independent, reproducible PRNG.
	AB, BA *netem.Config

	// PartitionAB / PartitionBA black-hole the respective direction for
	// the whole phase, overriding AB/BA. Setting one of them models an
	// asymmetric partition; both, a full one.
	PartitionAB, PartitionBA bool

	// ClockRate skews site 1's clock relative to real (virtual) time for
	// the duration of the phase: 1.02 runs it 2% fast, 0.98 slow. Zero
	// means 1.0 (no skew). Site 0 always runs on the true clock, so the
	// skew is a rate difference between the sites.
	ClockRate float64

	// WantProgress asserts (in Verify) that both sites executed at least
	// one frame during the phase. Set it on calm and healed phases; leave
	// it off for partitions, where lockstep is expected to stall.
	WantProgress bool
}

// Scenario is a complete chaos experiment: a session configuration plus a
// fault schedule.
type Scenario struct {
	Name string
	// Seed drives every PRNG in the run (per-phase link emulators and the
	// synthetic player inputs).
	Seed int64
	// Frames is how many frames each site executes (default 3600).
	Frames int
	// Game selects the ROM (default "pong").
	Game string
	// BufFrame overrides the local lag (0 = the paper's default 6).
	BufFrame int
	// WaitTimeout bounds each SyncInput wait (default 60s virtual); a
	// partition outlasting it fails the run loudly instead of hanging.
	WaitTimeout time.Duration
	// EmulationTime is the virtual CPU cost of one frame (default 2 ms).
	EmulationTime time.Duration
	// ARQ routes the session traffic through the reliable in-order
	// transport (transport.ARQConn) instead of raw datagrams.
	ARQ bool
	// ARQRto overrides the ARQ retransmission timeout (0 = default).
	ARQRto time.Duration
	// TraceEvents, when positive, attaches a fixed-capacity frame-event
	// tracer of that many slots to each site (plus the ARQ layer in ARQ
	// mode). The freshest events survive in Report.Traces; zero disables
	// tracing entirely.
	TraceEvents int
	// HealthEvery, when positive, runs the health SLO engine on site 0,
	// evaluating one window every HealthEvery frames. Transitions land in
	// Report.Health with the frame they were detected at — deterministic
	// under virtual time, so a scenario asserts exact flip frames.
	HealthEvery int
	// Health overrides the engine's thresholds (nil = obs defaults). Only
	// read when HealthEvery > 0.
	Health *obs.HealthConfig
	// Corrupt injects a single-byte state corruption into one site's
	// machine mid-session — a synthetic determinism bug that exercises the
	// hash-exchange divergence detector and the flight-recorder triage
	// pipeline end to end.
	Corrupt *Corruption
	// FlightDir is where each site's black box auto-writes its incident
	// bundle. Empty falls back to the RETROLOCK_FLIGHT_DIR environment
	// variable (how CI collects bundles from failing runs); when both are
	// empty the recorders still run (they are bounded and cheap) but write
	// nothing — Report.DumpFlight can still flush them afterwards.
	FlightDir string
	// Phases is the fault schedule. Empty means one clean 10 s phase.
	Phases []Phase
}

// HealthTransition is one health-engine state change, attributed to the
// frame whose evaluation detected it.
type HealthTransition struct {
	Frame    int
	From, To obs.HealthState
}

// Corruption is a deliberate mid-session divergence: before executing Frame
// on the given Site, the byte at Addr is XORed with XOR (which must be
// non-zero to have any effect). Pick an address the game never writes and
// the corruption persists into every later state hash.
type Corruption struct {
	Site  int
	Frame int
	Addr  uint16
	XOR   byte
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Frames == 0 {
		sc.Frames = 3600
	}
	if sc.Game == "" {
		sc.Game = "pong"
	}
	if sc.WaitTimeout == 0 {
		sc.WaitTimeout = 60 * time.Second
	}
	if sc.EmulationTime == 0 {
		sc.EmulationTime = 2 * time.Millisecond
	}
	if len(sc.Phases) == 0 {
		sc.Phases = []Phase{{Name: "clean", Duration: 10 * time.Second, WantProgress: true}}
	}
	return sc
}

// LinkPlan tracks the per-phase link emulators the scheduler installed, so
// callers can read each phase's traffic counters after the run.
type LinkPlan struct {
	// AB[i] / BA[i] are the emulators that shaped each direction during
	// phase i — nil if the run ended before the phase was entered.
	AB, BA []*netem.Emulator
}

// linkConfig resolves one direction of a phase to a concrete netem config.
func linkConfig(pc *netem.Config, partition bool, seed int64) netem.Config {
	var c netem.Config
	if pc != nil {
		c = *pc
	}
	if partition {
		// A partition is total loss: every packet consults the PRNG and
		// drops, so the schedule stays deterministic and the emulator's
		// counters record how much traffic the outage ate.
		c.Loss = 1
		c.BurstLoss = false
	}
	c.Seed = seed
	return c
}

// InstallPhases drives a fault schedule on the a<->b link: phase 0 is
// installed immediately and each later phase at its cumulative offset, with
// fresh per-phase emulators seeded from seed (so a phase's counters are
// exactly that phase's traffic). onEnter, when non-nil, runs at each phase
// entry with the freshly installed emulators — synchronously for phase 0
// (before any actor starts), and from a clock callback (all actors parked)
// for the rest — making it a safe place to snapshot cross-actor state or
// register the new emulators with a metrics registry.
//
// Phases scheduled past the end of the run (all actors gone) never fire;
// their LinkPlan slots stay nil.
func InstallPhases(v *vclock.Virtual, n *simnet.Network, a, b string, seed int64, phases []Phase, onEnter func(i int, ab, ba *netem.Emulator)) *LinkPlan {
	lp := &LinkPlan{
		AB: make([]*netem.Emulator, len(phases)),
		BA: make([]*netem.Emulator, len(phases)),
	}
	install := func(i int) {
		p := phases[i]
		base := seed + 1000*int64(i+1)
		lp.AB[i] = netem.New(linkConfig(p.AB, p.PartitionAB, base))
		lp.BA[i] = netem.New(linkConfig(p.BA, p.PartitionBA, base+500))
		n.SetLink(a, b, lp.AB[i])
		n.SetLink(b, a, lp.BA[i])
		if onEnter != nil {
			onEnter(i, lp.AB[i], lp.BA[i])
		}
	}
	install(0)
	cum := time.Duration(0)
	for i := 1; i < len(phases); i++ {
		cum += phases[i-1].Duration
		i := i
		v.ScheduleAfter(cum, func() { install(i) })
	}
	return lp
}

// LinkStats is one direction's traffic during one phase.
type LinkStats struct {
	Planned, Dropped, Duplicated, Reordered, Corrupted int
}

// linkLabels is the registry label set for one direction of one phase's
// emulator. Each phase gets its own emulator, so no deltas are needed: the
// final snapshot holds exactly that phase's traffic.
func linkLabels(dir string, phase int) obs.Labels {
	return obs.Labels{"dir": dir, "phase": fmt.Sprintf("%d", phase)}
}

// linkStatsFrom reads one phase-direction's counters out of a registry
// snapshot (all zero when the phase was never entered, i.e. never
// registered).
func linkStatsFrom(snap obs.Snapshot, dir string, phase int) LinkStats {
	p, d, dup, r, c := netem.LinkStatsFromSnapshot(snap, linkLabels(dir, phase))
	return LinkStats{Planned: p, Dropped: d, Duplicated: dup, Reordered: r, Corrupted: c}
}

// SitePhase is one site's activity during one phase. Message and frame
// fields are deltas over the phase; BufPeak/Unacked/OOO are gauges sampled
// at the phase's end.
type SitePhase struct {
	Frames     int
	FirstFrame time.Duration // first frame's offset from phase start; -1 if none ran

	MsgsSent, MsgsRcvd     int
	InputsFresh, InputsDup int
	Waits                  int
	ChecksumDiscarded      int
	Retransmissions        int // ARQ mode only

	BufPeak      int // input-ring window high-water mark so far
	Unacked, OOO int // ARQ buffer gauges at phase end
}

// PhaseReport is everything recorded about one phase of a run.
type PhaseReport struct {
	Name       string
	Entered    bool // false when the run finished before the phase began
	Start, End time.Duration
	AB, BA     LinkStats
	Sites      [2]SitePhase
}

// Report is the outcome of one chaos run.
type Report struct {
	Spec    Scenario
	Lag     int // resolved local lag (frames)
	Elapsed time.Duration
	Phases  []PhaseReport

	Frames        [2]int
	FinalHashes   [2]uint64
	Converged     bool
	MismatchFrame int // first diverging frame, -1 when converged

	AllAcked          [2]bool
	Sync              [2]core.Stats
	ARQ               [2]transport.ARQStats
	ChecksumDiscarded [2]int

	// Traces holds each site's frame-event ring when Spec.TraceEvents > 0
	// (nil otherwise). Export with obs.WriteChromeTrace / Tracer.WriteJSONL.
	Traces [2]*obs.Tracer

	// Journals holds each site's input-journey span journal (always on —
	// the stamping hot path is allocation-free).
	Journals [2]*span.Journal
	// Health is the site-0 health-engine outcome when Spec.HealthEvery > 0:
	// every state transition with the frame it was detected at, the final
	// verdict, and the last evaluated window's signals.
	Health       []HealthTransition
	HealthFinal  obs.HealthState
	HealthWindow obs.HealthSignals

	// Flight holds each site's black-box recorder; FlightBundles the
	// incident bundle paths auto-written during the run ("" when that site
	// wrote none).
	Flight        [2]*flight.Recorder
	FlightBundles [2]string
}

// DumpFlight flushes every site's black box into dir as a manual-kind
// bundle (the incident bundle verbatim when one already fired) and returns
// the written paths. The invariant suite's failure path calls this so a red
// chaos run leaves debuggable artifacts even when no trigger fired
// in-session.
func (r *Report) DumpFlight(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	name := strings.Map(func(c rune) rune {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			return c
		}
		return '-'
	}, r.Spec.Name)
	var out []string
	for site, rec := range r.Flight {
		if rec == nil {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("chaos-%s-site%d.rkfb", name, site))
		f, err := os.Create(path)
		if err != nil {
			return out, err
		}
		err = rec.Dump(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return out, err
		}
		out = append(out, path)
	}
	return out, nil
}

// snapshot is the cumulative cross-site state at one phase boundary: a
// point-in-time read of every series the run registered (sync counters, ARQ
// and checksum bookkeeping, per-phase link emulators).
type snapshot struct {
	at      time.Time
	entered bool
	snap    obs.Snapshot
}

// recorder attributes executed frames to the phase they ran in. Both site
// actors call frame concurrently, so it locks; the fields each site touches
// are its own, keeping the result independent of same-instant actor order.
type recorder struct {
	mu         sync.Mutex
	phase      int
	phaseStart time.Time
	frames     [][2]int
	firstAt    [][2]time.Duration
}

func newRecorder(phases int) *recorder {
	r := &recorder{
		frames:  make([][2]int, phases),
		firstAt: make([][2]time.Duration, phases),
	}
	for i := range r.firstAt {
		r.firstAt[i] = [2]time.Duration{-1, -1}
	}
	return r
}

func (r *recorder) enter(i int, now time.Time) {
	r.mu.Lock()
	r.phase = i
	r.phaseStart = now
	r.mu.Unlock()
}

func (r *recorder) frame(site int, now time.Time) {
	r.mu.Lock()
	p := r.phase
	if r.firstAt[p][site] < 0 {
		r.firstAt[p][site] = now.Sub(r.phaseStart)
	}
	r.frames[p][site]++
	r.mu.Unlock()
}

// costedMachine adds the configured per-frame emulation cost, on the site's
// own (possibly skewed) clock, and carries the scenario's corruption
// injection.
type costedMachine struct {
	*vm.Console
	clock   vclock.Clock
	cost    time.Duration
	corrupt *Corruption
}

func (m *costedMachine) StepFrame(input uint16) {
	if m.cost > 0 {
		m.clock.Sleep(m.cost)
	}
	if m.corrupt != nil && m.Console.FrameCount() == m.corrupt.Frame {
		// Flip the byte just before the frame executes, so the corruption
		// lands in exactly Frame's post-transition hash.
		m.Console.Poke(m.corrupt.Addr, m.Console.Peek(m.corrupt.Addr)^m.corrupt.XOR)
	}
	m.Console.StepFrame(input)
}

// Run executes one chaos scenario and returns its report. Errors surface
// loudly: a partition that outlasts WaitTimeout, a handshake that cannot
// complete, or any session failure aborts the run with the failing site and
// the phase it died in.
func Run(sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	v := vclock.NewVirtual(Epoch)
	n := simnet.New(v)

	raw0, raw1, err := transport.SimPair(n, "site0", "site1")
	if err != nil {
		return nil, err
	}
	// Every run models UDP's end-to-end checksum, so corruption phases
	// behave as loss to the protocol instead of silently diverging the
	// replicas (a single flipped bit in a sync message would otherwise be
	// merged as if it were the peer's real input).
	cks := [2]*transport.ChecksumConn{transport.NewChecksum(raw0), transport.NewChecksum(raw1)}

	skew := NewSkew(v, 1)
	clocks := [2]vclock.Clock{v, skew}
	conns := [2]transport.Conn{cks[0], cks[1]}
	var arqs [2]*transport.ARQConn
	if sc.ARQ {
		for i := range arqs {
			arqs[i] = transport.NewARQ(cks[i], clocks[i], sc.ARQRto)
			conns[i] = arqs[i]
		}
	}

	game, err := games.Load(sc.Game)
	if err != nil {
		return nil, err
	}
	// Every stat the report needs flows through one registry: the phase
	// snapshots below are registry snapshots, and the per-phase tables are
	// deltas between them.
	reg := obs.NewRegistry()
	flightDir := sc.FlightDir
	if flightDir == "" {
		flightDir = os.Getenv("RETROLOCK_FLIGHT_DIR")
	}
	romImage := game.Encode()
	var traces [2]*obs.Tracer
	var sessions [2]*core.Session
	var machines [2]*costedMachine
	var recorders [2]*flight.Recorder
	var sos [2]*obs.SessionObs
	var journals [2]*span.Journal
	for i := 0; i < 2; i++ {
		console, err := game.Boot()
		if err != nil {
			return nil, err
		}
		machines[i] = &costedMachine{Console: console, clock: clocks[i], cost: sc.EmulationTime}
		if sc.Corrupt != nil && sc.Corrupt.Site == i {
			machines[i].corrupt = sc.Corrupt
		}
		cfg := core.Config{
			SiteNo:      i,
			NumPlayers:  2,
			BufFrame:    sc.BufFrame,
			WaitTimeout: sc.WaitTimeout,
		}
		peers := []core.Peer{{Site: 1 - i, Conn: conns[i]}}
		sessions[i], err = core.NewSession(cfg, clocks[i], clocks[i].Now(), machines[i], peers)
		if err != nil {
			return nil, err
		}
		sl := obs.SiteLabels(i)
		core.RegisterSessionMetrics(reg, sl, sessions[i])
		transport.RegisterChecksumMetrics(reg, sl, cks[i])
		if arqs[i] != nil {
			transport.RegisterARQMetrics(reg, sl, arqs[i])
		}
		// Frame-time/stall/RTT histograms are always on (the health engine
		// grades them); the tracer rides along when TraceEvents > 0.
		sos[i] = core.NewSessionObs(reg, i, sc.TraceEvents, Epoch)
		traces[i] = sos[i].Tracer
		sessions[i].SetObs(sos[i])
		if traces[i] != nil && arqs[i] != nil {
			arqs[i].SetTracer(i, traces[i])
		}
		// Input-journey spans are likewise always on: constant memory,
		// allocation-free stamping.
		journals[i] = core.NewInputJourney(reg, i, clocks[i].Now())
		sessions[i].SetJournal(journals[i])
		if arqs[i] != nil {
			arqs[i].SetJournal(journals[i])
		}
		// Every chaos session flies with a black box: the rings are bounded
		// and the hot path stays allocation-free, so there is no reason to
		// make it conditional — exactly the always-on posture production
		// sessions use.
		recorders[i] = flight.NewRecorder(machines[i], flight.Options{
			Site:     i,
			Game:     sc.Game,
			ROM:      romImage,
			Config:   sessions[i].Sync().Config(),
			Dir:      flightDir,
			Registry: reg,
			Tracer:   traces[i],
			Journal:  journals[i],
		})
		sessions[i].SetFlightRecorder(recorders[i])
	}

	// The health SLO engine watches site 0, fed by its frame-time and RTT
	// histograms, its journal's skew derivations and the ARQ retransmit
	// counter; evaluations run from site 0's frame callback at a fixed frame
	// cadence, so every window boundary — and therefore every verdict flip —
	// lands on a deterministic frame.
	var health *obs.Health
	var healthTrans []HealthTransition
	healthFrame := 0
	if sc.HealthEvery > 0 {
		hcfg := obs.HealthConfig{}
		if sc.Health != nil {
			hcfg = *sc.Health
		}
		src := obs.HealthSources{
			FrameTime: sos[0].FrameTime,
			RTT:       sos[0].RTT,
			Skew:      journals[0].Skew,
			Frames:    func() int64 { return int64(machines[0].FrameCount()) },
		}
		if arqs[0] != nil {
			src.Retransmits = func() int64 { return int64(arqs[0].Retransmissions()) }
		}
		health = obs.NewHealth(hcfg, src)
		health.OnTransition = func(from, to obs.HealthState) {
			healthTrans = append(healthTrans, HealthTransition{Frame: healthFrame, From: from, To: to})
		}
		if traces[0] != nil {
			health.SetTracer(0, traces[0])
		}
		health.Register(reg, 0)
	}

	nph := len(sc.Phases)
	snaps := make([]snapshot, nph+1)
	rec := newRecorder(nph)
	take := func() snapshot {
		return snapshot{at: v.Now(), entered: true, snap: reg.Snapshot()}
	}
	onEnter := func(i int, ab, ba *netem.Emulator) {
		// Register before snapshotting so the phase-entry snapshot already
		// carries this phase's (zeroed) link series.
		netem.RegisterLinkMetrics(reg, linkLabels("ab", i), ab)
		netem.RegisterLinkMetrics(reg, linkLabels("ba", i), ba)
		snaps[i] = take()
		rec.enter(i, v.Now())
		skew.SetRate(sc.Phases[i].ClockRate)
	}
	InstallPhases(v, n, "site0", "site1", sc.Seed, sc.Phases, onEnter)

	start := v.Now()
	var hashes [2][]uint64
	var errs [2]error
	var done [2]<-chan struct{}
	for site := 0; site < 2; site++ {
		site := site
		hashes[site] = make([]uint64, 0, sc.Frames)
		done[site] = v.Go(func() {
			if err := sessions[site].Handshake(10 * time.Second); err != nil {
				errs[site] = err
				return
			}
			errs[site] = sessions[site].RunFrames(sc.Frames,
				func(f int) uint16 { return harness.PlayerInput(sc.Seed, site, f) },
				func(fi core.FrameInfo) {
					hashes[site] = append(hashes[site], fi.Hash)
					rec.frame(site, v.Now())
					if site == 0 && health != nil && fi.Frame > 0 && fi.Frame%sc.HealthEvery == 0 {
						healthFrame = fi.Frame
						health.Evaluate(v.Now())
					}
				})
			sessions[site].Drain(5 * time.Second)
		})
	}
	<-done[0]
	<-done[1]
	snaps[nph] = take()
	elapsed := v.Now().Sub(start)

	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("chaos %s: site %d in phase %q: %w",
				sc.Name, i, sc.Phases[rec.phase].Name, e)
		}
	}

	r := &Report{
		Spec:          sc,
		Lag:           sessions[0].Sync().Lag(),
		Elapsed:       elapsed,
		MismatchFrame: -1,
		Converged:     true,
	}
	for i := range sc.Phases {
		pr := PhaseReport{Name: sc.Phases[i].Name, Entered: snaps[i].entered}
		if pr.Entered {
			end := snaps[nph]
			if i+1 < nph && snaps[i+1].entered {
				end = snaps[i+1]
			}
			pr.Start = snaps[i].at.Sub(start)
			pr.End = end.at.Sub(start)
			// Each phase has its own emulators, so their counters need no
			// delta — the final snapshot is exactly that phase's traffic.
			pr.AB = linkStatsFrom(snaps[nph].snap, "ab", i)
			pr.BA = linkStatsFrom(snaps[nph].snap, "ba", i)
			delta := end.snap.Delta(snaps[i].snap)
			for site := 0; site < 2; site++ {
				sl := obs.SiteLabels(site)
				d := core.SyncStatsFromSnapshot(delta, sl)
				arqEnd := transport.ARQStatsFromSnapshot(end.snap, sl)
				arqStart := transport.ARQStatsFromSnapshot(snaps[i].snap, sl)
				pr.Sites[site] = SitePhase{
					Frames:            rec.frames[i][site],
					FirstFrame:        rec.firstAt[i][site],
					MsgsSent:          d.MsgsSent,
					MsgsRcvd:          d.MsgsRcvd,
					InputsFresh:       d.InputsFresh,
					InputsDup:         d.InputsDup,
					Waits:             d.Waits,
					ChecksumDiscarded: transport.ChecksumDiscardedFrom(delta, sl),
					Retransmissions:   arqEnd.Retransmissions - arqStart.Retransmissions,
					BufPeak:           core.SyncStatsFromSnapshot(end.snap, sl).BufPeak,
					Unacked:           arqEnd.Unacked,
					OOO:               arqEnd.OOO,
				}
			}
		}
		r.Phases = append(r.Phases, pr)
	}
	final := snaps[nph].snap
	for site := 0; site < 2; site++ {
		sl := obs.SiteLabels(site)
		r.Frames[site] = machines[site].FrameCount()
		r.FinalHashes[site] = machines[site].StateHash()
		r.AllAcked[site] = sessions[site].Sync().AllAcked()
		r.Sync[site] = core.SyncStatsFromSnapshot(final, sl)
		r.ARQ[site] = transport.ARQStatsFromSnapshot(final, sl)
		r.ChecksumDiscarded[site] = transport.ChecksumDiscardedFrom(final, sl)
		r.Traces[site] = traces[site]
		r.Journals[site] = journals[site]
		r.Flight[site] = recorders[site]
		r.FlightBundles[site] = recorders[site].BundlePath()
	}
	if health != nil {
		r.Health = healthTrans
		r.HealthFinal = health.State()
		r.HealthWindow = health.Signals()
	}
	if len(hashes[0]) != len(hashes[1]) {
		r.Converged = false
		r.MismatchFrame = min(len(hashes[0]), len(hashes[1]))
	}
	for f := 0; f < min(len(hashes[0]), len(hashes[1])); f++ {
		if hashes[0][f] != hashes[1][f] {
			r.Converged = false
			r.MismatchFrame = f
			break
		}
	}
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
