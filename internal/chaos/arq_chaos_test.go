package chaos_test

import (
	"encoding/binary"
	"testing"
	"time"

	"retrolock/internal/chaos"
	"retrolock/internal/netem"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

// TestARQUnderChaosSchedule drives a raw ARQ link (no sync stack on top)
// through the chaos scheduler — a Gilbert-Elliott burst-loss storm, a
// duplicate/reorder storm, a one-second full partition, and a heal — and
// asserts the transport contract directly:
//
//   - every datagram is delivered exactly once, in order
//   - recovery happened via retransmission (count > 0) but stayed sane
//   - the receive horizon never dropped traffic from this correct peer
//   - the first in-order delivery after the heal arrives within the worst
//     case one capped backoff allows (8×RTO after the partition), not after
//     an unbounded stall
//   - the sender window and out-of-order buffer stay bounded at every
//     phase boundary, and the sender drains to zero unacked segments
//
// Everything runs in virtual time from a fixed seed, so the run is
// bit-reproducible.
func TestARQUnderChaosSchedule(t *testing.T) {
	const (
		seed  = 42
		count = 2000
		rto   = 100 * time.Millisecond
	)
	v := vclock.NewVirtual(chaos.Epoch)
	n := simnet.New(v)
	rawA, rawB, err := transport.SimPair(n, "a", "b")
	if err != nil {
		t.Fatalf("SimPair: %v", err)
	}
	arqA := transport.NewARQ(rawA, v, rto)
	arqB := transport.NewARQ(rawB, v, rto)

	phases := []chaos.Phase{
		{Name: "burst-storm", Duration: 2 * time.Second,
			AB: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond,
				Loss: 0.3, BurstLoss: true, MeanBurst: 16},
			BA: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond,
				Loss: 0.3, BurstLoss: true, MeanBurst: 16}},
		{Name: "dup-reorder", Duration: 2 * time.Second,
			AB: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond,
				Duplicate: 0.4, Reorder: 0.3},
			BA: &netem.Config{Delay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond,
				Duplicate: 0.4, Reorder: 0.3}},
		{Name: "full-partition", Duration: time.Second,
			PartitionAB: true, PartitionBA: true},
		{Name: "heal",
			AB: &netem.Config{Delay: 10 * time.Millisecond},
			BA: &netem.Config{Delay: 10 * time.Millisecond}},
	}

	var healStart time.Time
	onEnter := func(i int, _, _ *netem.Emulator) {
		// Phase boundaries are where backlogs peak; the buffers must be
		// bounded there no matter what the previous phase did.
		for _, c := range []*transport.ARQConn{arqA, arqB} {
			st := c.Stats()
			if st.Unacked > transport.DefaultSenderWindow {
				t.Errorf("entering %q: unacked %d exceeds window %d",
					phases[i].Name, st.Unacked, transport.DefaultSenderWindow)
			}
			if st.OOO >= transport.DefaultSenderWindow {
				t.Errorf("entering %q: ooo buffer %d reached the horizon %d",
					phases[i].Name, st.OOO, transport.DefaultSenderWindow)
			}
		}
		if phases[i].Name == "heal" {
			healStart = v.Now()
		}
	}
	chaos.InstallPhases(v, n, "a", "b", seed, phases, onEnter)

	var firstAfterHeal time.Time
	done := v.Go(func() {
		sent, got := 0, 0
		deadline := v.Now().Add(60 * time.Second)
		for got < count && v.Now().Before(deadline) {
			if sent < count {
				var p [4]byte
				binary.BigEndian.PutUint32(p[:], uint32(sent))
				// A full window during the partition is backpressure,
				// not failure: retry the same datagram next tick.
				if err := arqA.Send(p[:]); err == nil {
					sent++
				}
			}
			for {
				p, ok := arqB.TryRecv()
				if !ok {
					break
				}
				if len(p) != 4 || binary.BigEndian.Uint32(p) != uint32(got) {
					t.Fatalf("datagram %d: got %v, want index %d (dup, loss or reorder leaked through)",
						got, p, got)
				}
				got++
				if !healStart.IsZero() && firstAfterHeal.IsZero() {
					firstAfterHeal = v.Now()
				}
			}
			arqA.Flush()
			v.Sleep(2 * time.Millisecond)
		}
		if got != count {
			t.Fatalf("delivered %d/%d datagrams", got, count)
		}
		// The stream is complete; nothing further may ever be delivered,
		// and the sender must drain to zero once the last acks land.
		quiet := v.Now().Add(time.Second)
		for v.Now().Before(quiet) {
			if p, ok := arqB.TryRecv(); ok {
				t.Fatalf("extra datagram %v after the full stream was delivered", p)
			}
			arqA.Flush()
			v.Sleep(5 * time.Millisecond)
		}
	})
	<-done
	if t.Failed() {
		return
	}

	if arqA.Retransmissions() == 0 {
		t.Error("no retransmissions despite burst loss and a partition")
	}
	// Sanity ceiling: every datagram retransmitted ~10 times would mean the
	// ack path is broken even though delivery eventually happened.
	if r := arqA.Retransmissions(); r > 10*count {
		t.Errorf("retransmission count %d is absurd for %d datagrams", r, count)
	}
	for name, c := range map[string]*transport.ARQConn{"a": arqA, "b": arqB} {
		if fd := c.Stats().FarDropped; fd != 0 {
			t.Errorf("site %s dropped %d far-future segments from a correct peer", name, fd)
		}
	}
	if arqA.Unacked() != 0 {
		t.Errorf("sender finished with %d unacked segments; ack path failed to drain", arqA.Unacked())
	}
	if healStart.IsZero() || firstAfterHeal.IsZero() {
		t.Fatal("run ended before the heal phase delivered anything")
	}
	// After the heal the oldest lost segment's timer has backed off to at
	// most 8×RTO, so recovery is bounded by one capped interval plus the
	// link delay. 1.2 s gives ~50% headroom over that worst case.
	if lat := firstAfterHeal.Sub(healStart); lat > 1200*time.Millisecond {
		t.Errorf("first post-heal delivery took %v; want <= 1.2s (8×RTO + delay)", lat)
	}
}
