package capture

import (
	"sync"
	"time"
)

// rec is the recorder's in-arena view of one datagram: the payload lives in
// the shared byte arena, so steady-state recording allocates nothing.
type rec struct {
	at   int64 // ns since the recorder's epoch
	off  uint32
	n    uint32
	dir  Dir
	site uint8
}

// Recorder is a concurrent, bounded capture tap. Multiple goroutines — both
// sites of a session, every relay shard — may Record into one instance; a
// mutex serializes appends so records never interleave mid-write. Both the
// record index and the payload arena are preallocated: once either budget is
// exhausted the recorder stops accepting datagrams and counts the overflow,
// keeping the earliest traffic (the interesting part of most incidents) and
// bounding memory like every other retrolock ring.
//
// A nil *Recorder is valid and ignores records, so taps can be compiled into
// hot paths unconditionally.
type Recorder struct {
	mu       sync.Mutex
	epoch    time.Time
	epochSet bool
	recs     []rec
	arena    []byte
	dropped  int64
}

// NewRecorder builds a recorder bounded to maxRecords datagrams and maxBytes
// of total payload. Non-positive bounds select small defaults (4096 records,
// 1 MiB).
func NewRecorder(maxRecords, maxBytes int) *Recorder {
	if maxRecords <= 0 {
		maxRecords = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	return &Recorder{
		recs:  make([]rec, 0, maxRecords),
		arena: make([]byte, 0, maxBytes),
	}
}

// SetEpoch pins the capture's time origin. Without it, the first recorded
// datagram's instant becomes the epoch.
func (r *Recorder) SetEpoch(t time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.epoch, r.epochSet = t, true
	r.mu.Unlock()
}

// Record appends one datagram. The payload is copied into the arena, so the
// caller's buffer may be reused immediately. Steady state allocates nothing;
// overflow of either budget drops with a count.
func (r *Recorder) Record(at time.Time, dir Dir, site int, payload []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.epochSet {
		r.epoch, r.epochSet = at, true
	}
	if len(r.recs) == cap(r.recs) || len(payload) > cap(r.arena)-len(r.arena) {
		r.dropped++
		r.mu.Unlock()
		return
	}
	off := len(r.arena)
	r.arena = append(r.arena, payload...)
	r.recs = append(r.recs, rec{
		at:   at.Sub(r.epoch).Nanoseconds(),
		off:  uint32(off),
		n:    uint32(len(payload)),
		dir:  dir,
		site: uint8(site),
	})
	r.mu.Unlock()
}

// Len returns how many datagrams are recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Dropped returns how many datagrams overflowed the budgets.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// BytesUsed returns the arena bytes holding recorded payloads.
func (r *Recorder) BytesUsed() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.arena)
}

// Snapshot materializes the recorder's contents as a Capture under the given
// meta. Records are copied out (payloads included), so the recorder may keep
// recording afterwards. Meta.Epoch and Meta.Dropped are filled from the
// recorder's own state.
func (r *Recorder) Snapshot(meta Meta) *Capture {
	c := &Capture{Meta: meta}
	c.Meta.Version = Version
	if r == nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Meta.Epoch = r.epoch.UnixNano()
	if !r.epochSet {
		c.Meta.Epoch = 0
	}
	c.Meta.Dropped = r.dropped
	c.Records = make([]Record, len(r.recs))
	for i, rc := range r.recs {
		c.Records[i] = Record{
			At:      time.Duration(rc.at),
			Dir:     rc.dir,
			Site:    rc.site,
			Payload: append([]byte(nil), r.arena[rc.off:rc.off+rc.n]...),
		}
	}
	return c
}
