// Package capture is retrolock's pcap analogue: a versioned container for
// session datagram traffic (the RKCP format) plus a bounded, steady-state
// zero-allocation Recorder that transport connections, the relay daemon and
// the traffic generator all tap into.
//
// A capture stores, per datagram, the instant it crossed the tap, the
// direction (send or receive, from the tap owner's point of view), the site
// it belongs to and the raw payload — plus a metadata section describing the
// session the traffic came from: the named netem profile (or raw link
// configs) and the nominal input cadence. That is exactly what the traffic
// generator (internal/trafficgen) needs to replay a recorded session's load
// shape against a live relayd, the capture→replay loop CGReplay argues for.
//
// The container follows the same conventions as the RKFB flight bundle
// (internal/flight): magic + version, tagged length-prefixed sections, an
// FNV-1a/32 trailer over every preceding byte, unknown tags skipped on
// decode, and a Decode that is total — corrupt or truncated input yields an
// error, never a panic (FuzzDecodeCapture enforces this).
package capture

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"retrolock/internal/netem"
)

// Capture container format (little endian):
//
//	magic    "RKCP" (4)
//	version  u16
//	sections until the CRC trailer, each:
//	    tag u8, length u32, payload
//	crc      u32 — FNV-1a/32 of every preceding byte
const (
	captureMagic = "RKCP"
	// Version is the current RKCP container version.
	Version = 1
)

// Section tags.
const (
	secMeta = 1 + iota
	secRecords
)

// recHeaderSize is the fixed prefix of one encoded record: at u64 (ns since
// the capture epoch), dir u8, site u8, length u32.
const recHeaderSize = 8 + 1 + 1 + 4

// Dir is a datagram's direction from the tap owner's point of view.
type Dir uint8

const (
	// DirSend marks a datagram the tap owner transmitted.
	DirSend Dir = 0
	// DirRecv marks a datagram the tap owner received.
	DirRecv Dir = 1
)

// String names the direction for reports.
func (d Dir) String() string {
	if d == DirSend {
		return "send"
	}
	return "recv"
}

// Meta describes the session whose traffic a capture holds. Everything is
// optional except Version; the generator only needs Profile/InputHz to
// reconstruct a load model, and falls back to the record timings themselves.
type Meta struct {
	Version int `json:"version"`
	// Epoch is the capture's time origin in Unix nanoseconds; every
	// record's At is an offset from it.
	Epoch int64 `json:"epoch_unix_ns"`
	// Game names the ROM the captured session ran, if known.
	Game string `json:"game,omitempty"`
	// Profile is the named netem profile the session's links used
	// (see netem.Profile); empty when the links were hand-configured.
	Profile string `json:"profile,omitempty"`
	// InputHz is the session's nominal input cadence in sends per second
	// per site (0: unknown).
	InputHz float64 `json:"input_hz,omitempty"`
	// Fwd/Rev are the raw per-direction link configurations, when the
	// recorder knew them (netem.Config is plain data and JSON-stable).
	Fwd *netem.Config `json:"fwd,omitempty"`
	Rev *netem.Config `json:"rev,omitempty"`
	// Session identifies the relayed session the traffic belongs to (the
	// relay token in hex) when the tap is per-session, e.g. an
	// anomaly-triggered relay bundle; empty for whole-tap captures.
	Session string `json:"session,omitempty"`
	// Verdict is the health verdict that triggered an anomaly capture
	// ("degraded", "infeasible"); empty for captures taken on demand.
	Verdict string `json:"verdict,omitempty"`
	// Notes is free-form provenance ("harness run seed 7", "relayd tap").
	Notes string `json:"notes,omitempty"`
	// Dropped is how many datagrams the recorder rejected after its budget
	// filled — a capture with Dropped > 0 is a truncated view, not a lie.
	Dropped int64 `json:"dropped,omitempty"`
}

// Record is one captured datagram.
type Record struct {
	// At is the tap instant as an offset from Meta.Epoch.
	At time.Duration
	// Dir is the datagram's direction at the tap.
	Dir Dir
	// Site is the session site the datagram belongs to (sender site for
	// DirSend, receiving site for DirRecv; relay taps use the site byte of
	// the relay header).
	Site uint8
	// Payload is the raw datagram, relay prefix included when the tap sits
	// below the relay header.
	Payload []byte
}

// Capture is one decoded RKCP file.
type Capture struct {
	Meta    Meta
	Records []Record
}

// Span is the duration covered by the records (0 when fewer than 2 records).
func (c *Capture) Span() time.Duration {
	if len(c.Records) < 2 {
		return 0
	}
	return c.Records[len(c.Records)-1].At - c.Records[0].At
}

func appendSection(buf []byte, tag byte, payload []byte) []byte {
	buf = append(buf, tag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// Encode serializes the capture.
func (c *Capture) Encode() []byte {
	meta, err := json.Marshal(c.Meta)
	if err != nil {
		meta = []byte("{}") // a Meta of plain fields cannot fail
	}
	size := 16 + len(meta) + 4 + len(c.Records)*recHeaderSize
	for i := range c.Records {
		size += len(c.Records[i].Payload)
	}
	buf := make([]byte, 0, size+64)
	buf = append(buf, captureMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = appendSection(buf, secMeta, meta)
	if len(c.Records) > 0 {
		p := make([]byte, 0, 4+len(c.Records)*(recHeaderSize+64))
		p = binary.LittleEndian.AppendUint32(p, uint32(len(c.Records)))
		for i := range c.Records {
			r := &c.Records[i]
			p = binary.LittleEndian.AppendUint64(p, uint64(r.At))
			p = append(p, byte(r.Dir), r.Site)
			p = binary.LittleEndian.AppendUint32(p, uint32(len(r.Payload)))
			p = append(p, r.Payload...)
		}
		buf = appendSection(buf, secRecords, p)
	}
	h := fnv.New32a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint32(buf, h.Sum32())
}

// Decode parses a serialized capture. It is total: corrupt or truncated
// input yields an error, never a panic.
func Decode(data []byte) (*Capture, error) {
	if len(data) < 6+4 {
		return nil, fmt.Errorf("capture: %d bytes too short for an RKCP container", len(data))
	}
	if string(data[:4]) != captureMagic {
		return nil, fmt.Errorf("capture: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("capture: unsupported version %d", v)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	h := fnv.New32a()
	h.Write(body)
	if h.Sum32() != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("capture: checksum mismatch (capture corrupt)")
	}
	c := &Capture{}
	sawMeta := false
	off := 6
	for off < len(body) {
		if off+5 > len(body) {
			return nil, fmt.Errorf("capture: truncated section header at %d", off)
		}
		tag := body[off]
		n := int(binary.LittleEndian.Uint32(body[off+1:]))
		off += 5
		if n < 0 || off+n > len(body) {
			return nil, fmt.Errorf("capture: section %d declares %d bytes, %d available", tag, n, len(body)-off)
		}
		p := body[off : off+n]
		off += n
		switch tag {
		case secMeta:
			if err := json.Unmarshal(p, &c.Meta); err != nil {
				return nil, fmt.Errorf("capture: meta: %w", err)
			}
			sawMeta = true
		case secRecords:
			recs, err := decodeRecords(p)
			if err != nil {
				return nil, err
			}
			c.Records = recs
		default:
			// Unknown section from a newer recorder: skip.
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("capture: no meta section")
	}
	return c, nil
}

func decodeRecords(p []byte) ([]Record, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("capture: truncated record section")
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if n < 0 || n > len(p)/recHeaderSize {
		return nil, fmt.Errorf("capture: record section declares %d records, %d bytes available", n, len(p))
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < recHeaderSize {
			return nil, fmt.Errorf("capture: truncated record %d header", i)
		}
		r := Record{
			At:   time.Duration(binary.LittleEndian.Uint64(p)),
			Dir:  Dir(p[8]),
			Site: p[9],
		}
		if r.Dir != DirSend && r.Dir != DirRecv {
			return nil, fmt.Errorf("capture: record %d: bad direction %d", i, r.Dir)
		}
		sz := int(binary.LittleEndian.Uint32(p[10:]))
		p = p[recHeaderSize:]
		if sz < 0 || sz > len(p) {
			return nil, fmt.Errorf("capture: record %d declares %d payload bytes, %d available", i, sz, len(p))
		}
		r.Payload = append([]byte(nil), p[:sz]...)
		p = p[sz:]
		out = append(out, r)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("capture: %d trailing bytes after records", len(p))
	}
	return out, nil
}
