package capture

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeCapture proves the RKCP decoder is total (corrupt and truncated
// captures error, never panic) and that decode∘encode∘decode is the
// identity: whatever Decode accepts, re-encoding and re-decoding yields the
// same capture and the same bytes. Same contract as FuzzDecodeBundle for the
// RKFB flight bundle.
func FuzzDecodeCapture(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RKCP"))
	f.Add((&Capture{Meta: Meta{Version: Version}}).Encode())
	f.Add(sampleCapture().Encode())
	// A capture that came through a recorder, drops and all.
	r := NewRecorder(8, 256)
	base := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 16; i++ {
		r.Record(base.Add(time.Duration(i)*333*time.Microsecond), Dir(i%2), i%2, bytes.Repeat([]byte{byte(i)}, i*5))
	}
	f.Add(r.Snapshot(Meta{Profile: "lte", InputHz: 50}).Encode())
	// Truncations and bit flips of a valid capture as explicit seeds.
	enc := sampleCapture().Encode()
	f.Add(enc[:len(enc)-3])
	flip := append([]byte(nil), enc...)
	flip[len(flip)/2] ^= 1
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		enc := c.Encode()
		c2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded capture failed: %v", err)
		}
		if !bytes.Equal(enc, c2.Encode()) {
			t.Fatal("decode∘encode∘decode is not the identity")
		}
		if len(c2.Records) != len(c.Records) {
			t.Fatalf("record count changed: %d -> %d", len(c.Records), len(c2.Records))
		}
		for i := range c.Records {
			a, b := &c.Records[i], &c2.Records[i]
			if a.At != b.At || a.Dir != b.Dir || a.Site != b.Site || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}
