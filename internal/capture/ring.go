package capture

import (
	"sync"
	"time"
)

// Ring is the Recorder's flight-recorder sibling: the same bounded
// record-index-plus-byte-arena layout, but overflow evicts the OLDEST
// traffic instead of refusing the newest. A Recorder answers "how did this
// session start?"; a Ring answers "what just happened?" — which is what an
// anomaly-triggered capture needs, because by the time a grader flips a
// session to degraded the interesting datagrams are the most recent ones.
//
// Both the record slots and the payload arena are allocated once in NewRing;
// steady-state Record is lock-protected copies into preallocated memory and
// allocates nothing, so a Ring can sit on the relay's per-datagram path.
// Payloads live contiguously (possibly wrapping) in the circular arena;
// when a new payload does not fit, head records are evicted until it does.
//
// A nil *Ring is valid and ignores records, like a nil *Recorder.
type Ring struct {
	mu       sync.Mutex
	epoch    time.Time
	epochSet bool
	recs     []rec // fixed-size circular slot array
	head     int   // index of the oldest record
	count    int   // live records
	arena    []byte
	tail     int   // next arena write offset
	evicted  int64 // records dropped (oldest-first) to make room
}

// NewRing builds a ring bounded to maxRecords datagrams and maxBytes of
// payload arena. Non-positive bounds select small defaults (256 records,
// 64 KiB) — rings are per-session, so defaults stay modest.
func NewRing(maxRecords, maxBytes int) *Ring {
	if maxRecords <= 0 {
		maxRecords = 256
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 10
	}
	return &Ring{
		recs:  make([]rec, maxRecords),
		arena: make([]byte, maxBytes),
	}
}

// SetEpoch pins the capture's time origin. Without it, the first recorded
// datagram's instant becomes the epoch.
func (r *Ring) SetEpoch(t time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.epoch, r.epochSet = t, true
	r.mu.Unlock()
}

// evictLocked drops the oldest record. Caller holds r.mu and guarantees
// count > 0.
func (r *Ring) evictLocked() {
	r.head = (r.head + 1) % len(r.recs)
	r.count--
	r.evicted++
}

// reserveLocked finds a contiguous arena region of n bytes, evicting head
// records as needed, and returns its offset. Caller holds r.mu and
// guarantees n <= len(r.arena). Terminates: every iteration either returns
// or strictly decreases count, and count == 0 always fits.
func (r *Ring) reserveLocked(n int) int {
	for {
		if r.count == 0 {
			r.head, r.tail = 0, 0
			return 0
		}
		h := int(r.recs[r.head].off)
		if r.tail > h {
			// Occupied region is [h, tail): free space is the arena tail
			// plus the wrapped-around prefix [0, h).
			if len(r.arena)-r.tail >= n {
				return r.tail
			}
			if h >= n {
				return 0 // wrap the write cursor
			}
		} else {
			// Occupied region wraps: [h, len) ∪ [0, tail). The only
			// contiguous free span is [tail, h).
			if h-r.tail >= n {
				return r.tail
			}
		}
		r.evictLocked()
	}
}

// Record appends one datagram, evicting the oldest records if either the
// slot array or the arena is full. The payload is copied, so the caller's
// buffer may be reused immediately. Steady state allocates nothing. A
// payload larger than the whole arena is dropped and counted.
func (r *Ring) Record(at time.Time, dir Dir, site int, payload []byte) {
	if r == nil {
		return
	}
	n := len(payload)
	r.mu.Lock()
	if !r.epochSet {
		r.epoch, r.epochSet = at, true
	}
	if n > len(r.arena) {
		r.evicted++
		r.mu.Unlock()
		return
	}
	if r.count == len(r.recs) {
		r.evictLocked()
	}
	off := r.reserveLocked(n)
	copy(r.arena[off:off+n], payload)
	r.recs[(r.head+r.count)%len(r.recs)] = rec{
		at:   at.Sub(r.epoch).Nanoseconds(),
		off:  uint32(off),
		n:    uint32(n),
		dir:  dir,
		site: uint8(site),
	}
	r.count++
	r.tail = off + n
	r.mu.Unlock()
}

// Len returns how many datagrams the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Evicted returns how many datagrams have been dropped to make room.
func (r *Ring) Evicted() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Reset empties the ring for reuse (the relay pools stat blocks, and a
// ring rides along with each one). The epoch resets too, so the next
// recorded datagram re-anchors time.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.head, r.count, r.tail = 0, 0, 0
	r.evicted = 0
	r.epochSet = false
	r.epoch = time.Time{}
	r.mu.Unlock()
}

// Snapshot materializes the ring's contents — the most recent traffic, in
// time order — as a Capture under the given meta. Payloads are copied out,
// so the ring may keep recording afterwards. Meta.Epoch is filled from the
// ring's state and Meta.Dropped from the eviction count: a bundle with
// Dropped > 0 is a tail view of the session, which is the point.
func (r *Ring) Snapshot(meta Meta) *Capture {
	c := &Capture{Meta: meta}
	c.Meta.Version = Version
	if r == nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epochSet {
		c.Meta.Epoch = r.epoch.UnixNano()
	}
	c.Meta.Dropped = r.evicted
	c.Records = make([]Record, r.count)
	for i := 0; i < r.count; i++ {
		rc := r.recs[(r.head+i)%len(r.recs)]
		c.Records[i] = Record{
			At:      time.Duration(rc.at),
			Dir:     rc.dir,
			Site:    rc.site,
			Payload: append([]byte(nil), r.arena[rc.off:rc.off+rc.n]...),
		}
	}
	return c
}
