package capture

import (
	"bytes"
	"testing"
	"time"

	"retrolock/internal/netem"
)

func sampleCapture() *Capture {
	fwd, rev, _ := netem.Profile("wifi", 7)
	return &Capture{
		Meta: Meta{
			Version: Version,
			Epoch:   time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC).UnixNano(),
			Game:    "pong",
			Profile: "wifi",
			InputHz: 25,
			Fwd:     &fwd,
			Rev:     &rev,
			Notes:   "unit test",
		},
		Records: []Record{
			{At: 0, Dir: DirSend, Site: 0, Payload: []byte{1, 2, 3}},
			{At: 1500 * time.Microsecond, Dir: DirRecv, Site: 1, Payload: []byte{}},
			{At: 20 * time.Millisecond, Dir: DirSend, Site: 1, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		},
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	c := sampleCapture()
	enc := c.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Meta.Profile != "wifi" || dec.Meta.InputHz != 25 || dec.Meta.Game != "pong" {
		t.Errorf("meta round trip: got %+v", dec.Meta)
	}
	if dec.Meta.Fwd == nil || dec.Meta.Fwd.Delay != c.Meta.Fwd.Delay || dec.Meta.Fwd.Loss != c.Meta.Fwd.Loss {
		t.Errorf("fwd link config did not survive: %+v", dec.Meta.Fwd)
	}
	if len(dec.Records) != len(c.Records) {
		t.Fatalf("got %d records, want %d", len(dec.Records), len(c.Records))
	}
	for i, r := range dec.Records {
		w := c.Records[i]
		if r.At != w.At || r.Dir != w.Dir || r.Site != w.Site || !bytes.Equal(r.Payload, w.Payload) {
			t.Errorf("record %d: got %+v want %+v", i, r, w)
		}
	}
	// Re-encoding the decoded capture is bit-identical: the format has one
	// canonical serialization, which is what the golden-capture determinism
	// contract leans on.
	if !bytes.Equal(dec.Encode(), enc) {
		t.Error("decode∘encode is not the identity")
	}
	if got, want := dec.Span(), 20*time.Millisecond; got != want {
		t.Errorf("Span = %v, want %v", got, want)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sampleCapture().Encode()
	if _, err := Decode(nil); err == nil {
		t.Error("nil input decoded")
	}
	if _, err := Decode(enc[:5]); err == nil {
		t.Error("truncated header decoded")
	}
	for _, cut := range []int{len(enc) - 1, len(enc) / 2, 7} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded", cut)
		}
	}
	for _, flip := range []int{0, 4, 6, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[flip] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("bit flip at %d decoded", flip)
		}
	}
}

func TestDecodeSkipsUnknownSections(t *testing.T) {
	c := sampleCapture()
	enc := c.Encode()
	// Splice an unknown section (tag 0xEE) before the trailer and re-CRC.
	body := enc[:len(enc)-4]
	body = appendSection(append([]byte(nil), body...), 0xEE, []byte("from the future"))
	h := fnvSum32(body)
	withCRC := append(body, byte(h), byte(h>>8), byte(h>>16), byte(h>>24))
	dec, err := Decode(withCRC)
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if len(dec.Records) != len(c.Records) {
		t.Errorf("unknown section disturbed records: got %d want %d", len(dec.Records), len(c.Records))
	}
}

func TestDecodeRequiresMeta(t *testing.T) {
	var buf []byte
	buf = append(buf, captureMagic...)
	buf = append(buf, 1, 0) // version 1 LE
	h := fnvSum32(buf)
	buf = append(buf, byte(h), byte(h>>8), byte(h>>16), byte(h>>24))
	if _, err := Decode(buf); err == nil {
		t.Error("capture without meta decoded")
	}
}

func fnvSum32(p []byte) uint32 {
	const prime = 16777619
	s := uint32(2166136261)
	for _, b := range p {
		s ^= uint32(b)
		s *= prime
	}
	return s
}

func TestRecorderBoundsAndDropCounts(t *testing.T) {
	r := NewRecorder(4, 64)
	base := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	pay := bytes.Repeat([]byte{7}, 30)
	for i := 0; i < 10; i++ {
		r.Record(base.Add(time.Duration(i)*time.Millisecond), DirSend, i%2, pay)
	}
	// 64-byte arena holds two 30-byte payloads; the rest must be dropped.
	if got := r.Len(); got != 2 {
		t.Errorf("Len = %d, want 2 (arena-bounded)", got)
	}
	if got := r.Dropped(); got != 8 {
		t.Errorf("Dropped = %d, want 8", got)
	}
	if got := r.BytesUsed(); got > 64 {
		t.Errorf("BytesUsed = %d exceeds the 64-byte budget", got)
	}
	c := r.Snapshot(Meta{Notes: "bounds"})
	if c.Meta.Dropped != 8 || c.Meta.Epoch != base.UnixNano() {
		t.Errorf("snapshot meta: %+v", c.Meta)
	}
	if len(c.Records) != 2 || c.Records[1].At != time.Millisecond {
		t.Errorf("snapshot records: %+v", c.Records)
	}
	// The snapshot round-trips through the container.
	if _, err := Decode(c.Encode()); err != nil {
		t.Fatalf("snapshot encode/decode: %v", err)
	}

	// A nil recorder ignores everything.
	var nilRec *Recorder
	nilRec.Record(base, DirRecv, 0, pay)
	if nilRec.Len() != 0 || nilRec.Dropped() != 0 || nilRec.BytesUsed() != 0 {
		t.Error("nil recorder is not inert")
	}
	if c := nilRec.Snapshot(Meta{}); len(c.Records) != 0 {
		t.Error("nil recorder snapshot has records")
	}
}

func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	r := NewRecorder(1<<16, 1<<20)
	at := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	pay := make([]byte, 48)
	// Warm, then measure: recording into preallocated budgets is free, and
	// so is the drop path once a budget fills.
	for i := 0; i < 300; i++ {
		r.Record(at, DirSend, 0, pay)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		at = at.Add(time.Millisecond)
		r.Record(at, DirRecv, 1, pay)
	}); allocs != 0 {
		t.Errorf("Record allocates %.1f allocs/op in steady state, want 0", allocs)
	}
	full := NewRecorder(8, 128)
	for i := 0; i < 16; i++ {
		full.Record(at, DirSend, 0, pay)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		full.Record(at, DirSend, 0, pay)
	}); allocs != 0 {
		t.Errorf("overflow drop path allocates %.1f allocs/op, want 0", allocs)
	}
}
