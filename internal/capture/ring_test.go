package capture

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"
)

// ringPayload builds a deterministic payload for sequence i of length n:
// the sequence number followed by a byte pattern derived from it, so a
// corrupted arena (overlapping or misplaced payloads) cannot go unnoticed.
func ringPayload(i, n int) []byte {
	p := make([]byte, n)
	if n >= 4 {
		binary.LittleEndian.PutUint32(p, uint32(i))
	}
	for j := 4; j < n; j++ {
		p[j] = byte(i*31 + j)
	}
	return p
}

// TestRingKeepsMostRecentSuffix is the ring's core contract: whatever the
// sequence of payload sizes, the retained records are exactly the most
// recent contiguous suffix of everything recorded, in order, with payloads
// intact — and evicted + retained equals recorded.
func TestRingKeepsMostRecentSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	epoch := time.Unix(1_000_000, 0)
	for trial := 0; trial < 50; trial++ {
		maxRecs := 1 + rng.Intn(32)
		maxBytes := 16 + rng.Intn(512)
		r := NewRing(maxRecs, maxBytes)
		r.SetEpoch(epoch)
		total := 200 + rng.Intn(200)
		var sent [][]byte
		for i := 0; i < total; i++ {
			n := rng.Intn(maxBytes + 1) // includes 0 and the full arena
			p := ringPayload(i, n)
			sent = append(sent, p)
			r.Record(epoch.Add(time.Duration(i)*time.Millisecond), Dir(i%2), i%2, p)
		}
		c := r.Snapshot(Meta{})
		if got := len(c.Records) + int(c.Meta.Dropped); got != total {
			t.Fatalf("trial %d: retained %d + dropped %d != recorded %d",
				trial, len(c.Records), c.Meta.Dropped, total)
		}
		if len(c.Records) == 0 {
			t.Fatalf("trial %d: ring retained nothing (maxRecs=%d maxBytes=%d)", trial, maxRecs, maxBytes)
		}
		first := total - len(c.Records)
		for j, rec := range c.Records {
			i := first + j
			if want := time.Duration(i) * time.Millisecond; rec.At != want {
				t.Fatalf("trial %d: record %d at %v, want %v (not the most-recent suffix)",
					trial, j, rec.At, want)
			}
			if !bytes.Equal(rec.Payload, sent[i]) {
				t.Fatalf("trial %d: record %d payload corrupt: got %d bytes, want %d",
					trial, j, len(rec.Payload), len(sent[i]))
			}
			if rec.Site != uint8(i%2) || rec.Dir != Dir(i%2) {
				t.Fatalf("trial %d: record %d dir/site mangled", trial, j)
			}
		}
	}
}

// TestRingWrapsArena drives same-size payloads through a small arena so the
// write cursor must wrap many times, and checks the ring always holds the
// latest records it has room for.
func TestRingWrapsArena(t *testing.T) {
	r := NewRing(8, 100) // 3 × 30-byte payloads fit, the 4th forces eviction
	epoch := time.Unix(0, 0)
	r.SetEpoch(epoch)
	for i := 0; i < 100; i++ {
		r.Record(epoch.Add(time.Duration(i)), DirRecv, 0, ringPayload(i, 30))
	}
	c := r.Snapshot(Meta{})
	if len(c.Records) != 3 {
		t.Fatalf("ring holds %d records, want 3 (arena fits 3×30 of 100 bytes)", len(c.Records))
	}
	for j, rec := range c.Records {
		i := 97 + j
		if !bytes.Equal(rec.Payload, ringPayload(i, 30)) {
			t.Fatalf("record %d is not sequence %d after wrapping", j, i)
		}
	}
	if c.Meta.Dropped != 97 {
		t.Fatalf("dropped = %d, want 97", c.Meta.Dropped)
	}
}

// TestRingOversizedPayload: a payload larger than the whole arena can never
// be stored; it must be counted, not partially written, and must not evict
// what the ring already holds.
func TestRingOversizedPayload(t *testing.T) {
	r := NewRing(4, 64)
	epoch := time.Unix(0, 0)
	r.SetEpoch(epoch)
	r.Record(epoch, DirSend, 1, ringPayload(0, 20))
	r.Record(epoch.Add(1), DirSend, 1, ringPayload(1, 65))
	if r.Len() != 1 {
		t.Fatalf("ring len = %d after oversized record, want 1", r.Len())
	}
	if r.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1 (the oversized payload)", r.Evicted())
	}
	c := r.Snapshot(Meta{})
	if !bytes.Equal(c.Records[0].Payload, ringPayload(0, 20)) {
		t.Fatal("oversized record evicted the ring's existing contents")
	}
}

// TestRingReset: after Reset the ring is empty, counters are zeroed, and the
// next record re-anchors the epoch — the contract stat-block pooling needs.
func TestRingReset(t *testing.T) {
	r := NewRing(4, 64)
	e1 := time.Unix(100, 0)
	for i := 0; i < 10; i++ {
		r.Record(e1.Add(time.Duration(i)), DirRecv, 0, ringPayload(i, 16))
	}
	r.Reset()
	if r.Len() != 0 || r.Evicted() != 0 {
		t.Fatalf("after Reset: len=%d evicted=%d, want 0/0", r.Len(), r.Evicted())
	}
	e2 := time.Unix(200, 0)
	r.Record(e2, DirRecv, 1, ringPayload(0, 8))
	c := r.Snapshot(Meta{})
	if c.Meta.Epoch != e2.UnixNano() {
		t.Fatalf("epoch = %d after Reset, want re-anchored %d", c.Meta.Epoch, e2.UnixNano())
	}
	if len(c.Records) != 1 || c.Records[0].At != 0 {
		t.Fatalf("post-Reset contents wrong: %d records", len(c.Records))
	}
}

// TestRingSnapshotRoundTrips: a ring snapshot with session/verdict meta
// must survive Encode/Decode — this is the anomaly bundle relayd writes.
func TestRingSnapshotRoundTrips(t *testing.T) {
	r := NewRing(8, 256)
	epoch := time.Unix(42, 0)
	r.SetEpoch(epoch)
	for i := 0; i < 20; i++ {
		r.Record(epoch.Add(time.Duration(i)*time.Millisecond), DirRecv, i%2, ringPayload(i, 24))
	}
	c := r.Snapshot(Meta{Session: "0000000000040401", Verdict: "degraded", Notes: "relay anomaly"})
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Meta.Session != c.Meta.Session || got.Meta.Verdict != "degraded" {
		t.Fatalf("meta lost session/verdict: %+v", got.Meta)
	}
	if len(got.Records) != len(c.Records) {
		t.Fatalf("round trip lost records: %d != %d", len(got.Records), len(c.Records))
	}
}

// TestRingRecordDoesNotAllocate pins the steady-state allocation contract:
// once built, Record is copies into preallocated memory.
func TestRingRecordDoesNotAllocate(t *testing.T) {
	r := NewRing(32, 4096)
	epoch := time.Unix(0, 0)
	r.SetEpoch(epoch)
	p := ringPayload(0, 64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(epoch.Add(time.Duration(i)), DirRecv, 0, p)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Ring.Record allocates %.1f per op, want 0", allocs)
	}
}

// TestRingNil: a nil ring ignores everything, like a nil Recorder.
func TestRingNil(t *testing.T) {
	var r *Ring
	r.Record(time.Unix(0, 0), DirRecv, 0, []byte("x"))
	r.Reset()
	if r.Len() != 0 || r.Evicted() != 0 {
		t.Fatal("nil ring reports contents")
	}
	if c := r.Snapshot(Meta{Notes: "n"}); len(c.Records) != 0 || c.Meta.Notes != "n" {
		t.Fatal("nil ring snapshot wrong")
	}
}
