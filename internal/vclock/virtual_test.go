package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC) // ICDCS'09 week

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	if v.Elapsed() != 0 {
		t.Fatalf("Elapsed() = %v, want 0", v.Elapsed())
	}
}

func TestVirtualSingleActorSleepAdvances(t *testing.T) {
	v := NewVirtual(epoch)
	done := v.Go(func() {
		v.Sleep(250 * time.Millisecond)
		v.Sleep(750 * time.Millisecond)
	})
	<-done
	if got := v.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
}

func TestVirtualZeroAndNegativeSleep(t *testing.T) {
	v := NewVirtual(epoch)
	done := v.Go(func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
	})
	<-done
	if got := v.Elapsed(); got != 0 {
		t.Fatalf("Elapsed() = %v, want 0", got)
	}
}

func TestVirtualTwoActorsInterleave(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	var order []string
	record := func(tag string) {
		mu.Lock()
		order = append(order, tag)
		mu.Unlock()
	}
	a := v.Go(func() {
		v.Sleep(10 * time.Millisecond)
		record("a10")
		v.Sleep(20 * time.Millisecond) // wakes at 30ms
		record("a30")
	})
	b := v.Go(func() {
		v.Sleep(15 * time.Millisecond)
		record("b15")
		v.Sleep(30 * time.Millisecond) // wakes at 45ms
		record("b45")
	})
	<-a
	<-b
	want := []string{"a10", "b15", "a30", "b45"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := v.Elapsed(); got != 45*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 45ms", got)
	}
}

func TestVirtualScheduleRunsAtDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	var fired atomic.Int64
	v.Schedule(epoch.Add(40*time.Millisecond), func() {
		fired.Store(v.Now().Sub(epoch).Milliseconds())
	})
	done := v.Go(func() {
		v.Sleep(100 * time.Millisecond)
	})
	<-done
	if fired.Load() != 40 {
		t.Fatalf("event fired at %dms, want 40ms", fired.Load())
	}
}

func TestVirtualScheduleAfterChained(t *testing.T) {
	v := NewVirtual(epoch)
	var at []time.Duration
	var mu sync.Mutex
	v.ScheduleAfter(10*time.Millisecond, func() {
		mu.Lock()
		at = append(at, v.Now().Sub(epoch))
		mu.Unlock()
		v.ScheduleAfter(15*time.Millisecond, func() {
			mu.Lock()
			at = append(at, v.Now().Sub(epoch))
			mu.Unlock()
		})
	})
	done := v.Go(func() { v.Sleep(time.Second) })
	<-done
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 25*time.Millisecond {
		t.Fatalf("events fired at %v, want [10ms 25ms]", at)
	}
}

func TestVirtualEventBeforeSleeperAtSameInstant(t *testing.T) {
	// An event scheduled at exactly the instant an actor wakes must run
	// before the actor resumes, so a packet "delivered at t" is visible to
	// a poller waking at t.
	v := NewVirtual(epoch)
	var delivered atomic.Bool
	v.Schedule(epoch.Add(5*time.Millisecond), func() { delivered.Store(true) })
	var sawIt bool
	done := v.Go(func() {
		v.Sleep(5 * time.Millisecond)
		sawIt = delivered.Load()
	})
	<-done
	if !sawIt {
		t.Fatal("actor waking at t did not observe event scheduled at t")
	}
}

func TestVirtualManyActorsConverge(t *testing.T) {
	v := NewVirtual(epoch)
	const actors = 8
	var total atomic.Int64
	var done []<-chan struct{}
	for i := 0; i < actors; i++ {
		i := i
		done = append(done, v.Go(func() {
			for step := 0; step < 100; step++ {
				v.Sleep(time.Duration(i+1) * time.Millisecond)
			}
			total.Add(1)
		}))
	}
	for _, ch := range done {
		<-ch
	}
	if total.Load() != actors {
		t.Fatalf("finished actors = %d, want %d", total.Load(), actors)
	}
	// Slowest actor sleeps 8ms x 100.
	if got := v.Elapsed(); got != 800*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 800ms", got)
	}
}

func TestVirtualActorSpawnsActor(t *testing.T) {
	v := NewVirtual(epoch)
	var childRan atomic.Bool
	done := v.Go(func() {
		v.Sleep(10 * time.Millisecond)
		child := v.Go(func() {
			v.Sleep(10 * time.Millisecond)
			childRan.Store(true)
		})
		v.Sleep(50 * time.Millisecond)
		<-child
	})
	<-done
	if !childRan.Load() {
		t.Fatal("child actor did not run")
	}
	if got := v.Elapsed(); got != 60*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 60ms", got)
	}
}

func TestVirtualDoneActorUnblocksOthers(t *testing.T) {
	// When one actor exits, the remaining actor must keep advancing.
	v := NewVirtual(epoch)
	short := v.Go(func() { v.Sleep(5 * time.Millisecond) })
	long := v.Go(func() { v.Sleep(500 * time.Millisecond) })
	<-short
	<-long
	if got := v.Elapsed(); got != 500*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 500ms", got)
	}
}

func TestVirtualDeterministicOrderAcrossRuns(t *testing.T) {
	run := func() []int {
		v := NewVirtual(epoch)
		var mu sync.Mutex
		var order []int
		var done []<-chan struct{}
		for i := 0; i < 5; i++ {
			i := i
			done = append(done, v.Go(func() {
				v.Sleep(time.Duration(10+i) * time.Millisecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				v.Sleep(time.Duration(50+i) * time.Millisecond)
				mu.Lock()
				order = append(order, 100+i)
				mu.Unlock()
			}))
		}
		for _, ch := range done {
			<-ch
		}
		return order
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d produced %v, first run produced %v", trial, again, first)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d produced %v, first run produced %v", trial, again, first)
			}
		}
	}
}

func TestRealClockSleepsApproximately(t *testing.T) {
	c := Real{}
	begin := c.Now()
	c.Sleep(10 * time.Millisecond)
	if got := c.Now().Sub(begin); got < 10*time.Millisecond {
		t.Fatalf("slept %v, want >= 10ms", got)
	}
	c.Sleep(-time.Hour) // must not block
}

func TestVirtualDoneWithoutAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVirtual(epoch).DoneActor()
}
