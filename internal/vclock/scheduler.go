package vclock

import "time"

// Scheduler extends Clock with the ability to run a callback after a delay.
// The simulated network and the network emulator use it to schedule packet
// deliveries, which makes them work identically over virtual time (in the
// experiment harness) and real time (live shaping in cmd/retroplay).
type Scheduler interface {
	Clock

	// ScheduleAfter runs fn once at least d has passed. A non-positive d
	// schedules fn as soon as possible. fn runs on an unspecified
	// goroutine and must not block.
	ScheduleAfter(d time.Duration, fn func())
}

// ScheduleAfter implements Scheduler for the real clock using time.AfterFunc.
func (Real) ScheduleAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, fn)
}

var _ Scheduler = Real{}
var _ Scheduler = (*Virtual)(nil)
