package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a discrete-event Clock. A fixed set of registered actor
// goroutines runs against it; whenever every registered actor is parked in
// Sleep, the clock jumps straight to the earliest pending wake-up or
// scheduled event. Sixty seconds of simulated game play therefore cost only
// as much wall time as the actors' own computation.
//
// Rules for correct use:
//
//   - Every goroutine that calls Sleep must be registered via AddActor (or
//     started with Go) and must call DoneActor when it finishes.
//   - Actors must not block on anything other than Sleep (channels, mutexes
//     held across Sleep, ...); all cross-actor communication has to go
//     through data structures that are polled, such as simnet queues.
//   - Schedule callbacks run while every actor is parked, so they may freely
//     mutate state shared with actors.
//
// Wake-ups at distinct instants happen in time order. Actors that wake at the
// same instant run concurrently in unspecified relative order, so
// deterministic simulations must not share mutable state between same-instant
// actors except through positively-delayed events (simnet enforces a minimum
// one-way delay for exactly this reason). Together with seeded randomness in
// the network emulator this yields fully reproducible runs: the experiment
// binaries print identical series on every invocation.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	start    time.Time
	actors   int
	parked   int
	sleepers sleeperQueue
	events   eventQueue
	seq      uint64

	// Free lists recycle sleeper and event records (and the sleepers' wake
	// channels) so a steady-state simulation — every frame sleeps once and
	// schedules a few deliveries — settles to zero allocations per frame.
	freeSleepers []*sleeper
	freeEvents   []*event
}

// NewVirtual returns a virtual clock whose current instant is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start, start: start}
}

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Elapsed returns how much virtual time has passed since the clock was
// created.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.Sub(v.start)
}

// AddActor registers the calling goroutine (or one about to be started) as a
// participant. The clock only advances while all registered actors sleep.
func (v *Virtual) AddActor() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.actors++
}

// DoneActor deregisters an actor. It must be called exactly once per
// AddActor, after the actor's final use of the clock.
func (v *Virtual) DoneActor() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.actors == 0 {
		panic("vclock: DoneActor without matching AddActor")
	}
	v.actors--
	v.advanceLocked()
}

// Go runs fn on a new registered actor goroutine and returns a channel that
// is closed when fn returns. It is the preferred way to start actors because
// it pairs AddActor/DoneActor automatically.
func (v *Virtual) Go(fn func()) <-chan struct{} {
	v.AddActor()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer v.DoneActor()
		fn()
	}()
	return done
}

// Sleep parks the calling actor until at least d of virtual time has passed.
// A non-positive d parks for zero duration, which still gives events
// scheduled at the current instant a chance to run first.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	var s *sleeper
	if n := len(v.freeSleepers); n > 0 {
		s = v.freeSleepers[n-1]
		v.freeSleepers[n-1] = nil
		v.freeSleepers = v.freeSleepers[:n-1]
	} else {
		// Capacity 1 so the waker's send never blocks while holding the
		// clock lock.
		s = &sleeper{ch: make(chan struct{}, 1)}
	}
	s.wake = v.now.Add(d)
	s.seq = v.nextSeq()
	heap.Push(&v.sleepers, s)
	v.parked++
	v.advanceLocked()
	v.mu.Unlock()
	<-s.ch
	// Only this goroutine holds s now (the waker released it with the send),
	// so it can go straight back on the free list.
	v.mu.Lock()
	v.freeSleepers = append(v.freeSleepers, s)
	v.mu.Unlock()
}

// Schedule runs fn when the virtual clock reaches at. If at is not after the
// current instant, fn runs at the next advance. Callbacks execute while all
// actors are parked and may call Schedule themselves.
func (v *Virtual) Schedule(at time.Time, fn func()) {
	v.mu.Lock()
	defer v.mu.Unlock()
	heap.Push(&v.events, v.newEventLocked(at, fn))
}

// ScheduleAfter runs fn once d of virtual time has passed.
func (v *Virtual) ScheduleAfter(d time.Duration, fn func()) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d < 0 {
		d = 0
	}
	heap.Push(&v.events, v.newEventLocked(v.now.Add(d), fn))
}

func (v *Virtual) newEventLocked(at time.Time, fn func()) *event {
	var e *event
	if n := len(v.freeEvents); n > 0 {
		e = v.freeEvents[n-1]
		v.freeEvents[n-1] = nil
		v.freeEvents = v.freeEvents[:n-1]
	} else {
		e = &event{}
	}
	e.at, e.seq, e.fn = at, v.nextSeq(), fn
	return e
}

func (v *Virtual) nextSeq() uint64 {
	v.seq++
	return v.seq
}

// advanceLocked moves time forward while every registered actor is parked.
// It runs due events (unlocked) in timestamp order and stops as soon as at
// least one sleeper has been woken.
func (v *Virtual) advanceLocked() {
	for v.actors > 0 && v.parked == v.actors {
		next, ok := v.nextWakeLocked()
		if !ok {
			// Every actor is parked yet nothing is pending. Cannot
			// happen: each parked actor owns a sleeper entry.
			panic(fmt.Sprintf("vclock: %d actors parked with no pending wake-ups", v.parked))
		}
		if next.After(v.now) {
			v.now = next
		}
		for len(v.events) > 0 && !v.events[0].at.After(v.now) {
			e := heap.Pop(&v.events).(*event)
			fn := e.fn
			e.fn = nil // release the closure; the record is recycled
			v.freeEvents = append(v.freeEvents, e)
			v.mu.Unlock()
			fn()
			v.mu.Lock()
		}
		woke := false
		for len(v.sleepers) > 0 && !v.sleepers[0].wake.After(v.now) {
			s := heap.Pop(&v.sleepers).(*sleeper)
			v.parked--
			s.ch <- struct{}{} // hands s back to its sleeping goroutine
			woke = true
		}
		if woke {
			return
		}
	}
}

func (v *Virtual) nextWakeLocked() (time.Time, bool) {
	var t time.Time
	ok := false
	if len(v.events) > 0 {
		t, ok = v.events[0].at, true
	}
	if len(v.sleepers) > 0 && (!ok || v.sleepers[0].wake.Before(t)) {
		t, ok = v.sleepers[0].wake, true
	}
	return t, ok
}

type sleeper struct {
	wake time.Time
	seq  uint64
	ch   chan struct{}
}

type sleeperQueue []*sleeper

func (q sleeperQueue) Len() int { return len(q) }
func (q sleeperQueue) Less(i, j int) bool {
	if !q[i].wake.Equal(q[j].wake) {
		return q[i].wake.Before(q[j].wake)
	}
	return q[i].seq < q[j].seq
}
func (q sleeperQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *sleeperQueue) Push(x interface{}) { *q = append(*q, x.(*sleeper)) }
func (q *sleeperQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}
