// Package vclock provides the clock abstraction used by every timing-
// sensitive component in retrolock.
//
// The synchronization algorithms of the paper (local-lag input merging and
// master/slave frame pacing) only ever observe time through two operations:
// reading the current instant and sleeping until a later instant. Abstracting
// those two operations behind the Clock interface lets the exact same
// protocol code run either against the host clock (live play over real UDP,
// see cmd/retroplay) or against a discrete-event virtual clock (the
// experiment harness that regenerates the paper's figures in milliseconds of
// wall time instead of minutes).
package vclock

import "time"

// Clock is the minimal time source required by the sync module, the network
// emulator and the experiment harness.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time

	// Sleep blocks the calling goroutine for at least d. A non-positive d
	// may still yield (virtual clocks treat it as a zero-length park so
	// that scheduled events at the current instant can run).
	Sleep(d time.Duration)
}

// Real is a Clock backed by the host's monotonic clock. The zero value is
// ready to use.
type Real struct{}

// Now reports the host time.
func (Real) Now() time.Time { return time.Now() }

// Sleep delegates to time.Sleep.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// System is a shared ready-to-use real clock.
var System Clock = Real{}
