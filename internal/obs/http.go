package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is the observability HTTP endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// expvarOnce guards the one-time expvar publication: expvar panics on
// duplicate names, and tests start several servers in one process. The first
// served registry is the one /debug/vars reflects (alongside the standard
// memstats/cmdline vars).
var expvarOnce sync.Once

// NewMux builds the observability mux for a registry:
//
//	/metrics        Prometheus text format
//	/healthz        health SLO verdict JSON (503 when infeasible)
//	/debug/vars     expvar JSON
//	/debug/pprof/   Go profiling endpoints
//	/debug/trace    Chrome trace_event JSON of the attached tracers
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/healthz", r.HealthHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/trace", r.TraceHandler())
	mux.Handle("/debug/flight/dump", r.DumpHandler())
	for _, e := range r.ExtraHandlers() {
		mux.Handle(e.Pattern, e.Handler)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, `<html><body><h1>retrolock observability</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text format</li>
<li><a href="/healthz">/healthz</a> — health SLO verdict (503 when infeasible)</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — profiling</li>
<li><a href="/debug/trace">/debug/trace</a> — Chrome trace_event JSON (open in chrome://tracing)</li>
</ul></body></html>`)
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":6060", or
// "127.0.0.1:0" to pick a free port — read it back from Addr). The server
// runs until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	expvarOnce.Do(func() {
		expvar.Publish("retrolock", expvar.Func(func() interface{} { return r.Snapshot() }))
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(r)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
