// Package obs is the live observability layer: a fixed-capacity, zero-alloc
// frame-event tracer, lock-free histogram and counter primitives, and a
// metric registry served over HTTP (Prometheus text, expvar, pprof, Chrome
// trace_event JSON).
//
// The paper's evaluation is offline — Figures 1 and 2 are computed after the
// run from recorded frame times — but a production-scale service needs to
// answer "is this session healthy right now" without stopping it. obs is
// that answer: the frame loop records typed events into a bounded ring and
// bumps atomic histograms (neither allocates, so PR 1's zero-alloc hot path
// survives instrumentation), and any other goroutine — an HTTP scrape, the
// chaos harness's phase snapshots — reads them live.
//
// The package deliberately imports nothing from the rest of the repository:
// core, transport, netem and the binaries all import obs, and each registers
// its own adapters (core.RegisterSessionMetrics, transport.RegisterARQMetrics,
// netem.RegisterLinkMetrics) so the dependency arrow only points here.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// EventKind classifies one tracer event.
type EventKind uint8

const (
	// EvNone is the zero value; it never appears in a snapshot.
	EvNone EventKind = iota
	// EvFrameStart marks BeginFrameTiming of a frame (Algorithm 1 step 5).
	EvFrameStart
	// EvFrameEnd marks the completion of EndFrameTiming (step 10).
	EvFrameEnd
	// EvInputSend marks one sync message transmitted; Arg is its byte size.
	EvInputSend
	// EvInputRecv marks one sync message accepted; Arg is its input count.
	EvInputRecv
	// EvRetransmit marks one ARQ segment retransmission; Arg is the
	// segment's sequence number (Frame is -1: ARQ is below frame numbering).
	EvRetransmit
	// EvStall marks a SyncInput call that had to block; Arg is the wait in
	// nanoseconds.
	EvStall
	// EvRollback marks a restore+replay episode of the rollback baseline;
	// Arg is the rollback depth in frames.
	EvRollback
	// EvIncident marks a flight-recorder incident trigger (divergence,
	// liveness stall, panic, or a manual dump); Arg is the incident kind
	// code the triggering layer assigned.
	EvIncident
	// EvHealth marks a health SLO state transition; Arg encodes the
	// transition as from<<8 | to (HealthState codes). Frame is -1: health
	// windows span many frames.
	EvHealth
	// EvAlert marks a burn-rate alert transition; Arg encodes the rule
	// index<<1 | state (1 firing, 0 resolved). Frame is -1: alerts grade
	// minutes of budget, not frames.
	EvAlert
)

// String returns the JSONL/trace name of the kind.
func (k EventKind) String() string {
	switch k {
	case EvFrameStart:
		return "frame_start"
	case EvFrameEnd:
		return "frame_end"
	case EvInputSend:
		return "input_send"
	case EvInputRecv:
		return "input_recv"
	case EvRetransmit:
		return "retransmit"
	case EvStall:
		return "stall"
	case EvRollback:
		return "rollback"
	case EvIncident:
		return "incident"
	case EvHealth:
		return "health"
	case EvAlert:
		return "alert"
	}
	return "unknown"
}

// Event is one tracer entry. The struct is a fixed 24 bytes so a tracer's
// memory is exactly capacity*24 for the lifetime of the session.
type Event struct {
	// At is the event instant in nanoseconds since the tracer's epoch.
	At int64
	// Arg carries the kind-specific payload (see the EventKind docs).
	Arg int64
	// Frame is the frame number the event belongs to (-1 when the event is
	// not tied to a frame, e.g. ARQ retransmissions).
	Frame int32
	// Site is the recording site.
	Site int16
	// Kind classifies the event.
	Kind EventKind
}

// Tracer is a fixed-capacity ring of Events. Record never allocates and
// never blocks for long (a mutex-guarded slot write); when the ring is full
// the oldest events are overwritten, so a tracer attached to a week-long
// session costs constant memory and always holds the freshest timeline.
//
// A nil *Tracer is valid and records nothing, so call sites need no guards.
type Tracer struct {
	epoch time.Time
	mask  uint64

	mu  sync.Mutex
	n   uint64 // total events ever recorded
	buf []Event
}

// NewTracer builds a tracer holding the last capacity events (rounded up to
// a power of two, minimum 16). epoch anchors Event.At; use the session
// clock's start so timestamps align across sites sharing a clock.
func NewTracer(capacity int, epoch time.Time) *Tracer {
	c := 16
	for c < capacity {
		c <<= 1
	}
	return &Tracer{epoch: epoch, mask: uint64(c - 1), buf: make([]Event, c)}
}

// Epoch returns the instant Event.At counts from.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Record appends one event. Safe for concurrent use; never allocates; a nil
// receiver is a no-op.
func (t *Tracer) Record(kind EventKind, site, frame int, at time.Time, arg int64) {
	if t == nil {
		return
	}
	e := Event{
		At:    at.Sub(t.epoch).Nanoseconds(),
		Arg:   arg,
		Frame: int32(frame),
		Site:  int16(site),
		Kind:  kind,
	}
	t.mu.Lock()
	t.buf[t.n&t.mask] = e
	t.n++
	t.mu.Unlock()
}

// Total reports how many events were ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Cap reports the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Snapshot copies the retained events in recording order (oldest first).
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.n
	if c := uint64(len(t.buf)); size > c {
		size = c
	}
	out := make([]Event, 0, size)
	for i := t.n - size; i < t.n; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	return out
}

// WriteJSONL writes the retained events as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Snapshot() {
		fmt.Fprintf(bw, `{"at_ns":%d,"kind":%q,"site":%d,"frame":%d,"arg":%d}`+"\n",
			e.At, e.Kind.String(), e.Site, e.Frame, e.Arg)
	}
	return bw.Flush()
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev). Each site becomes
// one named thread; frame start/end pairs become duration slices, everything
// else instant events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Snapshot())
}

// WriteChromeTrace renders an event slice (already in time order, e.g. a
// merged snapshot of several tracers sharing an epoch) as Chrome trace_event
// JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	sites := map[int16]bool{}
	for _, e := range events {
		sites[e.Site] = true
	}
	ordered := make([]int, 0, len(sites))
	for s := range sites {
		ordered = append(ordered, int(s))
	}
	sort.Ints(ordered)
	for _, s := range ordered {
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"site %d"}}`, s, s)
	}

	// depth suppresses an unmatched frame_end at the head of a wrapped ring
	// (its frame_start was overwritten); Chrome rejects stray "E" phases.
	depth := map[int16]int{}
	for _, e := range events {
		ts := float64(e.At) / 1e3 // trace_event timestamps are microseconds
		switch e.Kind {
		case EvFrameStart:
			depth[e.Site]++
			emit(`{"name":"frame","cat":"frame","ph":"B","ts":%.3f,"pid":1,"tid":%d,"args":{"frame":%d}}`,
				ts, e.Site, e.Frame)
		case EvFrameEnd:
			if depth[e.Site] == 0 {
				continue
			}
			depth[e.Site]--
			emit(`{"name":"frame","cat":"frame","ph":"E","ts":%.3f,"pid":1,"tid":%d}`, ts, e.Site)
		default:
			emit(`{"name":%q,"cat":"sync","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"frame":%d,"arg":%d}}`,
				e.Kind.String(), ts, e.Site, e.Frame, e.Arg)
		}
	}
	bw.WriteString("]}")
	return bw.Flush()
}

// SessionObs bundles the instrumentation a session carries: a tracer for the
// event timeline and histograms for the latency distributions. Any field may
// be nil (and the whole bundle may be nil) — every hook degrades to a no-op,
// so core's hot path needs no configuration branches.
type SessionObs struct {
	// Site labels every recorded event.
	Site int
	// Tracer receives the frame/sync event timeline.
	Tracer *Tracer
	// FrameTime observes each frame's wall duration (ns).
	FrameTime *Histogram
	// Wait observes each blocking SyncInput's wait (ns).
	Wait *Histogram
	// RTT observes accepted round-trip samples (ns).
	RTT *Histogram
}

// FrameStart records the begin instant of a frame.
func (o *SessionObs) FrameStart(frame int, at time.Time) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvFrameStart, o.Site, frame, at, 0)
}

// FrameEnd records a frame's completion and observes its duration.
func (o *SessionObs) FrameEnd(frame int, start, end time.Time) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvFrameEnd, o.Site, frame, end, 0)
	o.FrameTime.Observe(end.Sub(start).Nanoseconds())
}

// InputSend records one transmitted sync message of the given size.
func (o *SessionObs) InputSend(frame int, at time.Time, bytes int) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvInputSend, o.Site, frame, at, int64(bytes))
}

// InputRecv records one accepted sync message carrying inputs input words.
func (o *SessionObs) InputRecv(frame int, at time.Time, inputs int) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvInputRecv, o.Site, frame, at, int64(inputs))
}

// Stall records a blocking SyncInput wait.
func (o *SessionObs) Stall(frame int, at time.Time, d time.Duration) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvStall, o.Site, frame, at, int64(d))
	o.Wait.Observe(int64(d))
}

// RTTSample observes an accepted round-trip measurement.
func (o *SessionObs) RTTSample(d time.Duration) {
	if o == nil {
		return
	}
	o.RTT.Observe(int64(d))
}

// Rollback records a restore+replay episode of depth frames.
func (o *SessionObs) Rollback(frame int, at time.Time, depth int) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvRollback, o.Site, frame, at, int64(depth))
}

// Incident records an incident trigger (flight-recorder dump) with the
// triggering layer's kind code as the argument, so the live timeline shows
// exactly when and why the black box fired.
func (o *SessionObs) Incident(frame int, at time.Time, kind int64) {
	if o == nil {
		return
	}
	o.Tracer.Record(EvIncident, o.Site, frame, at, kind)
}
