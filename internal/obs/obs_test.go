package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

func TestTracerRingKeepsFreshest(t *testing.T) {
	tr := NewTracer(16, epoch)
	for i := 0; i < 40; i++ {
		tr.Record(EvFrameStart, 0, i, epoch.Add(time.Duration(i)*time.Millisecond), 0)
	}
	if got := tr.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot len = %d, want ring capacity 16", len(snap))
	}
	for i, e := range snap {
		if want := int32(40 - 16 + i); e.Frame != want {
			t.Fatalf("snap[%d].Frame = %d, want %d (oldest-first, freshest retained)", i, e.Frame, want)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(EvStall, 0, 1, epoch, 2) // must not panic
	if tr.Snapshot() != nil || tr.Total() != 0 || tr.Cap() != 0 {
		t.Fatal("nil tracer must read as empty")
	}
	var o *SessionObs
	o.FrameStart(1, epoch)
	o.FrameEnd(1, epoch, epoch)
	o.InputSend(1, epoch, 10)
	o.InputRecv(1, epoch, 3)
	o.Stall(1, epoch, time.Millisecond)
	o.RTTSample(time.Millisecond)
	o.Rollback(1, epoch, 2)
	// SessionObs with nil parts must also be safe.
	(&SessionObs{}).FrameEnd(1, epoch, epoch.Add(time.Millisecond))
}

func TestTracerRecordDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1<<10, epoch)
	at := epoch.Add(time.Second)
	if avg := testing.AllocsPerRun(1000, func() {
		tr.Record(EvInputSend, 1, 42, at, 64)
	}); avg != 0 {
		t.Fatalf("Tracer.Record allocates %.1f/op, want 0", avg)
	}
	h := &Histogram{}
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	}); avg != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", avg)
	}
}

func TestTracerConcurrentRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(256, epoch)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for site := 0; site < 2; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					tr.Record(EvFrameStart, site, i, epoch.Add(time.Duration(i)), 0)
				}
			}
		}(site)
	}
	for i := 0; i < 100; i++ {
		_ = tr.Snapshot()
		_ = tr.Total()
	}
	close(stop)
	wg.Wait()
}

// TestChromeTraceExport checks the export is valid trace_event JSON of the
// shape chrome://tracing loads: a traceEvents array whose entries carry
// name/ph/ts/pid/tid, with B/E pairs balanced per thread.
func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(64, epoch)
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	// An unmatched frame_end first, as after a ring wrap: must be dropped.
	tr.Record(EvFrameEnd, 0, 9, at(0), 0)
	for f := 10; f < 13; f++ {
		tr.Record(EvFrameStart, 0, f, at(f*10), 0)
		tr.Record(EvInputSend, 0, f, at(f*10+2), 48)
		tr.Record(EvStall, 0, f, at(f*10+4), int64(3*time.Millisecond))
		tr.Record(EvFrameEnd, 0, f, at(f*10+8), 0)
	}
	tr.Record(EvRetransmit, 1, -1, at(200), 7)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	depth := map[float64]int{}
	for _, e := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
		switch e["ph"] {
		case "B":
			depth[e["tid"].(float64)]++
		case "E":
			depth[e["tid"].(float64)]--
			if depth[e["tid"].(float64)] < 0 {
				t.Fatal("unbalanced E event leaked into the export")
			}
		}
	}
}

func TestJSONLExport(t *testing.T) {
	tr := NewTracer(16, epoch)
	tr.Record(EvInputRecv, 1, 7, epoch.Add(time.Millisecond), 3)
	tr.Record(EvRollback, 1, 9, epoch.Add(2*time.Millisecond), 4)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var e struct {
			AtNs  int64  `json:"at_ns"`
			Kind  string `json:"kind"`
			Site  int    `json:"site"`
			Frame int    `json:"frame"`
			Arg   int64  `json:"arg"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if e.Site != 1 {
			t.Fatalf("line %q: site = %d, want 1", line, e.Site)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)  // bucket 0
	h.Observe(1)  // bucket 1
	h.Observe(5)  // bucket 3: [4,7]
	h.Observe(7)  // bucket 3
	h.Observe(-3) // clamps to 0
	b := h.Buckets()
	if b[0] != 2 || b[1] != 1 || b[3] != 2 {
		t.Fatalf("buckets = %v", b[:5])
	}
	if h.Count() != 5 || h.Sum() != 13 {
		t.Fatalf("count=%d sum=%d, want 5, 13", h.Count(), h.Sum())
	}
	if q := h.Quantile(1); q != 7 {
		t.Fatalf("Quantile(1) = %d, want 7 (bound of bucket 3)", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %d, want 0", q)
	}
	if BucketBound(3) != 7 || BucketBound(0) != 0 {
		t.Fatal("BucketBound wrong")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		_ = h.Buckets()
		_ = h.Quantile(0.99)
		_ = h.Mean()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}
