package obs

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestQuantilePropertyAgainstSortedSamples is the property-based check of
// Histogram.Quantile: for random sample sets and random quantiles, the
// reported value must equal the bucket bound of the exact order-statistic,
// and therefore bracket it within one power-of-two bucket width:
//
//	x <= Quantile(q) <= 2x-1   where x = sorted[ceilish(q*n)-1]
func TestQuantilePropertyAgainstSortedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		h := &Histogram{}
		samples := make([]int64, n)
		for i := range samples {
			// Spread over decades, like real latency distributions; bias
			// some trials toward small values to exercise low buckets.
			switch rng.Intn(3) {
			case 0:
				samples[i] = rng.Int63n(64)
			case 1:
				samples[i] = rng.Int63n(1 << 20)
			default:
				samples[i] = rng.Int63n(1 << 40)
			}
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			need := int64(q * float64(n))
			if need < 1 {
				need = 1
			}
			x := samples[need-1]
			got := h.Quantile(q)
			want := BucketBound(bits.Len64(uint64(x)))
			if got != want {
				t.Fatalf("trial %d n=%d q=%g: Quantile=%d, want bucket bound %d of exact %d",
					trial, n, q, got, want, x)
			}
			// Error bounded by the bucket width: x <= got <= 2x-1 (for x>0).
			if uint64(x) > got {
				t.Fatalf("trial %d q=%g: Quantile=%d below exact order statistic %d", trial, q, got, x)
			}
			if x > 0 && got > uint64(2*x-1) {
				t.Fatalf("trial %d q=%g: Quantile=%d beyond 2x-1 of exact %d", trial, q, got, x)
			}
			if x == 0 && got != 0 {
				t.Fatalf("trial %d q=%g: Quantile=%d for exact 0", trial, q, got)
			}
		}
	}
}

// TestQuantileOfBucketsWindowedDelta checks the windowed (delta) form the
// health engine uses: quantiles of a bucket difference must match a fresh
// histogram fed only the window's samples.
func TestQuantileOfBucketsWindowedDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Int63n(1 << 30))
	}
	base := h.Buckets()
	baseCount := h.Count()

	window := &Histogram{}
	for i := 0; i < 300; i++ {
		v := rng.Int63n(1 << 35)
		h.Observe(v)
		window.Observe(v)
	}
	cur := h.Buckets()
	var delta [histBuckets]int64
	for i := range cur {
		delta[i] = cur[i] - base[i]
	}
	deltaCount := h.Count() - baseCount
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := QuantileOfBuckets(delta, deltaCount, q), window.Quantile(q); got != want {
			t.Fatalf("q=%g: windowed delta quantile %d != fresh histogram %d", q, got, want)
		}
	}
	if QuantileOfBuckets(delta, 0, 0.5) != 0 {
		t.Fatal("empty window must report 0")
	}
}

// TestRegistrySnapshotWhileWriting hammers a registry's read paths from
// several goroutines while writers keep observing — the -race proof that
// Snapshot/WritePrometheus/Quantile may be polled live.
func TestRegistrySnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	hist := r.NewHistogram("retrolock_test_latency_ns", SiteLabels(0), "test")
	ctr := r.NewCounter("retrolock_test_events_total", SiteLabels(0), "test")
	health := NewHealth(HealthConfig{}, HealthSources{RTT: hist})
	health.Register(r, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				hist.Observe(rng.Int63n(1 << 32))
				ctr.Inc()
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() { // health evaluations race the writers too
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			health.Evaluate(time.Unix(int64(i), 0))
			_ = health.Signals()
		}
	}()

	deadline := time.After(200 * time.Millisecond)
	var discard discardWriter
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
		}
		snap := r.Snapshot()
		if snap[Key("retrolock_test_latency_ns", SiteLabels(0))+"_count"] < 0 {
			t.Fatal("negative count")
		}
		_ = r.WritePrometheus(&discard)
		_ = hist.Quantile(0.99)
		_ = hist.Buckets()
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
