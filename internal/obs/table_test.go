package obs

import "testing"

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"profile", "mode", "healthy"}}
	tb.AddRow("wifi", "lockstep", "100.0%")
	tb.AddRow("transcontinental", "rollback", "0.0%")
	want := "" +
		"profile           mode      healthy\n" +
		"-------           ----      -------\n" +
		"wifi              lockstep  100.0%\n" +
		"transcontinental  rollback  0.0%\n"
	if got := tb.String(); got != want {
		t.Errorf("rendered table mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: rendering twice yields identical bytes.
	if tb.String() != tb.String() {
		t.Error("String() is not deterministic")
	}
	// No trailing spaces on any line (a golden-file hygiene property: editors
	// and diff tools mangle them).
	for i, line := range splitLines(tb.String()) {
		if len(line) > 0 && line[len(line)-1] == ' ' {
			t.Errorf("line %d has trailing space: %q", i, line)
		}
	}
	if (&Table{}).String() != "" {
		t.Error("empty table should render empty")
	}
	// Ragged rows pad/widen without panicking.
	rg := &Table{Header: []string{"a"}}
	rg.AddRow("x", "y", "z")
	rg.AddRow()
	if rg.String() == "" {
		t.Error("ragged table rendered empty")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
