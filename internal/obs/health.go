package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// The health SLO engine: a small state machine that renders the paper's
// offline feasibility judgment — 60 FPS with sub-10 ms skew holds up to
// roughly 140 ms RTT — as a live verdict over windowed metric snapshots.
//
// Each Evaluate call closes one window: it diffs the attached histograms and
// counters against the previous evaluation, computes windowed quantiles and
// rates, grades every signal (RTT median, skew quantile, frame-time mean,
// ARQ retransmit rate) and takes the worst grade as the window's verdict.
// Degradation is immediate — the engine exists to catch the cliff before
// players feel it — while recovery is hysteretic: the verdict must hold
// strictly better than the current state for RecoverAfter consecutive
// windows before the state steps down, so a session bouncing around the
// threshold does not flap.

// HealthState is the engine's verdict.
type HealthState int32

const (
	// Healthy: every signal is inside the paper's feasibility region.
	Healthy HealthState = iota
	// Degraded: at least one signal is approaching its infeasibility
	// threshold — the session still runs at full speed but has little
	// headroom left.
	Degraded
	// Infeasible: at least one signal crossed the threshold beyond which
	// the paper's evaluation shows lockstep cannot hold 60 FPS with
	// sub-10 ms skew.
	Infeasible
)

// String returns the verdict's wire/JSON name.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Infeasible:
		return "infeasible"
	}
	return "unknown"
}

// HealthSources are the live series the engine grades. Any field may be nil;
// a nil source simply contributes no signal.
type HealthSources struct {
	// FrameTime is the per-frame wall-duration histogram (ns).
	FrameTime *Histogram
	// Skew is the cross-site execution-skew histogram (ns).
	Skew *Histogram
	// RTT is the round-trip-time histogram (ns).
	RTT *Histogram
	// Retransmits returns the lifetime ARQ retransmission count.
	Retransmits func() int64
	// Frames returns the lifetime executed-frame count (normalizes the
	// retransmit rate).
	Frames func() int64
}

// HealthConfig sets the grading thresholds. The zero value selects the
// paper-derived defaults (see withDefaults).
type HealthConfig struct {
	// RTTInfeasible is the windowed median RTT at or above which the
	// session is infeasible (default 140 ms — the paper's cliff);
	// RTTDegraded marks the warning band below it (default 0.8x = 112 ms).
	RTTInfeasible time.Duration
	RTTDegraded   time.Duration

	// SkewInfeasible grades the windowed SkewQuantile of the skew
	// histogram (default 35 ms — just above the 33.6 ms bucket bound, so
	// a quantile in the (16.8, 33.6] bucket reads as a warning, not a
	// verdict; infeasible starts at the 67.1 ms bucket). SkewDegraded is
	// the warning band (default 10 ms — the paper's playability bound;
	// with bucket quantization, healthy requires p-quantile <= 8.4 ms).
	SkewInfeasible time.Duration
	SkewDegraded   time.Duration
	// SkewQuantile is which quantile to grade (default 0.9).
	SkewQuantile float64

	// FrameTarget is the nominal frame duration (default 16.67 ms);
	// the windowed mean frame time grades degraded/infeasible at
	// FrameTarget+FrameDegradedMargin / +FrameInfeasibleMargin (defaults
	// 5 ms / 11 ms: one lost frame of slack vs visibly broken pacing).
	FrameTarget           time.Duration
	FrameDegradedMargin   time.Duration
	FrameInfeasibleMargin time.Duration

	// RetransDegraded / RetransInfeasible grade the windowed ARQ
	// retransmissions-per-frame rate (defaults 0.2 / 1.0).
	RetransDegraded   float64
	RetransInfeasible float64

	// MinSamples is the least observations a histogram window needs before
	// its signal is graded (default 8); smaller windows abstain.
	MinSamples int64

	// RecoverAfter is how many consecutive windows must grade strictly
	// better than the current state before it improves (default 3).
	RecoverAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.RTTInfeasible <= 0 {
		c.RTTInfeasible = 140 * time.Millisecond
	}
	if c.RTTDegraded <= 0 {
		c.RTTDegraded = c.RTTInfeasible * 8 / 10
	}
	if c.SkewInfeasible <= 0 {
		c.SkewInfeasible = 35 * time.Millisecond
	}
	if c.SkewDegraded <= 0 {
		c.SkewDegraded = 10 * time.Millisecond
	}
	if c.SkewQuantile <= 0 || c.SkewQuantile > 1 {
		c.SkewQuantile = 0.9
	}
	if c.FrameTarget <= 0 {
		c.FrameTarget = 16670 * time.Microsecond
	}
	if c.FrameDegradedMargin <= 0 {
		c.FrameDegradedMargin = 5 * time.Millisecond
	}
	if c.FrameInfeasibleMargin <= 0 {
		c.FrameInfeasibleMargin = 11 * time.Millisecond
	}
	if c.RetransDegraded <= 0 {
		c.RetransDegraded = 0.2
	}
	if c.RetransInfeasible <= 0 {
		c.RetransInfeasible = 1.0
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	return c
}

// HealthSignals is one evaluated window, exposed for /healthz and reports.
type HealthSignals struct {
	State HealthState `json:"-"`
	// StateName mirrors State for JSON readers.
	StateName string `json:"state"`
	// Window is how many evaluations have run.
	Window int64 `json:"window"`
	// RTTp50 is the windowed median RTT in ns (0: no samples).
	RTTp50 int64 `json:"rtt_p50_ns"`
	// SkewQ is the windowed skew quantile in ns (0: no samples).
	SkewQ int64 `json:"skew_q_ns"`
	// FrameMean is the windowed mean frame time in ns (0: no samples).
	FrameMean int64 `json:"frame_mean_ns"`
	// RetransPerFrame is the windowed ARQ retransmit rate.
	RetransPerFrame float64 `json:"retrans_per_frame"`
	// Transitions counts state changes since the engine started.
	Transitions int64 `json:"transitions"`
}

// Health is the SLO engine. Build with NewHealth; drive with Evaluate (any
// single goroutine — the frame loop, a chaos phase boundary, a ticker); read
// State/Signals from anywhere.
type Health struct {
	cfg HealthConfig
	src HealthSources

	state       atomic.Int32
	transitions atomic.Int64

	// Optional transition sinks.
	tracer *Tracer
	site   int
	// OnTransition, when set, observes every state change (called inside
	// Evaluate, so it must not call back into the engine). Set before the
	// first Evaluate.
	OnTransition func(from, to HealthState)

	mu         sync.Mutex
	windows    int64
	goodStreak int
	last       HealthSignals
	// Previous-evaluation baselines for windowed deltas.
	prevFrame  histBase
	prevSkew   histBase
	prevRTT    histBase
	prevRet    int64
	prevFrames int64
}

type histBase struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
}

// delta closes one window over h: it returns the bucket/count/sum deltas
// since the previous window and advances the baseline.
func (b *histBase) delta(h *Histogram) (buckets [histBuckets]int64, count, sum int64) {
	if h == nil {
		return
	}
	cur := h.Buckets()
	curCount, curSum := h.Count(), h.Sum()
	for i := range cur {
		buckets[i] = cur[i] - b.buckets[i]
	}
	count = curCount - b.count
	sum = curSum - b.sum
	b.buckets, b.count, b.sum = cur, curCount, curSum
	return
}

// NewHealth builds an engine grading src under cfg (zero value: defaults).
func NewHealth(cfg HealthConfig, src HealthSources) *Health {
	return &Health{cfg: cfg.withDefaults(), src: src}
}

// SetTracer routes state transitions into a tracer as EvHealth events
// (Arg encodes from<<8 | to) attributed to site.
func (h *Health) SetTracer(site int, t *Tracer) {
	h.tracer = t
	h.site = site
}

// State returns the current verdict. Safe from any goroutine.
func (h *Health) State() HealthState {
	if h == nil {
		return Healthy
	}
	return HealthState(h.state.Load())
}

// Transitions returns how many state changes have occurred.
func (h *Health) Transitions() int64 {
	if h == nil {
		return 0
	}
	return h.transitions.Load()
}

// Signals returns the most recently evaluated window.
func (h *Health) Signals() HealthSignals {
	if h == nil {
		return HealthSignals{StateName: Healthy.String()}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.last
	s.State = h.State()
	s.StateName = s.State.String()
	s.Transitions = h.transitions.Load()
	return s
}

// grade folds one signal's verdict into the window's worst-so-far.
func grade(worst HealthState, v int64, degraded, infeasible int64) HealthState {
	switch {
	case v >= infeasible:
		return maxState(worst, Infeasible)
	case v >= degraded:
		return maxState(worst, Degraded)
	}
	return worst
}

func maxState(a, b HealthState) HealthState {
	if b > a {
		return b
	}
	return a
}

// Evaluate closes the current window, grades it, applies hysteresis and
// returns the (possibly new) state. Call it from one goroutine at a steady
// cadence (e.g. once per second of frames); at records the transition
// instant in the tracer.
func (h *Health) Evaluate(at time.Time) HealthState {
	h.mu.Lock()
	h.windows++

	_, frameC, frameS := h.prevFrame.delta(h.src.FrameTime)
	skewB, skewC, _ := h.prevSkew.delta(h.src.Skew)
	rttB, rttC, _ := h.prevRTT.delta(h.src.RTT)

	sig := HealthSignals{Window: h.windows}
	verdict := Healthy

	if rttC >= h.cfg.MinSamples {
		sig.RTTp50 = int64(QuantileOfBuckets(rttB, rttC, 0.5))
		verdict = grade(verdict, sig.RTTp50, int64(h.cfg.RTTDegraded), int64(h.cfg.RTTInfeasible))
	}
	if skewC >= h.cfg.MinSamples {
		sig.SkewQ = int64(QuantileOfBuckets(skewB, skewC, h.cfg.SkewQuantile))
		verdict = grade(verdict, sig.SkewQ, int64(h.cfg.SkewDegraded), int64(h.cfg.SkewInfeasible))
	}
	if frameC >= h.cfg.MinSamples {
		sig.FrameMean = frameS / frameC
		verdict = grade(verdict, sig.FrameMean,
			int64(h.cfg.FrameTarget+h.cfg.FrameDegradedMargin),
			int64(h.cfg.FrameTarget+h.cfg.FrameInfeasibleMargin))
	}
	if h.src.Retransmits != nil && h.src.Frames != nil {
		ret, frames := h.src.Retransmits(), h.src.Frames()
		dRet, dFrames := ret-h.prevRet, frames-h.prevFrames
		h.prevRet, h.prevFrames = ret, frames
		if dFrames > 0 {
			sig.RetransPerFrame = float64(dRet) / float64(dFrames)
			switch {
			case sig.RetransPerFrame >= h.cfg.RetransInfeasible:
				verdict = maxState(verdict, Infeasible)
			case sig.RetransPerFrame >= h.cfg.RetransDegraded:
				verdict = maxState(verdict, Degraded)
			}
		}
	}

	// Hysteresis: degrade immediately, recover only after RecoverAfter
	// consecutive strictly-better windows.
	cur := HealthState(h.state.Load())
	next := cur
	switch {
	case verdict > cur:
		next = verdict
		h.goodStreak = 0
	case verdict < cur:
		h.goodStreak++
		if h.goodStreak >= h.cfg.RecoverAfter {
			next = verdict
			h.goodStreak = 0
		}
	default:
		h.goodStreak = 0
	}

	sig.State = next
	sig.StateName = next.String()
	if next != cur {
		h.state.Store(int32(next))
		h.transitions.Add(1)
	}
	sig.Transitions = h.transitions.Load()
	h.last = sig
	tracer, site, onTrans := h.tracer, h.site, h.OnTransition
	h.mu.Unlock()

	if next != cur {
		tracer.Record(EvHealth, site, -1, at, int64(cur)<<8|int64(next))
		if onTrans != nil {
			onTrans(cur, next)
		}
	}
	return next
}

// Register wires the engine's verdict into a registry as the canonical
// retrolock_health_state gauge (0 healthy / 1 degraded / 2 infeasible) and
// retrolock_health_transitions counter, labeled with site, and attaches the
// engine so the registry's mux can serve /healthz.
func (h *Health) Register(r *Registry, site int) {
	r.GaugeFunc("retrolock_health_state", SiteLabels(site),
		"live session-health verdict (0 healthy, 1 degraded, 2 infeasible)",
		func() float64 { return float64(h.State()) })
	r.CounterFunc("retrolock_health_transitions", SiteLabels(site),
		"health SLO state transitions since session start",
		func() float64 { return float64(h.Transitions()) })
	r.SetHealth(h)
}

// QuantileOfBuckets returns an upper bound on the q-quantile of a power-of-
// two bucket snapshot (as produced by Histogram.Buckets, or a delta of two
// snapshots — a windowed quantile). total is the observation count of the
// snapshot; 0 is returned when it is not positive.
func QuantileOfBuckets(counts [histBuckets]int64, total int64, q float64) uint64 {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := int64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= need {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}
