package obs

import "strings"

// Table renders fixed-width ASCII tables for experiment reports — the QoE
// verdict tables in EXPERIMENTS.md and the golden baselines CI diffs come
// through here. The renderer is deliberately boring and deterministic: same
// cells in, same bytes out, so a checked-in table can be compared with
// bytes.Equal.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row. Short rows are padded with empty cells at render
// time; long rows widen the table.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with a header rule, two-space gutters and
// left-aligned cells:
//
//	profile  mode      healthy  degraded
//	-------  ----      -------  --------
//	wifi     lockstep  100.0%   0.0%
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return ""
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	writeRow := func(r []string) {
		last := len(r) - 1
		for last >= 0 && r[last] == "" {
			last--
		}
		for i := 0; i <= last; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b.WriteString(cell)
			if i < last {
				b.WriteString(strings.Repeat(" ", width[i]-len(cell)+2))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		rule := make([]string, len(t.Header))
		for i, h := range t.Header {
			rule[i] = strings.Repeat("-", len(h))
		}
		writeRow(rule)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
