package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Process-level series every daemon obs surface exports: what build is
// running (retrolock_build_info) and how the Go runtime underneath it is
// doing (retrolock_runtime_*). The runtime reads piggyback on scrapes and
// history samples — nothing polls in the background — and the GC pause
// histogram is fed incrementally from memstats' pause ring, so it composes
// with the windowed bucket-delta machinery like every other histogram here.

// Process metric names.
const (
	MetricBuildInfo         = "retrolock_build_info"
	MetricRuntimeGoroutines = "retrolock_runtime_goroutines"
	MetricRuntimeHeapBytes  = "retrolock_runtime_heap_bytes"
	MetricRuntimeGCTotal    = "retrolock_runtime_gc_total"
	MetricRuntimeGCPauseNs  = "retrolock_runtime_gc_pause_ns"
	MetricRuntimeUptime     = "retrolock_runtime_uptime_seconds"
)

// processCollector refreshes memstats-derived series at most once per
// refreshEvery, shared by every read closure so a scrape touching several
// series costs one ReadMemStats.
type processCollector struct {
	mu         sync.Mutex
	stats      runtime.MemStats
	lastAt     time.Time
	lastNumGC  uint32
	pause      *Histogram
	start      time.Time
	refreshery time.Duration
}

// refresh re-reads memstats (rate-limited) and drains any new GC pauses
// into the pause histogram. memstats keeps the last 256 pauses in a ring
// indexed by NumGC; draining by NumGC delta conserves every pause unless
// more than 256 GCs happen between reads.
func (c *processCollector) refresh() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if !c.lastAt.IsZero() && now.Sub(c.lastAt) < c.refreshery {
		return
	}
	c.lastAt = now
	runtime.ReadMemStats(&c.stats)
	n := c.stats.NumGC - c.lastNumGC
	if n > uint32(len(c.stats.PauseNs)) {
		n = uint32(len(c.stats.PauseNs))
	}
	for i := c.stats.NumGC - n; i < c.stats.NumGC; i++ {
		c.pause.Observe(int64(c.stats.PauseNs[i%uint32(len(c.stats.PauseNs))]))
	}
	c.lastNumGC = c.stats.NumGC
}

// buildLabels extracts version/go/VCS identity from the embedded build info.
// Values degrade to "unknown" in unstamped builds (go test binaries) so the
// series shape is stable everywhere.
func buildLabels() Labels {
	l := Labels{"version": "unknown", "go": runtime.Version(), "vcs": "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return l
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		l["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			l["vcs"] = s.Value
		}
	}
	return l
}

// RegisterProcessMetrics publishes the process series on r:
//
//	retrolock_build_info{version,go,vcs}  constant 1 (identity as labels)
//	retrolock_runtime_goroutines          live goroutine count
//	retrolock_runtime_heap_bytes          heap in use (memstats HeapAlloc)
//	retrolock_runtime_gc_total            completed GC cycles
//	retrolock_runtime_gc_pause_ns         stop-the-world pause histogram
//	retrolock_runtime_uptime_seconds      seconds since registration
//
// Safe to call once per registry; reads are scrape-driven and rate-limit
// the underlying ReadMemStats to one per second.
func RegisterProcessMetrics(r *Registry) {
	c := &processCollector{pause: &Histogram{}, start: time.Now(), refreshery: time.Second}
	r.GaugeFunc(MetricBuildInfo, buildLabels(),
		"build identity (always 1; version, go toolchain and VCS revision ride as labels)",
		func() float64 { return 1 })
	r.GaugeFunc(MetricRuntimeGoroutines, nil, "live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(MetricRuntimeHeapBytes, nil, "heap bytes in use (memstats HeapAlloc)",
		func() float64 { c.refresh(); return float64(c.stats.HeapAlloc) })
	r.CounterFunc(MetricRuntimeGCTotal, nil, "completed GC cycles",
		func() float64 { c.refresh(); return float64(c.stats.NumGC) })
	r.AddHistogram(MetricRuntimeGCPauseNs, nil, "GC stop-the-world pauses (ns)", c.pause)
	r.GaugeFunc(MetricRuntimeUptime, nil, "seconds since the process registered its metrics",
		func() float64 { return time.Since(c.start).Seconds() })
}
