package history

import (
	"time"

	"retrolock/internal/obs"
)

// Service bundles the usual deployment: a store retaining everything a
// registry exports, an alert engine over it, an incident log observing the
// engine, and the three HTTP surfaces mounted on the registry's mux. One
// Wire call in each daemon's obs block, one Sample call per base tick.
type Service struct {
	Store  *Store
	Engine *Engine
	Log    *Log
}

// Options configures Wire. The zero value retains with default rings, no
// alert rules, and a default-bounded incident log.
type Options struct {
	// Store sizes the retention rings (zero value = defaults).
	Store Config
	// Rules are the burn-rate alerts to evaluate each Sample.
	Rules []Rule
	// IncidentBound caps the incident log (default 64).
	IncidentBound int
	// Tracer, when set, receives EvAlert events attributed to TracerSite.
	Tracer     *obs.Tracer
	TracerSite int
	// OnTransition observes alert transitions after the incident log has
	// folded them in — the hook daemons use to trigger anomaly capture.
	OnTransition func(Event)
}

// Wire builds a Service over reg: registers the engine's retrolock_alert_*
// series first (so they are themselves retained), attaches the store to
// everything the registry exports, and mounts /history, /alerts and
// /incidents. Call after all other registration, before serving.
func Wire(reg *obs.Registry, opts Options) *Service {
	store := NewStore(opts.Store)
	engine := NewEngine(store, opts.Rules)
	log := NewLog(opts.IncidentBound)

	engine.SetTracer(opts.TracerSite, opts.Tracer)
	onTrans := opts.OnTransition
	engine.OnTransition = func(ev Event) {
		log.Observe(ev)
		if onTrans != nil {
			onTrans(ev)
		}
	}

	if len(opts.Rules) > 0 {
		engine.Register(reg)
	}
	store.Attach(reg)

	reg.Handle("/history", store.Handler())
	reg.Handle("/alerts", engine.Handler())
	reg.Handle("/incidents", log.Handler())
	return &Service{Store: store, Engine: engine, Log: log}
}

// Sample folds one base tick into the store, then closes an alerting window
// over it. Drive from one goroutine at Store.BaseStep cadence, with the
// session's own clock (virtual in soaks).
func (s *Service) Sample(now time.Time) {
	s.Store.Sample(now)
	s.Engine.Evaluate(now)
}
