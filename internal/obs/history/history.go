// Package history is the telemetry plane's memory: a bounded, in-process
// time-series store retaining registry snapshots at multiple resolutions,
// with an SLO burn-rate alert engine and a correlated incident log on top.
//
// Every other observability layer in the repository — the obs registry, the
// health SLO engine, the relayd fleet grader — reports only the present:
// windowed deltas and instantaneous verdicts that are gone the moment the
// window slides. The paper's central question (does the session stay inside
// the ~140 ms playability envelope) is fundamentally about trends, and an
// operator running relayd at fleet scale needs "when did this start, how
// fast is the budget burning, and what else happened around then" without
// having been watching at the right second.
//
// Layout: the Store samples every tracked series on a fixed base tick
// (default 1 s) and retains the per-tick deltas in a ring per resolution —
// by default 1 s × 5 min, 10 s × 1 h and 60 s × 8 h. Downsampling is
// counter-conserving by construction: a coarse slot accumulates exactly the
// base deltas of the ticks it covers (bucket-delta merge for histograms,
// sum for counters, last-value for gauges), so the sum over any aligned
// span is identical at every resolution. Sampling in steady state touches
// only preallocated rings — no maps, no allocation — so the tick may ride
// the frame loop or a relay shard's cadence, and a virtual-clock soak
// exercises it bit-identically.
package history

import (
	"sort"
	"sync"
	"time"

	"retrolock/internal/obs"
)

// Resolution is one retention ring: Slots slots of Step each.
type Resolution struct {
	Step  time.Duration `json:"step"`
	Slots int           `json:"slots"`
}

// Span is the total time the ring covers.
func (r Resolution) Span() time.Duration { return r.Step * time.Duration(r.Slots) }

// Config sizes a Store. The zero value selects the default rings.
type Config struct {
	// Resolutions, ascending by Step. The first entry is the base: Sample
	// must be called once per base Step; every coarser Step is rounded up
	// to a multiple of it. Default: 1 s × 300, 10 s × 360, 60 s × 480.
	Resolutions []Resolution
}

func (c Config) withDefaults() Config {
	if len(c.Resolutions) == 0 {
		c.Resolutions = []Resolution{
			{Step: time.Second, Slots: 300},
			{Step: 10 * time.Second, Slots: 360},
			{Step: time.Minute, Slots: 480},
		}
	}
	if len(c.Resolutions) > 16 {
		// Sample's fresh-slot mask is a fixed array; nobody needs more rings.
		c.Resolutions = c.Resolutions[:16]
	}
	out := make([]Resolution, len(c.Resolutions))
	copy(out, c.Resolutions)
	base := out[0]
	if base.Step <= 0 {
		base.Step = time.Second
	}
	if base.Slots <= 0 {
		base.Slots = 300
	}
	out[0] = base
	for i := 1; i < len(out); i++ {
		if out[i].Step < base.Step {
			out[i].Step = base.Step
		}
		if rem := out[i].Step % base.Step; rem != 0 {
			out[i].Step += base.Step - rem
		}
		if out[i].Slots <= 0 {
			out[i].Slots = 300
		}
	}
	c.Resolutions = out
	return c
}

// scalarRing retains one scalar series at one resolution. vals holds the
// per-slot value (counter: summed base deltas; gauge: last sampled value);
// endNs the instant of the last base sample folded into the slot.
type scalarRing struct {
	vals  []float64
	endNs []int64
}

type scalarSeries struct {
	key     string
	counter bool
	read    func() float64
	prev    float64 // cumulative baseline (counters)
	res     []scalarRing
}

// histRing retains one histogram at one resolution: per slot, the merged
// bucket deltas (flat, obs.NumBuckets per slot) plus count/sum deltas.
type histRing struct {
	buckets []int64
	counts  []int64
	sums    []int64
	endNs   []int64
}

type histSeries struct {
	key        string
	h          *obs.Histogram
	prevBkt    obs.BucketCounts
	prevCount  int64
	prevSum    int64
	res        []histRing
}

// resState is one resolution's cursor: which slot is open and how many base
// samples it has absorbed.
type resState struct {
	per    uint64 // base samples per slot
	pos    int    // open slot index
	n      uint64 // base samples folded into the open slot
	sealed uint64 // slots completed over the store's lifetime
}

// Store is the multi-resolution retention engine. Build with NewStore,
// register series with Track* or Attach, then drive with Sample from one
// goroutine at the base cadence. Queries and window reductions are safe
// from any goroutine.
type Store struct {
	cfg Config

	mu       sync.Mutex
	scalars  []scalarSeries
	hists    []histSeries
	scalarIx map[string]int
	histIx   map[string]int
	resState []resState
	samples  uint64 // base samples taken
	lastNs   int64  // instant of the last sample
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:      cfg,
		scalarIx: map[string]int{},
		histIx:   map[string]int{},
		resState: make([]resState, len(cfg.Resolutions)),
	}
	base := cfg.Resolutions[0].Step
	for i, r := range cfg.Resolutions {
		s.resState[i].per = uint64(r.Step / base)
	}
	return s
}

// Resolutions returns the configured rings (finest first).
func (s *Store) Resolutions() []Resolution {
	out := make([]Resolution, len(s.cfg.Resolutions))
	copy(out, s.cfg.Resolutions)
	return out
}

// BaseStep returns the base sampling cadence Sample must be driven at.
func (s *Store) BaseStep() time.Duration { return s.cfg.Resolutions[0].Step }

// TrackCounter retains a monotonic counter as per-slot deltas. Duplicate
// keys are ignored (first registration wins).
func (s *Store) TrackCounter(key string, read func() float64) { s.track(key, true, read) }

// TrackGauge retains a gauge as per-slot last values.
func (s *Store) TrackGauge(key string, read func() float64) { s.track(key, false, read) }

func (s *Store) track(key string, counter bool, read func() float64) {
	if read == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.scalarIx[key]; dup {
		return
	}
	sc := scalarSeries{key: key, counter: counter, read: read, prev: read()}
	for _, r := range s.cfg.Resolutions {
		sc.res = append(sc.res, scalarRing{
			vals:  make([]float64, r.Slots),
			endNs: make([]int64, r.Slots),
		})
	}
	s.scalarIx[key] = len(s.scalars)
	s.scalars = append(s.scalars, sc)
}

// TrackHistogram retains a histogram as per-slot bucket/count/sum deltas.
func (s *Store) TrackHistogram(key string, h *obs.Histogram) {
	if h == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.histIx[key]; dup {
		return
	}
	hs := histSeries{key: key, h: h, prevBkt: h.Buckets(), prevCount: h.Count(), prevSum: h.Sum()}
	for _, r := range s.cfg.Resolutions {
		hs.res = append(hs.res, histRing{
			buckets: make([]int64, r.Slots*obs.NumBuckets),
			counts:  make([]int64, r.Slots),
			sums:    make([]int64, r.Slots),
			endNs:   make([]int64, r.Slots),
		})
	}
	s.histIx[key] = len(s.hists)
	s.hists = append(s.hists, hs)
}

// Attach tracks every series the registry knows at this instant — counters
// and gauges as scalars, histograms as bucket rings. Series registered
// later are not picked up; daemons attach after their registration phase.
func (s *Store) Attach(reg *obs.Registry) {
	reg.VisitSeries(func(key, kind string, read func() float64) {
		if kind == "counter" {
			s.TrackCounter(key, read)
		} else {
			s.TrackGauge(key, read)
		}
	})
	reg.VisitHistograms(func(key string, h *obs.Histogram) {
		s.TrackHistogram(key, h)
	})
}

// Keys returns every tracked series key, scalars then histograms, each
// group sorted — the /history discovery listing.
func (s *Store) Keys() (scalars, hists []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.scalarIx {
		scalars = append(scalars, k)
	}
	for k := range s.histIx {
		hists = append(hists, k)
	}
	sort.Strings(scalars)
	sort.Strings(hists)
	return scalars, hists
}

// Samples returns how many base ticks have been folded in.
func (s *Store) Samples() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Sample folds one base tick into every ring. Call from one goroutine at
// the base cadence (a frame-loop divisor, a fleet tick, a ticker); in
// steady state it allocates nothing. now should come from the same clock
// that drives the rest of the session — the virtual clock in soaks.
func (s *Store) Sample(now time.Time) {
	nowNs := now.UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()

	// Advance each resolution whose open slot is complete. fresh marks the
	// resolutions whose open slot must be zeroed before folding; a fixed
	// array keeps the hot path allocation-free (resolutions are few).
	var fresh [16]bool
	for i := range s.resState {
		rs := &s.resState[i]
		if rs.n == rs.per {
			rs.pos++
			if rs.pos == s.cfg.Resolutions[i].Slots {
				rs.pos = 0
			}
			rs.sealed++
			rs.n = 0
			fresh[i] = true
		}
		rs.n++
	}
	s.samples++
	s.lastNs = nowNs

	for si := range s.scalars {
		sc := &s.scalars[si]
		cur := sc.read()
		v := cur
		if sc.counter {
			v = cur - sc.prev
			if v < 0 {
				v = 0 // counter reset; never smear negatives into a slot
			}
			sc.prev = cur
		}
		for ri := range sc.res {
			r := &sc.res[ri]
			p := s.resState[ri].pos
			if fresh[ri] {
				r.vals[p] = 0
			}
			if sc.counter {
				r.vals[p] += v
			} else {
				r.vals[p] = v
			}
			r.endNs[p] = nowNs
		}
	}

	for hi := range s.hists {
		hs := &s.hists[hi]
		cur := hs.h.Buckets()
		count, sum := hs.h.Count(), hs.h.Sum()
		var delta obs.BucketCounts
		for i := range cur {
			delta[i] = cur[i] - hs.prevBkt[i]
		}
		dCount, dSum := count-hs.prevCount, sum-hs.prevSum
		hs.prevBkt, hs.prevCount, hs.prevSum = cur, count, sum
		for ri := range hs.res {
			r := &hs.res[ri]
			p := s.resState[ri].pos
			base := p * obs.NumBuckets
			if fresh[ri] {
				slot := r.buckets[base : base+obs.NumBuckets]
				for i := range slot {
					slot[i] = 0
				}
				r.counts[p], r.sums[p] = 0, 0
			}
			slot := r.buckets[base : base+obs.NumBuckets]
			for i := range delta {
				slot[i] += delta[i]
			}
			r.counts[p] += dCount
			r.sums[p] += dSum
			r.endNs[p] = nowNs
		}
	}
}

// validSlots returns how many slots of resolution ri currently hold data
// (the open slot counts once it has absorbed a sample). Caller holds mu.
func (s *Store) validSlots(ri int) int {
	rs := &s.resState[ri]
	n := rs.sealed
	if rs.n > 0 {
		n++
	}
	if max := uint64(s.cfg.Resolutions[ri].Slots); n > max {
		n = max
	}
	return int(n)
}

// pickRes selects the resolution for a query: an explicit step matches
// exactly (-1 when unknown); otherwise the finest ring whose span covers
// the window (the coarsest when none does).
func (s *Store) pickRes(step, window time.Duration) int {
	if step > 0 {
		for i, r := range s.cfg.Resolutions {
			if r.Step == step {
				return i
			}
		}
		return -1
	}
	for i, r := range s.cfg.Resolutions {
		if r.Span() >= window {
			return i
		}
	}
	return len(s.cfg.Resolutions) - 1
}

// Point is one retained slot of a query result. AtNs is the instant of the
// last base sample folded into the slot (its end, on a steady tick).
type Point struct {
	AtNs  int64   `json:"at_ns"`
	Value float64 `json:"value"`
}

// slotWalk iterates the last want valid slots of resolution ri oldest-first,
// calling fn with each ring position. Caller holds mu.
func (s *Store) slotWalk(ri, want int, fn func(pos int)) {
	valid := s.validSlots(ri)
	if want > valid {
		want = valid
	}
	slots := s.cfg.Resolutions[ri].Slots
	start := s.resState[ri].pos - want + 1
	for i := 0; i < want; i++ {
		p := start + i
		if p < 0 {
			p += slots
		}
		fn(p)
	}
}

// slotsFor converts a window to a slot count at resolution ri (≥ 1).
func (s *Store) slotsFor(ri int, window time.Duration) int {
	step := s.cfg.Resolutions[ri].Step
	n := int((window + step - 1) / step)
	if n < 1 {
		n = 1
	}
	return n
}

// QueryScalar returns the last window of a tracked scalar at the given
// resolution step (0 = auto-pick by window): per-slot counter deltas or
// gauge last-values, oldest first. ok is false for unknown series or steps.
func (s *Store) QueryScalar(key string, step, window time.Duration) (pts []Point, res Resolution, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, found := s.scalarIx[key]
	if !found {
		return nil, Resolution{}, false
	}
	ri := s.pickRes(step, window)
	if ri < 0 {
		return nil, Resolution{}, false
	}
	sc := &s.scalars[ix]
	r := &sc.res[ri]
	pts = make([]Point, 0, s.slotsFor(ri, window))
	s.slotWalk(ri, s.slotsFor(ri, window), func(p int) {
		pts = append(pts, Point{AtNs: r.endNs[p], Value: r.vals[p]})
	})
	return pts, s.cfg.Resolutions[ri], true
}

// HistStat selects the per-slot reduction of a histogram query.
type HistStat string

const (
	StatCount HistStat = "count" // observations in the slot
	StatSum   HistStat = "sum"   // summed observed value in the slot
	StatMean  HistStat = "mean"  // slot mean (0 when empty)
	StatQ     HistStat = "q"     // slot quantile upper bound (param q)
)

// QueryHist returns the last window of a tracked histogram reduced per
// slot by stat, oldest first.
func (s *Store) QueryHist(key string, step, window time.Duration, stat HistStat, q float64) (pts []Point, res Resolution, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, found := s.histIx[key]
	if !found {
		return nil, Resolution{}, false
	}
	ri := s.pickRes(step, window)
	if ri < 0 {
		return nil, Resolution{}, false
	}
	hs := &s.hists[ix]
	r := &hs.res[ri]
	pts = make([]Point, 0, s.slotsFor(ri, window))
	s.slotWalk(ri, s.slotsFor(ri, window), func(p int) {
		var v float64
		switch stat {
		case StatSum:
			v = float64(r.sums[p])
		case StatMean:
			if c := r.counts[p]; c > 0 {
				v = float64(r.sums[p]) / float64(c)
			}
		case StatQ:
			var b obs.BucketCounts
			copy(b[:], r.buckets[p*obs.NumBuckets:(p+1)*obs.NumBuckets])
			v = float64(obs.QuantileOfBuckets(b, r.counts[p], q))
		default: // StatCount
			v = float64(r.counts[p])
		}
		pts = append(pts, Point{AtNs: r.endNs[p], Value: v})
	})
	return pts, s.cfg.Resolutions[ri], true
}

// WindowCounterSum reduces a counter over the trailing window: the sum of
// its per-slot deltas, plus how much of the window the ring actually
// covers (so young stores can abstain). Allocation-free — the alert engine
// calls it every evaluation.
func (s *Store) WindowCounterSum(key string, window time.Duration) (sum float64, covered time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, found := s.scalarIx[key]
	if !found {
		return 0, 0, false
	}
	ri := s.pickRes(0, window)
	sc := &s.scalars[ix]
	r := &sc.res[ri]
	want := s.slotsFor(ri, window)
	n := 0
	s.slotWalk(ri, want, func(p int) {
		sum += r.vals[p]
		n++
	})
	covered = s.coveredLocked(ri, n)
	return sum, covered, true
}

// WindowGaugeMean reduces a gauge over the trailing window: the mean of
// its per-slot last-values, each passed through map_ when non-nil (e.g.
// collapsing a state gauge to 0/1 badness). Allocation-free.
func (s *Store) WindowGaugeMean(key string, window time.Duration, map_ func(float64) float64) (mean float64, covered time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, found := s.scalarIx[key]
	if !found {
		return 0, 0, false
	}
	ri := s.pickRes(0, window)
	sc := &s.scalars[ix]
	r := &sc.res[ri]
	want := s.slotsFor(ri, window)
	n := 0
	var sum float64
	s.slotWalk(ri, want, func(p int) {
		v := r.vals[p]
		if map_ != nil {
			v = map_(v)
		}
		sum += v
		n++
	})
	if n > 0 {
		mean = sum / float64(n)
	}
	covered = s.coveredLocked(ri, n)
	return mean, covered, true
}

// coveredLocked converts a counted slot walk into covered duration: sealed
// slots count a full step, the open slot only its absorbed base ticks.
func (s *Store) coveredLocked(ri, slots int) time.Duration {
	if slots == 0 {
		return 0
	}
	rs := &s.resState[ri]
	d := time.Duration(slots-1) * s.cfg.Resolutions[ri].Step
	if rs.n > 0 {
		d += time.Duration(rs.n) * s.cfg.Resolutions[0].Step
	} else {
		d += s.cfg.Resolutions[ri].Step
	}
	return d
}
