package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// The incident log: a bounded, append-only timeline correlating alert
// transitions with whatever else the process knows was happening — health
// flips, fleet verdict changes, auto-captured .rkcp bundles, the worst
// sessions at the moment of firing. An incident opens on the first fire
// event for a rule and resolves on the matching clear; context lines and
// capture references attach to whichever incident for that rule is open
// (or the most recent one, for post-hoc notes like "capture flushed").
//
// The log is deliberately small and in-process: it answers "what was going
// on when the pager went off" from the daemon's own memory, without any
// external store — the same design stance as the history rings it sits on.

// CaptureRef points at an auto-captured traffic bundle tied to an incident.
type CaptureRef struct {
	Session string `json:"session"`
	Path    string `json:"path"`
	AtNs    int64  `json:"at_unix_ns"`
}

// Note is one timestamped context line inside an incident.
type Note struct {
	AtNs int64  `json:"at_unix_ns"`
	Text string `json:"text"`
}

// Incident is one alert lifecycle plus its correlated context.
type Incident struct {
	ID         int          `json:"id"`
	Alert      string       `json:"alert"`
	OpenedNs   int64        `json:"opened_unix_ns"`
	ResolvedNs int64        `json:"resolved_unix_ns,omitempty"`
	BurnFast   float64      `json:"burn_fast_at_open"`
	BurnSlow   float64      `json:"burn_slow_at_open"`
	Notes      []Note       `json:"notes,omitempty"`
	Captures   []CaptureRef `json:"captures,omitempty"`
}

// Resolved reports whether the incident's alert has cleared.
func (in *Incident) Resolved() bool { return in.ResolvedNs != 0 }

// Log is a bounded incident timeline. All methods are safe for concurrent
// use; the zero value is not ready — use NewLog.
type Log struct {
	mu        sync.Mutex
	incidents []Incident // oldest first, bounded by cap
	nextID    int
	bound     int
	dropped   int64
}

// NewLog returns a log retaining at most bound incidents (default 64).
func NewLog(bound int) *Log {
	if bound <= 0 {
		bound = 64
	}
	return &Log{bound: bound, nextID: 1}
}

// Observe folds an alert transition into the log: a firing event opens an
// incident, a clearing event resolves the newest open incident for that
// rule. Wire it as (or from) Engine.OnTransition.
func (l *Log) Observe(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ev.Firing {
		if len(l.incidents) >= l.bound {
			drop := len(l.incidents) - l.bound + 1
			l.incidents = append(l.incidents[:0], l.incidents[drop:]...)
			l.dropped += int64(drop)
		}
		l.incidents = append(l.incidents, Incident{
			ID:       l.nextID,
			Alert:    ev.Name,
			OpenedNs: ev.AtNs,
			BurnFast: ev.BurnFast,
			BurnSlow: ev.BurnSlow,
		})
		l.nextID++
		return
	}
	if in := l.openForLocked(ev.Name); in != nil {
		in.ResolvedNs = ev.AtNs
	}
}

// openForLocked returns the newest unresolved incident for alert, or nil.
func (l *Log) openForLocked(alert string) *Incident {
	for i := len(l.incidents) - 1; i >= 0; i-- {
		if l.incidents[i].Alert == alert && !l.incidents[i].Resolved() {
			return &l.incidents[i]
		}
	}
	return nil
}

// newestForLocked returns the newest incident for alert (any state), or the
// newest incident overall when alert is empty. Nil when the log is empty.
func (l *Log) newestForLocked(alert string) *Incident {
	for i := len(l.incidents) - 1; i >= 0; i-- {
		if alert == "" || l.incidents[i].Alert == alert {
			return &l.incidents[i]
		}
	}
	return nil
}

// Annotate attaches a context line to the open (else newest) incident for
// alert; alert "" targets the newest incident overall. No-op when nothing
// matches — context with no incident to belong to is dropped, not queued.
func (l *Log) Annotate(alert string, at time.Time, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	in := l.openForLocked(alert)
	if in == nil {
		in = l.newestForLocked(alert)
	}
	if in == nil {
		return
	}
	in.Notes = append(in.Notes, Note{AtNs: at.UnixNano(), Text: fmt.Sprintf(format, args...)})
}

// AttachCapture records an auto-captured bundle against the open (else
// newest) incident for alert.
func (l *Log) AttachCapture(alert string, ref CaptureRef) {
	l.mu.Lock()
	defer l.mu.Unlock()
	in := l.openForLocked(alert)
	if in == nil {
		in = l.newestForLocked(alert)
	}
	if in == nil {
		return
	}
	in.Captures = append(in.Captures, ref)
}

// Snapshot returns the retained incidents, oldest first, plus how many
// older incidents the bound has evicted.
func (l *Log) Snapshot() (incidents []Incident, dropped int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Incident, len(l.incidents))
	for i, in := range l.incidents {
		out[i] = in
		out[i].Notes = append([]Note(nil), in.Notes...)
		out[i].Captures = append([]CaptureRef(nil), in.Captures...)
	}
	return out, l.dropped
}

// Open returns how many incidents are currently unresolved.
func (l *Log) Open() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.incidents {
		if !l.incidents[i].Resolved() {
			n++
		}
	}
	return n
}

func fmtNs(ns int64) string {
	return time.Unix(0, ns).UTC().Format("15:04:05.000")
}

// RenderTimeline writes the log as a human-oriented timeline — the text
// `retrotop -incidents` prints. One block per incident, newest first; inside
// a block, notes and captures interleave by timestamp.
func RenderTimeline(w *strings.Builder, incidents []Incident, dropped int64) {
	if len(incidents) == 0 {
		w.WriteString("no incidents\n")
		return
	}
	for i := len(incidents) - 1; i >= 0; i-- {
		in := &incidents[i]
		state := "FIRING"
		dur := "ongoing"
		if in.Resolved() {
			state = "resolved"
			dur = time.Duration(in.ResolvedNs - in.OpenedNs).Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "#%d %s %s  opened %s  (%s)  burn fast=%.1f slow=%.1f\n",
			in.ID, in.Alert, state, fmtNs(in.OpenedNs), dur, in.BurnFast, in.BurnSlow)
		type line struct {
			atNs int64
			text string
		}
		lines := make([]line, 0, len(in.Notes)+len(in.Captures)+1)
		for _, n := range in.Notes {
			lines = append(lines, line{n.AtNs, n.Text})
		}
		for _, c := range in.Captures {
			lines = append(lines, line{c.AtNs, fmt.Sprintf("capture session=%s %s", c.Session, c.Path)})
		}
		if in.Resolved() {
			lines = append(lines, line{in.ResolvedNs, "alert cleared"})
		}
		sort.SliceStable(lines, func(a, b int) bool { return lines[a].atNs < lines[b].atNs })
		for _, ln := range lines {
			fmt.Fprintf(w, "  %s  %s\n", fmtNs(ln.atNs), ln.text)
		}
	}
	if dropped > 0 {
		fmt.Fprintf(w, "(%d older incidents evicted)\n", dropped)
	}
}

// Handler serves the log: JSON by default, `?format=text` renders the same
// timeline retrotop -incidents shows.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		incidents, dropped := l.Snapshot()
		w.Header().Set("Cache-Control", "no-store")
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			var b strings.Builder
			RenderTimeline(&b, incidents, dropped)
			fmt.Fprint(w, b.String())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Incidents []Incident `json:"incidents"`
			Dropped   int64      `json:"dropped"`
		}{incidents, dropped})
	})
}
