package history

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"retrolock/internal/obs"
)

// burnScenario builds a store+engine where one gauge flips bad for a
// stretch: a 0/1 badness gauge against an implicit total of 1.
func burnScenario(rule Rule) (*Store, *Engine, *float64, *time.Time) {
	store := NewStore(Config{Resolutions: []Resolution{{Step: time.Second, Slots: 60}}})
	bad := new(float64)
	store.TrackGauge("bad", func() float64 { return *bad })
	engine := NewEngine(store, []Rule{rule})
	now := new(time.Time)
	*now = testEpoch
	return store, engine, bad, now
}

func tick(store *Store, engine *Engine, now *time.Time) {
	*now = now.Add(time.Second)
	store.Sample(*now)
	engine.Evaluate(*now)
}

// TestEngineFireAndClear drives a full alert lifecycle: quiet warmup, a
// burn that trips both windows, then a recovery long enough to drain the
// slow window and satisfy the hysteresis.
func TestEngineFireAndClear(t *testing.T) {
	rule := Rule{
		Name: "r", Source: SourceGauge, Bad: []string{"bad"},
		Budget: 0.05, FastWindow: 4 * time.Second, SlowWindow: 8 * time.Second,
		Threshold: 4, ClearAfter: 2,
	}
	store, engine, bad, now := burnScenario(rule)
	var events []Event
	engine.OnTransition = func(ev Event) { events = append(events, ev) }

	for i := 0; i < 8; i++ { // quiet warmup
		tick(store, engine, now)
	}
	if len(events) != 0 || engine.Firing() != 0 {
		t.Fatalf("quiet warmup produced transitions: %+v", events)
	}

	*bad = 1
	for i := 0; i < 8; i++ { // full burn: burn rate = 1/0.05 = 20x in both windows
		tick(store, engine, now)
	}
	if len(events) != 1 || !events[0].Firing {
		t.Fatalf("burn produced events %+v, want exactly one fire", events)
	}
	if events[0].BurnFast < rule.Threshold || events[0].BurnSlow < rule.Threshold {
		t.Errorf("fire event burns %v/%v below threshold %v",
			events[0].BurnFast, events[0].BurnSlow, rule.Threshold)
	}
	if engine.Firing() != 1 {
		t.Errorf("Firing() = %d mid-incident, want 1", engine.Firing())
	}

	*bad = 0
	for i := 0; i < 20; i++ { // recovery: slow window drains, then hysteresis
		tick(store, engine, now)
	}
	if len(events) != 2 || events[1].Firing {
		t.Fatalf("recovery events %+v, want fire then clear", events)
	}
	if engine.Firing() != 0 {
		t.Errorf("Firing() = %d after clear, want 0", engine.Firing())
	}
	st := engine.Alerts()[0]
	if st.Fired != 1 || st.Cleared != 1 || st.Firing {
		t.Errorf("status after lifecycle = %+v, want fired=1 cleared=1 quiet", st)
	}
}

// TestEngineSlowWindowVetoesBlip pins the multi-window property: a blip
// shorter than the slow window needs must not fire even though the fast
// window saturates.
func TestEngineSlowWindowVetoesBlip(t *testing.T) {
	rule := Rule{
		Name: "r", Source: SourceGauge, Bad: []string{"bad"},
		Budget: 0.05, FastWindow: 2 * time.Second, SlowWindow: 20 * time.Second,
		Threshold: 10, ClearAfter: 2,
	}
	store, engine, bad, now := burnScenario(rule)
	fired := false
	engine.OnTransition = func(ev Event) { fired = fired || ev.Firing }

	for i := 0; i < 20; i++ {
		tick(store, engine, now)
	}
	// 2 bad seconds: fast burn = (2/2)/0.05 = 20 >= 10, but slow burn =
	// (2/20)/0.05 = 2 < 10.
	*bad = 1
	tick(store, engine, now)
	tick(store, engine, now)
	*bad = 0
	for i := 0; i < 5; i++ {
		tick(store, engine, now)
	}
	if fired {
		t.Error("a fast-window blip fired despite a calm slow window")
	}
}

// TestEngineMinCoverageAbstains pins the young-store rule: no transitions
// until the store covers MinCoverage of the fast window, even under a
// saturated burn from the first sample.
func TestEngineMinCoverageAbstains(t *testing.T) {
	rule := Rule{
		Name: "r", Source: SourceGauge, Bad: []string{"bad"},
		Budget: 0.05, FastWindow: 10 * time.Second, SlowWindow: 20 * time.Second,
		Threshold: 4, MinCoverage: 0.5,
	}
	store, engine, bad, now := burnScenario(rule)
	*bad = 1
	var firstFire int
	engine.OnTransition = func(ev Event) {
		if ev.Firing && firstFire == 0 {
			firstFire = int(store.Samples())
		}
	}
	for i := 0; i < 12; i++ {
		tick(store, engine, now)
	}
	if firstFire == 0 {
		t.Fatal("saturated burn never fired")
	}
	if firstFire < 5 {
		t.Errorf("fired at sample %d, want abstention until coverage >= 5s of the 10s fast window", firstFire)
	}
}

// TestEngineRegisterRetainsOwnSeries: registering the alert series before
// Store.Attach makes the firing gauge itself a retained series.
func TestEngineRegisterRetainsOwnSeries(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewStore(Config{Resolutions: []Resolution{{Step: time.Second, Slots: 60}}})
	bad := 0.0
	reg.GaugeFunc("bad", nil, "", func() float64 { return bad })
	store.TrackGauge("bad", func() float64 { return bad })
	engine := NewEngine(store, []Rule{{
		Name: "r", Source: SourceGauge, Bad: []string{"bad"},
		Budget: 0.05, FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second,
		Threshold: 4, ClearAfter: 1,
	}})
	engine.Register(reg)
	store.Attach(reg)

	now := testEpoch
	step := func() {
		now = now.Add(time.Second)
		store.Sample(now)
		engine.Evaluate(now)
	}
	for i := 0; i < 6; i++ {
		step()
	}
	bad = 1
	for i := 0; i < 6; i++ {
		step()
	}
	key := obs.Key(MetricAlertFiring, obs.Labels{"alert": "r"})
	pts, _, ok := store.QueryScalar(key, 0, time.Minute)
	if !ok {
		t.Fatalf("alert gauge %q is not a retained series", key)
	}
	sawFiring := false
	for _, p := range pts {
		if p.Value == 1 {
			sawFiring = true
		}
	}
	if !sawFiring {
		t.Errorf("retained %q history never shows the firing state: %+v", key, pts)
	}
}

// TestAlertsHandlerHeaders pins the ops-surface contract: explicit JSON
// Content-Type and no-store caching on /alerts.
func TestAlertsHandlerHeaders(t *testing.T) {
	store := NewStore(Config{})
	engine := NewEngine(store, []Rule{{Name: "r", Bad: []string{"x"}, Total: []string{"y"}}})
	rec := httptest.NewRecorder()
	engine.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/alerts", nil))
	assertOpsHeaders(t, rec, "application/json")
	var body struct {
		Firing int           `json:"firing"`
		Alerts []AlertStatus `json:"alerts"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decode /alerts: %v", err)
	}
	if len(body.Alerts) != 1 || body.Alerts[0].Name != "r" {
		t.Errorf("/alerts body = %+v, want the one configured rule", body)
	}
}

// assertOpsHeaders checks the header contract every JSON ops surface must
// satisfy: an explicit Content-Type and Cache-Control: no-store.
func assertOpsHeaders(t *testing.T, rec *httptest.ResponseRecorder, wantType string) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
		t.Errorf("Content-Type = %q, want %q", ct, wantType)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
}
