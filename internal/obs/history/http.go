package history

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// The /history query surface. One endpoint, no query language:
//
//	GET /history                          → tracked series + ring layout
//	GET /history?series=K                 → last 5 m of K, finest ring
//	GET /history?series=K&window=1h       → auto-picked ring covering 1 h
//	GET /history?series=K&res=10s         → explicit ring by step
//	GET /history?series=K&stat=q&q=0.99   → histogram reduction (count, sum,
//	                                        mean, q; scalars ignore stat)
//
// Responses are JSON; points are oldest-first per-slot values (counter
// deltas, gauge last-values, histogram reductions).

type queryResponse struct {
	Series string  `json:"series"`
	Kind   string  `json:"kind"` // "scalar" or "histogram"
	Stat   string  `json:"stat,omitempty"`
	StepNs int64   `json:"step_ns"`
	Points []Point `json:"points"`
}

type listResponse struct {
	Resolutions []Resolution `json:"resolutions"`
	Samples     uint64       `json:"samples"`
	Scalars     []string     `json:"scalars"`
	Histograms  []string     `json:"histograms"`
}

// parseWindow accepts Go duration strings ("90s", "1h") or bare seconds.
func parseWindow(s string) (time.Duration, bool) {
	if s == "" {
		return 0, true
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return d, true
	}
	if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second, true
	}
	return 0, false
}

// Handler serves the store at a single /history-shaped endpoint.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		q := req.URL.Query()
		series := q.Get("series")
		if series == "" {
			scalars, hists := s.Keys()
			_ = json.NewEncoder(w).Encode(listResponse{
				Resolutions: s.Resolutions(),
				Samples:     s.Samples(),
				Scalars:     scalars,
				Histograms:  hists,
			})
			return
		}
		step, okStep := parseWindow(q.Get("res"))
		window, okWin := parseWindow(q.Get("window"))
		if !okStep || !okWin {
			http.Error(w, "bad res/window (want a Go duration like 90s)", http.StatusBadRequest)
			return
		}
		if window == 0 {
			window = 5 * time.Minute
		}

		if pts, res, ok := s.QueryScalar(series, step, window); ok {
			_ = json.NewEncoder(w).Encode(queryResponse{
				Series: series, Kind: "scalar", StepNs: int64(res.Step), Points: pts,
			})
			return
		}
		stat := HistStat(q.Get("stat"))
		if stat == "" {
			stat = StatCount
		}
		quant := 0.99
		if qs := q.Get("q"); qs != "" {
			v, err := strconv.ParseFloat(qs, 64)
			if err != nil || v < 0 || v > 1 {
				http.Error(w, "bad q (want 0..1)", http.StatusBadRequest)
				return
			}
			quant = v
		}
		if pts, res, ok := s.QueryHist(series, step, window, stat, quant); ok {
			_ = json.NewEncoder(w).Encode(queryResponse{
				Series: series, Kind: "histogram", Stat: string(stat),
				StepNs: int64(res.Step), Points: pts,
			})
			return
		}
		http.Error(w, "unknown series or resolution: "+series, http.StatusNotFound)
	})
}
