package history

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"retrolock/internal/obs"
)

func servedStore(t *testing.T) *Store {
	t.Helper()
	store := NewStore(Config{Resolutions: []Resolution{
		{Step: time.Second, Slots: 60},
		{Step: 10 * time.Second, Slots: 30},
	}})
	c := 0.0
	h := &obs.Histogram{}
	store.TrackCounter("reqs", func() float64 { return c })
	store.TrackHistogram("lat", h)
	now := testEpoch
	for i := 0; i < 30; i++ {
		c += 2
		h.Observe(int64(i) * 1000)
		now = now.Add(time.Second)
		store.Sample(now)
	}
	return store
}

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestHistoryHandlerList(t *testing.T) {
	rec := get(t, servedStore(t).Handler(), "/history")
	assertOpsHeaders(t, rec, "application/json")
	var body listResponse
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if body.Samples != 30 || len(body.Resolutions) != 2 {
		t.Errorf("list = %+v, want 30 samples over 2 rings", body)
	}
	if len(body.Scalars) != 1 || body.Scalars[0] != "reqs" ||
		len(body.Histograms) != 1 || body.Histograms[0] != "lat" {
		t.Errorf("list keys = %v/%v, want [reqs]/[lat]", body.Scalars, body.Histograms)
	}
}

func TestHistoryHandlerScalarQuery(t *testing.T) {
	rec := get(t, servedStore(t).Handler(), "/history?series=reqs&window=30s")
	assertOpsHeaders(t, rec, "application/json")
	var body queryResponse
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decode query: %v", err)
	}
	if body.Kind != "scalar" || body.StepNs != int64(time.Second) {
		t.Errorf("query = kind %q step %d, want scalar at the 1s ring", body.Kind, body.StepNs)
	}
	var sum float64
	for _, p := range body.Points {
		sum += p.Value
	}
	if sum != 60 {
		t.Errorf("served counter deltas sum to %v, want 60", sum)
	}
}

func TestHistoryHandlerHistQuery(t *testing.T) {
	rec := get(t, servedStore(t).Handler(), "/history?series=lat&window=30s&stat=sum")
	var body queryResponse
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decode query: %v", err)
	}
	if body.Kind != "histogram" || body.Stat != "sum" {
		t.Errorf("query = kind %q stat %q, want histogram sum", body.Kind, body.Stat)
	}
	var sum float64
	for _, p := range body.Points {
		sum += p.Value
	}
	if want := float64(1000 * (29 * 30 / 2)); sum != want {
		t.Errorf("served hist sums total %v, want %v", sum, want)
	}
}

func TestHistoryHandlerErrors(t *testing.T) {
	h := servedStore(t).Handler()
	if rec := get(t, h, "/history?series=nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown series → %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/history?series=reqs&window=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad window → %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/history?series=lat&stat=q&q=2"); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range quantile → %d, want 400", rec.Code)
	}
	// An explicit resolution that exists is honored; one that doesn't is 404.
	if rec := get(t, h, "/history?series=reqs&res=10s"); rec.Code != http.StatusOK {
		t.Errorf("explicit 10s ring → %d, want 200", rec.Code)
	}
	if rec := get(t, h, "/history?series=reqs&res=3s"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown ring → %d, want 404", rec.Code)
	}
}
