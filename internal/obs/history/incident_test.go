package history

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fireAt(name string, at time.Time) Event {
	return Event{Name: name, Firing: true, AtNs: at.UnixNano(), BurnFast: 9, BurnSlow: 5}
}

func clearAt(name string, at time.Time) Event {
	return Event{Name: name, Firing: false, AtNs: at.UnixNano()}
}

func TestLogLifecycle(t *testing.T) {
	l := NewLog(0)
	now := testEpoch

	l.Observe(fireAt("r", now))
	if l.Open() != 1 {
		t.Fatalf("Open() = %d after fire, want 1", l.Open())
	}
	l.Annotate("r", now.Add(time.Second), "census: %d degraded", 7)
	l.AttachCapture("r", CaptureRef{Session: "s1", Path: "/tmp/a.rkcp", AtNs: now.Add(2 * time.Second).UnixNano()})
	l.Observe(clearAt("r", now.Add(5*time.Second)))

	incidents, dropped := l.Snapshot()
	if dropped != 0 || len(incidents) != 1 {
		t.Fatalf("snapshot: %d incidents, %d dropped, want 1/0", len(incidents), dropped)
	}
	in := incidents[0]
	if !in.Resolved() || in.ID != 1 || in.Alert != "r" {
		t.Errorf("incident = %+v, want resolved #1 for r", in)
	}
	if len(in.Notes) != 1 || in.Notes[0].Text != "census: 7 degraded" {
		t.Errorf("notes = %+v, want the census annotation", in.Notes)
	}
	if len(in.Captures) != 1 || in.Captures[0].Session != "s1" {
		t.Errorf("captures = %+v, want the attached bundle", in.Captures)
	}
	if l.Open() != 0 {
		t.Errorf("Open() = %d after clear, want 0", l.Open())
	}

	// Post-hoc annotation (alert "" = newest overall) still lands.
	l.Annotate("", now.Add(10*time.Second), "capture flushed to disk")
	incidents, _ = l.Snapshot()
	if len(incidents[0].Notes) != 2 {
		t.Errorf("post-hoc note did not attach: %+v", incidents[0].Notes)
	}
}

func TestLogBoundEvicts(t *testing.T) {
	l := NewLog(3)
	now := testEpoch
	for i := 0; i < 5; i++ {
		at := now.Add(time.Duration(i) * time.Minute)
		l.Observe(fireAt("r", at))
		l.Observe(clearAt("r", at.Add(time.Second)))
	}
	incidents, dropped := l.Snapshot()
	if len(incidents) != 3 || dropped != 2 {
		t.Fatalf("bound 3 after 5 incidents: %d retained, %d dropped, want 3/2", len(incidents), dropped)
	}
	if incidents[0].ID != 3 || incidents[2].ID != 5 {
		t.Errorf("retained IDs %d..%d, want the newest (3..5)", incidents[0].ID, incidents[2].ID)
	}
}

func TestAnnotateWithoutIncidentIsDropped(t *testing.T) {
	l := NewLog(0)
	l.Annotate("r", testEpoch, "orphan context")
	l.AttachCapture("r", CaptureRef{Session: "s"})
	if incidents, _ := l.Snapshot(); len(incidents) != 0 {
		t.Errorf("context with no incident created one: %+v", incidents)
	}
}

// TestClearResolvesMatchingRuleOnly: a clear for one rule must not resolve
// another rule's open incident.
func TestClearResolvesMatchingRuleOnly(t *testing.T) {
	l := NewLog(0)
	now := testEpoch
	l.Observe(fireAt("a", now))
	l.Observe(fireAt("b", now.Add(time.Second)))
	l.Observe(clearAt("a", now.Add(2*time.Second)))
	incidents, _ := l.Snapshot()
	if incidents[0].Alert != "a" || !incidents[0].Resolved() {
		t.Errorf("incident a = %+v, want resolved", incidents[0])
	}
	if incidents[1].Alert != "b" || incidents[1].Resolved() {
		t.Errorf("incident b = %+v, want still open", incidents[1])
	}
}

func TestRenderTimelineInterleaves(t *testing.T) {
	l := NewLog(0)
	now := testEpoch
	l.Observe(fireAt("r", now))
	l.AttachCapture("r", CaptureRef{Session: "s1", Path: "/tmp/a.rkcp", AtNs: now.Add(time.Second).UnixNano()})
	l.Annotate("r", now.Add(2*time.Second), "worst session healed")
	l.Observe(clearAt("r", now.Add(3*time.Second)))

	var b strings.Builder
	incidents, dropped := l.Snapshot()
	RenderTimeline(&b, incidents, dropped)
	out := b.String()
	for _, want := range []string{"#1 r resolved", "capture session=s1 /tmp/a.rkcp", "worst session healed", "alert cleared"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline misses %q:\n%s", want, out)
		}
	}
	// Chronological inside the block: capture, then note, then clear.
	if strings.Index(out, "capture session=s1") > strings.Index(out, "worst session healed") ||
		strings.Index(out, "worst session healed") > strings.Index(out, "alert cleared") {
		t.Errorf("timeline lines out of order:\n%s", out)
	}
}

func TestIncidentsHandler(t *testing.T) {
	l := NewLog(0)
	l.Observe(fireAt("r", testEpoch))

	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/incidents", nil))
	assertOpsHeaders(t, rec, "application/json")
	var body struct {
		Incidents []Incident `json:"incidents"`
		Dropped   int64      `json:"dropped"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decode /incidents: %v", err)
	}
	if len(body.Incidents) != 1 || body.Incidents[0].Alert != "r" {
		t.Errorf("/incidents body = %+v, want the open incident", body)
	}

	rec = httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/incidents?format=text", nil))
	assertOpsHeaders(t, rec, "text/plain")
	if !strings.Contains(rec.Body.String(), "r FIRING") {
		t.Errorf("text timeline = %q, want the FIRING block", rec.Body.String())
	}
}
