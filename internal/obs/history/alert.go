package history

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"retrolock/internal/obs"
)

// The burn-rate alert engine: multi-window SLO alerting over the store's
// retained series, in the SRE shape — an alert fires when the error budget
// is burning fast over BOTH a fast and a slow window, so a one-tick blip
// (fast window only) and a long-ago incident still draining the slow
// window (slow window only) both stay quiet. Firing is immediate once both
// windows agree; clearing is hysteretic (ClearAfter consecutive calm
// evaluations below ClearFraction of the threshold), so an alert does not
// flap while a signal bounces around its budget.

// Source selects how a rule's series reduce over a window.
type Source int

const (
	// SourceCounter reduces bad/total as windowed delta sums — e.g. dropped
	// datagrams per ingested datagram.
	SourceCounter Source = iota
	// SourceGauge reduces bad/total as windowed means of last-values — e.g.
	// the fraction of time a state gauge sat above a threshold. An empty
	// Total means a constant 1 (pure time fraction).
	SourceGauge
)

// Rule is one burn-rate alert definition over tracked series.
type Rule struct {
	// Name labels the alert everywhere (series, incidents, tracer).
	Name string
	// Source selects the window reduction.
	Source Source
	// Bad and Total name tracked series; multiple entries are summed.
	// Total empty with SourceGauge grades Bad as a fraction of time.
	Bad   []string
	Total []string
	// BadMap transforms each bad slot value before reduction (SourceGauge
	// only) — e.g. collapsing a health-state gauge to 0/1 badness. Nil is
	// identity.
	BadMap func(float64) float64
	// Budget is the allowed bad fraction (the error budget), e.g. 0.02.
	Budget float64
	// FastWindow / SlowWindow are the paired burn windows (e.g. 1 m / 10 m).
	FastWindow time.Duration
	SlowWindow time.Duration
	// Threshold is the burn-rate multiple at which both windows must burn
	// to fire (default 4): burn = (bad/total)/Budget.
	Threshold float64
	// ClearFraction scales Threshold for the clearing bound (default 0.9);
	// ClearAfter is how many consecutive evaluations both burns must hold
	// below it before the alert resolves (default 3).
	ClearFraction float64
	ClearAfter    int
	// MinCoverage abstains (no transition either way) until the store has
	// covered this fraction of the fast window (default 0.5).
	MinCoverage float64
}

func (r Rule) withDefaults() Rule {
	if r.Budget <= 0 {
		r.Budget = 0.01
	}
	if r.FastWindow <= 0 {
		r.FastWindow = time.Minute
	}
	if r.SlowWindow <= r.FastWindow {
		r.SlowWindow = 5 * r.FastWindow
	}
	if r.Threshold <= 0 {
		r.Threshold = 4
	}
	if r.ClearFraction <= 0 || r.ClearFraction > 1 {
		r.ClearFraction = 0.9
	}
	if r.ClearAfter <= 0 {
		r.ClearAfter = 3
	}
	if r.MinCoverage <= 0 || r.MinCoverage > 1 {
		r.MinCoverage = 0.5
	}
	return r
}

// Event is one alert transition, delivered to Engine.OnTransition and the
// incident log.
type Event struct {
	Rule     int     `json:"-"`
	Name     string  `json:"name"`
	Firing   bool    `json:"firing"`
	AtNs     int64   `json:"at_unix_ns"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// AlertStatus is one rule's live state, served at /alerts.
type AlertStatus struct {
	Name      string  `json:"name"`
	Firing    bool    `json:"firing"`
	SinceNs   int64   `json:"since_unix_ns,omitempty"`
	BurnFast  float64 `json:"burn_fast"`
	BurnSlow  float64 `json:"burn_slow"`
	Threshold float64 `json:"threshold"`
	Budget    float64 `json:"budget"`
	Fast      string  `json:"fast_window"`
	Slow      string  `json:"slow_window"`
	Fired     int64   `json:"fired_total"`
	Cleared   int64   `json:"cleared_total"`
}

type alertState struct {
	rule        Rule
	firing      bool
	sinceNs     int64
	burnFast    float64
	burnSlow    float64
	clearStreak int
	fired       int64
	cleared     int64
}

// Engine evaluates rules against a Store. Drive Evaluate from the same
// single goroutine as Store.Sample (typically right after it); reads are
// safe from anywhere.
type Engine struct {
	store *Store

	tracer *obs.Tracer
	site   int
	// OnTransition observes every fire/clear, called outside the engine's
	// lock from the Evaluate goroutine. Set before the first Evaluate.
	OnTransition func(Event)

	mu     sync.Mutex
	rules  []alertState
	evals  int64
	firing int
}

// NewEngine builds an engine over store with the given rules (defaults
// applied per rule).
func NewEngine(store *Store, rules []Rule) *Engine {
	e := &Engine{store: store}
	for _, r := range rules {
		e.rules = append(e.rules, alertState{rule: r.withDefaults()})
	}
	return e
}

// SetTracer routes transitions into a tracer as EvAlert events attributed
// to site (Arg: rule index<<1 | firing).
func (e *Engine) SetTracer(site int, t *obs.Tracer) {
	e.tracer = t
	e.site = site
}

// windowBurn reduces one rule over one window into a burn-rate multiple.
func (e *Engine) windowBurn(r *Rule, w time.Duration) (burn float64, covered time.Duration) {
	var bad, total float64
	switch r.Source {
	case SourceGauge:
		for _, k := range r.Bad {
			v, cov, ok := e.store.WindowGaugeMean(k, w, r.BadMap)
			if !ok {
				continue
			}
			bad += v
			if cov > covered {
				covered = cov
			}
		}
		if len(r.Total) == 0 {
			total = 1
		} else {
			for _, k := range r.Total {
				v, _, ok := e.store.WindowGaugeMean(k, w, nil)
				if ok {
					total += v
				}
			}
		}
	default: // SourceCounter
		for _, k := range r.Bad {
			v, cov, ok := e.store.WindowCounterSum(k, w)
			if !ok {
				continue
			}
			bad += v
			if cov > covered {
				covered = cov
			}
		}
		for _, k := range r.Total {
			v, _, ok := e.store.WindowCounterSum(k, w)
			if ok {
				total += v
			}
		}
	}
	if total <= 0 {
		return 0, covered
	}
	return (bad / total) / r.Budget, covered
}

// Evaluate closes one alerting window over every rule and emits transitions.
// Call after each Store.Sample, from that same goroutine. The store's locks
// are taken per reduction, never while the engine's own lock is held, so a
// concurrent scrape of the alert series cannot deadlock a sample tick.
func (e *Engine) Evaluate(now time.Time) {
	nowNs := now.UnixNano()
	// Phase 1, lock-free reads of rule definitions: rules are fixed after
	// NewEngine, only their state fields mutate under the lock.
	type verdict struct {
		burnFast, burnSlow float64
		graded             bool
	}
	var scratch [16]verdict
	verdicts := scratch[:0]
	e.mu.Lock()
	n := len(e.rules)
	e.mu.Unlock()
	for i := 0; i < n; i++ {
		r := &e.rules[i].rule
		bf, covered := e.windowBurn(r, r.FastWindow)
		bs, _ := e.windowBurn(r, r.SlowWindow)
		verdicts = append(verdicts, verdict{
			burnFast: bf,
			burnSlow: bs,
			graded:   covered >= time.Duration(float64(r.FastWindow)*r.MinCoverage),
		})
	}

	// Phase 2: apply transitions under the lock, collect events.
	var evScratch [16]Event
	events := evScratch[:0]
	e.mu.Lock()
	e.evals++
	for i := range e.rules {
		st := &e.rules[i]
		v := verdicts[i]
		st.burnFast, st.burnSlow = v.burnFast, v.burnSlow
		if !v.graded {
			continue
		}
		t := st.rule.Threshold
		switch {
		case !st.firing && v.burnFast >= t && v.burnSlow >= t:
			st.firing = true
			st.sinceNs = nowNs
			st.clearStreak = 0
			st.fired++
			e.firing++
			events = append(events, Event{Rule: i, Name: st.rule.Name, Firing: true,
				AtNs: nowNs, BurnFast: v.burnFast, BurnSlow: v.burnSlow})
		case st.firing:
			calm := t * st.rule.ClearFraction
			if v.burnFast < calm && v.burnSlow < calm {
				st.clearStreak++
				if st.clearStreak >= st.rule.ClearAfter {
					st.firing = false
					st.sinceNs = 0
					st.clearStreak = 0
					st.cleared++
					e.firing--
					events = append(events, Event{Rule: i, Name: st.rule.Name, Firing: false,
						AtNs: nowNs, BurnFast: v.burnFast, BurnSlow: v.burnSlow})
				}
			} else {
				st.clearStreak = 0
			}
		}
	}
	tracer, site, onTrans := e.tracer, e.site, e.OnTransition
	e.mu.Unlock()

	for _, ev := range events {
		arg := int64(ev.Rule) << 1
		if ev.Firing {
			arg |= 1
		}
		tracer.Record(obs.EvAlert, site, -1, now, arg)
		if onTrans != nil {
			onTrans(ev)
		}
	}
}

// Alerts returns every rule's live status in rule order.
func (e *Engine) Alerts() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.rules))
	for i := range e.rules {
		st := &e.rules[i]
		out = append(out, AlertStatus{
			Name:      st.rule.Name,
			Firing:    st.firing,
			SinceNs:   st.sinceNs,
			BurnFast:  st.burnFast,
			BurnSlow:  st.burnSlow,
			Threshold: st.rule.Threshold,
			Budget:    st.rule.Budget,
			Fast:      st.rule.FastWindow.String(),
			Slow:      st.rule.SlowWindow.String(),
			Fired:     st.fired,
			Cleared:   st.cleared,
		})
	}
	return out
}

// Firing returns how many rules currently fire.
func (e *Engine) Firing() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firing
}

// Alert metric names.
const (
	MetricAlertFiring   = "retrolock_alert_firing"
	MetricAlertBurnFast = "retrolock_alert_burn_fast"
	MetricAlertBurnSlow = "retrolock_alert_burn_slow"
	MetricAlertFired    = "retrolock_alert_fired_total"
	MetricAlertCleared  = "retrolock_alert_cleared_total"
)

// Register publishes per-rule retrolock_alert_* series on r. Call before
// Store.Attach so the alert series are themselves retained.
func (e *Engine) Register(r *obs.Registry) {
	read := func(i int, f func(*alertState) float64) func() float64 {
		return func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return f(&e.rules[i])
		}
	}
	for i := range e.rules {
		l := obs.Labels{"alert": e.rules[i].rule.Name}
		r.GaugeFunc(MetricAlertFiring, l, "1 while the burn-rate alert fires",
			read(i, func(st *alertState) float64 {
				if st.firing {
					return 1
				}
				return 0
			}))
		r.GaugeFunc(MetricAlertBurnFast, l, "error-budget burn-rate multiple over the fast window",
			read(i, func(st *alertState) float64 { return st.burnFast }))
		r.GaugeFunc(MetricAlertBurnSlow, l, "error-budget burn-rate multiple over the slow window",
			read(i, func(st *alertState) float64 { return st.burnSlow }))
		r.CounterFunc(MetricAlertFired, l, "times the alert fired",
			read(i, func(st *alertState) float64 { return float64(st.fired) }))
		r.CounterFunc(MetricAlertCleared, l, "times the alert cleared",
			read(i, func(st *alertState) float64 { return float64(st.cleared) }))
	}
}

// Handler serves the live alert statuses as JSON at /alerts.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(struct {
			Firing int           `json:"firing"`
			Alerts []AlertStatus `json:"alerts"`
		}{e.Firing(), e.Alerts()})
	})
}

// BadAbove returns a BadMap collapsing a gauge to 0/1 badness at >= bound —
// the usual transform for state gauges (health, verdict counts).
func BadAbove(bound float64) func(float64) float64 {
	return func(v float64) float64 {
		if v >= bound {
			return 1
		}
		return 0
	}
}

// RuleName is a helper for building per-site rule names ("session-health-0").
func RuleName(prefix string, site int) string {
	return prefix + "-" + strconv.Itoa(site)
}
