package history

import (
	"math/rand"
	"testing"
	"time"

	"retrolock/internal/obs"
)

var testEpoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// TestDownsamplingConservesTotals is the store's core property: because a
// coarse slot accumulates exactly the base-tick deltas of the ticks it
// covers, the sum over all retained slots is identical at every resolution —
// for counters, histogram observation counts, histogram value sums, and
// per-bucket histogram counts. Random traffic, every configured resolution,
// no eviction (each run is shorter than the smallest ring's span).
func TestDownsamplingConservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		store := NewStore(Config{Resolutions: []Resolution{
			{Step: time.Second, Slots: 300},
			{Step: 7 * time.Second, Slots: 60}, // deliberately non-decade step
			{Step: 60 * time.Second, Slots: 10},
		}})

		var counter float64
		var gauge float64
		hist := &obs.Histogram{}

		// Traffic before tracking must never be retained: Track* captures the
		// cumulative state as the delta baseline.
		counter += float64(rng.Intn(1000))
		for i := 0; i < rng.Intn(50); i++ {
			hist.Observe(rng.Int63n(1 << 30))
		}
		baselineCounter := counter
		baselineCount := hist.Count()
		baselineSum := hist.Sum()
		baselineBuckets := hist.Buckets()

		store.TrackCounter("c", func() float64 { return counter })
		store.TrackGauge("g", func() float64 { return gauge })
		store.TrackHistogram("h", hist)

		n := 20 + rng.Intn(200)
		now := testEpoch
		for i := 0; i < n; i++ {
			counter += float64(rng.Intn(100))
			gauge = float64(rng.Intn(1000))
			for j := 0; j < rng.Intn(20); j++ {
				hist.Observe(rng.Int63n(1 << 40))
			}
			now = now.Add(time.Second)
			store.Sample(now)
		}

		wantCounter := counter - baselineCounter
		wantCount := float64(hist.Count() - baselineCount)
		wantSum := float64(hist.Sum() - baselineSum)
		window := time.Duration(n) * time.Second

		for ri, res := range store.Resolutions() {
			// Counter: per-slot deltas sum to the total folded increment.
			pts, _, ok := store.QueryScalar("c", res.Step, window)
			if !ok {
				t.Fatalf("trial %d res %v: counter query failed", trial, res.Step)
			}
			var sum float64
			for _, p := range pts {
				sum += p.Value
			}
			if sum != wantCounter {
				t.Errorf("trial %d res %v: counter sum = %v, want %v (%d slots)",
					trial, res.Step, sum, wantCounter, len(pts))
			}
			// Gauge: the newest slot holds the last sampled value.
			gpts, _, _ := store.QueryScalar("g", res.Step, window)
			if len(gpts) == 0 || gpts[len(gpts)-1].Value != gauge {
				t.Errorf("trial %d res %v: gauge last = %v, want %v", trial, res.Step,
					gpts[len(gpts)-1].Value, gauge)
			}
			// Histogram: observation counts and value sums conserve.
			cpts, _, _ := store.QueryHist("h", res.Step, window, StatCount, 0)
			spts, _, _ := store.QueryHist("h", res.Step, window, StatSum, 0)
			var csum, ssum float64
			for _, p := range cpts {
				csum += p.Value
			}
			for _, p := range spts {
				ssum += p.Value
			}
			if csum != wantCount || ssum != wantSum {
				t.Errorf("trial %d res %v: hist count/sum = %v/%v, want %v/%v",
					trial, res.Step, csum, ssum, wantCount, wantSum)
			}
			// Per-bucket conservation, via the ring internals: with no
			// eviction, the whole ring's bucket content is the retained total.
			store.mu.Lock()
			hs := &store.hists[store.histIx["h"]]
			var bucketTotals obs.BucketCounts
			r := &hs.res[ri]
			for i := 0; i < len(r.counts); i++ {
				for b := 0; b < obs.NumBuckets; b++ {
					bucketTotals[b] += r.buckets[i*obs.NumBuckets+b]
				}
			}
			store.mu.Unlock()
			cur := hist.Buckets()
			for b := 0; b < obs.NumBuckets; b++ {
				if want := cur[b] - baselineBuckets[b]; bucketTotals[b] != want {
					t.Fatalf("trial %d res %v bucket %d: retained %d, want %d",
						trial, res.Step, b, bucketTotals[b], want)
				}
			}
		}

		// The alert engine's windowed reduction agrees with the queries.
		sum, covered, ok := store.WindowCounterSum("c", window)
		if !ok || sum != wantCounter {
			t.Errorf("trial %d: WindowCounterSum = %v (ok=%v), want %v", trial, sum, ok, wantCounter)
		}
		if covered <= 0 || covered > window {
			t.Errorf("trial %d: covered = %v, want in (0, %v]", trial, covered, window)
		}
	}
}

// TestCounterResetClamps pins the counter-reset rule: a decreasing counter
// contributes zero to its slot, never a negative delta.
func TestCounterResetClamps(t *testing.T) {
	store := NewStore(Config{})
	var c float64 = 100
	store.TrackCounter("c", func() float64 { return c })
	now := testEpoch
	c = 150
	now = now.Add(time.Second)
	store.Sample(now)
	c = 30 // process restarted; counter reset below baseline
	now = now.Add(time.Second)
	store.Sample(now)
	c = 40
	now = now.Add(time.Second)
	store.Sample(now)
	sum, _, _ := store.WindowCounterSum("c", 10*time.Second)
	if sum != 60 {
		t.Errorf("counter sum across a reset = %v, want 60 (50 + clamped 0 + 10)", sum)
	}
}

// TestSampleSteadyStateAllocs is the benchcmp alloc gate's unit twin: once
// the rings exist, folding a base tick — including the burn-rate evaluation
// that rides it — allocates nothing.
func TestSampleSteadyStateAllocs(t *testing.T) {
	store := NewStore(Config{})
	var c, g float64
	h := &obs.Histogram{}
	for _, key := range []string{"a", "b", "d", "e"} {
		store.TrackCounter("ctr_"+key, func() float64 { return c })
		store.TrackGauge("g_"+key, func() float64 { return g })
	}
	store.TrackHistogram("h", h)
	engine := NewEngine(store, []Rule{{
		Name: "r", Source: SourceCounter,
		Bad: []string{"ctr_a"}, Total: []string{"ctr_b"},
		Budget: 0.1, FastWindow: 5 * time.Second, SlowWindow: 30 * time.Second,
	}})
	now := testEpoch
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		store.Sample(now)
		engine.Evaluate(now)
	}
	allocs := testing.AllocsPerRun(200, func() {
		c += 3
		g = c
		h.Observe(int64(c))
		now = now.Add(time.Second)
		store.Sample(now)
		engine.Evaluate(now)
	})
	if allocs != 0 {
		t.Errorf("steady-state Sample+Evaluate allocates %v/op, want 0", allocs)
	}
}

// TestRingEviction pins wraparound: once more base ticks arrive than the
// ring holds, queries retain exactly the newest Slots deltas.
func TestRingEviction(t *testing.T) {
	store := NewStore(Config{Resolutions: []Resolution{{Step: time.Second, Slots: 5}}})
	var c float64
	store.TrackCounter("c", func() float64 { return c })
	now := testEpoch
	for i := 1; i <= 12; i++ {
		c += float64(i) // delta i at tick i
		now = now.Add(time.Second)
		store.Sample(now)
	}
	pts, _, ok := store.QueryScalar("c", 0, time.Minute)
	if !ok || len(pts) != 5 {
		t.Fatalf("query after wrap: %d points (ok=%v), want 5", len(pts), ok)
	}
	var sum float64
	for _, p := range pts {
		sum += p.Value
	}
	if sum != 8+9+10+11+12 {
		t.Errorf("retained sum after wrap = %v, want newest 5 deltas (50)", sum)
	}
}
