package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels name one series of a metric, e.g. {"site": "0"}.
type Labels map[string]string

// Key builds the canonical series key — `name` or `name{k="v",...}` with
// label keys sorted — used both in Prometheus rendering and in Snapshot maps.
func Key(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// SiteLabels returns the conventional per-site label set.
func SiteLabels(site int) Labels { return Labels{"site": strconv.Itoa(site)} }

// Snapshot is a point-in-time reading of every registered series, keyed by
// Key(name, labels). Histograms contribute `<key>_count` and `<key>_sum`
// entries. Because each series is read independently (lock-free atomics or
// the owner's own mutex), a snapshot is not a consistent cut across series —
// it is a monitoring view, not a transaction.
type Snapshot map[string]float64

// Delta returns the per-key difference cur - prev (keys only in cur keep
// their value; keys only in prev are dropped).
func (cur Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(cur))
	for k, v := range cur {
		out[k] = v - prev[k]
	}
	return out
}

type series struct {
	key  string
	name string
	help string
	kind string // "gauge" or "counter"
	read func() float64
}

type histSeries struct {
	name   string
	labels Labels
	key    string
	help   string
	h      *Histogram
}

type tracerEntry struct {
	name string
	t    *Tracer
}

type muxEntry struct {
	pattern string
	h       http.Handler
}

type dumpEntry struct {
	name string
	fn   func(io.Writer) error
}

// Registry names live metric sources. Registration happens at session setup;
// reads (Snapshot, WritePrometheus) happen at any time from any goroutine,
// including while the session's hot path keeps writing the underlying
// counters. The registry itself holds no metric state — every series is a
// closure over the owning component's counters, so "the registry" and "the
// component's stats" can never disagree.
type Registry struct {
	mu      sync.Mutex
	series  []*series
	hists   []*histSeries
	tracers []tracerEntry
	dumps   []dumpEntry
	extra   []muxEntry
	health  *Health
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, old := range r.series {
		if old.key == s.key {
			panic("obs: duplicate series " + s.key)
		}
	}
	r.series = append(r.series, s)
}

// GaugeFunc registers a gauge whose value is read live from fn.
func (r *Registry) GaugeFunc(name string, labels Labels, help string, fn func() float64) {
	r.add(&series{key: Key(name, labels), name: name, help: help, kind: "gauge", read: fn})
}

// CounterFunc registers a monotonic counter whose value is read live from fn.
func (r *Registry) CounterFunc(name string, labels Labels, help string, fn func() float64) {
	r.add(&series{key: Key(name, labels), name: name, help: help, kind: "counter", read: fn})
}

// NewCounter registers and returns an owned Counter.
func (r *Registry) NewCounter(name string, labels Labels, help string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, labels, help, func() float64 { return float64(c.Value()) })
	return c
}

// NewHistogram registers and returns an owned Histogram.
func (r *Registry) NewHistogram(name string, labels Labels, help string) *Histogram {
	h := &Histogram{}
	r.AddHistogram(name, labels, help, h)
	return h
}

// AddHistogram registers an externally owned Histogram (e.g. one a component
// must create before any registry exists, like the relay daemon's step-time
// series).
func (r *Registry) AddHistogram(name string, labels Labels, help string, h *Histogram) {
	copied := make(Labels, len(labels))
	for k, v := range labels {
		copied[k] = v
	}
	hs := &histSeries{name: name, labels: copied, key: Key(name, labels), help: help, h: h}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, old := range r.hists {
		if old.key == hs.key {
			panic("obs: duplicate histogram " + hs.key)
		}
	}
	r.hists = append(r.hists, hs)
}

// AddTracer attaches a tracer to the registry so the HTTP trace endpoint can
// export it. Tracers merged into one export should share an epoch.
func (r *Registry) AddTracer(name string, t *Tracer) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracers = append(r.tracers, tracerEntry{name: name, t: t})
}

// Tracers returns the attached tracers in registration order.
func (r *Registry) Tracers() []*Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tracer, 0, len(r.tracers))
	for _, e := range r.tracers {
		out = append(out, e.t)
	}
	return out
}

// AddDump registers a named binary dump producer (e.g. a flight recorder's
// incident bundle), served on demand at /debug/flight/dump. fn is invoked
// from the HTTP goroutine and must be safe to call while the session runs.
func (r *Registry) AddDump(name string, fn func(io.Writer) error) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dumps = append(r.dumps, dumpEntry{name: name, fn: fn})
}

// DumpNames returns the registered dump names in registration order.
func (r *Registry) DumpNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.dumps))
	for _, d := range r.dumps {
		out = append(out, d.name)
	}
	return out
}

// dump looks a dump producer up by name; an empty name selects the sole
// registered dump (the common single-session case).
func (r *Registry) dump(name string) (func(io.Writer) error, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" && len(r.dumps) == 1 {
		return r.dumps[0].fn, true
	}
	for _, d := range r.dumps {
		if d.name == name {
			return d.fn, true
		}
	}
	return nil, false
}

// DumpHandler serves registered dumps: /debug/flight/dump?name=<name> streams
// one as an attachment (name optional when only one is registered).
func (r *Registry) DumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Query().Get("name")
		fn, ok := r.dump(name)
		if !ok {
			http.Error(w, fmt.Sprintf("no flight dump %q (registered: %v)", name, r.DumpNames()),
				http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="flight.rkfb"`)
		_ = fn(w)
	})
}

// Handle registers an extra HTTP handler that NewMux mounts alongside the
// standard endpoints (e.g. the relay fleet's /sessions surface). Patterns
// follow http.ServeMux semantics; registering the same pattern twice panics
// when the mux is built, so components should pick namespaced paths.
func (r *Registry) Handle(pattern string, h http.Handler) {
	if h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extra = append(r.extra, muxEntry{pattern: pattern, h: h})
}

// ExtraHandlers returns the handlers registered via Handle, in order.
func (r *Registry) ExtraHandlers() []struct {
	Pattern string
	Handler http.Handler
} {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]struct {
		Pattern string
		Handler http.Handler
	}, 0, len(r.extra))
	for _, e := range r.extra {
		out = append(out, struct {
			Pattern string
			Handler http.Handler
		}{e.pattern, e.h})
	}
	return out
}

// VisitSeries calls fn for every registered scalar series (kind "gauge" or
// "counter"), in registration order. The read closures stay live after the
// visit — this is how the history store binds retention to a registry
// without the registry knowing about retention.
func (r *Registry) VisitSeries(fn func(key, kind string, read func() float64)) {
	r.mu.Lock()
	ser := append([]*series(nil), r.series...)
	r.mu.Unlock()
	for _, s := range ser {
		fn(s.key, s.kind, s.read)
	}
}

// VisitHistograms calls fn for every registered histogram, in registration
// order.
func (r *Registry) VisitHistograms(fn func(key string, h *Histogram)) {
	r.mu.Lock()
	hists := append([]*histSeries(nil), r.hists...)
	r.mu.Unlock()
	for _, hs := range hists {
		fn(hs.key, hs.h)
	}
}

// SetHealth attaches a health SLO engine; the registry's mux then serves
// its verdict at /healthz. The last attached engine wins.
func (r *Registry) SetHealth(h *Health) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.health = h
}

// Health returns the attached health engine (nil when none).
func (r *Registry) Health() *Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// HealthHandler serves the attached engine's verdict as JSON: HTTP 200 for
// healthy/degraded, 503 for infeasible (load-balancer friendly), 404 when no
// engine is attached.
func (r *Registry) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := r.Health()
		if h == nil {
			http.Error(w, "no health engine attached", http.StatusNotFound)
			return
		}
		sig := h.Signals()
		w.Header().Set("Content-Type", "application/json")
		// A verdict is only good for the instant it was served: without an
		// explicit no-store, an intermediary (or a browser re-sniffing the
		// body) can keep answering from a stale copy.
		w.Header().Set("Cache-Control", "no-store")
		if sig.State == Infeasible {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, `{"state":%q,"window":%d,"rtt_p50_ns":%d,"skew_q_ns":%d,"frame_mean_ns":%d,"retrans_per_frame":%g,"transitions":%d}`+"\n",
			sig.StateName, sig.Window, sig.RTTp50, sig.SkewQ, sig.FrameMean, sig.RetransPerFrame, sig.Transitions)
	})
}

// Snapshot reads every series once.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ser := append([]*series(nil), r.series...)
	hists := append([]*histSeries(nil), r.hists...)
	r.mu.Unlock()
	out := make(Snapshot, len(ser)+2*len(hists))
	for _, s := range ser {
		out[s.key] = s.read()
	}
	for _, hs := range hists {
		out[hs.key+"_count"] = float64(hs.h.Count())
		out[hs.key+"_sum"] = float64(hs.h.Sum())
	}
	return out
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4). Series are sorted by name for a stable output;
// histograms render cumulative power-of-two `le` buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ser := append([]*series(nil), r.series...)
	hists := append([]*histSeries(nil), r.hists...)
	r.mu.Unlock()

	sort.Slice(ser, func(i, j int) bool {
		if ser[i].name != ser[j].name {
			return ser[i].name < ser[j].name
		}
		return ser[i].key < ser[j].key
	})
	var b strings.Builder
	lastName := ""
	for _, s := range ser {
		if s.name != lastName {
			lastName = s.name
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
		}
		fmt.Fprintf(&b, "%s %s\n", s.key, formatFloat(s.read()))
	}

	sort.Slice(hists, func(i, j int) bool {
		if hists[i].name != hists[j].name {
			return hists[i].name < hists[j].name
		}
		return hists[i].key < hists[j].key
	})
	lastName = ""
	for _, hs := range hists {
		if hs.name != lastName {
			lastName = hs.name
			if hs.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", hs.name, hs.help)
			}
			fmt.Fprintf(&b, "# TYPE %s histogram\n", hs.name)
		}
		counts := hs.h.Buckets()
		hi := 0
		for i, c := range counts {
			if c > 0 {
				hi = i
			}
		}
		le := make(Labels, len(hs.labels)+1)
		for k, v := range hs.labels {
			le[k] = v
		}
		var cum int64
		for i := 0; i <= hi; i++ {
			cum += counts[i]
			le["le"] = strconv.FormatUint(BucketBound(i), 10)
			fmt.Fprintf(&b, "%s %d\n", Key(hs.name+"_bucket", le), cum)
		}
		le["le"] = "+Inf"
		fmt.Fprintf(&b, "%s %d\n", Key(hs.name+"_bucket", le), hs.h.Count())
		fmt.Fprintf(&b, "%s %d\n", Key(hs.name+"_sum", hs.labels), hs.h.Sum())
		fmt.Fprintf(&b, "%s %d\n", Key(hs.name+"_count", hs.labels), hs.h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TraceHandler serves the attached tracers, merged, as Chrome trace_event
// JSON (?format=jsonl selects JSONL instead).
func (r *Registry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tracers := r.Tracers()
		var events []Event
		for _, t := range tracers {
			events = append(events, t.Snapshot()...)
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
		if req.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			for _, e := range events {
				fmt.Fprintf(w, `{"at_ns":%d,"kind":%q,"site":%d,"frame":%d,"arg":%d}`+"\n",
					e.At, e.Kind.String(), e.Site, e.Frame, e.Arg)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, events)
	})
}
