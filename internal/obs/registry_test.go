package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKey(t *testing.T) {
	if got := Key("m", nil); got != "m" {
		t.Fatalf("Key = %q", got)
	}
	got := Key("m", Labels{"site": "1", "dir": "ab"})
	if got != `m{dir="ab",site="1"}` {
		t.Fatalf("Key = %q (labels must be sorted)", got)
	}
	if got := Key("m", SiteLabels(3)); got != `m{site="3"}` {
		t.Fatalf("SiteLabels key = %q", got)
	}
}

func TestRegistrySnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("events", SiteLabels(0), "test counter")
	v := 7.0
	r.GaugeFunc("level", nil, "test gauge", func() float64 { return v })
	h := r.NewHistogram("lat_ns", SiteLabels(0), "test histogram")
	c.Add(3)
	h.Observe(100)
	h.Observe(200)

	s1 := r.Snapshot()
	if s1[`events{site="0"}`] != 3 || s1["level"] != 7 {
		t.Fatalf("snapshot = %v", s1)
	}
	if s1[`lat_ns{site="0"}_count`] != 2 || s1[`lat_ns{site="0"}_sum`] != 300 {
		t.Fatalf("histogram snapshot keys wrong: %v", s1)
	}

	c.Inc()
	v = 9
	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if d[`events{site="0"}`] != 1 || d["level"] != 2 {
		t.Fatalf("delta = %v", d)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", nil, "", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.CounterFunc("x", nil, "", func() float64 { return 0 })
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("retrolock_sync_msgs_sent", SiteLabels(0), "sync messages sent")
	c.Add(12)
	c1 := r.NewCounter("retrolock_sync_msgs_sent", SiteLabels(1), "sync messages sent")
	c1.Add(34)
	r.GaugeFunc("retrolock_frame", SiteLabels(0), "next frame", func() float64 { return 60 })
	h := r.NewHistogram("retrolock_frame_time_ns", SiteLabels(0), "frame wall time")
	h.Observe(5) // bucket 3, bound 7
	h.Observe(6)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE retrolock_sync_msgs_sent counter",
		`retrolock_sync_msgs_sent{site="0"} 12`,
		`retrolock_sync_msgs_sent{site="1"} 34`,
		"# TYPE retrolock_frame gauge",
		`retrolock_frame{site="0"} 60`,
		"# TYPE retrolock_frame_time_ns histogram",
		`retrolock_frame_time_ns_bucket{le="7",site="0"} 2`,
		`retrolock_frame_time_ns_bucket{le="+Inf",site="0"} 2`,
		`retrolock_frame_time_ns_sum{site="0"} 11`,
		`retrolock_frame_time_ns_count{site="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The HELP/TYPE header must appear once per metric name, not per series.
	if n := strings.Count(out, "# TYPE retrolock_sync_msgs_sent counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

// TestServeEndpointsLive starts the HTTP surface and scrapes every endpoint
// while a writer goroutine keeps the metrics moving — the "answers while
// frames advance" acceptance shape.
func TestServeEndpointsLive(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("retrolock_test_frames", nil, "frames executed")
	tr := NewTracer(1024, epoch)
	r.AddTracer("session", tr)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				tr.Record(EvFrameStart, 0, i, epoch.Add(time.Duration(i)*time.Millisecond), 0)
				tr.Record(EvFrameEnd, 0, i, epoch.Add(time.Duration(i)*time.Millisecond+time.Millisecond), 0)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "retrolock_test_frames") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	} else if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/debug/trace")), &doc); err != nil {
		t.Errorf("/debug/trace is not valid trace JSON: %v", err)
	} else if len(doc.TraceEvents) == 0 {
		t.Error("/debug/trace exported no events")
	}
	if body := get("/debug/trace?format=jsonl"); !strings.Contains(body, `"kind":"frame_start"`) {
		t.Error("/debug/trace?format=jsonl missing events")
	}

	// Two consecutive scrapes must show progress (the writer is running).
	s1 := r.Snapshot()["retrolock_test_frames"]
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r.Snapshot()["retrolock_test_frames"] > s1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("counter did not advance while serving")
		}
	}
}

func TestRegistryConcurrentReads(t *testing.T) {
	r := NewRegistry()
	cs := make([]*Counter, 8)
	for i := range cs {
		cs[i] = r.NewCounter(fmt.Sprintf("c%d", i), nil, "")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, c := range cs {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		_ = r.Snapshot()
		_ = r.WritePrometheus(io.Discard)
	}
	close(stop)
	wg.Wait()
}
