package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// fillWindow pushes n observations of v into h.
func fillWindow(h *Histogram, n int, v int64) {
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
}

func testHealth() (*Health, *Histogram, *Histogram, *Histogram) {
	ft, skew, rtt := &Histogram{}, &Histogram{}, &Histogram{}
	h := NewHealth(HealthConfig{RecoverAfter: 2}, HealthSources{
		FrameTime: ft, Skew: skew, RTT: rtt,
	})
	return h, ft, skew, rtt
}

func TestHealthRTTRampDegradesThenRecovers(t *testing.T) {
	h, _, _, rtt := testHealth()
	now := time.Unix(0, 0)

	fillWindow(rtt, 20, int64(40*time.Millisecond))
	if got := h.Evaluate(now); got != Healthy {
		t.Fatalf("state after 40ms RTT window = %v, want healthy", got)
	}

	// Past the degraded band (112 ms) but below the cliff. Power-of-two
	// buckets report the quantile as an upper bound (2^k-1), so drive the
	// signal with a value whose bucket bound sits inside the band:
	// 120 ms -> bucket bound ~134.2 ms.
	fillWindow(rtt, 20, int64(120*time.Millisecond))
	if got := h.Evaluate(now); got != Degraded {
		t.Fatalf("state after 120ms RTT window = %v, want degraded", got)
	}

	// Past the 140 ms cliff.
	fillWindow(rtt, 20, int64(200*time.Millisecond))
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatalf("state after 200ms RTT window = %v, want infeasible", got)
	}

	// Healing: one good window must NOT recover (hysteresis)...
	fillWindow(rtt, 20, int64(40*time.Millisecond))
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatalf("state after 1 good window = %v, want still infeasible", got)
	}
	// ...the second consecutive good window does (RecoverAfter: 2).
	fillWindow(rtt, 20, int64(40*time.Millisecond))
	if got := h.Evaluate(now); got != Healthy {
		t.Fatalf("state after 2 good windows = %v, want healthy", got)
	}
	if tr := h.Transitions(); tr != 3 {
		t.Fatalf("transitions = %d, want 3 (healthy->degraded->infeasible->healthy)", tr)
	}
}

func TestHealthRecoveryStreakResetsOnBadWindow(t *testing.T) {
	h, _, _, rtt := testHealth()
	now := time.Unix(0, 0)
	fillWindow(rtt, 20, int64(200*time.Millisecond))
	h.Evaluate(now) // infeasible
	fillWindow(rtt, 20, int64(40*time.Millisecond))
	h.Evaluate(now) // good window 1 of 2
	fillWindow(rtt, 20, int64(200*time.Millisecond))
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatalf("state = %v, want infeasible", got)
	}
	// The streak must restart: one more good window is not enough.
	fillWindow(rtt, 20, int64(40*time.Millisecond))
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatal("streak did not reset across the bad window")
	}
}

func TestHealthWindowsAreDeltas(t *testing.T) {
	// A long healthy history must not dilute a suddenly bad window: the
	// engine grades the delta since the last evaluation, not the lifetime
	// distribution.
	h, _, _, rtt := testHealth()
	now := time.Unix(0, 0)
	fillWindow(rtt, 10000, int64(20*time.Millisecond))
	h.Evaluate(now)
	fillWindow(rtt, 20, int64(200*time.Millisecond))
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatalf("state = %v: lifetime history diluted the bad window", got)
	}
}

func TestHealthSkewAndFrameTimeSignals(t *testing.T) {
	h, ft, skew, _ := testHealth()
	now := time.Unix(0, 0)

	// Skew p90 past 30 ms -> infeasible.
	fillWindow(skew, 20, int64(40*time.Millisecond))
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatalf("skew signal: state = %v, want infeasible", got)
	}

	h2 := NewHealth(HealthConfig{}, HealthSources{FrameTime: ft})
	// Frame time mean at ~23ms (target 16.67 + 5ms margin = 21.7ms
	// degraded, +11ms = 27.7ms infeasible).
	fillWindow(ft, 20, int64(23*time.Millisecond))
	if got := h2.Evaluate(now); got != Degraded {
		t.Fatalf("frame-time signal: state = %v, want degraded", got)
	}
}

func TestHealthRetransmitRateSignal(t *testing.T) {
	var retrans, frames int64
	h := NewHealth(HealthConfig{}, HealthSources{
		Retransmits: func() int64 { return retrans },
		Frames:      func() int64 { return frames },
	})
	now := time.Unix(0, 0)
	frames, retrans = 600, 0
	if got := h.Evaluate(now); got != Healthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	// 2 retransmits per frame over the next window.
	frames, retrans = 1200, 1200
	if got := h.Evaluate(now); got != Infeasible {
		t.Fatalf("state = %v, want infeasible at 2 retrans/frame", got)
	}
}

func TestHealthSmallWindowAbstains(t *testing.T) {
	h, _, _, rtt := testHealth()
	now := time.Unix(0, 0)
	// Below MinSamples (8): the terrible RTT must not grade.
	fillWindow(rtt, 3, int64(500*time.Millisecond))
	if got := h.Evaluate(now); got != Healthy {
		t.Fatalf("state = %v: a %d-sample window should abstain", got, 3)
	}
}

func TestHealthTracerAndCallback(t *testing.T) {
	h, _, _, rtt := testHealth()
	tr := NewTracer(16, time.Unix(0, 0))
	h.SetTracer(1, tr)
	var transitions [][2]HealthState
	h.OnTransition = func(from, to HealthState) { transitions = append(transitions, [2]HealthState{from, to}) }

	fillWindow(rtt, 20, int64(200*time.Millisecond))
	h.Evaluate(time.Unix(100, 0))

	events := tr.Snapshot()
	if len(events) != 1 || events[0].Kind != EvHealth {
		t.Fatalf("tracer events = %+v, want one EvHealth", events)
	}
	if from, to := HealthState(events[0].Arg>>8), HealthState(events[0].Arg&0xFF); from != Healthy || to != Infeasible {
		t.Fatalf("EvHealth arg decodes to %v->%v, want healthy->infeasible", from, to)
	}
	if len(transitions) != 1 || transitions[0] != [2]HealthState{Healthy, Infeasible} {
		t.Fatalf("OnTransition saw %v", transitions)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	r := NewRegistry()
	mux := NewMux(r)

	// No engine attached: 404.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 404 {
		t.Fatalf("healthz without engine = %d, want 404", rec.Code)
	}

	rtt := &Histogram{}
	h := NewHealth(HealthConfig{}, HealthSources{RTT: rtt})
	h.Register(r, 0)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz healthy = %d, want 200", rec.Code)
	}
	var body struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.State != "healthy" {
		t.Fatalf("healthz body %q (err %v), want state healthy", rec.Body.String(), err)
	}

	fillWindow(rtt, 20, int64(300*time.Millisecond))
	h.Evaluate(time.Unix(0, 0))
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz infeasible = %d, want 503", rec.Code)
	}

	// The canonical metrics exist and carry the verdict.
	snap := r.Snapshot()
	if got := snap[Key("retrolock_health_state", SiteLabels(0))]; got != float64(Infeasible) {
		t.Fatalf("retrolock_health_state = %v, want %d", got, Infeasible)
	}
	if got := snap[Key("retrolock_health_transitions", SiteLabels(0))]; got != 1 {
		t.Fatalf("retrolock_health_transitions = %v, want 1", got)
	}
}

// TestHealthzHeaders pins the /healthz header contract: explicit JSON
// Content-Type and Cache-Control: no-store, so no intermediary keeps
// serving a stale verdict.
func TestHealthzHeaders(t *testing.T) {
	r := NewRegistry()
	h := NewHealth(HealthConfig{}, HealthSources{RTT: &Histogram{}})
	h.Register(r, 0)
	mux := NewMux(r)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
}
