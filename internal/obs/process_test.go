package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)

	// A couple of GC cycles before the first snapshot, so the collector has
	// pauses to drain from the memstats ring.
	runtime.GC()
	runtime.GC()
	snap := r.Snapshot()

	var buildKey string
	for k := range snap {
		if strings.HasPrefix(k, MetricBuildInfo+"{") {
			buildKey = k
		}
	}
	if buildKey == "" {
		t.Fatalf("no %s series in snapshot", MetricBuildInfo)
	}
	if snap[buildKey] != 1 {
		t.Errorf("%s = %v, want constant 1", buildKey, snap[buildKey])
	}
	for _, lbl := range []string{`version=`, `go=`, `vcs=`} {
		if !strings.Contains(buildKey, lbl) {
			t.Errorf("%s key %q misses the %s label", MetricBuildInfo, buildKey, lbl)
		}
	}
	if !strings.Contains(buildKey, runtime.Version()) {
		t.Errorf("%s key %q does not carry the toolchain version %q", MetricBuildInfo, buildKey, runtime.Version())
	}

	if v := snap[MetricRuntimeGoroutines]; v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricRuntimeGoroutines, v)
	}
	if v := snap[MetricRuntimeHeapBytes]; v <= 0 {
		t.Errorf("%s = %v, want > 0", MetricRuntimeHeapBytes, v)
	}
	if v := snap[MetricRuntimeGCTotal]; v < 2 {
		t.Errorf("%s = %v, want >= 2 after two forced GCs", MetricRuntimeGCTotal, v)
	}
	if v := snap[MetricRuntimeUptime]; v < 0 {
		t.Errorf("%s = %v, want >= 0", MetricRuntimeUptime, v)
	}
	if v := snap[MetricRuntimeGCPauseNs+"_count"]; v < 1 {
		t.Errorf("%s_count = %v, want >= 1 (pauses drained from the memstats ring)", MetricRuntimeGCPauseNs, v)
	}

	// The series must render in the exposition format too — this catches a
	// malformed label set, which Snapshot would happily accept.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		MetricBuildInfo, MetricRuntimeGoroutines, MetricRuntimeHeapBytes,
		MetricRuntimeGCTotal, MetricRuntimeGCPauseNs, MetricRuntimeUptime,
	} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("prometheus exposition misses %s", name)
		}
	}
}

func TestProcessMetricsRefreshRateLimit(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	// Heap reads inside the refresh window must serve the cached memstats:
	// two immediate snapshots see the same value even while the test itself
	// allocates between them.
	first := r.Snapshot()[MetricRuntimeHeapBytes]
	_ = make([]byte, 1<<20)
	second := r.Snapshot()[MetricRuntimeHeapBytes]
	if first != second {
		t.Errorf("heap gauge re-read memstats inside the refresh window: %v then %v", first, second)
	}
}
