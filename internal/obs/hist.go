package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a lock-free monotonic counter. The zero value is ready to use;
// a nil *Counter is valid and ignores writes (reads return 0).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is one bucket per possible bit length of a uint64 value:
// bucket 0 holds exactly 0, bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
const histBuckets = 65

// NumBuckets exports the bucket count for packages that retain bucket-delta
// snapshots (the history store's downsampling rings).
const NumBuckets = histBuckets

// BucketCounts is a snapshot of a Histogram's per-bucket counts — the type
// Buckets returns and QuantileOfBuckets consumes.
type BucketCounts = [histBuckets]int64

// Histogram is a lock-free, power-of-two bucketed histogram of int64 values
// (typically durations in nanoseconds). Observe is a few atomic adds — no
// locks, no allocation — so it is safe on the 60 FPS hot path, and every
// accessor reads live while writers keep writing. Negative observations
// clamp to zero.
//
// Power-of-two buckets trade resolution for zero configuration: any value
// range is covered, relative error is at most 2x, and bucket index is one
// bits.Len64. That resolution is plenty for the distributions tracked here
// (frame time, cross-site skew, RTT, ARQ retransmission delay), which spread
// over decades, not percent.
//
// The zero value is ready to use; a nil *Histogram ignores observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Reset zeroes the histogram so it can be pooled and reused (e.g. the
// relay's per-session stat blocks). Resetting while writers are observing
// is not a consistent cut — callers must own the quiescent histogram, the
// same single-owner discipline pools already require.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Buckets returns a snapshot of the per-bucket counts. Because writers may
// race the reads, the copy is only approximately consistent — fine for
// monitoring, not for invariants.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// observed values: the bound of the first bucket whose cumulative count
// reaches q*Count. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	counts := h.Buckets()
	var total int64
	for _, c := range counts {
		total += c
	}
	return QuantileOfBuckets(counts, total, q)
}
